// Quickstart: run ecoCloud on a small data center for one simulated day and
// print the headline numbers. This is the smallest end-to-end use of the
// library: generate a workload, build a fleet, pick the policy, run, read
// the result.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dc"
	"repro/internal/energy"
	"repro/internal/trace"
)

func main() {
	// 1. A synthetic PlanetLab-like workload: 300 VMs for 24 hours.
	gen := trace.DefaultGenConfig()
	gen.NumVMs = 300
	gen.Horizon = 24 * time.Hour
	workload, err := trace.Generate(gen, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The ecoCloud policy with the paper's parameters (Ta=0.90, p=3,
	//    Tl=0.50, Th=0.95, alpha=beta=0.25).
	policy, err := core.New(core.DefaultConfig(), 7)
	if err != nil {
		log.Fatal(err)
	}

	// 3. A 20-server fleet in the paper's mix (thirds of 4/6/8 cores at
	//    2 GHz) and one simulated day.
	result, err := cluster.Run(cluster.RunConfig{
		Specs:           dc.StandardFleet(20),
		Workload:        workload,
		Horizon:         24 * time.Hour,
		ControlInterval: 5 * time.Minute,
		SampleInterval:  30 * time.Minute,
		PowerModel:      dc.DefaultPowerModel(),
	}, policy)
	if err != nil {
		log.Fatal(err)
	}

	// 4. What happened.
	fmt.Printf("quickstart: ecoCloud on 20 servers / 300 VMs for 24h\n\n")
	fmt.Printf("  mean active servers : %.1f of 20\n", result.MeanActiveServers)
	fmt.Printf("  energy              : %.1f kWh (all-on floor would be >= %.1f kWh)\n",
		result.EnergyKWh, 20*dc.DefaultPowerModel().PeakW*dc.DefaultPowerModel().IdleFraction*24/1000)
	fmt.Printf("  migrations          : %d low (consolidation) + %d high (overload relief)\n",
		result.TotalLowMigrations, result.TotalHighMigrations)
	fmt.Printf("  server switches     : %d activations, %d hibernations\n",
		result.TotalActivations, result.TotalHibernations)
	fmt.Printf("  VM-time in overload : %.5f%%\n", 100*result.VMOverloadTimeFrac)
	fmt.Printf("  saturation events   : %d\n", result.Saturations)

	// 5. What the consolidation is worth in money and carbon: compare with
	//    the whole fleet idling for the same day, annualized.
	rates := energy.DefaultRates()
	measured := energy.Assess(result.EnergyKWh, rates)
	allOn := energy.Assess(20*dc.DefaultPowerModel().PeakW*dc.DefaultPowerModel().IdleFraction*24/1000, rates)
	saved := measured.SavingsVs(allOn).Annualize(24 * time.Hour)
	fmt.Printf("\n  vs an always-on fleet, ecoCloud saves at least %s per year\n", saved)
}

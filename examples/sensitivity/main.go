// Sensitivity: regenerate the data behind the paper's §III sensitivity
// remarks — how the migration thresholds (Tl, Th) and shapes (alpha, beta)
// move consolidation quality, migration volume and QoS. Each sweep point is
// a full simulation on the shared workload.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.25, "fraction of the sweep's 100 servers / 1500 VMs")
	seed := flag.Uint64("seed", 1, "master seed")
	flag.Parse()

	opts := experiments.DefaultSensitivityOptions()
	opts.Seed = *seed
	opts.Servers = int(float64(opts.Servers) * *scale)
	opts.NumVMs = int(float64(opts.NumVMs) * *scale)
	if opts.Servers < 3 {
		log.Fatalf("scale %v too small", *scale)
	}

	fmt.Printf("sensitivity sweep on %d servers / %d VMs over %v (base: Ta=%.2f p=%.0f Tl=%.2f Th=%.2f a=b=%.2f)\n\n",
		opts.Servers, opts.NumVMs, opts.Horizon,
		opts.Base.Ta, opts.Base.P, opts.Base.Tl, opts.Base.Th, opts.Base.Alpha)
	points, err := experiments.Sensitivity(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %7s %12s %12s %14s %11s %11s\n",
		"param", "value", "mean active", "active util", "frac u<0.4", "migrations", "overload %")
	last := ""
	for _, p := range points {
		if p.Param != last {
			fmt.Println()
			last = p.Param
		}
		fmt.Printf("%-12s %7.2f %12.1f %12.3f %14.3f %11d %11.4f\n",
			p.Param, p.Value, p.MeanActive, p.MeanActiveUtil,
			p.FracActiveUnder, p.Migrations, p.OverloadPct)
	}

	fmt.Println("\nPaper's findings to check against the table:")
	fmt.Println("  1. Th below Ta (0.85 row) wastes servers: lower active utilization, more active machines.")
	fmt.Println("  2. Tl should keep active servers above ~40% utilization (watch frac u<0.4 as Tl moves).")
	fmt.Println("  3. alpha/beta trade migration volume against time spent outside the target band.")
}

// Baselines: run ecoCloud head-to-head against the centralized power-aware
// Best Fit Decreasing reallocator (Beloglazov-style), First Fit Decreasing,
// and the no-consolidation floor, all on the identical workload and fleet,
// and print the comparison table the abstract's claim rests on.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.1, "fraction of the paper's 400 servers / 6000 VMs")
	horizon := flag.Duration("horizon", 24*time.Hour, "simulated time")
	seed := flag.Uint64("seed", 1, "master seed")
	flag.Parse()

	opts := experiments.DefaultComparisonOptions()
	opts.Seed = *seed
	opts.Horizon = *horizon
	opts.Servers = int(float64(opts.Servers) * *scale)
	opts.NumVMs = int(float64(opts.NumVMs) * *scale)
	if opts.Servers < 3 {
		log.Fatalf("scale %v too small", *scale)
	}

	fmt.Printf("comparing policies on %d servers / %d VMs over %v\n\n",
		opts.Servers, opts.NumVMs, opts.Horizon)
	res, err := experiments.Comparison(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %10s %12s %12s %12s %10s %12s %6s\n",
		"policy", "energy kWh", "mean active", "migrations", "peak mig/h", "max batch", "overload %", "sat")
	for _, name := range res.Order {
		r := res.Results[name]
		fmt.Printf("%-10s %10.1f %12.1f %12d %12.0f %10d %12.5f %6d\n",
			name, r.EnergyKWh, r.MeanActiveServers,
			r.TotalLowMigrations+r.TotalHighMigrations,
			r.MaxMigrationsPerHour, r.MaxConcurrentMigrations,
			100*r.VMOverloadTimeFrac, r.Saturations)
	}

	fmt.Println()
	for _, n := range res.Figure().Notes {
		fmt.Println("  " + n)
	}
}

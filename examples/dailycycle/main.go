// Dailycycle: the paper's §III scenario — a data center tracking two days of
// diurnal load under ecoCloud — rendered as ASCII charts. Scale it down with
// -scale for a quick look or run at 1.0 for the paper's 400 servers / 6,000
// VMs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/ascii"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	scale := flag.Float64("scale", 0.25, "fraction of the paper's 400 servers / 6000 VMs")
	seed := flag.Uint64("seed", 1, "master seed")
	flag.Parse()

	opts := experiments.DefaultDailyOptions()
	opts.Seed = *seed
	opts.Servers = int(float64(opts.Servers) * *scale)
	opts.NumVMs = int(float64(opts.NumVMs) * *scale)
	if opts.Servers < 3 || opts.NumVMs < 10 {
		log.Fatalf("scale %v too small", *scale)
	}

	res, err := experiments.Daily(opts)
	if err != nil {
		log.Fatal(err)
	}

	hours := func(s *metrics.Series) []float64 {
		out := make([]float64, s.Len())
		for i, t := range s.T {
			out[i] = t.Hours()
		}
		return out
	}
	r := res.Run
	charts := []struct {
		title  string
		series map[string][]float64
		axis   []float64
	}{
		{"Overall load (the Fig 6 reference dots)", map[string][]float64{"load": r.OverallLoad.V}, hours(r.OverallLoad)},
		{"Fig 7 — active servers", map[string][]float64{"active": r.ActiveServers.V}, hours(r.ActiveServers)},
		{"Fig 8 — power (W)", map[string][]float64{"watts": r.PowerW.V}, hours(r.PowerW)},
		{"Fig 9 — migrations per hour", map[string][]float64{"low": r.LowMigrations.V, "high": r.HighMigrations.V}, hours(r.LowMigrations)},
		{"Fig 10 — switches per hour", map[string][]float64{"activations": r.Activations.V, "hibernations": r.Hibernations.V}, hours(r.Activations)},
	}
	for _, c := range charts {
		if err := ascii.Chart(os.Stdout, c.title, c.axis, c.series, 76, 12); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	fmt.Println("In-text claims, measured:")
	for _, f := range res.Figures() {
		for _, n := range f.Notes {
			fmt.Printf("  [%s] %s\n", f.ID, n)
		}
	}
}

// Multiresource: the paper's §V extension in action. Servers track both CPU
// and RAM; availability for a new VM is decided by multi-resource Bernoulli
// trials, under both proposed strategies:
//
//   - all-trials: one trial per resource, accept only if every trial succeeds;
//   - critical+constraints: one trial on the most critical resource, the
//     others checked as hard thresholds.
//
// The workload mixes CPU-bound and memory-bound VMs; the demo shows that
// both strategies co-locate complementary VMs (packing more VMs per server
// than a CPU-only policy could justify) and never breach either threshold.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/ecocloud"
	"repro/internal/rng"
)

// server is a toy two-resource bin for the demo.
type server struct {
	cpuMHz, ramMB    float64 // capacity
	usedCPU, usedRAM float64
	vms              int
}

func (s *server) utils() map[string]float64 {
	return map[string]float64{
		"cpu": s.usedCPU / s.cpuMHz,
		"ram": s.usedRAM / s.ramMB,
	}
}

// vm is a two-resource demand. CPU-bound VMs want lots of CPU and little
// RAM; memory-bound VMs the opposite.
type vm struct{ cpuMHz, ramMB float64 }

func main() {
	strategy := flag.String("strategy", "all", `trial strategy: "all" or "critical"`)
	servers := flag.Int("servers", 20, "number of servers")
	vms := flag.Int("vms", 400, "number of arriving VMs")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	cpuFn, err := ecocloud.NewAssignProb(0.90, 3)
	if err != nil {
		log.Fatal(err)
	}
	ramFn, err := ecocloud.NewAssignProb(0.85, 2)
	if err != nil {
		log.Fatal(err)
	}
	multi, err := ecocloud.NewMultiResource(map[string]ecocloud.AssignProbFunc{
		"cpu": cpuFn, "ram": ramFn,
	})
	if err != nil {
		log.Fatal(err)
	}

	master := rng.New(*seed)
	workSrc := master.Split("workload")
	fleet := make([]*server, *servers)
	srcs := make([]*rng.Source, *servers)
	for i := range fleet {
		fleet[i] = &server{cpuMHz: 12000, ramMB: 32768}
		srcs[i] = master.SplitIndex("server", i)
	}

	placed, rejected := 0, 0
	for i := 0; i < *vms; i++ {
		// Half the VMs are CPU-bound, half memory-bound.
		var v vm
		if i%2 == 0 {
			v = vm{cpuMHz: 400 + workSrc.Float64()*800, ramMB: 256 + workSrc.Float64()*256}
		} else {
			v = vm{cpuMHz: 100 + workSrc.Float64()*200, ramMB: 1024 + workSrc.Float64()*2048}
		}

		// Invitation round: every server runs its multi-resource trial,
		// including the feasibility of this particular VM.
		var acceptors []int
		for si, s := range fleet {
			utils := s.utils()
			if utils["cpu"]+v.cpuMHz/s.cpuMHz > cpuFn.Ta || utils["ram"]+v.ramMB/s.ramMB > ramFn.Ta {
				continue
			}
			var ok bool
			var err error
			switch *strategy {
			case "all":
				ok, err = multi.TrialAll(utils, srcs[si])
			case "critical":
				ok, err = multi.TrialCritical(utils, srcs[si])
			default:
				log.Fatalf("unknown strategy %q", *strategy)
			}
			if err != nil {
				log.Fatal(err)
			}
			// A server with zero load never accepts (fa(0)=0); seed the
			// first VMs onto empty servers like the manager's wake-up does.
			if ok || (s.vms == 0 && placed < *servers/4) {
				acceptors = append(acceptors, si)
			}
		}
		if len(acceptors) == 0 {
			rejected++
			continue
		}
		si := acceptors[master.Intn(len(acceptors))]
		fleet[si].usedCPU += v.cpuMHz
		fleet[si].usedRAM += v.ramMB
		fleet[si].vms++
		placed++
	}

	fmt.Printf("multiresource (%s strategy): placed %d, unplaceable %d\n\n", *strategy, placed, rejected)
	fmt.Printf("%-8s %6s %10s %10s\n", "server", "vms", "cpu util", "ram util")
	usedServers := 0
	for i, s := range fleet {
		if s.vms == 0 {
			continue
		}
		usedServers++
		u := s.utils()
		if u["cpu"] > cpuFn.Ta+1e-9 || u["ram"] > ramFn.Ta+1e-9 {
			log.Fatalf("server %d breached a threshold: cpu=%.3f ram=%.3f", i, u["cpu"], u["ram"])
		}
		fmt.Printf("s%-7d %6d %10.3f %10.3f\n", i, s.vms, u["cpu"], u["ram"])
	}
	fmt.Printf("\n%d of %d servers used; no threshold breached on either resource\n", usedServers, *servers)
}

// Distributed: the assignment procedure as the actual message protocol of
// the paper's Fig. 1 — INVITE broadcast, ACCEPT/REJECT replies, ASSIGN —
// running on a simulated 10 GbE fabric. Prints the footnote-1 scalability
// table: wire messages, bytes and placement latency per assignment as the
// fleet grows, for broadcast vs group invitations vs random subsets vs the
// silent-reject variant.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/experiments"
)

func main() {
	placements := flag.Int("placements", 200, "placements measured per configuration")
	flag.Parse()

	opts := experiments.DefaultScalabilityOptions()
	opts.Placements = *placements

	fmt.Printf("protocol scalability: %d placements per point, fleets %v\n\n",
		opts.Placements, opts.FleetSizes)
	points, err := experiments.Scalability(opts)
	if err != nil {
		log.Fatal(err)
	}
	// Variant-major order reads better in a table.
	sort.SliceStable(points, func(i, j int) bool {
		if points[i].Variant != points[j].Variant {
			return points[i].Variant < points[j].Variant
		}
		return points[i].Servers < points[j].Servers
	})

	fmt.Printf("%-14s %8s %10s %12s %14s %14s\n",
		"variant", "servers", "msgs/VM", "bytes/VM", "mean latency", "max latency")
	last := ""
	for _, p := range points {
		if p.Variant != last {
			fmt.Println()
			last = p.Variant
		}
		fmt.Printf("%-14s %8d %10.1f %12.0f %14v %14v\n",
			p.Variant, p.Servers, p.MsgsPerPlacement, p.BytesPerPlacement,
			p.MeanLatency, p.MaxLatency)
	}

	fmt.Println("\nReading the table against the paper's claims:")
	fmt.Println("  - broadcast reply-all cost grows linearly with the fleet (the messages are")
	fmt.Println("    tiny and the fabric supports hardware broadcast, footnote 1);")
	fmt.Println("  - group/subset invitations keep per-placement cost flat at any scale;")
	fmt.Println("  - silent-reject trades a fixed decision window for O(acceptors) replies.")
}

package repro

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/ecocloud"
	"repro/internal/trace"
)

// demandKernelConfig is the reduced-scale scenario behind
// BenchmarkDemandKernel: the paper's server mix and VM-per-server ratio
// (15:1) over a short horizon, heavy on exactly the pattern the kernel
// accelerates — every arrival's invitation round reads utilization across
// the whole fleet. cmd/ecobench -demand-bench runs the same scenario at
// 400→4,000 servers and records BENCH_demand_kernel.json; this benchmark is
// the CI smoke for it (`go test -bench=BenchmarkDemandKernel -benchtime=1x`).
func demandKernelConfig(b *testing.B, servers int, disable bool) (cluster.RunConfig, cluster.Policy) {
	b.Helper()
	gen := trace.DefaultGenConfig()
	gen.NumVMs = 15 * servers
	gen.Horizon = time.Hour
	ws, err := trace.Generate(gen, 1)
	if err != nil {
		b.Fatal(err)
	}
	pol, err := ecocloud.New(ecocloud.DefaultConfig(), 2)
	if err != nil {
		b.Fatal(err)
	}
	return cluster.RunConfig{
		Specs:              dc.StandardFleet(servers),
		Workload:           ws,
		Horizon:            gen.Horizon,
		ControlInterval:    5 * time.Minute,
		SampleInterval:     30 * time.Minute,
		PowerModel:         dc.DefaultPowerModel(),
		DisableDemandCache: disable,
	}, pol
}

// BenchmarkDemandKernel compares the simulation hot path with the demand
// kernel on (cached) and off (naive per-VM recomputation) on a 400-server /
// 6,000-VM fleet. The two runs are bit-identical by contract; only the
// wall time differs.
func BenchmarkDemandKernel(b *testing.B) {
	for _, bench := range []struct {
		name    string
		disable bool
	}{
		{"cached", false},
		{"naive", true},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg, pol := demandKernelConfig(b, 400, bench.disable)
				b.StartTimer()
				res, err := cluster.Run(cfg, pol)
				if err != nil {
					b.Fatal(err)
				}
				if res.MeanActiveServers <= 0 {
					b.Fatal("dead run")
				}
			}
		})
	}
}

package energy_test

import (
	"fmt"
	"time"

	"repro/internal/energy"
)

// Converting a measured 48-hour consumption into cost and carbon, and the
// saving against the no-consolidation floor, annualized.
func ExampleAssess() {
	rates := energy.DefaultRates()
	eco := energy.Assess(1634, rates)
	allOn := energy.Assess(3609, rates)
	saved := eco.SavingsVs(allOn).Annualize(48 * time.Hour)
	fmt.Println(saved)
	// Output:
	// 360437.5 kWh ($36043.75, 180218.8 kg CO2)
}

package energy

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestAssess(t *testing.T) {
	rep := Assess(1000, Rates{USDPerKWh: 0.10, GramsCO2PerKWh: 500})
	if rep.EnergyKWh != 1000 {
		t.Fatalf("energy = %v", rep.EnergyKWh)
	}
	if rep.CostUSD != 100 {
		t.Fatalf("cost = %v, want 100", rep.CostUSD)
	}
	if rep.CO2Kg != 500 {
		t.Fatalf("co2 = %v, want 500 kg", rep.CO2Kg)
	}
}

func TestSavings(t *testing.T) {
	r := DefaultRates()
	eco := Assess(1634, r)
	allon := Assess(3609, r)
	s := eco.SavingsVs(allon)
	if math.Abs(s.EnergyKWh-1975) > 1e-9 {
		t.Fatalf("saved energy = %v", s.EnergyKWh)
	}
	if s.CostUSD <= 0 || s.CO2Kg <= 0 {
		t.Fatalf("savings = %+v", s)
	}
}

func TestAnnualize(t *testing.T) {
	rep := Assess(48, DefaultRates()) // 48 kWh over 48 h = 1 kW average
	year := rep.Annualize(48 * time.Hour)
	if math.Abs(year.EnergyKWh-8760) > 1e-6 {
		t.Fatalf("annualized = %v kWh, want 8760", year.EnergyKWh)
	}
}

func TestAnnualizePanicsOnZeroHorizon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero horizon did not panic")
		}
	}()
	Assess(1, DefaultRates()).Annualize(0)
}

func TestRatesValidate(t *testing.T) {
	if err := DefaultRates().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Rates{USDPerKWh: -1}).Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestString(t *testing.T) {
	s := Assess(10, DefaultRates()).String()
	if !strings.Contains(s, "kWh") || !strings.Contains(s, "CO2") {
		t.Fatalf("report string = %q", s)
	}
}

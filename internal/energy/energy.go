// Package energy turns simulated kilowatt-hours into the quantities the
// paper's introduction motivates the whole problem with: electricity cost
// and carbon emissions ("the energy consumed by IT infrastructures in USA
// was about 61 billion kWh ... 2% of the global carbon emissions"). It is a
// small reporting layer over cluster results, used by the examples and the
// comparison experiment.
package energy

import (
	"fmt"
	"time"
)

// Rates converts energy to money and carbon.
type Rates struct {
	USDPerKWh      float64
	GramsCO2PerKWh float64
}

// DefaultRates reflects early-2010s US averages: $0.10/kWh industrial
// electricity and ~500 gCO2/kWh grid intensity.
func DefaultRates() Rates {
	return Rates{USDPerKWh: 0.10, GramsCO2PerKWh: 500}
}

// Validate reports whether the rates are usable.
func (r Rates) Validate() error {
	if r.USDPerKWh < 0 || r.GramsCO2PerKWh < 0 {
		return fmt.Errorf("energy: negative rates %+v", r)
	}
	return nil
}

// Report is the assessment of one measured energy figure.
type Report struct {
	EnergyKWh float64
	CostUSD   float64
	CO2Kg     float64
}

// Assess converts kWh under the given rates.
func Assess(kWh float64, r Rates) Report {
	return Report{
		EnergyKWh: kWh,
		CostUSD:   kWh * r.USDPerKWh,
		CO2Kg:     kWh * r.GramsCO2PerKWh / 1000,
	}
}

// SavingsVs returns the report of what is saved relative to a (larger)
// baseline: baseline minus this report, component-wise.
func (rep Report) SavingsVs(baseline Report) Report {
	return Report{
		EnergyKWh: baseline.EnergyKWh - rep.EnergyKWh,
		CostUSD:   baseline.CostUSD - rep.CostUSD,
		CO2Kg:     baseline.CO2Kg - rep.CO2Kg,
	}
}

// Annualize extrapolates a measurement taken over the given horizon to a
// 365-day year. It panics on a non-positive horizon (a bug, not data).
func (rep Report) Annualize(horizon time.Duration) Report {
	if horizon <= 0 {
		panic(fmt.Sprintf("energy: annualize over %v", horizon))
	}
	f := (365 * 24 * time.Hour).Hours() / horizon.Hours()
	return Report{
		EnergyKWh: rep.EnergyKWh * f,
		CostUSD:   rep.CostUSD * f,
		CO2Kg:     rep.CO2Kg * f,
	}
}

// String renders the report compactly.
func (rep Report) String() string {
	return fmt.Sprintf("%.1f kWh ($%.2f, %.1f kg CO2)", rep.EnergyKWh, rep.CostUSD, rep.CO2Kg)
}

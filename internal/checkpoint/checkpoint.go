// Package checkpoint turns a running simulation into a serializable value
// and back. A Checkpoint captures everything a resumed run needs to be
// BIT-IDENTICAL to the uninterrupted one: the data center's extended
// snapshot (placements, power states, SoA hot arrays, demand-kernel
// aggregates and counters, per-VM demand cursors), every live rng stream
// under a stable label (all four xoshiro words plus the Marsaglia spare
// cache), the policy's private state, the cluster driver's accounting
// (series, accumulators, episode and migration trackers), and the obs
// counter/gauge values.
//
// The capture point is the end of the control tick at time T: for T > 0 the
// control tick is provably the last event at its timestamp under the
// engine's FIFO-within-timestamp ordering, so "state at end of control@T"
// is a well-defined cut of the whole simulation. cluster.Run enforces that
// by accepting only positive multiples of ControlInterval as CheckpointAt.
//
// Fork produces an independent branch: rng streams are re-labeled through
// rng.State.Fork, so sibling branches with distinct labels diverge
// deterministically while the empty label is the identity (the branch
// replays the original run exactly).
package checkpoint

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dc"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Version is the current checkpoint wire-format version.
const Version = 1

// Checkpoint is the full serializable state of a simulation at one instant.
type Checkpoint struct {
	Version int `json:"version"`
	// AtNS is the virtual capture time (the end of the control tick at that
	// timestamp).
	AtNS int64 `json:"at_ns"`
	// Policy names the policy the state belongs to; resume refuses a
	// mismatched policy rather than adopting foreign state.
	Policy string `json:"policy,omitempty"`

	// DC is the data center's extended snapshot (see dc.Snapshot).
	DC dc.Snapshot `json:"dc"`
	// RNG holds every live stream's state keyed by the owner-assigned label
	// (see StreamOwner). Fork re-labels exactly these.
	RNG map[string]rng.State `json:"rng,omitempty"`
	// PolicyState is the policy's opaque non-rng state (see Checkpointable).
	PolicyState json.RawMessage `json:"policy_state,omitempty"`
	// Runner is the cluster driver's accounting (see RunnerState).
	Runner *RunnerState `json:"runner,omitempty"`
	// Obs carries the counter/gauge values of the run's telemetry registry.
	// Timers are excluded: they measure host wall time, not simulation state.
	Obs *obs.Snapshot `json:"obs,omitempty"`

	// Protocol and Faults are opaque sections for the message-level protocol
	// cluster and the fault injector (see protocol.Cluster.CheckpointState
	// and faults.Injector.State). They ride along for assemblies that use
	// those components; cluster.Run leaves them empty.
	Protocol json.RawMessage `json:"protocol,omitempty"`
	Faults   json.RawMessage `json:"faults,omitempty"`

	// Meta is informational provenance (seed, fleet size, experiment name)
	// written by the assembling layer so a resume can sanity-check that it
	// rebuilt the same workload. The simulation state never reads it.
	Meta map[string]string `json:"meta,omitempty"`
}

// RunnerState is cluster.Run's accounting at the capture instant: the
// sampled series, the overload/energy accumulators, the episode tracker and
// the policy-event recorder. Fields mirror the driver's internals; cluster
// fills and consumes them.
type RunnerState struct {
	VMTicks          float64 `json:"vm_ticks,omitempty"`
	VMOverTicks      float64 `json:"vm_over_ticks,omitempty"`
	VMRAMOverTicks   float64 `json:"vm_ram_over_ticks,omitempty"`
	WinVMTicks       float64 `json:"win_vm_ticks,omitempty"`
	WinVMOverTicks   float64 `json:"win_vm_over_ticks,omitempty"`
	OverDemandMHz    float64 `json:"over_demand_mhz,omitempty"`
	OverCapacityMHz  float64 `json:"over_capacity_mhz,omitempty"`
	ActiveTickSum    float64 `json:"active_tick_sum,omitempty"`
	ControlTicks     float64 `json:"control_ticks,omitempty"`
	LastActivations  int     `json:"last_activations,omitempty"`
	LastHibernations int     `json:"last_hibernations,omitempty"`
	EnergyKWh        float64 `json:"energy_kwh,omitempty"`

	ActiveServers *metrics.Series `json:"active_servers,omitempty"`
	PowerW        *metrics.Series `json:"power_w,omitempty"`
	OverallLoad   *metrics.Series `json:"overall_load,omitempty"`
	OverDemandPct *metrics.Series `json:"overdemand_pct,omitempty"`
	Activations   *metrics.Series `json:"activations,omitempty"`
	Hibernations  *metrics.Series `json:"hibernations,omitempty"`

	SampleTimesNS []int64     `json:"sample_times_ns,omitempty"`
	ServerUtil    [][]float64 `json:"server_util,omitempty"`

	Episodes    metrics.EpisodeTrackerState         `json:"episodes"`
	Migrations  map[string]metrics.RateCounterState `json:"migrations,omitempty"`
	Rounds      []RoundCount                        `json:"rounds,omitempty"`
	Saturations int                                 `json:"saturations,omitempty"`
}

// RoundCount is one (virtual timestamp, migration count) pair of the
// recorder's concurrent-migration bookkeeping.
type RoundCount struct {
	TNS int64 `json:"t_ns"`
	N   int   `json:"n"`
}

// Checkpointable is implemented by policies (and other components) whose
// private non-rng state must survive a checkpoint: cooldown clocks, group
// rotation counters, pending books. MarshalCheckpoint must return a
// self-contained JSON value; UnmarshalCheckpoint must reinstate it on a
// freshly constructed instance with the same configuration.
type Checkpointable interface {
	MarshalCheckpoint() (json.RawMessage, error)
	UnmarshalCheckpoint(json.RawMessage) error
}

// StreamOwner is implemented by components that own live rng streams. The
// labels must be stable across processes (derive them from IDs, not from
// creation order) and globally unique within one checkpoint.
type StreamOwner interface {
	// RegisterStreams adds every currently live stream to reg under its
	// stable label.
	RegisterStreams(reg *rng.Registry)
	// AdoptStreams installs the captured states, creating streams that do
	// not exist yet (e.g. lazily derived per-server streams) and failing on
	// labels it does not recognize.
	AdoptStreams(states map[string]rng.State) error
}

// New returns an empty checkpoint at the given virtual time.
func New(atNS int64) *Checkpoint {
	return &Checkpoint{Version: Version, AtNS: atNS}
}

// Validate reports whether the checkpoint is structurally usable.
func (c *Checkpoint) Validate() error {
	if c.Version != Version {
		return fmt.Errorf("checkpoint: version %d, this build reads %d", c.Version, Version)
	}
	if c.AtNS <= 0 {
		return fmt.Errorf("checkpoint: capture time %d ns not positive", c.AtNS)
	}
	return nil
}

// Fork returns an independent deep copy whose rng streams are re-labeled
// with label. The empty label is the identity: the fork replays the original
// run bit for bit. Any other label re-seeds every stream deterministically
// from its captured state and the label, so branches with distinct labels
// diverge while remaining reproducible. The opaque Protocol/Faults sections
// are copied verbatim — components that keep rng state in there must be
// re-registered through StreamOwner to take part in forking.
func (c *Checkpoint) Fork(label string) (*Checkpoint, error) {
	raw, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: fork copy: %w", err)
	}
	out := &Checkpoint{}
	if err := json.Unmarshal(raw, out); err != nil {
		return nil, fmt.Errorf("checkpoint: fork copy: %w", err)
	}
	for name, st := range out.RNG {
		out.RNG[name] = st.Fork(label)
	}
	return out, nil
}

// Write serializes the checkpoint as indented JSON. Go's encoder prints
// float64 values in shortest-round-trip form, so the wire format preserves
// every bit of the captured state.
func Write(w io.Writer, c *Checkpoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("checkpoint: writing: %w", err)
	}
	return nil
}

// Read parses a checkpoint written by Write and validates it.
func Read(r io.Reader) (*Checkpoint, error) {
	c := &Checkpoint{}
	if err := json.NewDecoder(r).Decode(c); err != nil {
		return nil, fmt.Errorf("checkpoint: reading: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

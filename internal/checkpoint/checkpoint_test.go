package checkpoint

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/rng"
)

func sampleCheckpoint() *Checkpoint {
	ck := New(7200 * 1e9)
	ck.Policy = "ecocloud"
	ck.RNG = map[string]rng.State{
		"a": rng.New(1).State(),
		"b": rng.New(2).State(),
	}
	ck.PolicyState = json.RawMessage(`{"next_group":3}`)
	ck.Meta = map[string]string{"seed": "42"}
	return ck
}

func TestWriteReadRoundTrip(t *testing.T) {
	ck := sampleCheckpoint()
	var buf bytes.Buffer
	if err := Write(&buf, ck); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.AtNS != ck.AtNS || got.Policy != ck.Policy {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.RNG["a"] != ck.RNG["a"] || got.RNG["b"] != ck.RNG["b"] {
		t.Fatal("rng states did not round-trip")
	}
	// The indented encoder reformats raw sections; content must survive.
	var a, b bytes.Buffer
	if err := json.Compact(&a, got.PolicyState); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := json.Compact(&b, ck.PolicyState); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("policy state %s want %s", a.Bytes(), b.Bytes())
	}
	// The wire bytes themselves must be deterministic (sorted maps).
	var buf2 bytes.Buffer
	if err := Write(&buf2, got); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	var buf3 bytes.Buffer
	if err := Write(&buf3, sampleCheckpoint()); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Fatal("wire bytes not deterministic")
	}
}

func TestValidate(t *testing.T) {
	if err := sampleCheckpoint().Validate(); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	bad := sampleCheckpoint()
	bad.Version = Version + 1
	if err := bad.Validate(); err == nil {
		t.Fatal("future version accepted")
	}
	bad = sampleCheckpoint()
	bad.AtNS = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero capture time accepted")
	}
}

func TestForkIdentity(t *testing.T) {
	ck := sampleCheckpoint()
	fork, err := ck.Fork("")
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	if fork.RNG["a"] != ck.RNG["a"] || fork.RNG["b"] != ck.RNG["b"] {
		t.Fatal("empty-label fork must preserve rng states")
	}
	// The fork is a deep copy: mutating it must not touch the original.
	fork.Meta["seed"] = "tampered"
	if ck.Meta["seed"] != "42" {
		t.Fatal("fork shares Meta with the original")
	}
	st := fork.RNG["a"]
	st.S[0] ^= 1
	fork.RNG["a"] = st
	if ck.RNG["a"].S[0] == st.S[0] {
		t.Fatal("fork shares RNG map with the original")
	}
}

func TestForkDeterministicDivergence(t *testing.T) {
	ck := sampleCheckpoint()
	f1, err := ck.Fork("rep/1")
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	f1again, err := ck.Fork("rep/1")
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	f2, err := ck.Fork("rep/2")
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	if f1.RNG["a"] != f1again.RNG["a"] {
		t.Fatal("same label must fork deterministically")
	}
	if f1.RNG["a"] == f2.RNG["a"] {
		t.Fatal("distinct labels must diverge")
	}
	if f1.RNG["a"] == ck.RNG["a"] {
		t.Fatal("non-empty label must change the stream")
	}
	// Streams stay pairwise distinct inside one fork.
	if f1.RNG["a"] == f1.RNG["b"] {
		t.Fatal("fork collapsed distinct streams")
	}
}

// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component of the simulator.
//
// Reproducibility is a hard requirement for the experiments: a whole run must
// be replayable from a single uint64 seed, and components that execute in
// parallel (server Bernoulli trials within an invitation round, per-VM trace
// synthesis) must draw from independent streams so that the schedule of
// goroutines cannot change the result. The generator is xoshiro256++ seeded
// through SplitMix64; streams are derived by hashing a (seed, label) pair, so
// a component's stream depends only on the master seed and its own stable
// label, never on creation order.
package rng

import "math"

// Source is a xoshiro256++ pseudo-random generator. It is NOT safe for
// concurrent use; split one stream per goroutine instead (see Split).
type Source struct {
	s0, s1, s2, s3 uint64

	// base is the first state word as seeded at construction. Split and
	// SplitIndex derive children from it — never from the mutable s0 — so the
	// streams a source derives are independent of how many draws it has made.
	base uint64

	// Cached second variate for NormFloat64 (Marsaglia polar method).
	spare     float64
	haveSpare bool
}

// splitmix64 advances x and returns the next SplitMix64 output. It is used
// both for seeding xoshiro state and for label hashing.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds yield independent
// streams; the all-zero xoshiro state is unreachable because SplitMix64 is a
// bijection and at least one of four consecutive outputs is nonzero.
func New(seed uint64) *Source {
	var s Source
	x := seed
	s.s0 = splitmix64(&x)
	s.s1 = splitmix64(&x)
	s.s2 = splitmix64(&x)
	s.s3 = splitmix64(&x)
	s.base = s.s0
	return &s
}

// hashLabel folds a label string into a uint64 using FNV-1a widened through
// SplitMix64, so similar labels produce unrelated stream seeds.
func hashLabel(label string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	return splitmix64(&h)
}

// Split derives an independent stream identified by label. The derived stream
// depends only on the receiver's seed material and the label — never on how
// many draws the receiver has made — so components can be created in any
// order (or in parallel) without changing their draws.
func (s *Source) Split(label string) *Source {
	mix := s.base ^ hashLabel(label)
	return New(mix)
}

// SplitIndex derives an independent stream identified by an integer index,
// e.g. one stream per VM or per server. Like Split, the child depends only on
// the receiver's seed material, the label and the index.
func (s *Source) SplitIndex(label string, i int) *Source {
	mix := s.base ^ hashLabel(label) ^ splitmixOnce(uint64(i)+0x632be59bd9b4e019)
	return New(mix)
}

func splitmixOnce(x uint64) uint64 { return splitmix64(&x) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	r := rotl(s.s0+s.s3, 23) + s.s0
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return r
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and branch-light.
	un := uint64(n)
	v := s.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Bernoulli performs a Bernoulli trial with success probability p
// (clamped to [0,1]) and reports whether it succeeded. It panics on NaN: a
// NaN probability is always a caller bug, and silently consuming a draw for
// it would shift the alignment of every later draw on the stream.
func (s *Source) Bernoulli(p float64) bool {
	if math.IsNaN(p) {
		panic("rng: Bernoulli called with NaN probability")
	}
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method. Two variates are generated per rejection loop; the spare is cached.
func (s *Source) NormFloat64() float64 {
	if s.haveSpare {
		s.haveSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.haveSpare = true
		return u * f
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1) by inversion.
func (s *Source) ExpFloat64() float64 {
	// 1-Float64() is in (0,1], so Log never sees 0.
	return -math.Log(1 - s.Float64())
}

// LogNormal returns a log-normal variate with the given parameters of the
// underlying normal (mu, sigma).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Pareto returns a bounded Pareto variate on [lo, hi] with shape alpha,
// drawn by inversion. Used for heavy-tailed VM demand synthesis.
func (s *Source) Pareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		panic("rng: invalid bounded Pareto parameters")
	}
	u := s.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

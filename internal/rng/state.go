package rng

import (
	"fmt"
	"sort"
)

// State is the complete serializable state of a Source: the four xoshiro256++
// words, the seed material Split children derive from, and the Marsaglia
// spare cache. Restoring a State reproduces the source bit for bit — every
// subsequent draw, and every subsequently derived child stream, matches the
// original. The zero State is not a valid generator state; only values
// produced by Source.State round-trip.
type State struct {
	S         [4]uint64 `json:"s"`
	Base      uint64    `json:"base"`
	Spare     float64   `json:"spare,omitempty"`
	HaveSpare bool      `json:"have_spare,omitempty"`
}

// State captures the source's current state.
func (s *Source) State() State {
	return State{
		S:         [4]uint64{s.s0, s.s1, s.s2, s.s3},
		Base:      s.base,
		Spare:     s.spare,
		HaveSpare: s.haveSpare,
	}
}

// Restore overwrites the source with st. After Restore the source draws the
// exact sequence the captured source would have drawn, and derives the exact
// child streams it would have derived.
func (s *Source) Restore(st State) {
	s.s0, s.s1, s.s2, s.s3 = st.S[0], st.S[1], st.S[2], st.S[3]
	s.base = st.Base
	s.spare = st.Spare
	s.haveSpare = st.HaveSpare
}

// FromState returns a new Source initialized to st.
func FromState(st State) *Source {
	s := &Source{}
	s.Restore(st)
	return s
}

// Fork derives the state of a branch stream from st and a branch label. The
// empty label is the identity (the branch continues the original stream
// unchanged); any other label yields a fresh stream seeded from the
// captured state and the label, so sibling branches with distinct labels
// diverge — deterministically: the same (state, label) pair always forks to
// the same stream.
func (st State) Fork(label string) State {
	if label == "" {
		return st
	}
	x := st.Base
	mix := splitmix64(&x)
	for _, w := range [...]uint64{st.S[0], st.S[1], st.S[2], st.S[3], hashLabel(label)} {
		x ^= w
		mix ^= splitmix64(&x)
	}
	return New(mix).State()
}

// Registry collects live Sources under stable string labels so a checkpoint
// can capture and restore every stream a component owns. Labels must be
// unique; the label set at restore time must match the captured set exactly,
// so a stream silently missing from either side is an error instead of a
// divergence.
type Registry struct {
	labels []string
	srcs   map[string]*Source
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{srcs: make(map[string]*Source)}
}

// Add registers src under label. It panics on a nil source, an empty label,
// or a duplicate label — all are wiring bugs, not runtime conditions.
func (r *Registry) Add(label string, src *Source) {
	if src == nil {
		panic("rng: Registry.Add with nil source")
	}
	if label == "" {
		panic("rng: Registry.Add with empty label")
	}
	if _, dup := r.srcs[label]; dup {
		panic("rng: Registry.Add duplicate label " + label)
	}
	r.srcs[label] = src
	r.labels = append(r.labels, label)
}

// Labels returns the registered labels in sorted order.
func (r *Registry) Labels() []string {
	out := append([]string(nil), r.labels...)
	sort.Strings(out)
	return out
}

// States captures the state of every registered source, keyed by label.
func (r *Registry) States() map[string]State {
	out := make(map[string]State, len(r.srcs))
	for label, src := range r.srcs {
		out[label] = src.State()
	}
	return out
}

// Restore installs the captured states into the registered sources. Every
// registered label must be present in states and vice versa.
func (r *Registry) Restore(states map[string]State) error {
	if len(states) != len(r.srcs) {
		return fmt.Errorf("rng: registry restore: %d captured streams, %d registered", len(states), len(r.srcs))
	}
	for label, st := range states {
		src, ok := r.srcs[label]
		if !ok {
			return fmt.Errorf("rng: registry restore: captured stream %q has no registered source", label)
		}
		src.Restore(st)
	}
	return nil
}

package rng

import (
	"encoding/json"
	"math"
	"testing"
)

// Regression for the draw-order dependence bug: Split used to mix the
// mutable s0, so splitting after intervening draws produced a different
// child than splitting first. Children must depend only on seed material.
func TestSplitIndependentOfDraws(t *testing.T) {
	fresh := New(101)
	drawn := New(101)
	for i := 0; i < 1000; i++ {
		drawn.Uint64()
	}
	drawn.NormFloat64() // also dirty the spare cache

	a := fresh.Split("stream")
	b := drawn.Split("stream")
	for i := 0; i < 200; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Split child depends on the parent's draw position (draw %d)", i)
		}
	}

	ai := fresh.SplitIndex("srv", 7)
	bi := drawn.SplitIndex("srv", 7)
	for i := 0; i < 200; i++ {
		if ai.Uint64() != bi.Uint64() {
			t.Fatalf("SplitIndex child depends on the parent's draw position (draw %d)", i)
		}
	}
}

// Grandchildren must be draw-order independent too: a restored or drawn-on
// child derives the same streams as a fresh one.
func TestSplitOfSplitIndependentOfDraws(t *testing.T) {
	a := New(5).Split("child")
	b := New(5).Split("child")
	for i := 0; i < 100; i++ {
		b.Uint64()
	}
	ga := a.Split("grand")
	gb := b.Split("grand")
	for i := 0; i < 50; i++ {
		if ga.Uint64() != gb.Uint64() {
			t.Fatal("grandchild stream depends on the child's draw position")
		}
	}
}

func TestBernoulliPanicsOnNaN(t *testing.T) {
	s := New(3)
	before := s.State()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Bernoulli(NaN) did not panic")
			}
		}()
		s.Bernoulli(math.NaN())
	}()
	if s.State() != before {
		t.Fatal("Bernoulli(NaN) consumed a draw before panicking")
	}
}

func TestStateRoundTrip(t *testing.T) {
	s := New(77)
	for i := 0; i < 123; i++ {
		s.Uint64()
	}
	s.NormFloat64() // leave a spare cached
	if !s.haveSpare {
		t.Fatal("test setup: expected a cached spare")
	}

	st := s.State()
	clone := FromState(st)
	for i := 0; i < 500; i++ {
		if s.NormFloat64() != clone.NormFloat64() {
			t.Fatalf("restored source diverged at draw %d", i)
		}
		if s.Uint64() != clone.Uint64() {
			t.Fatalf("restored source diverged at draw %d", i)
		}
	}
	// Derived streams must round-trip too.
	a := FromState(st).Split("x")
	b := FromState(st).Split("x")
	if a.Uint64() != b.Uint64() {
		t.Fatal("restored sources derive different children")
	}
	fresh := New(77).Split("x")
	if FromState(st).Split("x").Uint64() != fresh.Uint64() {
		t.Fatal("restored source derives different children than the original lineage")
	}
}

func TestStateJSONRoundTrip(t *testing.T) {
	s := New(9)
	for i := 0; i < 41; i++ {
		s.Float64()
	}
	s.NormFloat64()
	st := s.State()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back State
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Fatalf("state JSON round-trip changed bits: %+v != %+v", back, st)
	}
}

func TestForkDeterministicAndDivergent(t *testing.T) {
	s := New(13)
	for i := 0; i < 10; i++ {
		s.Uint64()
	}
	st := s.State()

	if st.Fork("") != st {
		t.Fatal("empty-label fork is not the identity")
	}
	f1 := st.Fork("branch/1")
	f2 := st.Fork("branch/1")
	if f1 != f2 {
		t.Fatal("same-label forks differ")
	}
	f3 := st.Fork("branch/2")
	if f3 == f1 {
		t.Fatal("distinct-label forks coincide")
	}
	a, b, orig := FromState(f1), FromState(f3), FromState(st)
	same13, same1o := 0, 0
	for i := 0; i < 100; i++ {
		ov := orig.Uint64()
		av := a.Uint64()
		if av == b.Uint64() {
			same13++
		}
		if av == ov {
			same1o++
		}
	}
	if same13 > 0 || same1o > 0 {
		t.Fatalf("forked streams overlap: %d draws equal across labels, %d equal to original", same13, same1o)
	}
	// Forks from different positions of the same stream must also diverge.
	orig.Uint64()
	if later := orig.State().Fork("branch/1"); later == f1 {
		t.Fatal("fork ignores the stream position")
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	master := New(21)
	reg := NewRegistry()
	srcs := map[string]*Source{
		"manager":  master.Split("manager"),
		"server/0": master.SplitIndex("server", 0),
		"server/1": master.SplitIndex("server", 1),
	}
	for label, src := range srcs {
		reg.Add(label, src)
	}
	srcs["manager"].Uint64()
	srcs["server/1"].NormFloat64()

	states := reg.States()
	want := map[string]uint64{}
	for label, src := range srcs {
		want[label] = FromState(src.State()).Uint64()
	}

	// Trash every source, then restore.
	for _, src := range srcs {
		src.Restore(New(999).State())
	}
	if err := reg.Restore(states); err != nil {
		t.Fatal(err)
	}
	for label, src := range srcs {
		if got := src.Uint64(); got != want[label] {
			t.Fatalf("stream %q not restored: draw %d, want %d", label, got, want[label])
		}
	}

	if got, want := len(reg.Labels()), 3; got != want {
		t.Fatalf("Labels() returned %d labels, want %d", got, want)
	}

	// Mismatched label sets are errors, not silent divergence.
	delete(states, "server/0")
	if err := reg.Restore(states); err == nil {
		t.Fatal("restore with a missing stream did not error")
	}
	states["server/2"] = New(1).State()
	if err := reg.Restore(states); err == nil {
		t.Fatal("restore with an unknown stream did not error")
	}
}

func TestRegistryAddPanics(t *testing.T) {
	cases := []struct {
		name string
		do   func(r *Registry)
	}{
		{"nil source", func(r *Registry) { r.Add("x", nil) }},
		{"empty label", func(r *Registry) { r.Add("", New(1)) }},
		{"duplicate", func(r *Registry) { r.Add("x", New(1)); r.Add("x", New(2)) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: Add did not panic", c.name)
				}
			}()
			c.do(NewRegistry())
		}()
	}
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependentOfOrder(t *testing.T) {
	m1 := New(7)
	m2 := New(7)
	// Split in different orders; streams must depend only on label.
	a1 := m1.Split("alpha")
	b1 := m1.Split("beta")
	b2 := m2.Split("beta")
	a2 := m2.Split("alpha")
	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatal("Split(alpha) depends on split order")
		}
		if b1.Uint64() != b2.Uint64() {
			t.Fatal("Split(beta) depends on split order")
		}
	}
}

func TestSplitIndexDistinct(t *testing.T) {
	m := New(9)
	seen := map[uint64]int{}
	for i := 0; i < 500; i++ {
		v := m.SplitIndex("vm", i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d start with the same draw", i, j)
		}
		seen[v] = i
	}
}

func TestSplitParentUnaffected(t *testing.T) {
	a := New(11)
	b := New(11)
	_ = a.Split("child")
	_ = a.SplitIndex("c", 3)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(8)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 2000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(13)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from expected %.0f", k, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdges(t *testing.T) {
	s := New(17)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) succeeded")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) failed")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) succeeded")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) failed")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(19)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		const n = 100000
		hits := 0
		for i := 0; i < n; i++ {
			if s.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("Bernoulli(%v) empirical rate %v", p, got)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(23)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(29)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestParetoBounds(t *testing.T) {
	s := New(31)
	lo, hi := 0.5, 10.0
	for i := 0; i < 100000; i++ {
		v := s.Pareto(1.2, lo, hi)
		if v < lo || v > hi {
			t.Fatalf("bounded Pareto out of [%v,%v]: %v", lo, hi, v)
		}
	}
}

func TestParetoPanicsOnBadParams(t *testing.T) {
	cases := []struct{ a, lo, hi float64 }{
		{0, 1, 2}, {1, 0, 2}, {1, 2, 1}, {-1, 1, 2},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Pareto(%v,%v,%v) did not panic", c.a, c.lo, c.hi)
				}
			}()
			New(1).Pareto(c.a, c.lo, c.hi)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(37)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	s := New(41)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed the element multiset: %v", xs)
	}
}

// Property: Intn(n) is always within bounds for arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: same (seed,label) always reproduces the same stream prefix.
func TestQuickSplitDeterministic(t *testing.T) {
	f := func(seed uint64, label string) bool {
		a := New(seed).Split(label)
		b := New(seed).Split(label)
		for i := 0; i < 20; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Float64 stays in [0,1) across arbitrary seeds.
func TestQuickFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Float64()
	}
	_ = sink
}

func BenchmarkBernoulli(b *testing.B) {
	s := New(1)
	n := 0
	for i := 0; i < b.N; i++ {
		if s.Bernoulli(0.3) {
			n++
		}
	}
	_ = n
}

package ecocloud

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Policy is the ecoCloud consolidation algorithm (assignment + migration
// procedures) in the shape the cluster driver runs. It is not safe for
// concurrent use; the driver invokes callbacks sequentially.
type Policy struct {
	cfg Config
	fa  AssignProbFunc
	// faRAM is the memory assignment function of the §V extension (zero
	// value when cfg.RAM is nil).
	faRAM AssignProbFunc

	// mgr is the data-center manager's stream: choosing among available
	// servers, picking which hibernated server to wake, sampling invitation
	// subsets.
	mgr *rng.Source
	// servers holds one independent stream per server, so Bernoulli draws
	// do not depend on iteration (or goroutine) order.
	servers map[int]*rng.Source
	master  *rng.Source

	// lastMig is the virtual time of each server's last migration request,
	// for the cooldown.
	lastMig map[int]time.Duration

	// nextGroup rotates which static server group receives the next
	// invitation when InviteGroups is enabled.
	nextGroup int
}

var _ cluster.Policy = (*Policy)(nil)

// New builds an ecoCloud policy from a validated configuration and a seed.
func New(cfg Config, seed uint64) (*Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fa, err := NewAssignProb(cfg.Ta, cfg.P)
	if err != nil {
		return nil, err
	}
	var faRAM AssignProbFunc
	if cfg.RAM != nil {
		faRAM, err = NewAssignProb(cfg.RAM.Ta, cfg.RAM.P)
		if err != nil {
			return nil, err
		}
	}
	master := rng.New(seed)
	return &Policy{
		cfg:     cfg,
		fa:      fa,
		faRAM:   faRAM,
		mgr:     master.Split("manager"),
		servers: make(map[int]*rng.Source),
		master:  master,
		lastMig: make(map[int]time.Duration),
	}, nil
}

// Name implements cluster.Policy.
func (p *Policy) Name() string { return "ecocloud" }

// Config returns the policy's configuration.
func (p *Policy) Config() Config { return p.cfg }

// serverSrc returns server id's private stream, creating it on first use.
func (p *Policy) serverSrc(id int) *rng.Source {
	s, ok := p.servers[id]
	if !ok {
		s = p.master.SplitIndex("server", id)
		p.servers[id] = s
	}
	return s
}

// inGrace reports whether server s is inside its post-activation grace
// period at time now.
func (p *Policy) inGrace(s *dc.Server, now time.Duration) bool {
	return s.State() == dc.Active && now-s.ActivatedAt() < p.cfg.Grace
}

// OnArrival implements the assignment procedure (§II): the manager invites
// the active servers; each runs a Bernoulli trial on fa of its local
// utilization; the manager assigns the VM to one of the available servers
// uniformly at random; if none is available it wakes a hibernated server.
func (p *Policy) OnArrival(env cluster.Env, vm *trace.VM) {
	dest := p.selectDestination(env, p.fa, -1, true, vm.DemandAt(env.Now), vm.RAMMB)
	if dest == nil {
		// Total saturation: every server active and none accepting. The VM
		// still has to run somewhere; degrade gracefully onto the least
		// utilized active server and record the event (the paper: frequent
		// occurrences mean the company should buy servers).
		env.Rec.Saturations++
		dest = leastUtilized(env.DC.Servers, env.Now)
		if dest == nil {
			// No active server at all and nothing to wake: the fleet is
			// empty, which indicates a mis-sized experiment.
			panic(fmt.Sprintf("ecocloud: no server available for VM %d in an empty fleet", vm.ID))
		}
	}
	if err := env.DC.Place(vm, dest); err != nil {
		panic(fmt.Sprintf("ecocloud: placing VM %d: %v", vm.ID, err))
	}
}

// OnControl implements the periodic monitoring step: hibernate drained
// servers, then run the migration procedure on each active server.
func (p *Policy) OnControl(env cluster.Env) {
	// Hibernate empty active servers whose grace has expired. Iterate over
	// a snapshot: Hibernate mutates state, not the slice, but keep it tidy.
	for _, s := range env.DC.Servers {
		if s.State() == dc.Active && s.NumVMs() == 0 && !p.inGrace(s, env.Now) {
			if err := env.DC.Hibernate(s); err != nil {
				panic(fmt.Sprintf("ecocloud: hibernating empty server %d: %v", s.ID, err))
			}
		}
	}
	if p.cfg.DisableMigration {
		return
	}
	for _, s := range env.DC.Servers {
		if s.State() != dc.Active || s.NumVMs() == 0 {
			continue
		}
		u := s.UtilizationAt(env.Now)
		src := p.serverSrc(s.ID)
		switch {
		case u < p.cfg.Tl && !p.inGrace(s, env.Now):
			// The cooldown paces only consolidation (low) migrations;
			// overload relief must never wait.
			if env.Now-p.lastMig[s.ID] < p.cfg.Cooldown && p.lastMig[s.ID] != 0 {
				continue
			}
			if src.Bernoulli(MigrateLowProb(u, p.cfg.Tl, p.cfg.Alpha)) {
				p.migrateLow(env, s)
			}
		case u > p.cfg.Th:
			if src.Bernoulli(MigrateHighProb(u, p.cfg.Th, p.cfg.Beta)) {
				p.migrateHigh(env, s, u)
			}
		}
	}
}

// migrateLow relocates one VM off an under-utilized server. Low migrations
// never wake a server: activating one machine to hibernate another is a net
// loss (§II), so if nobody accepts, the VM stays.
func (p *Policy) migrateLow(env cluster.Env, s *dc.Server) {
	vms := sortedVMs(s)
	if len(vms) == 0 {
		return
	}
	vm := vms[p.serverSrc(s.ID).Intn(len(vms))]
	dest := p.selectDestination(env, p.fa, s.ID, false, vm.DemandAt(env.Now), vm.RAMMB)
	if dest == nil {
		return
	}
	if err := env.DC.Migrate(vm.ID, dest); err != nil {
		panic(fmt.Sprintf("ecocloud: low migration of VM %d: %v", vm.ID, err))
	}
	// The cooldown clock starts at the successful migration, so a server
	// that merely failed to find a destination retries at the next scan.
	p.lastMig[s.ID] = env.Now
	env.Rec.Migration(env.Now, cluster.MigrationLow)
	// A server emptied by its last migration hibernates right away.
	if s.NumVMs() == 0 && !p.inGrace(s, env.Now) {
		if err := env.DC.Hibernate(s); err != nil {
			panic(fmt.Sprintf("ecocloud: hibernating drained server %d: %v", s.ID, err))
		}
	}
}

// migrateHigh relocates one VM off an overloaded server. The candidate set
// is the VMs big enough that removing one brings utilization back under Th;
// if none qualifies, the largest VM goes (and later trials migrate more).
// Destination selection runs with the tightened threshold Ta' = 0.9·u so the
// VM provably lands on a less-loaded server (no ping-pong), and may wake a
// hibernated server: relieving overload justifies the power.
func (p *Policy) migrateHigh(env cluster.Env, s *dc.Server, u float64) {
	vms := sortedVMs(s)
	if len(vms) == 0 {
		return
	}
	needMHz := (u - p.cfg.Th) * s.CapacityMHz()
	var candidates []*trace.VM
	for _, vm := range vms {
		if vm.DemandAt(env.Now) >= needMHz {
			candidates = append(candidates, vm)
		}
	}
	var vm *trace.VM
	if len(candidates) > 0 {
		vm = candidates[p.serverSrc(s.ID).Intn(len(candidates))]
	} else {
		vm = vms[0]
		for _, v := range vms[1:] {
			if v.DemandAt(env.Now) > vm.DemandAt(env.Now) {
				vm = v
			}
		}
	}
	taPrime := p.cfg.HighMigTaFactor * u
	if taPrime > p.cfg.Ta {
		taPrime = p.cfg.Ta
	}
	fa, err := p.fa.WithThreshold(taPrime)
	if err != nil {
		// taPrime <= 0 can only happen with u ~ 0, unreachable above Th.
		panic(fmt.Sprintf("ecocloud: tightened threshold %v: %v", taPrime, err))
	}
	dest := p.selectDestination(env, fa, s.ID, true, vm.DemandAt(env.Now), vm.RAMMB)
	if dest == nil {
		return
	}
	if err := env.DC.Migrate(vm.ID, dest); err != nil {
		panic(fmt.Sprintf("ecocloud: high migration of VM %d: %v", vm.ID, err))
	}
	env.Rec.Migration(env.Now, cluster.MigrationHigh)
}

// selectDestination runs one invitation round: collect the active servers
// (minus exclude), possibly sample an invitation subset, let each run its
// Bernoulli trial on fa, and pick uniformly among the accepting ones. With
// no acceptor and allowWake set, a hibernated server is woken and returned
// (its grace period starts now). Returns nil when no destination exists.
//
// The invitation carries the VM's CPU demand (the manager knows the
// application's resource requirements, §I), and availability includes the
// feasibility check u + demand/capacity <= Ta: a server never volunteers for
// a VM that would push it past the threshold, which matters for the heavy
// tail of CPU-hungry VMs.
func (p *Policy) selectDestination(env cluster.Env, fa AssignProbFunc, exclude int, allowWake bool, demandMHz, ramMB float64) *dc.Server {
	group := -1
	if g := p.cfg.InviteGroups; g > 1 {
		group = p.nextGroup % g
		p.nextGroup++
	}
	invited := make([]*dc.Server, 0, len(env.DC.Servers))
	for _, s := range env.DC.Servers {
		if s.State() != dc.Active || s.ID == exclude {
			continue
		}
		if group >= 0 && s.ID%p.cfg.InviteGroups != group {
			continue
		}
		invited = append(invited, s)
	}
	if k := p.cfg.InviteSubset; k > 0 && len(invited) > k {
		perm := p.mgr.Perm(len(invited))
		subset := make([]*dc.Server, k)
		for i := 0; i < k; i++ {
			subset[i] = invited[perm[i]]
		}
		// Keep ID order so per-server trial draws stay schedule-independent.
		sort.Slice(subset, func(i, j int) bool { return subset[i].ID < subset[j].ID })
		invited = subset
	}

	utils := utilizations(env.Pool, invited, env.Now)
	var accepted []*dc.Server
	for i, s := range invited {
		u := utils[i]
		fits := u+demandMHz/s.CapacityMHz() <= fa.Ta
		ramU := 0.0
		if p.cfg.RAM != nil && s.Spec.RAMMB > 0 {
			ramU = s.RAMUtilization()
			if ramU+ramMB/s.Spec.RAMMB > p.cfg.RAM.Ta {
				fits = false
			}
		}
		if p.inGrace(s, env.Now) {
			// A newly activated server always answers invitations
			// positively while the VM still fits under the effective
			// thresholds (§IV).
			if fits {
				accepted = append(accepted, s)
			}
			continue
		}
		if !fits {
			continue
		}
		if p.multiTrial(s, fa, u, ramU) {
			accepted = append(accepted, s)
		}
	}
	if len(accepted) > 0 {
		if p.cfg.PickMostLoaded {
			best := accepted[0]
			bestU := best.UtilizationAt(env.Now)
			for _, s := range accepted[1:] {
				if u := s.UtilizationAt(env.Now); u > bestU {
					best, bestU = s, u
				}
			}
			return best
		}
		return accepted[p.mgr.Intn(len(accepted))]
	}
	if !allowWake {
		return nil
	}
	// Wake a hibernated server that can actually fit the VM; if the VM is
	// too big for every sleeping machine, wake the largest one and degrade.
	var sleeping, fitting []*dc.Server
	for _, s := range env.DC.Servers {
		if s.State() != dc.Hibernated {
			continue
		}
		sleeping = append(sleeping, s)
		fitsRAM := p.cfg.RAM == nil || s.Spec.RAMMB <= 0 || ramMB <= p.cfg.RAM.Ta*s.Spec.RAMMB
		if demandMHz <= fa.Ta*s.CapacityMHz() && fitsRAM {
			fitting = append(fitting, s)
		}
	}
	if len(sleeping) == 0 {
		return nil
	}
	var wake *dc.Server
	if len(fitting) > 0 {
		wake = fitting[p.mgr.Intn(len(fitting))]
	} else {
		wake = sleeping[0]
		for _, s := range sleeping[1:] {
			if s.CapacityMHz() > wake.CapacityMHz() {
				wake = s
			}
		}
	}
	if err := env.DC.Activate(wake, env.Now); err != nil {
		panic(fmt.Sprintf("ecocloud: waking server %d: %v", wake.ID, err))
	}
	return wake
}

// multiTrial runs the availability trial(s) for a server that already
// passed the feasibility checks: CPU-only (the paper's core algorithm) when
// the RAM extension is off or the server does not model memory, otherwise
// one of the two §V strategies.
func (p *Policy) multiTrial(s *dc.Server, fa AssignProbFunc, u, ramU float64) bool {
	src := p.serverSrc(s.ID)
	if p.cfg.RAM == nil || s.Spec.RAMMB <= 0 {
		return src.Bernoulli(fa.Eval(u))
	}
	switch p.cfg.RAM.Strategy {
	case CriticalPlusConstraints:
		// Single trial on the most critical resource; the other resource's
		// threshold was already enforced as a feasibility constraint.
		if ramU/p.faRAM.Ta > u/fa.Ta {
			return src.Bernoulli(p.faRAM.Eval(ramU))
		}
		return src.Bernoulli(fa.Eval(u))
	default: // AllTrials
		return src.Bernoulli(fa.Eval(u)) && src.Bernoulli(p.faRAM.Eval(ramU))
	}
}

// utilizations evaluates UtilizationAt for every server, sharding across
// the run's fork-join pool when one is attached and the fleet is large. The
// result is identical to the sequential path: a utilization read returns the
// same bits either way (it may fill the server's demand cache, but that is a
// per-server mutation, and internal/par never hands one index-slot to two
// workers). Small invitations stay inline — the reads are cache hits and
// not worth the fan-out.
func utilizations(pool *par.Pool, servers []*dc.Server, now time.Duration) []float64 {
	out := make([]float64, len(servers))
	if !pool.Parallel() || len(servers) < 128 {
		for i, s := range servers {
			out[i] = s.UtilizationAt(now)
		}
		return out
	}
	par.For(pool, len(servers), func(i int) { out[i] = servers[i].UtilizationAt(now) })
	return out
}

// sortedVMs returns s's VMs in ID order, so random selection by a
// deterministic stream is itself deterministic (map iteration is not).
func sortedVMs(s *dc.Server) []*trace.VM {
	vms := s.VMs()
	sort.Slice(vms, func(i, j int) bool { return vms[i].ID < vms[j].ID })
	return vms
}

// leastUtilized returns the active server with the lowest utilization, or
// nil if none is active.
func leastUtilized(servers []*dc.Server, now time.Duration) *dc.Server {
	var best *dc.Server
	bestU := 0.0
	for _, s := range servers {
		if s.State() != dc.Active {
			continue
		}
		u := s.UtilizationAt(now)
		if best == nil || u < bestU {
			best, bestU = s, u
		}
	}
	return best
}

package ecocloud

import (
	"testing"
	"time"

	"repro/internal/rng"
)

// newCheckpointFixture builds a policy with warmed-up mutable state: derived
// per-server streams that have consumed draws, cooldown clocks, and a
// rotated invitation group.
func newCheckpointFixture(t *testing.T) *Policy {
	t.Helper()
	p, err := New(DefaultConfig(), 99)
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	for _, id := range []int{4, 1, 7} {
		src := p.serverSrc(id)
		for i := 0; i < id+1; i++ {
			src.Float64()
		}
	}
	p.mgr.Float64()
	p.lastMig[4] = 40 * time.Minute
	p.lastMig[1] = 10 * time.Minute
	p.nextGroup = 5
	return p
}

func TestPolicyCheckpointRoundTrip(t *testing.T) {
	p := newCheckpointFixture(t)

	reg := rng.NewRegistry()
	p.RegisterStreams(reg)
	states := reg.States()
	raw, err := p.MarshalCheckpoint()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}

	// A fresh policy from the same config+seed, with the captured state
	// adopted on top, must behave identically from here on.
	q, err := New(DefaultConfig(), 99)
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	if err := q.UnmarshalCheckpoint(raw); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := q.AdoptStreams(states); err != nil {
		t.Fatalf("adopt: %v", err)
	}

	if q.nextGroup != p.nextGroup {
		t.Fatalf("nextGroup %d want %d", q.nextGroup, p.nextGroup)
	}
	if len(q.lastMig) != len(p.lastMig) || q.lastMig[4] != p.lastMig[4] || q.lastMig[1] != p.lastMig[1] {
		t.Fatalf("lastMig %v want %v", q.lastMig, p.lastMig)
	}
	// Every stream — including the per-server ones the fresh policy had not
	// derived — continues exactly where the original left off.
	for _, id := range []int{4, 1, 7} {
		if a, b := p.serverSrc(id).Float64(), q.serverSrc(id).Float64(); a != b {
			t.Fatalf("server %d stream diverged: %v vs %v", id, a, b)
		}
	}
	if a, b := p.mgr.Float64(), q.mgr.Float64(); a != b {
		t.Fatalf("manager stream diverged: %v vs %v", a, b)
	}
	if a, b := p.master.Float64(), q.master.Float64(); a != b {
		t.Fatalf("master stream diverged: %v vs %v", a, b)
	}
	// A lazily derived stream NOT in the checkpoint still derives
	// identically on both sides (Split is draw-order independent).
	if a, b := p.serverSrc(30).Float64(), q.serverSrc(30).Float64(); a != b {
		t.Fatalf("post-adopt derivation diverged: %v vs %v", a, b)
	}
}

func TestAdoptStreamsRejectsUnknownLabel(t *testing.T) {
	p := newCheckpointFixture(t)
	reg := rng.NewRegistry()
	p.RegisterStreams(reg)
	states := reg.States()
	states["protocol/bogus"] = rng.New(1).State()

	q, err := New(DefaultConfig(), 99)
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	if err := q.AdoptStreams(states); err == nil {
		t.Fatal("unknown stream label accepted")
	}
}

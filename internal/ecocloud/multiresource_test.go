package ecocloud

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func newMulti(t *testing.T) *MultiResource {
	t.Helper()
	cpu, err := NewAssignProb(0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	ram, err := NewAssignProb(0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMultiResource(map[string]AssignProbFunc{"cpu": cpu, "ram": ram})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMultiResourceValidation(t *testing.T) {
	if _, err := NewMultiResource(nil); err == nil {
		t.Fatal("empty resource map accepted")
	}
	if _, err := NewMultiResource(map[string]AssignProbFunc{"cpu": {}}); err == nil {
		t.Fatal("uninitialized assignment function accepted")
	}
}

func TestResourcesSortedOrder(t *testing.T) {
	m := newMulti(t)
	names := m.Resources()
	if len(names) != 2 || names[0] != "cpu" || names[1] != "ram" {
		t.Fatalf("resources = %v", names)
	}
}

func TestTrialAllRequiresAllResources(t *testing.T) {
	m := newMulti(t)
	src := rng.New(1)
	if _, err := m.TrialAll(map[string]float64{"cpu": 0.5}, src); err == nil {
		t.Fatal("missing resource not reported")
	}
}

func TestTrialAllRejectsWhenAnyResourceFull(t *testing.T) {
	m := newMulti(t)
	src := rng.New(2)
	// RAM above its threshold: fa_ram = 0, so acceptance is impossible.
	for i := 0; i < 200; i++ {
		ok, err := m.TrialAll(map[string]float64{"cpu": 0.675, "ram": 0.85}, src)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("accepted despite a saturated resource")
		}
	}
}

func TestTrialAllEmpiricalRateMatchesProduct(t *testing.T) {
	m := newMulti(t)
	src := rng.New(3)
	utils := map[string]float64{"cpu": 0.6, "ram": 0.5}
	want, err := m.AcceptProbAll(utils)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		ok, err := m.TrialAll(utils, src)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("empirical rate %v, closed form %v", got, want)
	}
}

func TestCriticalPicksHighestRelativeUtilization(t *testing.T) {
	m := newMulti(t)
	// cpu 0.6/0.9 = 0.667; ram 0.6/0.8 = 0.75 -> ram is critical.
	c, err := m.Critical(map[string]float64{"cpu": 0.6, "ram": 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if c != "ram" {
		t.Fatalf("critical = %q, want ram", c)
	}
	// cpu 0.85/0.9 = 0.944 beats ram 0.6/0.8.
	c, err = m.Critical(map[string]float64{"cpu": 0.85, "ram": 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if c != "cpu" {
		t.Fatalf("critical = %q, want cpu", c)
	}
}

func TestTrialCriticalConstraints(t *testing.T) {
	m := newMulti(t)
	src := rng.New(5)
	// cpu is critical (0.88/0.9); ram violates its constraint (0.81 > 0.8):
	// rejection is certain.
	for i := 0; i < 200; i++ {
		ok, err := m.TrialCritical(map[string]float64{"cpu": 0.88, "ram": 0.81}, src)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("accepted despite a violated constraint")
		}
	}
}

func TestTrialCriticalUsesSingleTrial(t *testing.T) {
	m := newMulti(t)
	src := rng.New(7)
	// ram critical at 0.6/0.8; cpu low (0.2) would often fail its own trial
	// under AllTrials, but strategy 2 ignores cpu's probability entirely.
	utils := map[string]float64{"cpu": 0.2, "ram": 0.6}
	ramFn := m.funcs["ram"]
	want := ramFn.Eval(0.6)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		ok, err := m.TrialCritical(utils, src)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("empirical rate %v, want fa_ram(0.6) = %v", got, want)
	}
	// Sanity: strategy 1 on the same state accepts strictly less often.
	all, err := m.AcceptProbAll(utils)
	if err != nil {
		t.Fatal(err)
	}
	if all >= want {
		t.Fatalf("AllTrials prob %v not below critical-only %v", all, want)
	}
}

func TestTrialCriticalMissingResource(t *testing.T) {
	m := newMulti(t)
	if _, err := m.TrialCritical(map[string]float64{"ram": 0.5}, rng.New(1)); err == nil {
		t.Fatal("missing resource not reported")
	}
}

package ecocloud

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/rng"
)

var (
	_ checkpoint.Checkpointable = (*Policy)(nil)
	_ checkpoint.StreamOwner    = (*Policy)(nil)
)

// Checkpoint support: the policy's mutable state is its rng streams (the
// manager stream, the master and every lazily derived per-server stream),
// the cooldown clocks, and the invitation-group rotation counter. The
// configuration and the assignment functions are NOT state — a resume
// constructs the policy from the same Config and seed and then adopts the
// captured state on top.

// Stream labels. Per-server streams use serverStreamPrefix + decimal ID so
// the label set is stable across processes and runs.
const (
	masterStream       = "ecocloud/master"
	managerStream      = "ecocloud/manager"
	serverStreamPrefix = "ecocloud/server/"
)

// policyState is the serializable non-rng state (see MarshalCheckpoint).
type policyState struct {
	// LastMigNS holds the cooldown clocks as (server ID, virtual time) pairs
	// sorted by ID, so the encoded bytes are deterministic.
	LastMigNS []serverClock `json:"last_mig_ns,omitempty"`
	NextGroup int           `json:"next_group,omitempty"`
}

type serverClock struct {
	Server int   `json:"server"`
	AtNS   int64 `json:"at_ns"`
}

// RegisterStreams implements checkpoint.StreamOwner: it registers the
// manager and master streams plus every per-server stream derived so far.
// Servers whose stream was never derived have no state to capture — a
// resumed policy re-derives them identically on first use (Split depends
// only on seed material).
func (p *Policy) RegisterStreams(reg *rng.Registry) {
	reg.Add(masterStream, p.master)
	reg.Add(managerStream, p.mgr)
	ids := make([]int, 0, len(p.servers))
	for id := range p.servers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		reg.Add(serverStreamPrefix+strconv.Itoa(id), p.servers[id])
	}
}

// AdoptStreams implements checkpoint.StreamOwner: it installs the captured
// stream states, creating per-server streams that the fresh policy has not
// derived yet.
func (p *Policy) AdoptStreams(states map[string]rng.State) error {
	reg := rng.NewRegistry()
	reg.Add(masterStream, p.master)
	reg.Add(managerStream, p.mgr)
	for label := range states {
		if !strings.HasPrefix(label, serverStreamPrefix) {
			if label == masterStream || label == managerStream {
				continue
			}
			return fmt.Errorf("ecocloud: checkpoint stream %q not recognized", label)
		}
		id, err := strconv.Atoi(label[len(serverStreamPrefix):])
		if err != nil {
			return fmt.Errorf("ecocloud: checkpoint stream %q: bad server ID", label)
		}
		src, ok := p.servers[id]
		if !ok {
			src = &rng.Source{}
			p.servers[id] = src
		}
		reg.Add(label, src)
	}
	return reg.Restore(states)
}

// MarshalCheckpoint implements checkpoint.Checkpointable.
func (p *Policy) MarshalCheckpoint() (json.RawMessage, error) {
	st := policyState{NextGroup: p.nextGroup}
	ids := make([]int, 0, len(p.lastMig))
	for id := range p.lastMig {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st.LastMigNS = append(st.LastMigNS, serverClock{Server: id, AtNS: int64(p.lastMig[id])})
	}
	return json.Marshal(st)
}

// UnmarshalCheckpoint implements checkpoint.Checkpointable.
func (p *Policy) UnmarshalCheckpoint(raw json.RawMessage) error {
	var st policyState
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &st); err != nil {
			return fmt.Errorf("ecocloud: checkpoint state: %w", err)
		}
	}
	p.lastMig = make(map[int]time.Duration, len(st.LastMigNS))
	for _, c := range st.LastMigNS {
		p.lastMig[c.Server] = time.Duration(c.AtNS)
	}
	p.nextGroup = st.NextGroup
	return nil
}

package ecocloud_test

import (
	"fmt"

	"repro/internal/ecocloud"
)

// The assignment probability function with the paper's parameters: zero at
// idle, peaked near (but under) the threshold, zero above it.
func ExampleNewAssignProb() {
	fa, err := ecocloud.NewAssignProb(0.9, 3)
	if err != nil {
		panic(err)
	}
	for _, u := range []float64{0, 0.3, fa.ArgMax(), 0.89, 0.95} {
		fmt.Printf("fa(%.3f) = %.3f\n", u, fa.Eval(u))
	}
	// Output:
	// fa(0.000) = 0.000
	// fa(0.300) = 0.234
	// fa(0.675) = 1.000
	// fa(0.890) = 0.102
	// fa(0.950) = 0.000
}

// Migration trigger probabilities just outside the [Tl, Th] band.
func ExampleMigrateLowProb() {
	fmt.Printf("f_l(0.10) = %.3f\n", ecocloud.MigrateLowProb(0.10, 0.5, 0.25))
	fmt.Printf("f_h(0.97) = %.3f\n", ecocloud.MigrateHighProb(0.97, 0.95, 0.25))
	// Output:
	// f_l(0.10) = 0.946
	// f_h(0.97) = 0.795
}

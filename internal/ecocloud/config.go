package ecocloud

import (
	"fmt"
	"time"
)

// Config collects the ecoCloud parameters. The zero value is invalid; start
// from DefaultConfig, which uses the settings of the paper's §III
// experiments.
type Config struct {
	// Assignment function parameters (Eq. 1–2).
	Ta float64 // maximum allowed utilization for acceptance
	P  float64 // assignment shape parameter

	// Migration function parameters (Eq. 3–4). The paper's sensitivity study
	// requires Th > Ta, otherwise migrations fire before packing can reach
	// the target utilization.
	Tl    float64 // lower utilization threshold
	Th    float64 // upper utilization threshold
	Alpha float64 // low-migration shape
	Beta  float64 // high-migration shape

	// Grace is the interval after activation during which a server accepts
	// every assignment invitation (as long as it stays under Ta). The paper
	// uses 30 minutes (§IV) to stop freshly woken servers from being drained
	// before they gather a critical mass of VMs.
	Grace time.Duration

	// Cooldown is the minimum gap between successful consolidation (low)
	// migrations issued by the same server. The paper monitors utilization
	// every few seconds yet reports <200 migrations/hour across 400
	// servers; the cooldown is the calibration knob that spaces the drain
	// (see DESIGN.md). Overload-relief migrations are never throttled.
	Cooldown time.Duration

	// HighMigTaFactor tightens the acceptance threshold during destination
	// selection for a high migration: Ta' = HighMigTaFactor * u_source
	// (paper: 0.9), which guarantees the VM lands on a less-loaded server
	// and prevents ping-pong.
	HighMigTaFactor float64

	// InviteSubset, when positive, sends each invitation to a uniform random
	// subset of that many active servers instead of broadcasting.
	InviteSubset int

	// InviteGroups, when above 1, statically partitions the fleet into that
	// many groups (by server ID modulo InviteGroups) and broadcasts each
	// invitation to a single group, rotating round-robin — the paper's
	// footnote 1: "in very large data centers ... the invitation message may
	// be broadcast to one of such groups only". Combines with InviteSubset
	// (the subset is then sampled within the group).
	InviteGroups int

	// RAM, when non-nil, enables the §V multi-resource extension end to end:
	// servers also track memory, invitations carry the VM's footprint, and
	// availability is decided by the configured strategy over {CPU, RAM}.
	RAM *RAMConfig

	// PickMostLoaded changes how the manager chooses among the servers that
	// declared availability: instead of uniformly at random (the paper's
	// model assumes 1/(k+1)), it picks the most utilized volunteer. This is
	// an ablation knob — it tightens packing at the cost of deviating from
	// the analyzed policy — and is off by default.
	PickMostLoaded bool

	// DisableMigration turns the migration procedure off entirely; the
	// Fig. 12 experiment analyzes the assignment procedure in isolation.
	DisableMigration bool
}

// MultiStrategy selects how the §V extension combines per-resource trials.
type MultiStrategy int

const (
	// AllTrials runs one Bernoulli trial per resource and accepts only when
	// every trial succeeds (§V strategy 1).
	AllTrials MultiStrategy = iota
	// CriticalPlusConstraints runs a single trial on the most critical
	// resource and treats the others as hard thresholds (§V strategy 2).
	CriticalPlusConstraints
)

// RAMConfig parameterizes the memory dimension of the extension.
type RAMConfig struct {
	// Ta is the memory acceptance threshold (like the CPU Ta).
	Ta float64
	// P shapes the memory assignment function fa_ram.
	P float64
	// Strategy picks between the two §V proposals.
	Strategy MultiStrategy
}

// DefaultRAMConfig mirrors the CPU parameters on the memory axis with the
// all-trials strategy.
func DefaultRAMConfig() *RAMConfig {
	return &RAMConfig{Ta: 0.90, P: 3, Strategy: AllTrials}
}

// DefaultConfig returns the paper's §III parameter set: Ta=0.90, p=3,
// Tl=0.50, Th=0.95, alpha=beta=0.25, 30-minute grace.
func DefaultConfig() Config {
	return Config{
		Ta:              0.90,
		P:               3,
		Tl:              0.50,
		Th:              0.95,
		Alpha:           0.25,
		Beta:            0.25,
		Grace:           30 * time.Minute,
		Cooldown:        5 * time.Minute,
		HighMigTaFactor: 0.9,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Ta <= 0 || c.Ta > 1 {
		return fmt.Errorf("ecocloud: Ta = %v outside (0,1]", c.Ta)
	}
	if c.P <= 0 {
		return fmt.Errorf("ecocloud: p = %v must be positive", c.P)
	}
	if !c.DisableMigration {
		if c.Tl < 0 || c.Tl >= 1 {
			return fmt.Errorf("ecocloud: Tl = %v outside [0,1)", c.Tl)
		}
		if c.Th <= 0 || c.Th >= 1 {
			return fmt.Errorf("ecocloud: Th = %v outside (0,1)", c.Th)
		}
		if c.Tl >= c.Th {
			return fmt.Errorf("ecocloud: Tl = %v must be below Th = %v", c.Tl, c.Th)
		}
		if c.Alpha <= 0 || c.Beta <= 0 {
			return fmt.Errorf("ecocloud: alpha/beta = %v/%v must be positive", c.Alpha, c.Beta)
		}
		if c.HighMigTaFactor <= 0 || c.HighMigTaFactor > 1 {
			return fmt.Errorf("ecocloud: HighMigTaFactor = %v outside (0,1]", c.HighMigTaFactor)
		}
	}
	if c.Grace < 0 {
		return fmt.Errorf("ecocloud: Grace = %v negative", c.Grace)
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("ecocloud: Cooldown = %v negative", c.Cooldown)
	}
	if c.InviteSubset < 0 {
		return fmt.Errorf("ecocloud: InviteSubset = %d negative", c.InviteSubset)
	}
	if c.InviteGroups < 0 {
		return fmt.Errorf("ecocloud: InviteGroups = %d negative", c.InviteGroups)
	}
	if c.RAM != nil {
		if c.RAM.Ta <= 0 || c.RAM.Ta > 1 {
			return fmt.Errorf("ecocloud: RAM Ta = %v outside (0,1]", c.RAM.Ta)
		}
		if c.RAM.P <= 0 {
			return fmt.Errorf("ecocloud: RAM p = %v must be positive", c.RAM.P)
		}
		if c.RAM.Strategy != AllTrials && c.RAM.Strategy != CriticalPlusConstraints {
			return fmt.Errorf("ecocloud: unknown multi-resource strategy %d", c.RAM.Strategy)
		}
	}
	return nil
}

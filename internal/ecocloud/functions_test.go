package ecocloud

import (
	"math"
	"testing"
	"testing/quick"
)

func mustAssign(t *testing.T, ta, p float64) AssignProbFunc {
	t.Helper()
	f, err := NewAssignProb(ta, p)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAssignProbBoundary(t *testing.T) {
	f := mustAssign(t, 0.9, 3)
	if f.Eval(0) != 0 {
		t.Fatalf("fa(0) = %v, want 0 (idle servers must drain)", f.Eval(0))
	}
	if f.Eval(0.9) != 0 {
		t.Fatalf("fa(Ta) = %v, want 0", f.Eval(0.9))
	}
	if f.Eval(0.95) != 0 || f.Eval(1.2) != 0 {
		t.Fatal("fa above Ta must be 0")
	}
	if f.Eval(-0.1) != 0 {
		t.Fatal("fa below 0 must be 0")
	}
}

func TestAssignProbPeak(t *testing.T) {
	// Paper: maximum at u* = Ta*p/(p+1), normalized to 1.
	for _, p := range []float64{2, 3, 5} {
		f := mustAssign(t, 0.9, p)
		wantArg := 0.9 * p / (p + 1)
		if math.Abs(f.ArgMax()-wantArg) > 1e-12 {
			t.Fatalf("p=%v: ArgMax = %v, want %v", p, f.ArgMax(), wantArg)
		}
		if got := f.Eval(f.ArgMax()); math.Abs(got-1) > 1e-12 {
			t.Fatalf("p=%v: fa(u*) = %v, want 1", p, got)
		}
	}
}

func TestAssignProbPeakShiftsRightWithP(t *testing.T) {
	// Fig. 2: larger p moves the sweet spot toward Ta.
	f2 := mustAssign(t, 0.9, 2)
	f3 := mustAssign(t, 0.9, 3)
	f5 := mustAssign(t, 0.9, 5)
	if !(f2.ArgMax() < f3.ArgMax() && f3.ArgMax() < f5.ArgMax()) {
		t.Fatalf("peaks %v %v %v not increasing in p", f2.ArgMax(), f3.ArgMax(), f5.ArgMax())
	}
	// At low utilization, small p accepts more readily (Fig. 2 crossing).
	if !(f2.Eval(0.2) > f3.Eval(0.2) && f3.Eval(0.2) > f5.Eval(0.2)) {
		t.Fatal("low-utilization acceptance should decrease with p")
	}
}

func TestAssignProbUnimodal(t *testing.T) {
	f := mustAssign(t, 0.9, 3)
	peak := f.ArgMax()
	prev := -1.0
	for u := 0.0; u <= peak; u += 0.01 {
		v := f.Eval(u)
		if v < prev-1e-12 {
			t.Fatalf("fa not increasing before the peak at u=%v", u)
		}
		prev = v
	}
	prev = 2.0
	for u := peak; u <= 0.9; u += 0.01 {
		v := f.Eval(u)
		if v > prev+1e-12 {
			t.Fatalf("fa not decreasing after the peak at u=%v", u)
		}
		prev = v
	}
}

func TestAssignProbNormalizerFormula(t *testing.T) {
	// Eq. (2) spot check for p=3, Ta=0.9:
	// Mp = 3^3/4^4 * 0.9^4 = 27/256 * 0.6561.
	f := mustAssign(t, 0.9, 3)
	want := 27.0 / 256.0 * math.Pow(0.9, 4)
	if math.Abs(f.normalizer()-want) > 1e-15 {
		t.Fatalf("Mp = %v, want %v", f.normalizer(), want)
	}
}

func TestAssignProbValidation(t *testing.T) {
	cases := []struct{ ta, p float64 }{
		{0, 3}, {-0.5, 3}, {1.1, 3}, {0.9, 0}, {0.9, -1},
	}
	for _, c := range cases {
		if _, err := NewAssignProb(c.ta, c.p); err == nil {
			t.Errorf("NewAssignProb(%v,%v) accepted", c.ta, c.p)
		}
	}
}

func TestWithThreshold(t *testing.T) {
	f := mustAssign(t, 0.9, 3)
	g, err := f.WithThreshold(0.6)
	if err != nil {
		t.Fatal(err)
	}
	if g.Ta != 0.6 || g.P != 3 {
		t.Fatalf("WithThreshold produced Ta=%v p=%v", g.Ta, g.P)
	}
	if g.Eval(0.7) != 0 {
		t.Fatal("tightened function must reject above its own threshold")
	}
	if math.Abs(g.Eval(g.ArgMax())-1) > 1e-12 {
		t.Fatal("tightened function must still be normalized to peak 1")
	}
	if _, err := f.WithThreshold(0); err == nil {
		t.Fatal("WithThreshold(0) accepted")
	}
}

func TestMigrateLowProb(t *testing.T) {
	const tl, alpha = 0.3, 1.0
	if got := MigrateLowProb(0, tl, alpha); got != 1 {
		t.Fatalf("f_l(0) = %v, want 1", got)
	}
	if got := MigrateLowProb(tl, tl, alpha); got != 0 {
		t.Fatalf("f_l(Tl) = %v, want 0", got)
	}
	if got := MigrateLowProb(0.5, tl, alpha); got != 0 {
		t.Fatalf("f_l above Tl = %v, want 0", got)
	}
	if got := MigrateLowProb(-0.1, tl, alpha); got != 0 {
		t.Fatalf("f_l(-0.1) = %v, want 0", got)
	}
	// Linear when alpha=1: f_l(0.15) = 0.5.
	if got := MigrateLowProb(0.15, tl, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("f_l(0.15) = %v, want 0.5", got)
	}
	// Fig. 3: alpha=0.25 lies above alpha=1 strictly inside (0, Tl).
	if MigrateLowProb(0.15, tl, 0.25) <= MigrateLowProb(0.15, tl, 1) {
		t.Fatal("smaller alpha should make f_l larger inside (0,Tl)")
	}
}

func TestMigrateLowProbMonotone(t *testing.T) {
	prev := 2.0
	for u := 0.0; u < 0.3; u += 0.01 {
		v := MigrateLowProb(u, 0.3, 0.25)
		if v > prev+1e-12 {
			t.Fatalf("f_l not decreasing at u=%v", u)
		}
		prev = v
	}
}

func TestMigrateHighProb(t *testing.T) {
	const th, beta = 0.8, 1.0
	if got := MigrateHighProb(th, th, beta); got != 0 {
		t.Fatalf("f_h(Th) = %v, want 0", got)
	}
	if got := MigrateHighProb(0.5, th, beta); got != 0 {
		t.Fatalf("f_h below Th = %v, want 0", got)
	}
	if got := MigrateHighProb(1, th, beta); got != 1 {
		t.Fatalf("f_h(1) = %v, want 1", got)
	}
	if got := MigrateHighProb(1.4, th, beta); got != 1 {
		t.Fatalf("f_h(1.4) = %v, want 1 (overload saturates)", got)
	}
	// Linear when beta=1: f_h(0.9) = 0.5.
	if got := MigrateHighProb(0.9, th, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("f_h(0.9) = %v, want 0.5", got)
	}
	// Fig. 3: beta=0.25 lies above beta=1 strictly inside (Th, 1).
	if MigrateHighProb(0.9, th, 0.25) <= MigrateHighProb(0.9, th, 1) {
		t.Fatal("smaller beta should make f_h larger inside (Th,1)")
	}
}

func TestMigrateHighProbMonotone(t *testing.T) {
	prev := -1.0
	for u := 0.8; u <= 1.0; u += 0.005 {
		v := MigrateHighProb(u, 0.8, 0.25)
		if v < prev-1e-12 {
			t.Fatalf("f_h not increasing at u=%v", u)
		}
		prev = v
	}
}

// Property: all three probability functions stay in [0,1] for any
// utilization and any valid parameters.
func TestQuickProbabilitiesInUnitInterval(t *testing.T) {
	f := func(uRaw, taRaw, pRaw, tlRaw, thRaw, abRaw uint16) bool {
		u := float64(uRaw) / 65535 * 2 // [0, 2]: include overload
		ta := 0.05 + float64(taRaw)/65535*0.95
		p := 0.5 + float64(pRaw)/65535*9
		tl := 0.05 + float64(tlRaw)/65535*0.9
		th := 0.05 + float64(thRaw)/65535*0.9
		ab := 0.05 + float64(abRaw)/65535*4
		fa, err := NewAssignProb(ta, p)
		if err != nil {
			return false
		}
		for _, v := range []float64{
			fa.Eval(u),
			MigrateLowProb(u, tl, ab),
			MigrateHighProb(u, th, ab),
		} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAssignProbEval(b *testing.B) {
	f, err := NewAssignProb(0.9, 3)
	if err != nil {
		b.Fatal(err)
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += f.Eval(float64(i%100) / 100)
	}
	_ = sink
}

// Package ecocloud implements the paper's contribution: the decentralized,
// probabilistic assignment and migration procedures that consolidate VMs
// onto as few servers as possible using only per-server local information.
//
// Every decision is a Bernoulli trial. A server invited to host a VM accepts
// with probability fa(u) (Eq. 1–2), which is zero for an idle server (so
// draining servers stay on course to hibernate), zero above the threshold Ta
// (so packing never overloads), and maximal at intermediate-to-high
// utilization (so load concentrates). A server outside the [Tl, Th]
// utilization band requests a migration with probability f_l (Eq. 3) or f_h
// (Eq. 4).
package ecocloud

import (
	"fmt"
	"math"
)

// AssignProbFunc is the assignment probability function fa of Eq. (1):
//
//	fa(u) = u^p (Ta - u) / Mp   for 0 <= u <= Ta,   0 otherwise,
//
// normalized by Mp (Eq. 2) so the maximum value is 1. Its maximum sits at
// u* = Ta·p/(p+1), so larger p pushes the sweet spot toward Ta and
// intensifies consolidation.
type AssignProbFunc struct {
	Ta float64 // maximum allowed utilization (0 < Ta <= 1)
	P  float64 // shape parameter (p > 0)
	mp float64 // cached normalizer Mp
}

// NewAssignProb builds the assignment function, validating its parameters.
func NewAssignProb(ta, p float64) (AssignProbFunc, error) {
	if ta <= 0 || ta > 1 {
		return AssignProbFunc{}, fmt.Errorf("ecocloud: Ta = %v outside (0,1]", ta)
	}
	if p <= 0 {
		return AssignProbFunc{}, fmt.Errorf("ecocloud: p = %v must be positive", p)
	}
	f := AssignProbFunc{Ta: ta, P: p}
	f.mp = f.normalizer()
	return f, nil
}

// normalizer computes Mp = p^p / (p+1)^(p+1) * Ta^(p+1) (Eq. 2), the value
// of u^p(Ta-u) at its maximizer u* = Ta·p/(p+1).
func (f AssignProbFunc) normalizer() float64 {
	p := f.P
	return math.Pow(p, p) / math.Pow(p+1, p+1) * math.Pow(f.Ta, p+1)
}

// Eval returns fa(u). Utilization above Ta (including overload, u > 1)
// yields 0: a loaded server never takes more work.
func (f AssignProbFunc) Eval(u float64) float64 {
	if u < 0 || u > f.Ta {
		return 0
	}
	return math.Pow(u, f.P) * (f.Ta - u) / f.mp
}

// ArgMax returns the utilization at which fa peaks: Ta·p/(p+1).
func (f AssignProbFunc) ArgMax() float64 { return f.Ta * f.P / (f.P + 1) }

// WithThreshold returns a copy of f with the threshold replaced by ta,
// keeping the shape parameter. The migration procedure uses this to build
// the tightened acceptance function (Ta' = 0.9·u_source) that prevents
// ping-pong migrations from overloaded servers.
func (f AssignProbFunc) WithThreshold(ta float64) (AssignProbFunc, error) {
	return NewAssignProb(ta, f.P)
}

// MigrateLowProb is f_l of Eq. (3): the probability that a server with
// utilization u below Tl requests the migration of one of its VMs,
//
//	f_l(u) = (1 - u/Tl)^alpha   for u < Tl,   0 otherwise.
//
// Smaller alpha makes the function flatter (more eager to drain).
func MigrateLowProb(u, tl, alpha float64) float64 {
	if u >= tl || u < 0 {
		return 0
	}
	return math.Pow(1-u/tl, alpha)
}

// MigrateHighProb is f_h of Eq. (4): the probability that a server with
// utilization u above Th requests the migration of one of its VMs,
//
//	f_h(u) = (1 + (u-1)/(1-Th))^beta   for u > Th,   0 otherwise,
//
// rising from 0 at u = Th to 1 at u = 1. Overload (u > 1) saturates at 1.
func MigrateHighProb(u, th, beta float64) float64 {
	if u <= th {
		return 0
	}
	if u >= 1 {
		return 1
	}
	return math.Pow(1+(u-1)/(1-th), beta)
}

package ecocloud

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/trace"
)

func constVM(id int, mhz float64) *trace.VM {
	return &trace.VM{ID: id, Start: 0, End: 1000 * time.Hour, Epoch: 1000 * time.Hour, Demand: []float64{mhz}}
}

func newEnv(d *dc.DataCenter, now time.Duration) cluster.Env {
	return cluster.Env{Now: now, DC: d, Rec: cluster.NewRecorder(30 * time.Minute)}
}

func mustPolicy(t *testing.T, cfg Config, seed uint64) *Policy {
	t.Helper()
	p, err := New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRejectsBadConfig(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Ta = 0 },
		func(c *Config) { c.Ta = 1.2 },
		func(c *Config) { c.P = 0 },
		func(c *Config) { c.Tl = -0.1 },
		func(c *Config) { c.Th = 1.0 },
		func(c *Config) { c.Tl = 0.96 }, // above Th
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Beta = -1 },
		func(c *Config) { c.HighMigTaFactor = 0 },
		func(c *Config) { c.HighMigTaFactor = 1.5 },
		func(c *Config) { c.Grace = -time.Second },
		func(c *Config) { c.Cooldown = -time.Second },
		func(c *Config) { c.InviteSubset = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg, 1); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMigrationOffRelaxesMigrationParams(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableMigration = true
	cfg.Alpha = 0 // invalid for migration, irrelevant when disabled
	if _, err := New(cfg, 1); err != nil {
		t.Fatalf("migration-disabled config rejected: %v", err)
	}
}

func TestArrivalOnEmptyFleetWakesServer(t *testing.T) {
	d := dc.New(dc.UniformFleet(4, 6, 2000))
	p := mustPolicy(t, DefaultConfig(), 1)
	env := newEnv(d, 0)
	p.OnArrival(env, constVM(1, 500))
	if d.ActiveCount() != 1 {
		t.Fatalf("active servers = %d, want 1", d.ActiveCount())
	}
	if d.Activations != 1 {
		t.Fatalf("activations = %d, want 1", d.Activations)
	}
	host, ok := d.HostOf(1)
	if !ok || host.NumVMs() != 1 {
		t.Fatal("VM not placed on the woken server")
	}
}

func TestGraceServerAcceptsFollowUps(t *testing.T) {
	d := dc.New(dc.UniformFleet(4, 6, 2000))
	p := mustPolicy(t, DefaultConfig(), 2)
	env := newEnv(d, 0)
	// Ten small arrivals within the grace window: the single woken server
	// should take them all (fa(0)=0 would otherwise reject an empty server).
	for i := 0; i < 10; i++ {
		env.Now = time.Duration(i) * time.Minute
		p.OnArrival(env, constVM(i, 300))
	}
	if d.ActiveCount() != 1 {
		t.Fatalf("active servers = %d, want 1 (grace should concentrate arrivals)", d.ActiveCount())
	}
	if d.NumPlaced() != 10 {
		t.Fatalf("placed = %d, want 10", d.NumPlaced())
	}
}

func TestNoAcceptAboveTa(t *testing.T) {
	d := dc.New(dc.UniformFleet(2, 6, 2000)) // 12000 MHz each
	p := mustPolicy(t, DefaultConfig(), 3)
	env := newEnv(d, 0)
	s0 := d.Servers[0]
	if err := d.Activate(s0, 0); err != nil {
		t.Fatal(err)
	}
	// Load s0 to u = 0.92 > Ta = 0.90; it is long out of grace.
	if err := d.Place(constVM(100, 11040), s0); err != nil {
		t.Fatal(err)
	}
	env.Now = 2 * time.Hour
	p.OnArrival(env, constVM(1, 500))
	host, _ := d.HostOf(1)
	if host == s0 {
		t.Fatal("VM assigned to a server above Ta")
	}
	if d.ActiveCount() != 2 {
		t.Fatalf("active = %d, want 2 (a server must be woken)", d.ActiveCount())
	}
}

func TestSaturationFallsBackToLeastUtilized(t *testing.T) {
	d := dc.New(dc.UniformFleet(2, 6, 2000))
	p := mustPolicy(t, DefaultConfig(), 4)
	env := newEnv(d, 0)
	// Both servers active and above Ta; nothing to wake.
	if err := d.Activate(d.Servers[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(d.Servers[1], 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(100, 11500), d.Servers[0]); err != nil { // u ~0.958
		t.Fatal(err)
	}
	if err := d.Place(constVM(101, 11100), d.Servers[1]); err != nil { // u ~0.925
		t.Fatal(err)
	}
	env.Now = 2 * time.Hour
	p.OnArrival(env, constVM(1, 200))
	if env.Rec.Saturations != 1 {
		t.Fatalf("saturations = %d, want 1", env.Rec.Saturations)
	}
	host, _ := d.HostOf(1)
	if host != d.Servers[1] {
		t.Fatal("fallback should pick the least-utilized active server")
	}
}

func TestControlHibernatesEmptyServerAfterGrace(t *testing.T) {
	d := dc.New(dc.UniformFleet(3, 6, 2000))
	p := mustPolicy(t, DefaultConfig(), 5)
	env := newEnv(d, 0)
	if err := d.Activate(d.Servers[0], 0); err != nil {
		t.Fatal(err)
	}
	// During grace the empty server stays up.
	env.Now = 10 * time.Minute
	p.OnControl(env)
	if d.Servers[0].State() != dc.Active {
		t.Fatal("server hibernated during its grace period")
	}
	// After grace it goes to sleep.
	env.Now = time.Hour
	p.OnControl(env)
	if d.Servers[0].State() != dc.Hibernated {
		t.Fatal("empty server not hibernated after grace")
	}
	if d.Hibernations != 1 {
		t.Fatalf("hibernations = %d, want 1", d.Hibernations)
	}
}

// runControls advances the clock one control tick at a time until pred holds
// or the budget runs out, returning whether pred held.
func runControls(p *Policy, env *cluster.Env, ticks int, pred func() bool) bool {
	for i := 0; i < ticks; i++ {
		env.Now += 5 * time.Minute
		p.OnControl(*env)
		if pred() {
			return true
		}
	}
	return pred()
}

func TestLowMigrationDrainsServer(t *testing.T) {
	d := dc.New(dc.UniformFleet(3, 6, 2000)) // 12000 MHz each
	cfg := DefaultConfig()
	cfg.Cooldown = 0
	p := mustPolicy(t, cfg, 6)
	env := newEnv(d, 0)
	a, b := d.Servers[0], d.Servers[1]
	if err := d.Activate(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(b, 0); err != nil {
		t.Fatal(err)
	}
	// a: u = 0.10 (below Tl = 0.50); b: u = 0.60 (inside the band, accepts).
	if err := d.Place(constVM(1, 1200), a); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(2, 7200), b); err != nil {
		t.Fatal(err)
	}
	env.Now = time.Hour // everyone out of grace
	moved := runControls(p, &env, 50, func() bool {
		host, _ := d.HostOf(1)
		return host == b
	})
	if !moved {
		t.Fatal("low migration never moved the VM off the under-utilized server")
	}
	if a.State() != dc.Hibernated {
		t.Fatal("drained server was not hibernated")
	}
	if env.Rec.MigrationCount(cluster.MigrationLow) == 0 {
		t.Fatal("low migration not recorded")
	}
	if env.Rec.MigrationCount(cluster.MigrationHigh) != 0 {
		t.Fatal("spurious high migration recorded")
	}
}

func TestLowMigrationNeverWakesServers(t *testing.T) {
	d := dc.New(dc.UniformFleet(4, 6, 2000))
	cfg := DefaultConfig()
	cfg.Cooldown = 0
	p := mustPolicy(t, cfg, 7)
	env := newEnv(d, 0)
	a := d.Servers[0]
	if err := d.Activate(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(1, 1200), a); err != nil { // u = 0.10
		t.Fatal(err)
	}
	env.Now = time.Hour
	runControls(p, &env, 50, func() bool { return false })
	if d.Activations != 1 { // only the manual one above... Activate() via dc counts
		t.Fatalf("activations = %d: a low migration woke a server", d.Activations)
	}
	if host, _ := d.HostOf(1); host != a {
		t.Fatal("VM moved despite no destination being available")
	}
}

func TestHighMigrationRelievesOverload(t *testing.T) {
	d := dc.New(dc.UniformFleet(3, 6, 2000))
	cfg := DefaultConfig()
	cfg.Cooldown = 0
	p := mustPolicy(t, cfg, 8)
	env := newEnv(d, 0)
	a, b := d.Servers[0], d.Servers[1]
	if err := d.Activate(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(b, 0); err != nil {
		t.Fatal(err)
	}
	// a: two VMs totalling u = 0.99 (> Th = 0.95); b: u = 0.50.
	if err := d.Place(constVM(1, 6000), a); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(2, 5880), a); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(3, 6000), b); err != nil {
		t.Fatal(err)
	}
	uBefore := a.UtilizationAt(env.Now)
	env.Now = time.Hour
	relieved := runControls(p, &env, 50, func() bool { return a.NumVMs() < 2 })
	if !relieved {
		t.Fatal("high migration never fired on an overloaded server")
	}
	if env.Rec.MigrationCount(cluster.MigrationHigh) == 0 {
		t.Fatal("high migration not recorded")
	}
	if a.UtilizationAt(env.Now) >= uBefore {
		t.Fatal("source utilization did not drop")
	}
}

func TestHighMigrationPrefersLessLoadedDestination(t *testing.T) {
	// Destination acceptance runs under Ta' = 0.9*u_source, so any server at
	// or above that is ineligible. With b at 0.93 (>0.9*1.0) and c at 0.40,
	// the VM must land on c (or a woken server), never on b.
	d := dc.New(dc.UniformFleet(4, 6, 2000))
	cfg := DefaultConfig()
	cfg.Cooldown = 0
	p := mustPolicy(t, cfg, 9)
	env := newEnv(d, 0)
	a, b, c := d.Servers[0], d.Servers[1], d.Servers[2]
	for _, s := range []*dc.Server{a, b, c} {
		if err := d.Activate(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Place(constVM(1, 6000), a); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(2, 6600), a); err != nil { // a: u = 1.05
		t.Fatal(err)
	}
	if err := d.Place(constVM(3, 11160), b); err != nil { // b: u = 0.93
		t.Fatal(err)
	}
	if err := d.Place(constVM(4, 4800), c); err != nil { // c: u = 0.40
		t.Fatal(err)
	}
	env.Now = time.Hour
	relieved := runControls(p, &env, 100, func() bool { return a.NumVMs() < 2 })
	if !relieved {
		t.Fatal("overload never relieved")
	}
	if b.NumVMs() != 1 {
		t.Fatal("VM migrated onto a nearly-full server (ping-pong guard failed)")
	}
}

func TestCooldownSpacesMigrations(t *testing.T) {
	d := dc.New(dc.UniformFleet(3, 6, 2000))
	cfg := DefaultConfig()
	cfg.Cooldown = time.Hour
	cfg.Alpha = 0.01 // f_l ~ 1: every eligible tick fires
	p := mustPolicy(t, cfg, 10)
	env := newEnv(d, 0)
	a, b := d.Servers[0], d.Servers[1]
	if err := d.Activate(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(b, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.Place(constVM(i, 1000), a); err != nil { // a: u = 0.33... below Tl
			t.Fatal(err)
		}
	}
	if err := d.Place(constVM(10, 7200), b); err != nil { // b: u = 0.60 accepts
		t.Fatal(err)
	}
	env.Now = 2 * time.Hour
	// 6 ticks of 5 minutes = 30 minutes < 1h cooldown: at most 1 migration
	// from a.
	for i := 0; i < 6; i++ {
		env.Now += 5 * time.Minute
		p.OnControl(env)
	}
	if got := env.Rec.MigrationCount(cluster.MigrationLow); got > 1 {
		t.Fatalf("cooldown violated: %d migrations in 30m", got)
	}
}

func TestDisableMigration(t *testing.T) {
	d := dc.New(dc.UniformFleet(3, 6, 2000))
	cfg := DefaultConfig()
	cfg.DisableMigration = true
	cfg.Cooldown = 0
	p := mustPolicy(t, cfg, 11)
	env := newEnv(d, 0)
	a, b := d.Servers[0], d.Servers[1]
	if err := d.Activate(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(b, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(1, 1200), a); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(2, 7200), b); err != nil {
		t.Fatal(err)
	}
	env.Now = time.Hour
	runControls(p, &env, 20, func() bool { return false })
	if env.Rec.MigrationCount(cluster.MigrationLow)+env.Rec.MigrationCount(cluster.MigrationHigh) != 0 {
		t.Fatal("migrations occurred while disabled")
	}
	// Empty-server hibernation still runs in migration-off mode.
	if host, _ := d.HostOf(1); host != a {
		t.Fatal("VM moved with migration disabled")
	}
}

func placementsSignature(d *dc.DataCenter, n int) []int {
	sig := make([]int, n)
	for i := 0; i < n; i++ {
		if s, ok := d.HostOf(i); ok {
			sig[i] = s.ID
		} else {
			sig[i] = -1
		}
	}
	return sig
}

func runScenario(t *testing.T, cfg Config, seed uint64) []int {
	t.Helper()
	d := dc.New(dc.StandardFleet(12))
	p, err := New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv(d, 0)
	const n = 80
	for i := 0; i < n; i++ {
		env.Now = time.Duration(i) * 2 * time.Minute
		p.OnArrival(env, constVM(i, 300+float64(i%7)*250))
		if i%5 == 4 {
			p.OnControl(env)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return placementsSignature(d, n)
}

func TestPolicyDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cooldown = 0
	a := runScenario(t, cfg, 77)
	b := runScenario(t, cfg, 77)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement of VM %d differs across identical runs: %d vs %d", i, a[i], b[i])
		}
	}
	c := runScenario(t, cfg, 78)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical placements (suspicious)")
	}
}

func TestPooledUtilizationsMatchSequential(t *testing.T) {
	// 200 loaded servers (past the inline cutoff): the invitation round's
	// utilization fan-out through a fork-join pool must return the same bits
	// as the inline loop, at several worker counts.
	d := dc.New(dc.StandardFleet(200))
	now := 45 * time.Minute
	for i, s := range d.Servers {
		if err := d.Activate(s, 0); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 1+i%4; j++ {
			if err := d.Place(constVM(1000*i+j, 200+float64((i*7+j*13)%1100)), s); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := utilizations(nil, d.Servers, now)
	for _, workers := range []int{1, 2, 8} {
		pool := par.New(workers)
		got := utilizations(pool, d.Servers, now)
		pool.Close()
		for i := range want {
			if got[i] != want[i] { //ecolint:allow float-eq — bit-identity is the property under test
				t.Fatalf("workers=%d: server %d utilization %x != sequential %x", workers, i, got[i], want[i])
			}
		}
	}
}

func TestInviteSubset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InviteSubset = 3
	sig := runScenario(t, cfg, 55)
	placed := 0
	for _, s := range sig {
		if s >= 0 {
			placed++
		}
	}
	if placed != len(sig) {
		t.Fatalf("only %d/%d VMs placed with invitation subsets", placed, len(sig))
	}
}

func TestConsolidationEndToEnd(t *testing.T) {
	// 60 small VMs on a 12-server fleet: after migrations settle, far fewer
	// than 12 servers should be active, and none outside [Tl, Ta] except
	// stragglers. This is the paper's core claim in miniature.
	d := dc.New(dc.StandardFleet(12))
	cfg := DefaultConfig()
	cfg.Cooldown = 0
	p := mustPolicy(t, cfg, 123)
	env := newEnv(d, 0)
	// Spread arrivals thinly so many servers wake (non-consolidated start).
	for i := 0; i < 60; i++ {
		env.Now = time.Duration(i) * time.Minute
		s := d.Servers[i%12]
		if s.State() == dc.Hibernated {
			if err := d.Activate(s, env.Now); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Place(constVM(i, 600), s); err != nil {
			t.Fatal(err)
		}
	}
	startActive := d.ActiveCount()
	env.Now = 2 * time.Hour
	runControls(p, &env, 200, func() bool { return false })
	endActive := d.ActiveCount()
	if endActive >= startActive {
		t.Fatalf("no consolidation: active %d -> %d", startActive, endActive)
	}
	// Total demand 36,000 MHz; ideal is 4 servers at ~0.75 mean utilization
	// of the standard mix. Allow slack but require real packing.
	if endActive > 6 {
		t.Fatalf("weak consolidation: %d servers still active for 36 GHz of demand", endActive)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// No server may end up overloaded by consolidation.
	for _, s := range d.Servers {
		if s.State() == dc.Active && s.UtilizationAt(env.Now) > 1 {
			t.Fatalf("server %d overloaded at %v", s.ID, s.UtilizationAt(env.Now))
		}
	}
}

func TestPickMostLoadedTightensPacking(t *testing.T) {
	// Two acceptors at different utilizations: with PickMostLoaded the VM
	// must land on the higher one every time.
	run := func(pick bool) int {
		d := dc.New(dc.UniformFleet(3, 6, 2000))
		cfg := DefaultConfig()
		cfg.PickMostLoaded = pick
		p := mustPolicy(t, cfg, 31)
		env := newEnv(d, 0)
		a, b := d.Servers[0], d.Servers[1]
		if err := d.Activate(a, 0); err != nil {
			t.Fatal(err)
		}
		if err := d.Activate(b, 0); err != nil {
			t.Fatal(err)
		}
		if err := d.Place(constVM(100, 7200), a); err != nil { // u = 0.60
			t.Fatal(err)
		}
		if err := d.Place(constVM(101, 8400), b); err != nil { // u = 0.70
			t.Fatal(err)
		}
		env.Now = 2 * time.Hour
		onB := 0
		for i := 0; i < 40; i++ {
			p.OnArrival(env, constVM(i, 10)) // tiny VMs: both servers stay acceptors
			if host, _ := d.HostOf(i); host == b {
				onB++
			}
		}
		return onB
	}
	// b occasionally declines its own Bernoulli trial (fa < 1), so demand a
	// strong majority rather than unanimity.
	if got := run(true); got < 35 {
		t.Fatalf("PickMostLoaded placed only %d/40 on the most utilized server", got)
	}
	if got := run(false); got > 33 || got < 7 {
		t.Fatalf("uniform selection placed %d/40 on one server (should spread)", got)
	}
}

func TestInviteGroupsPlacesEverything(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InviteGroups = 4
	sig := runScenario(t, cfg, 66)
	for i, s := range sig {
		if s < 0 {
			t.Fatalf("VM %d unplaced under invitation groups", i)
		}
	}
}

func TestInviteGroupsRotate(t *testing.T) {
	// With grouping, a single arrival round must only consult one group:
	// build two acceptors in different groups and check that consecutive
	// arrivals alternate between them (round-robin group rotation), rather
	// than competing every round.
	d := dc.New(dc.UniformFleet(4, 6, 2000))
	cfg := DefaultConfig()
	cfg.InviteGroups = 2
	p := mustPolicy(t, cfg, 67)
	env := newEnv(d, 0)
	a, b := d.Servers[0], d.Servers[1] // groups 0 and 1
	if err := d.Activate(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(b, 0); err != nil {
		t.Fatal(err)
	}
	// Load both to u=0.675 (the fa peak): acceptance ~certain.
	if err := d.Place(constVM(100, 8100), a); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(101, 8100), b); err != nil {
		t.Fatal(err)
	}
	env.Now = 2 * time.Hour
	var hosts []int
	for i := 0; i < 6; i++ {
		p.OnArrival(env, constVM(i, 10))
		h, _ := d.HostOf(i)
		hosts = append(hosts, h.ID)
	}
	// Group rotation: arrivals alternate 0,1,0,1,... (with near-1 acceptance).
	alternations := 0
	for i := 1; i < len(hosts); i++ {
		if hosts[i] != hosts[i-1] {
			alternations++
		}
	}
	if alternations < 4 {
		t.Fatalf("hosts = %v: expected round-robin group alternation", hosts)
	}
}

func TestInviteGroupsValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InviteGroups = -1
	if _, err := New(cfg, 1); err == nil {
		t.Fatal("negative InviteGroups accepted")
	}
}

func TestHighMigrationSelectsSufficientVM(t *testing.T) {
	// Overloaded server with one VM big enough to relieve on its own and
	// several small ones: the §II rule migrates a VM whose demand covers
	// the excess, so a single migration must restore u <= Th.
	d := dc.New(dc.UniformFleet(3, 6, 2000))
	cfg := DefaultConfig()
	cfg.Cooldown = 0
	p := mustPolicy(t, cfg, 40)
	env := newEnv(d, 0)
	a, b := d.Servers[0], d.Servers[1]
	if err := d.Activate(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(b, 0); err != nil {
		t.Fatal(err)
	}
	// a: 11 x 1000 + 1 x 1200 = 12200 MHz => u ~1.017, excess over Th: 800.
	for i := 0; i < 11; i++ {
		if err := d.Place(constVM(i, 1000), a); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Place(constVM(50, 1200), a); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(60, 3600), b); err != nil { // b: u = 0.30
		t.Fatal(err)
	}
	env.Now = time.Hour
	relieved := runControls(p, &env, 30, func() bool {
		return a.UtilizationAt(env.Now) <= cfg.Th
	})
	if !relieved {
		t.Fatal("overload never relieved")
	}
	if got := env.Rec.MigrationCount(cluster.MigrationHigh); got != 1 {
		t.Fatalf("high migrations = %d, want exactly 1 (a sufficient VM exists)", got)
	}
}

func TestHighMigrationTaPrimeClamped(t *testing.T) {
	// With u far above 1, Ta' = 0.9*u would exceed 1; it must clamp to Ta so
	// the tightened assignment function stays valid and the destination is
	// still bounded by the global threshold.
	d := dc.New(dc.UniformFleet(2, 6, 2000))
	cfg := DefaultConfig()
	cfg.Cooldown = 0
	p := mustPolicy(t, cfg, 41)
	env := newEnv(d, 0)
	a, b := d.Servers[0], d.Servers[1]
	if err := d.Activate(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(b, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.Place(constVM(i, 4000), a); err != nil { // a: u = 1.33
			t.Fatal(err)
		}
	}
	if err := d.Place(constVM(10, 3600), b); err != nil { // b: u = 0.30 accepts
		t.Fatal(err)
	}
	env.Now = time.Hour
	relieved := runControls(p, &env, 30, func() bool { return a.NumVMs() < 4 })
	if !relieved {
		t.Fatal("clamped Ta' prevented any migration")
	}
	// Destination must not have been pushed past the global Ta.
	if u := b.UtilizationAt(env.Now); u > cfg.Ta+1e-9 {
		t.Fatalf("destination at %v, above Ta", u)
	}
}

// Property: after any sequence of arrivals, no server sits above Ta unless
// the run recorded a saturation event (the explicit degraded-service path).
func TestQuickArrivalsRespectTa(t *testing.T) {
	f := func(seed uint64) bool {
		d := dc.New(dc.StandardFleet(6))
		cfg := DefaultConfig()
		p, err := New(cfg, seed)
		if err != nil {
			return false
		}
		env := newEnv(d, 0)
		src := rng.New(seed)
		for i := 0; i < 60; i++ {
			env.Now = time.Duration(i) * 2 * time.Minute
			mhz := 100 + src.Float64()*2300
			p.OnArrival(env, constVM(i, mhz))
		}
		if env.Rec.Saturations > 0 {
			return true // degraded path taken, overshoot is expected
		}
		for _, s := range d.Servers {
			if s.State() == dc.Active && s.UtilizationAt(env.Now) > cfg.Ta+1e-9 {
				return false
			}
		}
		return d.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package ecocloud

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// MultiResource implements the extension sketched in the paper's §V: taking
// assignment decisions on several hardware resources (CPU, RAM, disk,
// bandwidth) instead of CPU alone. The paper proposes two strategies:
//
//  1. AllTrials — define an assignment function per resource, run one
//     Bernoulli trial per resource, and declare availability only when ALL
//     trials succeed;
//  2. CriticalPlusConstraints — run a single Bernoulli trial on the most
//     critical resource (the one closest to its threshold) and treat the
//     remaining resources as hard feasibility constraints (u_r <= Ta_r).
//
// Both operate on a named utilization vector, so they compose with any
// bookkeeping the host system keeps per resource.
type MultiResource struct {
	// funcs maps resource name -> its assignment function. Iteration is
	// always in sorted-name order so trial draws are deterministic.
	funcs map[string]AssignProbFunc
	names []string
}

// NewMultiResource builds the multi-resource trial machinery from one
// assignment function per resource. At least one resource is required.
func NewMultiResource(funcs map[string]AssignProbFunc) (*MultiResource, error) {
	if len(funcs) == 0 {
		return nil, fmt.Errorf("ecocloud: multi-resource needs at least one resource")
	}
	m := &MultiResource{funcs: make(map[string]AssignProbFunc, len(funcs))}
	for name, f := range funcs {
		if f.Ta <= 0 {
			return nil, fmt.Errorf("ecocloud: resource %q has an uninitialized assignment function", name)
		}
		m.funcs[name] = f
		m.names = append(m.names, name)
	}
	sort.Strings(m.names)
	return m, nil
}

// Resources returns the resource names in the deterministic trial order.
func (m *MultiResource) Resources() []string {
	out := make([]string, len(m.names))
	copy(out, m.names)
	return out
}

// utilOf fetches the utilization for a resource, failing loudly on a
// missing entry: a caller that forgets a resource has a bookkeeping bug.
func (m *MultiResource) utilOf(utils map[string]float64, name string) (float64, error) {
	u, ok := utils[name]
	if !ok {
		return 0, fmt.Errorf("ecocloud: utilization vector missing resource %q", name)
	}
	return u, nil
}

// TrialAll implements strategy 1: the server declares availability only if
// an independent Bernoulli trial succeeds for every resource. The
// utilization vector is validated in full before the first trial, so a
// bookkeeping bug surfaces even when an early trial would have rejected.
func (m *MultiResource) TrialAll(utils map[string]float64, src *rng.Source) (bool, error) {
	us := make([]float64, len(m.names))
	for i, name := range m.names {
		u, err := m.utilOf(utils, name)
		if err != nil {
			return false, err
		}
		us[i] = u
	}
	for i, name := range m.names {
		if !src.Bernoulli(m.funcs[name].Eval(us[i])) {
			return false, nil
		}
	}
	return true, nil
}

// AcceptProbAll returns the closed-form acceptance probability of TrialAll
// (the product of the per-resource probabilities) — handy for analysis and
// for tests that check the empirical rate.
func (m *MultiResource) AcceptProbAll(utils map[string]float64) (float64, error) {
	p := 1.0
	for _, name := range m.names {
		u, err := m.utilOf(utils, name)
		if err != nil {
			return 0, err
		}
		p *= m.funcs[name].Eval(u)
	}
	return p, nil
}

// Critical returns the most critical resource: the one with the highest
// utilization relative to its own threshold (u/Ta). Ties resolve to the
// lexicographically first name for determinism.
func (m *MultiResource) Critical(utils map[string]float64) (string, error) {
	best := ""
	bestRatio := -1.0
	for _, name := range m.names {
		u, err := m.utilOf(utils, name)
		if err != nil {
			return "", err
		}
		if ratio := u / m.funcs[name].Ta; ratio > bestRatio {
			best, bestRatio = name, ratio
		}
	}
	return best, nil
}

// TrialCritical implements strategy 2: a single Bernoulli trial on the most
// critical resource; every other resource must merely satisfy its threshold
// constraint (u <= Ta).
func (m *MultiResource) TrialCritical(utils map[string]float64, src *rng.Source) (bool, error) {
	critical, err := m.Critical(utils)
	if err != nil {
		return false, err
	}
	for _, name := range m.names {
		if name == critical {
			continue
		}
		u, err := m.utilOf(utils, name)
		if err != nil {
			return false, err
		}
		if u > m.funcs[name].Ta {
			return false, nil
		}
	}
	u, err := m.utilOf(utils, critical)
	if err != nil {
		return false, err
	}
	return src.Bernoulli(m.funcs[critical].Eval(u)), nil
}

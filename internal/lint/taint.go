package lint

import (
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Determinism taint
//
// The wallclock and globalrand analyzers catch direct uses of the banned
// stdlib sinks; this pass catches the laundered ones. Taint starts at every
// unwaived sink use — a call OR a value capture (f := time.Now), which the
// call-site analyzers cannot see at all — and flows backwards along the call
// graph: a function that calls (or captures) a tainted function is itself
// tainted. Every sim-critical call site whose callee is tainted is then a
// finding under the original rule, with the full chain rendered in the
// message:
//
//	runner.go:42:9 [wallclock] call chain reaches time.Now:
//	    Observe -> stamp -> time.Now; sim-critical code must use virtual time
//
// Waivers compose with propagation instead of fighting it: a sink use
// covered by an //ecolint:allow directive is not a seed, so an audited
// wall-clock helper (obs.Recorder.StartTimer, the run manifest) does not
// taint its callers — the annotation's reason covers the function's purpose,
// and re-flagging every caller would only breed reasonless waivers. An
// indirect finding is waived like any other, at the call site it is reported
// on.
//
// The pass reports two shapes:
//
//  1. a direct sink *reference* (IsRef) — the captured-function laundering
//     itself, invisible to the per-package analyzers;
//  2. a call or capture of a module function that taint proves reaches a
//     sink — reported at the edge, chain in the message and in
//     Diagnostic.Chain (rendered by cmd/ecolint -why and -json).
//
// Direct sink *calls* stay with the per-package analyzers: they already
// report them with rule-specific wording, and double-reporting the same
// line would be noise.

// taintPath is one function's shortest known route to a sink: either the
// sink itself (via == nil) or the next function toward it. pos is the
// position, inside this function, of the call/ref that advances the chain.
type taintPath struct {
	sink SinkUse
	via  *types.Func
	pos  token.Pos
}

// propagateTaint runs a breadth-first fixpoint from every unwaived sink use
// of rule backwards over the call graph, returning each tainted function's
// shortest chain. BFS over Nodes order keeps chains deterministic.
func propagateTaint(w *wpPass, rule string) map[*types.Func]*taintPath {
	tainted := make(map[*types.Func]*taintPath)
	// Reverse adjacency: callee -> the edges that reach it.
	type revEdge struct {
		caller *FuncNode
		pos    token.Pos
	}
	rev := make(map[*types.Func][]revEdge)
	var queue []*FuncNode
	for _, n := range w.prog.Nodes {
		for _, e := range n.Calls {
			rev[e.Callee] = append(rev[e.Callee], revEdge{caller: n, pos: e.Pos})
		}
		for _, su := range n.Sinks {
			if su.Rule != rule || w.waived(n.Pkg, su.Pos, rule) {
				continue
			}
			if tainted[n.Fn] == nil {
				tainted[n.Fn] = &taintPath{sink: su, pos: su.Pos}
				queue = append(queue, n)
			}
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range rev[n.Fn] {
			c := e.caller
			if tainted[c.Fn] != nil {
				continue
			}
			tainted[c.Fn] = &taintPath{sink: tainted[n.Fn].sink, via: n.Fn, pos: e.pos}
			queue = append(queue, c)
		}
	}
	return tainted
}

// taintChain renders the chain for a finding in node at edge e: compact
// names for the message ("Observe -> stamp -> time.Now") and located hops
// for Diagnostic.Chain.
func taintChain(w *wpPass, node *FuncNode, e CallEdge, tainted map[*types.Func]*taintPath) (compact string, hops []string) {
	var names []string
	add := func(fn *types.Func, pos token.Pos) {
		names = append(names, shortFuncName(fn, node.Pkg.Types))
		p := w.prog.Fset.Position(pos)
		hops = append(hops, shortFuncName(fn, node.Pkg.Types)+" ("+trimPath(p.Filename)+":"+strconv.Itoa(p.Line)+")")
	}
	add(node.Fn, e.Pos)
	cur := e.Callee
	for cur != nil {
		tp := tainted[cur]
		if tp == nil {
			break // defensive; the caller only asks about tainted callees
		}
		add(cur, tp.pos)
		if tp.via == nil {
			names = append(names, tp.sink.Name)
			hops = append(hops, tp.sink.Name)
			break
		}
		cur = tp.via
	}
	return strings.Join(names, " -> "), hops
}

// runTaint reports the laundered-sink findings over the whole program.
func runTaint(w *wpPass) {
	for _, rule := range []string{RuleWallclock, RuleGlobalRand} {
		tainted := propagateTaint(w, rule)
		advice := "sim-critical code must use virtual time"
		if rule == RuleGlobalRand {
			advice = "sim-critical code must take randomness and host state as explicit inputs"
		}
		for _, n := range w.prog.Nodes {
			if !w.simCritical(n.Pkg) {
				continue
			}
			// Shape 1: sinks captured as values — the per-package analyzers
			// only see call expressions.
			for _, su := range n.Sinks {
				if su.Rule == rule && su.IsRef {
					w.report(su.Pos, rule, nil,
						"%s captured as a function value; %s", su.Name, advice)
				}
			}
			// Shape 2: edges into tainted module functions.
			for _, e := range n.Calls {
				if tainted[e.Callee] == nil {
					continue
				}
				chain, hops := taintChain(w, n, e, tainted)
				verb := "call chain reaches"
				if e.IsRef {
					verb = "captured function reaches"
				}
				w.report(e.Pos, rule, hops,
					"%s %s: %s; %s", verb, tainted[e.Callee].sink.Name, chain, advice)
			}
		}
	}
}

// trimPath keeps the last two path segments — enough to identify a file in
// a chain hop without repeating the module root on every line.
func trimPath(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}

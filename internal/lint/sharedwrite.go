package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shared-write discipline for par callbacks
//
// internal/par's determinism contract (rule 2 of its package doc) says a
// shard callback must write only per-item state: result slots indexed by
// the span/item parameter, never a shared accumulator or package-level
// variable. Until now that rule lived in documentation and -race runs; the
// sharedwrite rule checks it statically.
//
// For every call that hands a function to an audited concurrency package
// (Config.Concurrency — internal/par and the fixture stand-in), the rule
// inspects the callback body and flags any write whose target is
//
//   - a package-level variable, or
//   - a variable captured from an enclosing scope,
//
// unless some index on the write's path mentions a variable local to the
// callback (its span/item parameter, or a loop variable derived from it).
// `out[i] = f(i)` and `slots[sp.Index] = v` pass; `sum += v` and
// `total = x` are findings: the first races, and even made race-free its
// fold order would depend on the worker schedule, which is exactly the
// nondeterminism par exists to exclude.
//
// Both function literals and named functions passed by name are checked (a
// named callback is analyzed at its declaration, once). Writes hidden
// behind method calls on captured state are out of static reach and remain
// the province of the -race CI job; the rule closes the shapes the
// repository actually uses.

// runSharedWrite scans every sim-critical function for fan-out calls into
// the audited concurrency packages and checks the callbacks they pass.
func runSharedWrite(w *wpPass) {
	seen := make(map[*FuncNode]bool) // named callbacks, checked once
	for _, n := range w.prog.Nodes {
		if !w.simCritical(n.Pkg) {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := resolvedCallee(info, call)
			if callee == nil || callee.Pkg() == nil || !matchScope(callee.Pkg().Path(), w.cfg.Concurrency) {
				return true
			}
			sig, ok := callee.Type().(*types.Signature)
			if !ok {
				return true
			}
			calleeName := shortFuncName(callee, n.Pkg.Types)
			for i, arg := range call.Args {
				pt, ok := paramTypeAt(sig, i)
				if !ok {
					continue
				}
				if _, isFunc := pt.Underlying().(*types.Signature); !isFunc {
					continue
				}
				switch a := unparen(arg).(type) {
				case *ast.FuncLit:
					checkCallback(w, n.Pkg, calleeName, a.Pos(), a.End(), a.Body)
				case *ast.Ident:
					if fn, ok := info.Uses[a].(*types.Func); ok {
						if cb := w.prog.ByFn[fn]; cb != nil && !seen[cb] && w.simCritical(cb.Pkg) {
							seen[cb] = true
							checkCallback(w, cb.Pkg, calleeName, cb.Decl.Pos(), cb.Decl.End(), cb.Decl.Body)
						}
					}
				}
			}
			return true
		})
	}
}

// resolvedCallee returns the statically resolved function a call invokes,
// or nil for dynamic calls, conversions and builtins.
func resolvedCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// checkCallback flags shared writes in one callback body. [lo, hi) is the
// source range of the whole callback (type and body): a variable declared
// inside it — parameters included — is callback-local.
func checkCallback(w *wpPass, pkg *Package, calleeName string, lo, hi token.Pos, body *ast.BlockStmt) {
	info := pkg.Info
	local := func(v *types.Var) bool { return v.Pos() >= lo && v.Pos() < hi }
	checkWrite := func(target ast.Expr) {
		if id, ok := unparen(target).(*ast.Ident); ok && id.Name == "_" {
			return
		}
		root := rootVar(info, target)
		if root == nil || local(root) {
			return
		}
		if indexedByLocal(info, target, lo, hi) {
			return
		}
		kind := "captured variable"
		if root.Pkg() != nil && root.Parent() == root.Pkg().Scope() {
			kind = "package-level variable"
		}
		w.report(target.Pos(), RuleSharedWrite, nil,
			"callback passed to %s writes %s %s without indexing by a callback-local variable; shards may not share mutable state (see internal/par)",
			calleeName, kind, root.Name())
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, l := range s.Lhs {
				checkWrite(l)
			}
		case *ast.IncDecStmt:
			checkWrite(s.X)
		case *ast.RangeStmt:
			if s.Tok == token.ASSIGN {
				if s.Key != nil {
					checkWrite(s.Key)
				}
				if s.Value != nil {
					checkWrite(s.Value)
				}
			}
		}
		return true
	})
}

// indexedByLocal reports whether any index expression inside target mentions
// a variable declared within [lo, hi) — the per-item addressing pattern the
// par contract requires (slot[i], out[sp.Index], row[sp.Lo:sp.Hi]).
func indexedByLocal(info *types.Info, target ast.Expr, lo, hi token.Pos) bool {
	found := false
	checkIdx := func(idx ast.Expr) {
		if idx == nil {
			return
		}
		ast.Inspect(idx, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && v.Pos() >= lo && v.Pos() < hi {
					found = true
				}
			}
			return true
		})
	}
	ast.Inspect(target, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.IndexExpr:
			checkIdx(x.Index)
		case *ast.SliceExpr:
			checkIdx(x.Low)
			checkIdx(x.High)
		}
		return true
	})
	return found
}

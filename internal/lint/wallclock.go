package lint

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the package time functions that read or depend on the
// host's clock. Pure constructors/arithmetic (time.Duration, time.Unix) are
// fine: the contract forbids observing real time, not representing it.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
}

// analyzerWallclock reports calls into the host clock from sim-critical
// packages. Simulated time is a time.Duration advanced by the event engine;
// reading the real clock makes a run irreproducible (handler timing,
// timeouts) or couples results to host speed. Genuinely wall-clock code —
// telemetry timers, run manifests, progress heartbeats — carries an
// //ecolint:allow wallclock annotation with the reason.
var analyzerWallclock = &Analyzer{
	Name:            RuleWallclock,
	Doc:             "forbids time.Now/Since/Sleep and ticker construction in sim-critical packages",
	SimCriticalOnly: true,
	Run: func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !wallclockFuncs[sel.Sel.Name] {
					return true
				}
				if obj := pass.Pkg.Info.Uses[sel.Sel]; isPkgFunc(obj, "time") {
					pass.Report(call.Pos(), RuleWallclock,
						"time.%s reads the host clock; sim-critical code must use virtual time", sel.Sel.Name)
				}
				return true
			})
		}
	},
}

// isPkgFunc reports whether obj is a function declared at package level in
// the package with the given import path.
func isPkgFunc(obj types.Object, pkgPath string) bool {
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerExplicitSource enforces the explicit-source rule in sim-critical
// packages: randomness must be handed to the code that draws from it — as a
// parameter or a receiver field — never reached through a package-level
// variable. Two checks:
//
//  1. declaring a package-level var whose type contains rng.Source is
//     reported at the declaration (the var itself is the hidden channel);
//  2. an exported function whose body calls a Source method on a value
//     rooted in a package-level var (of this or any other package) is
//     reported at the call.
//
// A "Source" type is any named type called Source declared in a package
// whose import path is "rng" or ends in "/rng" — the repository's
// deterministic generator and the lint fixtures' stand-in both match.
var analyzerExplicitSource = &Analyzer{
	Name:            RuleExplicitSource,
	Doc:             "requires rng.Source values to arrive as parameters or receiver fields, not package-level vars",
	SimCriticalOnly: true,
	Run: func(pass *Pass) {
		info := pass.Pkg.Info
		// Check 1: package-level vars holding a Source.
		scope := pass.Pkg.Types.Scope()
		for _, name := range scope.Names() {
			v, ok := scope.Lookup(name).(*types.Var)
			if !ok {
				continue
			}
			if typeHoldsSource(v.Type(), map[types.Type]bool{}) {
				pass.Report(v.Pos(), RuleExplicitSource,
					"package-level var %s holds an rng.Source; pass sources explicitly instead", name)
			}
		}
		// Check 2: exported functions drawing from a package-level var.
		for _, file := range pass.Pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !fn.Name.IsExported() {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					selection := info.Selections[sel]
					if selection == nil || selection.Kind() != types.MethodVal {
						return true
					}
					if !isSourceType(selection.Recv()) {
						return true
					}
					if v := rootVar(info, sel.X); v != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
						pass.Report(call.Pos(), RuleExplicitSource,
							"%s draws from package-level var %s; exported functions must receive their rng.Source explicitly",
							fn.Name.Name, v.Name())
					}
					return true
				})
			}
		}
	},
}

// isSourceType reports whether t (possibly behind pointers) is a named type
// Source from an rng package.
func isSourceType(t types.Type) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Name() != "Source" {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "rng" || strings.HasSuffix(path, "/rng")
}

// typeHoldsSource reports whether t is, points to, or (transitively through
// struct fields and element types) contains an rng Source.
func typeHoldsSource(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if isSourceType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return typeHoldsSource(u.Elem(), seen)
	case *types.Slice:
		return typeHoldsSource(u.Elem(), seen)
	case *types.Array:
		return typeHoldsSource(u.Elem(), seen)
	case *types.Map:
		return typeHoldsSource(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeHoldsSource(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// rootVar walks a selector/index chain to its base identifier and returns
// the variable it denotes, or nil (calls and composite literals produce
// fresh values and terminate the walk).
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v
		case *ast.SelectorExpr:
			// A qualified identifier (pkg.Var) bottoms out at the selected
			// object itself.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					v, _ := info.Uses[x.Sel].(*types.Var)
					return v
				}
			}
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

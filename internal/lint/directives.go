package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// A finding is waived with an annotation naming the rule and giving a
// reason:
//
//	start := time.Now() //ecolint:allow wallclock — telemetry timer
//
// A comma-separated rule list (no spaces) lets one waiver line cover
// co-located findings from several rules:
//
//	//ecolint:allow wallclock,globalrand — manifest records host provenance
//
// Placement rules:
//
//   - a directive on line L covers diagnostics on line L and on line L+1
//     (so it can sit on its own line above the waived statement);
//   - a directive inside the doc comment of a top-level declaration covers
//     the whole declaration (one annotation for a genuinely wall-clock
//     function like a progress reporter).
//
// The reason is mandatory and the rule name must be one of the known rules;
// a malformed directive is itself reported under the "directive" rule —
// silent, unexplained waivers are exactly what the linter exists to prevent.

const directivePrefix = "ecolint:allow"

// directive is one parsed //ecolint:allow annotation. rules has one entry
// per name in the (possibly comma-separated) rule list.
type directive struct {
	rules  []string
	reason string
	pos    token.Position
	// cover is the declaration range the directive applies to when it sits
	// in a top-level doc comment; zero for line-scoped directives.
	coverStart, coverEnd int // line range, inclusive; 0 when line-scoped
}

// directiveSet indexes the directives of one package.
type directiveSet struct {
	// byFile maps file path -> directives in that file.
	byFile map[string][]directive
	// malformed directives become diagnostics of their own.
	malformed []Diagnostic
}

// collectDirectives parses every //ecolint:allow comment in pkg.
func collectDirectives(fset *token.FileSet, pkg *Package) directiveSet {
	set := directiveSet{byFile: make(map[string][]directive)}
	for _, file := range pkg.Files {
		// Doc-comment directives cover their declaration's line range.
		docCover := map[*ast.CommentGroup][2]int{}
		for _, decl := range file.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				docCover[doc] = [2]int{
					fset.Position(decl.Pos()).Line,
					fset.Position(decl.End()).Line,
				}
			}
		}
		for _, group := range file.Comments {
			cover, isDoc := docCover[group]
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments cannot carry directives
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, directivePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d, problem := parseDirective(rest, pos)
				if problem != "" {
					set.malformed = append(set.malformed, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Rule: RuleDirective, Message: problem,
					})
					continue
				}
				if isDoc {
					d.coverStart, d.coverEnd = cover[0], cover[1]
				}
				set.byFile[pos.Filename] = append(set.byFile[pos.Filename], d)
			}
		}
	}
	return set
}

// parseDirective splits "ecolint:allow <rule>[,<rule>...] — <reason>" after
// the prefix. It returns a problem string for malformed directives.
func parseDirective(rest string, pos token.Position) (directive, string) {
	rest = strings.TrimSpace(rest)
	ruleList, reason, _ := strings.Cut(rest, " ")
	ruleList = strings.TrimSuffix(ruleList, ":")
	var rules []string
	for _, rule := range strings.Split(ruleList, ",") {
		rule = strings.TrimSpace(rule)
		if rule == "" {
			return directive{}, "allow directive has an empty entry in its rule list (write rule,rule with no spaces)"
		}
		if !knownRule(rule) {
			return directive{}, "allow directive names unknown rule " + rule
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return directive{}, "allow directive names unknown rule"
	}
	reason = strings.TrimSpace(reason)
	// Strip a leading separator: "—", "--", "-", ":".
	for _, sep := range []string{"—", "--", "-", ":"} {
		if cut, ok := strings.CutPrefix(reason, sep); ok {
			reason = strings.TrimSpace(cut)
			break
		}
	}
	if reason == "" {
		return directive{}, "allow directive for " + strings.Join(rules, ",") + " is missing a reason"
	}
	return directive{rules: rules, reason: reason, pos: pos}, ""
}

// knownRule reports whether name is a waivable rule.
func knownRule(name string) bool {
	switch name {
	case RuleWallclock, RuleGlobalRand, RuleExplicitSource, RuleFloatEq,
		RuleOrderedOutput, RuleGoroutine, RuleBoundary, RuleHotpath, RuleSharedWrite:
		return true
	}
	return false
}

// filter drops diagnostics covered by a directive and appends the set's
// malformed-directive diagnostics.
func (s directiveSet) filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if !s.covers(d) {
			out = append(out, d)
		}
	}
	return append(out, s.malformed...)
}

// covers reports whether some directive waives d.
func (s directiveSet) covers(d Diagnostic) bool {
	for _, dir := range s.byFile[d.File] {
		if !dir.allows(d.Rule) {
			continue
		}
		if dir.coverEnd > 0 {
			if d.Line >= dir.coverStart && d.Line <= dir.coverEnd {
				return true
			}
			continue
		}
		if d.Line == dir.pos.Line || d.Line == dir.pos.Line+1 {
			return true
		}
	}
	return false
}

// allows reports whether the directive's rule list contains rule.
func (d directive) allows(rule string) bool {
	for _, r := range d.rules {
		if r == rule {
			return true
		}
	}
	return false
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerOrderedOutput reports output written from inside a range over a
// map. Map iteration order is randomized per run, so any bytes emitted in
// the loop body — CSV rows, journal lines, report sections — land in a
// different order every time, silently breaking golden-file comparisons and
// the byte-identical-journal guarantee. The deterministic idiom is to
// collect the keys, sort them, and range over the sorted slice; code doing
// that never triggers this rule because the write happens in a slice loop.
var analyzerOrderedOutput = &Analyzer{
	Name: RuleOrderedOutput,
	Doc:  "forbids writing output while ranging over a map",
	Run: func(pass *Pass) {
		info := pass.Pkg.Info
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := info.Types[rng.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				ast.Inspect(rng.Body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if name, ok := outputCall(info, call); ok {
						pass.Report(call.Pos(), RuleOrderedOutput,
							"%s inside a range over a map emits output in randomized order; sort the keys first", name)
					}
					return true
				})
				return true
			})
		}
	},
}

// outputCall reports whether call writes output, returning a display name.
// Covered: the fmt print family, and any method whose name marks it as a
// writer/encoder (Write*, Print*, Fprint*, Encode, Emit) — which catches
// csv.Writer, bufio.Writer, json.Encoder, os.File, io.Writer and the obs
// journal without enumerating them.
func outputCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if isPkgFunc(info.Uses[sel.Sel], "fmt") {
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
			return "fmt." + name, true
		}
		return "", false
	}
	if selection := info.Selections[sel]; selection != nil && selection.Kind() == types.MethodVal {
		if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print") ||
			strings.HasPrefix(name, "Fprint") || name == "Encode" || name == "Emit" {
			return "(" + selection.Recv().String() + ")." + name, true
		}
	}
	// Interface method calls (e.g. io.Writer.Write through a parameter) are
	// method selections too, handled above; package functions from other
	// packages are not output sinks we recognize.
	return "", false
}

package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Hot-path purity
//
// The SoA engine's span APIs — Server.DemandAt's hit path, the kernel
// refill, DataCenter.ObserveSpan/WarmSpan/UtilSpan, par.Pool.Range's
// dispatch — are pinned zero-alloc by testing.AllocsPerRun tests
// (internal/dc/alloc_test.go). Those pins only fire on the exact inputs the
// tests construct; a new helper three calls deep can reintroduce a
// per-server allocation that the pinned entry points never exercise. The
// hotpath rule makes the pin a compile-time property: a function whose doc
// comment carries
//
//	//ecolint:hotpath
//
// is a zero-alloc root, and neither it nor any function it reaches through
// resolved call edges may contain an allocation-inducing construct —
// make/new/append, slice and map literals, &composite literals, fmt calls,
// string concatenation and string<->slice conversions, or boxing a concrete
// value into an interface parameter.
//
// Deliberate amortized allocation (grow-once scratch buffers, cold
// panic-replay paths) is waived in place with //ecolint:allow hotpath and a
// reason, exactly like every other rule — the waiver documents WHY the
// allocation cannot recur in steady state.
//
// The reachability is the call graph's static under-approximation: calls
// through function values and interface methods do not extend the hot set.
// That is the right polarity for a gate — everything flagged really is on
// the hot path; code only reachable dynamically still has the AllocsPerRun
// pins behind it.

// runHotpath computes the functions reachable from the //ecolint:hotpath
// roots and reports every allocation site inside them, with the root chain
// in the message.
func runHotpath(w *wpPass) {
	// parent[fn] = the function through which fn was first reached; roots
	// map to nil. Breadth-first in Nodes order keeps chains deterministic
	// and shortest.
	parent := make(map[*types.Func]*types.Func)
	var queue []*FuncNode
	for _, n := range w.prog.Nodes {
		if n.Hot {
			parent[n.Fn] = nil
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Calls {
			callee := w.prog.ByFn[e.Callee]
			if callee == nil {
				continue // stdlib or undeclarated; nothing to scan
			}
			if _, seen := parent[callee.Fn]; seen {
				continue
			}
			parent[callee.Fn] = n.Fn
			queue = append(queue, callee)
		}
	}
	for _, n := range w.prog.Nodes {
		if _, hot := parent[n.Fn]; !hot || !w.simCritical(n.Pkg) {
			continue
		}
		chain, hops := hotChain(w, n, parent)
		for _, a := range n.Allocs {
			w.report(a.Pos, RuleHotpath, hops,
				"%s on the zero-alloc hot path (%s); reuse scratch or move the work off the span APIs", a.What, chain)
		}
	}
}

// hotChain renders the root -> ... -> fn chain of a hot function: compact
// names for the message, located hops (declaration sites) for
// Diagnostic.Chain.
func hotChain(w *wpPass, node *FuncNode, parent map[*types.Func]*types.Func) (compact string, hops []string) {
	var rev []*types.Func
	for fn := node.Fn; fn != nil; fn = parent[fn] {
		rev = append(rev, fn)
	}
	names := make([]string, 0, len(rev))
	hops = make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		fn := rev[i]
		names = append(names, shortFuncName(fn, node.Pkg.Types))
		hop := shortFuncName(fn, node.Pkg.Types)
		if hn := w.prog.ByFn[fn]; hn != nil {
			p := w.prog.Fset.Position(hn.Decl.Pos())
			hop += " (" + trimPath(p.Filename) + ":" + strconv.Itoa(p.Line) + ")"
		}
		hops = append(hops, hop)
	}
	return strings.Join(names, " -> "), hops
}

// wpPass is the shared context of the whole-program analyzers: the call
// graph, the scopes, every loaded package's directives (consulted when
// deciding whether a sink seeds taint), and the subset of packages selected
// by the caller's patterns — findings are only reported there.
type wpPass struct {
	prog     *Program
	cfg      Config
	dirs     map[string]directiveSet // by package import path
	selected map[*Package]bool
	diags    *[]Diagnostic
}

// simCritical reports whether findings may be reported in pkg: it must be
// both selected by the run's patterns and inside the sim-critical scope.
func (w *wpPass) simCritical(pkg *Package) bool {
	return w.selected[pkg] && matchScope(pkg.Path, w.cfg.SimCritical)
}

// waived reports whether a directive in pkg covers a finding of rule at pos.
func (w *wpPass) waived(pkg *Package, pos token.Pos, rule string) bool {
	p := w.prog.Fset.Position(pos)
	return w.dirs[pkg.Path].covers(Diagnostic{File: p.Filename, Line: p.Line, Rule: rule})
}

// report files one whole-program diagnostic with an optional rendered chain.
func (w *wpPass) report(pos token.Pos, rule string, chain []string, format string, args ...any) {
	p := w.prog.Fset.Position(pos)
	*w.diags = append(*w.diags, Diagnostic{
		File:    p.Filename,
		Line:    p.Line,
		Col:     p.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
		Chain:   chain,
	})
}

package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

const fixtureRoot = "testdata/src/fixture"

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(fixtureRoot)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// expectation is one "// want <rule>" marker: a diagnostic of that rule on
// that line of that file.
type expectation struct {
	file string
	line int
	rule string
}

func (e expectation) String() string { return fmt.Sprintf("%s:%d [%s]", e.file, e.line, e.rule) }

// parseWants reads the markers of every .go file under dir. A marker at the
// end of a code line expects the diagnostic on that line; a comment-only
// "// want <rule>" line expects it on the following line.
func parseWants(t *testing.T, dir string) []expectation {
	t.Helper()
	var wants []expectation
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			target := i + 1 // 1-based line of the marker
			if strings.HasPrefix(strings.TrimSpace(line), "// want ") {
				target++ // comment-only marker points at the next line
			}
			for _, rule := range strings.Fields(line[idx+len("// want "):]) {
				wants = append(wants, expectation{file: abs, line: target, rule: rule})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func sortedExpectations(es []expectation) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.String()
	}
	sort.Strings(out)
	return out
}

// TestFixturesMatchWants lints the whole fixture module and compares the
// diagnostics against the markers exactly: every marked line must fire and
// nothing else may (the unmarked lines are the negative cases).
func TestFixturesMatchWants(t *testing.T) {
	diags, err := Run(fixtureLoader(t), DefaultConfig(), []string{"fixture/..."})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]expectation, len(diags))
	for i, d := range diags {
		got[i] = expectation{file: d.File, line: d.Line, rule: d.Rule}
	}
	want := parseWants(t, fixtureRoot)
	gs, ws := sortedExpectations(got), sortedExpectations(want)
	if strings.Join(gs, "\n") != strings.Join(ws, "\n") {
		t.Errorf("diagnostics do not match markers.\n got:\n  %s\nwant:\n  %s",
			strings.Join(gs, "\n  "), strings.Join(ws, "\n  "))
		for _, d := range diags {
			t.Logf("full: %s", d)
		}
	}
}

// TestEachRuleFixture runs the suite against each rule's fixture package in
// isolation: every package must produce at least one finding of its rule
// (the positive cases) and, except for the deliberate malformed-directive
// findings, nothing from any other rule.
func TestEachRuleFixture(t *testing.T) {
	cases := []struct {
		pkg   string
		rules []string
	}{
		{"fixture/wallclock", []string{RuleWallclock}},
		{"fixture/globalrand", []string{RuleGlobalRand}},
		{"fixture/explicitsource", []string{RuleExplicitSource}},
		{"fixture/floateq", []string{RuleFloatEq}},
		{"fixture/orderedoutput", []string{RuleOrderedOutput}},
		{"fixture/goroutine", []string{RuleGoroutine}},
		{"fixture/boundary", []string{RuleBoundary}},
		{"fixture/taint", []string{RuleWallclock, RuleGlobalRand}},
		{"fixture/hotpath", []string{RuleHotpath}},
		{"fixture/sharedwrite", []string{RuleSharedWrite}},
	}
	for _, tc := range cases {
		t.Run(strings.TrimPrefix(tc.pkg, "fixture/"), func(t *testing.T) {
			diags, err := Run(fixtureLoader(t), DefaultConfig(), []string{tc.pkg})
			if err != nil {
				t.Fatal(err)
			}
			seen := map[string]int{}
			for _, d := range diags {
				switch {
				case slicesContains(tc.rules, d.Rule):
					seen[d.Rule]++
				case d.Rule == RuleDirective: // deliberate malformed-directive cases
				default:
					t.Errorf("unexpected %s", d)
				}
			}
			for _, rule := range tc.rules {
				if seen[rule] == 0 {
					t.Errorf("no %s findings in %s", rule, tc.pkg)
				}
			}
		})
	}
}

func slicesContains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestCleanFixture pins the false-positive rate: the clean package must
// produce nothing.
func TestCleanFixture(t *testing.T) {
	diags, err := Run(fixtureLoader(t), DefaultConfig(), []string{"fixture/clean"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("clean fixture flagged: %s", d)
	}
}

// TestScopeRestriction verifies the sim-critical scoping: with an empty
// scope the wallclock fixture produces no wallclock findings, while the
// unscoped float-eq rule still fires everywhere.
func TestScopeRestriction(t *testing.T) {
	cfg := Config{SimCritical: nil}
	diags, err := Run(fixtureLoader(t), cfg, []string{"fixture/wallclock", "fixture/floateq"})
	if err != nil {
		t.Fatal(err)
	}
	sawFloat := false
	for _, d := range diags {
		switch d.Rule {
		case RuleWallclock:
			t.Errorf("wallclock fired outside its scope: %s", d)
		case RuleFloatEq:
			sawFloat = true
		}
	}
	if !sawFloat {
		t.Error("float-eq did not fire; it must apply regardless of scope")
	}
}

// TestMatchScope covers the pattern matcher directly.
func TestMatchScope(t *testing.T) {
	cases := []struct {
		path string
		pats []string
		want bool
	}{
		{"repro/internal/sim", []string{"repro/internal/..."}, true},
		{"repro/internal", []string{"repro/internal/..."}, true},
		{"repro/cmd/ecosim", []string{"repro/internal/..."}, false},
		{"fixture/wallclock", []string{"fixture/..."}, true},
		{"anything", []string{"..."}, true},
		{"repro/internal/sim", []string{"repro/internal/sim"}, true},
		{"repro/internal/simx", []string{"repro/internal/sim"}, false},
		{"repro/internal/sim", nil, false},
	}
	for _, tc := range cases {
		if got := matchScope(tc.path, tc.pats); got != tc.want {
			t.Errorf("matchScope(%q, %v) = %v, want %v", tc.path, tc.pats, got, tc.want)
		}
	}
}

// TestDirectiveParsing covers the annotation grammar, comma-separated rule
// lists included.
func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		in      string
		rules   string // comma-joined expectation
		problem bool
	}{
		{" wallclock — telemetry timer", "wallclock", false},
		{" wallclock -- telemetry timer", "wallclock", false},
		{" float-eq: bitwise compare", "float-eq", false},
		{" wallclock,globalrand — provenance line", "wallclock,globalrand", false},
		{" wallclock,globalrand,hotpath — kitchen sink", "wallclock,globalrand,hotpath", false},
		{" wallclock", "", true},                  // missing reason
		{" clockwork — nope", "", true},           // unknown rule
		{" wallclock,clockwork — nope", "", true}, // one bad entry poisons the list
		{" wallclock, globalrand — x", "", true},  // space splits the list: trailing comma
		{" wallclock,globalrand", "", true},       // list without a reason
		{"", "", true},
	}
	for _, tc := range cases {
		d, problem := parseDirective(tc.in, token.Position{})
		if tc.problem != (problem != "") {
			t.Errorf("parseDirective(%q): problem = %q, want problem=%v", tc.in, problem, tc.problem)
			continue
		}
		if !tc.problem {
			if got := strings.Join(d.rules, ","); got != tc.rules {
				t.Errorf("parseDirective(%q): rules = %q, want %q", tc.in, got, tc.rules)
			}
		}
	}
}

// TestDirectiveAllows covers the rule-list membership check.
func TestDirectiveAllows(t *testing.T) {
	d := directive{rules: []string{RuleWallclock, RuleGlobalRand}}
	if !d.allows(RuleWallclock) || !d.allows(RuleGlobalRand) {
		t.Error("directive must allow every rule in its list")
	}
	if d.allows(RuleHotpath) {
		t.Error("directive must not allow rules outside its list")
	}
}

// findLine returns the 1-based number of the first line of path containing
// substr, so tests can anchor on code shapes instead of line numbers.
func findLine(t *testing.T, path, substr string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, substr) {
			return i + 1
		}
	}
	t.Fatalf("%s: no line contains %q", path, substr)
	return 0
}

// TestTaintCatchesLaunderedSinks is the regression test for the whole point
// of the taint pass: sim-critical code that launders time.Now through a
// local wrapper, a method value or a second wrapper is invisible to the
// per-package analyzers (run with wholeProgram=false) and must be flagged by
// the full Run with the proving chain in the message and in Chain.
func TestTaintCatchesLaunderedSinks(t *testing.T) {
	file := filepath.Join(fixtureRoot, "taint", "taint.go")
	laundered := map[string]int{
		"wrapper call":     findLine(t, file, "wallNow().Sub"),
		"captured sink":    findLine(t, file, "clock := time.Now"),
		"two-deep wrapper": findLine(t, file, "return Uptime(started) * 2"),
	}
	l := fixtureLoader(t)

	direct, err := run(l, DefaultConfig(), []string{"fixture/taint"}, false)
	if err != nil {
		t.Fatal(err)
	}
	onLine := func(diags []Diagnostic, line int) *Diagnostic {
		for i, d := range diags {
			if strings.HasSuffix(d.File, "taint/taint.go") && d.Line == line {
				return &diags[i]
			}
		}
		return nil
	}
	for shape, line := range laundered {
		if d := onLine(direct, line); d != nil {
			t.Errorf("per-package analyzers unexpectedly caught the %s (line %d): %s\n(the taint regression test needs a shape they miss)", shape, line, d)
		}
	}

	full, err := Run(l, DefaultConfig(), []string{"fixture/taint"})
	if err != nil {
		t.Fatal(err)
	}
	for shape, line := range laundered {
		d := onLine(full, line)
		if d == nil {
			t.Errorf("taint pass missed the %s on line %d", shape, line)
			continue
		}
		if d.Rule != RuleWallclock {
			t.Errorf("%s flagged under %s, want %s", shape, d.Rule, RuleWallclock)
		}
	}
	// The two-deep wrapper's diagnostic must carry the full proving chain.
	if d := onLine(full, laundered["two-deep wrapper"]); d != nil {
		const chain = "Doubly -> Uptime -> wallNow -> time.Now"
		if !strings.Contains(d.Message, chain) {
			t.Errorf("chain not rendered in message:\n got %q\nwant substring %q", d.Message, chain)
		}
		if len(d.Chain) != 4 {
			t.Errorf("Chain = %q, want 4 located hops ending in time.Now", d.Chain)
		} else if d.Chain[3] != "time.Now" {
			t.Errorf("Chain ends in %q, want time.Now", d.Chain[3])
		}
	}
}

// TestHotpathChain verifies the hotpath rule connects a root to an
// allocation three calls deep and names the chain.
func TestHotpathChain(t *testing.T) {
	file := filepath.Join(fixtureRoot, "hotpath", "hotpath.go")
	line := findLine(t, file, "buf := make([]float64, 4)")
	diags, err := Run(fixtureLoader(t), DefaultConfig(), []string{"fixture/hotpath"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Line == line && d.Rule == RuleHotpath {
			if !strings.Contains(d.Message, "Demand -> total -> grow") {
				t.Errorf("hotpath chain not rendered: %q", d.Message)
			}
			return
		}
	}
	t.Fatalf("no hotpath finding on line %d (make in grow)", line)
}

// TestRepositoryIsClean lints the real module with the default
// configuration: the tree must stay finding-free (annotated waivers aside).
// This is the in-process version of CI's `go run ./cmd/ecolint ./...` gate.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(l, DefaultConfig(), []string{"..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

const fixtureRoot = "testdata/src/fixture"

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(fixtureRoot)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// expectation is one "// want <rule>" marker: a diagnostic of that rule on
// that line of that file.
type expectation struct {
	file string
	line int
	rule string
}

func (e expectation) String() string { return fmt.Sprintf("%s:%d [%s]", e.file, e.line, e.rule) }

// parseWants reads the markers of every .go file under dir. A marker at the
// end of a code line expects the diagnostic on that line; a comment-only
// "// want <rule>" line expects it on the following line.
func parseWants(t *testing.T, dir string) []expectation {
	t.Helper()
	var wants []expectation
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			target := i + 1 // 1-based line of the marker
			if strings.HasPrefix(strings.TrimSpace(line), "// want ") {
				target++ // comment-only marker points at the next line
			}
			for _, rule := range strings.Fields(line[idx+len("// want "):]) {
				wants = append(wants, expectation{file: abs, line: target, rule: rule})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func sortedExpectations(es []expectation) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.String()
	}
	sort.Strings(out)
	return out
}

// TestFixturesMatchWants lints the whole fixture module and compares the
// diagnostics against the markers exactly: every marked line must fire and
// nothing else may (the unmarked lines are the negative cases).
func TestFixturesMatchWants(t *testing.T) {
	diags, err := Run(fixtureLoader(t), DefaultConfig(), []string{"fixture/..."})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]expectation, len(diags))
	for i, d := range diags {
		got[i] = expectation{file: d.File, line: d.Line, rule: d.Rule}
	}
	want := parseWants(t, fixtureRoot)
	gs, ws := sortedExpectations(got), sortedExpectations(want)
	if strings.Join(gs, "\n") != strings.Join(ws, "\n") {
		t.Errorf("diagnostics do not match markers.\n got:\n  %s\nwant:\n  %s",
			strings.Join(gs, "\n  "), strings.Join(ws, "\n  "))
		for _, d := range diags {
			t.Logf("full: %s", d)
		}
	}
}

// TestEachRuleFixture runs the suite against each rule's fixture package in
// isolation: every package must produce at least one finding of its rule
// (the positive cases) and, except for the deliberate malformed-directive
// findings, nothing from any other rule.
func TestEachRuleFixture(t *testing.T) {
	cases := []struct {
		pkg  string
		rule string
	}{
		{"fixture/wallclock", RuleWallclock},
		{"fixture/globalrand", RuleGlobalRand},
		{"fixture/explicitsource", RuleExplicitSource},
		{"fixture/floateq", RuleFloatEq},
		{"fixture/orderedoutput", RuleOrderedOutput},
		{"fixture/goroutine", RuleGoroutine},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			diags, err := Run(fixtureLoader(t), DefaultConfig(), []string{tc.pkg})
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for _, d := range diags {
				switch d.Rule {
				case tc.rule:
					n++
				case RuleDirective: // directives.go in the wallclock fixture
				default:
					t.Errorf("unexpected %s", d)
				}
			}
			if n == 0 {
				t.Fatalf("no %s findings in %s", tc.rule, tc.pkg)
			}
		})
	}
}

// TestCleanFixture pins the false-positive rate: the clean package must
// produce nothing.
func TestCleanFixture(t *testing.T) {
	diags, err := Run(fixtureLoader(t), DefaultConfig(), []string{"fixture/clean"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("clean fixture flagged: %s", d)
	}
}

// TestScopeRestriction verifies the sim-critical scoping: with an empty
// scope the wallclock fixture produces no wallclock findings, while the
// unscoped float-eq rule still fires everywhere.
func TestScopeRestriction(t *testing.T) {
	cfg := Config{SimCritical: nil}
	diags, err := Run(fixtureLoader(t), cfg, []string{"fixture/wallclock", "fixture/floateq"})
	if err != nil {
		t.Fatal(err)
	}
	sawFloat := false
	for _, d := range diags {
		switch d.Rule {
		case RuleWallclock:
			t.Errorf("wallclock fired outside its scope: %s", d)
		case RuleFloatEq:
			sawFloat = true
		}
	}
	if !sawFloat {
		t.Error("float-eq did not fire; it must apply regardless of scope")
	}
}

// TestMatchScope covers the pattern matcher directly.
func TestMatchScope(t *testing.T) {
	cases := []struct {
		path string
		pats []string
		want bool
	}{
		{"repro/internal/sim", []string{"repro/internal/..."}, true},
		{"repro/internal", []string{"repro/internal/..."}, true},
		{"repro/cmd/ecosim", []string{"repro/internal/..."}, false},
		{"fixture/wallclock", []string{"fixture/..."}, true},
		{"anything", []string{"..."}, true},
		{"repro/internal/sim", []string{"repro/internal/sim"}, true},
		{"repro/internal/simx", []string{"repro/internal/sim"}, false},
		{"repro/internal/sim", nil, false},
	}
	for _, tc := range cases {
		if got := matchScope(tc.path, tc.pats); got != tc.want {
			t.Errorf("matchScope(%q, %v) = %v, want %v", tc.path, tc.pats, got, tc.want)
		}
	}
}

// TestDirectiveParsing covers the annotation grammar.
func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		in      string
		rule    string
		problem bool
	}{
		{" wallclock — telemetry timer", "wallclock", false},
		{" wallclock -- telemetry timer", "wallclock", false},
		{" float-eq: bitwise compare", "float-eq", false},
		{" wallclock", "", true},        // missing reason
		{" clockwork — nope", "", true}, // unknown rule
		{"", "", true},
	}
	for _, tc := range cases {
		d, problem := parseDirective(tc.in, token.Position{})
		if tc.problem != (problem != "") {
			t.Errorf("parseDirective(%q): problem = %q, want problem=%v", tc.in, problem, tc.problem)
			continue
		}
		if !tc.problem && d.rule != tc.rule {
			t.Errorf("parseDirective(%q): rule = %q, want %q", tc.in, d.rule, tc.rule)
		}
	}
}

// TestRepositoryIsClean lints the real module with the default
// configuration: the tree must stay finding-free (annotated waivers aside).
// This is the in-process version of CI's `go run ./cmd/ecolint ./...` gate.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(l, DefaultConfig(), []string{"..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

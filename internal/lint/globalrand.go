package lint

import (
	"go/ast"
	"strconv"
)

// forbiddenImports maps import paths that carry process-global or
// non-reproducible randomness to the reason they are banned. Importing one
// of them in a sim-critical package is the violation — there is no
// deterministic way to use them.
var forbiddenImports = map[string]string{
	"math/rand":    "global, seed-order-dependent randomness; use an explicit rng.Source stream",
	"math/rand/v2": "global, seed-order-dependent randomness; use an explicit rng.Source stream",
	"crypto/rand":  "non-reproducible entropy; use an explicit rng.Source stream",
}

// analyzerGlobalRand reports imports of the global randomness packages and
// calls to os.Getenv in sim-critical packages. Environment reads make a
// run's behaviour depend on invisible host state, which breaks the
// replay-from-manifest guarantee exactly like hidden randomness does.
var analyzerGlobalRand = &Analyzer{
	Name:            RuleGlobalRand,
	Doc:             "forbids math/rand, crypto/rand and os.Getenv in sim-critical packages",
	SimCriticalOnly: true,
	Run: func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if why, ok := forbiddenImports[path]; ok {
					pass.Report(imp.Pos(), RuleGlobalRand, "import of %s: %s", path, why)
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				name := sel.Sel.Name
				if name != "Getenv" && name != "LookupEnv" && name != "Environ" {
					return true
				}
				if isPkgFunc(pass.Pkg.Info.Uses[sel.Sel], "os") {
					pass.Report(call.Pos(), RuleGlobalRand,
						"os.%s reads host state; sim-critical behaviour must come from explicit configuration", name)
				}
				return true
			})
		}
	},
}

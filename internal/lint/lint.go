// Package lint is a project-specific static-analysis engine enforcing the
// repository's determinism contract: every stochastic component takes an
// explicit *rng.Source, no simulation code touches wall-clock time or global
// randomness, floating-point thresholds are never compared with ==, and
// nothing writes output while iterating a map. The contract is what makes a
// whole run bit-reproducible from one uint64 seed; the linter turns it from
// convention into a build gate (see cmd/ecolint and the "Determinism
// contract" section of DESIGN.md).
//
// The engine is built on the standard library only: go/parser, go/ast,
// go/types and go/importer. Packages are loaded and type-checked by the
// loader in load.go; each analyzer (one file per rule) walks the typed ASTs
// and reports Diagnostics. Findings can be waived, one site at a time, with
// an explicit annotation carrying a reason:
//
//	//ecolint:allow wallclock — telemetry timers measure host time by definition
//
// (see directives.go for placement rules).
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Rule names, used both in diagnostics ([rule] tags) and in
// //ecolint:allow directives. wallclock and globalrand are enforced twice
// over: per package at direct call sites, and whole-program by the taint
// pass (taint.go), which follows the call graph through wrappers, method
// values and closures. hotpath and sharedwrite exist only at the
// whole-program level — they are properties of call chains and fan-out
// callbacks, not of single expressions.
const (
	RuleWallclock      = "wallclock"       // host clock in sim-critical code, directly or through a call chain
	RuleGlobalRand     = "globalrand"      // math/rand, crypto/rand, os.Getenv — directly or through a call chain
	RuleExplicitSource = "explicit-source" // rng.Source reached through a package-level var
	RuleFloatEq        = "float-eq"        // == / != between floating-point operands
	RuleOrderedOutput  = "ordered-output"  // output written while ranging over a map
	RuleGoroutine      = "goroutine"       // go statements / sync imports outside internal/par
	RuleBoundary       = "boundary"        // sim-critical import of a quarantined package (e.g. the TCP transport)
	RuleHotpath        = "hotpath"         // allocation constructs reachable from an //ecolint:hotpath root
	RuleSharedWrite    = "sharedwrite"     // par callbacks writing non-span-indexed shared state
	RuleDirective      = "directive"       // malformed //ecolint:allow annotations
)

// Diagnostic is one finding, renderable as "file:line:col [rule] message".
// Whole-program findings carry the proving call chain in Chain, one located
// hop per entry ("helper (dc/hot.go:75)"), ending at the sink or alloc
// site's owner; cmd/ecolint renders it under -why and in -json output.
type Diagnostic struct {
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Col     int      `json:"col"`
	Rule    string   `json:"rule"`
	Message string   `json:"message"`
	Chain   []string `json:"chain,omitempty"`
}

// String renders the diagnostic in the canonical one-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Config scopes the rules. Patterns are matched against package import
// paths: a pattern either equals the path, or ends in "/..." and matches the
// named subtree (the prefix itself included).
type Config struct {
	// SimCritical lists the packages under the determinism contract, where
	// the wallclock, globalrand, explicit-source and goroutine rules apply.
	// float-eq and ordered-output apply to every loaded package regardless.
	SimCritical []string
	// Concurrency lists the audited concurrency subsystems, exempt from the
	// goroutine rule: packages whose whole purpose is to own goroutines and
	// sync primitives on behalf of everyone else (internal/par).
	Concurrency []string
	// Boundaries lists the import quarantines enforced by the boundary rule:
	// sim-critical packages outside a boundary's AllowedFrom set must not
	// import its Pkg subtree.
	Boundaries []Boundary
}

// Boundary is one import quarantine. Pkg names the quarantined package (or
// subtree, with a "/..." suffix); AllowedFrom lists the adapter packages
// sanctioned to import it. The quarantined subtree itself is always exempt.
type Boundary struct {
	Pkg         string
	AllowedFrom []string
}

// DefaultConfig returns the repository's scopes: everything under
// repro/internal is sim-critical (cmd/ and examples/ may time their own
// wall-clock runs); fixture/... keeps the linter's own testdata in scope so
// the CLI can be pointed straight at a fixture package.
func DefaultConfig() Config {
	return Config{
		SimCritical: []string{"repro/internal/...", "fixture/..."},
		Concurrency: []string{"repro/internal/par", "fixture/par"},
		Boundaries: []Boundary{
			// The real-process TCP transport lives on host time and goroutines
			// by design; only the node runtime that hosts it may import it.
			{Pkg: "repro/internal/node/tcptransport", AllowedFrom: []string{"repro/internal/node"}},
			{Pkg: "fixture/quarantine", AllowedFrom: []string{"fixture/quarantineadapter"}},
		},
	}
}

// matchScope reports whether importPath is covered by any pattern.
func matchScope(importPath string, patterns []string) bool {
	for _, p := range patterns {
		if p == importPath || p == "..." {
			return true
		}
		if prefix, ok := strings.CutSuffix(p, "/..."); ok {
			if importPath == prefix || strings.HasPrefix(importPath, prefix+"/") {
				return true
			}
		}
	}
	return false
}

// Pass is the per-package view handed to each analyzer.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	Cfg  Config

	diags *[]Diagnostic
}

// Report files one diagnostic at pos.
func (p *Pass) Report(pos token.Pos, rule, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one rule: a name (the [rule] tag and directive key) and a Run
// function that inspects a typed package.
type Analyzer struct {
	Name string
	Doc  string
	// SimCriticalOnly restricts the analyzer to Config.SimCritical packages.
	SimCriticalOnly bool
	Run             func(*Pass)
}

// Analyzers returns the per-package rule suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerWallclock,
		analyzerGlobalRand,
		analyzerExplicitSource,
		analyzerFloatEq,
		analyzerOrderedOutput,
		analyzerGoroutine,
		analyzerBoundary,
	}
}

// ProgramRules describes the whole-program rules for -rules listings; they
// run over the call graph rather than one package at a time, so they have
// no per-package Run hook.
func ProgramRules() []*Analyzer {
	return []*Analyzer{
		{Name: RuleWallclock + " (taint)", Doc: "flags call chains from sim-critical code to host clock sinks, through wrappers, method values and closures"},
		{Name: RuleGlobalRand + " (taint)", Doc: "flags call chains from sim-critical code to global randomness / host-state sinks"},
		{Name: RuleHotpath, Doc: "forbids allocation-inducing constructs in functions reachable from //ecolint:hotpath roots"},
		{Name: RuleSharedWrite, Doc: "forbids par fan-out callbacks writing captured or package-level state not indexed by the span/item parameter"},
	}
}

// Run loads the packages selected by patterns (see Loader.Load) and applies
// the rule suite, returning the surviving diagnostics sorted by position.
// Diagnostics waived by a well-formed //ecolint:allow directive are dropped;
// malformed directives (unknown rule, missing reason) are themselves
// reported under the "directive" rule.
func Run(l *Loader, cfg Config, patterns []string) ([]Diagnostic, error) {
	return run(l, cfg, patterns, true)
}

// run is Run with the whole-program pass optional, so tests can measure
// exactly what the per-package analyzers alone can and cannot see.
func run(l *Loader, cfg Config, patterns []string, wholeProgram bool) ([]Diagnostic, error) {
	pkgs, err := l.Load(patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		pass := &Pass{Fset: l.Fset, Pkg: pkg, Cfg: cfg, diags: &diags}
		for _, a := range Analyzers() {
			if a.SimCriticalOnly && !matchScope(pkg.Path, cfg.SimCritical) {
				continue
			}
			a.Run(pass)
		}
	}
	selDirs := make([]directiveSet, len(pkgs))
	for i, pkg := range pkgs {
		selDirs[i] = collectDirectives(l.Fset, pkg)
	}
	// Whole-program pass: the call graph spans every module-internal package
	// the loader touched — the selected ones plus their transitive imports —
	// so taint crosses package boundaries, but findings land only in the
	// selected packages. Directives from ALL loaded packages participate:
	// a waived sink in a dependency must not seed taint.
	if wholeProgram {
		all := l.Packages()
		dirs := make(map[string]directiveSet, len(all))
		for i, pkg := range pkgs {
			dirs[pkg.Path] = selDirs[i]
		}
		selected := make(map[*Package]bool, len(pkgs))
		for _, pkg := range pkgs {
			selected[pkg] = true
		}
		for _, pkg := range all {
			if _, ok := dirs[pkg.Path]; !ok {
				dirs[pkg.Path] = collectDirectives(l.Fset, pkg)
			}
		}
		w := &wpPass{
			prog:     buildProgram(l.Fset, all),
			cfg:      cfg,
			dirs:     dirs,
			selected: selected,
			diags:    &diags,
		}
		runTaint(w)
		runHotpath(w)
		runSharedWrite(w)
	}
	// Waiver filtering + malformed-directive findings, per selected package.
	for i := range pkgs {
		diags = selDirs[i].filter(diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}

// Package lint is a project-specific static-analysis engine enforcing the
// repository's determinism contract: every stochastic component takes an
// explicit *rng.Source, no simulation code touches wall-clock time or global
// randomness, floating-point thresholds are never compared with ==, and
// nothing writes output while iterating a map. The contract is what makes a
// whole run bit-reproducible from one uint64 seed; the linter turns it from
// convention into a build gate (see cmd/ecolint and the "Determinism
// contract" section of DESIGN.md).
//
// The engine is built on the standard library only: go/parser, go/ast,
// go/types and go/importer. Packages are loaded and type-checked by the
// loader in load.go; each analyzer (one file per rule) walks the typed ASTs
// and reports Diagnostics. Findings can be waived, one site at a time, with
// an explicit annotation carrying a reason:
//
//	//ecolint:allow wallclock — telemetry timers measure host time by definition
//
// (see directives.go for placement rules).
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Rule names, used both in diagnostics ([rule] tags) and in
// //ecolint:allow directives.
const (
	RuleWallclock      = "wallclock"       // time.Now/Since/Sleep/tickers in sim-critical code
	RuleGlobalRand     = "globalrand"      // math/rand, crypto/rand, os.Getenv in sim-critical code
	RuleExplicitSource = "explicit-source" // rng.Source reached through a package-level var
	RuleFloatEq        = "float-eq"        // == / != between floating-point operands
	RuleOrderedOutput  = "ordered-output"  // output written while ranging over a map
	RuleGoroutine      = "goroutine"       // go statements / sync imports outside internal/par
	RuleDirective      = "directive"       // malformed //ecolint:allow annotations
)

// Diagnostic is one finding, renderable as "file:line:col [rule] message".
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the diagnostic in the canonical one-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Config scopes the rules. Patterns are matched against package import
// paths: a pattern either equals the path, or ends in "/..." and matches the
// named subtree (the prefix itself included).
type Config struct {
	// SimCritical lists the packages under the determinism contract, where
	// the wallclock, globalrand, explicit-source and goroutine rules apply.
	// float-eq and ordered-output apply to every loaded package regardless.
	SimCritical []string
	// Concurrency lists the audited concurrency subsystems, exempt from the
	// goroutine rule: packages whose whole purpose is to own goroutines and
	// sync primitives on behalf of everyone else (internal/par).
	Concurrency []string
}

// DefaultConfig returns the repository's scopes: everything under
// repro/internal is sim-critical (cmd/ and examples/ may time their own
// wall-clock runs); fixture/... keeps the linter's own testdata in scope so
// the CLI can be pointed straight at a fixture package.
func DefaultConfig() Config {
	return Config{
		SimCritical: []string{"repro/internal/...", "fixture/..."},
		Concurrency: []string{"repro/internal/par", "fixture/par"},
	}
}

// matchScope reports whether importPath is covered by any pattern.
func matchScope(importPath string, patterns []string) bool {
	for _, p := range patterns {
		if p == importPath || p == "..." {
			return true
		}
		if prefix, ok := strings.CutSuffix(p, "/..."); ok {
			if importPath == prefix || strings.HasPrefix(importPath, prefix+"/") {
				return true
			}
		}
	}
	return false
}

// Pass is the per-package view handed to each analyzer.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	Cfg  Config

	diags *[]Diagnostic
}

// Report files one diagnostic at pos.
func (p *Pass) Report(pos token.Pos, rule, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one rule: a name (the [rule] tag and directive key) and a Run
// function that inspects a typed package.
type Analyzer struct {
	Name string
	Doc  string
	// SimCriticalOnly restricts the analyzer to Config.SimCritical packages.
	SimCriticalOnly bool
	Run             func(*Pass)
}

// Analyzers returns the full rule suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerWallclock,
		analyzerGlobalRand,
		analyzerExplicitSource,
		analyzerFloatEq,
		analyzerOrderedOutput,
		analyzerGoroutine,
	}
}

// Run loads the packages selected by patterns (see Loader.Load) and applies
// the rule suite, returning the surviving diagnostics sorted by position.
// Diagnostics waived by a well-formed //ecolint:allow directive are dropped;
// malformed directives (unknown rule, missing reason) are themselves
// reported under the "directive" rule.
func Run(l *Loader, cfg Config, patterns []string) ([]Diagnostic, error) {
	pkgs, err := l.Load(patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		pass := &Pass{Fset: l.Fset, Pkg: pkg, Cfg: cfg, diags: &diags}
		for _, a := range Analyzers() {
			if a.SimCriticalOnly && !matchScope(pkg.Path, cfg.SimCritical) {
				continue
			}
			a.Run(pass)
		}
		dirs := collectDirectives(l.Fset, pkg)
		diags = dirs.filter(diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}

package lint

import (
	"go/ast"
	"strconv"
)

// concurrencyImports are the packages whose presence means a file does its
// own synchronization. Importing one of them is the finding (like the
// globalrand rule): there is no way to use sync primitives without creating
// schedule-dependent execution, and schedule-dependent execution in
// sim-critical code is exactly what breaks bit-reproducibility.
var concurrencyImports = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
}

// analyzerGoroutine reports `go` statements and sync/sync-atomic imports in
// sim-critical packages outside the audited concurrency subsystems
// (Config.Concurrency, by default internal/par). Parallelism in simulation
// code must flow through internal/par, whose static sharding and ordered
// reduction keep runs bit-identical at every worker count; ad-hoc goroutines
// reintroduce scheduler nondeterminism one `go` statement at a time.
// Genuinely concurrent infrastructure (the obs recorder, progress
// heartbeats) carries an //ecolint:allow goroutine annotation with the
// reason.
var analyzerGoroutine = &Analyzer{
	Name:            RuleGoroutine,
	Doc:             "forbids go statements and sync imports outside the audited concurrency packages",
	SimCriticalOnly: true,
	Run: func(pass *Pass) {
		if matchScope(pass.Pkg.Path, pass.Cfg.Concurrency) {
			return
		}
		for _, file := range pass.Pkg.Files {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if concurrencyImports[path] {
					pass.Report(imp.Pos(), RuleGoroutine,
						"import of %s: sim-critical concurrency must go through internal/par, whose sharding keeps runs bit-identical", path)
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				if stmt, ok := n.(*ast.GoStmt); ok {
					pass.Report(stmt.Pos(), RuleGoroutine,
						"go statement spawns a scheduler-ordered goroutine; use internal/par for deterministic parallelism")
				}
				return true
			})
		}
	},
}

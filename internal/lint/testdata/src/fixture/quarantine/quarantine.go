// Package quarantine stands in for a quarantined subsystem — in the real
// repository, the TCP transport (internal/node/tcptransport), whose
// wall-clock and goroutine waivers assume the simulation core can never
// reach it. The boundary rule forbids sim-critical packages outside the
// declared adapter (fixture/quarantineadapter) from importing it.
package quarantine

// Dial stands in for the transport's connection setup.
func Dial(addr string) string { return "connected:" + addr }

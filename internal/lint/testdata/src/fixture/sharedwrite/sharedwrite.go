// Package sharedwrite exercises the sharedwrite rule: callbacks handed to
// the audited concurrency package may write only state indexed by a
// callback-local variable (the span/item parameter or a loop variable),
// never a shared accumulator or package-level variable.
package sharedwrite

import "fixture/par"

// BadFold accumulates into a captured variable: the write races across
// shards, and even race-free its fold order would follow the worker
// schedule.
func BadFold(p *par.Pool, xs []float64) float64 {
	var sum float64
	p.Range(len(xs), func(sp par.Span) {
		for i := sp.Lo; i < sp.Hi; i++ {
			sum += xs[i] // want sharedwrite
		}
	})
	return sum
}

// total is the package-level variable BadGlobal and fill write.
var total float64

// BadGlobal writes a package-level variable from the callback.
func BadGlobal(p *par.Pool, xs []float64) {
	p.Range(len(xs), func(sp par.Span) {
		total = xs[sp.Lo] // want sharedwrite
	})
}

// BadCount increments a captured counter from a per-item callback.
func BadCount(p *par.Pool, n int) int {
	count := 0
	par.For(p, n, func(i int) {
		count++ // want sharedwrite
	})
	return count
}

// fill is a named callback, checked once at its declaration.
func fill(sp par.Span) {
	total = float64(sp.Index) // want sharedwrite
}

// BadNamed passes the shared-writing callback by name.
func BadNamed(p *par.Pool, n int) {
	p.Range(n, fill)
}

// Good writes only span-indexed slots: each shard owns its range.
func Good(p *par.Pool, xs, out []float64) {
	p.Range(len(xs), func(sp par.Span) {
		for i := sp.Lo; i < sp.Hi; i++ {
			out[i] = xs[i] * 2
		}
	})
}

// GoodItem writes the slot addressed by the item parameter.
func GoodItem(p *par.Pool, out []int) {
	par.For(p, len(out), func(i int) {
		out[i] = i
	})
}

// GoodLocal mutates state declared inside the callback: per-shard scratch
// is exactly how reductions are supposed to start.
func GoodLocal(p *par.Pool, xs []float64, out []float64) {
	p.Range(len(xs), func(sp par.Span) {
		acc := 0.0
		for i := sp.Lo; i < sp.Hi; i++ {
			acc += xs[i]
		}
		out[sp.Index] = acc
	})
}

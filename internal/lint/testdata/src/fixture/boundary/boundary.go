// Package boundary exercises the boundary rule: a sim-critical package —
// standing in for internal/sim or internal/protocol — importing the
// quarantined fixture/quarantine package without being its declared adapter.
package boundary

import (
	"fixture/quarantine" // want boundary

	// The escape hatch: a deliberate crossing carries an annotation with
	// the reason, like any other waiver.
	_ "fixture/quarantine" //ecolint:allow boundary — fixture for the waiver path
)

// Leak reaches the quarantined subsystem from sim-critical code; the
// transport's waivers no longer bound anything once this compiles unflagged.
func Leak(addr string) string { return quarantine.Dial(addr) }

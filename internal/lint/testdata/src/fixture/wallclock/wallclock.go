// Package wallclock exercises the wallclock rule: reading the host clock in
// sim-critical code. Lines carrying a want marker expect a diagnostic of the
// named rule; a comment-only marker line expects it on the following line.
package wallclock

import "time"

// Bad reads the host clock three different ways.
func Bad() time.Duration {
	start := time.Now()          // want wallclock
	time.Sleep(time.Millisecond) // want wallclock
	return time.Since(start)     // want wallclock
}

// BadTicker constructs a host-clock ticker.
func BadTicker() {
	t := time.NewTicker(time.Second) // want wallclock
	t.Stop()
}

// Good advances virtual time only: Duration arithmetic never observes the
// host clock.
func Good(now time.Duration) time.Duration { return now + 5*time.Minute }

// Allowed is genuinely wall-clock and annotated at the call site.
func Allowed() time.Time {
	return time.Now() //ecolint:allow wallclock — fixture: annotated heartbeat
}

// DocAllowed is waived wholesale by a doc-comment directive.
//
//ecolint:allow wallclock — fixture: progress reporters own wall time
func DocAllowed() {
	time.Sleep(time.Millisecond)
	_ = time.Now()
}

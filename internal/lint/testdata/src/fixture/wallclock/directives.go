package wallclock

import "time"

// Malformed directives are findings themselves: a waiver must name a known
// rule and give a reason.

// want directive
//ecolint:allow wallclock

// want directive
//ecolint:allow clockwork — no such rule

// MissingReason shows that a reasonless directive suppresses nothing.
func MissingReason() time.Time {
	// want directive
	//ecolint:allow wallclock
	return time.Now() // want wallclock
}

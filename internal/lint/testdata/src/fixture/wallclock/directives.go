package wallclock

import (
	"os"
	"time"
)

// Malformed directives are findings themselves: a waiver must name a known
// rule and give a reason.

// want directive
//ecolint:allow wallclock

// want directive
//ecolint:allow clockwork — no such rule

// want directive
//ecolint:allow wallclock,clockwork — one bad entry poisons the list

// want directive
//ecolint:allow wallclock, globalrand — the space splits the rule list

// MissingReason shows that a reasonless directive suppresses nothing.
func MissingReason() time.Time {
	// want directive
	//ecolint:allow wallclock
	return time.Now() // want wallclock
}

// CommaList shows one waiver line covering co-located findings from two
// different rules.
func CommaList() (time.Time, string) {
	//ecolint:allow wallclock,globalrand — fixture: one audited provenance line
	return time.Now(), os.Getenv("HOST")
}

// Mini-module for the ecolint fixtures. The go tool ignores testdata
// directories, so this module is only ever loaded by internal/lint's own
// loader (and by pointing cmd/ecolint at a fixture package directly).
module fixture

go 1.22

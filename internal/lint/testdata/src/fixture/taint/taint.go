// Package taint exercises the cross-function determinism taint pass: host
// clock and host state laundered through wrappers, method values and
// closures that the direct-call analyzers cannot see. Every marked caller
// line is invisible to the per-package suite and must be caught by taint
// with the chain in the message (TestTaintCatchesLaunderedSinks pins the
// difference).
package taint

import (
	"os"
	"time"

	"fixture/taintutil"
)

// wallNow is the canonical laundering wrapper: the direct analyzer flags
// the sink inside it, and the taint pass flags every sim-critical caller.
func wallNow() time.Time {
	return time.Now() // want wallclock
}

// Uptime launders the host clock through wallNow.
func Uptime(started time.Time) time.Duration {
	return wallNow().Sub(started) // want wallclock
}

// Doubly is two wrappers away from the sink: the chain the diagnostic
// renders is Doubly -> Uptime -> wallNow -> time.Now.
func Doubly(started time.Time) time.Duration {
	return Uptime(started) * 2 // want wallclock
}

// stamp hides the sink behind a method value: no time.X call expression
// exists anywhere in this function, so the pre-taint analyzer suite sees
// nothing here at all.
func stamp() time.Time {
	clock := time.Now // want wallclock
	return clock()
}

// Jitter is tainted through the captured sink (Jitter -> stamp -> time.Now).
func Jitter(now time.Duration) time.Duration {
	if stamp().IsZero() { // want wallclock
		return now
	}
	return now + time.Millisecond
}

// viaClosure buries the sink in a closure; the call graph attributes the
// closure's body to this function.
func viaClosure() time.Duration {
	f := func() time.Duration { return time.Duration(time.Now().UnixNano()) } // want wallclock
	return f()
}

// Drift is tainted through the closure chain.
func Drift(now time.Duration) time.Duration {
	return now + viaClosure() // want wallclock
}

// CrossPackage reaches the sink through a helper in a sibling package.
func CrossPackage(now time.Duration) time.Duration {
	if taintutil.HostStamp().IsZero() { // want wallclock
		return now
	}
	return now
}

// env launders host state the same way wallNow launders the clock.
func env() string {
	return os.Getenv("ECO_DEBUG") // want globalrand
}

// Configured is tainted with the globalrand rule.
func Configured() bool {
	return env() != "" // want globalrand
}

// pure and UsesPure pin the false-positive rate: calling an untainted
// helper produces nothing.
func pure(now time.Duration) time.Duration { return now * 2 }

// UsesPure stays clean.
func UsesPure(now time.Duration) time.Duration { return pure(now) }

// UsesWaived stays clean too: taintutil.WaivedStamp's sink is waived at the
// seed, so the taint never reaches this caller.
func UsesWaived() bool { return taintutil.WaivedStamp().IsZero() }

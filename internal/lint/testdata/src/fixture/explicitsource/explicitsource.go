// Package explicitsource exercises the explicit-source rule: rng.Source
// values must arrive as parameters or receiver fields, never through a
// package-level variable.
package explicitsource

import "fixture/rng"

// globalSrc is the hidden channel the rule forbids.
var globalSrc = rng.New(1) // want explicit-source

// state hides a source inside a package-level struct var.
var state = struct { // want explicit-source
	src *rng.Source
	n   int
}{src: rng.New(2)}

// Draw is exported and draws from the package-level var.
func Draw() float64 {
	return globalSrc.Float64() // want explicit-source
}

// DrawNested reaches a source through a package-level struct var.
func DrawNested() float64 {
	return state.src.Float64() // want explicit-source
}

// Good receives its source explicitly.
func Good(src *rng.Source) float64 { return src.Float64() }

type sampler struct{ src *rng.Source }

// Sample draws from a receiver field: the source was injected at
// construction, so the caller controls the stream.
func (s *sampler) Sample() float64 { return s.src.Float64() }

// NewSampler shows the injection pattern the rule wants.
func NewSampler(src *rng.Source) *sampler { return &sampler{src: src} }

// Fresh constructs and uses a local source: reproducible, allowed.
func Fresh(seed uint64) float64 { return rng.New(seed).Float64() }

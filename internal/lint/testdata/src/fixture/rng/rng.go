// Package rng is a stand-in for the repository's deterministic generator:
// the explicit-source analyzer recognizes any named type Source declared in
// a package whose import path ends in "rng", so the fixtures can exercise
// the rule without importing the real module.
package rng

// Source is a toy deterministic generator.
type Source struct {
	state uint64
}

// New returns a Source seeded from seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 returns the next value.
func (s *Source) Uint64() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Package globalrand exercises the globalrand rule: process-global
// randomness and hidden host state in sim-critical code.
package globalrand

import (
	crand "crypto/rand" // want globalrand
	"math/rand"         // want globalrand
	"os"

	"fixture/rng"
)

// Bad draws from the global generator (the import is the finding).
func Bad() float64 { return rand.Float64() }

// BadEntropy reads OS entropy (the import is the finding).
func BadEntropy() byte {
	var b [1]byte
	_, _ = crand.Read(b[:])
	return b[0]
}

// BadEnv makes behaviour depend on invisible host state.
func BadEnv() string {
	return os.Getenv("ECO_SEED") // want globalrand
}

// Good draws from an explicit deterministic stream.
func Good(src *rng.Source) float64 { return src.Float64() }

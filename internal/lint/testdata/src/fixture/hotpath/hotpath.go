// Package hotpath exercises the hotpath rule: a function whose doc comment
// carries //ecolint:hotpath is a zero-alloc root, and no function it reaches
// through resolved calls may contain an allocation-inducing construct.
package hotpath

import "fmt"

// Demand is the fixture's zero-alloc root, mirroring Server.DemandAt: the
// chain Demand -> total -> grow proves an allocation three calls deep, which
// no per-function check could connect to the root.
//
//ecolint:hotpath
func Demand(out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i-lo] = total(i)
	}
}

// total is hot by reachability, not by annotation.
func total(i int) float64 {
	buf := grow(i)
	return buf[0]
}

// grow allocates a fresh buffer per call — the regression the rule exists
// to catch.
func grow(i int) []float64 {
	buf := make([]float64, 4) // want hotpath
	buf[0] = float64(i)
	return buf
}

// Trace logs from the hot path: the fmt call is the finding (boxing of its
// arguments is subsumed by it).
//
//ecolint:hotpath
func Trace(i int) {
	fmt.Println("tick", i) // want hotpath
}

// Label concatenates strings on the hot path.
//
//ecolint:hotpath
func Label(name, unit string) string {
	return name + unit // want hotpath
}

// Box passes a concrete value to an interface parameter, which boxes.
//
//ecolint:hotpath
func Box(i int) {
	sink(i) // want hotpath
}

func sink(v any) { _ = v }

// Bytes converts string to []byte, which copies.
//
//ecolint:hotpath
func Bytes(s string) []byte {
	return []byte(s) // want hotpath
}

// Enqueue hides the append inside a closure; the literal's body is
// attributed to the enclosing declaration.
//
//ecolint:hotpath
func Enqueue(q []int, v int) []int {
	push := func() []int { return append(q, v) } // want hotpath
	return push()
}

// WaivedGrow documents a deliberate amortized allocation in place.
//
//ecolint:hotpath
func WaivedGrow(n int) []int {
	return make([]int, n) //ecolint:allow hotpath — fixture: grow-once scratch, amortized to zero in steady state
}

// Cold allocates freely: it is not reachable from any root, so the rule has
// nothing to say about it.
func Cold(n int) []int {
	return make([]int, n)
}

// Sample mirrors dc.TickSample: a plain value struct.
type Sample struct{ N int }

// Value returns a struct value; composite struct literals stay on the stack
// and must not be flagged.
//
//ecolint:hotpath
func Value(i int) Sample {
	return Sample{N: i}
}

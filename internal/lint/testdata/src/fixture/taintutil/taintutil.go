// Package taintutil provides the cross-package sinks for the taint
// fixtures: the laundering helper lives here, its sim-critical callers in
// fixture/taint, so the chain the taint pass must render crosses a package
// boundary.
package taintutil

import "time"

// HostStamp reads the host clock on behalf of its callers. The direct-call
// analyzer flags the sink here; the taint pass additionally flags every
// sim-critical caller with the chain.
func HostStamp() time.Time {
	return time.Now() // want wallclock
}

// WaivedStamp is annotated wall-clock code: the waiver stops taint at the
// seed, so callers of WaivedStamp stay clean.
func WaivedStamp() time.Time {
	return time.Now() //ecolint:allow wallclock — fixture: audited telemetry helper; must not taint callers
}

// Package quarantineadapter is the sanctioned crossing of the quarantine
// boundary: it appears in the boundary's AllowedFrom set, so its import of
// fixture/quarantine is clean. It mirrors internal/node, the one package
// allowed to host the TCP transport.
package quarantineadapter

import "fixture/quarantine"

// Connect crosses the boundary legitimately.
func Connect(addr string) string { return quarantine.Dial(addr) }

// Package par stands in for the real internal/par in the fixture module: it
// is listed in Config.Concurrency, so its goroutines and sync primitives
// produce no findings — the exemption under test.
package par

import "sync"

// Run fans one no-op task out per worker and waits.
func Run(workers int) {
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Span is one contiguous shard of items, mirroring the real par.Span: the
// sharedwrite rule's "index by the span parameter" contract is phrased
// against this shape.
type Span struct {
	Index  int // shard number
	Lo, Hi int // item range [Lo, Hi)
}

// Pool mirrors the real worker pool's fan-out surface.
type Pool struct{ workers int }

// NewPool returns a pool stand-in.
func NewPool(workers int) *Pool { return &Pool{workers: workers} }

// Range invokes fn once per span. The fixture version runs sequentially —
// the rules under test are about the callbacks, not the dispatch.
func (p *Pool) Range(n int, fn func(Span)) {
	fn(Span{Index: 0, Lo: 0, Hi: n})
}

// For invokes fn once per item index.
func For(p *Pool, n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Package par stands in for the real internal/par in the fixture module: it
// is listed in Config.Concurrency, so its goroutines and sync primitives
// produce no findings — the exemption under test.
package par

import "sync"

// Run fans one no-op task out per worker and waits.
func Run(workers int) {
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

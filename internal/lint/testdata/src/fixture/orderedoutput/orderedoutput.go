// Package orderedoutput exercises the ordered-output rule: emitting bytes
// while ranging over a map, whose iteration order changes every run.
package orderedoutput

import (
	"encoding/csv"
	"fmt"
	"os"
	"sort"
	"strconv"
)

// Bad prints rows straight out of a map range.
func Bad(rows map[string]float64) {
	for k, v := range rows {
		fmt.Printf("%s,%g\n", k, v) // want ordered-output
	}
}

// BadFprint writes through an io sink from a map range.
func BadFprint(w *os.File, rows map[int]string) {
	for id, name := range rows {
		fmt.Fprintln(w, id, name) // want ordered-output
	}
}

// BadCSV emits CSV records in randomized order.
func BadCSV(w *csv.Writer, rows map[string]int) {
	for k, v := range rows {
		_ = w.Write([]string{k, strconv.Itoa(v)}) // want ordered-output
	}
}

type sink struct{}

func (sink) WriteRow(k string) {}

// BadMethod triggers on any writer-shaped method, not just the stdlib's.
func BadMethod(rows map[string]int) {
	var s sink
	for k := range rows {
		s.WriteRow(k) // want ordered-output
	}
}

// Good is the deterministic idiom: collect, sort, then write from the
// sorted slice — the write no longer sits inside a map range.
func Good(rows map[string]float64) {
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s,%g\n", k, rows[k])
	}
}

// GoodCopy ranges over a map without emitting anything.
func GoodCopy(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

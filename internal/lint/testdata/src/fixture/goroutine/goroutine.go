// Package goroutine exercises the goroutine rule: ad-hoc concurrency in
// sim-critical code outside the audited internal/par subsystem.
package goroutine

import (
	"sync"        // want goroutine
	"sync/atomic" // want goroutine
)

// Bad spawns a scheduler-ordered goroutine directly.
func Bad() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want goroutine
		defer wg.Done()
	}()
	wg.Wait()
}

// BadCounter hand-rolls shared state.
func BadCounter() int64 {
	var n atomic.Int64
	n.Add(1)
	return n.Load()
}

// Allowed is the escape hatch: infrastructure that genuinely owns a
// goroutine annotates the site with the reason.
func Allowed(done chan struct{}) {
	go close(done) //ecolint:allow goroutine — fixture for the waiver path
}

// Package clean passes every rule: explicit sources, virtual time, ordered
// comparisons, sorted output. It pins down the suite's false-positive rate.
package clean

import (
	"fmt"
	"io"
	"sort"
	"time"

	"fixture/rng"
)

// Step draws from an explicit stream and advances virtual time.
func Step(src *rng.Source, now time.Duration) time.Duration {
	if src.Float64() >= 0.5 {
		return now + time.Minute
	}
	return now + 30*time.Second
}

// Dump writes map contents deterministically.
func Dump(w io.Writer, cells map[string]float64) {
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s,%g\n", k, cells[k])
	}
}

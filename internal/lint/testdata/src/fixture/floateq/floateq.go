// Package floateq exercises the float-eq rule: exact equality between
// floating-point operands.
package floateq

// Threshold is the classic Eq. 1 bug: utilization arithmetic is inexact, so
// the trial that should trip exactly at Ta never does.
func Threshold(u, ta float64) bool {
	return u == ta // want float-eq
}

// NotEqual is just as wrong in the other direction.
func NotEqual(a, b float32) bool {
	return a != b // want float-eq
}

// Literal comparisons against non-zero constants are still inexact.
func Literal(xs []float64) bool {
	return xs[0] == 0.5 // want float-eq
}

// ZeroSentinel is the allowed idiom: 0 is exactly representable and means
// "dimension not modeled / series empty" throughout the repository.
func ZeroSentinel(ramMB float64) bool { return ramMB == 0 }

// Ordered comparisons are how thresholds should be written.
func Ordered(u, ta float64) bool { return u >= ta }

// Ints compares integers: exact by construction.
func Ints(a, b int) bool { return a == b }

// Annotated documents a deliberate bitwise comparison.
func Annotated(a, b float64) bool {
	return a == b //ecolint:allow float-eq — fixture: bitwise equality intended
}

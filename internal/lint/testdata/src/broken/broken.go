// Package broken fails to type-check on purpose: pointing cmd/ecolint at it
// must produce a load error (exit code 2), not findings (1) or silence (0).
package broken

// Boom references an identifier that does not exist.
func Boom() int { return undefinedIdent }

// Deliberately broken mini-module: cmd/ecolint must exit 2 (load error)
// when pointed here, and CI's lint-fixtures target asserts exactly that.
module broken

go 1.22

package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path, e.g. "repro/internal/sim"
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the packages of one module. Module-internal
// imports are resolved recursively from source; standard-library imports go
// through go/importer's "source" compiler so no pre-compiled export data is
// needed. Test files (_test.go) are skipped: the contract governs simulation
// code, and tests may legitimately sleep or read the clock.
type Loader struct {
	Fset *token.FileSet

	moduleRoot string // absolute path of the directory holding go.mod
	modulePath string // module path declared by go.mod

	std  types.Importer
	pkgs map[string]*Package // by import path; nil entry = load in progress
}

// NewLoader returns a loader for the module rooted at moduleRoot (the
// directory containing go.mod). The module path is read from go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	modulePath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleRoot: abs,
		modulePath: modulePath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
	}, nil
}

// ModulePath returns the module path declared in go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// Packages returns every module-internal package loaded so far — the
// explicitly requested ones plus their transitively imported dependencies —
// sorted by import path. The whole-program analyzers build their call graph
// over this set, so taint can cross package boundaries even when only one
// package was selected.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, pkg := range l.pkgs {
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// readModulePath extracts the module declaration from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// Load resolves patterns to packages and type-checks them. A pattern is an
// import path, an import path ending in "/..." (subtree), or "./..."-style
// relative directory patterns resolved against the module root.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	paths, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expand turns patterns into a sorted list of loadable import paths.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(importPath string) {
		if !seen[importPath] {
			seen[importPath] = true
			out = append(out, importPath)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/")
		subtree := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			subtree, pat = true, rest
		} else if pat == "..." {
			subtree, pat = true, ""
		}
		// Resolve the pattern to a directory under the module root: either
		// it is already an import path inside the module, or a relative dir.
		rel := pat
		if pat == l.modulePath {
			rel = ""
		} else if sub, ok := strings.CutPrefix(pat, l.modulePath+"/"); ok {
			rel = sub
		}
		dir := filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
		if info, err := os.Stat(dir); err != nil || !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: no such package directory %s", pat, dir)
		}
		if !subtree {
			add(l.dirImportPath(dir))
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if l.hasGoFiles(p) {
				add(l.dirImportPath(p))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// dirImportPath maps an absolute directory inside the module to its import
// path.
func (l *Loader) dirImportPath(dir string) string {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || rel == "." {
		return l.modulePath
	}
	return path.Join(l.modulePath, filepath.ToSlash(rel))
}

// hasGoFiles reports whether dir contains at least one buildable non-test Go
// file for the current platform.
func (l *Loader) hasGoFiles(dir string) bool {
	bp, err := build.Default.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}

// Import implements types.Importer: module-internal packages are loaded from
// source, everything else is delegated to the standard-library importer.
func (l *Loader) Import(importPath string) (*types.Package, error) {
	if importPath == l.modulePath || strings.HasPrefix(importPath, l.modulePath+"/") {
		pkg, err := l.load(importPath)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(importPath)
}

// load parses and type-checks one module-internal package, memoized.
func (l *Loader) load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", importPath)
		}
		return pkg, nil
	}
	l.pkgs[importPath] = nil // mark in progress for cycle detection

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.modulePath), "/")
	dir := filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: %s: no buildable Go files in %s", importPath, dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Whole-program view
//
// The per-package analyzers (wallclock, globalrand, ...) see one typed AST at
// a time, which is exactly the blind spot a helper exploits: wrap time.Now()
// in a local function — or capture it as a method value — and every call-site
// check walks straight past the laundered sink. The call graph built here
// closes that gap. It spans every module-internal package the loader has
// type-checked (the selected packages plus their transitive imports), with
// one node per function declaration and edges for
//
//   - direct calls (pkg.F(), method calls with a concrete receiver),
//   - function and method values (f := time.Now; s.refill passed around),
//
// while interface-method calls and calls through function-typed variables
// stay unresolved — the graph is a static under-approximation, and the rules
// built on it (taint, hotpath) only ever claim what a chain of resolved
// edges proves.
//
// Function literals are attributed to their enclosing declaration: a sink
// inside a closure taints the function that created the closure, which is
// where a reviewer has to look anyway.
//
// The same walk records, per function, the uses of banned stdlib sinks (the
// taint seeds) and the allocation-inducing constructs (the hotpath rule's
// subject matter), so each whole-program rule is a traversal over this
// structure rather than another AST pass.

// CallEdge is one resolved use of another function: a call, or a reference
// to the function as a value (method value, function value) — treated alike
// by taint, because a captured function is one indirection away from a call.
type CallEdge struct {
	Callee *types.Func
	Pos    token.Pos
	IsRef  bool // value reference rather than a direct call
}

// SinkUse is one direct use of a banned stdlib function (host clock, global
// randomness, environment) inside a function body.
type SinkUse struct {
	Rule  string // RuleWallclock or RuleGlobalRand
	Name  string // rendered name, e.g. "time.Now", "os.Getenv"
	Pos   token.Pos
	IsRef bool // captured as a value instead of called
}

// AllocSite is one allocation-inducing construct, recorded for every
// function and consulted only for those the hotpath rule proves reachable
// from a zero-alloc root.
type AllocSite struct {
	Pos  token.Pos
	What string // e.g. "make allocates", "fmt.Sprintf allocates"
}

// FuncNode is one declared function or method with everything the
// whole-program rules need to know about its body.
type FuncNode struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
	Hot  bool // carries an //ecolint:hotpath annotation (zero-alloc root)

	Calls  []CallEdge
	Sinks  []SinkUse
	Allocs []AllocSite
}

// Program is the whole-program call graph over every loaded module-internal
// package. Nodes is in deterministic order: packages sorted by import path,
// files in parse order, declarations in source order.
type Program struct {
	Fset  *token.FileSet
	Nodes []*FuncNode
	ByFn  map[*types.Func]*FuncNode
}

// hotpathMark is the annotation declaring a function a zero-alloc root: the
// hotpath rule forbids allocation-inducing constructs in it and in every
// function it (transitively, statically) calls.
const hotpathMark = "ecolint:hotpath"

// buildProgram constructs the call graph over pkgs (expected sorted by
// import path — Loader.Packages returns them that way).
func buildProgram(fset *token.FileSet, pkgs []*Package) *Program {
	prog := &Program{Fset: fset, ByFn: make(map[*types.Func]*FuncNode)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Pkg: pkg, Decl: fd, Hot: hasMark(fd.Doc, hotpathMark)}
				collectBody(pkg, fd.Body, node)
				prog.Nodes = append(prog.Nodes, node)
				prog.ByFn[fn] = node
			}
		}
	}
	return prog
}

// hasMark reports whether doc contains a line comment starting with mark.
func hasMark(doc *ast.CommentGroup, mark string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, "//")
		if !ok {
			continue
		}
		if strings.HasPrefix(strings.TrimSpace(text), mark) {
			return true
		}
	}
	return false
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// collectBody records the call edges, sink uses and allocation sites of one
// function body (function literals included) into node.
func collectBody(pkg *Package, body *ast.BlockStmt, node *FuncNode) {
	info := pkg.Info
	// consumed marks selector/ident nodes already accounted for as a call's
	// Fun or as the Sel of a handled selector, so the reference pass below
	// does not double-count them.
	consumed := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			collectCall(info, x, node, consumed)
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
				if !consumed[x] {
					node.addUse(fn, x.Pos(), true)
				}
				consumed[x.Sel] = true
			}
		case *ast.Ident:
			if consumed[x] {
				return true
			}
			if fn, ok := info.Uses[x].(*types.Func); ok {
				node.addUse(fn, x.Pos(), true)
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[x]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					node.alloc(x.Pos(), "slice literal allocates")
				case *types.Map:
					node.alloc(x.Pos(), "map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := unparen(x.X).(*ast.CompositeLit); ok {
					node.alloc(x.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringValue(info, x) {
				node.alloc(x.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringValue(info, x.Lhs[0]) {
				node.alloc(x.Pos(), "string concatenation allocates")
			}
		}
		return true
	})
}

// collectCall classifies one call expression: conversion, builtin, resolved
// function call (edge/sink/fmt/boxing), or unresolved dynamic call.
func collectCall(info *types.Info, call *ast.CallExpr, node *FuncNode, consumed map[ast.Node]bool) {
	fun := unparen(call.Fun)
	// Conversions: T(x). Interface targets box; string<->byte/rune slice
	// conversions copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		recordConversion(info, call, tv.Type, node)
		return
	}
	var callee *types.Func
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Builtin:
			consumed[f] = true
			switch obj.Name() {
			case "make", "new", "append":
				node.alloc(call.Pos(), obj.Name()+" allocates")
			}
			return
		case *types.Func:
			consumed[f] = true
			callee = obj
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			consumed[f] = true
			consumed[f.Sel] = true
			callee = fn
		}
	}
	if callee == nil {
		return // dynamic call through a function value; unresolved by design
	}
	node.addUse(callee, call.Pos(), false)
	if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		node.alloc(call.Pos(), "fmt."+callee.Name()+" allocates")
		return // the fmt finding subsumes per-argument boxing
	}
	// Value-to-interface conversions at call boundaries: a concrete argument
	// passed to an interface parameter is boxed (one allocation per call on
	// escape), which is exactly the kind of hidden cost the zero-alloc pins
	// exist to keep off the hot path.
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt, ok := paramTypeAt(sig, i)
		if !ok || (call.Ellipsis.IsValid() && sig.Variadic() && i >= sig.Params().Len()-1) {
			continue // f(xs...) passes the slice through unboxed
		}
		if !isInterfaceType(pt) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || isInterfaceType(at) || isUntypedNil(at) {
			continue
		}
		node.alloc(arg.Pos(), "argument boxed into interface parameter "+paramName(sig, i))
	}
}

// recordConversion flags allocating conversions.
func recordConversion(info *types.Info, call *ast.CallExpr, target types.Type, node *FuncNode) {
	if len(call.Args) != 1 {
		return
	}
	at := info.Types[call.Args[0]].Type
	if at == nil {
		return
	}
	if isInterfaceType(target) && !isInterfaceType(at) && !isUntypedNil(at) {
		node.alloc(call.Pos(), "conversion boxes its operand into an interface")
		return
	}
	tu, au := target.Underlying(), at.Underlying()
	_, toSlice := tu.(*types.Slice)
	_, fromSlice := au.(*types.Slice)
	toStr := isStringType(tu)
	fromStr := isStringType(au)
	if (toSlice && fromStr) || (toStr && fromSlice) {
		node.alloc(call.Pos(), "string/slice conversion copies its operand")
	}
}

// addUse records a resolved use of fn: a sink use when fn is a banned
// package-level stdlib function, a call edge otherwise.
func (n *FuncNode) addUse(fn *types.Func, pos token.Pos, isRef bool) {
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		if rule, name := sinkOf(fn); rule != "" {
			n.Sinks = append(n.Sinks, SinkUse{Rule: rule, Name: name, Pos: pos, IsRef: isRef})
			return
		}
	}
	n.Calls = append(n.Calls, CallEdge{Callee: fn, Pos: pos, IsRef: isRef})
}

func (n *FuncNode) alloc(pos token.Pos, what string) {
	n.Allocs = append(n.Allocs, AllocSite{Pos: pos, What: what})
}

// sinkOf classifies a package-level stdlib function as a taint sink. Methods
// never match (time.Time.After is pure; only the package function time.After
// touches the clock).
func sinkOf(fn *types.Func) (rule, name string) {
	if fn.Pkg() == nil {
		return "", ""
	}
	switch path := fn.Pkg().Path(); path {
	case "time":
		if wallclockFuncs[fn.Name()] {
			return RuleWallclock, "time." + fn.Name()
		}
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ":
			return RuleGlobalRand, "os." + fn.Name()
		}
	case "math/rand", "math/rand/v2", "crypto/rand":
		return RuleGlobalRand, path + "." + fn.Name()
	}
	return "", ""
}

// paramTypeAt returns the effective type of argument i against sig,
// unwrapping the variadic tail.
func paramTypeAt(sig *types.Signature, i int) (types.Type, bool) {
	params := sig.Params()
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		sl, ok := last.(*types.Slice)
		if !ok {
			return nil, false
		}
		return sl.Elem(), true
	}
	if i >= params.Len() {
		return nil, false
	}
	return params.At(i).Type(), true
}

// paramName names parameter i for diagnostics ("v" or "#2" when unnamed).
func paramName(sig *types.Signature, i int) string {
	params := sig.Params()
	j := i
	if sig.Variadic() && j >= params.Len()-1 {
		j = params.Len() - 1
	}
	if j < params.Len() {
		if name := params.At(j).Name(); name != "" {
			return name
		}
	}
	return "#" + strconv.Itoa(i)
}

func isInterfaceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringValue reports whether expression e has string type.
func isStringValue(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type)
}

// shortFuncName renders fn compactly for call chains: "F" for functions,
// "T.M" for methods, with the package's base name prefixed when fn lives in
// a different package than from ("taintutil.HostStamp").
func shortFuncName(fn *types.Func, from *types.Package) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != from {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

package lint

import "strconv"

// analyzerBoundary enforces import quarantines: a sim-critical package must
// not import a quarantined package unless it is one of the boundary's
// declared adapters. The motivating quarantine is the real-process TCP
// transport (internal/node/tcptransport): it necessarily owns goroutines,
// sockets and wall-clock deadlines, and every one of its waivers is justified
// by "virtual time never flows through this package". That justification
// holds only as long as the simulation core cannot reach the transport at
// all — one import from internal/sim or internal/protocol and the waivers
// quietly start covering sim-critical code. The rule turns the boundary from
// a convention into a build gate; cross it deliberately with an
// //ecolint:allow boundary waiver naming the reason.
var analyzerBoundary = &Analyzer{
	Name:            RuleBoundary,
	Doc:             "forbids sim-critical packages importing quarantined packages (e.g. the TCP transport) outside their declared adapters",
	SimCriticalOnly: true,
	Run: func(pass *Pass) {
		for _, b := range pass.Cfg.Boundaries {
			quarantined := []string{b.Pkg}
			// The quarantined subtree may import itself; the adapters are the
			// sanctioned crossings.
			if matchScope(pass.Pkg.Path, quarantined) || matchScope(pass.Pkg.Path, b.AllowedFrom) {
				continue
			}
			for _, file := range pass.Pkg.Files {
				for _, imp := range file.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if matchScope(path, quarantined) {
						pass.Report(imp.Pos(), RuleBoundary,
							"import of quarantined package %s: only %v may cross this boundary (its wall-clock/goroutine waivers assume the simulation core cannot reach it)",
							path, b.AllowedFrom)
					}
				}
			}
		}
	},
}

package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// analyzerFloatEq reports == and != between floating-point operands — the
// classic Eq. 1 threshold bug: a utilization that should trip exactly at Ta
// never does because the comparison is exact while the arithmetic is not.
// Thresholds belong in ordered comparisons (or an epsilon helper).
//
// Comparisons against an exact constant zero are allowed: 0 is exactly
// representable and is the idiomatic "dimension not modeled / series empty"
// sentinel throughout the repository (e.g. Spec.RAMMB == 0).
var analyzerFloatEq = &Analyzer{
	Name: RuleFloatEq,
	Doc:  "forbids == and != between floating-point operands (except exact-zero sentinels)",
	Run: func(pass *Pass) {
		info := pass.Pkg.Info
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if !isFloat(info, bin.X) && !isFloat(info, bin.Y) {
					return true
				}
				if isZeroConst(info, bin.X) || isZeroConst(info, bin.Y) {
					return true
				}
				pass.Report(bin.OpPos, RuleFloatEq,
					"floating-point %s comparison; use an ordered comparison or an epsilon", bin.Op)
				return true
			})
		}
	},
}

// isFloat reports whether e has floating-point (or complex) type.
func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isZeroConst reports whether e is a compile-time constant equal to zero.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

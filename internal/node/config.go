// Package node runs the ecoCloud protocol as real operating-system
// processes: each ecod process hosts one shard of the server fleet behind a
// channel-per-message-kind event loop, node 0 additionally drives the
// workload, and every exchange crosses the tcptransport TCP mesh instead of
// the simulated netsim fabric.
//
// Virtual time stays the only clock that matters. The driver sequences
// arrivals, departures and migration-scan ticks on a sim.Engine exactly like
// the single-process protocol day, but where the simulated cluster's
// handlers run inside the engine loop, the driver's block on barrier
// replies from the shard agents: every protocol exchange completes — over
// real sockets — before virtual time advances. Each message carries its
// virtual timestamp; agents integrate energy and evaluate utilization
// against it and never read a host clock. Two same-seed runs therefore
// produce identical merged summaries, byte for byte, regardless of host
// speed or scheduling (see DESIGN.md "Real-process deployment" for the
// deliberate divergences from the netsim figures: no wire latency, so no
// wake reuses and zero placement latency).
package node

import (
	"bufio"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/trace"
)

// Span is one node's slice of the global server fleet: the half-open ID
// range [Lo, Hi). Spans must partition [0, Servers) with no gaps or overlap.
type Span struct {
	Lo, Hi int
}

// Contains reports whether global server ID id falls in the span.
func (s Span) Contains(id int) bool { return id >= s.Lo && id < s.Hi }

// Size returns the number of servers in the span.
func (s Span) Size() int { return s.Hi - s.Lo }

// NodeSpec is one line of the cluster map: which process owns which span,
// reachable where.
type NodeSpec struct {
	ID   int
	Addr string
	Span Span
}

// ClusterConfig is the static cluster description every ecod process is
// started with. There is no coordinator: two processes agree they belong to
// the same run iff their configs hash identically and they carry the same
// seed — checked in the transport handshake.
type ClusterConfig struct {
	// Seed drives everything: the churn workload (Seed) and the protocol
	// streams (Seed+1), the same convention as the protocolday experiment.
	Seed uint64

	// Fleet shape: Servers uniform machines of Cores x CoreMHz.
	Servers int
	Cores   int
	CoreMHz float64

	// Workload (trace.ChurnConfig defaults for everything not listed).
	Horizon        time.Duration
	InitialVMs     int
	ArrivalPerHour float64
	MeanLifetime   time.Duration

	// ScanInterval is the migration-scan cadence (protocol.Config semantics).
	ScanInterval time.Duration

	// Drop and Dup impair the live-migration TRANSFER messages at the TCP
	// codec boundary with netsim.Impairments semantics (deterministic
	// per-link decisions from labeled rng splits). Control-plane barrier
	// messages are never impaired: they play the sequencing role the
	// simulation engine plays in netsim runs.
	Drop, Dup float64

	Nodes []NodeSpec
}

// DefaultClusterConfig returns a single-process 48-server cluster running a
// short protocol day; callers add Nodes.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Seed:           1,
		Servers:        48,
		Cores:          6,
		CoreMHz:        2000,
		Horizon:        4 * time.Hour,
		InitialVMs:     150,
		ArrivalPerHour: 150,
		MeanLifetime:   90 * time.Minute,
		ScanInterval:   5 * time.Minute,
	}
}

// Validate checks the configuration, including that the node spans exactly
// partition [0, Servers).
func (c *ClusterConfig) Validate() error {
	switch {
	case c.Servers <= 0:
		return fmt.Errorf("node: servers = %d", c.Servers)
	case c.Cores <= 0 || c.CoreMHz <= 0:
		return fmt.Errorf("node: cores = %d, core_mhz = %v", c.Cores, c.CoreMHz)
	case c.Horizon <= 0:
		return fmt.Errorf("node: horizon = %v", c.Horizon)
	case c.InitialVMs < 0 || c.ArrivalPerHour < 0:
		return fmt.Errorf("node: initial_vms = %d, arrival_per_hour = %v", c.InitialVMs, c.ArrivalPerHour)
	case c.MeanLifetime <= 0:
		return fmt.Errorf("node: mean_lifetime = %v", c.MeanLifetime)
	case c.ScanInterval <= 0:
		return fmt.Errorf("node: scan_interval = %v", c.ScanInterval)
	case len(c.Nodes) == 0:
		return fmt.Errorf("node: no nodes")
	}
	if err := c.Impairments().Validate(); err != nil {
		return err
	}
	nodes := append([]NodeSpec(nil), c.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	next := 0
	for i, n := range nodes {
		if n.ID != i {
			return fmt.Errorf("node: node IDs must be 0..%d contiguous, got %d", len(nodes)-1, n.ID)
		}
		if n.Addr == "" {
			return fmt.Errorf("node: node %d has no address", n.ID)
		}
		if n.Span.Lo != next || n.Span.Hi <= n.Span.Lo {
			return fmt.Errorf("node: node %d span %d:%d does not continue the partition at %d",
				n.ID, n.Span.Lo, n.Span.Hi, next)
		}
		next = n.Span.Hi
	}
	if next != c.Servers {
		return fmt.Errorf("node: spans cover [0, %d), want [0, %d)", next, c.Servers)
	}
	return nil
}

// Owner returns the node whose span contains global server ID id.
func (c *ClusterConfig) Owner(id int) int {
	for _, n := range c.Nodes {
		if n.Span.Contains(id) {
			return n.ID
		}
	}
	panic(fmt.Sprintf("node: server %d outside every span", id))
}

// Churn returns the workload generator configuration. Every node generates
// the identical workload locally from (Churn, Seed): VM objects never cross
// the wire, only their IDs do.
func (c *ClusterConfig) Churn() trace.ChurnConfig {
	churn := trace.DefaultChurnConfig()
	churn.Horizon = c.Horizon
	churn.InitialVMs = c.InitialVMs
	churn.ArrivalPerHour = c.ArrivalPerHour
	churn.MeanLifetime = c.MeanLifetime
	return churn
}

// Proto returns the protocol parameters the run uses: the paper defaults
// with migration enabled and this cluster's scan cadence.
func (c *ClusterConfig) Proto() protocol.Config {
	p := protocol.DefaultConfig()
	p.EnableMigration = true
	p.ScanInterval = c.ScanInterval
	return p
}

// Impairments returns the TRANSFER-message impairments in the shared
// netsim form, so validation and the guard contract come from one place.
func (c *ClusterConfig) Impairments() netsim.Impairments {
	return netsim.Impairments{DropProb: c.Drop, DupProb: c.Dup}
}

// Canonical renders the configuration in the parseable text format with
// fields in a fixed order — the serialization that is hashed, so two
// processes started from differently formatted but semantically identical
// files still agree.
func (c *ClusterConfig) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed = %d\n", c.Seed)
	fmt.Fprintf(&b, "servers = %d\n", c.Servers)
	fmt.Fprintf(&b, "cores = %d\n", c.Cores)
	fmt.Fprintf(&b, "core_mhz = %v\n", c.CoreMHz)
	fmt.Fprintf(&b, "horizon = %v\n", c.Horizon)
	fmt.Fprintf(&b, "initial_vms = %d\n", c.InitialVMs)
	fmt.Fprintf(&b, "arrival_per_hour = %v\n", c.ArrivalPerHour)
	fmt.Fprintf(&b, "mean_lifetime = %v\n", c.MeanLifetime)
	fmt.Fprintf(&b, "scan_interval = %v\n", c.ScanInterval)
	fmt.Fprintf(&b, "drop = %v\n", c.Drop)
	fmt.Fprintf(&b, "dup = %v\n", c.Dup)
	nodes := append([]NodeSpec(nil), c.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		fmt.Fprintf(&b, "node = %d %s %d:%d\n", n.ID, n.Addr, n.Span.Lo, n.Span.Hi)
	}
	return b.String()
}

// Hash is the cluster identity carried in the transport handshake.
func (c *ClusterConfig) Hash() [32]byte {
	return sha256.Sum256([]byte(c.Canonical()))
}

// ParseConfig reads the key = value cluster config format:
//
//	# comment
//	seed = 42
//	servers = 48
//	horizon = 4h
//	node = 0 127.0.0.1:7101 0:16
//
// Durations use Go syntax (4h, 90m, 5m30s). Unknown keys are errors: a typo
// must not silently fall back to a default and change the config hash story.
func ParseConfig(r io.Reader) (*ClusterConfig, error) {
	cfg := DefaultClusterConfig()
	cfg.Nodes = nil
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("node: config line %d: no '=' in %q", lineNo, line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if err := cfg.setField(key, val); err != nil {
			return nil, fmt.Errorf("node: config line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("node: reading config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// LoadConfig reads and parses a cluster config file.
func LoadConfig(path string) (*ClusterConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseConfig(f)
}

// setField applies one key = value line.
func (c *ClusterConfig) setField(key, val string) error {
	switch key {
	case "seed":
		return parseInto(val, &c.Seed)
	case "servers":
		return parseInto(val, &c.Servers)
	case "cores":
		return parseInto(val, &c.Cores)
	case "core_mhz":
		return parseInto(val, &c.CoreMHz)
	case "horizon":
		return parseInto(val, &c.Horizon)
	case "initial_vms":
		return parseInto(val, &c.InitialVMs)
	case "arrival_per_hour":
		return parseInto(val, &c.ArrivalPerHour)
	case "mean_lifetime":
		return parseInto(val, &c.MeanLifetime)
	case "scan_interval":
		return parseInto(val, &c.ScanInterval)
	case "drop":
		return parseInto(val, &c.Drop)
	case "dup":
		return parseInto(val, &c.Dup)
	case "node":
		n, err := parseNodeSpec(val)
		if err != nil {
			return err
		}
		c.Nodes = append(c.Nodes, n)
		return nil
	default:
		return fmt.Errorf("unknown key %q", key)
	}
}

// parseNodeSpec parses "<id> <addr> <lo>:<hi>".
func parseNodeSpec(val string) (NodeSpec, error) {
	fields := strings.Fields(val)
	if len(fields) != 3 {
		return NodeSpec{}, fmt.Errorf("node spec %q: want <id> <addr> <lo>:<hi>", val)
	}
	var n NodeSpec
	if err := parseInto(fields[0], &n.ID); err != nil {
		return NodeSpec{}, fmt.Errorf("node spec %q: %v", val, err)
	}
	n.Addr = fields[1]
	lo, hi, ok := strings.Cut(fields[2], ":")
	if !ok {
		return NodeSpec{}, fmt.Errorf("node spec %q: span must be <lo>:<hi>", val)
	}
	if err := parseInto(lo, &n.Span.Lo); err != nil {
		return NodeSpec{}, fmt.Errorf("node spec %q: %v", val, err)
	}
	if err := parseInto(hi, &n.Span.Hi); err != nil {
		return NodeSpec{}, fmt.Errorf("node spec %q: %v", val, err)
	}
	return n, nil
}

// parseInto parses val into the pointed-to config field type.
func parseInto(val string, dst any) error {
	switch p := dst.(type) {
	case *int:
		v, err := strconv.Atoi(val)
		if err != nil {
			return err
		}
		*p = v
	case *uint64:
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return err
		}
		*p = v
	case *float64:
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return err
		}
		*p = v
	case *time.Duration:
		v, err := time.ParseDuration(val)
		if err != nil {
			return err
		}
		if v < 0 {
			return fmt.Errorf("negative duration %v", v)
		}
		*p = v
	default:
		panic(fmt.Sprintf("node: parseInto: unsupported type %T", dst))
	}
	return nil
}

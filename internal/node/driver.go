package node

import (
	"fmt"
	"time"

	"repro/internal/ecocloud"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// driver is the node-0 role: it owns the run's virtual clock (a sim.Engine
// scheduling arrivals, departures and scan ticks exactly like the netsim
// protocol day) and plays the manager. Where the netsim manager's handlers
// run inside the engine loop, the driver's engine handlers block on barrier
// acks from the shard agents: every protocol exchange completes over the
// sockets before virtual time advances, so at any instant at most one
// exchange is in flight and TCP delivery order cannot reorder decisions.
//
// The driver never holds server objects — it keeps a power-state mirror
// (active/hibernated per global ID, advanced only by agent acks) plus the
// vmID -> serverID location map, and asks the shards for anything
// utilization-shaped (invitation rounds, the saturation utilquery). The
// manager decision stream is rng(seed+1).Split("manager"), the netsim
// cluster's convention.
type driver struct {
	cfg  *ClusterConfig
	pcfg protocol.Config
	eng  *sim.Engine
	tr   protocol.Transport
	mgr  *rng.Source
	fa   ecocloud.AssignProbFunc
	ws   *trace.Set

	n      int     // nodes
	capMHz float64 // uniform server capacity
	active []bool  // power-state mirror, indexed by global server ID
	loc    map[int]int
	vmByID map[int]*trace.VM

	// watchdog bounds the wait for a MIGRATED ack when -impair may have
	// dropped the TRANSFER frame. Zero means wait forever (perfect fabric).
	watchdog time.Duration

	stats     driverStats
	nextRound int

	replyCh    chan replyMsg
	assignedCh chan assignedMsg
	removedCh  chan removedMsg
	scandoneCh chan scandoneMsg
	wokenCh    chan wokenMsg
	migratedCh chan migratedMsg
	utilCh     chan utilBestMsg
	summaryCh  chan summaryMsg
}

// driverStats are the manager-side counters, named after their
// protocol.Stats counterparts.
type driverStats struct {
	Placements        int
	Wakes             int
	Saturations       int
	MigrationsLow     int
	MigrationsHigh    int
	MigrationsAborted int
	MigrationsExpired int
}

const migWatchdog = 2 * time.Second

func newDriver(cfg *ClusterConfig, ws *trace.Set, tr protocol.Transport) (*driver, error) {
	pcfg := cfg.Proto()
	fa, err := ecocloud.NewAssignProb(pcfg.Ta, pcfg.P)
	if err != nil {
		return nil, err
	}
	d := &driver{
		cfg:    cfg,
		pcfg:   pcfg,
		eng:    sim.New(),
		tr:     tr,
		mgr:    rng.New(cfg.Seed + 1).Split("manager"),
		fa:     fa,
		ws:     ws,
		n:      len(cfg.Nodes),
		capMHz: float64(cfg.Cores) * cfg.CoreMHz,
		active: make([]bool, cfg.Servers),
		loc:    make(map[int]int),
		vmByID: make(map[int]*trace.VM, len(ws.VMs)),

		replyCh:    make(chan replyMsg, len(cfg.Nodes)),
		assignedCh: make(chan assignedMsg, 4),
		removedCh:  make(chan removedMsg, 4),
		scandoneCh: make(chan scandoneMsg, len(cfg.Nodes)),
		wokenCh:    make(chan wokenMsg, 4),
		migratedCh: make(chan migratedMsg, 8),
		utilCh:     make(chan utilBestMsg, len(cfg.Nodes)),
		summaryCh:  make(chan summaryMsg, len(cfg.Nodes)),
	}
	if cfg.Impairments().Enabled() {
		d.watchdog = migWatchdog
	}
	for _, vm := range ws.VMs {
		d.vmByID[vm.ID] = vm
	}
	return d, nil
}

// handle demuxes an agent ack into its barrier channel. It runs on the
// transport dispatch goroutine; the engine goroutine consumes.
func (d *driver) handle(msg netsim.Message) bool {
	switch p := msg.Payload.(type) {
	case replyMsg:
		d.replyCh <- p
	case assignedMsg:
		d.assignedCh <- p
	case removedMsg:
		d.removedCh <- p
	case scandoneMsg:
		d.scandoneCh <- p
	case wokenMsg:
		d.wokenCh <- p
	case migratedMsg:
		d.migratedCh <- p
	case utilBestMsg:
		d.utilCh <- p
	case summaryMsg:
		d.summaryCh <- p
	default:
		return false
	}
	return true
}

// run schedules the churn workload, drives the horizon, then collects every
// node's summary. It executes on the caller's goroutine.
func (d *driver) run() []summaryMsg {
	for _, vm := range d.ws.VMs {
		vm := vm
		d.eng.Schedule(vm.Start, "arrival", func(*sim.Engine) { d.placeVM(vm) })
		if vm.End < d.cfg.Horizon {
			d.eng.Schedule(vm.End, "departure", func(*sim.Engine) { d.removeVM(vm.ID) })
		}
	}
	d.eng.Every(d.pcfg.ScanInterval, d.pcfg.ScanInterval, "migration-scan", func(*sim.Engine) { d.scanTick() })
	d.eng.Run(d.cfg.Horizon)

	d.broadcast(kindDone, doneMsg{HorizonNS: int64(d.cfg.Horizon)}, d.pcfg.InviteSize)
	sums := make([]summaryMsg, d.n)
	for i := 0; i < d.n; i++ {
		s := <-d.summaryCh
		sums[s.Node] = s
	}
	return sums
}

func (d *driver) send(to int, kind string, payload any, size int) {
	d.tr.Send(netsim.Message{
		From: netsim.NodeID(driverNode), To: netsim.NodeID(to),
		Kind: kind, Payload: payload, Size: size,
	})
}

// broadcast sends one frame per node, node 0 (loopback) included.
func (d *driver) broadcast(kind string, payload any, size int) {
	tos := make([]netsim.NodeID, d.n)
	for i := range tos {
		tos[i] = netsim.NodeID(i)
	}
	d.tr.Broadcast(netsim.NodeID(driverNode), tos, kind, payload, size)
}

// activeCount counts mirror-active servers, optionally excluding one.
func (d *driver) activeCount(exclude int) int {
	count := 0
	for id, on := range d.active {
		if on && id != exclude {
			count++
		}
	}
	return count
}

// round runs one invitation round: every node scans its shard under the
// effective threshold ta and replies with its accepting server IDs. The
// returned slice is ascending in global ID (node spans are contiguous by
// node ID, and each shard replies in ID order). With no active server to
// invite the round is skipped entirely — no messages, no rng draws —
// matching the netsim manager's unopened round.
func (d *driver) round(now time.Duration, ta, demand float64, exclude int) []int {
	if d.activeCount(exclude) == 0 {
		return nil
	}
	d.nextRound++
	d.broadcast(kindInvite,
		inviteMsg{Round: d.nextRound, Demand: demand, Ta: ta, Exclude: exclude, NowNS: int64(now)},
		d.pcfg.InviteSize)
	byNode := make([][]int32, d.n)
	for i := 0; i < d.n; i++ {
		r := <-d.replyCh
		if r.Round != d.nextRound {
			panic(fmt.Sprintf("node: reply for round %d during round %d", r.Round, d.nextRound))
		}
		byNode[r.Node] = r.Accepts
	}
	var accepts []int
	for _, ids := range byNode {
		for _, id := range ids {
			accepts = append(accepts, int(id))
		}
	}
	return accepts
}

// placeVM runs one arrival: an invitation round, then the wake fallback.
func (d *driver) placeVM(vm *trace.VM) {
	now := d.eng.Now()
	demand := vm.DemandAt(now)
	if accepts := d.round(now, d.fa.Ta, demand, -1); len(accepts) > 0 {
		d.assign(now, vm, accepts[d.mgr.Intn(len(accepts))], false)
		d.stats.Placements++
		return
	}
	d.wakeAssign(now, vm, demand)
}

// assign lands vm on the chosen server (waking it when ordered) and blocks
// on the shard's ack before updating the mirror and the location map.
func (d *driver) assign(now time.Duration, vm *trace.VM, server int, wake bool) {
	d.send(d.cfg.Owner(server), kindAssign,
		assignMsg{VMID: vm.ID, Server: server, Wake: wake, NowNS: int64(now)}, d.pcfg.AssignSize)
	ack := <-d.assignedCh
	if ack.VMID != vm.ID || ack.Server != server {
		panic(fmt.Sprintf("node: assigned ack for VM %d on %d, want VM %d on %d",
			ack.VMID, ack.Server, vm.ID, server))
	}
	if ack.Activated {
		d.active[server] = true
	}
	d.loc[vm.ID] = server
}

// wakeAssign mirrors the netsim manager's fallback tiers, minus the
// pending-wake bookkeeping: barriers land every wake synchronously in
// virtual time, so a wake is never "in flight" when the next placement
// decides — WakeReuses is structurally zero here (see DESIGN.md). The fleet
// is uniform, so "largest hibernated" degenerates to the lowest ID.
func (d *driver) wakeAssign(now time.Duration, vm *trace.VM, demand float64) {
	var fitting []int
	largest := -1
	for id, on := range d.active {
		if on {
			continue
		}
		if largest < 0 {
			largest = id
		}
		if demand <= d.fa.Ta*d.capMHz {
			fitting = append(fitting, id)
		}
	}
	wake := -1
	switch {
	case len(fitting) > 0:
		wake = fitting[d.mgr.Intn(len(fitting))]
	case largest >= 0:
		wake = largest
	}
	if wake >= 0 {
		d.stats.Wakes++
		d.assign(now, vm, wake, true)
		d.active[wake] = true
		d.stats.Placements++
		return
	}
	// Total saturation: degrade onto the least-utilized active server,
	// located by a utilquery barrier across the shards.
	d.stats.Saturations++
	best := d.leastUtilizedActive(now)
	if best < 0 {
		panic(fmt.Sprintf("node: no server at all for VM %d", vm.ID))
	}
	d.assign(now, vm, best, false)
	d.stats.Placements++
}

// leastUtilizedActive asks every shard for its least-utilized active server
// and picks the global minimum (ties to the lowest ID, the netsim manager's
// scan order).
func (d *driver) leastUtilizedActive(now time.Duration) int {
	d.broadcast(kindUtilQuery, utilQueryMsg{NowNS: int64(now)}, d.pcfg.InviteSize)
	best := utilBestMsg{Server: -1}
	for i := 0; i < d.n; i++ {
		m := <-d.utilCh
		if !m.Has {
			continue
		}
		if !best.Has || m.U < best.U || (!(best.U < m.U) && m.Server < best.Server) {
			best = m
		}
	}
	return best.Server
}

// removeVM runs one departure through the owning shard.
func (d *driver) removeVM(vmID int) {
	server, ok := d.loc[vmID]
	if !ok {
		return
	}
	now := d.eng.Now()
	d.send(d.cfg.Owner(server), kindRemove, removeMsg{VMID: vmID, NowNS: int64(now)}, d.pcfg.AssignSize)
	d.awaitRemoved(vmID)
	delete(d.loc, vmID)
}

// awaitRemoved blocks on the removed ack for vmID.
func (d *driver) awaitRemoved(vmID int) {
	ack := <-d.removedCh
	if ack.VMID != vmID {
		panic(fmt.Sprintf("node: removed ack for VM %d, want %d", ack.VMID, vmID))
	}
}

// scanTick runs one migration-scan round: every shard scans locally and
// reports hibernations plus migration requests; the driver applies the
// mirror updates and then serves the requests one at a time in global
// server-ID order — the order the netsim manager receives them in, since
// its scan walks servers by ID.
func (d *driver) scanTick() {
	now := d.eng.Now()
	d.broadcast(kindScan, scanMsg{NowNS: int64(now)}, d.pcfg.InviteSize)
	byNode := make([]scandoneMsg, d.n)
	for i := 0; i < d.n; i++ {
		m := <-d.scandoneCh
		byNode[m.Node] = m
	}
	for _, m := range byNode {
		for _, id := range m.Hibernated {
			d.active[id] = false
		}
	}
	for _, m := range byNode {
		for _, mr := range m.MigReqs {
			d.serveMigReq(now, mr)
		}
	}
}

// serveMigReq is the manager side of one migration request: a tightened
// round excluding the source; high migrations may wake a server, low
// migrations never do.
func (d *driver) serveMigReq(now time.Duration, mr migReqEntry) {
	vmID, src := int(mr.VMID), int(mr.Server)
	if cur, ok := d.loc[vmID]; !ok || cur != src {
		return // departed or already moved by an earlier request this tick
	}
	vm := d.vmByID[vmID]
	demand := vm.DemandAt(now)
	ta := d.fa.Ta
	if mr.High {
		ta = d.pcfg.HighMigTaFactor * mr.U
		if ta > d.fa.Ta {
			ta = d.fa.Ta
		}
	}
	if accepts := d.round(now, ta, demand, src); len(accepts) > 0 {
		d.migrate(now, vmID, src, accepts[d.mgr.Intn(len(accepts))], mr.High)
		return
	}
	if mr.High {
		if wake := d.pickWake(demand, ta); wake >= 0 {
			d.stats.Wakes++
			d.send(d.cfg.Owner(wake), kindWake, wakeMsg{Server: wake, NowNS: int64(now)}, d.pcfg.AssignSize)
			ack := <-d.wokenCh
			if ack.Server != wake {
				panic(fmt.Sprintf("node: woken ack for server %d, want %d", ack.Server, wake))
			}
			d.active[wake] = true
			d.migrate(now, vmID, src, wake, mr.High)
			return
		}
	}
	d.stats.MigrationsAborted++
}

// pickWake selects a hibernated server that fits the demand under ta
// (uniformly), or -1.
func (d *driver) pickWake(demand, ta float64) int {
	var fitting []int
	for id, on := range d.active {
		if !on && demand <= ta*d.capMHz {
			fitting = append(fitting, id)
		}
	}
	if len(fitting) == 0 {
		return -1
	}
	return fitting[d.mgr.Intn(len(fitting))]
}

// migrate runs the three-phase live migration: MIGRATE to the source shard,
// which ships a TRANSFER to the destination shard, which acks MIGRATED to
// the driver; the CUTOVER then retires the source copy. The VM keeps
// running at the source until cutover, so a TRANSFER dropped by -impair
// only costs the attempt: the watchdog expires the barrier and the VM is
// re-eligible at the next scan, mirroring netsim's MigTimeout expiry.
func (d *driver) migrate(now time.Duration, vmID, src, dest int, high bool) {
	// Retire stale duplicated MIGRATED acks (the -impair dup path) before
	// opening a new barrier: a dup frame is written back-to-back with its
	// original, so its ack is long since queued by the time the next
	// migration starts.
	for {
		select {
		case <-d.migratedCh:
			continue
		default:
		}
		break
	}
	d.send(d.cfg.Owner(src), kindMigrate,
		migrateMsg{VMID: vmID, DestNode: d.cfg.Owner(dest), DestServer: dest, High: high, NowNS: int64(now)},
		d.pcfg.AssignSize)
	ack, ok := d.awaitMigrated(vmID)
	if !ok {
		d.stats.MigrationsExpired++
		return
	}
	if !ack.OK {
		d.stats.MigrationsAborted++
		return
	}
	if ack.Activated {
		d.active[dest] = true
	}
	d.send(d.cfg.Owner(src), kindCutover, cutoverMsg{VMID: vmID, SrcServer: src, NowNS: int64(now)}, d.pcfg.AssignSize)
	d.awaitRemoved(vmID)
	d.loc[vmID] = dest
	if high {
		d.stats.MigrationsHigh++
	} else {
		d.stats.MigrationsLow++
	}
}

// awaitMigrated blocks for the MIGRATED ack carrying vmID, discarding acks
// for other VMs (stale duplicates). With impairments enabled the wait is
// bounded by the real-time watchdog: a dropped TRANSFER produces no ack at
// all, and there is no virtual clock to hang a timeout on — the sockets are
// the only place real time legitimately exists in this system.
func (d *driver) awaitMigrated(vmID int) (migratedMsg, bool) {
	if d.watchdog <= 0 {
		for {
			m := <-d.migratedCh
			if m.VMID == vmID {
				return m, true
			}
		}
	}
	//ecolint:allow wallclock — bounds the wait for an ack whose TRANSFER may have been dropped by -impair; virtual time cannot advance while the barrier is open
	timer := time.NewTimer(d.watchdog)
	defer timer.Stop()
	for {
		select {
		case m := <-d.migratedCh:
			if m.VMID == vmID {
				return m, true
			}
		case <-timer.C:
			return migratedMsg{}, false
		}
	}
}

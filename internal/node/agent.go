package node

import (
	"fmt"
	"time"

	"repro/internal/dc"
	"repro/internal/ecocloud"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/trace"
)

// agent is one shard of the fleet: the servers in this node's span, hosted
// in a local policy-free dc.DataCenter, driven by a single event-loop
// goroutine that consumes one channel per message kind (the distributePKI
// node-loop shape). All decisions use the virtual timestamp carried by the
// triggering message; the loop never reads a host clock.
//
// Server ID mapping: local index i in the shard's DataCenter is global ID
// span.Lo+i. Per-server rng streams are split from the protocol master by
// GLOBAL ID with the same labels the netsim cluster uses, so a server's
// Bernoulli draw sequence is the shard layout's business, not its owner's.
type agent struct {
	node int
	span Span
	cfg  *ClusterConfig
	pcfg protocol.Config

	dcen   *dc.DataCenter
	vmByID map[int]*trace.VM
	fa     ecocloud.AssignProbFunc
	srcs   []*rng.Source // per local server
	pm     dc.PowerModel

	tr    protocol.Transport
	stats func() (int, int64) // transport counters, read at summary time

	// Energy integration: utilization only changes at message-borne events
	// (VM demand is constant over a VM's life), so left-rectangle integration
	// at every virtual-time-carrying message is exact, not approximate.
	lastT  time.Duration
	joules float64

	counters agentCounters
	final    summaryMsg // set by onDone; the per-node CSV row

	// One channel per message kind. The barrier discipline guarantees at
	// most one kind has traffic in flight at any instant, so the select in
	// run never has to arbitrate between ready channels.
	inviteCh   chan inviteMsg
	assignCh   chan assignMsg
	removeCh   chan removeMsg
	scanCh     chan scanMsg
	wakeCh     chan wakeMsg
	migrateCh  chan migrateMsg
	transferCh chan transferMsg
	cutoverCh  chan cutoverMsg
	utilCh     chan utilQueryMsg
	doneCh     chan doneMsg
}

// agentCounters are the per-node totals reported in the summary and the
// per-node CSV.
type agentCounters struct {
	Placements    int64
	Removals      int64
	MigrationsIn  int64
	MigrationsOut int64
	Hibernates    int64
	Activations   int64
}

// newAgent builds the shard for cfg.Nodes[nodeID] over transport tr.
func newAgent(cfg *ClusterConfig, nodeID int, ws *trace.Set, tr protocol.Transport, stats func() (int, int64)) (*agent, error) {
	pcfg := cfg.Proto()
	fa, err := ecocloud.NewAssignProb(pcfg.Ta, pcfg.P)
	if err != nil {
		return nil, err
	}
	span := cfg.Nodes[nodeID].Span
	a := &agent{
		node:   nodeID,
		span:   span,
		cfg:    cfg,
		pcfg:   pcfg,
		dcen:   dc.New(dc.UniformFleet(span.Size(), cfg.Cores, cfg.CoreMHz)),
		vmByID: make(map[int]*trace.VM, len(ws.VMs)),
		fa:     fa,
		srcs:   make([]*rng.Source, span.Size()),
		pm:     dc.DefaultPowerModel(),
		tr:     tr,
		stats:  stats,

		inviteCh:   make(chan inviteMsg, 4),
		assignCh:   make(chan assignMsg, 4),
		removeCh:   make(chan removeMsg, 4),
		scanCh:     make(chan scanMsg, 4),
		wakeCh:     make(chan wakeMsg, 4),
		migrateCh:  make(chan migrateMsg, 4),
		transferCh: make(chan transferMsg, 4),
		cutoverCh:  make(chan cutoverMsg, 4),
		utilCh:     make(chan utilQueryMsg, 4),
		doneCh:     make(chan doneMsg, 1),
	}
	for _, vm := range ws.VMs {
		a.vmByID[vm.ID] = vm
	}
	// Same stream derivation as protocol.Cluster: master is seed+1 (the
	// protocolday convention), servers split by global ID.
	master := rng.New(cfg.Seed + 1)
	for i := 0; i < span.Size(); i++ {
		a.srcs[i] = master.SplitIndex("server", span.Lo+i)
	}
	return a, nil
}

// handle demuxes one delivered message into its kind's channel. It runs on
// the transport's dispatch goroutine; the loop goroutine consumes.
func (a *agent) handle(msg netsim.Message) {
	switch p := msg.Payload.(type) {
	case inviteMsg:
		a.inviteCh <- p
	case assignMsg:
		a.assignCh <- p
	case removeMsg:
		a.removeCh <- p
	case scanMsg:
		a.scanCh <- p
	case wakeMsg:
		a.wakeCh <- p
	case migrateMsg:
		a.migrateCh <- p
	case transferMsg:
		a.transferCh <- p
	case cutoverMsg:
		a.cutoverCh <- p
	case utilQueryMsg:
		a.utilCh <- p
	case doneMsg:
		a.doneCh <- p
	default:
		// A peer speaking a kind we route but never expect at an agent
		// (driver-bound acks): drop rather than crash on a confused peer.
	}
}

// run is the event loop. It exits after the done message's summary is sent.
func (a *agent) run() {
	for {
		select {
		case m := <-a.inviteCh:
			a.onInvite(m)
		case m := <-a.assignCh:
			a.onAssign(m)
		case m := <-a.removeCh:
			a.onRemove(m)
		case m := <-a.scanCh:
			a.onScan(m)
		case m := <-a.wakeCh:
			a.onWake(m)
		case m := <-a.migrateCh:
			a.onMigrate(m)
		case m := <-a.transferCh:
			a.onTransfer(m)
		case m := <-a.cutoverCh:
			a.onCutover(m)
		case m := <-a.utilCh:
			a.onUtilQuery(m)
		case m := <-a.doneCh:
			a.onDone(m)
			return
		}
	}
}

// server returns the local server for a global ID, panicking on a foreign
// ID: the driver routing a server to the wrong shard is a protocol bug.
func (a *agent) server(globalID int) *dc.Server {
	if !a.span.Contains(globalID) {
		panic(fmt.Sprintf("node %d: server %d outside span %d:%d", a.node, globalID, a.span.Lo, a.span.Hi))
	}
	return a.dcen.Servers[globalID-a.span.Lo]
}

// integrate advances the energy account to virtual time now.
func (a *agent) integrate(now time.Duration) {
	if now > a.lastT {
		a.joules += a.dcen.PowerAt(a.lastT, a.pm) * (now - a.lastT).Seconds()
		a.lastT = now
	}
}

// send is a shorthand for a driver-bound or peer-bound message.
func (a *agent) send(to int, kind string, payload any, size int) {
	a.tr.Send(netsim.Message{
		From: netsim.NodeID(a.node), To: netsim.NodeID(to),
		Kind: kind, Payload: payload, Size: size,
	})
}

const driverNode = 0

// onInvite evaluates the round against every local active server (in global
// ID order) and replies with the accepting IDs — the shard-aggregated form
// of the per-server ACCEPT/REJECT replies in the netsim protocol.
func (a *agent) onInvite(m inviteMsg) {
	now := vt(m.NowNS)
	a.integrate(now)
	var accepts []int32
	for i, s := range a.dcen.Servers {
		globalID := a.span.Lo + i
		if globalID == m.Exclude || s.State() != dc.Active {
			continue
		}
		if a.serverAccepts(s, a.srcs[i], now, m.Demand, m.Ta) {
			accepts = append(accepts, int32(globalID))
		}
	}
	a.send(driverNode, kindReply, replyMsg{Round: m.Round, Node: a.node, Accepts: accepts}, a.pcfg.ReplySize)
}

// serverAccepts is the local availability decision, identical to the netsim
// cluster's: feasibility under the round's effective threshold, the
// grace-period rule, then the Bernoulli trial on fa(u).
func (a *agent) serverAccepts(s *dc.Server, src *rng.Source, now time.Duration, demand, ta float64) bool {
	u := s.UtilizationAt(now)
	if u+demand/s.CapacityMHz() > ta {
		return false
	}
	if now-s.ActivatedAt() < a.pcfg.Grace {
		return true
	}
	fa := a.fa
	//ecolint:allow float-eq — Ta is copied verbatim from the config, so exact inequality means a real override
	if ta != a.fa.Ta {
		tightened, err := a.fa.WithThreshold(ta)
		if err != nil {
			return false
		}
		fa = tightened
	}
	return src.Bernoulli(fa.Eval(u))
}

// onAssign places a VM on the driver-chosen server, waking it first when
// ordered to. Re-delivery is idempotent: an already-hosted VM just re-acks.
func (a *agent) onAssign(m assignMsg) {
	now := vt(m.NowNS)
	a.integrate(now)
	s := a.server(m.Server)
	activated := false
	if host, ok := a.dcen.HostOf(m.VMID); !ok || host != s {
		if ok {
			panic(fmt.Sprintf("node %d: assign of VM %d to server %d but hosted on %d",
				a.node, m.VMID, m.Server, host.ID+a.span.Lo))
		}
		if s.State() == dc.Hibernated {
			if !m.Wake {
				panic(fmt.Sprintf("node %d: assign to hibernated server %d without wake", a.node, m.Server))
			}
			if err := a.dcen.Activate(s, now); err != nil {
				panic(fmt.Sprintf("node %d: waking server %d: %v", a.node, m.Server, err))
			}
			a.counters.Activations++
			activated = true
		}
		vm := a.vmByID[m.VMID]
		if vm == nil {
			panic(fmt.Sprintf("node %d: assign of unknown VM %d", a.node, m.VMID))
		}
		if err := a.dcen.Place(vm, s); err != nil {
			panic(fmt.Sprintf("node %d: placing VM %d on server %d: %v", a.node, m.VMID, m.Server, err))
		}
		a.counters.Placements++
	}
	a.send(driverNode, kindAssigned, assignedMsg{VMID: m.VMID, Server: m.Server, Activated: activated}, a.pcfg.ReplySize)
}

// onRemove handles a departure. A VM the shard no longer hosts is acked
// anyway: the barrier must complete.
func (a *agent) onRemove(m removeMsg) {
	now := vt(m.NowNS)
	a.integrate(now)
	if _, ok := a.dcen.HostOf(m.VMID); ok {
		if _, err := a.dcen.Remove(m.VMID); err != nil {
			panic(fmt.Sprintf("node %d: removing VM %d: %v", a.node, m.VMID, err))
		}
		a.counters.Removals++
	}
	a.send(driverNode, kindRemoved, removedMsg{VMID: m.VMID}, a.pcfg.ReplySize)
}

// onScan is the local monitoring tick (§II): hibernate servers drained
// empty past the grace period, and run each loaded server's migration
// Bernoulli trial; successful trials select a VM with the paper's rules.
func (a *agent) onScan(m scanMsg) {
	now := vt(m.NowNS)
	a.integrate(now)
	out := scandoneMsg{Node: a.node}
	for i, s := range a.dcen.Servers {
		if s.State() != dc.Active {
			continue
		}
		globalID := a.span.Lo + i
		if s.NumVMs() == 0 {
			if now-s.ActivatedAt() >= a.pcfg.Grace {
				if err := a.dcen.Hibernate(s); err != nil {
					panic(fmt.Sprintf("node %d: hibernating server %d: %v", a.node, globalID, err))
				}
				a.counters.Hibernates++
				out.Hibernated = append(out.Hibernated, int32(globalID))
			}
			continue
		}
		u := s.UtilizationAt(now)
		src := a.srcs[i]
		switch {
		case u < a.pcfg.Tl && now-s.ActivatedAt() >= a.pcfg.Grace:
			if src.Bernoulli(ecocloud.MigrateLowProb(u, a.pcfg.Tl, a.pcfg.Alpha)) {
				if vmID, ok := a.pickMigrationVM(s, src, now, u, false); ok {
					out.MigReqs = append(out.MigReqs, migReqEntry{Server: int32(globalID), VMID: int32(vmID), U: u})
				}
			}
		case u > a.pcfg.Th:
			if src.Bernoulli(ecocloud.MigrateHighProb(u, a.pcfg.Th, a.pcfg.Beta)) {
				if vmID, ok := a.pickMigrationVM(s, src, now, u, true); ok {
					out.MigReqs = append(out.MigReqs, migReqEntry{Server: int32(globalID), VMID: int32(vmID), High: true, U: u})
				}
			}
		}
	}
	a.send(driverNode, kindScandone, out, a.pcfg.ReplySize)
}

// pickMigrationVM applies the §II selection rules on the server's ID-sorted
// VM list: high migrations prefer a uniformly chosen VM big enough to clear
// the overload (falling back to the largest), low migrations take any VM
// uniformly.
func (a *agent) pickMigrationVM(s *dc.Server, src *rng.Source, now time.Duration, u float64, high bool) (int, bool) {
	candidates := s.VMs()
	if len(candidates) == 0 {
		return 0, false
	}
	var vm *trace.VM
	if high {
		need := (u - a.pcfg.Th) * s.CapacityMHz()
		var big []*trace.VM
		for _, v := range candidates {
			if v.DemandAt(now) >= need {
				big = append(big, v)
			}
		}
		if len(big) > 0 {
			vm = big[src.Intn(len(big))]
		} else {
			vm = candidates[0]
			for _, v := range candidates[1:] {
				if v.DemandAt(now) > vm.DemandAt(now) {
					vm = v
				}
			}
		}
	} else {
		vm = candidates[src.Intn(len(candidates))]
	}
	return vm.ID, true
}

// onWake activates a hibernated server ahead of an incoming migration.
func (a *agent) onWake(m wakeMsg) {
	now := vt(m.NowNS)
	a.integrate(now)
	s := a.server(m.Server)
	if s.State() == dc.Hibernated {
		if err := a.dcen.Activate(s, now); err != nil {
			panic(fmt.Sprintf("node %d: waking server %d: %v", a.node, m.Server, err))
		}
		a.counters.Activations++
	}
	a.send(driverNode, kindWoken, wokenMsg{Server: m.Server}, a.pcfg.ReplySize)
}

// onMigrate is the source side of a live migration: ship the VM's identity
// to the destination shard, RAM bytes declared in the frame size. The local
// copy keeps running until the cutover order arrives — which is what makes
// a TRANSFER dropped by -impair recoverable.
func (a *agent) onMigrate(m migrateMsg) {
	now := vt(m.NowNS)
	a.integrate(now)
	if _, ok := a.dcen.HostOf(m.VMID); !ok {
		// Departed or already moved: nothing to transfer; tell the driver.
		a.send(driverNode, kindMigrated, migratedMsg{VMID: m.VMID, Server: m.DestServer}, a.pcfg.ReplySize)
		return
	}
	a.send(m.DestNode, kindTransfer,
		transferMsg{VMID: m.VMID, DestServer: m.DestServer, High: m.High, NowNS: m.NowNS},
		a.pcfg.TransferBytes)
}

// onTransfer is the destination side: land the VM on the chosen server
// (defensively waking it if the driver's wake was somehow lost) and ack the
// driver. When the source server lives in this same shard the VM is still
// present locally — that is an intra-shard move, handled by dc.Migrate, and
// the later cutover (scoped to the source server) leaves it alone.
// Duplicated transfers (-impair dup) re-ack without re-placing.
func (a *agent) onTransfer(m transferMsg) {
	now := vt(m.NowNS)
	a.integrate(now)
	s := a.server(m.DestServer)
	activated := false
	if host, ok := a.dcen.HostOf(m.VMID); !ok || host != s {
		if s.State() == dc.Hibernated {
			if err := a.dcen.Activate(s, now); err != nil {
				panic(fmt.Sprintf("node %d: transfer wake of server %d: %v", a.node, m.DestServer, err))
			}
			a.counters.Activations++
			activated = true
		}
		if ok {
			// Intra-shard migration: source and destination share this dc.
			if err := a.dcen.Migrate(m.VMID, s); err != nil {
				panic(fmt.Sprintf("node %d: intra-shard migration of VM %d to %d: %v",
					a.node, m.VMID, m.DestServer, err))
			}
			a.counters.MigrationsIn++
			a.counters.MigrationsOut++
		} else {
			vm := a.vmByID[m.VMID]
			if vm == nil {
				panic(fmt.Sprintf("node %d: transfer of unknown VM %d", a.node, m.VMID))
			}
			if err := a.dcen.Place(vm, s); err != nil {
				panic(fmt.Sprintf("node %d: migrating VM %d to server %d: %v", a.node, m.VMID, m.DestServer, err))
			}
			a.counters.MigrationsIn++
		}
	}
	a.send(driverNode, kindMigrated,
		migratedMsg{VMID: m.VMID, Server: m.DestServer, OK: true, Activated: activated}, a.pcfg.ReplySize)
}

// onCutover drops the source copy of a migrated VM and acks via removed:
// the driver holds the barrier until the copy is gone, so no later exchange
// can observe the VM in two shards. The removal is scoped to the migration's
// source server: after an intra-shard move the VM is already on its
// destination in this same dc and must stay there.
func (a *agent) onCutover(m cutoverMsg) {
	now := vt(m.NowNS)
	a.integrate(now)
	if host, ok := a.dcen.HostOf(m.VMID); ok && host.ID+a.span.Lo == m.SrcServer {
		if _, err := a.dcen.Remove(m.VMID); err != nil {
			panic(fmt.Sprintf("node %d: cutover of VM %d: %v", a.node, m.VMID, err))
		}
		a.counters.MigrationsOut++
	}
	a.send(driverNode, kindRemoved, removedMsg{VMID: m.VMID}, a.pcfg.ReplySize)
}

// onUtilQuery reports the least-utilized local active server (ties keep the
// lowest ID, matching the netsim manager's scan order).
func (a *agent) onUtilQuery(m utilQueryMsg) {
	now := vt(m.NowNS)
	a.integrate(now)
	out := utilBestMsg{Node: a.node}
	for i, s := range a.dcen.Servers {
		if s.State() != dc.Active {
			continue
		}
		if u := s.UtilizationAt(now); !out.Has || u < out.U {
			out = utilBestMsg{Node: a.node, Has: true, Server: a.span.Lo + i, U: u}
		}
	}
	a.send(driverNode, kindUtilBest, out, a.pcfg.ReplySize)
}

// onDone closes the energy account at the horizon, checks the shard's
// invariants and reports its totals. The transport counters are read before
// the summary send, so the reported figures are deterministic.
func (a *agent) onDone(m doneMsg) {
	a.integrate(vt(m.HorizonNS))
	if err := a.dcen.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("node %d: shard left inconsistent: %v", a.node, err))
	}
	sent, bytes := a.stats()
	a.final = summaryMsg{
		Node:          a.node,
		Placements:    a.counters.Placements,
		Removals:      a.counters.Removals,
		MigrationsIn:  a.counters.MigrationsIn,
		MigrationsOut: a.counters.MigrationsOut,
		Hibernates:    a.counters.Hibernates,
		Activations:   a.counters.Activations,
		FinalActive:   int64(a.dcen.ActiveCount()),
		EnergyKWh:     a.joules / 3.6e6,
		MsgsSent:      int64(sent),
		BytesSent:     bytes,
	}
	a.send(driverNode, kindSummary, a.final, a.pcfg.ReplySize)
}

package node

import (
	"time"

	"repro/internal/node/tcptransport"
)

// The ecod wire protocol. Two disjoint kind families share the mesh:
//
//	driver -> agents   invite, assign, remove, scan, wake, migrate, cutover, done
//	agent  -> agent    transfer (the live migration, source shard to dest shard)
//	agents -> driver   reply, assigned, removed, scandone, woken, migrated, summary, utilbest
//	driver -> agents   utilquery (saturation fallback only)
//
// Every request/ack pair is a barrier: the driver never advances virtual
// time (or sends the next request) while an ack is outstanding, which is
// what makes a run over real sockets bit-reproducible — at any instant at
// most one exchange is in flight, so TCP delivery order cannot reorder
// decisions. All decision-relevant time is the virtual NowNS stamped on the
// message; nothing reads a host clock.
//
// Sizes: control messages reuse the protocol.Config sizes; TRANSFER
// declares the VM's RAM bytes as its logical size (counted by Stats,
// not shipped) exactly like the netsim experiment.
const (
	kindInvite    = "invite"
	kindReply     = "reply"
	kindAssign    = "assign"
	kindAssigned  = "assigned"
	kindRemove    = "remove"
	kindRemoved   = "removed"
	kindScan      = "scan"
	kindScandone  = "scandone"
	kindWake      = "wake"
	kindWoken     = "woken"
	kindMigrate   = "migrate"
	kindTransfer  = "transfer"
	kindCutover   = "cutover"
	kindMigrated  = "migrated"
	kindUtilQuery = "utilquery"
	kindUtilBest  = "utilbest"
	kindDone      = "done"
	kindSummary   = "summary"
)

// TransferImpaired reports whether kind is subject to -impair drop/dup.
// Only the live-migration data plane is lossy; the control barriers play
// the sequencing role the simulation engine plays in netsim runs, so
// impairing them would model a broken harness, not a lossy fabric.
func TransferImpaired(kind string) bool { return kind == kindTransfer }

type inviteMsg struct {
	Round   int
	Demand  float64
	Ta      float64
	Exclude int // global server ID excluded from the round, -1 for none
	NowNS   int64
}

func (m inviteMsg) AppendWire(b []byte) []byte {
	b = tcptransport.AppendU32(b, uint32(int32(m.Round)))
	b = tcptransport.AppendF64(b, m.Demand)
	b = tcptransport.AppendF64(b, m.Ta)
	b = tcptransport.AppendU32(b, uint32(int32(m.Exclude)))
	b = tcptransport.AppendI64(b, m.NowNS)
	return b
}

func decodeInvite(r *tcptransport.Reader) (any, error) {
	m := inviteMsg{
		Round: int(int32(r.U32())), Demand: r.F64(), Ta: r.F64(),
		Exclude: int(int32(r.U32())), NowNS: r.I64(),
	}
	return m, r.Err()
}

// replyMsg aggregates one node's accepting servers for a round — the shard
// analog of netsim's per-server ACCEPT/REJECT replies.
type replyMsg struct {
	Round   int
	Node    int
	Accepts []int32 // global server IDs, ascending
}

func (m replyMsg) AppendWire(b []byte) []byte {
	b = tcptransport.AppendU32(b, uint32(int32(m.Round)))
	b = tcptransport.AppendU32(b, uint32(int32(m.Node)))
	b = tcptransport.AppendU32(b, uint32(len(m.Accepts)))
	for _, id := range m.Accepts {
		b = tcptransport.AppendU32(b, uint32(id))
	}
	return b
}

func decodeReply(r *tcptransport.Reader) (any, error) {
	m := replyMsg{Round: int(int32(r.U32())), Node: int(int32(r.U32()))}
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > r.Len()/4 {
		n = r.Len()/4 + 1 // forces the shortfall error below instead of a huge alloc
	}
	m.Accepts = make([]int32, 0, n)
	for i := 0; i < n; i++ {
		m.Accepts = append(m.Accepts, int32(r.U32()))
	}
	return m, r.Err()
}

type assignMsg struct {
	VMID   int
	Server int // global server ID, chosen by the driver
	Wake   bool
	NowNS  int64
}

func (m assignMsg) AppendWire(b []byte) []byte {
	b = tcptransport.AppendU32(b, uint32(int32(m.VMID)))
	b = tcptransport.AppendU32(b, uint32(int32(m.Server)))
	var w uint8
	if m.Wake {
		w = 1
	}
	b = tcptransport.AppendU8(b, w)
	b = tcptransport.AppendI64(b, m.NowNS)
	return b
}

func decodeAssign(r *tcptransport.Reader) (any, error) {
	m := assignMsg{VMID: int(int32(r.U32())), Server: int(int32(r.U32()))}
	m.Wake = r.U8() != 0
	m.NowNS = r.I64()
	return m, r.Err()
}

type assignedMsg struct {
	VMID      int
	Server    int
	Activated bool // the assign woke the server
}

func (m assignedMsg) AppendWire(b []byte) []byte {
	b = tcptransport.AppendU32(b, uint32(int32(m.VMID)))
	b = tcptransport.AppendU32(b, uint32(int32(m.Server)))
	var a uint8
	if m.Activated {
		a = 1
	}
	return tcptransport.AppendU8(b, a)
}

func decodeAssigned(r *tcptransport.Reader) (any, error) {
	m := assignedMsg{VMID: int(int32(r.U32())), Server: int(int32(r.U32()))}
	m.Activated = r.U8() != 0
	return m, r.Err()
}

type removeMsg struct {
	VMID  int
	NowNS int64
}

func (m removeMsg) AppendWire(b []byte) []byte {
	b = tcptransport.AppendU32(b, uint32(int32(m.VMID)))
	return tcptransport.AppendI64(b, m.NowNS)
}

func decodeRemove(r *tcptransport.Reader) (any, error) {
	m := removeMsg{VMID: int(int32(r.U32())), NowNS: r.I64()}
	return m, r.Err()
}

type removedMsg struct {
	VMID int
}

func (m removedMsg) AppendWire(b []byte) []byte {
	return tcptransport.AppendU32(b, uint32(int32(m.VMID)))
}

func decodeRemoved(r *tcptransport.Reader) (any, error) {
	m := removedMsg{VMID: int(int32(r.U32()))}
	return m, r.Err()
}

type scanMsg struct {
	NowNS int64
}

func (m scanMsg) AppendWire(b []byte) []byte { return tcptransport.AppendI64(b, m.NowNS) }

func decodeScan(r *tcptransport.Reader) (any, error) {
	m := scanMsg{NowNS: r.I64()}
	return m, r.Err()
}

// migReqEntry is one server's migration request out of a scan tick.
type migReqEntry struct {
	Server int32
	VMID   int32
	High   bool
	U      float64
}

// scandoneMsg is one node's scan outcome: servers it hibernated (drained
// empty past the grace period) and the migration requests its servers drew.
type scandoneMsg struct {
	Node       int
	Hibernated []int32
	MigReqs    []migReqEntry
}

func (m scandoneMsg) AppendWire(b []byte) []byte {
	b = tcptransport.AppendU32(b, uint32(int32(m.Node)))
	b = tcptransport.AppendU32(b, uint32(len(m.Hibernated)))
	for _, id := range m.Hibernated {
		b = tcptransport.AppendU32(b, uint32(id))
	}
	b = tcptransport.AppendU32(b, uint32(len(m.MigReqs)))
	for _, mr := range m.MigReqs {
		b = tcptransport.AppendU32(b, uint32(mr.Server))
		b = tcptransport.AppendU32(b, uint32(mr.VMID))
		var h uint8
		if mr.High {
			h = 1
		}
		b = tcptransport.AppendU8(b, h)
		b = tcptransport.AppendF64(b, mr.U)
	}
	return b
}

func decodeScandone(r *tcptransport.Reader) (any, error) {
	m := scandoneMsg{Node: int(int32(r.U32()))}
	nh := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nh > r.Len()/4 {
		nh = r.Len()/4 + 1
	}
	for i := 0; i < nh; i++ {
		m.Hibernated = append(m.Hibernated, int32(r.U32()))
	}
	nm := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nm > r.Len()/17 {
		nm = r.Len()/17 + 1
	}
	for i := 0; i < nm; i++ {
		m.MigReqs = append(m.MigReqs, migReqEntry{
			Server: int32(r.U32()), VMID: int32(r.U32()),
			High: r.U8() != 0, U: r.F64(),
		})
	}
	return m, r.Err()
}

type wakeMsg struct {
	Server int
	NowNS  int64
}

func (m wakeMsg) AppendWire(b []byte) []byte {
	b = tcptransport.AppendU32(b, uint32(int32(m.Server)))
	return tcptransport.AppendI64(b, m.NowNS)
}

func decodeWake(r *tcptransport.Reader) (any, error) {
	m := wakeMsg{Server: int(int32(r.U32())), NowNS: r.I64()}
	return m, r.Err()
}

type wokenMsg struct {
	Server int
}

func (m wokenMsg) AppendWire(b []byte) []byte {
	return tcptransport.AppendU32(b, uint32(int32(m.Server)))
}

func decodeWoken(r *tcptransport.Reader) (any, error) {
	m := wokenMsg{Server: int(int32(r.U32()))}
	return m, r.Err()
}

// migrateMsg orders the source shard to start a live migration.
type migrateMsg struct {
	VMID       int
	DestNode   int
	DestServer int
	High       bool
	NowNS      int64
}

func (m migrateMsg) AppendWire(b []byte) []byte {
	b = tcptransport.AppendU32(b, uint32(int32(m.VMID)))
	b = tcptransport.AppendU32(b, uint32(int32(m.DestNode)))
	b = tcptransport.AppendU32(b, uint32(int32(m.DestServer)))
	var h uint8
	if m.High {
		h = 1
	}
	b = tcptransport.AppendU8(b, h)
	return tcptransport.AppendI64(b, m.NowNS)
}

func decodeMigrate(r *tcptransport.Reader) (any, error) {
	m := migrateMsg{VMID: int(int32(r.U32())), DestNode: int(int32(r.U32())), DestServer: int(int32(r.U32()))}
	m.High = r.U8() != 0
	m.NowNS = r.I64()
	return m, r.Err()
}

// transferMsg is the live migration on the wire, shard to shard. The VM's
// RAM is declared in the frame's Size, not shipped: every node regenerates
// the workload from the shared seed, so the VM's identity suffices.
type transferMsg struct {
	VMID       int
	DestServer int
	High       bool
	NowNS      int64
}

func (m transferMsg) AppendWire(b []byte) []byte {
	b = tcptransport.AppendU32(b, uint32(int32(m.VMID)))
	b = tcptransport.AppendU32(b, uint32(int32(m.DestServer)))
	var h uint8
	if m.High {
		h = 1
	}
	b = tcptransport.AppendU8(b, h)
	return tcptransport.AppendI64(b, m.NowNS)
}

func decodeTransfer(r *tcptransport.Reader) (any, error) {
	m := transferMsg{VMID: int(int32(r.U32())), DestServer: int(int32(r.U32()))}
	m.High = r.U8() != 0
	m.NowNS = r.I64()
	return m, r.Err()
}

// cutoverMsg tells the source shard the destination runs the VM: drop the
// copy still on SrcServer. Until cutover the VM keeps running at the source
// (the paper: live migrations are asynchronous), which is also what makes a
// dropped TRANSFER recoverable — the driver just never sends the cutover.
// SrcServer scopes the removal: an intra-shard migration already moved the
// VM off the source when the transfer landed, and the cutover must not
// touch the destination copy.
type cutoverMsg struct {
	VMID      int
	SrcServer int
	NowNS     int64
}

func (m cutoverMsg) AppendWire(b []byte) []byte {
	b = tcptransport.AppendU32(b, uint32(int32(m.VMID)))
	b = tcptransport.AppendU32(b, uint32(int32(m.SrcServer)))
	return tcptransport.AppendI64(b, m.NowNS)
}

func decodeCutover(r *tcptransport.Reader) (any, error) {
	m := cutoverMsg{VMID: int(int32(r.U32())), SrcServer: int(int32(r.U32())), NowNS: r.I64()}
	return m, r.Err()
}

// migratedMsg acks a completed (or moot) migration to the driver.
type migratedMsg struct {
	VMID      int
	Server    int // destination global server ID
	OK        bool
	Activated bool // defensive cutover woke the destination
}

func (m migratedMsg) AppendWire(b []byte) []byte {
	b = tcptransport.AppendU32(b, uint32(int32(m.VMID)))
	b = tcptransport.AppendU32(b, uint32(int32(m.Server)))
	var f uint8
	if m.OK {
		f |= 1
	}
	if m.Activated {
		f |= 2
	}
	return tcptransport.AppendU8(b, f)
}

func decodeMigrated(r *tcptransport.Reader) (any, error) {
	m := migratedMsg{VMID: int(int32(r.U32())), Server: int(int32(r.U32()))}
	f := r.U8()
	m.OK = f&1 != 0
	m.Activated = f&2 != 0
	return m, r.Err()
}

type utilQueryMsg struct {
	NowNS int64
}

func (m utilQueryMsg) AppendWire(b []byte) []byte { return tcptransport.AppendI64(b, m.NowNS) }

func decodeUtilQuery(r *tcptransport.Reader) (any, error) {
	m := utilQueryMsg{NowNS: r.I64()}
	return m, r.Err()
}

// utilBestMsg reports a node's least-utilized active server (saturation
// fallback: everything is full, degrade onto the least-loaded machine).
type utilBestMsg struct {
	Node   int
	Has    bool
	Server int
	U      float64
}

func (m utilBestMsg) AppendWire(b []byte) []byte {
	b = tcptransport.AppendU32(b, uint32(int32(m.Node)))
	var h uint8
	if m.Has {
		h = 1
	}
	b = tcptransport.AppendU8(b, h)
	b = tcptransport.AppendU32(b, uint32(int32(m.Server)))
	return tcptransport.AppendF64(b, m.U)
}

func decodeUtilBest(r *tcptransport.Reader) (any, error) {
	m := utilBestMsg{Node: int(int32(r.U32()))}
	m.Has = r.U8() != 0
	m.Server = int(int32(r.U32()))
	m.U = r.F64()
	return m, r.Err()
}

type doneMsg struct {
	HorizonNS int64
}

func (m doneMsg) AppendWire(b []byte) []byte { return tcptransport.AppendI64(b, m.HorizonNS) }

func decodeDone(r *tcptransport.Reader) (any, error) {
	m := doneMsg{HorizonNS: r.I64()}
	return m, r.Err()
}

// summaryMsg is one node's run totals, merged by the driver into the
// cluster summary figure.
type summaryMsg struct {
	Node          int
	Placements    int64
	Removals      int64
	MigrationsIn  int64
	MigrationsOut int64
	Hibernates    int64
	Activations   int64
	FinalActive   int64
	EnergyKWh     float64
	MsgsSent      int64
	BytesSent     int64
}

func (m summaryMsg) AppendWire(b []byte) []byte {
	b = tcptransport.AppendU32(b, uint32(int32(m.Node)))
	b = tcptransport.AppendI64(b, m.Placements)
	b = tcptransport.AppendI64(b, m.Removals)
	b = tcptransport.AppendI64(b, m.MigrationsIn)
	b = tcptransport.AppendI64(b, m.MigrationsOut)
	b = tcptransport.AppendI64(b, m.Hibernates)
	b = tcptransport.AppendI64(b, m.Activations)
	b = tcptransport.AppendI64(b, m.FinalActive)
	b = tcptransport.AppendF64(b, m.EnergyKWh)
	b = tcptransport.AppendI64(b, m.MsgsSent)
	b = tcptransport.AppendI64(b, m.BytesSent)
	return b
}

func decodeSummary(r *tcptransport.Reader) (any, error) {
	m := summaryMsg{
		Node:       int(int32(r.U32())),
		Placements: r.I64(), Removals: r.I64(),
		MigrationsIn: r.I64(), MigrationsOut: r.I64(),
		Hibernates: r.I64(), Activations: r.I64(),
		FinalActive: r.I64(), EnergyKWh: r.F64(),
		MsgsSent: r.I64(), BytesSent: r.I64(),
	}
	return m, r.Err()
}

// BuildCodec registers every ecod message kind.
func BuildCodec() *tcptransport.Codec {
	c := tcptransport.NewCodec()
	c.Register(kindInvite, decodeInvite)
	c.Register(kindReply, decodeReply)
	c.Register(kindAssign, decodeAssign)
	c.Register(kindAssigned, decodeAssigned)
	c.Register(kindRemove, decodeRemove)
	c.Register(kindRemoved, decodeRemoved)
	c.Register(kindScan, decodeScan)
	c.Register(kindScandone, decodeScandone)
	c.Register(kindWake, decodeWake)
	c.Register(kindWoken, decodeWoken)
	c.Register(kindMigrate, decodeMigrate)
	c.Register(kindTransfer, decodeTransfer)
	c.Register(kindCutover, decodeCutover)
	c.Register(kindMigrated, decodeMigrated)
	c.Register(kindUtilQuery, decodeUtilQuery)
	c.Register(kindUtilBest, decodeUtilBest)
	c.Register(kindDone, decodeDone)
	c.Register(kindSummary, decodeSummary)
	return c
}

// vt converts a wire timestamp back to virtual time.
func vt(ns int64) time.Duration { return time.Duration(ns) }

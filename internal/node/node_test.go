package node

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/protocol"
)

// testConfig is a 3-node, 16-server cluster running a short protocol day,
// with listeners pre-bound so the shared config (and so the handshake hash)
// can name concrete ports before any node starts.
func testConfig(t *testing.T, seed uint64) (*ClusterConfig, []net.Listener) {
	t.Helper()
	spans := []Span{{0, 6}, {6, 11}, {11, 16}}
	cfg := DefaultClusterConfig()
	cfg.Seed = seed
	cfg.Servers = 16
	cfg.Horizon = 2 * time.Hour
	cfg.InitialVMs = 60
	cfg.ArrivalPerHour = 60
	cfg.MeanLifetime = 45 * time.Minute
	listeners := make([]net.Listener, len(spans))
	for i, span := range spans {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		t.Cleanup(func() { ln.Close() })
		cfg.Nodes = append(cfg.Nodes, NodeSpec{ID: i, Addr: ln.Addr().String(), Span: span})
	}
	return &cfg, listeners
}

// runCluster runs every node of cfg as an in-process goroutine (the CI
// smoke script runs the same topology as separate ecod processes) and
// returns the merged figure plus each node's summary.
func runCluster(t *testing.T, cfg *ClusterConfig, listeners []net.Listener) (*experiments.Figure, []summaryMsg) {
	t.Helper()
	nodes := make([]*Node, len(cfg.Nodes))
	for i := range nodes {
		n, err := New(cfg, i, Options{Listener: listeners[i], ConnectTimeout: 10 * time.Second})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = n
	}
	var (
		wg     sync.WaitGroup
		merged *experiments.Figure
		errs   = make([]error, len(nodes))
	)
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			fig, err := n.Run("")
			errs[i] = err
			if i == driverNode {
				merged = fig
			}
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d run: %v", i, err)
		}
	}
	if merged == nil {
		t.Fatal("driver node produced no merged figure")
	}
	sums := make([]summaryMsg, len(nodes))
	for i, n := range nodes {
		sums[i] = n.agent.final
	}
	return merged, sums
}

func TestClusterMatchesNetsim(t *testing.T) {
	cfg, listeners := testConfig(t, 7)
	// No t=0 burst: the netsim engine decides every simultaneous arrival
	// before the first wake event lands, while ecod's barriers complete each
	// placement inside its arrival — with a simultaneous burst the two
	// systems legitimately pack the fleet differently (see DESIGN.md).
	// Distinct Poisson arrival times sequence both systems identically.
	cfg.InitialVMs = 0
	cfg.ArrivalPerHour = 150
	merged, sums := runCluster(t, cfg, listeners)

	// Shard totals must be globally consistent: placements minus removals
	// and net migrations equals what is still running, and the merged
	// final_active is the sum of the shards'.
	var finalActive int64
	for _, s := range sums {
		if s.MigrationsIn < 0 || s.Placements < 0 {
			t.Fatalf("negative counters in %+v", s)
		}
		finalActive += s.FinalActive
	}
	if got := merged.Column("final_active")[0]; got != float64(finalActive) {
		t.Fatalf("merged final_active %v, shard sum %d", got, finalActive)
	}

	// The same day on the netsim fabric, with zero wire latency: ecod
	// barriers complete instantaneously in virtual time, so the fair netsim
	// baseline is a zero-latency fabric (with the default 50 us fabric, the
	// t=0 arrival burst wakes a fresh server per VM before any wake lands —
	// a real dynamic ecod deliberately does not have; see DESIGN.md). The
	// remaining divergences (aggregated replies, accept-pick order, barrier
	// wake bookkeeping) justify a tolerance band, not byte equality:
	// placements are exact (every arrival lands exactly once in both), the
	// self-organizing outcomes must agree within 2x.
	churn := cfg.Churn()
	pd, err := experiments.ProtocolDay(experiments.ProtocolDayOptions{
		RunConfig: experiments.RunConfig{
			Servers: cfg.Servers, NumVMs: cfg.InitialVMs, Horizon: cfg.Horizon, Seed: cfg.Seed,
		},
		Churn: churn,
		Proto: func() protocol.Config {
			p := cfg.Proto()
			p.Latency = netsim.LatencyModel{}
			return p
		}(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged.Column("placements")[0], pd.Column("placements")[0]; got != want {
		t.Errorf("placements: ecod %v, netsim %v", got, want)
	}
	within2x := func(name string) {
		t.Helper()
		got, want := merged.Column(name)[0], pd.Column(name)[0]
		if got < want/2-1 || got > want*2+1 {
			t.Errorf("%s: ecod %v vs netsim %v outside the documented 2x band", name, got, want)
		}
	}
	within2x("wakes")
	within2x("final_active")
	migs := func(f *experiments.Figure) float64 {
		return f.Column("migrations_low")[0] + f.Column("migrations_high")[0]
	}
	if got, want := migs(merged), migs(pd); got < want/2-1 || got > want*2+1 {
		t.Errorf("migrations: ecod %v vs netsim %v outside the documented 2x band", got, want)
	}

	var energy float64
	for _, s := range sums {
		energy += s.EnergyKWh
	}
	if energy <= 0 {
		t.Fatalf("cluster consumed no energy (%v kWh)", energy)
	}
}

func TestSameSeedRunsIdentical(t *testing.T) {
	row := func() string {
		cfg, listeners := testConfig(t, 3)
		merged, sums := runCluster(t, cfg, listeners)
		var b strings.Builder
		fmt.Fprintf(&b, "%v\n", merged.Rows)
		for _, s := range sums {
			// Transport byte counts include per-run handshake frames only if
			// a link flapped; everything else is protocol traffic. Compare
			// the full shard summary including messages and bytes: the
			// barrier discipline makes even those reproducible.
			fmt.Fprintf(&b, "%+v\n", s)
		}
		return b.String()
	}
	first, second := row(), row()
	if first != second {
		t.Fatalf("same-seed runs diverged:\n--- run 1\n%s--- run 2\n%s", first, second)
	}
}

func TestImpairedTransfersRecover(t *testing.T) {
	cfg, listeners := testConfig(t, 5)
	cfg.Horizon = 90 * time.Minute
	cfg.InitialVMs = 40
	cfg.ArrivalPerHour = 40
	cfg.Drop = 0.5
	cfg.Dup = 0.25
	merged, sums := runCluster(t, cfg, listeners)
	// Invariants held (agents panic otherwise) and the books balance even
	// with half the transfers dropped: a dropped transfer leaves the VM at
	// its source, so shard placements - removals - net migration flow must
	// still equal the running population.
	var running int64
	for _, s := range sums {
		running += s.Placements + s.MigrationsIn - s.Removals - s.MigrationsOut
	}
	placed := merged.Column("placements")[0]
	if running < 0 || int64(placed) < running {
		t.Fatalf("impaired run books do not balance: running %d, placements %v", running, placed)
	}
}

func TestConfigParseValidateHash(t *testing.T) {
	text := `
# comment
seed = 42
servers = 12
horizon = 1h30m
initial_vms = 20
arrival_per_hour = 10
node = 0 127.0.0.1:7101 0:4
node = 1 127.0.0.1:7102 4:8
node = 2 127.0.0.1:7103 8:12
`
	cfg, err := ParseConfig(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 || cfg.Servers != 12 || cfg.Horizon != 90*time.Minute {
		t.Fatalf("parsed %+v", cfg)
	}
	if cfg.Owner(5) != 1 || cfg.Owner(11) != 2 {
		t.Fatalf("owner mapping wrong: %d %d", cfg.Owner(5), cfg.Owner(11))
	}
	// The hash is over the canonical rendering: shuffled node lines and
	// cosmetic formatting must not change it.
	shuffled := strings.NewReader(strings.Replace(text,
		"node = 0 127.0.0.1:7101 0:4\nnode = 1 127.0.0.1:7102 4:8\n",
		"node = 1 127.0.0.1:7102 4:8\nnode = 0 127.0.0.1:7101 0:4\n", 1))
	cfg2, err := ParseConfig(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hash() != cfg2.Hash() {
		t.Fatal("canonical hash depends on node declaration order")
	}
	other := *cfg
	other.Seed = 43
	if cfg.Hash() == other.Hash() {
		t.Fatal("hash ignores the seed")
	}

	for _, bad := range []string{
		"bogus = 1\nservers = 4\nnode = 0 a 0:4\n",      // unknown key
		"servers = 4\nnode = 0 a 0:3\n",                 // span does not cover fleet
		"servers = 4\nnode = 0 a 0:2\nnode = 1 b 3:4\n", // gap
		"servers = 4\nnode = 1 a 0:4\n",                 // IDs not contiguous from 0
		"servers = 4\ndrop = 1.5\nnode = 0 a 0:4\n",     // invalid impairment
		"servers = 4\nhorizon = -1h\nnode = 0 a 0:4\n",
	} {
		if _, err := ParseConfig(strings.NewReader(bad)); err == nil {
			t.Errorf("config %q validated", bad)
		}
	}
}

package tcptransport

import (
	"fmt"
	"net"
	//ecolint:allow goroutine — the TCP transport is quarantined I/O infrastructure (boundary rule); it owns sockets and goroutines so the deterministic core never has to
	"sync"
	//ecolint:allow wallclock — socket deadlines and reconnect backoff are host-time by definition; no simulation decision reads them
	"time"

	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Transport carries protocol messages between ecod processes over a full
// mesh of TCP connections. It implements protocol.Transport with the node
// index as the NodeID: Send(msg) routes msg.To to the process hosting that
// node, loopback when it is this process.
//
// Mesh shape: every pair of nodes shares one connection; the lower-indexed
// node accepts, the higher-indexed node dials (and redials with 100 ms → 2 s
// exponential backoff after any failure, so a restarted peer is rejoined
// without a coordinator). The handshake is a hello frame in each direction
// carrying the sender's node index, the cluster config hash and the run
// seed; a mismatch on any of the three means the peer is running a
// different experiment, and the connection is refused — this is the whole
// join protocol.
//
// Delivery: one dispatch goroutine drains every decoded frame and invokes
// the registered handlers serially, satisfying the Transport contract that
// handlers never run concurrently. A frame addressed to an unregistered
// node is dropped (counted in Rejected) rather than panicking: unlike
// netsim, where a bad address is a local programming error, here it is
// adversarial input from a peer.
//
// Impairments: the -impair flag reuses netsim.Impairments semantics at this
// codec boundary. Decisions are send-side, per destination link, drawn from
// an rng stream split as impair/from=<self>/to=<peer> off the shared run
// seed — so a given link's drop/duplicate sequence depends only on the
// frames sent over it, in order, and two same-seed runs impair identically
// as long as each link's send order is reproducible (the protocol driver's
// barrier structure makes it so). The draw happens under the link's write
// lock, drop first, then duplicate for survivors — the exact
// netsim.Network.deliver sequence, via the same Impairments.Drop/Dup
// methods, so zero-probability components consume no draws here either.
// Only kinds the Impaired predicate selects are subject; handshake and
// barrier bookkeeping frames always get through, mirroring netsim where
// only protocol messages traverse the lossy fabric. Loopback delivery is
// never impaired.
type Transport struct {
	cfg   Config
	codec *Codec
	ln    net.Listener
	links map[int]*link

	inbox chan netsim.Message

	hmu      sync.Mutex
	handlers map[netsim.NodeID]netsim.Handler

	mu         sync.Mutex
	sent       int
	bytes      int64
	dropped    int
	duplicated int
	rejected   int
	upCount    int
	started    bool

	allUp     chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

var _ protocol.Transport = (*Transport)(nil)

// Config describes one process's place in the cluster.
type Config struct {
	// Self is this process's node index.
	Self int
	// Addrs maps every node index (including Self) to its TCP address.
	Addrs map[int]string
	// Listener optionally supplies a pre-bound listener for Self, letting
	// tests bind 127.0.0.1:0 and exchange the chosen ports before Start.
	Listener net.Listener
	// Codec decodes the application's message kinds. The transport works on
	// a private copy extended with its handshake kind.
	Codec *Codec
	// ConfigHash and Seed identify the run; peers must present the same
	// pair in their hello or the connection is refused.
	ConfigHash [32]byte
	Seed       uint64
	// Impair applies netsim.Impairments at the codec boundary to the kinds
	// selected by Impaired (nil means no kind is impaired).
	Impair   netsim.Impairments
	Impaired func(kind string) bool
	// ConnectTimeout bounds Start's wait for the full mesh (default 10 s).
	ConnectTimeout time.Duration
}

// link is one peer connection slot: the conn (nil while down), a cond to
// wake blocked senders when it changes, and the send-side impairment stream.
type link struct {
	peer   int
	addr   string
	dialer bool
	impSrc *rng.Source

	mu     sync.Mutex
	cond   *sync.Cond
	conn   net.Conn
	everUp bool
}

const (
	helloKind        = "ecod/hello"
	handshakeTimeout = 5 * time.Second
	backoffFloor     = 100 * time.Millisecond
	backoffCeil      = 2 * time.Second
)

// hello is the handshake payload: who is connecting, and proof it was built
// from the same cluster config and seed.
type hello struct {
	Node int
	Hash [32]byte
	Seed uint64
}

func (h hello) AppendWire(b []byte) []byte {
	b = AppendU32(b, uint32(int32(h.Node)))
	b = append(b, h.Hash[:]...)
	b = AppendU64(b, h.Seed)
	return b
}

func decodeHello(r *Reader) (any, error) {
	var h hello
	h.Node = int(int32(r.U32()))
	copy(h.Hash[:], r.Take(len(h.Hash)))
	h.Seed = r.U64()
	return h, r.Err()
}

// New builds the transport. It does not touch the network until Start.
func New(cfg Config) (*Transport, error) {
	if err := cfg.Impair.Validate(); err != nil {
		return nil, err
	}
	if cfg.Codec == nil {
		return nil, fmt.Errorf("tcptransport: nil codec")
	}
	if _, ok := cfg.Addrs[cfg.Self]; !ok && cfg.Listener == nil {
		return nil, fmt.Errorf("tcptransport: node %d has no address and no listener", cfg.Self)
	}
	codec := NewCodec()
	for kind, dec := range cfg.Codec.dec {
		codec.Register(kind, dec)
	}
	codec.Register(helloKind, decodeHello)
	t := &Transport{
		cfg:      cfg,
		codec:    codec,
		ln:       cfg.Listener,
		links:    make(map[int]*link),
		inbox:    make(chan netsim.Message, 1024),
		handlers: make(map[netsim.NodeID]netsim.Handler),
		allUp:    make(chan struct{}),
		done:     make(chan struct{}),
	}
	impBase := rng.New(cfg.Seed).Split("impair").SplitIndex("from", cfg.Self)
	for peer, addr := range cfg.Addrs {
		if peer == cfg.Self {
			continue
		}
		l := &link{
			peer:   peer,
			addr:   addr,
			dialer: peer > cfg.Self,
			impSrc: impBase.SplitIndex("to", peer),
		}
		l.cond = sync.NewCond(&l.mu)
		t.links[peer] = l
	}
	if len(t.links) == 0 {
		close(t.allUp)
	}
	return t, nil
}

// Register implements protocol.Transport. Handlers must be installed before
// Start; re-registering replaces.
func (t *Transport) Register(id netsim.NodeID, h netsim.Handler) {
	if h == nil {
		panic(fmt.Sprintf("tcptransport: nil handler for node %d", id))
	}
	t.hmu.Lock()
	t.handlers[id] = h
	t.hmu.Unlock()
}

// Start listens, dials every higher-indexed peer, and blocks until the full
// mesh has handshaken or ConnectTimeout elapses. On timeout the transport is
// closed and the error names the missing peers.
func (t *Transport) Start() error {
	t.mu.Lock()
	if t.started {
		t.mu.Unlock()
		return fmt.Errorf("tcptransport: already started")
	}
	t.started = true
	t.mu.Unlock()
	if t.ln == nil {
		ln, err := net.Listen("tcp", t.cfg.Addrs[t.cfg.Self])
		if err != nil {
			return fmt.Errorf("tcptransport: node %d listen: %w", t.cfg.Self, err)
		}
		t.ln = ln
	}
	t.spawn(t.acceptLoop)
	t.spawn(t.dispatch)
	for _, l := range t.links {
		if l.dialer {
			l := l
			t.spawn(func() { t.dialLoop(l) })
		}
	}
	timeout := t.cfg.ConnectTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	select {
	case <-t.allUp:
		return nil
	//ecolint:allow wallclock — mesh-formation timeout is an operational bound on real socket setup, not simulation time
	case <-time.After(timeout):
		missing := t.downPeers()
		t.Close()
		return fmt.Errorf("tcptransport: node %d: peers %v not connected after %v", t.cfg.Self, missing, timeout)
	case <-t.done:
		return fmt.Errorf("tcptransport: closed during start")
	}
}

// Addr returns the listen address (useful with a :0 Listener).
func (t *Transport) Addr() net.Addr {
	if t.ln == nil {
		return nil
	}
	return t.ln.Addr()
}

// spawn runs f on a tracked goroutine.
func (t *Transport) spawn(f func()) {
	t.wg.Add(1)
	//ecolint:allow goroutine — quarantined socket infrastructure; accept/dial/dispatch loops cannot share the caller's thread
	go func() {
		defer t.wg.Done()
		f()
	}()
}

// Close tears the mesh down and stops every goroutine. Safe to call twice;
// senders blocked on a down link return without delivering.
func (t *Transport) Close() {
	t.closeOnce.Do(func() {
		close(t.done)
		if t.ln != nil {
			t.ln.Close()
		}
		for _, l := range t.links {
			l.mu.Lock()
			if l.conn != nil {
				l.conn.Close()
				l.conn = nil
			}
			l.cond.Broadcast()
			l.mu.Unlock()
		}
	})
	t.wg.Wait()
}

// Send implements protocol.Transport.
func (t *Transport) Send(msg netsim.Message) {
	t.mu.Lock()
	t.sent++
	t.bytes += int64(msg.Size)
	t.mu.Unlock()
	t.transmit(msg)
}

// Broadcast implements protocol.Transport. TCP has no hardware broadcast:
// unlike netsim's single wire transmission, every destination costs one
// frame, and Stats counts it so.
func (t *Transport) Broadcast(from netsim.NodeID, tos []netsim.NodeID, kind string, payload any, size int) {
	for _, to := range tos {
		t.Send(netsim.Message{From: from, To: to, Kind: kind, Payload: payload, Size: size})
	}
}

// Stats implements protocol.Transport.
func (t *Transport) Stats() (sent int, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sent, t.bytes
}

// ImpairmentStats returns deliveries dropped and duplicated at this node's
// send side, plus inbound frames rejected for an unregistered destination.
func (t *Transport) ImpairmentStats() (dropped, duplicated, rejected int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped, t.duplicated, t.rejected
}

// transmit routes one message: loopback to the local inbox, or a frame on
// the peer's link with the impairment decision drawn under the write lock.
func (t *Transport) transmit(msg netsim.Message) {
	peer := int(msg.To)
	if peer == t.cfg.Self {
		select {
		case t.inbox <- msg:
		case <-t.done:
		}
		return
	}
	l, ok := t.links[peer]
	if !ok {
		panic(fmt.Sprintf("tcptransport: send to unknown node %d", peer))
	}
	frame, err := EncodeFrame(msg, t.codec)
	if err != nil {
		panic(err.Error()) // unregistered kind / bad payload: local programming error
	}
	copies := 1
	if t.cfg.Impaired != nil && t.cfg.Impaired(msg.Kind) && t.cfg.Impair.Enabled() {
		l.mu.Lock()
		if t.cfg.Impair.Drop(l.impSrc) {
			l.mu.Unlock()
			t.count(&t.dropped)
			return
		}
		if t.cfg.Impair.Dup(l.impSrc) {
			copies = 2
			t.count(&t.duplicated)
		}
		l.mu.Unlock()
	}
	for i := 0; i < copies; i++ {
		if !t.writeLink(l, frame) {
			return
		}
	}
}

func (t *Transport) count(c *int) {
	t.mu.Lock()
	*c++
	t.mu.Unlock()
}

// writeLink writes one frame, blocking while the link is down (the dial
// loop or accept loop will restore it). Returns false only when the
// transport is closing.
func (t *Transport) writeLink(l *link, frame []byte) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		for l.conn == nil {
			select {
			case <-t.done:
				return false
			default:
			}
			l.cond.Wait()
		}
		conn := l.conn
		if _, err := conn.Write(frame); err == nil {
			return true
		}
		// Poisoned connection: drop it and wait for the redial.
		conn.Close()
		if l.conn == conn {
			l.conn = nil
		}
	}
}

// install makes conn the link's live connection and reports mesh progress.
// Only a link's first-ever connection advances the mesh-up count, so a
// flapping peer cannot mask one that never joined.
func (t *Transport) install(l *link, conn net.Conn) {
	l.mu.Lock()
	if l.conn != nil {
		l.conn.Close()
	}
	first := !l.everUp
	l.everUp = true
	l.conn = conn
	l.cond.Broadcast()
	l.mu.Unlock()
	if !first {
		return
	}
	t.mu.Lock()
	t.upCount++
	if t.upCount == len(t.links) {
		close(t.allUp)
	}
	t.mu.Unlock()
}

// uninstall clears conn from the link if it is still current.
func (l *link) uninstall(conn net.Conn) {
	conn.Close()
	l.mu.Lock()
	if l.conn == conn {
		l.conn = nil
	}
	l.mu.Unlock()
}

// downPeers lists peers with no live connection, for Start's timeout error.
func (t *Transport) downPeers() []int {
	var down []int
	for peer, l := range t.links {
		l.mu.Lock()
		if l.conn == nil {
			down = append(down, peer)
		}
		l.mu.Unlock()
	}
	return down
}

// dialLoop owns one higher-indexed peer: dial, handshake, read until the
// connection dies, back off, repeat. Backoff doubles 100 ms → 2 s and
// resets after a successful handshake.
func (t *Transport) dialLoop(l *link) {
	backoff := backoffFloor
	for {
		select {
		case <-t.done:
			return
		default:
		}
		//ecolint:allow wallclock — dial timeout bounds a real socket connect
		conn, err := net.DialTimeout("tcp", l.addr, handshakeTimeout)
		if err == nil {
			err = t.handshake(conn, l.peer)
			if err != nil {
				conn.Close()
			}
		}
		if err != nil {
			select {
			case <-t.done:
				return
			//ecolint:allow wallclock — reconnect backoff paces retries against a real peer
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > backoffCeil {
				backoff = backoffCeil
			}
			continue
		}
		backoff = backoffFloor
		t.install(l, conn)
		t.readLoop(conn)
		l.uninstall(conn)
	}
}

// handshake (dialer side): send hello, read the peer's hello back, verify
// identity, config hash and seed.
func (t *Transport) handshake(conn net.Conn, wantPeer int) error {
	//ecolint:allow wallclock — handshake deadline on a real socket
	deadline := time.Now().Add(handshakeTimeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return err
	}
	if err := t.sendHello(conn); err != nil {
		return err
	}
	h, err := t.readHello(conn)
	if err != nil {
		return err
	}
	if h.Node != wantPeer {
		return fmt.Errorf("tcptransport: dialed node %d, got hello from node %d", wantPeer, h.Node)
	}
	return conn.SetDeadline(time.Time{})
}

// acceptLoop admits lower-indexed peers: read their hello, verify, reply.
func (t *Transport) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			// Transient accept error (or listener torn down mid-close).
			select {
			case <-t.done:
				return
			//ecolint:allow wallclock — pacing retries of a failed accept on a real listener
			case <-time.After(backoffFloor):
			}
			continue
		}
		c := conn
		t.spawn(func() { t.serve(c) })
	}
}

// serve runs the acceptor side of one connection to completion.
func (t *Transport) serve(conn net.Conn) {
	//ecolint:allow wallclock — handshake deadline on a real socket
	if err := conn.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		conn.Close()
		return
	}
	h, err := t.readHello(conn)
	if err != nil {
		conn.Close()
		return
	}
	l, ok := t.links[h.Node]
	if !ok || l.dialer {
		// Unknown peer, or one that should be accepting us: refuse.
		conn.Close()
		return
	}
	if err := t.sendHello(conn); err != nil {
		conn.Close()
		return
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return
	}
	t.install(l, conn)
	t.readLoop(conn)
	l.uninstall(conn)
}

func (t *Transport) sendHello(conn net.Conn) error {
	frame, err := EncodeFrame(netsim.Message{
		From: netsim.NodeID(t.cfg.Self), To: -1, Kind: helloKind,
		Payload: hello{Node: t.cfg.Self, Hash: t.cfg.ConfigHash, Seed: t.cfg.Seed},
	}, t.codec)
	if err != nil {
		return err
	}
	_, err = conn.Write(frame)
	return err
}

// readHello reads and verifies the peer's hello frame.
func (t *Transport) readHello(conn net.Conn) (hello, error) {
	msg, err := DecodeFrame(conn, t.codec)
	if err != nil {
		return hello{}, err
	}
	if msg.Kind != helloKind {
		return hello{}, fmt.Errorf("tcptransport: expected hello, got %q", msg.Kind)
	}
	h := msg.Payload.(hello)
	if h.Hash != t.cfg.ConfigHash {
		return hello{}, fmt.Errorf("tcptransport: node %d built from a different cluster config", h.Node)
	}
	if h.Seed != t.cfg.Seed {
		return hello{}, fmt.Errorf("tcptransport: node %d runs seed %d, this node runs %d", h.Node, h.Seed, t.cfg.Seed)
	}
	return h, nil
}

// readLoop decodes frames until the connection dies. Any codec error —
// malformed frame, oversize announcement, unknown kind — poisons the
// connection: it is closed and the mesh's reconnect machinery takes over.
// A bad peer costs us a connection, never a panic.
func (t *Transport) readLoop(conn net.Conn) {
	for {
		msg, err := DecodeFrame(conn, t.codec)
		if err != nil {
			return
		}
		if msg.Kind == helloKind {
			continue // late duplicate handshake; harmless
		}
		select {
		case t.inbox <- msg:
		case <-t.done:
			return
		}
	}
}

// dispatch is the single delivery goroutine: the serial-handler guarantee
// of the Transport contract lives here.
func (t *Transport) dispatch() {
	for {
		select {
		case <-t.done:
			return
		case msg := <-t.inbox:
			t.hmu.Lock()
			h := t.handlers[msg.To]
			t.hmu.Unlock()
			if h == nil {
				t.count(&t.rejected)
				continue
			}
			h(msg)
		}
	}
}

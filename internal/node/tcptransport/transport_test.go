package tcptransport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
)

// ping is the test payload flowing over the mesh.
type ping struct{ N uint64 }

func (p ping) AppendWire(b []byte) []byte { return AppendU64(b, p.N) }

func pingCodec() *Codec {
	c := NewCodec()
	c.Register("ping", func(r *Reader) (any, error) { return ping{N: r.U64()}, r.Err() })
	return c
}

// startMesh brings up an n-node loopback mesh with pre-bound :0 listeners
// and returns the transports, already started.
func startMesh(t *testing.T, n int, mutate func(i int, cfg *Config)) []*Transport {
	t.Helper()
	addrs := make(map[int]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	trs := make([]*Transport, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			Self:           i,
			Addrs:          addrs,
			Listener:       listeners[i],
			Codec:          pingCodec(),
			ConfigHash:     [32]byte{1, 2, 3},
			Seed:           99,
			ConnectTimeout: 5 * time.Second,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		t.Cleanup(tr.Close)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, tr := range trs {
		wg.Add(1)
		go func(i int, tr *Transport) { defer wg.Done(); errs[i] = tr.Start() }(i, tr)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d start: %v", i, err)
		}
	}
	return trs
}

func TestMeshDelivery(t *testing.T) {
	const n = 3
	type rec struct {
		from netsim.NodeID
		n    uint64
	}
	inboxes := make([]chan rec, n)
	trs := startMesh(t, n, nil)
	for i, tr := range trs {
		ch := make(chan rec, 64)
		inboxes[i] = ch
		tr.Register(netsim.NodeID(i), func(msg netsim.Message) {
			ch <- rec{from: msg.From, n: msg.Payload.(ping).N}
		})
	}

	// Every node sends one ping to every node, itself included (loopback).
	for i, tr := range trs {
		for j := 0; j < n; j++ {
			tr.Send(netsim.Message{
				From: netsim.NodeID(i), To: netsim.NodeID(j),
				Kind: "ping", Payload: ping{N: uint64(100*i + j)}, Size: 8,
			})
		}
	}
	for j := 0; j < n; j++ {
		got := map[netsim.NodeID]uint64{}
		for len(got) < n {
			select {
			case r := <-inboxes[j]:
				got[r.from] = r.n
			case <-time.After(5 * time.Second):
				t.Fatalf("node %d: timed out with %d/%d pings", j, len(got), n)
			}
		}
		for i := 0; i < n; i++ {
			if got[netsim.NodeID(i)] != uint64(100*i+j) {
				t.Fatalf("node %d: ping from %d = %d", j, i, got[netsim.NodeID(i)])
			}
		}
	}

	// Broadcast pays one frame per destination, and Stats says so.
	trs[0].Broadcast(0, []netsim.NodeID{1, 2}, "ping", ping{N: 7}, 8)
	for _, j := range []int{1, 2} {
		select {
		case r := <-inboxes[j]:
			if r.n != 7 {
				t.Fatalf("node %d: broadcast payload %d", j, r.n)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("node %d: broadcast not delivered", j)
		}
	}
	sent, bytes := trs[0].Stats()
	if sent != n+2 || bytes != int64(8*(n+2)) {
		t.Fatalf("node 0 stats = (%d, %d), want (%d, %d)", sent, bytes, n+2, 8*(n+2))
	}
}

func TestHandshakeRejectsForeignRun(t *testing.T) {
	// Two nodes that disagree on the seed must never form a mesh: the
	// acceptor refuses the hello, the dialer retries until its Start times
	// out. This is the coordinator-free join check.
	addrs := map[int]string{}
	var listeners [2]net.Listener
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	mk := func(self int, seed uint64) *Transport {
		tr, err := New(Config{
			Self: self, Addrs: addrs, Listener: listeners[self],
			Codec: pingCodec(), Seed: seed,
			ConnectTimeout: 700 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		return tr
	}
	a, b := mk(0, 1), mk(1, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, tr := range []*Transport{a, b} {
		wg.Add(1)
		go func(i int, tr *Transport) { defer wg.Done(); errs[i] = tr.Start() }(i, tr)
	}
	wg.Wait()
	if errs[0] == nil || errs[1] == nil {
		t.Fatalf("mismatched seeds formed a mesh: %v / %v", errs[0], errs[1])
	}
}

func TestImpairmentIsDeterministicPerLink(t *testing.T) {
	// Same seed, same per-link send sequence → identical drop/dup pattern,
	// run after run. The receiving side observes which sequence numbers
	// arrive and how often; two fresh meshes must agree exactly.
	run := func() (got []uint64, dropped, duplicated int) {
		var mu sync.Mutex
		done := make(chan struct{})
		const sends = 200
		trs := startMesh(t, 2, func(i int, cfg *Config) {
			cfg.Codec.Register("flush", func(r *Reader) (any, error) { return nil, nil })
			cfg.Impair = netsim.Impairments{DropProb: 0.2, DupProb: 0.1}
			cfg.Impaired = func(kind string) bool { return kind == "ping" }
		})
		trs[1].Register(1, func(msg netsim.Message) {
			// "flush" is not impaired and TCP preserves order, so its arrival
			// means every surviving ping is already delivered.
			if msg.Kind == "flush" {
				close(done)
				return
			}
			mu.Lock()
			got = append(got, msg.Payload.(ping).N)
			mu.Unlock()
		})
		for k := 0; k < sends; k++ {
			trs[0].Send(netsim.Message{From: 0, To: 1, Kind: "ping", Payload: ping{N: uint64(k)}, Size: 8})
		}
		trs[0].Send(netsim.Message{From: 0, To: 1, Kind: "flush"})
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("flush never arrived")
		}
		d, dup, _ := trs[0].ImpairmentStats()
		trs[0].Close()
		trs[1].Close()
		return got, d, dup
	}
	got1, d1, dup1 := run()
	got2, d2, dup2 := run()
	if d1 == 0 || dup1 == 0 {
		t.Fatalf("impairments never fired (dropped=%d duplicated=%d); test proves nothing", d1, dup1)
	}
	if d1 != d2 || dup1 != dup2 || fmt.Sprint(got1) != fmt.Sprint(got2) {
		t.Fatalf("same-seed impairment runs diverged:\nrun1 dropped=%d dup=%d %v\nrun2 dropped=%d dup=%d %v",
			d1, dup1, got1, d2, dup2, got2)
	}
}

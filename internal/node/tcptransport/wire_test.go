package tcptransport

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"repro/internal/netsim"
)

// testPayload exercises every primitive the helpers offer.
type testPayload struct {
	A uint64
	B int64
	C float64
	D string
	E []byte
}

func (p testPayload) AppendWire(b []byte) []byte {
	b = AppendU64(b, p.A)
	b = AppendI64(b, p.B)
	b = AppendF64(b, p.C)
	b = AppendString(b, p.D)
	b = AppendBytes(b, p.E)
	return b
}

func decodeTestPayload(r *Reader) (any, error) {
	p := testPayload{A: r.U64(), B: r.I64(), C: r.F64(), D: r.String(), E: r.Bytes()}
	return p, r.Err()
}

func testCodec() *Codec {
	c := NewCodec()
	c.Register("test", decodeTestPayload)
	c.Register("empty", func(r *Reader) (any, error) { return nil, nil })
	return c
}

func mustEncode(t *testing.T, msg netsim.Message) []byte {
	t.Helper()
	b, err := EncodeFrame(msg, testCodec())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b
}

func TestWireRoundTrip(t *testing.T) {
	c := testCodec()
	want := netsim.Message{
		From: 3, To: 7, Kind: "test", Size: 4096,
		Payload: testPayload{A: 1 << 60, B: -42, C: 2.5, D: "vm-1189", E: []byte{0, 1, 2}},
	}
	frame := mustEncode(t, want)
	got, err := DecodeFrame(bytes.NewReader(frame), c)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.From != want.From || got.To != want.To || got.Kind != want.Kind || got.Size != want.Size {
		t.Fatalf("envelope mismatch: got %+v want %+v", got, want)
	}
	gp := got.Payload.(testPayload)
	wp := want.Payload.(testPayload)
	if gp.A != wp.A || gp.B != wp.B || gp.C != wp.C || gp.D != wp.D || !bytes.Equal(gp.E, wp.E) {
		t.Fatalf("payload mismatch: got %+v want %+v", gp, wp)
	}

	// Two frames back to back decode in sequence; the reader then reports a
	// clean EOF, not an error.
	r := bytes.NewReader(append(append([]byte{}, frame...), frame...))
	for i := 0; i < 2; i++ {
		if _, err := DecodeFrame(r, c); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if _, err := DecodeFrame(r, c); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestWireNilPayload(t *testing.T) {
	c := testCodec()
	frame := mustEncode(t, netsim.Message{From: 1, To: 2, Kind: "empty"})
	got, err := DecodeFrame(bytes.NewReader(frame), c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload != nil {
		t.Fatalf("want nil payload, got %#v", got.Payload)
	}
}

func TestWireEncodeRejects(t *testing.T) {
	c := testCodec()
	if _, err := EncodeFrame(netsim.Message{Kind: "nope"}, c); err == nil {
		t.Fatal("unregistered kind must not encode")
	}
	if _, err := EncodeFrame(netsim.Message{Kind: "test", Payload: 42}, c); err == nil {
		t.Fatal("non-Marshaler payload must not encode")
	}
	huge := netsim.Message{Kind: "test", Payload: testPayload{E: make([]byte, MaxBody)}}
	if _, err := EncodeFrame(huge, c); err == nil || !strings.Contains(err.Error(), "MaxBody") {
		t.Fatalf("oversize body must not encode, got %v", err)
	}
}

// TestWireDecodeRejectsMalformed is the bad-peer battery: every corrupted
// frame must come back as an error — never a panic, never a silent success.
func TestWireDecodeRejectsMalformed(t *testing.T) {
	c := testCodec()
	good := mustEncode(t, netsim.Message{
		From: 1, To: 2, Kind: "test", Size: 9,
		Payload: testPayload{D: "x", E: []byte("y")},
	})
	corrupt := func(name string, mutate func(b []byte) []byte) {
		t.Helper()
		b := mutate(append([]byte{}, good...))
		if _, err := DecodeFrame(bytes.NewReader(b), c); err == nil {
			t.Errorf("%s: decode accepted a malformed frame", name)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'x'; return b })
	corrupt("bad version", func(b []byte) []byte { b[2] = 99; return b })
	corrupt("truncated header", func(b []byte) []byte { return b[:5] })
	corrupt("truncated body", func(b []byte) []byte { return b[:len(b)-3] })
	corrupt("trailing junk inside frame", func(b []byte) []byte {
		b = append(b, 0xAA)
		binary.BigEndian.PutUint32(b[3:7], uint32(len(b)-headerLen))
		return b
	})
	corrupt("kind length past body", func(b []byte) []byte { b[headerLen+12] = 0xFF; return b })
	corrupt("unregistered kind", func(b []byte) []byte { b[headerLen+13] = 'X'; return b })
	corrupt("oversize announcement", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b[3:7], MaxBody+1)
		return b
	})
	corrupt("string length past payload", func(b []byte) []byte {
		// The u32 length prefix of payload field D sits after from/to/size/
		// kindLen/kind and the three fixed u64 fields.
		off := headerLen + 12 + 1 + len("test") + 24
		binary.BigEndian.PutUint32(b[off:], 1<<30)
		return b
	})

	// An oversize announcement must be rejected before the body is read, so
	// a hostile peer cannot make the node allocate or block on MaxBody+1
	// bytes that never arrive. eofAfterHeader would block forever if the
	// decoder tried to read the announced body from a net.Conn; with a
	// short reader it must fail cleanly instead.
	hdr := []byte{magic0, magic1, wireVersion, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := DecodeFrame(bytes.NewReader(hdr), c); err == nil || strings.Contains(err.Error(), "unexpected EOF") {
		t.Fatalf("oversize header must be rejected without reading the body, got %v", err)
	}
}

// FuzzWireCodec feeds arbitrary bytes to the frame decoder. The invariant a
// bad peer cares about: DecodeFrame returns (message, nil) or an error —
// it never panics and never over-reads. Seed corpus includes valid frames so
// the fuzzer also explores the accept path, where decoded messages must
// re-encode to the identical bytes (the codec is canonical).
func FuzzWireCodec(f *testing.F) {
	c := testCodec()
	f.Add(mustEncodeF(f, netsim.Message{From: 0, To: 1, Kind: "test", Size: 7,
		Payload: testPayload{A: 1, B: -2, C: 3.5, D: "d", E: []byte{9}}}))
	f.Add(mustEncodeF(f, netsim.Message{From: 5, To: 0, Kind: "empty"}))
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, wireVersion, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeFrame(bytes.NewReader(data), c)
		if err != nil {
			return
		}
		re, err := EncodeFrame(msg, c)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		// The accepted prefix must be exactly the canonical encoding.
		if !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data[:len(re)], re)
		}
	})
}

func mustEncodeF(f *testing.F, msg netsim.Message) []byte {
	f.Helper()
	b, err := EncodeFrame(msg, testCodec())
	if err != nil {
		f.Fatal(err)
	}
	return b
}

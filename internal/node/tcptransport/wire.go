// Package tcptransport carries the ecoCloud protocol between real processes:
// it implements protocol.Transport over a full mesh of TCP connections with a
// length-prefixed binary frame codec, so the same cluster logic that runs on
// the simulated netsim fabric (and is pinned there by the goldens) can run as
// one shard per OS process on loopback or a real network.
//
// The package is quarantined from the simulation core by ecolint's boundary
// rule: sim-critical packages must not import it, because it deals in wall
// clocks, goroutines and sockets — everything the deterministic core forbids.
package tcptransport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/netsim"
)

// Wire format. Every frame is
//
//	magic(2) version(1) bodyLen(4, big-endian) body
//
// and the body is
//
//	from(4) to(4) size(4) kindLen(1) kind payload
//
// where size is the message's logical byte count (what netsim's latency model
// and the Bytes counter see — a TRANSFER frame declares the VM's RAM bytes
// without shipping them), and payload is the kind-specific binary encoding.
// All integers are big-endian and fixed-width: the codec must be rejectable
// byte-by-byte without trusting any length it has not yet bounds-checked.
const (
	magic0 = 0xEC // "ecod"
	magic1 = 0x0D

	wireVersion = 1

	headerLen = 7

	// MaxBody bounds a frame body. A peer announcing more is malformed and
	// the connection is dropped before any allocation: a bad peer must never
	// panic or balloon a node.
	MaxBody = 1 << 20
)

// Marshaler is implemented by every payload that crosses the wire.
type Marshaler interface {
	// AppendWire appends the payload's binary encoding to b.
	AppendWire(b []byte) []byte
}

// Decoder turns a payload's wire bytes back into the typed value. It must
// consume exactly the bytes it is given.
type Decoder func(r *Reader) (any, error)

// Codec maps message kinds to payload decoders. Encoding needs no registry —
// payloads carry their own AppendWire — but decoding a kind the codec was
// never taught is a malformed frame, not a guess.
type Codec struct {
	dec map[string]Decoder
}

// NewCodec returns an empty codec.
func NewCodec() *Codec { return &Codec{dec: make(map[string]Decoder)} }

// Register installs the decoder for one message kind. Registering a kind
// twice is a programming error.
func (c *Codec) Register(kind string, d Decoder) {
	if kind == "" || len(kind) > math.MaxUint8 {
		panic(fmt.Sprintf("tcptransport: unusable kind %q", kind))
	}
	if d == nil {
		panic(fmt.Sprintf("tcptransport: nil decoder for kind %q", kind))
	}
	if _, dup := c.dec[kind]; dup {
		panic(fmt.Sprintf("tcptransport: duplicate decoder for kind %q", kind))
	}
	c.dec[kind] = d
}

// Kinds reports whether kind is known to the codec.
func (c *Codec) Kinds(kind string) bool { _, ok := c.dec[kind]; return ok }

// EncodeFrame serializes one message into a complete frame. The payload must
// be nil or a Marshaler; anything else is a programming error on the sending
// side and returns an error rather than crossing the wire corrupted.
func EncodeFrame(msg netsim.Message, c *Codec) ([]byte, error) {
	if !c.Kinds(msg.Kind) {
		return nil, fmt.Errorf("tcptransport: encode: unregistered kind %q", msg.Kind)
	}
	body := make([]byte, 0, 16+len(msg.Kind))
	body = AppendU32(body, uint32(int32(msg.From)))
	body = AppendU32(body, uint32(int32(msg.To)))
	body = AppendU32(body, uint32(int32(msg.Size)))
	body = append(body, byte(len(msg.Kind)))
	body = append(body, msg.Kind...)
	switch p := msg.Payload.(type) {
	case nil:
	case Marshaler:
		body = p.AppendWire(body)
	default:
		return nil, fmt.Errorf("tcptransport: encode %q: payload %T does not implement Marshaler", msg.Kind, msg.Payload)
	}
	if len(body) > MaxBody {
		return nil, fmt.Errorf("tcptransport: encode %q: body %d exceeds MaxBody %d", msg.Kind, len(body), MaxBody)
	}
	frame := make([]byte, 0, headerLen+len(body))
	frame = append(frame, magic0, magic1, wireVersion)
	frame = AppendU32(frame, uint32(len(body)))
	return append(frame, body...), nil
}

// DecodeFrame reads one frame from r and returns the decoded message.
// io.EOF at a frame boundary is returned as io.EOF; every other shortfall or
// inconsistency is an error that the caller must treat as a poisoned
// connection. DecodeFrame never panics on adversarial input.
func DecodeFrame(r io.Reader, c *Codec) (netsim.Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return netsim.Message{}, err // io.EOF here is a clean close
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return netsim.Message{}, unexpected(err)
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return netsim.Message{}, fmt.Errorf("tcptransport: bad magic %#02x%02x", hdr[0], hdr[1])
	}
	if hdr[2] != wireVersion {
		return netsim.Message{}, fmt.Errorf("tcptransport: wire version %d, want %d", hdr[2], wireVersion)
	}
	body := binary.BigEndian.Uint32(hdr[3:7])
	if body > MaxBody {
		return netsim.Message{}, fmt.Errorf("tcptransport: frame body %d exceeds MaxBody %d", body, MaxBody)
	}
	buf := make([]byte, body)
	if _, err := io.ReadFull(r, buf); err != nil {
		return netsim.Message{}, unexpected(err)
	}
	return decodeBody(buf, c)
}

// decodeBody parses a complete frame body. Split out so the fuzz target can
// hit the parser without a reader in the way.
func decodeBody(buf []byte, c *Codec) (netsim.Message, error) {
	rd := NewReader(buf)
	from := int32(rd.U32())
	to := int32(rd.U32())
	size := int32(rd.U32())
	kindLen := int(rd.U8())
	kind := string(rd.Take(kindLen))
	if err := rd.Err(); err != nil {
		return netsim.Message{}, fmt.Errorf("tcptransport: truncated body: %w", err)
	}
	dec, ok := c.dec[kind]
	if !ok {
		return netsim.Message{}, fmt.Errorf("tcptransport: unregistered kind %q", kind)
	}
	payload, err := dec(rd)
	if err != nil {
		return netsim.Message{}, fmt.Errorf("tcptransport: decode %q: %w", kind, err)
	}
	if err := rd.Err(); err != nil {
		return netsim.Message{}, fmt.Errorf("tcptransport: decode %q: %w", kind, err)
	}
	if rd.Len() != 0 {
		return netsim.Message{}, fmt.Errorf("tcptransport: decode %q: %d trailing bytes", kind, rd.Len())
	}
	return netsim.Message{
		From: netsim.NodeID(from), To: netsim.NodeID(to),
		Kind: kind, Payload: payload, Size: int(size),
	}, nil
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Reader is a sticky-error cursor over a payload's bytes. After the first
// shortfall every accessor returns zero values and Err reports the problem,
// so decoders can read a whole struct and check once.
type Reader struct {
	b   []byte
	err error
}

// NewReader wraps b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

// Len returns the unconsumed byte count.
func (r *Reader) Len() int { return len(r.b) }

func (r *Reader) fail(n int) {
	if r.err == nil {
		r.err = fmt.Errorf("need %d bytes, have %d", n, len(r.b))
	}
}

// Take consumes exactly n bytes. Negative or oversized n is a shortfall.
func (r *Reader) Take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b) {
		r.fail(n)
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

// U8 consumes one byte.
func (r *Reader) U8() uint8 {
	b := r.Take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 consumes a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.Take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 consumes a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.Take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 consumes a big-endian two's-complement int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 consumes an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes consumes a u32-length-prefixed byte slice. The length is bounds-
// checked against the remaining payload before any allocation.
func (r *Reader) Bytes() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if uint64(n) > uint64(len(r.b)) {
		r.fail(int(n))
		return nil
	}
	return r.Take(int(n))
}

// String consumes a u32-length-prefixed UTF-8 string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Append helpers, the writing mirror of Reader. All fixed-width big-endian.

// AppendU8 appends one byte.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendU32 appends a big-endian uint32.
func AppendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }

// AppendU64 appends a big-endian uint64.
func AppendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

// AppendI64 appends a big-endian two's-complement int64.
func AppendI64(b []byte, v int64) []byte { return AppendU64(b, uint64(v)) }

// AppendF64 appends an IEEE-754 float64.
func AppendF64(b []byte, v float64) []byte { return AppendU64(b, math.Float64bits(v)) }

// AppendBytes appends a u32-length-prefixed byte slice.
func AppendBytes(b, v []byte) []byte { return append(AppendU32(b, uint32(len(v))), v...) }

// AppendString appends a u32-length-prefixed string.
func AppendString(b []byte, v string) []byte { return append(AppendU32(b, uint32(len(v))), v...) }

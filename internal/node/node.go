package node

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/node/tcptransport"
	"repro/internal/trace"
)

// Node is one ecod process: the shard agent for its span, plus — on node 0
// — the workload driver. Every node is started from the same ClusterConfig;
// the transport handshake (config hash + seed) is the only join protocol.
type Node struct {
	cfg    *ClusterConfig
	self   int
	tr     *tcptransport.Transport
	agent  *agent
	driver *driver // nil unless self == 0
}

// Options tunes process-level wiring; the zero value is right for real
// deployments. Tests pre-bind listeners so one config (and one hash) can
// name concrete ports before any node starts.
type Options struct {
	Listener       net.Listener  // optional pre-bound listener for cfg's addr
	ConnectTimeout time.Duration // mesh formation timeout (default 30s)
}

// New builds the node: workload regenerated locally from the shared seed,
// transport keyed to the config hash, agent (and driver on node 0) wired to
// the codec.
func New(cfg *ClusterConfig, self int, opts Options) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if self < 0 || self >= len(cfg.Nodes) {
		return nil, fmt.Errorf("node: self = %d with %d nodes", self, len(cfg.Nodes))
	}
	ws, err := trace.GenerateChurn(cfg.Churn(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	addrs := make(map[int]string, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		addrs[n.ID] = n.Addr
	}
	timeout := opts.ConnectTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	tr, err := tcptransport.New(tcptransport.Config{
		Self:           self,
		Addrs:          addrs,
		Listener:       opts.Listener,
		Codec:          BuildCodec(),
		ConfigHash:     cfg.Hash(),
		Seed:           cfg.Seed,
		Impair:         cfg.Impairments(),
		Impaired:       TransferImpaired,
		ConnectTimeout: timeout,
	})
	if err != nil {
		return nil, err
	}
	n := &Node{cfg: cfg, self: self, tr: tr}
	n.agent, err = newAgent(cfg, self, ws, tr, tr.Stats)
	if err != nil {
		tr.Close()
		return nil, err
	}
	if self == driverNode {
		n.driver, err = newDriver(cfg, ws, tr)
		if err != nil {
			tr.Close()
			return nil, err
		}
		tr.Register(netsim.NodeID(self), func(m netsim.Message) {
			// Node 0 hosts both roles on one mesh address: acks go to the
			// driver's barrier channels, requests to the agent loop.
			if !n.driver.handle(m) {
				n.agent.handle(m)
			}
		})
	} else {
		tr.Register(netsim.NodeID(self), n.agent.handle)
	}
	return n, nil
}

// Run forms the mesh, plays the protocol day, and writes this node's
// summary CSV (plus, on node 0, the merged cluster figure) into outDir
// when non-empty. The merged figure is returned on node 0, nil elsewhere.
func (n *Node) Run(outDir string) (*experiments.Figure, error) {
	if err := n.tr.Start(); err != nil {
		return nil, err
	}
	defer n.tr.Close()
	agentDone := make(chan struct{})
	//ecolint:allow goroutine — the agent loop must consume requests while Run's goroutine blocks in driver barriers (node 0) or waits for completion; the loop owns all shard state, the channels are the only interface
	go func() {
		defer close(agentDone)
		n.agent.run()
	}()

	var merged *experiments.Figure
	if n.driver != nil {
		sums := n.driver.run()
		merged = n.mergedFigure(sums)
	}
	<-agentDone

	if outDir != "" {
		if err := writeFigureCSV(outDir, n.nodeFigure()); err != nil {
			return nil, err
		}
		if merged != nil {
			if err := writeFigureCSV(outDir, merged); err != nil {
				return nil, err
			}
		}
	}
	return merged, nil
}

// nodeFigure renders this node's shard totals as a one-row figure.
func (n *Node) nodeFigure() *experiments.Figure {
	s := n.agent.final
	f := &experiments.Figure{
		ID:    fmt.Sprintf("ecod_node%d", n.self),
		Title: fmt.Sprintf("ecod node %d shard summary (servers %d:%d)", n.self, n.agent.span.Lo, n.agent.span.Hi),
		Columns: []string{
			"node", "placements", "removals", "migrations_in", "migrations_out",
			"hibernates", "activations", "final_active", "energy_kwh", "messages", "megabytes",
		},
	}
	f.Add(
		float64(s.Node), float64(s.Placements), float64(s.Removals),
		float64(s.MigrationsIn), float64(s.MigrationsOut),
		float64(s.Hibernates), float64(s.Activations),
		float64(s.FinalActive), s.EnergyKWh,
		float64(s.MsgsSent), float64(s.BytesSent)/(1<<20),
	)
	return f
}

// mergedFigure folds every node's summary into the cluster row, shaped like
// the protocolday figure so the two reports compare column for column.
func (n *Node) mergedFigure(sums []summaryMsg) *experiments.Figure {
	d := n.driver
	var energy float64
	var active, msgs, bytes int64
	for _, s := range sums {
		energy += s.EnergyKWh
		active += s.FinalActive
		msgs += s.MsgsSent
		bytes += s.BytesSent
	}
	f := &experiments.Figure{
		ID:    "ecod",
		Title: "Protocol day on real processes over TCP",
		Columns: []string{
			"placements", "migrations_low", "migrations_high", "migrations_aborted",
			"wakes", "saturations", "messages", "megabytes", "energy_kwh", "final_active",
		},
	}
	f.Add(
		float64(d.stats.Placements),
		float64(d.stats.MigrationsLow), float64(d.stats.MigrationsHigh),
		float64(d.stats.MigrationsAborted),
		float64(d.stats.Wakes), float64(d.stats.Saturations),
		float64(msgs), float64(bytes)/(1<<20), energy, float64(active),
	)
	hash := n.cfg.Hash()
	f.Notef("%d nodes, %d servers, horizon %v, seed %d (config %x)",
		len(n.cfg.Nodes), n.cfg.Servers, n.cfg.Horizon, n.cfg.Seed, hash[:6])
	migrations := d.stats.MigrationsLow + d.stats.MigrationsHigh
	f.Notef("%d placements, %d migrations (%d aborted), %d wakes; end of day %d of %d servers active, %.3f kWh",
		d.stats.Placements, migrations, d.stats.MigrationsAborted, d.stats.Wakes,
		active, n.cfg.Servers, energy)
	if n.cfg.Impairments().Enabled() {
		f.Notef("impaired transfers: drop=%v dup=%v expired %d migrations via the %v watchdog",
			n.cfg.Drop, n.cfg.Dup, d.stats.MigrationsExpired, d.watchdog)
	}
	return f
}

// writeFigureCSV writes fig as <outDir>/<ID>.csv.
func writeFigureCSV(outDir string, fig *experiments.Figure) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(outDir, fig.ID+".csv")
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fig.WriteCSV(w); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

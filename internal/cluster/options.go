package cluster

import (
	"io"

	"repro/internal/obs"
)

// Option mutates a RunConfig before Run validates it. Options exist for the
// attachments that are not part of a run's identity — telemetry sinks,
// journals, the execution engine — so call sites read as
//
//	cluster.Run(cfg, policy, cluster.WithObs(rec), cluster.WithEventLog(w))
//
// with cfg carrying only the simulation itself (fleet, workload, horizon,
// cadences, power model). Setting the corresponding RunConfig fields
// directly still works; an option merely overrides the field when given.
type Option func(*RunConfig)

// WithObs attaches a telemetry recorder to the run (see RunConfig.Obs).
func WithObs(r *obs.Recorder) Option {
	return func(c *RunConfig) { c.Obs = r }
}

// WithEventLog streams one JSON line per data-center mutation to w (see
// RunConfig.EventLog).
func WithEventLog(w io.Writer) Option {
	return func(c *RunConfig) { c.EventLog = w }
}

// WithWorkers routes the per-server control-round work through an
// internal/par pool with n workers (see RunConfig.Workers). Results are
// bit-identical at every worker count.
func WithWorkers(n int) Option {
	return func(c *RunConfig) { c.Workers = n }
}

package cluster

import (
	"io"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
)

// Option mutates a RunConfig before Run validates it. Options exist for the
// attachments that are not part of a run's identity — telemetry sinks,
// journals, the execution engine — so call sites read as
//
//	cluster.Run(cfg, policy, cluster.WithObs(rec), cluster.WithEventLog(w))
//
// with cfg carrying only the simulation itself (fleet, workload, horizon,
// cadences, power model). Setting the corresponding RunConfig fields
// directly still works; an option merely overrides the field when given.
type Option func(*RunConfig)

// WithObs attaches a telemetry recorder to the run (see RunConfig.Obs).
// When the deprecated RunConfig.Obs field was also set (to a different
// recorder), the option wins: the field is ignored and the run emits a
// single deprecated_field_ignored warning on the winning recorder.
func WithObs(r *obs.Recorder) Option {
	return func(c *RunConfig) {
		if c.Obs != nil && c.Obs != r {
			c.obsFieldOverridden = true
		}
		c.Obs = r
	}
}

// WithEventLog streams one JSON line per data-center mutation to w (see
// RunConfig.EventLog). When the deprecated RunConfig.EventLog field was also
// set (to a different writer), the option wins: the field is ignored and the
// run emits a single deprecated_field_ignored warning on its recorder.
func WithEventLog(w io.Writer) Option {
	return func(c *RunConfig) {
		if c.EventLog != nil && c.EventLog != w {
			c.eventLogFieldOverridden = true
		}
		c.EventLog = w
	}
}

// WithWorkers routes the per-server control-round work through an
// internal/par pool with n workers (see RunConfig.Workers). Results are
// bit-identical at every worker count.
func WithWorkers(n int) Option {
	return func(c *RunConfig) { c.Workers = n }
}

// WithCheckpointAt makes Run capture a full checkpoint at the end of the
// control tick at virtual time at — a positive multiple of ControlInterval,
// before the horizon — and hand it to sink (see RunConfig.CheckpointAt).
// Capture is pure reads: the run's results are bit-identical with or without
// a checkpoint in the middle.
func WithCheckpointAt(at time.Duration, sink func(*checkpoint.Checkpoint) error) Option {
	return func(c *RunConfig) {
		c.CheckpointAt = at
		c.CheckpointSink = sink
	}
}

// WithCheckpointStop stops the run right after the checkpoint is captured
// and delivered; the Result then covers only the prefix [0, CheckpointAt].
// Use it to warm a prefix once and fork many continuations from it.
func WithCheckpointStop() Option {
	return func(c *RunConfig) { c.CheckpointStop = true }
}

// WithResume starts the run from a checkpoint instead of t=0 (see
// RunConfig.Resume). The configuration must rebuild the same fleet, workload
// and cadences the checkpoint was captured under; the continued run is then
// bit-identical to the uninterrupted one.
func WithResume(ck *checkpoint.Checkpoint) Option {
	return func(c *RunConfig) { c.Resume = ck }
}

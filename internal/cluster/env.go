// Package cluster runs consolidation policies against the data-center model
// under a trace-driven workload. It defines the narrow interface every
// policy (ecocloud, the centralized baselines) implements, and the
// discrete-event driver that feeds arrivals, departures and control ticks to
// the policy while collecting the metrics the paper's figures report.
package cluster

import (
	"time"

	"repro/internal/dc"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/trace"
)

// Env is the view of the world a policy gets on each callback: the current
// virtual time, the data center, and the recorder for policy events.
type Env struct {
	Now time.Duration
	DC  *dc.DataCenter
	Rec *Recorder
	// Pool is the run's fork-join worker pool (nil when RunConfig.Workers
	// is 0). Policies may shard read-only per-server fan-outs across it —
	// e.g. evaluating utilization over an invited set — under internal/par's
	// determinism contract: per-item slots, ordered reduction, per-item rng.
	Pool *par.Pool
}

// Policy is a VM consolidation algorithm. The driver invokes OnArrival for
// every VM arrival and OnControl once per control interval; policies own all
// placement and migration decisions, including waking and hibernating
// servers.
type Policy interface {
	// OnArrival must place vm on some server, activating one if necessary.
	// If the data center truly cannot host the VM the policy still places it
	// (degraded service) and records a saturation event.
	OnArrival(env Env, vm *trace.VM)
	// OnControl runs the periodic monitoring/migration step.
	OnControl(env Env)
	// Name identifies the policy in experiment output.
	Name() string
}

// Migration kinds recorded by policies. The ecoCloud paper distinguishes
// "low" (from under-utilized servers) and "high" (from overloaded servers);
// centralized baselines use the same two classes so Fig. 9 is comparable.
const (
	MigrationLow  = "low"
	MigrationHigh = "high"
)

// Recorder accumulates policy-side events: migrations by kind and saturation
// events (an arrival found every server busy and none to wake).
type Recorder struct {
	migrations map[string]*metrics.RateCounter
	interval   time.Duration

	// rounds counts migrations per exact virtual timestamp. All migrations
	// of one control round share a timestamp, so this measures how many VMs
	// a policy moves *simultaneously* — the disruption the paper holds
	// against centralized reallocation (§V: "the concurrent migration of
	// many VMs can cause considerable performance degradation").
	rounds map[time.Duration]int

	// Saturations counts arrivals that could not be placed under the
	// admission thresholds anywhere (the paper: a sign the DC needs more
	// servers).
	Saturations int
}

// NewRecorder returns a recorder bucketing rates on the given interval
// (the paper reports per-hour rates computed every 30 minutes).
func NewRecorder(interval time.Duration) *Recorder {
	return &Recorder{
		migrations: make(map[string]*metrics.RateCounter),
		rounds:     make(map[time.Duration]int),
		interval:   interval,
	}
}

// Migration records one migration of the given kind at virtual time t.
func (r *Recorder) Migration(t time.Duration, kind string) {
	c, ok := r.migrations[kind]
	if !ok {
		c = metrics.NewRateCounter(kind, r.interval)
		r.migrations[kind] = c
	}
	c.Record(t)
	r.rounds[t]++
}

// MaxConcurrentMigrations returns the largest number of migrations sharing
// one virtual timestamp (one control round), and MeanConcurrentMigrations
// the mean over rounds that migrated at all.
func (r *Recorder) MaxConcurrentMigrations() int {
	m := 0
	for _, n := range r.rounds {
		if n > m {
			m = n
		}
	}
	return m
}

// MeanConcurrentMigrations returns the average batch size over rounds with
// at least one migration (0 if none occurred).
func (r *Recorder) MeanConcurrentMigrations() float64 {
	if len(r.rounds) == 0 {
		return 0
	}
	sum := 0
	for _, n := range r.rounds {
		sum += n
	}
	return float64(sum) / float64(len(r.rounds))
}

// MigrationCount returns the total number of migrations of the given kind.
func (r *Recorder) MigrationCount(kind string) int {
	if c, ok := r.migrations[kind]; ok {
		return c.Total()
	}
	return 0
}

// MigrationSeries materializes the per-hour rate series for a kind over
// [0, horizon] (all-zero if the kind never occurred).
func (r *Recorder) MigrationSeries(kind string, horizon time.Duration) *metrics.Series {
	if c, ok := r.migrations[kind]; ok {
		return c.PerHour(horizon)
	}
	empty := metrics.NewRateCounter(kind, r.interval)
	return empty.PerHour(horizon)
}

// MaxMigrationsPerHour returns the peak total hourly migration rate across
// all kinds (used for the paper's "<200 migrations/hour" check).
func (r *Recorder) MaxMigrationsPerHour() float64 {
	m := 0.0
	for _, c := range r.migrations {
		if v := c.MaxPerHour(); v > m {
			m = v
		}
	}
	return m
}

package cluster_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/ecocloud"
	"repro/internal/obs"
	"repro/internal/trace"
)

// stuffer is a degenerate policy that puts every VM on server 0. It gives the
// driver tests full control over utilization and overload.
type stuffer struct{ controls int }

func (s *stuffer) Name() string { return "stuffer" }

func (s *stuffer) OnArrival(env cluster.Env, vm *trace.VM) {
	s0 := env.DC.Servers[0]
	if s0.State() != dc.Active {
		if err := env.DC.Activate(s0, env.Now); err != nil {
			panic(err)
		}
	}
	if err := env.DC.Place(vm, s0); err != nil {
		panic(err)
	}
}

func (s *stuffer) OnControl(env cluster.Env) { s.controls++ }

func constVM(id int, mhz float64, start, end time.Duration) *trace.VM {
	return &trace.VM{ID: id, Start: start, End: end, Epoch: 1000 * time.Hour, Demand: []float64{mhz}}
}

func baseConfig(ws *trace.Set) cluster.RunConfig {
	return cluster.RunConfig{
		Specs:           dc.UniformFleet(4, 6, 2000),
		Workload:        ws,
		Horizon:         2 * time.Hour,
		ControlInterval: 5 * time.Minute,
		SampleInterval:  30 * time.Minute,
		PowerModel:      dc.DefaultPowerModel(),
	}
}

func TestRunConfigValidation(t *testing.T) {
	ws := &trace.Set{RefCapacityMHz: 8000, VMs: []*trace.VM{constVM(0, 100, 0, time.Hour)}}
	bad := []func(*cluster.RunConfig){
		func(c *cluster.RunConfig) { c.Specs = nil },
		func(c *cluster.RunConfig) { c.Workload = nil },
		func(c *cluster.RunConfig) { c.Workload = &trace.Set{} },
		func(c *cluster.RunConfig) { c.Horizon = 0 },
		func(c *cluster.RunConfig) { c.ControlInterval = 0 },
		func(c *cluster.RunConfig) { c.SampleInterval = 0 },
		func(c *cluster.RunConfig) { c.PowerModel = dc.PowerModel{} },
	}
	for i, mutate := range bad {
		cfg := baseConfig(ws)
		mutate(&cfg)
		if _, err := cluster.Run(cfg, &stuffer{}); err == nil {
			t.Errorf("bad run config %d accepted", i)
		}
	}
}

func TestRunSeriesShape(t *testing.T) {
	ws := &trace.Set{RefCapacityMHz: 8000, VMs: []*trace.VM{
		constVM(0, 2000, 0, 3*time.Hour),
		constVM(1, 3000, 30*time.Minute, 90*time.Minute),
	}}
	cfg := baseConfig(ws)
	cfg.RecordServerUtil = true
	res, err := cluster.Run(cfg, &stuffer{})
	if err != nil {
		t.Fatal(err)
	}
	// Samples at 0, 30, 60, 90, 120 minutes.
	if res.ActiveServers.Len() != 5 {
		t.Fatalf("active-servers samples = %d, want 5", res.ActiveServers.Len())
	}
	for _, s := range []int{res.PowerW.Len(), res.OverallLoad.Len(), res.OverDemandPct.Len(),
		res.Activations.Len(), res.Hibernations.Len()} {
		if s != 5 {
			t.Fatalf("series length %d, want 5", s)
		}
	}
	if len(res.ServerUtil) != 5 || len(res.ServerUtil[0]) != 4 {
		t.Fatalf("server-util matrix %dx%d, want 5x4", len(res.ServerUtil), len(res.ServerUtil[0]))
	}
	if res.EnergyKWh <= 0 {
		t.Fatal("energy not accumulated")
	}
	if res.Policy != "stuffer" {
		t.Fatalf("policy name = %q", res.Policy)
	}
}

func TestRunArrivalAndDeparture(t *testing.T) {
	// VM 1 departs at 90m; utilization on server 0 must drop afterwards.
	ws := &trace.Set{RefCapacityMHz: 8000, VMs: []*trace.VM{
		constVM(0, 2000, 0, 3*time.Hour),
		constVM(1, 3000, 30*time.Minute, 90*time.Minute),
	}}
	cfg := baseConfig(ws)
	cfg.RecordServerUtil = true
	res, err := cluster.Run(cfg, &stuffer{})
	if err != nil {
		t.Fatal(err)
	}
	// At 60m both VMs run: u = 5000/12000. At 120m only VM 0: u = 2000/12000.
	if got := res.ServerUtil[2][0]; got < 0.41 || got > 0.42 {
		t.Fatalf("util at 60m = %v, want ~0.4167", got)
	}
	if got := res.ServerUtil[4][0]; got < 0.16 || got > 0.17 {
		t.Fatalf("util at 120m = %v, want ~0.1667 after departure", got)
	}
}

func TestRunOverloadAccounting(t *testing.T) {
	// 13 GHz of demand on a 12 GHz server: permanently overloaded.
	ws := &trace.Set{RefCapacityMHz: 8000, VMs: []*trace.VM{
		constVM(0, 7000, 0, 3*time.Hour),
		constVM(1, 6000, 0, 3*time.Hour),
	}}
	cfg := baseConfig(ws)
	res, err := cluster.Run(cfg, &stuffer{})
	if err != nil {
		t.Fatal(err)
	}
	if res.VMOverloadTimeFrac < 0.99 {
		t.Fatalf("overload fraction = %v, want ~1", res.VMOverloadTimeFrac)
	}
	if res.Episodes.Episodes() != 1 {
		t.Fatalf("episodes = %d, want 1 continuous episode", res.Episodes.Episodes())
	}
	// Granted fraction = capacity/demand = 12/13.
	if got := res.GrantedFracInOverload; got < 0.92 || got > 0.93 {
		t.Fatalf("granted fraction = %v, want ~0.923", got)
	}
	if res.OverDemandPct.Max() != 100 {
		t.Fatalf("over-demand pct max = %v, want 100", res.OverDemandPct.Max())
	}
}

func TestRunNoOverloadZeroMetrics(t *testing.T) {
	ws := &trace.Set{RefCapacityMHz: 8000, VMs: []*trace.VM{
		constVM(0, 1000, 0, 3*time.Hour),
	}}
	res, err := cluster.Run(baseConfig(ws), &stuffer{})
	if err != nil {
		t.Fatal(err)
	}
	if res.VMOverloadTimeFrac != 0 {
		t.Fatalf("overload fraction = %v, want 0", res.VMOverloadTimeFrac)
	}
	if res.GrantedFracInOverload != 1 {
		t.Fatalf("granted fraction = %v, want 1 (no overload)", res.GrantedFracInOverload)
	}
	if res.Episodes.Episodes() != 0 {
		t.Fatal("phantom overload episodes")
	}
}

func TestRunControlCadence(t *testing.T) {
	ws := &trace.Set{RefCapacityMHz: 8000, VMs: []*trace.VM{
		constVM(0, 1000, 0, 3*time.Hour),
	}}
	p := &stuffer{}
	if _, err := cluster.Run(baseConfig(ws), p); err != nil {
		t.Fatal(err)
	}
	// Ticks at 0, 5, ..., 120 minutes inclusive.
	if p.controls != 25 {
		t.Fatalf("control ticks = %d, want 25", p.controls)
	}
}

func TestRunSpreadRoundRobin(t *testing.T) {
	vms := make([]*trace.VM, 8)
	for i := range vms {
		vms[i] = constVM(i, 1000, 0, 3*time.Hour)
	}
	ws := &trace.Set{RefCapacityMHz: 8000, VMs: vms}
	cfg := baseConfig(ws)
	cfg.Initial = cluster.SpreadRoundRobin
	cfg.RecordServerUtil = true
	res, err := cluster.Run(cfg, &stuffer{})
	if err != nil {
		t.Fatal(err)
	}
	// All 4 servers activated and each got 2 VMs at t=0.
	if res.ActiveServers.V[0] != 4 {
		t.Fatalf("active at t=0 = %v, want 4", res.ActiveServers.V[0])
	}
	for s := 0; s < 4; s++ {
		if got := res.ServerUtil[0][s]; got < 0.16 || got > 0.17 {
			t.Fatalf("server %d util = %v, want ~0.1667", s, got)
		}
	}
	// Setup activations are not counted as policy switches.
	if res.TotalActivations != 0 {
		t.Fatalf("setup activations leaked into the count: %d", res.TotalActivations)
	}
}

// Energy must integrate the power draw over exactly [0, Horizon). One
// 12 GHz server at a constant 6 GHz demand (u = 0.5) under a 1 kW peak /
// 0.5 idle-fraction model draws 750 W, so any 1-hour horizon must read
// 0.75 kWh — however the control cadence divides it.
func TestRunEnergyIntegratesExactHorizon(t *testing.T) {
	cases := []struct {
		name    string
		control time.Duration
	}{
		{"horizon-multiple-of-interval", 15 * time.Minute}, // ticks 0,15,30,45 (+60 contributes 0)
		{"horizon-not-multiple", 25 * time.Minute},         // ticks 0,25,50: slices 25+25+10
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ws := &trace.Set{RefCapacityMHz: 8000, VMs: []*trace.VM{constVM(0, 6000, 0, 2*time.Hour)}}
			res, err := cluster.Run(cluster.RunConfig{
				Specs:           dc.UniformFleet(1, 6, 2000),
				Workload:        ws,
				Horizon:         time.Hour,
				ControlInterval: c.control,
				SampleInterval:  30 * time.Minute,
				PowerModel:      dc.PowerModel{PeakW: 1000, IdleFraction: 0.5},
			}, &stuffer{})
			if err != nil {
				t.Fatal(err)
			}
			const want = 0.75 // 750 W for one hour
			if diff := res.EnergyKWh - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("EnergyKWh = %v, want %v (off by %v)", res.EnergyKWh, want, diff)
			}
		})
	}
}

// SpreadRoundRobin setup (activating the whole fleet and pre-placing the
// t=0 VMs) is scenario construction, not policy behaviour: the telemetry
// counters and the JSONL journal must not see it.
func TestRunSpreadRoundRobinTelemetryClean(t *testing.T) {
	vms := make([]*trace.VM, 8)
	for i := range vms {
		vms[i] = constVM(i, 1000, 0, 3*time.Hour)
	}
	ws := &trace.Set{RefCapacityMHz: 8000, VMs: vms}
	var jbuf, ebuf bytes.Buffer
	cfg := baseConfig(ws)
	cfg.Initial = cluster.SpreadRoundRobin
	cfg.Obs = obs.NewRecorder(nil, obs.NewJournal(&jbuf))
	cfg.EventLog = &ebuf
	if _, err := cluster.Run(cfg, &stuffer{}); err != nil {
		t.Fatal(err)
	}
	snap := cfg.Obs.Snapshot()
	for _, name := range []string{"cluster.assignments", "cluster.wakeups"} {
		if n := snap.Counters[name]; n != 0 {
			t.Errorf("%s = %d after setup-only run, want 0", name, n)
		}
	}
	// The stuffer policy performs no mutations, so both journals stay empty.
	if jbuf.Len() != 0 {
		t.Errorf("obs journal has %d bytes of setup events", jbuf.Len())
	}
	if ebuf.Len() != 0 {
		t.Errorf("event log has %d bytes of setup events", ebuf.Len())
	}
}

// A malformed workload (multi-sample VM with a zero epoch) must be rejected
// up front instead of dividing by zero mid-run.
func TestRunRejectsInvalidWorkload(t *testing.T) {
	bad := &trace.VM{ID: 0, End: time.Hour, Epoch: 0, Demand: []float64{100, 200}}
	ws := &trace.Set{RefCapacityMHz: 8000, VMs: []*trace.VM{bad}}
	if _, err := cluster.Run(baseConfig(ws), &stuffer{}); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

// The demand kernel must be invisible in the results: a naive-path run is
// bit-identical to the cached run, and cache stats appear only on the
// cached one.
func TestRunDemandCacheDifferential(t *testing.T) {
	gcfg := trace.DefaultGenConfig()
	gcfg.NumVMs = 80
	gcfg.Horizon = 4 * time.Hour
	ws, err := trace.Generate(gcfg, 23)
	if err != nil {
		t.Fatal(err)
	}
	run := func(disable bool) *cluster.Result {
		pol, err := ecocloud.New(ecocloud.DefaultConfig(), 11)
		if err != nil {
			t.Fatal(err)
		}
		cfg := cluster.RunConfig{
			Specs:              dc.StandardFleet(10),
			Workload:           ws,
			Horizon:            4 * time.Hour,
			ControlInterval:    5 * time.Minute,
			SampleInterval:     30 * time.Minute,
			PowerModel:         dc.DefaultPowerModel(),
			DisableDemandCache: disable,
		}
		res, err := cluster.Run(cfg, pol)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cached, naive := run(false), run(true)
	if cached.EnergyKWh != naive.EnergyKWh ||
		cached.MeanActiveServers != naive.MeanActiveServers ||
		cached.TotalLowMigrations != naive.TotalLowMigrations ||
		cached.TotalHighMigrations != naive.TotalHighMigrations ||
		cached.TotalActivations != naive.TotalActivations ||
		cached.VMOverloadTimeFrac != naive.VMOverloadTimeFrac {
		t.Fatalf("cached and naive runs diverged:\ncached %+v\nnaive  %+v", cached, naive)
	}
	if cached.DemandCache.Hits == 0 {
		t.Fatal("cached run recorded no cache hits")
	}
	if naive.DemandCache.Hits != 0 || naive.DemandCache.Misses != 0 {
		t.Fatalf("naive run recorded cache traffic: %+v", naive.DemandCache)
	}
}

func TestRunEcoCloudEndToEnd(t *testing.T) {
	// A realistic mini-scenario: 200 VMs with daily pattern on 20 servers,
	// full ecoCloud. Checks the headline behaviours end to end.
	gcfg := trace.DefaultGenConfig()
	gcfg.NumVMs = 200
	gcfg.Horizon = 12 * time.Hour
	ws, err := trace.Generate(gcfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := ecocloud.DefaultConfig()
	pol, err := ecocloud.New(ecfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.RunConfig{
		Specs:           dc.StandardFleet(20),
		Workload:        ws,
		Horizon:         12 * time.Hour,
		ControlInterval: 5 * time.Minute,
		SampleInterval:  30 * time.Minute,
		PowerModel:      dc.DefaultPowerModel(),
	}
	res, err := cluster.Run(cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanActiveServers <= 0 || res.MeanActiveServers >= 20 {
		t.Fatalf("mean active servers = %v", res.MeanActiveServers)
	}
	// Consolidation: far fewer servers than the fleet carry the load. The
	// 200-VM set demands roughly 15-25% of the 20-server fleet.
	if res.MeanActiveServers > 12 {
		t.Fatalf("weak consolidation: %v servers active on average", res.MeanActiveServers)
	}
	// QoS: overload time fraction stays tiny (paper: <= 0.0002).
	if res.VMOverloadTimeFrac > 0.005 {
		t.Fatalf("overload fraction = %v, want < 0.005", res.VMOverloadTimeFrac)
	}
	if res.Saturations != 0 {
		t.Fatalf("saturations = %d in an underloaded DC", res.Saturations)
	}
	// Energy must beat the all-on fleet and lose to the impossible zero.
	allOnKWh := 20 * 0.65 * 250 * 12 / 1000 // every server idle for 12h, lower bound of all-on
	if res.EnergyKWh >= allOnKWh {
		t.Fatalf("energy %v kWh not below all-on idle floor %v kWh", res.EnergyKWh, allOnKWh)
	}
}

func TestRunEcoCloudDeterministic(t *testing.T) {
	gcfg := trace.DefaultGenConfig()
	gcfg.NumVMs = 80
	gcfg.Horizon = 4 * time.Hour
	ws, err := trace.Generate(gcfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *cluster.Result {
		pol, err := ecocloud.New(ecocloud.DefaultConfig(), 11)
		if err != nil {
			t.Fatal(err)
		}
		cfg := cluster.RunConfig{
			Specs:           dc.StandardFleet(10),
			Workload:        ws,
			Horizon:         4 * time.Hour,
			ControlInterval: 5 * time.Minute,
			SampleInterval:  30 * time.Minute,
			PowerModel:      dc.DefaultPowerModel(),
		}
		res, err := cluster.Run(cfg, pol)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.EnergyKWh != b.EnergyKWh ||
		a.TotalLowMigrations != b.TotalLowMigrations ||
		a.TotalHighMigrations != b.TotalHighMigrations ||
		a.TotalActivations != b.TotalActivations {
		t.Fatalf("identical runs diverged: %+v vs %+v", a, b)
	}
}

// Property: for arbitrary seeds and small random workloads, the driver's
// aggregate results stay internally consistent.
func TestQuickRunInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		gcfg := trace.DefaultGenConfig()
		gcfg.NumVMs = 60
		gcfg.Horizon = 3 * time.Hour
		ws, err := trace.Generate(gcfg, seed)
		if err != nil {
			return false
		}
		pol, err := ecocloud.New(ecocloud.DefaultConfig(), seed+1)
		if err != nil {
			return false
		}
		res, err := cluster.Run(cluster.RunConfig{
			Specs:           dc.StandardFleet(8),
			Workload:        ws,
			Horizon:         3 * time.Hour,
			ControlInterval: 5 * time.Minute,
			SampleInterval:  30 * time.Minute,
			PowerModel:      dc.DefaultPowerModel(),
		}, pol)
		if err != nil {
			return false
		}
		switch {
		case res.EnergyKWh <= 0:
			return false
		case res.MeanActiveServers < 0 || res.MeanActiveServers > 8:
			return false
		case res.VMOverloadTimeFrac < 0 || res.VMOverloadTimeFrac > 1:
			return false
		case res.GrantedFracInOverload <= 0 || res.GrantedFracInOverload > 1:
			return false
		case res.TotalLowMigrations < 0 || res.TotalHighMigrations < 0:
			return false
		case res.MaxConcurrentMigrations > res.TotalLowMigrations+res.TotalHighMigrations:
			return false
		case res.TotalHibernations > res.TotalActivations:
			// Every hibernation needs a prior activation (fleet starts off).
			return false
		}
		// Series totals must agree with scalar totals.
		lowFromSeries := 0.0
		for _, v := range res.LowMigrations.V {
			lowFromSeries += v * 0.5 // 30-minute buckets, rate is per hour
		}
		diff := lowFromSeries - float64(res.TotalLowMigrations)
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Soak: a week of simulated operation at small scale, checking that nothing
// degenerates over long horizons (counters stay sane, invariants hold,
// energy accumulates linearly-ish).
func TestSoakWeekLong(t *testing.T) {
	if testing.Short() {
		t.Skip("week-long soak")
	}
	gcfg := trace.DefaultGenConfig()
	gcfg.NumVMs = 300
	gcfg.Horizon = 7 * 24 * time.Hour
	ws, err := trace.Generate(gcfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := ecocloud.New(ecocloud.DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cluster.RunConfig{
		Specs:           dc.StandardFleet(20),
		Workload:        ws,
		Horizon:         gcfg.Horizon,
		ControlInterval: 5 * time.Minute,
		SampleInterval:  time.Hour,
		PowerModel:      dc.DefaultPowerModel(),
	}, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.VMOverloadTimeFrac > 0.001 {
		t.Fatalf("overload crept up over a week: %v", res.VMOverloadTimeFrac)
	}
	if res.Saturations != 0 {
		t.Fatalf("saturations = %d", res.Saturations)
	}
	// Daily rhythm: roughly one activation/hibernation wave per day; after
	// the first-day transient the counts should stay bounded (no flapping).
	if res.TotalActivations > 20*7*4 {
		t.Fatalf("activation flapping: %d over a week", res.TotalActivations)
	}
	// Energy over 7 days must exceed 7x the daily hibernated floor and stay
	// under 7x the all-on ceiling.
	floor := 7 * 24.0 * 20 * 5 / 1000 // all hibernated at 5 W
	ceiling := 7 * 24.0 * 20 * 250 / 1000
	if res.EnergyKWh <= floor || res.EnergyKWh >= ceiling {
		t.Fatalf("energy %v kWh outside (%v, %v)", res.EnergyKWh, floor, ceiling)
	}
}

// The event journal must reconstruct the run: every placement, departure,
// migration and switch appears exactly once, in timestamp order, and the
// replayed placement state matches the counters.
func TestRunEventJournal(t *testing.T) {
	gcfg := trace.DefaultGenConfig()
	gcfg.NumVMs = 80
	gcfg.Horizon = 4 * time.Hour
	ws, err := trace.Generate(gcfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := ecocloud.New(ecocloud.DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := cluster.RunConfig{
		Specs:           dc.StandardFleet(10),
		Workload:        ws,
		Horizon:         4 * time.Hour,
		ControlInterval: 5 * time.Minute,
		SampleInterval:  30 * time.Minute,
		PowerModel:      dc.DefaultPowerModel(),
		EventLog:        &buf,
	}
	res, err := cluster.Run(cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	type line struct {
		TNS    int64  `json:"t_ns"`
		Kind   string `json:"kind"`
		VM     int    `json:"vm"`
		Server int    `json:"server"`
		Dest   int    `json:"dest"`
	}
	counts := map[string]int{}
	lastT := int64(-1)
	placed := map[int]int{} // vm -> server, replayed
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var l line
		if err := dec.Decode(&l); err != nil {
			t.Fatal(err)
		}
		if l.TNS < lastT {
			t.Fatalf("journal out of order: %d after %d", l.TNS, lastT)
		}
		lastT = l.TNS
		counts[l.Kind]++
		switch l.Kind {
		case "place":
			placed[l.VM] = l.Server
		case "remove":
			if placed[l.VM] != l.Server {
				t.Fatalf("remove of VM %d from server %d, but replay has it on %d", l.VM, l.Server, placed[l.VM])
			}
			delete(placed, l.VM)
		case "migrate":
			if placed[l.VM] != l.Server {
				t.Fatalf("migrate of VM %d from wrong source", l.VM)
			}
			placed[l.VM] = l.Dest
		}
	}
	if counts["place"] != 80 {
		t.Fatalf("placements journaled = %d, want 80", counts["place"])
	}
	if counts["migrate"] != res.TotalLowMigrations+res.TotalHighMigrations {
		t.Fatalf("migrations journaled = %d, counters say %d",
			counts["migrate"], res.TotalLowMigrations+res.TotalHighMigrations)
	}
	if counts["activate"] != res.TotalActivations || counts["hibernate"] != res.TotalHibernations {
		t.Fatalf("switches journaled = %d/%d, counters %d/%d",
			counts["activate"], counts["hibernate"], res.TotalActivations, res.TotalHibernations)
	}
	// All VMs run past the horizon, so no removes; the replayed placement
	// count must match the final state.
	if len(placed) != 80 {
		t.Fatalf("replayed placements = %d", len(placed))
	}
}

package cluster_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/ecocloud"
	"repro/internal/obs"
	"repro/internal/trace"
)

var errSink = errors.New("sink failed")

func newEcoPolicy(t *testing.T) cluster.Policy {
	t.Helper()
	pol, err := ecocloud.New(ecocloud.DefaultConfig(), 7)
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	return pol
}

// TestDeprecatedObsFieldPrecedence pins the conflict rule: when both the
// deprecated RunConfig.Obs field and the WithObs option are given, the option
// wins, the field is ignored, and the winning recorder carries exactly one
// warning count.
func TestDeprecatedObsFieldPrecedence(t *testing.T) {
	ws := &trace.Set{RefCapacityMHz: 8000, VMs: []*trace.VM{constVM(0, 100, 0, time.Hour)}}
	cfg := baseConfig(ws)
	fieldRec := obs.NewRecorder(nil, nil)
	optionRec := obs.NewRecorder(nil, nil)
	cfg.Obs = fieldRec

	if _, err := cluster.Run(cfg, &stuffer{}, cluster.WithObs(optionRec)); err != nil {
		t.Fatalf("run: %v", err)
	}
	if n := optionRec.Snapshot().Counters["cluster.deprecated_field_ignored"]; n != 1 {
		t.Fatalf("winning recorder warning count = %d, want 1", n)
	}
	if n := optionRec.Snapshot().Counters["sim.events"]; n == 0 {
		t.Fatal("winning recorder saw no engine events: option did not take effect")
	}
	if got := fieldRec.Snapshot().Counters; len(got) != 0 {
		t.Fatalf("ignored field recorder received counters: %v", got)
	}
}

// TestDeprecatedEventLogFieldPrecedence is the EventLog twin: the option's
// writer receives the journal, the field's writer stays empty, and the obs
// recorder carries the single warning.
func TestDeprecatedEventLogFieldPrecedence(t *testing.T) {
	ws := &trace.Set{RefCapacityMHz: 8000, VMs: []*trace.VM{constVM(0, 100, 0, time.Hour)}}
	cfg := baseConfig(ws)
	var fieldLog, optionLog bytes.Buffer
	rec := obs.NewRecorder(nil, nil)
	cfg.EventLog = &fieldLog

	if _, err := cluster.Run(cfg, &stuffer{}, cluster.WithEventLog(&optionLog), cluster.WithObs(rec)); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fieldLog.Len() != 0 {
		t.Fatalf("ignored field writer received %d bytes", fieldLog.Len())
	}
	if optionLog.Len() == 0 {
		t.Fatal("option writer received nothing")
	}
	if n := rec.Snapshot().Counters["cluster.deprecated_field_ignored"]; n != 1 {
		t.Fatalf("warning count = %d, want 1", n)
	}
}

// TestSameAttachmentIsNotAConflict: passing the option with the same value
// the field already holds is redundancy, not a conflict — no warning.
func TestSameAttachmentIsNotAConflict(t *testing.T) {
	ws := &trace.Set{RefCapacityMHz: 8000, VMs: []*trace.VM{constVM(0, 100, 0, time.Hour)}}
	cfg := baseConfig(ws)
	rec := obs.NewRecorder(nil, nil)
	cfg.Obs = rec
	if _, err := cluster.Run(cfg, &stuffer{}, cluster.WithObs(rec)); err != nil {
		t.Fatalf("run: %v", err)
	}
	if n := rec.Snapshot().Counters["cluster.deprecated_field_ignored"]; n != 0 {
		t.Fatalf("warning count = %d, want 0", n)
	}
}

func TestCheckpointConfigValidation(t *testing.T) {
	ws := &trace.Set{RefCapacityMHz: 8000, VMs: []*trace.VM{constVM(0, 100, 0, time.Hour)}}
	sink := func(*checkpoint.Checkpoint) error { return nil }
	cases := []struct {
		name string
		opts []cluster.Option
	}{
		{"misaligned", []cluster.Option{cluster.WithCheckpointAt(7*time.Minute, sink)}},
		{"at horizon", []cluster.Option{cluster.WithCheckpointAt(2*time.Hour, sink)}},
		{"past horizon", []cluster.Option{cluster.WithCheckpointAt(3*time.Hour, sink)}},
		{"nil sink", []cluster.Option{cluster.WithCheckpointAt(time.Hour, nil)}},
		{"stop without at", []cluster.Option{cluster.WithCheckpointStop()}},
	}
	for _, tc := range cases {
		if _, err := cluster.Run(baseConfig(ws), &stuffer{}, tc.opts...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestResumeValidation(t *testing.T) {
	// All VMs start after the cut so resume gets past the placement check
	// and the failures under test are reached.
	ws := &trace.Set{RefCapacityMHz: 8000, VMs: []*trace.VM{constVM(0, 100, time.Hour, 90*time.Minute)}}
	ck := func(mut func(*checkpoint.Checkpoint)) *checkpoint.Checkpoint {
		c := checkpoint.New(int64(5 * time.Minute))
		c.Policy = "stuffer"
		if mut != nil {
			mut(c)
		}
		return c
	}
	cases := []struct {
		name string
		ck   *checkpoint.Checkpoint
		want string
	}{
		{"wrong policy", ck(func(c *checkpoint.Checkpoint) { c.Policy = "other" }), "belongs to policy"},
		{"past horizon", ck(func(c *checkpoint.Checkpoint) { c.AtNS = int64(2 * time.Hour) }), "not before the horizon"},
		{"misaligned", ck(func(c *checkpoint.Checkpoint) { c.AtNS = int64(7 * time.Minute) }), "not aligned"},
		{"invalid", ck(func(c *checkpoint.Checkpoint) { c.Version = 99 }), "version"},
	}
	for _, tc := range cases {
		_, err := cluster.Run(baseConfig(ws), &stuffer{}, cluster.WithResume(tc.ck))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}

	// Re-checkpointing a resumed run must aim past the resume point.
	sink := func(*checkpoint.Checkpoint) error { return nil }
	_, err := cluster.Run(baseConfig(ws), &stuffer{},
		cluster.WithResume(ck(nil)),
		cluster.WithCheckpointAt(5*time.Minute, sink))
	if err == nil || !strings.Contains(err.Error(), "not after the resume point") {
		t.Errorf("re-checkpoint at the resume point: err = %v", err)
	}
}

// TestCheckpointRequiresCapablePolicy: a policy without the checkpoint
// interfaces fails the capture (and the resume) loudly instead of writing a
// partial state.
func TestCheckpointRequiresCapablePolicy(t *testing.T) {
	ws := &trace.Set{RefCapacityMHz: 8000, VMs: []*trace.VM{constVM(0, 100, 0, time.Hour)}}
	sink := func(*checkpoint.Checkpoint) error { return nil }
	_, err := cluster.Run(baseConfig(ws), &stuffer{}, cluster.WithCheckpointAt(time.Hour, sink))
	if err == nil || !strings.Contains(err.Error(), "does not support checkpointing") {
		t.Errorf("capture with incapable policy: err = %v", err)
	}
}

// TestCheckpointSinkErrorAbortsRun: a sink failure is a run failure.
func TestCheckpointSinkErrorAbortsRun(t *testing.T) {
	ws := &trace.Set{RefCapacityMHz: 8000, VMs: []*trace.VM{constVM(0, 100, 0, time.Hour)}}
	cfg := baseConfig(ws)
	pol := newEcoPolicy(t)
	sink := func(*checkpoint.Checkpoint) error { return errSink }
	_, err := cluster.Run(cfg, pol, cluster.WithCheckpointAt(time.Hour, sink))
	if err == nil || !strings.Contains(err.Error(), "sink failed") {
		t.Errorf("sink error: err = %v", err)
	}
}

package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/dc"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/trace"
)

// InitialPlacement selects how VMs alive at t=0 enter the data center.
type InitialPlacement int

const (
	// ArriveThroughPolicy feeds t=0 VMs through the policy's assignment
	// procedure one by one (a consolidated start — what a data center that
	// has been running ecoCloud looks like at midnight).
	ArriveThroughPolicy InitialPlacement = iota
	// SpreadRoundRobin pre-places t=0 VMs round-robin across ALL servers,
	// activating every server: the paper's "non consolidated scenario" that
	// the Fig. 12 experiment starts from. Pre-activated servers get no
	// grace period (their ActivatedAt is set well in the past).
	SpreadRoundRobin
)

// RunConfig describes one simulation run.
type RunConfig struct {
	Specs    []dc.Spec
	Workload *trace.Set
	Horizon  time.Duration

	// ControlInterval is the cadence of the migration scan and of overload
	// observation (default 5 minutes, the trace epoch).
	ControlInterval time.Duration
	// SampleInterval is the cadence of the reported series (the paper
	// computes all metrics every 30 minutes).
	SampleInterval time.Duration

	// MeasureFrom excludes the warm-up prefix [0, MeasureFrom) from the
	// aggregate accounting: VMOverloadTimeFrac, RAMOverloadTimeFrac,
	// GrantedFracInOverload and MeanActiveServers only integrate control
	// ticks at t >= MeasureFrom. The sampled series, episode tracker,
	// counters and energy integral still cover the whole run — warm-up
	// trimming is a measurement concern, not a simulation one. Zero (the
	// default) measures from t=0, which is the historical behaviour. Used
	// by the load harness, whose ramp slots need steady-state violation
	// fractions uncontaminated by the fill-up transient.
	MeasureFrom time.Duration

	PowerModel dc.PowerModel
	Initial    InitialPlacement

	// Workers selects the execution engine for the per-server work of each
	// control round (demand refill, overload observation, checked-mode
	// audits, utilization sampling). 0 — the default — is the pristine
	// sequential path. N >= 1 routes that work through an internal/par pool
	// with N workers; results are bit-identical to sequential at every
	// worker count (see DESIGN.md "Parallel execution & determinism"), so
	// the only observable difference is wall-clock time. Workers=1 runs the
	// par code path inline, which is what the differential tests pin against
	// both Workers=0 and Workers=8.
	Workers int

	// RecordServerUtil stores a per-server utilization sample matrix
	// (Figs. 6 and 12); costs Samples×Servers float64s.
	RecordServerUtil bool

	// EventLog, when set, receives one JSON line per data-center mutation:
	// {"t_ns":..., "kind":"place|remove|migrate|activate|hibernate",
	//  "vm":..., "server":..., "dest":...}. Useful for debugging policies
	// and for external analysis; adds encoding cost per event. Setup
	// mutations (the SpreadRoundRobin pre-placement) are not journaled:
	// the log reflects policy behaviour only, matching the counters.
	//
	// Deprecated: prefer passing cluster.WithEventLog(w) to Run. The field
	// keeps working; the option overrides it when both are given.
	EventLog io.Writer

	// DisableDemandCache turns off the incremental demand kernel, forcing
	// every Server.DemandAt back to the naive per-VM recomputation. Results
	// are bit-identical either way (that is the kernel's contract); the
	// switch exists for the differential tests and the naive-vs-cached
	// scalability benchmarks.
	DisableDemandCache bool

	// Obs, when set, receives run telemetry: engine metrics (events, queue
	// depth, handler wall time), cluster counters (assignments, removals,
	// migrations by kind, activations, hibernations, overload ticks), live
	// gauges (sim time, active servers), and — when the recorder carries a
	// journal — one JSONL event per policy-driven data-center mutation
	// (setup pre-placement is excluded, like EventLog). Nil (the default)
	// costs the run nothing.
	//
	// Deprecated: prefer passing cluster.WithObs(r) to Run. The field keeps
	// working; the option overrides it when both are given.
	Obs *obs.Recorder

	// CheckpointAt, when nonzero, makes Run capture a full checkpoint at the
	// end of the control tick at that virtual time and hand it to
	// CheckpointSink. The control tick is the last event at its timestamp
	// (for t > 0), so the capture is a well-defined cut of the simulation;
	// CheckpointAt must be a positive multiple of ControlInterval and before
	// the horizon. Capture is pure reads: a checkpointing run's results are
	// bit-identical to a non-checkpointing one.
	CheckpointAt time.Duration
	// CheckpointSink receives the captured checkpoint. A non-nil error
	// aborts the run and is returned from Run.
	CheckpointSink func(*checkpoint.Checkpoint) error
	// CheckpointStop stops the run right after the capture is delivered; the
	// returned Result then covers only the prefix [0, CheckpointAt].
	CheckpointStop bool
	// Resume, when set, starts the run from the checkpoint instead of t=0:
	// the data center, policy state, rng streams, driver accounting and obs
	// counters are reinstated, arrivals and departures before the capture
	// point are skipped, and the tick cadences continue exactly where the
	// captured run left off — the continued run is bit-identical (CSV and
	// journal) to the uninterrupted one. The rest of the configuration must
	// rebuild the same fleet, workload and cadences the checkpoint was
	// captured under. Set via WithResume.
	Resume *checkpoint.Checkpoint

	// obsFieldOverridden / eventLogFieldOverridden record that an explicit
	// option displaced a non-nil deprecated field, so Run can warn once (the
	// option wins, the field is ignored).
	obsFieldOverridden      bool
	eventLogFieldOverridden bool
}

// Validate reports whether the run configuration is usable.
func (c RunConfig) Validate() error {
	switch {
	case len(c.Specs) == 0:
		return fmt.Errorf("cluster: no servers")
	case c.Workload == nil || len(c.Workload.VMs) == 0:
		return fmt.Errorf("cluster: no workload")
	case c.Horizon <= 0:
		return fmt.Errorf("cluster: Horizon = %v", c.Horizon)
	case c.ControlInterval <= 0:
		return fmt.Errorf("cluster: ControlInterval = %v", c.ControlInterval)
	case c.SampleInterval <= 0:
		return fmt.Errorf("cluster: SampleInterval = %v", c.SampleInterval)
	case c.MeasureFrom < 0:
		return fmt.Errorf("cluster: MeasureFrom = %v", c.MeasureFrom)
	case c.MeasureFrom >= c.Horizon:
		return fmt.Errorf("cluster: MeasureFrom %v is not before the horizon %v", c.MeasureFrom, c.Horizon)
	case c.PowerModel.PeakW <= 0:
		return fmt.Errorf("cluster: power model peak = %v", c.PowerModel.PeakW)
	case c.Workers < 0:
		return fmt.Errorf("cluster: Workers = %d", c.Workers)
	}
	if c.CheckpointAt != 0 {
		switch {
		case c.CheckpointAt < 0:
			return fmt.Errorf("cluster: CheckpointAt = %v", c.CheckpointAt)
		case c.CheckpointAt%c.ControlInterval != 0:
			return fmt.Errorf("cluster: CheckpointAt %v is not a multiple of the control interval %v", c.CheckpointAt, c.ControlInterval)
		case c.CheckpointAt >= c.Horizon:
			return fmt.Errorf("cluster: CheckpointAt %v is not before the horizon %v", c.CheckpointAt, c.Horizon)
		case c.CheckpointSink == nil:
			return fmt.Errorf("cluster: CheckpointAt without a CheckpointSink")
		}
	}
	if c.CheckpointStop && c.CheckpointAt == 0 {
		return fmt.Errorf("cluster: CheckpointStop without CheckpointAt")
	}
	return nil
}

// Result carries everything the paper's figures and in-text claims need.
type Result struct {
	Policy  string
	Horizon time.Duration

	// Sampled series (one point per SampleInterval, t=0 included).
	ActiveServers  *metrics.Series // Fig. 7
	PowerW         *metrics.Series // Fig. 8
	OverallLoad    *metrics.Series // the reference dots of Figs. 6/12
	OverDemandPct  *metrics.Series // Fig. 11 (% of VM-time in overload)
	LowMigrations  *metrics.Series // Fig. 9
	HighMigrations *metrics.Series // Fig. 9
	Activations    *metrics.Series // Fig. 10 (per hour)
	Hibernations   *metrics.Series // Fig. 10 (per hour)

	// Per-server utilization samples (Figs. 6/12): ServerUtil[i][s] is
	// server s's utilization at SampleTimes[i]. Empty unless requested.
	SampleTimes []time.Duration
	ServerUtil  [][]float64

	// Overload episodes at server granularity, measured in control ticks.
	Episodes *metrics.EpisodeTracker

	// Aggregates.
	TotalLowMigrations  int
	TotalHighMigrations int
	TotalActivations    int
	TotalHibernations   int
	Saturations         int
	EnergyKWh           float64
	MeanActiveServers   float64
	FinalActiveServers  int
	// VMOverloadTimeFrac is the fraction of VM-time spent on overloaded
	// servers (the paper's Fig. 11 metric, as a fraction not percent).
	VMOverloadTimeFrac float64
	// GrantedFracInOverload is demanded CPU actually granted during
	// overloaded server-ticks (paper: >= 98% even inside violations).
	GrantedFracInOverload float64
	// RAMOverloadTimeFrac is the fraction of VM-time on servers whose
	// memory is overcommitted (used > capacity). Always 0 when the fleet
	// does not model RAM; the §V extension is judged on it.
	RAMOverloadTimeFrac  float64
	MaxMigrationsPerHour float64
	// Migration batch sizes per control round: the simultaneous-migration
	// disruption the paper argues against for centralized schemes.
	MaxConcurrentMigrations  int
	MeanConcurrentMigrations float64
	// SwitchEnergyKWh is the transition-energy share already included in
	// EnergyKWh (nonzero only when the power model prices switches).
	SwitchEnergyKWh float64
	// DemandCache reports the demand kernel's hit/miss/invalidation traffic
	// for the run (all zero when DisableDemandCache was set).
	DemandCache dc.DemandCacheStats
}

// journalLine is the EventLog wire format.
type journalLine struct {
	TNS    int64  `json:"t_ns"`
	Kind   string `json:"kind"`
	VM     int    `json:"vm"`
	Server int    `json:"server"`
	Dest   int    `json:"dest"`
}

// observeDCEvent counts one data-center mutation into the telemetry
// recorder and mirrors it to the recorder's JSONL journal.
func observeDCEvent(r *obs.Recorder, now time.Duration, e dc.Event) {
	if !r.Enabled() {
		return
	}
	switch e.Kind {
	case dc.EventPlace:
		r.Count("cluster.assignments", 1)
	case dc.EventRemove:
		r.Count("cluster.removals", 1)
	case dc.EventMigrate:
		r.Count("cluster.migrations", 1)
	case dc.EventActivate:
		r.Count("cluster.wakeups", 1)
	case dc.EventHibernate:
		r.Count("cluster.hibernations", 1)
	case dc.EventFail:
		r.Count("cluster.failures", 1)
	case dc.EventRecover:
		r.Count("cluster.recoveries", 1)
	case dc.EventCrashEvict:
		r.Count("cluster.crash_evictions", 1)
	}
	if r.Journaling() {
		fields := map[string]any{"server": e.Server}
		if e.VM >= 0 {
			fields["vm"] = e.VM
		}
		if e.Dest >= 0 {
			fields["dest"] = e.Dest
		}
		r.Emit(now, string(e.Kind), fields)
	}
}

// warnDeprecatedField emits the single warning Run produces when an explicit
// option displaced a non-nil deprecated RunConfig field (the option wins).
func warnDeprecatedField(r *obs.Recorder, field string) {
	if !r.Enabled() {
		return
	}
	r.Count("cluster.deprecated_field_ignored", 1)
	if r.Journaling() {
		r.Emit(0, "deprecated_field_ignored", map[string]any{"field": field})
	}
}

// Run executes the workload against the policy and collects metrics.
// Options are applied to cfg (overriding its fields) before validation; see
// Option for the attachment knobs available.
func Run(cfg RunConfig, policy Policy, opts ...Option) (*Result, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Workload.Validate(); err != nil {
		return nil, err
	}
	// Deprecated-field precedence: an explicit option wins over the
	// deprecated RunConfig field. The displaced field is ignored and the run
	// says so exactly once, on the recorder that won.
	if cfg.obsFieldOverridden {
		warnDeprecatedField(cfg.Obs, "Obs")
	}
	if cfg.eventLogFieldOverridden {
		warnDeprecatedField(cfg.Obs, "EventLog")
	}

	resume := cfg.Resume
	var resumeAt time.Duration
	if resume != nil {
		if err := resume.Validate(); err != nil {
			return nil, err
		}
		resumeAt = time.Duration(resume.AtNS)
		switch {
		case resume.Policy != "" && resume.Policy != policy.Name():
			return nil, fmt.Errorf("cluster: checkpoint belongs to policy %q, resuming with %q", resume.Policy, policy.Name())
		case resumeAt >= cfg.Horizon:
			return nil, fmt.Errorf("cluster: checkpoint at %v is not before the horizon %v", resumeAt, cfg.Horizon)
		case resumeAt%cfg.ControlInterval != 0:
			return nil, fmt.Errorf("cluster: checkpoint at %v is not aligned to the control interval %v", resumeAt, cfg.ControlInterval)
		case cfg.CheckpointAt != 0 && cfg.CheckpointAt <= resumeAt:
			return nil, fmt.Errorf("cluster: CheckpointAt %v is not after the resume point %v", cfg.CheckpointAt, resumeAt)
		}
	}

	var d *dc.DataCenter
	if resume != nil {
		// Rebuild the data center from the checkpoint: placements replayed
		// from the snapshot, then the hot state (cursor memos, RAM
		// accumulator, kernel aggregates and counters) reinstated on top.
		var err error
		d, err = dc.Restore(cfg.Specs, cfg.Workload, resume.DC)
		if err != nil {
			return nil, err
		}
	} else {
		d = dc.New(cfg.Specs)
	}
	d.SetDemandCache(!cfg.DisableDemandCache)
	rec := NewRecorder(cfg.SampleInterval)
	eng := sim.New()
	eng.SetRecorder(cfg.Obs)

	// Fork-join pool for the per-server work of each control round. nil when
	// Workers is 0, which keeps every existing sequential code path (and its
	// goldens) untouched. The pool lives for the whole run; each tick's
	// fan-outs join before the tick handler returns, so the engine's
	// single-threaded execution model is preserved.
	var pool *par.Pool
	if cfg.Workers > 0 {
		pool = par.New(cfg.Workers)
		defer pool.Close()
	}

	res := &Result{
		Policy:                policy.Name(),
		Horizon:               cfg.Horizon,
		ActiveServers:         metrics.NewSeries("active_servers"),
		PowerW:                metrics.NewSeries("power_w"),
		OverallLoad:           metrics.NewSeries("overall_load"),
		OverDemandPct:         metrics.NewSeries("overdemand_pct"),
		Activations:           metrics.NewSeries("activations_per_hour"),
		Hibernations:          metrics.NewSeries("hibernations_per_hour"),
		Episodes:              metrics.NewEpisodeTracker(cfg.ControlInterval),
		GrantedFracInOverload: 1,
	}

	totalCapacity := d.TotalCapacityMHz()

	// Sort VMs by (Start, ID) so arrival order is deterministic.
	vms := make([]*trace.VM, len(cfg.Workload.VMs))
	copy(vms, cfg.Workload.VMs)
	sort.Slice(vms, func(i, j int) bool {
		if vms[i].Start != vms[j].Start {
			return vms[i].Start < vms[j].Start
		}
		return vms[i].ID < vms[j].ID
	})

	// Initial placement. A resumed run restores placements from the
	// checkpoint instead; the scenario-construction phase happened in the
	// captured run's own prefix.
	preplaced := map[int]bool{}
	if resume == nil && cfg.Initial == SpreadRoundRobin {
		// Activate everything with ActivatedAt far in the past (no grace).
		for _, s := range d.Servers {
			if err := d.Activate(s, 0); err != nil {
				return nil, err
			}
			s.SetActivatedAt(-1000 * time.Hour)
		}
		d.Activations = 0 // setup, not policy behaviour
		i := 0
		for _, vm := range vms {
			if vm.Start != 0 {
				continue
			}
			if err := d.Place(vm, d.Servers[i%len(d.Servers)]); err != nil {
				return nil, err
			}
			preplaced[vm.ID] = true
			i++
		}
	}

	// The journal goes in only after initial placement: setup mutations are
	// scenario construction, not policy behaviour, and counting them used to
	// inflate cluster.assignments / cluster.wakeups and pollute the JSONL
	// journal on SpreadRoundRobin runs even though d.Activations was reset.
	var enc *json.Encoder
	if cfg.EventLog != nil {
		enc = json.NewEncoder(cfg.EventLog)
	}
	if enc != nil || cfg.Obs.Enabled() {
		d.SetJournal(func(e dc.Event) {
			if enc != nil {
				// Encoding errors must not corrupt the simulation; the
				// journal is best-effort observability.
				_ = enc.Encode(journalLine{
					TNS:    int64(eng.Now()),
					Kind:   string(e.Kind),
					VM:     e.VM,
					Server: e.Server,
					Dest:   e.Dest,
				})
			}
			observeDCEvent(cfg.Obs, eng.Now(), e)
		})
	}

	// Arrival and departure events. A resumed run schedules only the events
	// strictly after the capture point: earlier arrivals are embodied in the
	// restored placements, earlier departures already happened. The loop
	// order (and therefore the engine's FIFO tie-breaking among coincident
	// events) is the same sorted-VM order as the uninterrupted run's.
	for _, vm := range vms {
		vm := vm
		if resume != nil {
			if vm.Start <= resumeAt && vm.End > resumeAt {
				if _, ok := d.HostOf(vm.ID); !ok {
					return nil, fmt.Errorf("cluster: resume: VM %d alive at %v is not placed in the checkpoint", vm.ID, resumeAt)
				}
			}
			if vm.Start <= resumeAt && vm.End <= resumeAt {
				continue
			}
		}
		if vm.Start > resumeAt || (resume == nil && !preplaced[vm.ID]) {
			eng.Schedule(vm.Start, "arrival", func(e *sim.Engine) {
				policy.OnArrival(Env{Now: e.Now(), DC: d, Rec: rec, Pool: pool}, vm)
			})
		}
		if vm.End > resumeAt && vm.End < cfg.Horizon {
			eng.Schedule(vm.End, "departure", func(e *sim.Engine) {
				if _, err := d.Remove(vm.ID); err != nil {
					panic(fmt.Sprintf("cluster: departing VM %d: %v", vm.ID, err))
				}
			})
		}
	}

	// Overload accounting shared between control and sample ticks.
	var acc runAccum

	// Resume: reinstate the policy's private state and rng streams, the
	// driver's accounting, and the obs counters/gauges (timers are wall-clock
	// telemetry and stay fresh).
	if resume != nil {
		co, okC := policy.(checkpoint.Checkpointable)
		so, okS := policy.(checkpoint.StreamOwner)
		if !okC || !okS {
			return nil, fmt.Errorf("cluster: policy %q does not support checkpoint resume", policy.Name())
		}
		if err := co.UnmarshalCheckpoint(resume.PolicyState); err != nil {
			return nil, err
		}
		if err := so.AdoptStreams(resume.RNG); err != nil {
			return nil, err
		}
		if err := restoreRunnerState(resume.Runner, res, rec, &acc); err != nil {
			return nil, err
		}
		if resume.Obs != nil {
			cfg.Obs.RestoreMetrics(*resume.Obs)
		}
	}

	// Per-tick scratch, allocated once per run: the observation is computed
	// into slots (phase A — with a pool, workers fill disjoint spans via
	// dc.ObserveSpan; without one, a single span fills inline) and folded
	// sequentially in server-index order (phase B), reproducing the
	// sequential loop's float-operation order exactly.
	nServers := len(d.Servers)
	slots := make([]dc.TickSample, nServers)
	observe := func(now time.Duration) {
		if pool.Parallel() {
			pool.Range(nServers, func(sp par.Span) {
				d.ObserveSpan(sp.Lo, sp.Hi, now, slots[sp.Lo:sp.Hi])
			})
		} else {
			d.ObserveSpan(0, nServers, now, slots)
		}
	}
	var demandScratch []float64
	if pool != nil {
		demandScratch = make([]float64, len(cfg.Workload.VMs))
	}
	// totalDemandAt mirrors trace.Set.TotalDemandAt; with a pool the pure
	// per-VM lookups fan out to workers as spans (one bounds-checked loop per
	// shard, not one closure per VM) and the fold stays sequential in slice
	// order, so the sum is bit-identical.
	totalDemandAt := func(now time.Duration) float64 {
		if pool == nil {
			return cfg.Workload.TotalDemandAt(now)
		}
		ws := cfg.Workload.VMs
		pool.Range(len(ws), func(sp par.Span) {
			for i := sp.Lo; i < sp.Hi; i++ {
				demandScratch[i] = ws[i].DemandAt(now)
			}
		})
		sum := 0.0
		for _, v := range demandScratch {
			sum += v
		}
		return sum
	}

	// capErr carries a checkpoint-capture or sink failure out of the control
	// tick; a set capErr stops the engine and fails the run.
	var capErr error

	// Control tick: let the policy act, then observe. Observing after the
	// policy mirrors the paper's setup, where servers monitor utilization
	// every few seconds and request relief immediately: overload that the
	// policy can fix within one monitoring latency never accumulates
	// violation time; what we count is the overload that persists.
	controlTick := func(e *sim.Engine) {
		now := e.Now()
		if pool != nil {
			// Prewarm: refill every active server's demand aggregate across
			// the workers so the sequential scans that follow (the policy's
			// decision loop, the energy integral) run on cache hits. The
			// warmed value is bit-identical to what a miss would install,
			// and the warm itself is uncounted, so only the hit/miss split
			// shifts versus Workers=0 — never a result.
			pool.Range(nServers, func(sp par.Span) {
				d.WarmSpan(sp.Lo, sp.Hi, now)
			})
		}
		policy.OnControl(Env{Now: now, DC: d, Rec: rec, Pool: pool})
		if d.Checked() {
			// Structural invariants are verified per mutation in checked
			// mode; the numeric audit is per control tick — sharded across
			// the pool when one exists, with the first error in server-index
			// order reported, like the sequential sweep.
			if pool.Parallel() {
				spans := par.Shards(nServers)
				errs := make([]error, len(spans))
				pool.Range(nServers, func(sp par.Span) {
					errs[sp.Index] = d.AuditSpan(sp.Lo, sp.Hi, now)
				})
				for _, err := range errs {
					if err != nil {
						panic(fmt.Sprintf("cluster: control tick at %v: %v", now, err))
					}
				}
			} else if err := d.AuditSpan(0, nServers, now); err != nil {
				panic(fmt.Sprintf("cluster: control tick at %v: %v", now, err))
			}
		}
		observe(now)
		// Warm-up gate: ticks before MeasureFrom feed the windowed series and
		// the episode tracker (which report over time and can show the
		// transient honestly) but not the whole-run aggregates.
		measured := now >= cfg.MeasureFrom
		for i := range slots {
			sl := &slots[i]
			if !sl.Active {
				continue
			}
			res.Episodes.Observe(d.Servers[i].ID, sl.Over)
			acc.winVMTicks += sl.NVMs
			if sl.Over {
				acc.winVMOverTicks += sl.NVMs
				cfg.Obs.Count("cluster.overload_server_ticks", 1)
			}
			if !measured {
				continue
			}
			acc.vmTicks += sl.NVMs
			if sl.Over {
				acc.vmOverTicks += sl.NVMs
				acc.overDemandMHz += sl.Demand
				acc.overCapacityMHz += sl.Cap
			}
			if sl.RAMOver {
				acc.vmRAMOverTicks += sl.NVMs
			}
		}
		if measured {
			acc.activeTickSum += float64(d.ActiveCount())
			acc.controlTicks++
		}
		// Energy: integrate draw over the next interval (left Riemann sum),
		// clamped so the run integrates exactly [0, Horizon): the tick at
		// t == Horizon contributes nothing, and a final partial interval
		// (horizon not a multiple of ControlInterval) is cut at the horizon
		// instead of over-integrating a full slice.
		slice := cfg.ControlInterval
		if rem := cfg.Horizon - now; rem < slice {
			slice = rem
		}
		if slice > 0 {
			res.EnergyKWh += d.PowerAt(now, cfg.PowerModel) * slice.Hours() / 1000
		}
		if cfg.Obs.Enabled() {
			cfg.Obs.Gauge("cluster.active_servers", int64(d.ActiveCount()))
			cfg.Obs.Gauge("cluster.vms_placed", int64(d.NumPlaced()))
		}
		// Checkpoint capture: the end of the control tick at CheckpointAt is
		// the last instruction executed at that timestamp, so the captured
		// state is exactly "the simulation after time CheckpointAt". Capture
		// reads; it never mutates — the run's own results are unchanged.
		if cfg.CheckpointAt != 0 && now == cfg.CheckpointAt {
			ck, err := captureCheckpoint(&cfg, policy, Env{Now: now, DC: d, Rec: rec, Pool: pool}, res, rec, &acc, now)
			if err == nil {
				err = cfg.CheckpointSink(ck)
			}
			if err != nil {
				capErr = fmt.Errorf("cluster: checkpoint at %v: %w", now, err)
				e.Stop()
				return
			}
			if cfg.CheckpointStop {
				e.Stop()
			}
		}
	}

	// Sample tick: record the reported series.
	sampleTick := func(e *sim.Engine) {
		now := e.Now()
		cfg.Obs.SampleMemory()
		res.ActiveServers.Add(now, float64(d.ActiveCount()))
		res.PowerW.Add(now, d.PowerAt(now, cfg.PowerModel))
		res.OverallLoad.Add(now, totalDemandAt(now)/totalCapacity)
		pct := 0.0
		if acc.winVMTicks > 0 {
			pct = 100 * acc.winVMOverTicks / acc.winVMTicks
		}
		res.OverDemandPct.Add(now, pct)
		acc.winVMTicks, acc.winVMOverTicks = 0, 0

		hours := cfg.SampleInterval.Hours()
		res.Activations.Add(now, float64(d.Activations-acc.lastActivations)/hours)
		res.Hibernations.Add(now, float64(d.Hibernations-acc.lastHibernation)/hours)
		acc.lastActivations, acc.lastHibernation = d.Activations, d.Hibernations

		if cfg.RecordServerUtil {
			row := make([]float64, nServers)
			if pool.Parallel() {
				pool.Range(nServers, func(sp par.Span) {
					d.UtilSpan(sp.Lo, sp.Hi, now, row[sp.Lo:sp.Hi])
				})
			} else {
				d.UtilSpan(0, nServers, now, row)
			}
			res.SampleTimes = append(res.SampleTimes, now)
			res.ServerUtil = append(res.ServerUtil, row)
		}
	}

	// Tick scheduling. A fresh run registers control before sample, so the
	// t=0 tick runs control first; from then on each tick reschedules itself
	// and the engine's FIFO order makes sample precede control at every later
	// shared timestamp. A resumed run reproduces exactly that steady state:
	// sample is registered first (lower sequence number at coincident
	// timestamps) with its first fire at the next sample multiple after the
	// capture point, control second at capture + ControlInterval.
	if resume != nil {
		sampleFirst := (resumeAt/cfg.SampleInterval + 1) * cfg.SampleInterval
		eng.Every(sampleFirst, cfg.SampleInterval, "sample", sampleTick)
		eng.Every(resumeAt+cfg.ControlInterval, cfg.ControlInterval, "control", controlTick)
	} else {
		eng.Every(0, cfg.ControlInterval, "control", controlTick)
		eng.Every(0, cfg.SampleInterval, "sample", sampleTick)
	}

	eng.Run(cfg.Horizon)
	if capErr != nil {
		return nil, capErr
	}

	if err := d.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("cluster: post-run: %v", err)
	}
	res.Episodes.Flush()
	res.LowMigrations = rec.MigrationSeries(MigrationLow, cfg.Horizon)
	res.HighMigrations = rec.MigrationSeries(MigrationHigh, cfg.Horizon)
	res.TotalLowMigrations = rec.MigrationCount(MigrationLow)
	res.TotalHighMigrations = rec.MigrationCount(MigrationHigh)
	res.TotalActivations = d.Activations
	res.TotalHibernations = d.Hibernations
	res.Saturations = rec.Saturations
	res.FinalActiveServers = d.ActiveCount()
	res.MaxMigrationsPerHour = rec.MaxMigrationsPerHour()
	res.MaxConcurrentMigrations = rec.MaxConcurrentMigrations()
	res.MeanConcurrentMigrations = rec.MeanConcurrentMigrations()
	res.SwitchEnergyKWh = cfg.PowerModel.SwitchEnergyKWh(d.Activations + d.Hibernations)
	res.EnergyKWh += res.SwitchEnergyKWh
	res.DemandCache = d.DemandCacheStats()
	if cfg.Obs.Enabled() {
		cfg.Obs.Count("dc.demand_cache.hits", int64(res.DemandCache.Hits))
		cfg.Obs.Count("dc.demand_cache.misses", int64(res.DemandCache.Misses))
		cfg.Obs.Count("dc.demand_cache.invalidations", int64(res.DemandCache.Invalidations))
	}
	if acc.controlTicks > 0 {
		res.MeanActiveServers = acc.activeTickSum / acc.controlTicks
	}
	if acc.vmTicks > 0 {
		res.VMOverloadTimeFrac = acc.vmOverTicks / acc.vmTicks
		res.RAMOverloadTimeFrac = acc.vmRAMOverTicks / acc.vmTicks
	}
	if acc.overDemandMHz > 0 {
		res.GrantedFracInOverload = acc.overCapacityMHz / acc.overDemandMHz
	}
	return res, nil
}

package cluster

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// runAccum is the driver's in-flight accounting: the overload integrals
// shared between control and sample ticks, the energy left-Riemann sum's
// companions, and the switch-rate window anchors. It exists as a named
// struct (rather than loose locals in Run) so a checkpoint can carry it
// across a stop/resume boundary.
type runAccum struct {
	vmTicks, vmOverTicks           float64 // whole run
	vmRAMOverTicks                 float64
	winVMTicks, winVMOverTicks     float64 // current sample window
	overDemandMHz, overCapacityMHz float64 // during overloaded ticks
	activeTickSum, controlTicks    float64
	lastActivations                int
	lastHibernation                int
}

func copySeries(s *metrics.Series) *metrics.Series {
	return &metrics.Series{
		Name: s.Name,
		T:    append([]time.Duration(nil), s.T...),
		V:    append([]float64(nil), s.V...),
	}
}

// captureRunnerState deep-copies the driver's accounting into a serializable
// RunnerState. Capture is pure reads: a run that checkpoints is bit-identical
// to one that does not.
func captureRunnerState(res *Result, rec *Recorder, acc *runAccum) *checkpoint.RunnerState {
	st := &checkpoint.RunnerState{
		VMTicks:          acc.vmTicks,
		VMOverTicks:      acc.vmOverTicks,
		VMRAMOverTicks:   acc.vmRAMOverTicks,
		WinVMTicks:       acc.winVMTicks,
		WinVMOverTicks:   acc.winVMOverTicks,
		OverDemandMHz:    acc.overDemandMHz,
		OverCapacityMHz:  acc.overCapacityMHz,
		ActiveTickSum:    acc.activeTickSum,
		ControlTicks:     acc.controlTicks,
		LastActivations:  acc.lastActivations,
		LastHibernations: acc.lastHibernation,
		EnergyKWh:        res.EnergyKWh,

		ActiveServers: copySeries(res.ActiveServers),
		PowerW:        copySeries(res.PowerW),
		OverallLoad:   copySeries(res.OverallLoad),
		OverDemandPct: copySeries(res.OverDemandPct),
		Activations:   copySeries(res.Activations),
		Hibernations:  copySeries(res.Hibernations),

		Episodes:    res.Episodes.State(),
		Saturations: rec.Saturations,
	}
	for _, t := range res.SampleTimes {
		st.SampleTimesNS = append(st.SampleTimesNS, int64(t))
	}
	for _, row := range res.ServerUtil {
		st.ServerUtil = append(st.ServerUtil, append([]float64(nil), row...))
	}
	if len(rec.migrations) > 0 {
		st.Migrations = make(map[string]metrics.RateCounterState, len(rec.migrations))
		for kind, c := range rec.migrations {
			st.Migrations[kind] = c.State()
		}
	}
	for t, n := range rec.rounds {
		st.Rounds = append(st.Rounds, checkpoint.RoundCount{TNS: int64(t), N: n})
	}
	sort.Slice(st.Rounds, func(i, j int) bool { return st.Rounds[i].TNS < st.Rounds[j].TNS })
	return st
}

// restoreRunnerState reinstates a captured RunnerState into a fresh run's
// result, recorder and accumulators.
func restoreRunnerState(st *checkpoint.RunnerState, res *Result, rec *Recorder, acc *runAccum) error {
	if st == nil {
		return fmt.Errorf("cluster: checkpoint has no runner state")
	}
	acc.vmTicks = st.VMTicks
	acc.vmOverTicks = st.VMOverTicks
	acc.vmRAMOverTicks = st.VMRAMOverTicks
	acc.winVMTicks = st.WinVMTicks
	acc.winVMOverTicks = st.WinVMOverTicks
	acc.overDemandMHz = st.OverDemandMHz
	acc.overCapacityMHz = st.OverCapacityMHz
	acc.activeTickSum = st.ActiveTickSum
	acc.controlTicks = st.ControlTicks
	acc.lastActivations = st.LastActivations
	acc.lastHibernation = st.LastHibernations
	res.EnergyKWh = st.EnergyKWh

	for _, p := range []struct {
		dst *metrics.Series
		src *metrics.Series
	}{
		{res.ActiveServers, st.ActiveServers},
		{res.PowerW, st.PowerW},
		{res.OverallLoad, st.OverallLoad},
		{res.OverDemandPct, st.OverDemandPct},
		{res.Activations, st.Activations},
		{res.Hibernations, st.Hibernations},
	} {
		if p.src == nil {
			continue
		}
		p.dst.T = append([]time.Duration(nil), p.src.T...)
		p.dst.V = append([]float64(nil), p.src.V...)
	}
	for _, ns := range st.SampleTimesNS {
		res.SampleTimes = append(res.SampleTimes, time.Duration(ns))
	}
	for _, row := range st.ServerUtil {
		res.ServerUtil = append(res.ServerUtil, append([]float64(nil), row...))
	}
	res.Episodes.SetState(st.Episodes)

	rec.Saturations = st.Saturations
	for kind, cs := range st.Migrations {
		c := metrics.NewRateCounter(kind, rec.interval)
		c.SetState(cs)
		rec.migrations[kind] = c
	}
	for _, r := range st.Rounds {
		rec.rounds[time.Duration(r.TNS)] = r.N
	}
	return nil
}

// captureCheckpoint assembles the full checkpoint at the end of the control
// tick at now. The policy must implement both checkpoint interfaces.
func captureCheckpoint(cfg *RunConfig, policy Policy, env Env, res *Result, rec *Recorder, acc *runAccum, now time.Duration) (*checkpoint.Checkpoint, error) {
	co, okC := policy.(checkpoint.Checkpointable)
	so, okS := policy.(checkpoint.StreamOwner)
	if !okC || !okS {
		return nil, fmt.Errorf("policy %q does not support checkpointing", policy.Name())
	}
	ck := checkpoint.New(int64(now))
	ck.Policy = policy.Name()
	ck.DC = env.DC.Snapshot()
	reg := rng.NewRegistry()
	so.RegisterStreams(reg)
	ck.RNG = reg.States()
	var err error
	ck.PolicyState, err = co.MarshalCheckpoint()
	if err != nil {
		return nil, err
	}
	ck.Runner = captureRunnerState(res, rec, acc)
	if cfg.Obs.Enabled() {
		snap := cfg.Obs.Snapshot()
		ck.Obs = &snap
	}
	return ck, nil
}

package cluster

import (
	"testing"
	"time"
)

func TestRecorderMigrationKinds(t *testing.T) {
	r := NewRecorder(30 * time.Minute)
	r.Migration(time.Minute, MigrationLow)
	r.Migration(time.Minute, MigrationLow)
	r.Migration(2*time.Minute, MigrationHigh)
	if r.MigrationCount(MigrationLow) != 2 || r.MigrationCount(MigrationHigh) != 1 {
		t.Fatalf("counts = %d/%d", r.MigrationCount(MigrationLow), r.MigrationCount(MigrationHigh))
	}
	if r.MigrationCount("nope") != 0 {
		t.Fatal("unknown kind nonzero")
	}
}

func TestRecorderConcurrency(t *testing.T) {
	r := NewRecorder(30 * time.Minute)
	if r.MaxConcurrentMigrations() != 0 || r.MeanConcurrentMigrations() != 0 {
		t.Fatal("empty recorder should report zero concurrency")
	}
	// Round at t=5m: 3 migrations; round at t=10m: 1 migration.
	r.Migration(5*time.Minute, MigrationLow)
	r.Migration(5*time.Minute, MigrationHigh)
	r.Migration(5*time.Minute, MigrationLow)
	r.Migration(10*time.Minute, MigrationLow)
	if got := r.MaxConcurrentMigrations(); got != 3 {
		t.Fatalf("max concurrent = %d, want 3", got)
	}
	if got := r.MeanConcurrentMigrations(); got != 2 {
		t.Fatalf("mean concurrent = %v, want 2", got)
	}
}

func TestRecorderEmptySeries(t *testing.T) {
	r := NewRecorder(30 * time.Minute)
	s := r.MigrationSeries(MigrationLow, 2*time.Hour)
	if s.Len() != 5 {
		t.Fatalf("empty series length = %d, want 5 zero buckets", s.Len())
	}
	if s.Max() != 0 {
		t.Fatal("empty series not all-zero")
	}
	if r.MaxMigrationsPerHour() != 0 {
		t.Fatal("empty recorder has nonzero peak rate")
	}
}

package ascii

import (
	"bytes"
	"strings"
	"testing"
)

func TestChartRendersAllSeries(t *testing.T) {
	var buf bytes.Buffer
	x := []float64{0, 1, 2, 3}
	err := Chart(&buf, "test", x, map[string][]float64{
		"up":   {0, 1, 2, 3},
		"down": {3, 2, 1, 0},
	}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Fatal("missing legend entries")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("missing series glyphs")
	}
	if lines := strings.Count(out, "\n"); lines < 12 {
		t.Fatalf("chart too short: %d lines", lines)
	}
}

func TestChartEmptyData(t *testing.T) {
	var buf bytes.Buffer
	if err := Chart(&buf, "empty", nil, nil, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestChartConstantSeries(t *testing.T) {
	var buf bytes.Buffer
	err := Chart(&buf, "const", []float64{0, 1}, map[string][]float64{"c": {5, 5}}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("constant series not drawn")
	}
}

func TestChartDeterministicGlyphOrder(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		_ = Chart(&buf, "t", []float64{0, 1}, map[string][]float64{
			"b": {1, 2}, "a": {2, 1}, "c": {0, 0},
		}, 30, 6)
		return buf.String()
	}
	if render() != render() {
		t.Fatal("map iteration leaked into chart output")
	}
}

func TestHistogram(t *testing.T) {
	var buf bytes.Buffer
	err := Histogram(&buf, "hist", []float64{5, 15, 25}, []float64{0.5, 0.3, 0.2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hist") || !strings.Contains(out, "#") {
		t.Fatalf("histogram output malformed:\n%s", out)
	}
	// Largest bin gets the longest bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Fatal("bars not proportional to frequency")
	}
}

func TestHistogramAllZero(t *testing.T) {
	var buf bytes.Buffer
	if err := Histogram(&buf, "z", []float64{1, 2}, []float64{0, 0}, 20); err != nil {
		t.Fatal(err)
	}
}

// Package ascii renders experiment series as terminal charts and CSV, so the
// cmd/ binaries can show every reproduced figure without any plotting
// dependency.
package ascii

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart draws one or more y-series sharing an x axis as an ASCII line chart
// of the given width and height. Series beyond the first are overlaid with
// distinct glyphs.
func Chart(w io.Writer, title string, x []float64, series map[string][]float64, width, height int) error {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	if len(x) == 0 || len(series) == 0 {
		_, err := fmt.Fprintf(w, "%s\n  (no data)\n", title)
		return err
	}
	// Stable series order for deterministic glyph assignment.
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sortStrings(names)

	glyphs := []byte{'*', '+', 'o', 'x', '#', '@'}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, name := range names {
		for _, v := range series[name] {
			if v < ymin {
				ymin = v
			}
			if v > ymax {
				ymax = v
			}
		}
	}
	if ymin > 0 && ymin < 0.25*(ymax-ymin+1e-12) {
		ymin = 0 // anchor near-zero baselines at zero
	}
	if ymax <= ymin { // degenerate range: every sample equal
		ymax = ymin + 1
	}
	xmin, xmax := x[0], x[len(x)-1]
	if xmax <= xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, name := range names {
		g := glyphs[si%len(glyphs)]
		ys := series[name]
		for i, xv := range x {
			if i >= len(ys) {
				break
			}
			col := int(float64(width-1) * (xv - xmin) / (xmax - xmin))
			row := height - 1 - int(float64(height-1)*(ys[i]-ymin)/(ymax-ymin))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = g
			}
		}
	}

	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.3g", ymin)
		}
		if _, err := fmt.Fprintf(w, "%s |%s|\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "         %-*.4g%*.4g\n", width/2, xmin, width-width/2, xmax); err != nil {
		return err
	}
	for si, name := range names {
		if _, err := fmt.Fprintf(w, "           %c %s\n", glyphs[si%len(glyphs)], name); err != nil {
			return err
		}
	}
	return nil
}

// Histogram draws bin frequencies as horizontal bars.
func Histogram(w io.Writer, title string, centers, freqs []float64, width int) error {
	if width < 10 {
		width = 10
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	maxF := 0.0
	for _, f := range freqs {
		if f > maxF {
			maxF = f
		}
	}
	if maxF == 0 {
		maxF = 1
	}
	for i, c := range centers {
		if i >= len(freqs) {
			break
		}
		n := int(float64(width) * freqs[i] / maxF)
		if _, err := fmt.Fprintf(w, "%8.3g |%s %.4f\n", c, strings.Repeat("#", n), freqs[i]); err != nil {
			return err
		}
	}
	return nil
}

// sortStrings is an allocation-free insertion sort (tiny inputs only).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

package experiments

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
)

// TestCheckpointResumeDifferential pins the checkpoint engine's hard
// guarantee: run-to-T, checkpoint, restore, continue-to-horizon produces
// EXACTLY the bytes of the uninterrupted run — every sampled series, the
// aggregates, the per-server utilization matrix and the event journal (the
// resumed journal concatenated after the prefix journal) — for seeds 42–44
// at workers 0, 1 and 8. The checkpoint crosses the JSON wire format on the
// way, so serialization lossiness would also fail here.
func TestCheckpointResumeDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is 9 triple runs")
	}
	const cut = 2 * time.Hour
	for _, seed := range soaGoldenSeeds {
		for _, workers := range soaGoldenWorkers {
			// Uninterrupted truth.
			var full bytes.Buffer
			cfg, pol := soaGoldenConfig(t, seed, workers, &full)
			fullRes, err := cluster.Run(cfg, pol)
			if err != nil {
				t.Fatalf("seed %d workers %d: uninterrupted: %v", seed, workers, err)
			}
			want := marshalSoAResult(fullRes, full.Bytes())

			// Prefix to the cut; capture and stop.
			var prefix bytes.Buffer
			cfgP, polP := soaGoldenConfig(t, seed, workers, &prefix)
			var ck *checkpoint.Checkpoint
			if _, err := cluster.Run(cfgP, polP,
				cluster.WithCheckpointAt(cut, func(c *checkpoint.Checkpoint) error { ck = c; return nil }),
				cluster.WithCheckpointStop(),
			); err != nil {
				t.Fatalf("seed %d workers %d: prefix: %v", seed, workers, err)
			}
			if ck == nil {
				t.Fatalf("seed %d workers %d: sink never called", seed, workers)
			}

			// Cross the wire format: what resumes is the decoded bytes, not
			// the in-memory object.
			var wire bytes.Buffer
			if err := checkpoint.Write(&wire, ck); err != nil {
				t.Fatalf("seed %d workers %d: write: %v", seed, workers, err)
			}
			decoded, err := checkpoint.Read(&wire)
			if err != nil {
				t.Fatalf("seed %d workers %d: read: %v", seed, workers, err)
			}

			// Resume to the horizon.
			var suffix bytes.Buffer
			cfgR, polR := soaGoldenConfig(t, seed, workers, &suffix)
			resumedRes, err := cluster.Run(cfgR, polR, cluster.WithResume(decoded))
			if err != nil {
				t.Fatalf("seed %d workers %d: resume: %v", seed, workers, err)
			}
			events := append(append([]byte(nil), prefix.Bytes()...), suffix.Bytes()...)
			got := marshalSoAResult(resumedRes, events)
			if !bytes.Equal(got, want) {
				t.Errorf("seed %d workers %d: resumed run diverges from uninterrupted (%d vs %d bytes)\nfirst diff: %s",
					seed, workers, len(got), len(want), firstDiffLine(got, want))
			}
		}
	}
}

// TestCheckpointCaptureIsPure verifies that capturing a checkpoint mid-run
// (without stopping) changes nothing: the checkpointing run's bytes equal
// the non-checkpointing run's.
func TestCheckpointCaptureIsPure(t *testing.T) {
	if testing.Short() {
		t.Skip("two full runs")
	}
	seed := soaGoldenSeeds[0]
	var plain bytes.Buffer
	cfg, pol := soaGoldenConfig(t, seed, 0, &plain)
	plainRes, err := cluster.Run(cfg, pol)
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	want := marshalSoAResult(plainRes, plain.Bytes())

	var observed bytes.Buffer
	cfgC, polC := soaGoldenConfig(t, seed, 0, &observed)
	captured := false
	capRes, err := cluster.Run(cfgC, polC,
		cluster.WithCheckpointAt(2*time.Hour, func(*checkpoint.Checkpoint) error {
			captured = true
			return nil
		}))
	if err != nil {
		t.Fatalf("checkpointing run: %v", err)
	}
	if !captured {
		t.Fatal("sink never called")
	}
	got := marshalSoAResult(capRes, observed.Bytes())
	if !bytes.Equal(got, want) {
		t.Errorf("checkpointing run diverges from plain run\nfirst diff: %s", firstDiffLine(got, want))
	}
}

// firstDiffLine locates the first line where two marshalled outputs diverge,
// for failure diagnostics.
func firstDiffLine(got, want []byte) string {
	g := bytes.Split(got, []byte("\n"))
	w := bytes.Split(want, []byte("\n"))
	n := len(g)
	if len(w) < n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(g[i], w[i]) {
			return fmt.Sprintf("line %d: got %s want %s", i, truncate(g[i]), truncate(w[i]))
		}
	}
	return "length mismatch only"
}

func truncate(b []byte) string {
	if len(b) > 160 {
		b = b[:160]
	}
	return string(b)
}

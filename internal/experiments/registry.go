package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ecocloud"
)

// RunRequest parameterizes any registered experiment uniformly. Zero values
// mean "use the experiment's paper defaults":
//
//   - Config: non-zero fields override the experiment's default RunConfig
//     (Config.Obs is always threaded through, even when nil);
//   - Eco: replaces the ecoCloud policy parameters where the experiment uses
//     the policy (daily, assignonly, sensitivity base, multiresource,
//     comparison) — nil keeps the paper's values;
//   - Scale: shrinks the fleet and workload proportionally before Config
//     overrides apply (0 and 1 both mean paper scale);
//   - Exact: selects the exact combinatorial A_s (Eqs. 6–9) where a fluid
//     model is involved.
type RunRequest struct {
	Config RunConfig
	Eco    *ecocloud.Config
	Scale  float64
	Exact  bool
}

// scale returns the effective scale factor, treating 0 as 1.
func (r RunRequest) scale() float64 {
	if r.Scale <= 0 || r.Scale > 1 {
		return 1
	}
	return r.Scale
}

// Apply merges the request into an experiment's default RunConfig: Scale
// first (so explicit overrides win), then the non-zero Config fields.
func (r RunRequest) Apply(def RunConfig) RunConfig {
	if s := r.scale(); s < 1 {
		def.Servers = scaleInt(def.Servers, s)
		def.NumVMs = scaleInt(def.NumVMs, s)
	}
	return r.Config.overlay(def)
}

// RunResult is what every registered experiment returns: the figures it
// produced (CSV-ready, in paper order) plus the experiment-specific result
// value for callers that want more than the figures (e.g. *DailyResult for
// ascii charts). Raw may be nil.
type RunResult struct {
	Name    string
	Figures []*Figure
	Raw     any
}

// Experiment is a named entry point with the uniform Run signature.
type Experiment struct {
	Name        string
	Description string
	Run         func(RunRequest) (*RunResult, error)
}

// registry holds the built-in experiments in registration order (the paper's
// presentation order, which ecobench preserves in its output).
var registry []Experiment

// Register adds an experiment. It panics on a duplicate name: registration
// happens at init time and a collision is a programming error.
func Register(e Experiment) {
	if e.Name == "" || e.Run == nil {
		panic("experiments: Register needs a name and a Run function")
	}
	for _, got := range registry {
		if got.Name == e.Name {
			panic(fmt.Sprintf("experiments: duplicate registration of %q", e.Name))
		}
	}
	registry = append(registry, e)
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// All returns the experiments in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Names returns the registered names sorted alphabetically (for -help text
// and error messages; use All for run order).
func Names() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	sort.Strings(names)
	return names
}

// Run looks up and runs one experiment by name.
func Run(name string, req RunRequest) (*RunResult, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return e.Run(req)
}

func init() {
	Register(Experiment{
		Name:        "fig2",
		Description: "Fig. 2: assignment probability function f_a for p=2,3,5 (analytic)",
		Run: func(RunRequest) (*RunResult, error) {
			f, err := Fig2()
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "fig2", Figures: []*Figure{f}}, nil
		},
	})
	Register(Experiment{
		Name:        "fig3",
		Description: "Fig. 3: migration probability functions f_l, f_h (analytic)",
		Run: func(RunRequest) (*RunResult, error) {
			f, err := Fig3()
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "fig3", Figures: []*Figure{f}}, nil
		},
	})
	Register(Experiment{
		Name:        "traces",
		Description: "Figs. 4–5: workload characterization (utilization and deviation distributions)",
		Run: func(req RunRequest) (*RunResult, error) {
			opts := DefaultTraceOptions()
			opts.RunConfig = req.Apply(opts.RunConfig)
			f4, err := Fig4(opts)
			if err != nil {
				return nil, err
			}
			f5, err := Fig5(opts)
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "traces", Figures: []*Figure{f4, f5}}, nil
		},
	})
	Register(Experiment{
		Name:        "daily",
		Description: "Figs. 6–11: the two-day trace-driven consolidation run",
		Run: func(req RunRequest) (*RunResult, error) {
			opts := DefaultDailyOptions()
			opts.RunConfig = req.Apply(opts.RunConfig)
			if req.Eco != nil {
				opts.Eco = *req.Eco
			}
			res, err := Daily(opts)
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "daily", Figures: res.Figures(), Raw: res}, nil
		},
	})
	Register(Experiment{
		Name:        "assignonly",
		Description: "Figs. 12–13: assignment-only simulation vs the fluid model",
		Run: func(req RunRequest) (*RunResult, error) {
			opts := DefaultAssignOnlyOptions()
			opts.RunConfig = req.Apply(opts.RunConfig)
			opts.Churn.ArrivalPerHour *= req.scale()
			opts.Exact = req.Exact
			if req.Eco != nil {
				opts.Eco = *req.Eco
			}
			res, err := AssignOnly(opts)
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "assignonly", Figures: []*Figure{res.Fig12(), res.Fig13()}, Raw: res}, nil
		},
	})
	Register(Experiment{
		Name:        "fluiderror",
		Description: "§IV approximation quality: Eq. 11 vs the exact Eqs. 6–9",
		Run: func(req RunRequest) (*RunResult, error) {
			opts := DefaultFluidErrorOptions()
			opts.RunConfig = req.Apply(opts.RunConfig)
			f, err := FluidError(opts)
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "fluiderror", Figures: []*Figure{f}}, nil
		},
	})
	Register(Experiment{
		Name:        "sensitivity",
		Description: "§III sensitivity of ecoCloud to Th, Tl, alpha/beta",
		Run: func(req RunRequest) (*RunResult, error) {
			opts := DefaultSensitivityOptions()
			opts.RunConfig = req.Apply(opts.RunConfig)
			if req.Eco != nil {
				opts.Base = *req.Eco
			}
			points, err := Sensitivity(opts)
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "sensitivity", Figures: []*Figure{SensitivityFigure(points)}, Raw: points}, nil
		},
	})
	Register(Experiment{
		Name:        "multiresource",
		Description: "§V extension: CPU-only vs multi-resource strategies on a RAM-tight mix",
		Run: func(req RunRequest) (*RunResult, error) {
			opts := DefaultMultiResourceOptions()
			opts.RunConfig = req.Apply(opts.RunConfig)
			if req.Eco != nil {
				opts.Eco = *req.Eco
			}
			res, err := MultiResource(opts)
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "multiresource", Figures: []*Figure{res.Figure()}, Raw: res}, nil
		},
	})
	Register(Experiment{
		Name:        "protocolday",
		Description: "one day of the complete distributed system on the wire",
		Run: func(req RunRequest) (*RunResult, error) {
			opts := DefaultProtocolDayOptions()
			opts.RunConfig = req.Apply(opts.RunConfig)
			opts.Churn.ArrivalPerHour *= req.scale()
			f, err := ProtocolDay(opts)
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "protocolday", Figures: []*Figure{f}}, nil
		},
	})
	Register(Experiment{
		Name:        "scalability",
		Description: "footnote-1 study: protocol cost per placement vs fleet size",
		Run: func(req RunRequest) (*RunResult, error) {
			opts := DefaultScalabilityOptions()
			if req.scale() < 1 {
				opts.FleetSizes = []int{50, 100, 200}
				opts.Placements = 100
			}
			opts.RunConfig = req.Config.overlay(opts.RunConfig)
			points, err := Scalability(opts)
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "scalability", Figures: []*Figure{ScalabilityFigure(points)}, Raw: points}, nil
		},
	})
	Register(Experiment{
		Name:        "parscale",
		Description: "deterministic parallel control round: 10k-100k-server sweep, every worker count verified bit-identical",
		Run: func(req RunRequest) (*RunResult, error) {
			opts := DefaultParScaleOptions()
			if req.scale() < 1 {
				// Quick runs: small fleets, short horizon, but the full
				// worker-count ladder — the parity check is the point.
				opts.FleetSizes = []int{300, 600}
				opts.WorkerCounts = []int{0, 1, 2, 8}
				opts.Horizon = time.Hour
			}
			opts.RunConfig = req.Config.overlay(opts.RunConfig)
			points, err := ParScale(opts)
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "parscale", Figures: []*Figure{ParScaleFigure(points)}, Raw: points}, nil
		},
	})
	Register(Experiment{
		Name:        "faults",
		Description: "graceful degradation: MTBF/MTTR sweep with wake failures and a lossy fabric",
		Run: func(req RunRequest) (*RunResult, error) {
			opts := DefaultFaultsOptions()
			opts.RunConfig = req.Apply(opts.RunConfig)
			opts.Churn.ArrivalPerHour *= req.scale()
			if req.scale() < 1 {
				// Quick runs: one hostile and one mild cell instead of the grid.
				opts.MTBFs = []time.Duration{2 * time.Hour}
				opts.MTTRs = []time.Duration{10 * time.Minute}
			}
			f, err := Faults(opts)
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "faults", Figures: []*Figure{f}}, nil
		},
	})
	Register(Experiment{
		Name:        "comparison",
		Description: "ecoCloud vs centralized baselines (BFD, FFD, all-on) on the identical workload",
		Run: func(req RunRequest) (*RunResult, error) {
			opts := DefaultComparisonOptions()
			opts.RunConfig = req.Apply(opts.RunConfig)
			if req.Eco != nil {
				opts.Eco = *req.Eco
			}
			res, err := Comparison(opts)
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "comparison", Figures: []*Figure{res.Figure()}, Raw: res}, nil
		},
	})
	Register(Experiment{
		Name:        "knee",
		Description: "max sustainable churn rate vs fleet size: stepped load ramp with an overload stop-rule (ecoCloud vs BFD)",
		Run: func(req RunRequest) (*RunResult, error) {
			opts := DefaultKneeOptions()
			if req.scale() < 1 {
				// Quick runs: one small fleet, short coarse slots, a tight
				// tolerance — enough to exercise the ramp end to end and
				// still cross the knee within the ladder.
				opts.FleetSizes = []int{20}
				opts.Slot = time.Hour
				opts.MaxSlots = 6
				opts.StartPerServerHour = 16
				opts.StepPerServerHour = 8
				opts.Tolerance = 1
			}
			opts.RunConfig = req.Config.overlay(opts.RunConfig)
			if req.Eco != nil {
				opts.Eco = *req.Eco
			}
			res, err := Knee(opts)
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "knee", Figures: []*Figure{res.Figure()}, Raw: res}, nil
		},
	})
	Register(Experiment{
		Name:        "forkedsweep",
		Description: "sensitivity grid branched from one checkpointed warm prefix, with an identity-fork byte-identity proof",
		Run: func(req RunRequest) (*RunResult, error) {
			opts := DefaultForkedSweepOptions()
			if req.scale() < 1 {
				// Quick runs: short prefix and suffix, one value per axis,
				// one replicate — the proof comparison is the point.
				opts.Horizon = 4 * time.Hour
				opts.Warmup = time.Hour
				opts.ThValues = []float64{0.85}
				opts.TlValues = []float64{0.40}
				opts.Replicates = 1
			}
			opts.RunConfig = req.Apply(opts.RunConfig)
			if req.Eco != nil {
				opts.Base = *req.Eco
			}
			res, err := ForkedSweep(opts)
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "forkedsweep", Figures: []*Figure{res.Figure()}, Raw: res}, nil
		},
	})
}

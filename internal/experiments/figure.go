// Package experiments reproduces every figure of the paper's evaluation, one
// driver per figure (or per figure group sharing a run). Each driver returns
// Figure values — plain numeric tables with named columns — that the cmd/
// binaries render as ASCII charts and CSV, and that EXPERIMENTS.md quotes.
//
// Every driver takes an options struct whose zero-value-adjusted default is
// the paper's full scale; tests and quick runs shrink the scale through the
// same options.
package experiments

import (
	"bufio"
	"fmt"
	"io"
)

// Figure is one reproduced plot: rows of numeric columns plus free-form
// notes recording the measured values of the paper's in-text claims.
type Figure struct {
	ID      string // e.g. "fig7"
	Title   string
	Columns []string
	Rows    [][]float64
	Notes   []string
}

// Add appends a row; the column count must match.
func (f *Figure) Add(row ...float64) {
	if len(row) != len(f.Columns) {
		panic(fmt.Sprintf("experiments: %s row has %d values for %d columns", f.ID, len(row), len(f.Columns)))
	}
	f.Rows = append(f.Rows, row)
}

// Notef appends a formatted note.
func (f *Figure) Notef(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Column returns the values of the named column. It panics on unknown names
// (a typo in an experiment is a bug, not a runtime condition).
func (f *Figure) Column(name string) []float64 {
	for i, c := range f.Columns {
		if c == name {
			out := make([]float64, len(f.Rows))
			for r, row := range f.Rows {
				out[r] = row[i]
			}
			return out
		}
	}
	panic(fmt.Sprintf("experiments: figure %s has no column %q", f.ID, name))
}

// WriteCSV emits the figure as CSV with a comment header carrying the title
// and notes.
func (f *Figure) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %s: %s\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(bw, "# note: %s\n", n); err != nil {
			return err
		}
	}
	for i, c := range f.Columns {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(c); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	for _, row := range f.Rows {
		for i, v := range row {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%g", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteMarkdown renders the figure as a Markdown section: title, notes, and
// the data as a table. Wide or long figures (per-server matrices) emit only
// their shape and notes — the CSV carries the full data.
func (f *Figure) WriteMarkdown(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "## %s — %s\n\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(bw, "- %s\n", n); err != nil {
			return err
		}
	}
	if len(f.Notes) > 0 {
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	const maxCols, maxRows = 10, 60
	if len(f.Columns) > maxCols || len(f.Rows) > maxRows {
		_, err := fmt.Fprintf(bw, "(%d columns × %d rows — see %s.csv)\n\n",
			len(f.Columns), len(f.Rows), f.ID)
		if err != nil {
			return err
		}
		return bw.Flush()
	}
	for i, c := range f.Columns {
		if i > 0 {
			if _, err := bw.WriteString(" | "); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(c); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n"); err != nil {
		return err
	}
	for i := range f.Columns {
		if i > 0 {
			if _, err := bw.WriteString(" | "); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("---"); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n"); err != nil {
		return err
	}
	for _, row := range f.Rows {
		for i, v := range row {
			if i > 0 {
				if _, err := bw.WriteString(" | "); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%g", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	return bw.Flush()
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/ecocloud"
	"repro/internal/trace"
)

// MultiResourceOptions parameterizes the §V end-to-end study: the same
// RAM-aware workload and RAM-equipped fleet, placed by (a) the paper's
// CPU-only algorithm, (b) the all-trials strategy, and (c) the
// critical-resource-plus-constraints strategy. The CPU-only policy is blind
// to memory, so on a memory-tight mix it overcommits RAM; the extension's
// job is to eliminate that while keeping consolidation quality.
type MultiResourceOptions struct {
	RunConfig

	// RAMPerCoreMB equips each server with this much memory per core. The
	// default (1536 MB/core) is deliberately tight against the workload so
	// the CPU-only policy has something to get wrong.
	RAMPerCoreMB float64

	Eco     ecocloud.Config
	Gen     trace.GenConfig
	Power   dc.PowerModel
	Control time.Duration
	Sample  time.Duration
}

// DefaultMultiResourceOptions returns a 100-server / 1,500-VM day with an
// anti-correlated CPU/RAM mix.
func DefaultMultiResourceOptions() MultiResourceOptions {
	gen := trace.DefaultGenConfig()
	gen.NumVMs = 1500
	gen.Horizon = 24 * time.Hour
	gen.RAMMedianMB = 200
	gen.RAMSigma = 0.7
	gen.RAMAntiCorr = true
	return MultiResourceOptions{
		RunConfig:    RunConfig{Servers: 100, NumVMs: gen.NumVMs, Horizon: gen.Horizon, Seed: 1},
		RAMPerCoreMB: 1536,
		Eco:          ecocloud.DefaultConfig(),
		Gen:          gen,
		Power:        dc.DefaultPowerModel(),
		Control:      5 * time.Minute,
		Sample:       30 * time.Minute,
	}
}

// MultiResourceResult holds the three runs in order: cpu-only, all-trials,
// critical.
type MultiResourceResult struct {
	Order   []string
	Results map[string]*cluster.Result
}

// MultiResource runs the three variants on the identical workload.
func MultiResource(opts MultiResourceOptions) (*MultiResourceResult, error) {
	gen := opts.Gen
	gen.NumVMs = opts.NumVMs
	gen.Horizon = opts.Horizon
	ws, err := trace.Generate(gen, opts.Seed)
	if err != nil {
		return nil, err
	}
	specs := dc.WithRAM(dc.StandardFleet(opts.Servers), opts.RAMPerCoreMB)

	variants := []struct {
		name string
		ram  *ecocloud.RAMConfig
	}{
		{"cpu-only", nil},
		{"all-trials", &ecocloud.RAMConfig{Ta: 0.90, P: 3, Strategy: ecocloud.AllTrials}},
		{"critical", &ecocloud.RAMConfig{Ta: 0.90, P: 3, Strategy: ecocloud.CriticalPlusConstraints}},
	}
	out := &MultiResourceResult{Results: map[string]*cluster.Result{}}
	names := make([]string, len(variants))
	results := make([]*cluster.Result, len(variants))
	err = forEach(len(variants), func(i int) error {
		cfg := opts.Eco
		cfg.RAM = variants[i].ram
		pol, err := ecocloud.New(cfg, opts.Seed+1)
		if err != nil {
			return err
		}
		// Variants run concurrently; a shared recorder would interleave
		// their journals nondeterministically, so variants run unobserved.
		ccfg := opts.ClusterConfig(specs, ws, opts.Control, opts.Sample, opts.Power)
		ccfg.Obs = nil
		res, err := cluster.Run(ccfg, pol)
		if err != nil {
			return fmt.Errorf("experiments: multi-resource %s: %v", variants[i].name, err)
		}
		names[i] = variants[i].name
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		out.Order = append(out.Order, name)
		out.Results[name] = results[i]
	}
	return out, nil
}

// Figure materializes the comparison: one row per variant.
func (m *MultiResourceResult) Figure() *Figure {
	f := &Figure{
		ID:    "multiresource",
		Title: "§V extension: CPU-only vs multi-resource strategies on a RAM-tight mix",
		Columns: []string{
			"variant_idx", "energy_kwh", "mean_active_servers",
			"cpu_overload_pct", "ram_overcommit_pct", "migrations", "saturations",
		},
	}
	for i, name := range m.Order {
		r := m.Results[name]
		f.Add(float64(i), r.EnergyKWh, r.MeanActiveServers,
			100*r.VMOverloadTimeFrac, 100*r.RAMOverloadTimeFrac,
			float64(r.TotalLowMigrations+r.TotalHighMigrations), float64(r.Saturations))
		f.Notef("variant %d = %s: %.1f kWh, %.1f active, %.4f%% CPU overload, %.4f%% RAM overcommit",
			i, name, r.EnergyKWh, r.MeanActiveServers,
			100*r.VMOverloadTimeFrac, 100*r.RAMOverloadTimeFrac)
	}
	return f
}

package experiments

import (
	"fmt"

	"repro/internal/trace"
)

// TraceOptions parameterizes the workload-characterization figures.
// RunConfig semantics: NumVMs and Horizon drive the generator
// (Gen.NumVMs/Gen.Horizon); Servers is unused — no fleet is simulated.
type TraceOptions struct {
	RunConfig
	Gen  trace.GenConfig
	Bins int
}

// DefaultTraceOptions is the paper scale: 6,000 VMs over 48 hours.
func DefaultTraceOptions() TraceOptions {
	gen := trace.DefaultGenConfig()
	return TraceOptions{
		RunConfig: RunConfig{NumVMs: gen.NumVMs, Horizon: gen.Horizon, Seed: 1},
		Gen:       gen,
		Bins:      25,
	}
}

// Fig4 reproduces Figure 4: the distribution of per-VM average CPU
// utilization (percent of reference capacity).
func Fig4(opts TraceOptions) (*Figure, error) {
	opts.Gen.NumVMs = opts.NumVMs
	opts.Gen.Horizon = opts.Horizon
	set, err := trace.Generate(opts.Gen, opts.Seed)
	if err != nil {
		return nil, err
	}
	h := set.AvgUtilHistogram(opts.Bins)
	f := &Figure{
		ID:      "fig4",
		Title:   "Distribution of the average CPU utilization of the VMs",
		Columns: []string{"avg_util_pct", "freq"},
	}
	for i := 0; i < h.Bins(); i++ {
		f.Add(h.BinCenter(i), h.Freq(i))
	}
	f.Notef("fraction of VMs averaging under 20%%: %.3f (paper: 'under 20%% for most VMs')",
		h.FractionWithin(0, 20))
	f.Notef("fraction above 50%% (heavy tail): %.4f", h.FractionWithin(50, 100))
	return f, nil
}

// Fig5 reproduces Figure 5: the distribution of the deviation between the
// punctual and average CPU utilization of the same VM.
func Fig5(opts TraceOptions) (*Figure, error) {
	opts.Gen.NumVMs = opts.NumVMs
	opts.Gen.Horizon = opts.Horizon
	set, err := trace.Generate(opts.Gen, opts.Seed)
	if err != nil {
		return nil, err
	}
	bins := opts.Bins
	if bins%2 == 1 {
		bins++ // symmetric around zero
	}
	h := set.DeviationHistogram(bins)
	f := &Figure{
		ID:      "fig5",
		Title:   "Distribution of the deviation of the CPU utilization",
		Columns: []string{"deviation_pct", "freq"},
	}
	for i := 0; i < h.Bins(); i++ {
		f.Add(h.BinCenter(i), h.Freq(i))
	}
	within := h.FractionWithin(-10, 10)
	f.Notef("deviations within ±10%%: %.3f (paper: ~94%%)", within)
	if within < 0.85 {
		return nil, fmt.Errorf("experiments: fig5 deviations within ±10%% = %.3f, generator mis-calibrated", within)
	}
	return f, nil
}

package experiments

import (
	"fmt"

	"repro/internal/metrics"
)

// Replication is one metric's distribution across repeated runs with
// independent seeds. The paper reports single runs; repeating the daily
// experiment quantifies how much of each headline number is seed noise.
type Replication struct {
	Metric string
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
}

// ReplicateDaily runs the §III experiment once per seed and summarizes the
// headline metrics across the runs.
func ReplicateDaily(opts DailyOptions, seeds []uint64) ([]Replication, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: replicate needs at least one seed")
	}
	accs := map[string]*metrics.Welford{}
	order := []string{
		"energy_kwh", "mean_active_servers", "migrations_total",
		"overload_pct", "activations", "hibernations", "peak_migrations_per_hour",
	}
	for _, m := range order {
		accs[m] = &metrics.Welford{}
	}
	// Runs execute in parallel (they are independent); accumulation happens
	// afterwards in seed order so the Welford state is deterministic.
	results := make([]*DailyResult, len(seeds))
	err := forEach(len(seeds), func(i int) error {
		o := opts
		o.Seed = seeds[i]
		// Replicas run concurrently: sharing the caller's recorder would
		// interleave their journal lines and counters nondeterministically
		// across runs, so each replica executes unobserved — the cross-seed
		// summary, not per-run telemetry, is this experiment's product.
		o.Obs = nil
		res, err := Daily(o)
		if err != nil {
			return fmt.Errorf("experiments: replicate seed %d: %v", seeds[i], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		r := res.Run
		accs["energy_kwh"].Add(r.EnergyKWh)
		accs["mean_active_servers"].Add(r.MeanActiveServers)
		accs["migrations_total"].Add(float64(r.TotalLowMigrations + r.TotalHighMigrations))
		accs["overload_pct"].Add(100 * r.VMOverloadTimeFrac)
		accs["activations"].Add(float64(r.TotalActivations))
		accs["hibernations"].Add(float64(r.TotalHibernations))
		accs["peak_migrations_per_hour"].Add(r.MaxMigrationsPerHour)
	}
	out := make([]Replication, 0, len(order))
	for _, m := range order {
		w := accs[m]
		out = append(out, Replication{
			Metric: m, N: w.N(), Mean: w.Mean(), Std: w.Stddev(),
			Min: w.Min(), Max: w.Max(),
		})
	}
	return out, nil
}

// ReplicationFigure materializes the summary (metric_idx follows the order
// ReplicateDaily emits).
func ReplicationFigure(reps []Replication) *Figure {
	f := &Figure{
		ID:      "replication",
		Title:   "Daily-run headline metrics across independent seeds (mean ± sd)",
		Columns: []string{"metric_idx", "n", "mean", "std", "min", "max"},
	}
	for i, r := range reps {
		f.Add(float64(i), float64(r.N), r.Mean, r.Std, r.Min, r.Max)
		f.Notef("%s: %.3f ± %.3f (min %.3f, max %.3f, n=%d)",
			r.Metric, r.Mean, r.Std, r.Min, r.Max, r.N)
	}
	return f
}

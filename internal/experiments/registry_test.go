package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRegistryRoundTrip runs every registered experiment at a small scale
// with a live recorder and checks the uniform contract: figures come back
// non-empty, and the run's manifest marshals to valid JSON with the metrics
// snapshot folded in.
func TestRegistryRoundTrip(t *testing.T) {
	if len(All()) < 10 {
		t.Fatalf("registry has %d experiments, expected the full paper set", len(All()))
	}
	// Overrides that keep the heavyweight experiments fast; the Scale knob
	// shrinks the rest.
	small := map[string]RunConfig{
		"daily":       {Servers: 15, NumVMs: 225, Horizon: 6 * time.Hour},
		"assignonly":  {Servers: 15, NumVMs: 225, Horizon: 6 * time.Hour},
		"sensitivity": {Servers: 10, NumVMs: 150, Horizon: 3 * time.Hour},
		"comparison":  {Servers: 10, NumVMs: 150, Horizon: 4 * time.Hour},
		"protocolday": {Servers: 15, NumVMs: 225, Horizon: 4 * time.Hour},
		"fluiderror":  {Servers: 20, Horizon: 2 * time.Hour},
		"traces":      {NumVMs: 200, Horizon: 6 * time.Hour},
		"multiresource": {
			Servers: 12, NumVMs: 180, Horizon: 4 * time.Hour,
		},
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			rec := obs.NewRecorder(nil, nil)
			cfg := small[e.Name]
			cfg.Obs = rec
			manifest := obs.NewManifest(e.Name, cfg, 1)
			res, err := e.Run(RunRequest{Config: cfg, Scale: 0.05})
			if err != nil {
				t.Fatal(err)
			}
			if res.Name != e.Name {
				t.Fatalf("result name %q, want %q", res.Name, e.Name)
			}
			if len(res.Figures) == 0 {
				t.Fatal("no figures returned")
			}
			for _, f := range res.Figures {
				if f.ID == "" || len(f.Rows) == 0 {
					t.Fatalf("figure %q is empty", f.ID)
				}
			}

			manifest.Finish(rec)
			dir := t.TempDir()
			path, err := manifest.WriteFile(dir)
			if err != nil {
				t.Fatal(err)
			}
			if filepath.Base(path) != "run.json" {
				t.Fatalf("manifest path = %q", path)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var got obs.Manifest
			if err := json.Unmarshal(data, &got); err != nil {
				t.Fatalf("manifest is not valid JSON: %v", err)
			}
			if got.Experiment != e.Name || got.GoVersion == "" || got.WallSeconds < 0 {
				t.Fatalf("manifest round-trip lost fields: %+v", got)
			}
		})
	}
}

// TestRegistryUnknownName checks Run's error path names the candidates.
func TestRegistryUnknownName(t *testing.T) {
	if _, err := Run("nope", RunRequest{}); err == nil {
		t.Fatal("expected an error for an unknown experiment")
	}
}

// TestRunRequestApply checks the merge order: scale first, then explicit
// non-zero overrides win.
func TestRunRequestApply(t *testing.T) {
	def := RunConfig{Servers: 400, NumVMs: 6000, Horizon: 48 * time.Hour, Seed: 1}
	got := RunRequest{Scale: 0.1, Config: RunConfig{Servers: 77}}.Apply(def)
	if got.Servers != 77 {
		t.Fatalf("explicit override lost: servers = %d", got.Servers)
	}
	if got.NumVMs != 600 {
		t.Fatalf("scale not applied: vms = %d", got.NumVMs)
	}
	if got.Horizon != 48*time.Hour || got.Seed != 1 {
		t.Fatalf("defaults clobbered: %+v", got)
	}
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/ecocloud"
	"repro/internal/trace"
)

// SensitivityOptions parameterizes the §III sensitivity study on the
// migration-function parameters. The paper summarizes three findings
// (results "not reported for the sake of brevity"); this driver regenerates
// the data behind them:
//
//  1. Th must be above Ta, otherwise high migrations fire before packing can
//     exploit the CPU to the desired extent;
//  2. Tl should be set so active servers are never utilized under ~40%;
//  3. alpha and beta trade migration frequency against the time a server
//     may stay under-/over-utilized.
type SensitivityOptions struct {
	RunConfig

	Base    ecocloud.Config
	Gen     trace.GenConfig
	Power   dc.PowerModel
	Control time.Duration
	Sample  time.Duration

	ThValues   []float64
	TlValues   []float64
	AlphaBetas []float64
}

// DefaultSensitivityOptions sweeps around the paper's operating point at a
// reduced scale (the sweep multiplies run count; each point is a full
// simulation).
func DefaultSensitivityOptions() SensitivityOptions {
	gen := trace.DefaultGenConfig()
	gen.NumVMs = 1500
	gen.Horizon = 24 * time.Hour
	return SensitivityOptions{
		RunConfig:  RunConfig{Servers: 100, NumVMs: gen.NumVMs, Horizon: gen.Horizon, Seed: 1},
		Base:       ecocloud.DefaultConfig(),
		Gen:        gen,
		Power:      dc.DefaultPowerModel(),
		Control:    5 * time.Minute,
		Sample:     30 * time.Minute,
		ThValues:   []float64{0.85, 0.92, 0.95, 0.98},
		TlValues:   []float64{0.30, 0.40, 0.50, 0.60},
		AlphaBetas: []float64{0.10, 0.25, 0.50, 1.00},
	}
}

// SensitivityPoint is one sweep sample.
type SensitivityPoint struct {
	Param string
	Value float64

	MeanActive      float64
	MeanActiveUtil  float64 // mean utilization of active servers
	FracActiveUnder float64 // fraction of active-server samples under 0.4
	Migrations      int
	OverloadPct     float64
	EnergyKWh       float64
}

// Sensitivity runs the three sweeps and returns one point per (param,
// value). All sweeps share the workload.
func Sensitivity(opts SensitivityOptions) ([]SensitivityPoint, error) {
	gen := opts.Gen
	gen.NumVMs = opts.NumVMs
	gen.Horizon = opts.Horizon
	ws, err := trace.Generate(gen, opts.Seed)
	if err != nil {
		return nil, err
	}

	runPoint := func(param string, value float64, cfg ecocloud.Config) (SensitivityPoint, error) {
		pol, err := ecocloud.New(cfg, opts.Seed+1)
		if err != nil {
			return SensitivityPoint{}, fmt.Errorf("experiments: sensitivity %s=%v: %v", param, value, err)
		}
		// Sweep points run concurrently; a shared recorder would interleave
		// their journals nondeterministically, so points run unobserved.
		ccfg := opts.ClusterConfig(dc.StandardFleet(opts.Servers), ws, opts.Control, opts.Sample, opts.Power)
		ccfg.Obs = nil
		ccfg.RecordServerUtil = true
		res, err := cluster.Run(ccfg, pol)
		if err != nil {
			return SensitivityPoint{}, err
		}
		meanUtil, fracUnder := activeUtilStats(res, 0.40)
		return SensitivityPoint{
			Param:           param,
			Value:           value,
			MeanActive:      res.MeanActiveServers,
			MeanActiveUtil:  meanUtil,
			FracActiveUnder: fracUnder,
			Migrations:      res.TotalLowMigrations + res.TotalHighMigrations,
			OverloadPct:     100 * res.VMOverloadTimeFrac,
			EnergyKWh:       res.EnergyKWh,
		}, nil
	}

	type job struct {
		param string
		value float64
		cfg   ecocloud.Config
	}
	var jobs []job
	for _, th := range opts.ThValues {
		cfg := opts.Base
		cfg.Th = th
		if cfg.Tl >= th { // keep the config valid for Th below Tl sweeps
			cfg.Tl = th - 0.1
		}
		jobs = append(jobs, job{"Th", th, cfg})
	}
	for _, tl := range opts.TlValues {
		cfg := opts.Base
		cfg.Tl = tl
		jobs = append(jobs, job{"Tl", tl, cfg})
	}
	for _, ab := range opts.AlphaBetas {
		cfg := opts.Base
		cfg.Alpha = ab
		cfg.Beta = ab
		jobs = append(jobs, job{"alpha_beta", ab, cfg})
	}
	out := make([]SensitivityPoint, len(jobs))
	err = forEach(len(jobs), func(i int) error {
		p, err := runPoint(jobs[i].param, jobs[i].value, jobs[i].cfg)
		if err != nil {
			return err
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SensitivityFigure materializes the sweep as a table, one row per point.
// The param column is encoded: 0=Th, 1=Tl, 2=alpha_beta.
func SensitivityFigure(points []SensitivityPoint) *Figure {
	f := &Figure{
		ID:    "sensitivity",
		Title: "Sensitivity of ecoCloud to the migration parameters (§III)",
		Columns: []string{
			"param_idx", "value", "mean_active", "mean_active_util",
			"frac_active_under_0.4", "migrations", "overload_pct", "energy_kwh",
		},
	}
	idx := map[string]float64{"Th": 0, "Tl": 1, "alpha_beta": 2}
	for _, p := range points {
		f.Add(idx[p.Param], p.Value, p.MeanActive, p.MeanActiveUtil,
			p.FracActiveUnder, float64(p.Migrations), p.OverloadPct, p.EnergyKWh)
		f.Notef("%s=%.2f: mean active %.1f, active util %.3f, under-0.4 frac %.3f, %d migrations, %.4f%% overload",
			p.Param, p.Value, p.MeanActive, p.MeanActiveUtil, p.FracActiveUnder, p.Migrations, p.OverloadPct)
	}
	return f
}

// activeUtilStats computes, over all (sample, server) cells with an active
// server, the mean utilization and the fraction under the given threshold.
func activeUtilStats(res *cluster.Result, under float64) (mean, fracUnder float64) {
	sum, count, below := 0.0, 0, 0
	for _, row := range res.ServerUtil {
		for _, u := range row {
			if u <= 0 {
				continue // hibernated servers record 0
			}
			sum += u
			count++
			if u < under {
				below++
			}
		}
	}
	if count == 0 {
		return 0, 0
	}
	return sum / float64(count), float64(below) / float64(count)
}

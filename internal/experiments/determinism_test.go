package experiments

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
)

// runDailyGolden runs the registered "daily" experiment at test scale with
// the given seed and returns (a) every figure rendered to CSV, concatenated,
// and (b) the raw JSONL journal of the run — the two artifacts the
// determinism contract promises are a pure function of the seed.
func runDailyGolden(t *testing.T, seed uint64) (csv, journal []byte) {
	t.Helper()
	var jbuf bytes.Buffer
	res, err := Run("daily", RunRequest{
		Config: RunConfig{
			Servers: 20,
			NumVMs:  300,
			Horizon: 6 * time.Hour,
			Seed:    seed,
			Obs:     obs.NewRecorder(nil, obs.NewJournal(&jbuf)),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var cbuf bytes.Buffer
	for _, f := range res.Figures {
		fmt.Fprintf(&cbuf, "== %s ==\n", f.ID)
		if err := f.WriteCSV(&cbuf); err != nil {
			t.Fatal(err)
		}
	}
	return cbuf.Bytes(), jbuf.Bytes()
}

// TestDailyIsSeedDeterministic is the golden determinism test: two runs of
// the daily experiment with the same seed must produce byte-identical CSV
// output and byte-identical event journals. This is the bit-reproducibility
// claim DESIGN.md's determinism contract makes, checked end to end through
// the registry, the trace generator, the policy, and the simulation engine.
func TestDailyIsSeedDeterministic(t *testing.T) {
	csv1, journal1 := runDailyGolden(t, 42)
	csv2, journal2 := runDailyGolden(t, 42)

	if !bytes.Equal(csv1, csv2) {
		t.Errorf("same seed, different CSV output (%d vs %d bytes)", len(csv1), len(csv2))
		t.Logf("first divergence at byte %d", firstDiff(csv1, csv2))
	}
	if !bytes.Equal(journal1, journal2) {
		t.Errorf("same seed, different journals (%d vs %d bytes)", len(journal1), len(journal2))
		t.Logf("first divergence at byte %d", firstDiff(journal1, journal2))
	}
	if len(journal1) == 0 {
		t.Error("journal is empty; the determinism check is vacuous")
	}
}

// TestDailySeedChangesOutput pins the other half of the contract: the seed
// is actually load-bearing. A different seed must perturb the run (otherwise
// the golden test above would pass trivially on a seed-ignoring pipeline).
func TestDailySeedChangesOutput(t *testing.T) {
	_, journal1 := runDailyGolden(t, 42)
	_, journal2 := runDailyGolden(t, 43)
	if bytes.Equal(journal1, journal2) {
		t.Error("seeds 42 and 43 produced identical journals; the seed is not reaching the workload")
	}
}

// firstDiff returns the index of the first differing byte.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

package experiments

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
)

// runDailyGolden runs the registered "daily" experiment at test scale with
// the given seed and returns (a) every figure rendered to CSV, concatenated,
// and (b) the raw JSONL journal of the run — the two artifacts the
// determinism contract promises are a pure function of the seed.
func runDailyGolden(t *testing.T, seed uint64) (csv, journal []byte) {
	t.Helper()
	return runDailyGoldenWorkers(t, seed, 0)
}

// runDailyGoldenWorkers is runDailyGolden with an explicit control-round
// worker count, for the cross-worker bit-identity tests.
func runDailyGoldenWorkers(t *testing.T, seed uint64, workers int) (csv, journal []byte) {
	t.Helper()
	var jbuf bytes.Buffer
	res, err := Run("daily", RunRequest{
		Config: RunConfig{
			Servers: 20,
			NumVMs:  300,
			Horizon: 6 * time.Hour,
			Seed:    seed,
			Workers: workers,
			Obs:     obs.NewRecorder(nil, obs.NewJournal(&jbuf)),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var cbuf bytes.Buffer
	for _, f := range res.Figures {
		fmt.Fprintf(&cbuf, "== %s ==\n", f.ID)
		if err := f.WriteCSV(&cbuf); err != nil {
			t.Fatal(err)
		}
	}
	return cbuf.Bytes(), jbuf.Bytes()
}

// TestDailyIsSeedDeterministic is the golden determinism test: two runs of
// the daily experiment with the same seed must produce byte-identical CSV
// output and byte-identical event journals. This is the bit-reproducibility
// claim DESIGN.md's determinism contract makes, checked end to end through
// the registry, the trace generator, the policy, and the simulation engine.
func TestDailyIsSeedDeterministic(t *testing.T) {
	csv1, journal1 := runDailyGolden(t, 42)
	csv2, journal2 := runDailyGolden(t, 42)

	if !bytes.Equal(csv1, csv2) {
		t.Errorf("same seed, different CSV output (%d vs %d bytes)", len(csv1), len(csv2))
		t.Logf("first divergence at byte %d", firstDiff(csv1, csv2))
	}
	if !bytes.Equal(journal1, journal2) {
		t.Errorf("same seed, different journals (%d vs %d bytes)", len(journal1), len(journal2))
		t.Logf("first divergence at byte %d", firstDiff(journal1, journal2))
	}
	if len(journal1) == 0 {
		t.Error("journal is empty; the determinism check is vacuous")
	}
}

// TestDailySeedChangesOutput pins the other half of the contract: the seed
// is actually load-bearing. A different seed must perturb the run (otherwise
// the golden test above would pass trivially on a seed-ignoring pipeline).
func TestDailySeedChangesOutput(t *testing.T) {
	_, journal1 := runDailyGolden(t, 42)
	_, journal2 := runDailyGolden(t, 43)
	if bytes.Equal(journal1, journal2) {
		t.Error("seeds 42 and 43 produced identical journals; the seed is not reaching the workload")
	}
}

// TestDailyWorkerCountInvariant is the parallel engine's golden test: the
// daily experiment must produce byte-identical CSVs and journals at every
// worker count, across seeds. Workers is a throughput knob, never a results
// knob — the same claim DESIGN.md's "Parallel execution & determinism"
// section makes, checked end to end through the registry, the cluster
// runner's pooled control round, and the policy.
func TestDailyWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("12 small simulations; skipped in -short")
	}
	for _, seed := range []uint64{42, 43, 44} {
		csv0, journal0 := runDailyGoldenWorkers(t, seed, 0)
		if len(journal0) == 0 {
			t.Fatalf("seed %d: empty journal; the invariance check is vacuous", seed)
		}
		for _, workers := range []int{1, 2, 8} {
			csvW, journalW := runDailyGoldenWorkers(t, seed, workers)
			if !bytes.Equal(csv0, csvW) {
				t.Errorf("seed %d: Workers=%d CSV diverges from sequential at byte %d",
					seed, workers, firstDiff(csv0, csvW))
			}
			if !bytes.Equal(journal0, journalW) {
				t.Errorf("seed %d: Workers=%d journal diverges from sequential at byte %d",
					seed, workers, firstDiff(journal0, journalW))
			}
		}
	}
}

// TestParScaleWorkerCountInvariant covers the parscale experiment the same
// way at test scale: the figure CSV must not depend on which worker counts
// were swept (CI diffs -workers 1 against -workers 4 on exactly this
// artifact). ParScale additionally verifies run-level bit-identity
// internally, so an engine divergence fails the Run call itself.
func TestParScaleWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("several mid-size simulations; skipped in -short")
	}
	render := func(workers int) []byte {
		res, err := Run("parscale", RunRequest{
			Config: RunConfig{Servers: 150, Horizon: time.Hour, Seed: 7, Workers: workers},
			Scale:  0.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, f := range res.Figures {
			if err := f.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	w1, w8 := render(1), render(8)
	if !bytes.Equal(w1, w8) {
		t.Errorf("parscale CSV depends on the worker sweep: first divergence at byte %d", firstDiff(w1, w8))
	}
}

// firstDiff returns the index of the first differing byte.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

package experiments

import (
	"bytes"
	"testing"
	"time"
)

// quickKneeOptions mirrors the registry's -scale quick path.
func quickKneeOptions() KneeOptions {
	opts := DefaultKneeOptions()
	opts.FleetSizes = []int{20}
	opts.Slot = time.Hour
	opts.MaxSlots = 6
	opts.StartPerServerHour = 16
	opts.StepPerServerHour = 8
	opts.Tolerance = 1
	return opts
}

func kneeCSV(t *testing.T, opts KneeOptions) []byte {
	t.Helper()
	res, err := Knee(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Figure().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestKneeIsSeedDeterministic is the seed-determinism golden: the same seed
// must produce a byte-identical knee CSV, and a different seed a different
// sweep (the experiment actually consumes its seed).
func TestKneeIsSeedDeterministic(t *testing.T) {
	a := kneeCSV(t, quickKneeOptions())
	b := kneeCSV(t, quickKneeOptions())
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different knee CSVs")
	}
	other := quickKneeOptions()
	other.Seed = 2
	if bytes.Equal(a, kneeCSV(t, other)) {
		t.Fatal("different seeds produced identical knee CSVs")
	}
}

// TestKneeWorkerBitIdentity: the cluster worker count is a throughput knob,
// never an input — the sweep's CSV must be byte-identical at workers 0, 1
// and 8. The 150-server fleet clears the par engine's fan-out floor, so the
// pooled code path genuinely executes.
func TestKneeWorkerBitIdentity(t *testing.T) {
	opts := quickKneeOptions()
	opts.FleetSizes = []int{150}
	opts.MaxSlots = 3
	base := kneeCSV(t, opts)
	for _, workers := range []int{1, 8} {
		o := opts
		o.Workers = workers
		if !bytes.Equal(base, kneeCSV(t, o)) {
			t.Fatalf("workers=%d knee CSV differs from sequential", workers)
		}
	}
}

// TestKneeStopRuleWithinTolerance: every halted cell must have accumulated
// exactly Tolerance+1 breaches — the ramp stopped at the first slot the
// budget allowed, never later — and its knee must be the highest clean
// rung below the first breach.
func TestKneeStopRuleWithinTolerance(t *testing.T) {
	opts := quickKneeOptions()
	res, err := Knee(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if !c.Halted {
			t.Fatalf("%d servers / %s: ladder exhausted without tripping the stop-rule (raise MaxSlots or the ladder)", c.Servers, c.Policy)
		}
		breaches := 0
		lastClean := 0.0
		for _, s := range c.Slots {
			if s.Breach {
				breaches++
			} else {
				lastClean = s.RatePerHour
			}
		}
		if breaches != opts.Tolerance+1 {
			t.Fatalf("%d servers / %s: halted after %d breaches, want exactly tolerance+1 = %d",
				c.Servers, c.Policy, breaches, opts.Tolerance+1)
		}
		if !c.Slots[len(c.Slots)-1].Breach {
			t.Fatalf("%d servers / %s: final slot did not breach, so the halt was late", c.Servers, c.Policy)
		}
		if c.KneePerHour != lastClean {
			t.Fatalf("%d servers / %s: knee %v != last clean rung %v", c.Servers, c.Policy, c.KneePerHour, lastClean)
		}
	}
}

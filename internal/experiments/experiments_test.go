package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFigureAddAndColumn(t *testing.T) {
	f := &Figure{ID: "t", Columns: []string{"a", "b"}}
	f.Add(1, 2)
	f.Add(3, 4)
	if got := f.Column("b"); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("Column(b) = %v", got)
	}
}

func TestFigureAddPanicsOnArity(t *testing.T) {
	f := &Figure{ID: "t", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity accepted")
		}
	}()
	f.Add(1)
}

func TestFigureColumnPanicsOnUnknown(t *testing.T) {
	f := &Figure{ID: "t", Columns: []string{"a"}}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown column accepted")
		}
	}()
	f.Column("zzz")
}

func TestFigureWriteCSV(t *testing.T) {
	f := &Figure{ID: "fig0", Title: "demo", Columns: []string{"x", "y"}}
	f.Add(1, 2.5)
	f.Notef("n=%d", 1)
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# fig0: demo", "# note: n=1", "x,y", "1,2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	f, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 101 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	// Values at the documented peaks are ~1; above Ta all zero.
	for _, col := range []string{"p=2", "p=3", "p=5"} {
		vals := f.Column(col)
		max := 0.0
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
		if max < 0.999 || max > 1.0001 {
			t.Fatalf("%s peak = %v, want ~1", col, max)
		}
		if vals[95] != 0 || vals[100] != 0 {
			t.Fatalf("%s nonzero above Ta", col)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	f, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	fl := f.Column("fl_alpha=1")
	fh := f.Column("fh_beta=1")
	if fl[0] != 1 {
		t.Fatalf("f_l(0) = %v", fl[0])
	}
	if fl[30] != 0 || fl[50] != 0 {
		t.Fatal("f_l nonzero at/above Tl")
	}
	if fh[80] != 0 {
		t.Fatalf("f_h(Th) = %v", fh[80])
	}
	if fh[100] != 1 {
		t.Fatalf("f_h(1) = %v", fh[100])
	}
}

func smallTraceOptions() TraceOptions {
	opts := DefaultTraceOptions()
	opts.NumVMs = 400
	opts.Horizon = 6 * time.Hour
	return opts
}

func TestFig4(t *testing.T) {
	f, err := Fig4(smallTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	freqs := f.Column("freq")
	sum := 0.0
	for _, v := range freqs {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("frequencies sum to %v", sum)
	}
	// Mode in the lowest bins, per Fig. 4.
	if freqs[0] < freqs[len(freqs)/2] {
		t.Fatal("distribution not concentrated at low utilization")
	}
}

func TestFig5(t *testing.T) {
	f, err := Fig5(smallTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Peak near zero deviation.
	devs := f.Column("deviation_pct")
	freqs := f.Column("freq")
	maxI := 0
	for i := range freqs {
		if freqs[i] > freqs[maxI] {
			maxI = i
		}
	}
	if devs[maxI] < -5 || devs[maxI] > 5 {
		t.Fatalf("mode at deviation %v, want near 0", devs[maxI])
	}
}

func smallDailyOptions() DailyOptions {
	opts := DefaultDailyOptions()
	opts.Servers = 30
	opts.NumVMs = 450
	opts.Horizon = 12 * time.Hour
	return opts
}

func TestDailySmallScale(t *testing.T) {
	res, err := Daily(smallDailyOptions())
	if err != nil {
		t.Fatal(err)
	}
	figs := res.Figures()
	if len(figs) != 6 {
		t.Fatalf("figures = %d, want 6", len(figs))
	}
	ids := map[string]bool{}
	for _, f := range figs {
		ids[f.ID] = true
		if len(f.Rows) == 0 {
			t.Fatalf("%s has no rows", f.ID)
		}
	}
	for _, id := range []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
		if !ids[id] {
			t.Fatalf("missing %s", id)
		}
	}
	// Consolidation sanity: number of active servers roughly tracks load.
	active := res.Run.ActiveServers
	if active.Max() > float64(30) || active.Min() < 1 {
		t.Fatalf("active servers out of range: [%v, %v]", active.Min(), active.Max())
	}
	// QoS: overload stays small even at reduced scale.
	if res.Run.VMOverloadTimeFrac > 0.01 {
		t.Fatalf("overload fraction = %v", res.Run.VMOverloadTimeFrac)
	}
	// Activations concentrate in rising phases, hibernations in falling
	// ones; at minimum both occur across a daily cycle.
	if res.Run.TotalActivations == 0 || res.Run.TotalHibernations == 0 {
		t.Fatalf("switches = %d/%d, want both nonzero",
			res.Run.TotalActivations, res.Run.TotalHibernations)
	}
}

func TestAssignOnlySmallScale(t *testing.T) {
	opts := DefaultAssignOnlyOptions()
	opts.Servers = 25
	opts.NumVMs = 375
	opts.Churn.ArrivalPerHour = 250 // lambda/mu = 375: stationary population
	opts.Horizon = 10 * time.Hour
	res, err := AssignOnly(opts)
	if err != nil {
		t.Fatal(err)
	}
	f12, f13 := res.Fig12(), res.Fig13()
	if len(f12.Rows) == 0 || len(f13.Rows) == 0 {
		t.Fatal("empty figures")
	}
	if len(f12.Columns) != 2+opts.Servers || len(f13.Columns) != 2+opts.Servers {
		t.Fatalf("column counts %d/%d", len(f12.Columns), len(f13.Columns))
	}
	// Both worlds start non-consolidated (everyone active) and consolidate.
	simFinal := res.Sim.FinalActiveServers
	modelFinal := res.Model.FinalActive(res.ActiveThreshold)
	if simFinal >= opts.Servers {
		t.Fatalf("simulation did not consolidate: %d/%d", simFinal, opts.Servers)
	}
	if modelFinal >= opts.Servers {
		t.Fatalf("model did not consolidate: %d/%d", modelFinal, opts.Servers)
	}
	// The paper's headline: the two agree within a few servers (45 vs 43).
	diff := simFinal - modelFinal
	if diff < 0 {
		diff = -diff
	}
	if diff > opts.Servers/4 {
		t.Fatalf("simulation (%d) and model (%d) disagree badly", simFinal, modelFinal)
	}
	// No migrations may occur in the assignment-only experiment.
	if res.Sim.TotalLowMigrations+res.Sim.TotalHighMigrations != 0 {
		t.Fatal("migrations occurred with migration disabled")
	}
}

func TestComparisonSmallScale(t *testing.T) {
	opts := DefaultComparisonOptions()
	opts.Servers = 20
	opts.NumVMs = 300
	opts.Horizon = 8 * time.Hour
	res, err := Comparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 4 {
		t.Fatalf("policies = %v", res.Order)
	}
	eco := res.Results["ecocloud"]
	bfd := res.Results["bfd"]
	allon := res.Results["allon"]
	if eco == nil || bfd == nil || allon == nil {
		t.Fatal("missing policy results")
	}
	// Headline shape: both consolidators far below the all-on floor...
	if eco.EnergyKWh >= allon.EnergyKWh*0.8 {
		t.Fatalf("ecoCloud %.1f kWh not well below all-on %.1f kWh", eco.EnergyKWh, allon.EnergyKWh)
	}
	if bfd.EnergyKWh >= allon.EnergyKWh*0.8 {
		t.Fatalf("BFD %.1f kWh not well below all-on %.1f kWh", bfd.EnergyKWh, allon.EnergyKWh)
	}
	// ...and comparable to each other (paper: "very close").
	ratio := eco.EnergyKWh / bfd.EnergyKWh
	if ratio < 0.8 || ratio > 1.3 {
		t.Fatalf("ecoCloud/BFD energy ratio = %.3f, want ~1", ratio)
	}
	fig := res.Figure()
	if len(fig.Rows) != 4 {
		t.Fatalf("figure rows = %d", len(fig.Rows))
	}
}

func TestSensitivitySmallScale(t *testing.T) {
	opts := DefaultSensitivityOptions()
	opts.Servers = 15
	opts.NumVMs = 225
	opts.Horizon = 6 * time.Hour
	opts.ThValues = []float64{0.85, 0.95}
	opts.TlValues = []float64{0.30, 0.50}
	opts.AlphaBetas = []float64{0.25, 1.0}
	points, err := Sensitivity(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d, want 6", len(points))
	}
	fig := SensitivityFigure(points)
	if len(fig.Rows) != 6 {
		t.Fatalf("figure rows = %d", len(fig.Rows))
	}
	// Every sweep point must be a live run: consolidation happened (some
	// migrations) and QoS held. Total migration counts are NOT monotone in
	// alpha/beta — eager draining hibernates under-utilized servers sooner,
	// which can reduce later opportunities — so only per-trial probabilities
	// (tested in the functions package) are ordered.
	for _, p := range points {
		if p.Migrations == 0 {
			t.Fatalf("%s=%.2f: no migrations at all", p.Param, p.Value)
		}
		if p.OverloadPct > 1 {
			t.Fatalf("%s=%.2f: overload %.3f%%", p.Param, p.Value, p.OverloadPct)
		}
	}
}

func TestScalabilitySmallScale(t *testing.T) {
	opts := DefaultScalabilityOptions()
	opts.FleetSizes = []int{20, 60}
	opts.Placements = 40
	opts.Groups = 4
	opts.Subset = 5 // must bind even on the 20-server fleet
	points, err := Scalability(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 { // 2 fleets x 4 variants
		t.Fatalf("points = %d, want 8", len(points))
	}
	byKey := map[string]ScalabilityPoint{}
	for _, p := range points {
		byKey[p.Variant+"/"+string(rune('0'+p.Servers/20))] = p
		if p.MsgsPerPlacement <= 0 || p.MeanLatency <= 0 {
			t.Fatalf("%s@%d: degenerate point %+v", p.Variant, p.Servers, p)
		}
	}
	// Broadcast reply-all cost grows with the fleet; groups/subset stay flat.
	b20 := byKey["broadcast/1"]
	b60 := byKey["broadcast/3"]
	if b60.MsgsPerPlacement <= b20.MsgsPerPlacement {
		t.Fatalf("broadcast msgs/placement did not grow with the fleet: %v vs %v",
			b20.MsgsPerPlacement, b60.MsgsPerPlacement)
	}
	s20 := byKey["subset/1"]
	s60 := byKey["subset/3"]
	if s60.MsgsPerPlacement > s20.MsgsPerPlacement*1.5 {
		t.Fatalf("subset msgs/placement grew with the fleet: %v vs %v",
			s20.MsgsPerPlacement, s60.MsgsPerPlacement)
	}
	// Silent reject must beat reply-all broadcast on messages.
	sr60 := byKey["silent-reject/3"]
	if sr60.MsgsPerPlacement >= b60.MsgsPerPlacement {
		t.Fatalf("silent reject (%v) not below reply-all broadcast (%v)",
			sr60.MsgsPerPlacement, b60.MsgsPerPlacement)
	}
	fig := ScalabilityFigure(points)
	if len(fig.Rows) != 8 {
		t.Fatalf("figure rows = %d", len(fig.Rows))
	}
}

func TestReplicateDaily(t *testing.T) {
	opts := smallDailyOptions()
	opts.Horizon = 6 * time.Hour
	reps, err := ReplicateDaily(opts, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 7 {
		t.Fatalf("metrics = %d, want 7", len(reps))
	}
	for _, r := range reps {
		if r.N != 3 {
			t.Fatalf("%s: n = %d", r.Metric, r.N)
		}
		if r.Min > r.Mean || r.Mean > r.Max {
			t.Fatalf("%s: min/mean/max out of order: %+v", r.Metric, r)
		}
		if r.Std < 0 {
			t.Fatalf("%s: negative std", r.Metric)
		}
	}
	// Different seeds must actually vary at least one stochastic metric.
	varied := false
	for _, r := range reps {
		if r.Std > 0 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("three independent seeds produced identical runs")
	}
	fig := ReplicationFigure(reps)
	if len(fig.Rows) != 7 {
		t.Fatalf("figure rows = %d", len(fig.Rows))
	}
	if _, err := ReplicateDaily(opts, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

func TestFigureWriteMarkdown(t *testing.T) {
	f := &Figure{ID: "figx", Title: "demo", Columns: []string{"a", "b"}}
	f.Add(1, 2)
	f.Notef("a note")
	var buf bytes.Buffer
	if err := f.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## figx — demo", "- a note", "a | b", "1 | 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
	// Wide figures summarize instead of dumping 400 columns.
	wide := &Figure{ID: "figw", Title: "wide", Columns: make([]string, 50)}
	for i := range wide.Columns {
		wide.Columns[i] = "c"
	}
	buf.Reset()
	if err := wide.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "50 columns") {
		t.Fatalf("wide figure not summarized:\n%s", buf.String())
	}
}

func TestMultiResourceSmallScale(t *testing.T) {
	opts := DefaultMultiResourceOptions()
	opts.Servers = 20
	opts.NumVMs = 300
	opts.Horizon = 8 * time.Hour
	res, err := MultiResource(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 3 {
		t.Fatalf("variants = %v", res.Order)
	}
	cpuOnly := res.Results["cpu-only"]
	allTrials := res.Results["all-trials"]
	critical := res.Results["critical"]
	if cpuOnly == nil || allTrials == nil || critical == nil {
		t.Fatal("missing variants")
	}
	// The payoff claim of §V: on a RAM-tight mix the CPU-only policy
	// overcommits memory; both multi-resource strategies must do strictly
	// better (the thresholds make overcommit nearly impossible).
	if cpuOnly.RAMOverloadTimeFrac == 0 {
		t.Skip("workload not RAM-tight at this scale; nothing to compare")
	}
	if allTrials.RAMOverloadTimeFrac >= cpuOnly.RAMOverloadTimeFrac {
		t.Fatalf("all-trials RAM overcommit %v not below cpu-only %v",
			allTrials.RAMOverloadTimeFrac, cpuOnly.RAMOverloadTimeFrac)
	}
	if critical.RAMOverloadTimeFrac >= cpuOnly.RAMOverloadTimeFrac {
		t.Fatalf("critical RAM overcommit %v not below cpu-only %v",
			critical.RAMOverloadTimeFrac, cpuOnly.RAMOverloadTimeFrac)
	}
	fig := res.Figure()
	if len(fig.Rows) != 3 {
		t.Fatalf("figure rows = %d", len(fig.Rows))
	}
}

func TestFluidErrorSmallScale(t *testing.T) {
	opts := DefaultFluidErrorOptions()
	opts.Servers = 20
	opts.States = 25
	opts.Horizon = 6 * time.Hour
	fig, err := FluidError(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) == 0 {
		t.Fatal("no states compared")
	}
	// The claim under test: the approximation stays close. The error is
	// measured in units of one server's average arrival share; require the
	// mean misattribution to stay under one share (the paper only says
	// "very close", and the trajectory-level agreement is the headline).
	for _, row := range fig.Rows {
		if row[1] > 1.0 {
			t.Fatalf("mean arrival misattribution %v shares at state %v", row[1], row[0])
		}
	}
	if len(fig.Notes) < 2 {
		t.Fatal("missing summary notes")
	}
}

func TestProtocolDaySmallScale(t *testing.T) {
	opts := DefaultProtocolDayOptions()
	opts.Servers = 20
	opts.NumVMs = 300
	opts.Churn.ArrivalPerHour = 200
	opts.Horizon = 6 * time.Hour
	fig, err := ProtocolDay(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 1 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	row := fig.Rows[0]
	placements := row[0]
	if placements < 300 {
		t.Fatalf("placements = %v", placements)
	}
	messages := fig.Column("messages")[0]
	if messages <= placements {
		t.Fatalf("messages = %v, must exceed placements", messages)
	}
	if fig.Column("final_active")[0] <= 0 {
		t.Fatal("no servers active at end of day")
	}
	// Migrations happen on a churning day (low ones at minimum).
	if fig.Column("migrations_low")[0]+fig.Column("migrations_high")[0] == 0 {
		t.Fatal("no migrations completed over the day")
	}
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/ecocloud"
	"repro/internal/trace"
)

// ComparisonOptions parameterizes the head-to-head run backing the
// abstract's claim that ecoCloud's efficiency is "comparable to that of one
// of the best centralized algorithms devised so far" while migrating far
// less.
type ComparisonOptions struct {
	RunConfig

	Eco      ecocloud.Config
	Baseline baseline.Config
	Gen      trace.GenConfig
	Power    dc.PowerModel
	Control  time.Duration
	Sample   time.Duration
}

// DefaultComparisonOptions compares at the paper's scale on the same
// workload the Figs. 6–11 run uses.
func DefaultComparisonOptions() ComparisonOptions {
	gen := trace.DefaultGenConfig()
	return ComparisonOptions{
		RunConfig: RunConfig{Servers: 400, NumVMs: gen.NumVMs, Horizon: gen.Horizon, Seed: 1},
		Eco:       ecocloud.DefaultConfig(),
		Baseline:  baseline.DefaultConfig(),
		Gen:       gen,
		Power:     dc.DefaultPowerModel(),
		Control:   5 * time.Minute,
		Sample:    30 * time.Minute,
	}
}

// ComparisonResult holds the per-policy results keyed by policy name, in a
// stable order.
type ComparisonResult struct {
	Order   []string
	Results map[string]*cluster.Result
	Servers int
}

// Comparison runs ecoCloud, BFD, FFD and the all-on floor over the identical
// workload and fleet.
func Comparison(opts ComparisonOptions) (*ComparisonResult, error) {
	gen := opts.Gen
	gen.NumVMs = opts.NumVMs
	gen.Horizon = opts.Horizon
	ws, err := trace.Generate(gen, opts.Seed)
	if err != nil {
		return nil, err
	}

	bcfg := opts.Baseline
	bcfg.Power = opts.Power
	// Each policy gets its own data center and runs independently; the
	// (read-only) workload is shared, so the four runs execute in parallel.
	builders := []func() (cluster.Policy, error){
		func() (cluster.Policy, error) { return ecocloud.New(opts.Eco, opts.Seed+1) },
		func() (cluster.Policy, error) { return baseline.NewBFD(bcfg) },
		func() (cluster.Policy, error) { return baseline.NewFFD(bcfg) },
		func() (cluster.Policy, error) { return &baseline.AllOn{}, nil },
	}
	names := make([]string, len(builders))
	results := make([]*cluster.Result, len(builders))
	err = forEach(len(builders), func(i int) error {
		pol, err := builders[i]()
		if err != nil {
			return err
		}
		// The four policies run concurrently; sharing the caller's recorder
		// here would interleave their journal lines nondeterministically, so
		// the per-policy runs execute unobserved (the comparison table is
		// the product).
		ccfg := opts.ClusterConfig(dc.StandardFleet(opts.Servers), ws, opts.Control, opts.Sample, opts.Power)
		ccfg.Obs = nil
		res, err := cluster.Run(ccfg, pol)
		if err != nil {
			return fmt.Errorf("experiments: comparison policy %s: %v", pol.Name(), err)
		}
		names[i] = pol.Name()
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &ComparisonResult{Results: map[string]*cluster.Result{}, Servers: opts.Servers}
	for i, name := range names {
		out.Order = append(out.Order, name)
		out.Results[name] = results[i]
	}
	return out, nil
}

// Figure materializes the comparison table: one row per policy.
func (c *ComparisonResult) Figure() *Figure {
	f := &Figure{
		ID:    "comparison",
		Title: "ecoCloud vs centralized baselines on the identical workload",
		Columns: []string{
			"policy_idx", "energy_kwh", "mean_active_servers",
			"migrations_low", "migrations_high", "peak_migrations_per_hour",
			"max_concurrent_migrations", "mean_concurrent_migrations",
			"overload_pct", "activations", "hibernations", "saturations",
		},
	}
	for i, name := range c.Order {
		r := c.Results[name]
		f.Add(float64(i), r.EnergyKWh, r.MeanActiveServers,
			float64(r.TotalLowMigrations), float64(r.TotalHighMigrations),
			r.MaxMigrationsPerHour,
			float64(r.MaxConcurrentMigrations), r.MeanConcurrentMigrations,
			100*r.VMOverloadTimeFrac,
			float64(r.TotalActivations), float64(r.TotalHibernations),
			float64(r.Saturations))
		f.Notef("policy_idx %d = %s: %.1f kWh, %.1f mean active, %d+%d migrations, %.5f%% overload",
			i, name, r.EnergyKWh, r.MeanActiveServers,
			r.TotalLowMigrations, r.TotalHighMigrations, 100*r.VMOverloadTimeFrac)
	}
	if eco, ok := c.Results["ecocloud"]; ok {
		if bfd, ok := c.Results["bfd"]; ok && bfd.EnergyKWh > 0 {
			f.Notef("ecoCloud energy / BFD energy = %.3f (paper: comparable, i.e. ~1)",
				eco.EnergyKWh/bfd.EnergyKWh)
			ecoMig := eco.TotalLowMigrations + eco.TotalHighMigrations
			bfdMig := bfd.TotalLowMigrations + bfd.TotalHighMigrations
			f.Notef("migrations: ecoCloud %d vs BFD %d (paper: ecoCloud migrates far less)", ecoMig, bfdMig)
			f.Notef("largest simultaneous migration batch: ecoCloud %d vs BFD %d (paper §V: gradual vs simultaneous relocation)",
				eco.MaxConcurrentMigrations, bfd.MaxConcurrentMigrations)
		}
		if allon, ok := c.Results["allon"]; ok && allon.EnergyKWh > 0 {
			f.Notef("ecoCloud saves %.1f%% energy vs no consolidation",
				100*(1-eco.EnergyKWh/allon.EnergyKWh))
		}
	}
	return f
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/dc"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ScalabilityOptions parameterizes the protocol-level scalability study.
// The paper claims ecoCloud is "particularly efficient in large data
// centers" and sketches (footnote 1) how very large fleets can invite one
// server group instead of broadcasting; this experiment measures exactly
// that: wire messages, bytes and placement latency per assignment as the
// fleet grows, under the §II broadcast protocol, group invitations, random
// subsets, and the silent-reject variant.
// ScalabilityOptions embeds RunConfig for the shared knobs; the sweep runs
// over FleetSizes, so a non-zero RunConfig.Servers replaces the sweep with a
// single fleet of that size. NumVMs and Horizon are unused (the study places
// a fixed number of probe VMs, not a day-long population).
type ScalabilityOptions struct {
	RunConfig

	FleetSizes []int
	Placements int // placements measured per configuration

	// Preload fraction of servers active, each at PreloadUtil, before
	// measuring (a data center in normal operation, not a cold start).
	PreloadFrac float64
	PreloadUtil float64

	Groups int // group count for Groups mode
	Subset int // subset size for Subset mode

	DemandMHz float64 // per placed VM
}

// DefaultScalabilityOptions measures fleets from 50 to 800 servers.
func DefaultScalabilityOptions() ScalabilityOptions {
	return ScalabilityOptions{
		RunConfig:   RunConfig{Seed: 1},
		FleetSizes:  []int{50, 100, 200, 400, 800},
		Placements:  300,
		PreloadFrac: 0.5,
		PreloadUtil: 0.65,
		Groups:      8,
		Subset:      32,
		DemandMHz:   300,
	}
}

// ScalabilityPoint is one (fleet size, variant) measurement.
type ScalabilityPoint struct {
	Servers int
	Variant string

	MsgsPerPlacement  float64
	BytesPerPlacement float64
	MeanLatency       time.Duration
	MaxLatency        time.Duration
	Wakes             int
	Saturations       int
}

// Scalability runs the study and returns one point per (fleet, variant).
func Scalability(opts ScalabilityOptions) ([]ScalabilityPoint, error) {
	if opts.Servers > 0 {
		opts.FleetSizes = []int{opts.Servers}
	}
	if opts.Placements <= 0 || len(opts.FleetSizes) == 0 {
		return nil, fmt.Errorf("experiments: scalability needs fleets and placements")
	}
	variants := []struct {
		name   string
		mutate func(*protocol.Config)
	}{
		{"broadcast", func(*protocol.Config) {}},
		{"groups", func(c *protocol.Config) { c.Mode = protocol.Groups; c.Groups = opts.Groups }},
		{"subset", func(c *protocol.Config) { c.Mode = protocol.Subset; c.Subset = opts.Subset }},
		{"silent-reject", func(c *protocol.Config) { c.SilentReject = true }},
	}

	type cell struct {
		ns      int
		variant int
	}
	var grid []cell
	for _, ns := range opts.FleetSizes {
		for vi := range variants {
			grid = append(grid, cell{ns: ns, variant: vi})
		}
	}
	out := make([]ScalabilityPoint, len(grid))
	err := forEach(len(grid), func(i int) error {
		v := variants[grid[i].variant]
		cfg := protocol.DefaultConfig()
		cfg.Workers = opts.Workers
		v.mutate(&cfg)
		p, err := runScalabilityPoint(cfg, grid[i].ns, opts)
		if err != nil {
			return fmt.Errorf("experiments: scalability %s/%d: %v", v.name, grid[i].ns, err)
		}
		p.Variant = v.name
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runScalabilityPoint measures one configuration.
func runScalabilityPoint(cfg protocol.Config, ns int, opts ScalabilityOptions) (ScalabilityPoint, error) {
	c, err := protocol.New(cfg, dc.StandardFleet(ns), opts.Seed)
	if err != nil {
		return ScalabilityPoint{}, err
	}
	defer c.Close()
	// Preload: a running data center, servers out of their grace period.
	preload := int(float64(ns) * opts.PreloadFrac)
	id := 1_000_000
	for i := 0; i < preload; i++ {
		s := c.DC().Servers[i]
		if err := c.DC().Activate(s, 0); err != nil {
			return ScalabilityPoint{}, err
		}
		s.SetActivatedAt(-1000 * time.Hour)
		vm := &trace.VM{
			ID: id, Start: 0, End: 1000 * time.Hour, Epoch: 1000 * time.Hour,
			Demand: []float64{opts.PreloadUtil * s.CapacityMHz()},
		}
		if err := c.DC().Place(vm, s); err != nil {
			return ScalabilityPoint{}, err
		}
		id++
	}

	// Arrivals spaced widely enough that rounds rarely overlap: the study
	// measures protocol cost, not queueing.
	gap := rng.New(opts.Seed).Split("gaps")
	at := time.Duration(0)
	baseMsgs := c.MessagesSent()
	baseBytes := c.BytesSent()
	for i := 0; i < opts.Placements; i++ {
		at += time.Duration((0.5 + gap.Float64()) * float64(100*time.Millisecond))
		vm := &trace.VM{
			ID: i, Start: at, End: 1000 * time.Hour, Epoch: 1000 * time.Hour,
			Demand: []float64{opts.DemandMHz},
		}
		c.Engine().Schedule(at, "arrival", func(*sim.Engine) { c.PlaceVM(vm) })
	}
	c.Engine().Run(0)

	if c.Stats.Placements != opts.Placements {
		return ScalabilityPoint{}, fmt.Errorf("placed %d of %d", c.Stats.Placements, opts.Placements)
	}
	n := float64(opts.Placements)
	return ScalabilityPoint{
		Servers:           ns,
		MsgsPerPlacement:  float64(c.MessagesSent()-baseMsgs) / n,
		BytesPerPlacement: float64(c.BytesSent()-baseBytes) / n,
		MeanLatency:       c.Stats.MeanLatency(),
		MaxLatency:        c.Stats.MaxLatency,
		Wakes:             c.Stats.Wakes,
		Saturations:       c.Stats.Saturations,
	}, nil
}

// ScalabilityFigure materializes the study as a table; variant_idx encodes
// 0=broadcast, 1=groups, 2=subset, 3=silent-reject.
func ScalabilityFigure(points []ScalabilityPoint) *Figure {
	f := &Figure{
		ID:    "scalability",
		Title: "Protocol cost per placement vs fleet size (footnote 1 study)",
		Columns: []string{
			"servers", "variant_idx", "msgs_per_placement",
			"bytes_per_placement", "mean_latency_us", "max_latency_us",
			"wakes", "saturations",
		},
	}
	idx := map[string]float64{"broadcast": 0, "groups": 1, "subset": 2, "silent-reject": 3}
	for _, p := range points {
		f.Add(float64(p.Servers), idx[p.Variant], p.MsgsPerPlacement,
			p.BytesPerPlacement,
			float64(p.MeanLatency.Microseconds()), float64(p.MaxLatency.Microseconds()),
			float64(p.Wakes), float64(p.Saturations))
		f.Notef("%s @ %d servers: %.1f msgs, %.0f bytes, %v mean latency per placement",
			p.Variant, p.Servers, p.MsgsPerPlacement, p.BytesPerPlacement, p.MeanLatency)
	}
	return f
}

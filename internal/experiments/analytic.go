package experiments

import "repro/internal/ecocloud"

// Fig2 reproduces Figure 2: the assignment probability function fa(u) for
// p in {2, 3, 5} with Ta = 0.9, on a utilization grid.
func Fig2() (*Figure, error) {
	f := &Figure{
		ID:      "fig2",
		Title:   "Assignment probability function fa(u), Ta=0.9",
		Columns: []string{"u", "p=2", "p=3", "p=5"},
	}
	var fns []ecocloud.AssignProbFunc
	for _, p := range []float64{2, 3, 5} {
		fn, err := ecocloud.NewAssignProb(0.9, p)
		if err != nil {
			return nil, err
		}
		fns = append(fns, fn)
	}
	const steps = 100
	for i := 0; i <= steps; i++ {
		u := float64(i) / steps
		f.Add(u, fns[0].Eval(u), fns[1].Eval(u), fns[2].Eval(u))
	}
	for _, fn := range fns {
		f.Notef("p=%g: peak at u*=%.4f (paper: Ta*p/(p+1))", fn.P, fn.ArgMax())
	}
	return f, nil
}

// Fig3 reproduces Figure 3: the migration probability functions f_l (alpha
// in {1, 0.25}, Tl = 0.3) and f_h (beta in {1, 0.25}, Th = 0.8).
func Fig3() (*Figure, error) {
	f := &Figure{
		ID:      "fig3",
		Title:   "Migration probability functions, Tl=0.3 Th=0.8",
		Columns: []string{"u", "fl_alpha=1", "fl_alpha=0.25", "fh_beta=1", "fh_beta=0.25"},
	}
	const steps = 100
	for i := 0; i <= steps; i++ {
		u := float64(i) / steps
		f.Add(u,
			ecocloud.MigrateLowProb(u, 0.3, 1),
			ecocloud.MigrateLowProb(u, 0.3, 0.25),
			ecocloud.MigrateHighProb(u, 0.8, 1),
			ecocloud.MigrateHighProb(u, 0.8, 0.25),
		)
	}
	f.Notef("f_l falls to 0 at Tl=0.3; f_h rises from 0 at Th=0.8 to 1 at u=1")
	return f, nil
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/ecocloud"
	"repro/internal/load"
	"repro/internal/rng"
)

// KneeOptions parameterizes the overload-knee sweep: for each fleet size
// and policy, a stepped churn-rate ramp (internal/load) climbs until the
// stop-rule fires, and the knee — the maximum sustainable VM churn rate —
// is reported. RunConfig.Servers and NumVMs are unused (FleetSizes and the
// per-slot auto-population replace them); Horizon is unused (each slot runs
// for Slot).
type KneeOptions struct {
	RunConfig

	// FleetSizes are the sweep's fleet sizes; each uses a uniform fleet of
	// Cores x CoreMHz servers.
	FleetSizes []int
	Cores      int
	CoreMHz    float64

	// StartPerServerHour and StepPerServerHour define the rate ladder in
	// per-server terms, so the same ladder stresses every fleet size
	// proportionally; absolute slot rates are these times the fleet size.
	StartPerServerHour float64
	StepPerServerHour  float64
	Slot               time.Duration
	MaxSlots           int
	WarmupFrac         float64
	Threshold          float64
	Tolerance          int

	IAT   load.IAT
	Shape load.VMShape

	Eco      ecocloud.Config
	Baseline baseline.Config
	Power    dc.PowerModel
	Control  time.Duration
	Sample   time.Duration
}

// DefaultKneeOptions sweeps 50- and 100-server fleets of the Fig. 12 server
// class for ecoCloud and BFD. The ladder starts well inside sustainable
// territory (~10 arrivals/server/h with 90-minute lifetimes is ~15 resident
// VMs/server, ~3.6 of 12 GHz demanded) and steps toward saturation
// (capacity exhausts near 33 arrivals/server/h).
func DefaultKneeOptions() KneeOptions {
	return KneeOptions{
		RunConfig:          RunConfig{Seed: 1},
		FleetSizes:         []int{50, 100},
		Cores:              6,
		CoreMHz:            2000,
		StartPerServerHour: 10,
		StepPerServerHour:  4,
		Slot:               2 * time.Hour,
		MaxSlots:           12,
		WarmupFrac:         0.5,
		Threshold:          0.05,
		Tolerance:          2,
		IAT:                load.IATExponential,
		Shape:              load.DefaultVMShape(),
		Eco:                ecocloud.DefaultConfig(),
		Baseline:           baseline.DefaultConfig(),
		Power:              dc.DefaultPowerModel(),
		Control:            5 * time.Minute,
		Sample:             30 * time.Minute,
	}
}

// KneeCell is one (fleet size, policy) ramp.
type KneeCell struct {
	Servers int
	Policy  string
	// KneePerHour is the highest sustained absolute churn rate;
	// KneePerServerHour normalizes it by the fleet size.
	KneePerHour       float64
	KneePerServerHour float64
	SlotsRun          int
	Halted            bool
	Slots             []load.Slot
}

// KneeResult holds the sweep in (fleet, policy) order.
type KneeResult struct {
	Cells []KneeCell
}

// Knee runs the sweep. Cells are independent ramps over disjoint rng
// streams, so they execute concurrently; within a cell the slots run
// sequentially because each verdict gates the next rung.
func Knee(opts KneeOptions) (*KneeResult, error) {
	if len(opts.FleetSizes) == 0 {
		return nil, fmt.Errorf("experiments: knee: no fleet sizes")
	}
	bcfg := opts.Baseline
	bcfg.Power = opts.Power
	type policyDef struct {
		name string
		make func(seed uint64) (cluster.Policy, error)
	}
	policies := []policyDef{
		{"ecocloud", func(seed uint64) (cluster.Policy, error) { return ecocloud.New(opts.Eco, seed) }},
		{"bfd", func(seed uint64) (cluster.Policy, error) { return baseline.NewBFD(bcfg) }},
	}

	type cellDef struct {
		servers int
		policy  policyDef
	}
	var cells []cellDef
	for _, n := range opts.FleetSizes {
		for _, p := range policies {
			cells = append(cells, cellDef{servers: n, policy: p})
		}
	}

	// Per-cell seeds from an indexed split of the master: cells stay
	// independent replications however the grid is arranged.
	seeds := rng.New(opts.Seed)
	cellSeeds := make([]uint64, len(cells))
	for i := range cells {
		cellSeeds[i] = seeds.SplitIndex("cell", i).Uint64()
	}

	results := make([]KneeCell, len(cells))
	err := forEach(len(cells), func(i int) error {
		c := cells[i]
		runner := load.NewClusterRunner(load.ClusterRunnerConfig{
			Specs:     dc.UniformFleet(c.servers, opts.Cores, opts.CoreMHz),
			NewPolicy: c.policy.make,
			Load: load.Config{
				Mode:           load.ModeStress,
				IAT:            opts.IAT,
				Shape:          opts.Shape,
				RefCapacityMHz: opts.CoreMHz * float64(opts.Cores),
			},
			AutoPopulate:    true,
			ControlInterval: opts.Control,
			SampleInterval:  opts.Sample,
			PowerModel:      opts.Power,
			Workers:         opts.Workers,
		})
		ramp, err := load.Ramp(load.RampConfig{
			StartPerHour: opts.StartPerServerHour * float64(c.servers),
			StepPerHour:  opts.StepPerServerHour * float64(c.servers),
			Slot:         opts.Slot,
			MaxSlots:     opts.MaxSlots,
			WarmupFrac:   opts.WarmupFrac,
			Threshold:    opts.Threshold,
			Tolerance:    opts.Tolerance,
			Seed:         cellSeeds[i],
		}, runner)
		if err != nil {
			return fmt.Errorf("experiments: knee %d servers / %s: %w", c.servers, c.policy.name, err)
		}
		results[i] = KneeCell{
			Servers:           c.servers,
			Policy:            c.policy.name,
			KneePerHour:       ramp.KneePerHour,
			KneePerServerHour: ramp.KneePerHour / float64(c.servers),
			SlotsRun:          len(ramp.Slots),
			Halted:            ramp.Halted,
			Slots:             ramp.Slots,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &KneeResult{Cells: results}, nil
}

// Figure materializes the knee table: one row per ramp slot, so the CSV
// carries the whole overload curve, not just its knee.
func (k *KneeResult) Figure() *Figure {
	f := &Figure{
		ID:    "knee",
		Title: "max sustainable VM churn rate vs fleet size (stepped ramp, overload stop-rule)",
		Columns: []string{
			"fleet_size", "policy_idx", "slot", "rate_per_hour", "rate_per_server_hour",
			"violation_frac", "reject_frac", "mean_active_servers", "energy_kwh",
			"arrivals", "breach",
		},
	}
	for _, c := range k.Cells {
		pidx := 0.0
		if c.Policy == "bfd" {
			pidx = 1
		}
		for _, s := range c.Slots {
			breach := 0.0
			if s.Breach {
				breach = 1
			}
			f.Add(float64(c.Servers), pidx, float64(s.Index), s.RatePerHour,
				s.RatePerHour/float64(c.Servers),
				s.Metrics.ViolationFrac, s.Metrics.RejectFrac,
				s.Metrics.MeanActiveServers, s.Metrics.EnergyKWh,
				float64(s.Metrics.Arrivals), breach)
		}
		state := "stop-rule halted"
		if !c.Halted {
			state = "ladder exhausted (knee is a lower bound)"
		}
		f.Notef("%d servers / %s: knee %.0f VMs/h (%.1f per server-hour) after %d slots, %s",
			c.Servers, c.Policy, c.KneePerHour, c.KneePerServerHour, c.SlotsRun, state)
	}
	return f
}

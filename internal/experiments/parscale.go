package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/ecocloud"
	"repro/internal/rng"
	"repro/internal/trace"
)

// The parscale experiment extends the scalability story past the protocol
// study's fleets (footnote 1 tops out near 4,000 servers) to 50k–100k
// servers, and is the proving ground for the deterministic parallel control
// round: every fleet size runs once sequentially (Workers=0) and once per
// configured worker count, and the experiment *verifies* — not assumes —
// that all runs are bit-identical before reporting the baseline's numbers.
//
// The workload is a steady band: VMs are pre-placed round-robin
// (SpreadRoundRobin) and redraw their demand every control epoch from a
// per-VM rng stream sized so each server's utilization stays strictly
// inside (Tl, Th). No arrivals, no migrations, no wake-ups — every control
// tick is pure per-server work (demand refill, overload observation,
// energy), which is exactly the cost the fork-join engine shards. Wall-clock
// speedup curves are measured by `ecobench -par-bench` (wall time is banned
// from internal packages by the determinism contract); this experiment owns
// correctness at scale.

// ParScaleOptions parameterizes the sweep. RunConfig's fields map as:
// Servers>0 pins a single fleet size; NumVMs>0 overrides the per-fleet VM
// total (default VMsPerServer per server); Workers>0 narrows the sweep to
// {0, Workers}.
type ParScaleOptions struct {
	RunConfig
	FleetSizes   []int
	WorkerCounts []int
	VMsPerServer int
	Control      time.Duration
	Sample       time.Duration
	Power        dc.PowerModel
	Eco          ecocloud.Config
}

// DefaultParScaleOptions covers 10k/50k/100k servers at 10 VMs each over a
// two-hour horizon, sweeping Workers over {0, 2, 8}.
func DefaultParScaleOptions() ParScaleOptions {
	return ParScaleOptions{
		RunConfig:    RunConfig{Horizon: 2 * time.Hour, Seed: 1},
		FleetSizes:   []int{10_000, 50_000, 100_000},
		WorkerCounts: []int{0, 2, 8},
		VMsPerServer: 10,
		Control:      5 * time.Minute,
		Sample:       30 * time.Minute,
		Power:        dc.DefaultPowerModel(),
		Eco:          ecocloud.DefaultConfig(),
	}
}

// ParScalePoint is one verified fleet size: the baseline (sequential)
// numbers plus the outcome of the cross-worker bit-identity check.
type ParScalePoint struct {
	Servers  int
	VMs      int
	Workers  []int // every worker count verified against the baseline
	Baseline *cluster.Result
}

// parScaleWorkload builds the steady-band trace for a fleet: VM j lands on
// server j%n under SpreadRoundRobin (all VMs start at 0 with consecutive
// IDs), so its per-epoch demand is drawn to hold server j%n's utilization
// in [0.60, 0.85] — strictly inside (Tl, Th) — for the whole horizon.
// Demands come from per-VM streams (master.SplitIndex), so the trace is a
// pure function of (specs, perServer, horizon, epoch, seed).
//
// VM lifetimes extend one epoch PAST the horizon. With End == horizon every
// VM's demand is zero at the final control tick (t == Horizon fires before
// the engine stops), all n servers dip under Tl at once, and each runs a
// doomed migrateLow invitation round over the other n-1 — an O(n²) no-op
// storm (nobody accepts at fa(0) = 0) that cost minutes per cell at 50k+
// servers while recording zero migrations. Outliving the horizon keeps the
// band steady through every tick, which is the experiment's stated intent.
func parScaleWorkload(specs []dc.Spec, perServer int, horizon, epoch time.Duration, seed uint64) *trace.Set {
	master := rng.New(seed)
	epochs := int(horizon/epoch) + 1
	vms := make([]*trace.VM, 0, len(specs)*perServer)
	for j := 0; j < len(specs)*perServer; j++ {
		src := master.SplitIndex("parscale-vm", j)
		capMHz := specs[j%len(specs)].CapacityMHz()
		demand := make([]float64, epochs)
		for e := range demand {
			u := 0.60 + 0.25*src.Float64()
			demand[e] = u * capMHz / float64(perServer)
		}
		vms = append(vms, &trace.VM{
			ID:     j,
			Start:  0,
			End:    horizon + epoch,
			Epoch:  epoch,
			Demand: demand,
		})
	}
	return &trace.Set{VMs: vms}
}

// ParScaleCell builds one (servers, workers) cell of the sweep: the run
// configuration and policy for a steady-band run of the given fleet size.
// Exported so ecobench's -par-bench can time exactly the cells the
// experiment verifies.
func ParScaleCell(opts ParScaleOptions, servers, workers int) (cluster.RunConfig, cluster.Policy, error) {
	perServer := opts.VMsPerServer
	if opts.NumVMs > 0 {
		perServer = opts.NumVMs / servers
		if perServer < 1 {
			perServer = 1
		}
	}
	specs := dc.StandardFleet(servers)
	ws := parScaleWorkload(specs, perServer, opts.Horizon, opts.Control, opts.Seed)
	pol, err := ecocloud.New(opts.Eco, opts.Seed+1)
	if err != nil {
		return cluster.RunConfig{}, nil, err
	}
	ccfg := opts.ClusterConfig(specs, ws, opts.Control, opts.Sample, opts.Power)
	ccfg.Initial = cluster.SpreadRoundRobin
	ccfg.Workers = workers
	return ccfg, pol, nil
}

// sameResult reports whether two runs of the same cell produced bit-identical
// results, checking the aggregate floats exactly and every sampled series
// point for point. It is the parity gate between the sequential engine and
// the pooled one.
func sameResult(a, b *cluster.Result) error {
	//ecolint:allow float-eq — bit-identity across worker counts is the property under verification; tolerances would mask engine drift
	floatEq := func(name string, x, y float64) error {
		if x != y { //ecolint:allow float-eq — see above
			return fmt.Errorf("%s: %x != %x", name, x, y)
		}
		return nil
	}
	checks := []struct {
		name string
		a, b float64
	}{
		{"energy_kwh", a.EnergyKWh, b.EnergyKWh},
		{"mean_active_servers", a.MeanActiveServers, b.MeanActiveServers},
		{"vm_overload_time_frac", a.VMOverloadTimeFrac, b.VMOverloadTimeFrac},
		{"granted_frac_in_overload", a.GrantedFracInOverload, b.GrantedFracInOverload},
		{"max_migrations_per_hour", a.MaxMigrationsPerHour, b.MaxMigrationsPerHour},
	}
	for _, c := range checks {
		if err := floatEq(c.name, c.a, c.b); err != nil {
			return err
		}
	}
	ints := []struct {
		name string
		a, b int
	}{
		{"low_migrations", a.TotalLowMigrations, b.TotalLowMigrations},
		{"high_migrations", a.TotalHighMigrations, b.TotalHighMigrations},
		{"activations", a.TotalActivations, b.TotalActivations},
		{"hibernations", a.TotalHibernations, b.TotalHibernations},
		{"final_active", a.FinalActiveServers, b.FinalActiveServers},
		{"saturations", a.Saturations, b.Saturations},
	}
	for _, c := range ints {
		if c.a != c.b {
			return fmt.Errorf("%s: %d != %d", c.name, c.a, c.b)
		}
	}
	series := []struct {
		name string
		a, b []float64
	}{
		{"active_servers", a.ActiveServers.V, b.ActiveServers.V},
		{"power_w", a.PowerW.V, b.PowerW.V},
		{"overall_load", a.OverallLoad.V, b.OverallLoad.V},
		{"overdemand_pct", a.OverDemandPct.V, b.OverDemandPct.V},
	}
	for _, s := range series {
		if len(s.a) != len(s.b) {
			return fmt.Errorf("%s: %d points != %d points", s.name, len(s.a), len(s.b))
		}
		for i := range s.a {
			if err := floatEq(fmt.Sprintf("%s[%d]", s.name, i), s.a[i], s.b[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ParScale runs the sweep: per fleet size, one sequential baseline plus one
// run per non-zero worker count, each verified bit-identical to the
// baseline. A parity violation is an engine bug and fails the experiment.
func ParScale(opts ParScaleOptions) ([]ParScalePoint, error) {
	if opts.Servers > 0 {
		opts.FleetSizes = []int{opts.Servers}
	}
	if opts.Workers > 0 {
		opts.WorkerCounts = []int{0, opts.Workers}
	}
	if len(opts.FleetSizes) == 0 || len(opts.WorkerCounts) == 0 {
		return nil, fmt.Errorf("experiments: parscale needs fleet sizes and worker counts")
	}
	points := make([]ParScalePoint, 0, len(opts.FleetSizes))
	for _, servers := range opts.FleetSizes {
		var baseline *cluster.Result
		var workers []int
		for _, w := range opts.WorkerCounts {
			cfg, pol, err := ParScaleCell(opts, servers, w)
			if err != nil {
				return nil, err
			}
			res, err := cluster.Run(cfg, pol)
			if err != nil {
				return nil, fmt.Errorf("experiments: parscale %d servers, %d workers: %v", servers, w, err)
			}
			if baseline == nil {
				// The first configured count anchors parity; the default
				// sweep puts 0 (the pristine sequential engine) first.
				baseline = res
			} else if err := sameResult(baseline, res); err != nil {
				return nil, fmt.Errorf("experiments: parscale %d servers: Workers=%d diverged from Workers=%d: %v",
					servers, w, opts.WorkerCounts[0], err)
			}
			workers = append(workers, w)
		}
		vms := servers * opts.VMsPerServer
		if opts.NumVMs > 0 {
			per := opts.NumVMs / servers
			if per < 1 {
				per = 1
			}
			vms = servers * per
		}
		points = append(points, ParScalePoint{
			Servers:  servers,
			VMs:      vms,
			Workers:  workers,
			Baseline: baseline,
		})
	}
	return points, nil
}

// ParScaleFigure reports the verified baseline per fleet size. Everything in
// the figure (rows and notes) comes from the sequential baseline, so the CSV
// is byte-identical no matter which worker counts were swept — that
// invariance is itself checked by CI, which diffs the figure across
// -workers values.
func ParScaleFigure(points []ParScalePoint) *Figure {
	f := &Figure{
		ID:    "parscale",
		Title: "Deterministic parallel control round at 10k-100k servers (baseline numbers; all worker counts verified bit-identical)",
		Columns: []string{
			"servers", "vms", "energy_kwh", "mean_active_servers",
			"overload_pct", "migrations", "parity_ok",
		},
	}
	for _, p := range points {
		r := p.Baseline
		f.Add(
			float64(p.Servers),
			float64(p.VMs),
			r.EnergyKWh,
			r.MeanActiveServers,
			100*r.VMOverloadTimeFrac,
			float64(r.TotalLowMigrations+r.TotalHighMigrations),
			1,
		)
		f.Notef("%d servers / %d VMs: %.0f kWh, %.0f mean active, parity verified across every configured worker count",
			p.Servers, p.VMs, r.EnergyKWh, r.MeanActiveServers)
	}
	return f
}

package experiments

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/obs"
	"repro/internal/trace"
)

// RunConfig is the cross-experiment core every Options struct embeds: the
// four knobs shared by (nearly) every experiment, plus the telemetry
// recorder threaded down into the simulation layers. Experiments that have
// no direct use for a field document the mapping on their Options type
// (e.g. churn-driven experiments map NumVMs to the initial VM population).
type RunConfig struct {
	Servers int           `json:"servers"` // fleet size
	NumVMs  int           `json:"num_vms"` // workload size
	Horizon time.Duration `json:"horizon"` // simulated time
	Seed    uint64        `json:"seed"`    // master seed

	// Workers routes the per-server control-round work through an
	// internal/par pool with that many workers (0 = sequential). Results
	// are bit-identical at every worker count, so Workers is a throughput
	// knob, not part of the experiment's identity; it still appears in
	// manifests so a recorded run names the engine it used.
	Workers int `json:"workers,omitempty"`

	// Obs receives run telemetry when non-nil; it is not part of the
	// experiment's identity and stays out of manifests.
	Obs *obs.Recorder `json:"-"`
}

// overlay returns def with every non-zero field of o applied on top: the
// merge rule the registry uses to apply caller overrides to an experiment's
// defaults. A zero Seed keeps the default (every default seed is 1, and
// seeded reproduction runs never ask for seed 0).
func (o RunConfig) overlay(def RunConfig) RunConfig {
	if o.Servers > 0 {
		def.Servers = o.Servers
	}
	if o.NumVMs > 0 {
		def.NumVMs = o.NumVMs
	}
	if o.Horizon > 0 {
		def.Horizon = o.Horizon
	}
	if o.Seed != 0 {
		def.Seed = o.Seed
	}
	if o.Workers > 0 {
		def.Workers = o.Workers
	}
	def.Obs = o.Obs
	return def
}

// ClusterConfig converts the cross-experiment core into the cluster run it
// describes: the shared knobs (Horizon, Workers, Obs) come from o, the
// per-experiment ones (fleet, workload, cadences, power model) from the
// arguments. Every experiment builds its cluster.RunConfig here and then
// applies its own overrides (Initial, RecordServerUtil, a capped horizon) on
// the returned value — one place to wire new cluster fields instead of a
// hand-copied literal per experiment file. Experiments whose runs execute
// concurrently must clear Obs on the result: a recorder shared across
// concurrent runs would interleave their journals nondeterministically.
func (o RunConfig) ClusterConfig(specs []dc.Spec, ws *trace.Set, control, sample time.Duration, pm dc.PowerModel) cluster.RunConfig {
	return cluster.RunConfig{
		Specs:           specs,
		Workload:        ws,
		Horizon:         o.Horizon,
		ControlInterval: control,
		SampleInterval:  sample,
		PowerModel:      pm,
		Workers:         o.Workers,
		Obs:             o.Obs,
	}
}

// scaleInt multiplies n by scale, keeping a workable minimum of 3 so shrunk
// experiments still have a fleet to consolidate.
func scaleInt(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 3 {
		v = 3
	}
	return v
}

package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/ecocloud"
	"repro/internal/fluid"
	"repro/internal/trace"
)

// AssignOnlyOptions parameterizes the §IV experiment: the assignment
// procedure in isolation (migrations inhibited), run both in the simulator
// (Fig. 12) and in the fluid model fed with the lambda(t)/mu(t) extracted
// from the same workload (Fig. 13).
// AssignOnlyOptions embeds RunConfig with churn semantics: NumVMs is the
// initial VM population (Churn.InitialVMs) and Horizon the churn horizon;
// both are copied into Churn when the experiment runs.
type AssignOnlyOptions struct {
	RunConfig     // Servers paper: 100
	Cores     int // paper: 6 (2 GHz)

	Churn trace.ChurnConfig
	Eco   ecocloud.Config

	// Exact selects the combinatorial A_s for the model run; the paper uses
	// the approximate equations (11) at this scale.
	Exact bool
	// RateBucket is the granularity at which lambda/mu are extracted from
	// the workload.
	RateBucket time.Duration

	Control time.Duration
	Sample  time.Duration
}

// DefaultAssignOnlyOptions returns the paper's Fig. 12/13 setup: 100
// six-core servers, 1,500 initial VMs spread round-robin (a non-consolidated
// start with most servers at 10–30% load), 18 hours starting at midnight.
func DefaultAssignOnlyOptions() AssignOnlyOptions {
	eco := ecocloud.DefaultConfig()
	eco.DisableMigration = true
	churn := trace.DefaultChurnConfig()
	return AssignOnlyOptions{
		RunConfig:  RunConfig{Servers: 100, NumVMs: churn.InitialVMs, Horizon: churn.Horizon, Seed: 1},
		Cores:      6,
		Churn:      churn,
		Eco:        eco,
		RateBucket: 30 * time.Minute,
		Control:    5 * time.Minute,
		Sample:     30 * time.Minute,
	}
}

// AssignOnlyResult bundles the simulator run, the model run, and the shared
// workload so Fig. 12 and Fig. 13 stay directly comparable.
type AssignOnlyResult struct {
	Sim      *cluster.Result
	Model    *fluid.Result
	Workload *trace.Set
	Servers  int
	// ActiveThreshold is the utilization above which a model server counts
	// as active.
	ActiveThreshold float64
	capacityMHz     float64
}

// AssignOnly runs both the simulation and the fluid model.
func AssignOnly(opts AssignOnlyOptions) (*AssignOnlyResult, error) {
	opts.Eco.DisableMigration = true // the experiment's defining constraint
	// RunConfig is canonical: NumVMs/Horizon drive the churn generator.
	opts.Churn.InitialVMs = opts.NumVMs
	opts.Churn.Horizon = opts.Horizon
	ws, err := trace.GenerateChurn(opts.Churn, opts.Seed)
	if err != nil {
		return nil, err
	}
	pol, err := ecocloud.New(opts.Eco, opts.Seed+1)
	if err != nil {
		return nil, err
	}
	specs := dc.UniformFleet(opts.Servers, opts.Cores, 2000)
	ccfg := opts.ClusterConfig(specs, ws, opts.Control, opts.Sample, dc.DefaultPowerModel())
	ccfg.Horizon = opts.Churn.Horizon
	ccfg.Initial = cluster.SpreadRoundRobin
	ccfg.RecordServerUtil = true
	simRes, err := cluster.Run(ccfg, pol)
	if err != nil {
		return nil, err
	}

	// Fluid model fed with the rates extracted from the same workload
	// (the paper: "From the traces we computed the values of lambda(t) and
	// mu(t) and put the same values in the approximate differential
	// equations").
	capacity := float64(opts.Cores) * 2000
	lambda, muVM := ws.Rates(opts.Churn.Horizon, opts.RateBucket)
	muCore := make([]float64, len(muVM))
	for i, m := range muVM {
		muCore[i] = fluid.PerVMRate(m, opts.Cores)
	}
	meanDemand := ws.MeanDemandMHz(0)
	if meanDemand <= 0 {
		return nil, fmt.Errorf("experiments: churn workload has no initial demand")
	}
	fa, err := ecocloud.NewAssignProb(opts.Eco.Ta, opts.Eco.P)
	if err != nil {
		return nil, err
	}
	fcfg := fluid.Config{
		Ns:      opts.Servers,
		Nc:      opts.Cores,
		Lambda:  fluid.StepRate(lambda, opts.RateBucket),
		Mu:      fluid.StepRate(muCore, opts.RateBucket),
		VMLoad:  meanDemand / capacity,
		Fa:      fa,
		Exact:   opts.Exact,
		Dt:      time.Minute,
		SeedU:   0.02,
		OffU:    0.005,
		MassEps: 0.5,
	}
	initial := initialSpreadUtil(ws, opts.Servers, capacity)
	modelRes, err := fluid.Run(fcfg, initial, opts.Churn.Horizon, opts.Sample)
	if err != nil {
		return nil, err
	}
	return &AssignOnlyResult{
		Sim:             simRes,
		Model:           modelRes,
		Workload:        ws,
		Servers:         opts.Servers,
		ActiveThreshold: 0.01,
		capacityMHz:     capacity,
	}, nil
}

// initialSpreadUtil reproduces the cluster driver's SpreadRoundRobin: VMs
// alive at t=0, in (Start, ID) order, land on servers round-robin. The fluid
// model starts from the identical utilization vector, as Eq. (10) requires.
func initialSpreadUtil(ws *trace.Set, servers int, capacityMHz float64) []float64 {
	var initial []*trace.VM
	for _, vm := range ws.VMs {
		if vm.Start == 0 {
			initial = append(initial, vm)
		}
	}
	sort.Slice(initial, func(i, j int) bool { return initial[i].ID < initial[j].ID })
	u := make([]float64, servers)
	for i, vm := range initial {
		u[i%servers] += vm.DemandAt(0) / capacityMHz
	}
	return u
}

// Fig12 materializes Figure 12: per-server utilization from the simulation.
func (a *AssignOnlyResult) Fig12() *Figure {
	cols := append([]string{"time_h", "overall_load"}, serverCols(a.Servers)...)
	f := &Figure{
		ID:      "fig12",
		Title:   "CPU utilization of 100 servers, obtained with simulation",
		Columns: cols,
	}
	for i, t := range a.Sim.SampleTimes {
		row := make([]float64, 0, a.Servers+2)
		row = append(row, t.Hours(), a.Sim.OverallLoad.V[i])
		row = append(row, a.Sim.ServerUtil[i]...)
		f.Add(row...)
	}
	f.Notef("final active servers (simulation): %d of %d (paper: 45)",
		a.Sim.FinalActiveServers, a.Servers)
	return f
}

// Fig13 materializes Figure 13: per-server utilization from the fluid model.
func (a *AssignOnlyResult) Fig13() *Figure {
	cols := append([]string{"time_h", "overall_load"}, serverCols(a.Servers)...)
	f := &Figure{
		ID:      "fig13",
		Title:   "CPU utilization of 100 servers, obtained with the analytical model",
		Columns: cols,
	}
	for i, t := range a.Model.Times {
		row := make([]float64, 0, a.Servers+2)
		row = append(row, t.Hours(), a.Workload.TotalDemandAt(t)/(float64(a.Servers)*a.capacityMHz))
		row = append(row, a.Model.U[i]...)
		f.Add(row...)
	}
	simFinal := a.Sim.FinalActiveServers
	modelFinal := a.Model.FinalActive(a.ActiveThreshold)
	f.Notef("final active servers (model): %d of %d (paper: 43)", modelFinal, a.Servers)
	f.Notef("simulation vs model: %d vs %d active servers (paper: 45 vs 43)", simFinal, modelFinal)
	return f
}

func serverCols(n int) []string {
	cols := make([]string, n)
	for s := 0; s < n; s++ {
		cols[s] = serverCol(s)
	}
	return cols
}

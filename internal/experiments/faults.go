package experiments

import (
	"fmt"
	"time"

	"repro/internal/dc"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FaultsOptions parameterizes the fault-injection study: the full
// distributed system of protocolday — arrivals, departures, migration, all
// on the wire — run on hardware that crashes, wake commands that fail or
// stall, and a fabric that drops and duplicates messages. The paper assumes
// perfect machinery; this experiment measures how the self-organizing
// algorithm degrades, sweeping a grid of MTBF x MTTR cells with the wake
// and network impairments held fixed.
type FaultsOptions struct {
	RunConfig
	Churn  trace.ChurnConfig
	Proto  protocol.Config
	Faults faults.Config

	// The sweep grid. Each (MTBF, MTTR) pair is one run (one figure row);
	// the other Faults fields apply to every cell.
	MTBFs []time.Duration
	MTTRs []time.Duration
}

// DefaultFaultsOptions runs 100 six-core servers for 12 hours per grid
// cell, from hostile (a crash every 2 h per server) to merely unreliable
// (one per day), with 1% message loss and flaky wake-ups throughout.
func DefaultFaultsOptions() FaultsOptions {
	churn := trace.DefaultChurnConfig()
	churn.Horizon = 12 * time.Hour
	proto := protocol.DefaultConfig()
	proto.EnableMigration = true
	proto.Impairments = netsim.Impairments{DropProb: 0.01, DupProb: 0.005}
	proto.RoundTimeout = 10 * time.Millisecond
	proto.AssignRetry = 30 * time.Second
	proto.MigTimeout = 5 * time.Minute
	return FaultsOptions{
		RunConfig: RunConfig{Servers: 100, NumVMs: churn.InitialVMs, Horizon: churn.Horizon, Seed: 1},
		Churn:     churn,
		Proto:     proto,
		Faults:    faults.DefaultConfig(),
		MTBFs:     []time.Duration{2 * time.Hour, 6 * time.Hour, 24 * time.Hour},
		MTTRs:     []time.Duration{10 * time.Minute, 30 * time.Minute},
	}
}

// faultCell is one grid cell's outcome.
type faultCell struct {
	MTBF, MTTR time.Duration
	Inj        faults.Stats
	Proto      protocol.Stats
	Active     int
	Failed     int
	Avail      float64
}

// Faults runs the sweep and reports availability, recovery latency and the
// re-placement storms each cell produced.
func Faults(opts FaultsOptions) (*Figure, error) {
	opts.Churn.InitialVMs = opts.NumVMs
	opts.Churn.Horizon = opts.Horizon
	opts.Proto.Obs = opts.Obs
	opts.Proto.Workers = opts.Workers
	opts.Faults.Obs = opts.Obs
	if len(opts.MTBFs) == 0 || len(opts.MTTRs) == 0 {
		return nil, fmt.Errorf("experiments: faults sweep needs MTBFs and MTTRs")
	}
	f := &Figure{
		ID:    "faults",
		Title: "Graceful degradation under crashes, wake failures and message loss",
		Columns: []string{
			"mtbf_h", "mttr_min", "crashes", "recoveries",
			"vms_evacuated", "max_storm", "replacements",
			"wake_failures", "wake_stalls", "assigns_lost", "migrations_expired",
			"availability", "mean_repair_s", "downtime_vm_s",
			"final_active", "final_failed",
		},
	}
	worst := 1.0
	var worstCell faultCell
	for _, mtbf := range opts.MTBFs {
		for _, mttr := range opts.MTTRs {
			fcfg := opts.Faults
			fcfg.MTBF, fcfg.MTTR = mtbf, mttr
			cell, err := runFaultCell(opts, fcfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: faults cell MTBF=%v MTTR=%v: %v", mtbf, mttr, err)
			}
			f.Add(
				mtbf.Hours(), mttr.Minutes(),
				float64(cell.Inj.Crashes), float64(cell.Inj.Recoveries),
				float64(cell.Inj.VMsEvacuated), float64(cell.Inj.MaxStorm),
				float64(cell.Inj.Replaced),
				float64(cell.Inj.WakeFails), float64(cell.Inj.WakeStalls),
				float64(cell.Proto.AssignsLost), float64(cell.Proto.MigrationsExpired),
				cell.Avail, cell.Inj.MeanRepair().Seconds(), cell.Inj.DowntimeSeconds,
				float64(cell.Active), float64(cell.Failed),
			)
			if cell.Avail < worst {
				worst, worstCell = cell.Avail, cell
			}
		}
	}
	f.Notef("every cell completed and passed the runtime audit: degradation is graceful, not catastrophic")
	f.Notef("worst cell (MTBF=%v, MTTR=%v): availability %.4f, %d crashes evacuated %d VMs (largest storm %d), mean repair %v",
		worstCell.MTBF, worstCell.MTTR, worst, worstCell.Inj.Crashes,
		worstCell.Inj.VMsEvacuated, worstCell.Inj.MaxStorm, worstCell.Inj.MeanRepair().Round(time.Second))
	f.Notef("wake gate over all cells: failures and stalls are absorbed by assign retries (lossy fabric: %.1f%% drop, %.1f%% dup)",
		100*opts.Proto.Impairments.DropProb, 100*opts.Proto.Impairments.DupProb)
	return f, nil
}

// runFaultCell runs one (MTBF, MTTR) cell end to end.
func runFaultCell(opts FaultsOptions, fcfg faults.Config) (faultCell, error) {
	ws, err := trace.GenerateChurn(opts.Churn, opts.Seed)
	if err != nil {
		return faultCell{}, err
	}
	c, err := protocol.New(opts.Proto, dc.UniformFleet(opts.Servers, 6, 2000), opts.Seed+1)
	if err != nil {
		return faultCell{}, err
	}
	defer c.Close()
	inj, err := faults.New(fcfg, opts.Servers, opts.Churn.Horizon, opts.Seed+2)
	if err != nil {
		return faultCell{}, err
	}
	c.SetWakeGate(inj)
	c.SetOnPlaced(inj.OnPlaced)
	inj.Start(c.Engine(), c)
	for _, vm := range ws.VMs {
		vm := vm
		c.Engine().Schedule(vm.Start, "arrival", func(*sim.Engine) { c.PlaceVM(vm) })
		if vm.End < opts.Churn.Horizon {
			c.Engine().Schedule(vm.End, "departure", func(*sim.Engine) {
				if _, ok := c.DC().HostOf(vm.ID); ok {
					if _, err := c.DC().Remove(vm.ID); err != nil {
						panic(fmt.Sprintf("experiments: faults departure: %v", err))
					}
				}
			})
		}
	}
	c.StartMigrationScan()
	c.Engine().Run(opts.Churn.Horizon)
	inj.Finish()
	// Graceful degradation is a claim about state, not just survival: the
	// wreckage must still satisfy every structural and runtime invariant.
	if err := c.DC().CheckInvariants(); err != nil {
		return faultCell{}, fmt.Errorf("post-run invariants: %v", err)
	}
	if err := c.DC().CheckRuntime(opts.Churn.Horizon); err != nil {
		return faultCell{}, fmt.Errorf("post-run runtime audit: %v", err)
	}
	total := 0.0
	for _, vm := range ws.VMs {
		if end := min(vm.End, opts.Churn.Horizon); end > vm.Start {
			total += (end - vm.Start).Seconds()
		}
	}
	return faultCell{
		MTBF:   fcfg.MTBF,
		MTTR:   fcfg.MTTR,
		Inj:    inj.Stats,
		Proto:  c.Stats,
		Active: c.DC().ActiveCount(),
		Failed: c.DC().FailedCount(),
		Avail:  inj.Stats.Availability(total),
	}, nil
}

package experiments

import (
	"bytes"
	"fmt"
	"strconv"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/ecocloud"
	"repro/internal/trace"
)

// ForkedSweepOptions parameterizes the checkpoint-branched sensitivity
// study. One base-config run is checkpointed at Warmup; every sweep cell
// then FORKS from that shared warm prefix instead of re-simulating it. All
// cells therefore share an identical history up to the branch point — the
// parameter under study is the only thing that differs — and the prefix is
// paid for once instead of once per cell.
//
// The correctness proof rides along: the base-config cell (an identity fork
// of the checkpoint) is byte-compared — every series sample as hex floats,
// every aggregate, the full event journal — against a from-scratch
// uninterrupted base run. Any checkpoint/restore lossiness fails the
// experiment rather than skewing the sweep.
type ForkedSweepOptions struct {
	RunConfig

	Base    ecocloud.Config
	Gen     trace.GenConfig
	Power   dc.PowerModel
	Control time.Duration
	Sample  time.Duration

	// Warmup is the shared-prefix length: the checkpoint is captured at the
	// end of the control tick at this instant. Must be a positive multiple
	// of Control, before the horizon.
	Warmup time.Duration

	// The branch grid: Th and Tl values branched from the warm prefix, plus
	// labeled replicate branches of the base config whose rng streams are
	// re-seeded through checkpoint.Fork — identical past, decorrelated
	// future — to estimate run-to-run spread.
	ThValues   []float64
	TlValues   []float64
	Replicates int
}

// DefaultForkedSweepOptions is a half-day study at moderate scale: the sweep
// multiplies run count, but each cell only simulates the post-branch suffix.
func DefaultForkedSweepOptions() ForkedSweepOptions {
	gen := trace.DefaultGenConfig()
	gen.NumVMs = 600
	gen.Horizon = 12 * time.Hour
	return ForkedSweepOptions{
		RunConfig:  RunConfig{Servers: 60, NumVMs: gen.NumVMs, Horizon: gen.Horizon, Seed: 1},
		Base:       ecocloud.DefaultConfig(),
		Gen:        gen,
		Power:      dc.DefaultPowerModel(),
		Control:    5 * time.Minute,
		Sample:     30 * time.Minute,
		Warmup:     3 * time.Hour,
		ThValues:   []float64{0.85, 0.92, 0.98},
		TlValues:   []float64{0.30, 0.40, 0.50},
		Replicates: 3,
	}
}

// ForkedSweepPoint is one branched cell. Param is "base", "Th", "Tl" or
// "replicate" (Value then holds the replicate index).
type ForkedSweepPoint struct {
	Param string
	Value float64

	MeanActive  float64
	Migrations  int
	OverloadPct float64
	EnergyKWh   float64
}

// ForkedSweepResult carries the sweep points and the correctness proof.
type ForkedSweepResult struct {
	Points []ForkedSweepPoint
	// ProofBytes is the size of the byte-compared output over which the
	// identity-forked base cell matched the from-scratch run exactly.
	ProofBytes int
}

// fingerprintResult serializes everything the fork proof compares: every
// sampled series with hex-exact floats, the aggregates, and the event
// journal verbatim.
func fingerprintResult(res *cluster.Result, journal []byte) []byte {
	var b bytes.Buffer
	hexF := func(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }
	series := func(s *struct {
		name string
		t    []time.Duration
		v    []float64
	}) {
		fmt.Fprintf(&b, "series %s:", s.name)
		for i := range s.v {
			fmt.Fprintf(&b, " %d=%s", int64(s.t[i]), hexF(s.v[i]))
		}
		b.WriteByte('\n')
	}
	for _, s := range []struct {
		name string
		t    []time.Duration
		v    []float64
	}{
		{"active_servers", res.ActiveServers.T, res.ActiveServers.V},
		{"power_w", res.PowerW.T, res.PowerW.V},
		{"overall_load", res.OverallLoad.T, res.OverallLoad.V},
		{"overdemand_pct", res.OverDemandPct.T, res.OverDemandPct.V},
		{"low_migrations", res.LowMigrations.T, res.LowMigrations.V},
		{"high_migrations", res.HighMigrations.T, res.HighMigrations.V},
		{"activations", res.Activations.T, res.Activations.V},
		{"hibernations", res.Hibernations.T, res.Hibernations.V},
	} {
		s := s
		series(&s)
	}
	fmt.Fprintf(&b, "agg %s %s %s %s %d %d %d %d %d %d\n",
		hexF(res.EnergyKWh), hexF(res.MeanActiveServers),
		hexF(res.VMOverloadTimeFrac), hexF(res.GrantedFracInOverload),
		res.TotalLowMigrations, res.TotalHighMigrations,
		res.TotalActivations, res.TotalHibernations,
		res.Saturations, res.FinalActiveServers)
	b.WriteString("journal:\n")
	b.Write(journal)
	return b.Bytes()
}

// ForkedSweep warms the shared prefix, proves the branch machinery lossless,
// and runs the grid. Cells run concurrently; each resumes from its own deep
// fork of the checkpoint.
func ForkedSweep(opts ForkedSweepOptions) (*ForkedSweepResult, error) {
	gen := opts.Gen
	gen.NumVMs = opts.NumVMs
	gen.Horizon = opts.Horizon
	ws, err := trace.Generate(gen, opts.Seed)
	if err != nil {
		return nil, err
	}
	specs := dc.StandardFleet(opts.Servers)
	baseCluster := func(events *bytes.Buffer) cluster.RunConfig {
		ccfg := opts.ClusterConfig(specs, ws, opts.Control, opts.Sample, opts.Power)
		ccfg.Obs = nil // cells run concurrently; see ClusterConfig
		if events != nil {
			ccfg.EventLog = events
		}
		return ccfg
	}

	// Warm prefix: base config to Warmup, checkpoint, stop.
	var ck *checkpoint.Checkpoint
	var prefixLog bytes.Buffer
	basePol, err := ecocloud.New(opts.Base, opts.Seed+1)
	if err != nil {
		return nil, err
	}
	if _, err := cluster.Run(baseCluster(&prefixLog), basePol,
		cluster.WithCheckpointAt(opts.Warmup, func(c *checkpoint.Checkpoint) error { ck = c; return nil }),
		cluster.WithCheckpointStop(),
	); err != nil {
		return nil, fmt.Errorf("experiments: forkedsweep warmup: %v", err)
	}

	// Proof leg 1: from-scratch uninterrupted base run.
	var scratchLog bytes.Buffer
	scratchPol, err := ecocloud.New(opts.Base, opts.Seed+1)
	if err != nil {
		return nil, err
	}
	scratchRes, err := cluster.Run(baseCluster(&scratchLog), scratchPol)
	if err != nil {
		return nil, fmt.Errorf("experiments: forkedsweep scratch run: %v", err)
	}
	want := fingerprintResult(scratchRes, scratchLog.Bytes())

	// One branched cell: fork the checkpoint (empty label = identity,
	// otherwise a deterministic rng re-seed) and resume under cfg.
	runBranch := func(cfg ecocloud.Config, label string, events *bytes.Buffer) (*cluster.Result, error) {
		branch, err := ck.Fork(label)
		if err != nil {
			return nil, err
		}
		pol, err := ecocloud.New(cfg, opts.Seed+1)
		if err != nil {
			return nil, err
		}
		return cluster.Run(baseCluster(events), pol, cluster.WithResume(branch))
	}

	// Proof leg 2: the identity-forked base cell must reproduce leg 1's
	// bytes exactly, with the prefix journal spliced before the suffix one.
	var suffixLog bytes.Buffer
	forkRes, err := runBranch(opts.Base, "", &suffixLog)
	if err != nil {
		return nil, fmt.Errorf("experiments: forkedsweep proof cell: %v", err)
	}
	spliced := append(append([]byte(nil), prefixLog.Bytes()...), suffixLog.Bytes()...)
	got := fingerprintResult(forkRes, spliced)
	if !bytes.Equal(got, want) {
		return nil, fmt.Errorf("experiments: forkedsweep proof FAILED: identity fork diverges from the from-scratch run (%d vs %d bytes)", len(got), len(want))
	}

	// The grid. The proven base cell is point zero.
	point := func(param string, value float64, res *cluster.Result) ForkedSweepPoint {
		return ForkedSweepPoint{
			Param:       param,
			Value:       value,
			MeanActive:  res.MeanActiveServers,
			Migrations:  res.TotalLowMigrations + res.TotalHighMigrations,
			OverloadPct: 100 * res.VMOverloadTimeFrac,
			EnergyKWh:   res.EnergyKWh,
		}
	}
	type job struct {
		param string
		value float64
		cfg   ecocloud.Config
		label string
	}
	var jobs []job
	for _, th := range opts.ThValues {
		cfg := opts.Base
		cfg.Th = th
		if cfg.Tl >= th {
			cfg.Tl = th - 0.1
		}
		jobs = append(jobs, job{"Th", th, cfg, ""})
	}
	for _, tl := range opts.TlValues {
		cfg := opts.Base
		cfg.Tl = tl
		jobs = append(jobs, job{"Tl", tl, cfg, ""})
	}
	for i := 1; i <= opts.Replicates; i++ {
		jobs = append(jobs, job{"replicate", float64(i), opts.Base, "rep/" + strconv.Itoa(i)})
	}
	cells := make([]ForkedSweepPoint, len(jobs))
	err = forEach(len(jobs), func(i int) error {
		res, err := runBranch(jobs[i].cfg, jobs[i].label, nil)
		if err != nil {
			return fmt.Errorf("experiments: forkedsweep %s=%v: %v", jobs[i].param, jobs[i].value, err)
		}
		cells[i] = point(jobs[i].param, jobs[i].value, res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &ForkedSweepResult{ProofBytes: len(want)}
	out.Points = append(out.Points, point("base", 0, forkRes))
	out.Points = append(out.Points, cells...)
	return out, nil
}

// Figure materializes the sweep, one row per branched cell. The param column
// is encoded: 0=base, 1=Th, 2=Tl, 3=replicate.
func (r *ForkedSweepResult) Figure() *Figure {
	f := &Figure{
		ID:    "forkedsweep",
		Title: "Checkpoint-branched sensitivity sweep (shared warm prefix)",
		Columns: []string{
			"param_idx", "value", "mean_active", "migrations", "overload_pct", "energy_kwh",
		},
	}
	idx := map[string]float64{"base": 0, "Th": 1, "Tl": 2, "replicate": 3}
	for _, p := range r.Points {
		f.Add(idx[p.Param], p.Value, p.MeanActive, float64(p.Migrations), p.OverloadPct, p.EnergyKWh)
		f.Notef("%s=%.2f: mean active %.1f, %d migrations, %.4f%% overload, %.2f kWh",
			p.Param, p.Value, p.MeanActive, p.Migrations, p.OverloadPct, p.EnergyKWh)
	}
	f.Notef("identity-fork proof: %d bytes compared equal to the from-scratch run", r.ProofBytes)
	return f
}

package experiments

import (
	"testing"
	"time"

	"repro/internal/ecocloud"
	"repro/internal/trace"
)

func quickForkedSweepOptions() ForkedSweepOptions {
	opts := DefaultForkedSweepOptions()
	opts.Servers = 12
	opts.NumVMs = 60
	opts.Horizon = 3 * time.Hour
	opts.Warmup = time.Hour
	opts.Gen = trace.DefaultGenConfig()
	opts.ThValues = []float64{0.85, 0.95}
	opts.TlValues = []float64{0.40}
	opts.Replicates = 2
	return opts
}

// TestForkedSweep runs the small grid end to end. The byte-identity proof
// (identity-forked base cell vs from-scratch run) is internal to ForkedSweep:
// reaching a result at all means it held.
func TestForkedSweep(t *testing.T) {
	opts := quickForkedSweepOptions()
	res, err := ForkedSweep(opts)
	if err != nil {
		t.Fatalf("forkedsweep: %v", err)
	}
	if res.ProofBytes == 0 {
		t.Fatal("proof compared zero bytes")
	}
	want := 1 + len(opts.ThValues) + len(opts.TlValues) + opts.Replicates
	if len(res.Points) != want {
		t.Fatalf("%d points, want %d", len(res.Points), want)
	}
	if res.Points[0].Param != "base" {
		t.Fatalf("first point is %q, want the proven base cell", res.Points[0].Param)
	}
	fig := res.Figure()
	if rows := len(fig.Column("param_idx")); rows != want {
		t.Fatalf("figure has %d rows, want %d", rows, want)
	}
}

// TestForkedSweepReplicatesDiverge: labeled replicate branches share the
// prefix but must decorrelate after the branch point — their suffixes (and
// hence their aggregates) should not all coincide with the base cell's.
func TestForkedSweepReplicatesDiverge(t *testing.T) {
	opts := quickForkedSweepOptions()
	opts.ThValues = nil
	opts.TlValues = nil
	opts.Replicates = 3
	res, err := ForkedSweep(opts)
	if err != nil {
		t.Fatalf("forkedsweep: %v", err)
	}
	base := res.Points[0]
	diverged := false
	for _, p := range res.Points[1:] {
		if p.Param != "replicate" {
			t.Fatalf("unexpected point %+v", p)
		}
		if p.MeanActive != base.MeanActive || p.EnergyKWh != base.EnergyKWh ||
			p.Migrations != base.Migrations {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("every replicate branch reproduced the base cell exactly; rng re-seeding is not taking effect")
	}
}

// TestForkedSweepRegistered: the registry entry runs at quick scale and
// produces the figure.
func TestForkedSweepRegistered(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full quick-scale sweep")
	}
	eco := ecocloud.DefaultConfig()
	res, err := Run("forkedsweep", RunRequest{Scale: 0.2, Eco: &eco})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Figures) != 1 || res.Figures[0].ID != "forkedsweep" {
		t.Fatalf("unexpected figures: %+v", res.Figures)
	}
}

package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/ecocloud"
	"repro/internal/trace"
)

// The SoA goldens pin the cluster runner's output BYTES — every sampled
// series, the aggregates, the per-server utilization matrix and the event
// journal — for seeds 42–44 at workers 0, 1 and 8. They were captured before
// the flat hot-state (structure-of-arrays) refactor of internal/dc, so any
// layout change that moves a single bit of behaviour fails this test against
// the pre-refactor truth, not against itself. Regenerate (only when an
// intentional behaviour change is being made) with:
//
//	go test ./internal/experiments -run TestSoAGoldenDifferential -update-soa-golden
var updateSoAGolden = flag.Bool("update-soa-golden", false, "rewrite the SoA differential goldens")

// soaGoldenSeeds and soaGoldenWorkers span the differential matrix. Workers
// 0 (pristine sequential), 1 (pool code path, inline) and 8 (real fan-out)
// must all reproduce the same bytes.
var (
	soaGoldenSeeds   = []uint64{42, 43, 44}
	soaGoldenWorkers = []int{0, 1, 8}
)

// soaGoldenConfig is a deliberately policy-rich cell: arrivals, departures,
// migrations in both directions, hibernations and wake-ups all occur at this
// scale, and RecordServerUtil plus the event log exercise every output path
// the refactor touches.
func soaGoldenConfig(t *testing.T, seed uint64, workers int, events *bytes.Buffer) (cluster.RunConfig, cluster.Policy) {
	t.Helper()
	gen := trace.DefaultGenConfig()
	gen.NumVMs = 240
	gen.Horizon = 6 * time.Hour
	ws, err := trace.Generate(gen, seed)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	pol, err := ecocloud.New(ecocloud.DefaultConfig(), seed+1)
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	return cluster.RunConfig{
		Specs:            dc.StandardFleet(48),
		Workload:         ws,
		Horizon:          gen.Horizon,
		ControlInterval:  5 * time.Minute,
		SampleInterval:   30 * time.Minute,
		PowerModel:       dc.DefaultPowerModel(),
		Workers:          workers,
		RecordServerUtil: true,
		EventLog:         events,
	}, pol
}

// hex formats a float with every bit visible; the goldens must not depend on
// decimal rounding.
func hex(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// marshalSoAResult serializes everything the goldens pin. The event journal
// goes in verbatim; floats go in as hex.
func marshalSoAResult(res *cluster.Result, events []byte) []byte {
	var b bytes.Buffer
	writeSeries := func(name string, tt []time.Duration, vv []float64) {
		fmt.Fprintf(&b, "series %s:", name)
		for i := range vv {
			fmt.Fprintf(&b, " %d=%s", int64(tt[i]), hex(vv[i]))
		}
		b.WriteByte('\n')
	}
	writeSeries("active_servers", res.ActiveServers.T, res.ActiveServers.V)
	writeSeries("power_w", res.PowerW.T, res.PowerW.V)
	writeSeries("overall_load", res.OverallLoad.T, res.OverallLoad.V)
	writeSeries("overdemand_pct", res.OverDemandPct.T, res.OverDemandPct.V)
	writeSeries("low_migrations", res.LowMigrations.T, res.LowMigrations.V)
	writeSeries("high_migrations", res.HighMigrations.T, res.HighMigrations.V)
	writeSeries("activations", res.Activations.T, res.Activations.V)
	writeSeries("hibernations", res.Hibernations.T, res.Hibernations.V)
	for i, t := range res.SampleTimes {
		fmt.Fprintf(&b, "util %d:", int64(t))
		for _, u := range res.ServerUtil[i] {
			fmt.Fprintf(&b, " %s", hex(u))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "agg energy_kwh %s\n", hex(res.EnergyKWh))
	fmt.Fprintf(&b, "agg mean_active %s\n", hex(res.MeanActiveServers))
	fmt.Fprintf(&b, "agg overload_frac %s\n", hex(res.VMOverloadTimeFrac))
	fmt.Fprintf(&b, "agg granted_frac %s\n", hex(res.GrantedFracInOverload))
	fmt.Fprintf(&b, "agg max_mig_per_hour %s\n", hex(res.MaxMigrationsPerHour))
	fmt.Fprintf(&b, "agg mean_concurrent_mig %s\n", hex(res.MeanConcurrentMigrations))
	fmt.Fprintf(&b, "agg ints %d %d %d %d %d %d %d\n",
		res.TotalLowMigrations, res.TotalHighMigrations,
		res.TotalActivations, res.TotalHibernations,
		res.Saturations, res.FinalActiveServers, res.MaxConcurrentMigrations)
	b.WriteString("journal:\n")
	b.Write(events)
	return b.Bytes()
}

func soaGoldenPath(seed uint64) string {
	return filepath.Join("testdata", fmt.Sprintf("soa_golden_seed%d.txt", seed))
}

// TestSoAGoldenDifferential runs the matrix and compares every run's bytes
// against the committed pre-refactor goldens.
func TestSoAGoldenDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is 9 full runs")
	}
	for _, seed := range soaGoldenSeeds {
		want, err := os.ReadFile(soaGoldenPath(seed))
		if err != nil && !*updateSoAGolden {
			t.Fatalf("golden for seed %d missing (run with -update-soa-golden): %v", seed, err)
		}
		for _, workers := range soaGoldenWorkers {
			var events bytes.Buffer
			cfg, pol := soaGoldenConfig(t, seed, workers, &events)
			res, err := cluster.Run(cfg, pol)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			got := marshalSoAResult(res, events.Bytes())
			if *updateSoAGolden {
				if workers == soaGoldenWorkers[0] {
					if err := os.WriteFile(soaGoldenPath(seed), got, 0o644); err != nil {
						t.Fatalf("writing golden: %v", err)
					}
					want = got
					continue
				}
			}
			if !bytes.Equal(got, want) {
				t.Errorf("seed %d workers %d: output diverges from pre-refactor golden (%d vs %d bytes)",
					seed, workers, len(got), len(want))
			}
		}
	}
}

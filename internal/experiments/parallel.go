package experiments

import (
	"runtime"
	"sync"
)

// forEach runs fn(i) for i in [0, n) across min(GOMAXPROCS, n) workers and
// returns the first error (by index order, so failures are deterministic).
// Every fn(i) writes only to its own index of the caller's result slice, so
// parallel execution is observationally identical to the sequential loop —
// each simulation is self-contained and seeded independently.
func forEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

package experiments

import (
	"runtime"

	"repro/internal/par"
)

// forEach runs fn(i) for i in [0, n) across min(GOMAXPROCS, n) workers of a
// short-lived internal/par pool and returns the first error (by index order,
// so failures are deterministic). Every fn(i) writes only to its own index
// of the caller's result slice, so parallel execution is observationally
// identical to the sequential loop — each simulation is self-contained and
// seeded independently. Items are whole simulations, so the fan-out is one
// task per item rather than par's static shards.
func forEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	pool := par.New(workers)
	defer pool.Close()
	errs := make([]error, n)
	par.Items(pool, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

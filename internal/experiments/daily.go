package experiments

import (
	"strconv"
	"time"

	"repro/internal/bins"
	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/ecocloud"
	"repro/internal/trace"
)

// DailyOptions parameterizes the two-day trace-driven experiment (§III) that
// produces Figures 6–11. Servers is the fleet size (paper: 400, thirds of
// 4/6/8 cores), NumVMs the workload size (paper: 6,000), Horizon the
// simulated span (paper: 48 hours from midnight).
type DailyOptions struct {
	RunConfig

	Eco     ecocloud.Config
	Gen     trace.GenConfig
	Power   dc.PowerModel
	Control time.Duration // migration-scan cadence
	Sample  time.Duration // metric cadence (paper: 30 minutes)

	// Cluster options forwarded to cluster.Run — checkpoint capture, resume,
	// event logs. Nil for a plain run. Excluded from the run manifest:
	// options are closures, not configuration values.
	Cluster []cluster.Option `json:"-"`
}

// DefaultDailyOptions returns the paper's §III configuration: Ta=0.90 p=3
// Tl=0.50 Th=0.95 alpha=beta=0.25, 400 servers, 6,000 VMs, 48 hours.
func DefaultDailyOptions() DailyOptions {
	gen := trace.DefaultGenConfig()
	return DailyOptions{
		RunConfig: RunConfig{Servers: 400, NumVMs: gen.NumVMs, Horizon: gen.Horizon, Seed: 1},
		Eco:       ecocloud.DefaultConfig(),
		Gen:       gen,
		Power:     dc.DefaultPowerModel(),
		Control:   5 * time.Minute,
		Sample:    30 * time.Minute,
	}
}

// scale shrinks the generator to the requested VM count and horizon.
func (o DailyOptions) genConfig() trace.GenConfig {
	g := o.Gen
	g.NumVMs = o.NumVMs
	g.Horizon = o.Horizon
	return g
}

// DailyResult bundles the run with the figures extracted from it.
type DailyResult struct {
	Run      *cluster.Result
	Workload *trace.Set
	Servers  int
	// TaForBound is the packing threshold the theoretical-minimum bound of
	// Fig. 7 uses (the run's Ta).
	TaForBound float64
}

// Daily runs the two-day scenario under ecoCloud and returns the raw result;
// call Figures to materialize Figs. 6–11.
func Daily(opts DailyOptions) (*DailyResult, error) {
	ws, err := trace.Generate(opts.genConfig(), opts.Seed)
	if err != nil {
		return nil, err
	}
	pol, err := ecocloud.New(opts.Eco, opts.Seed+1)
	if err != nil {
		return nil, err
	}
	cfg := opts.ClusterConfig(dc.StandardFleet(opts.Servers), ws, opts.Control, opts.Sample, opts.Power)
	cfg.RecordServerUtil = true
	res, err := cluster.Run(cfg, pol, opts.Cluster...)
	if err != nil {
		return nil, err
	}
	return &DailyResult{Run: res, Workload: ws, Servers: opts.Servers, TaForBound: opts.Eco.Ta}, nil
}

// Fig6 materializes Figure 6: per-server CPU utilization over time with the
// overall load as reference. Columns: time_h, overall_load, s0..sN-1.
func (d *DailyResult) Fig6() *Figure {
	cols := make([]string, 0, d.Servers+2)
	cols = append(cols, "time_h", "overall_load")
	for s := 0; s < d.Servers; s++ {
		cols = append(cols, serverCol(s))
	}
	f := &Figure{
		ID:      "fig6",
		Title:   "CPU utilization of the servers during two consecutive days",
		Columns: cols,
	}
	for i, t := range d.Run.SampleTimes {
		row := make([]float64, 0, d.Servers+2)
		row = append(row, t.Hours(), d.Run.OverallLoad.V[i])
		row = append(row, d.Run.ServerUtil[i]...)
		f.Add(row...)
	}
	return f
}

// Fig7 materializes Figure 7: the number of active servers over time,
// alongside two references for the abstract's "efficiency very close to the
// theoretical minimum": the fluid capacity bound (largest servers packed to
// Ta — a true lower bound that ignores item granularity) and the offline
// First-Fit-Decreasing packing of the instantaneous VM set (an *achievable*
// static packing, i.e. what an omniscient repacker could do at that moment).
func (d *DailyResult) Fig7() *Figure {
	f := &Figure{
		ID:      "fig7",
		Title:   "Number of active servers during two consecutive days",
		Columns: []string{"time_h", "active_servers", "theoretical_min", "ffd_offline"},
	}
	specs := dc.StandardFleet(d.Servers)
	binCaps := make([]float64, len(specs))
	for i, sp := range specs {
		binCaps[i] = d.TaForBound * sp.CapacityMHz()
	}
	var sumActive, sumMin, sumFFD float64
	for i, t := range d.Run.ActiveServers.T {
		min := float64(dc.MinServersFor(specs, d.Workload.TotalDemandAt(t), d.TaForBound))
		ffd := min
		if items := aliveDemands(d.Workload, t); len(items) > 0 {
			if used, _, err := bins.FFD(bins.Problem{Items: items, Bins: binCaps}); err == nil {
				ffd = float64(used)
			}
		} else {
			ffd = 0
		}
		f.Add(t.Hours(), d.Run.ActiveServers.V[i], min, ffd)
		sumActive += d.Run.ActiveServers.V[i]
		sumMin += min
		sumFFD += ffd
	}
	f.Notef("mean active servers: %.1f of %d", d.Run.MeanActiveServers, d.Servers)
	if sumMin > 0 {
		f.Notef("mean active / theoretical minimum = %.3f (paper: 'very close to the theoretical minimum')",
			sumActive/sumMin)
	}
	if sumFFD > 0 {
		f.Notef("mean active / offline FFD packing = %.3f (vs an omniscient instantaneous repacker)",
			sumActive/sumFFD)
	}
	return f
}

// aliveDemands collects the instantaneous demands of VMs alive at t,
// clamped to the largest usable bin so transient overload spikes do not
// make the offline instance infeasible.
func aliveDemands(ws *trace.Set, t time.Duration) []float64 {
	out := make([]float64, 0, len(ws.VMs))
	for _, vm := range ws.VMs {
		if d := vm.DemandAt(t); d > 0 {
			out = append(out, d)
		}
	}
	return out
}

// Fig8 materializes Figure 8: the power consumed by the data center.
func (d *DailyResult) Fig8() *Figure {
	f := &Figure{
		ID:      "fig8",
		Title:   "Power consumed by the data center (W)",
		Columns: []string{"time_h", "power_w"},
	}
	for i, t := range d.Run.PowerW.T {
		f.Add(t.Hours(), d.Run.PowerW.V[i])
	}
	f.Notef("total energy: %.1f kWh over %.0f h", d.Run.EnergyKWh, d.Run.Horizon.Hours())
	return f
}

// Fig9 materializes Figure 9: low and high migrations per hour.
func (d *DailyResult) Fig9() *Figure {
	f := &Figure{
		ID:      "fig9",
		Title:   "Number of low and high migrations per hour",
		Columns: []string{"time_h", "low_per_hour", "high_per_hour"},
	}
	low, high := d.Run.LowMigrations, d.Run.HighMigrations
	for i, t := range low.T {
		h := 0.0
		if i < len(high.V) {
			h = high.V[i]
		}
		f.Add(t.Hours(), low.V[i], h)
	}
	f.Notef("total migrations: %d low, %d high; peak rate %.0f/hour (paper: always < 200/hour)",
		d.Run.TotalLowMigrations, d.Run.TotalHighMigrations, d.Run.MaxMigrationsPerHour)
	return f
}

// Fig10 materializes Figure 10: server switches (activations/hibernations)
// per hour.
func (d *DailyResult) Fig10() *Figure {
	f := &Figure{
		ID:      "fig10",
		Title:   "Number of server switches per hour",
		Columns: []string{"time_h", "activations_per_hour", "hibernations_per_hour"},
	}
	act, hib := d.Run.Activations, d.Run.Hibernations
	for i, t := range act.T {
		f.Add(t.Hours(), act.V[i], hib.V[i])
	}
	f.Notef("total switches: %d activations, %d hibernations",
		d.Run.TotalActivations, d.Run.TotalHibernations)
	return f
}

// Fig11 materializes Figure 11: the percentage of time in which demanded CPU
// cannot be granted because of overload.
func (d *DailyResult) Fig11() *Figure {
	f := &Figure{
		ID:      "fig11",
		Title:   "Fraction of time of CPU over-demand (%)",
		Columns: []string{"time_h", "overdemand_pct"},
	}
	for i, t := range d.Run.OverDemandPct.T {
		f.Add(t.Hours(), d.Run.OverDemandPct.V[i])
	}
	f.Notef("overall VM-time in overload: %.5f%% (paper: never above 0.02%%)",
		100*d.Run.VMOverloadTimeFrac)
	f.Notef("violation episodes <= 1 control tick: %.3f (paper analogue: >98%% shorter than 30 s)",
		d.Run.Episodes.FractionShorterThan(d.Run.Episodes.Tick))
	f.Notef("CPU granted during overload: %.4f (paper: >= 98%%)", d.Run.GrantedFracInOverload)
	return f
}

// Figures materializes all six figures of the daily experiment.
func (d *DailyResult) Figures() []*Figure {
	return []*Figure{d.Fig6(), d.Fig7(), d.Fig8(), d.Fig9(), d.Fig10(), d.Fig11()}
}

// serverCol names per-server columns consistently across Figs. 6, 12, 13.
func serverCol(s int) string { return "s" + strconv.Itoa(s) }

package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	const n = 100
	var hits [n]int32
	if err := forEach(n, func(i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	for _, n := range []int{0, -3} {
		if err := forEach(n, func(int) error {
			t.Errorf("fn called for n=%d", n)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestForEachFirstErrorByIndex: when several indices fail, the reported
// error is the lowest-index one regardless of completion order, so a failing
// sweep fails identically run to run.
func TestForEachFirstErrorByIndex(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for trial := 0; trial < 10; trial++ {
		err := forEach(8, func(i int) error {
			switch i {
			case 2:
				return errLow
			case 6:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("trial %d: got %v, want the index-2 error", trial, err)
		}
	}
}

// registryCase is one experiment invocation small enough for the concurrent
// equivalence test.
type registryCase struct {
	name string
	req  RunRequest
}

func parallelCases() []registryCase {
	return []registryCase{
		{"fig2", RunRequest{}},
		{"fig3", RunRequest{}},
		{"traces", RunRequest{Config: RunConfig{NumVMs: 400, Horizon: 6 * time.Hour}}},
		{"fluiderror", RunRequest{Config: RunConfig{Servers: 20, Horizon: 6 * time.Hour}}},
		{"daily", RunRequest{Config: RunConfig{Servers: 20, NumVMs: 300, Horizon: 6 * time.Hour}}},
	}
}

// figureRows extracts the numeric content of a result for comparison.
func figureRows(res *RunResult) map[string][][]float64 {
	out := make(map[string][][]float64, len(res.Figures))
	for _, f := range res.Figures {
		out[f.ID] = f.Rows
	}
	return out
}

// TestRegistryParallelMatchesSequential runs five experiments concurrently
// through the registry (via the same forEach the sweep drivers use) and
// asserts each produces exactly the rows its sequential run produces.
// Under -race this also proves the registry and experiment drivers share no
// mutable state across concurrent runs.
func TestRegistryParallelMatchesSequential(t *testing.T) {
	cases := parallelCases()

	sequential := make([]map[string][][]float64, len(cases))
	for i, c := range cases {
		res, err := Run(c.name, c.req)
		if err != nil {
			t.Fatalf("%s sequential: %v", c.name, err)
		}
		sequential[i] = figureRows(res)
	}

	concurrent := make([]map[string][][]float64, len(cases))
	if err := forEach(len(cases), func(i int) error {
		res, err := Run(cases[i].name, cases[i].req)
		if err != nil {
			return fmt.Errorf("%s concurrent: %w", cases[i].name, err)
		}
		concurrent[i] = figureRows(res)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	for i, c := range cases {
		if !reflect.DeepEqual(sequential[i], concurrent[i]) {
			t.Errorf("%s: concurrent run diverges from sequential run", c.name)
		}
	}
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/dc"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ProtocolDayOptions parameterizes a full day of operation of the complete
// distributed system — arrivals, departures and the migration procedure all
// running as wire messages on the simulated fabric. Where the Figs. 6–11
// driver abstracts the protocol into function calls, this experiment
// measures what the paper's architecture actually costs on the network:
// control messages, bandwidth (including live-migration transfers), and the
// latencies users would see.
// ProtocolDayOptions embeds RunConfig with churn semantics: NumVMs is the
// initial VM population (Churn.InitialVMs) and Horizon the churn horizon;
// both are copied into Churn when the experiment runs.
type ProtocolDayOptions struct {
	RunConfig
	Churn trace.ChurnConfig
	Proto protocol.Config
}

// DefaultProtocolDayOptions runs 100 six-core servers for 24 hours under
// the paper's parameters with 4 GiB live migrations.
func DefaultProtocolDayOptions() ProtocolDayOptions {
	churn := trace.DefaultChurnConfig()
	churn.Horizon = 24 * time.Hour
	cfg := protocol.DefaultConfig()
	cfg.EnableMigration = true
	return ProtocolDayOptions{
		RunConfig: RunConfig{Servers: 100, NumVMs: churn.InitialVMs, Horizon: churn.Horizon, Seed: 1},
		Churn:     churn,
		Proto:     cfg,
	}
}

// ProtocolDay runs the experiment and reports the control-plane budget.
func ProtocolDay(opts ProtocolDayOptions) (*Figure, error) {
	// RunConfig is canonical: NumVMs/Horizon drive the churn generator.
	opts.Churn.InitialVMs = opts.NumVMs
	opts.Churn.Horizon = opts.Horizon
	opts.Proto.Obs = opts.Obs
	opts.Proto.Workers = opts.Workers
	ws, err := trace.GenerateChurn(opts.Churn, opts.Seed)
	if err != nil {
		return nil, err
	}
	c, err := protocol.New(opts.Proto, dc.UniformFleet(opts.Servers, 6, 2000), opts.Seed+1)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	for _, vm := range ws.VMs {
		vm := vm
		c.Engine().Schedule(vm.Start, "arrival", func(*sim.Engine) { c.PlaceVM(vm) })
		if vm.End < opts.Churn.Horizon {
			c.Engine().Schedule(vm.End, "departure", func(*sim.Engine) {
				if _, ok := c.DC().HostOf(vm.ID); ok {
					if _, err := c.DC().Remove(vm.ID); err != nil {
						panic(fmt.Sprintf("experiments: protocol-day departure: %v", err))
					}
				}
			})
		}
	}
	c.StartMigrationScan()
	c.Engine().Run(opts.Churn.Horizon)
	if err := c.DC().CheckInvariants(); err != nil {
		return nil, fmt.Errorf("experiments: protocol day left inconsistent state: %v", err)
	}

	hours := opts.Churn.Horizon.Hours()
	migrations := c.Stats.MigrationsLow + c.Stats.MigrationsHigh
	f := &Figure{
		ID:    "protocolday",
		Title: "One day of the complete distributed system on the wire",
		Columns: []string{
			"placements", "migrations_low", "migrations_high", "migrations_aborted",
			"wakes", "saturations", "messages", "megabytes",
			"placement_latency_us", "migration_latency_ms", "final_active",
		},
	}
	migLatMS := float64(c.Stats.MeanMigrationLatency().Microseconds()) / 1000
	f.Add(
		float64(c.Stats.Placements),
		float64(c.Stats.MigrationsLow), float64(c.Stats.MigrationsHigh),
		float64(c.Stats.MigrationsAborted),
		float64(c.Stats.Wakes), float64(c.Stats.Saturations),
		float64(c.MessagesSent()), float64(c.BytesSent())/(1<<20),
		float64(c.Stats.MeanLatency().Microseconds()), migLatMS,
		float64(c.DC().ActiveCount()),
	)
	f.Notef("%d placements and %d migrations over %.0f h cost %d wire messages (%.0f/hour) and %.1f MiB "+
		"(live transfers dominate: %d migrations x %d MiB)",
		c.Stats.Placements, migrations, hours,
		c.MessagesSent(), float64(c.MessagesSent())/hours,
		float64(c.BytesSent())/(1<<20), migrations, opts.Proto.TransferBytes>>20)
	f.Notef("placement latency %v mean; migration (request to cutover) %.0f ms mean",
		c.Stats.MeanLatency(), migLatMS)
	f.Notef("end of day: %d of %d servers active; %d migration requests aborted (no destination)",
		c.DC().ActiveCount(), opts.Servers, c.Stats.MigrationsAborted)
	return f, nil
}

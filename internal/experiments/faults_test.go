package experiments

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
)

// runFaultsGolden runs the registered "faults" experiment at test scale —
// one hostile grid cell, crashes and wake failures and a lossy fabric all
// active — and returns the figure CSV plus the raw JSONL journal. Faults are
// the hardest case for the determinism contract: crash schedules, evacuation
// storms and dropped messages must all replay bit-identically from the seed.
func runFaultsGolden(t *testing.T, seed uint64) (csv, journal []byte) {
	t.Helper()
	var jbuf bytes.Buffer
	res, err := Run("faults", RunRequest{
		Config: RunConfig{
			Servers: 20,
			NumVMs:  300,
			Horizon: 4 * time.Hour,
			Seed:    seed,
			Obs:     obs.NewRecorder(nil, obs.NewJournal(&jbuf)),
		},
		Scale: 0.2, // collapses the sweep to a single (2 h, 10 min) cell
	})
	if err != nil {
		t.Fatal(err)
	}
	var cbuf bytes.Buffer
	for _, f := range res.Figures {
		fmt.Fprintf(&cbuf, "== %s ==\n", f.ID)
		if err := f.WriteCSV(&cbuf); err != nil {
			t.Fatal(err)
		}
	}
	return cbuf.Bytes(), jbuf.Bytes()
}

// TestFaultsIsSeedDeterministic extends the golden determinism test to the
// fault-injection pipeline: two same-seed runs must produce byte-identical
// CSV output and event journals even while servers crash, wakes fail, and
// the fabric drops and duplicates messages.
func TestFaultsIsSeedDeterministic(t *testing.T) {
	csv1, journal1 := runFaultsGolden(t, 42)
	csv2, journal2 := runFaultsGolden(t, 42)

	if !bytes.Equal(csv1, csv2) {
		t.Errorf("same seed, different CSV output (%d vs %d bytes)", len(csv1), len(csv2))
		t.Logf("first divergence at byte %d", firstDiff(csv1, csv2))
	}
	if !bytes.Equal(journal1, journal2) {
		t.Errorf("same seed, different journals (%d vs %d bytes)", len(journal1), len(journal2))
		t.Logf("first divergence at byte %d", firstDiff(journal1, journal2))
	}
	if len(journal1) == 0 {
		t.Error("journal is empty; the determinism check is vacuous")
	}
	// The run must actually have injected faults, or the test is vacuous in
	// a different way: a fault-free run trivially replays. Crashes reach the
	// journal as dc "fail" events.
	if !bytes.Contains(journal1, []byte(`"fail"`)) {
		t.Error("journal records no crashes; fault injection did not run")
	}
}

// TestFaultsSeedChangesOutput pins the other half of the contract: a
// different seed must perturb the fault schedule and the resulting run.
func TestFaultsSeedChangesOutput(t *testing.T) {
	_, journal1 := runFaultsGolden(t, 42)
	_, journal2 := runFaultsGolden(t, 43)
	if bytes.Equal(journal1, journal2) {
		t.Error("seeds 42 and 43 produced identical journals; the seed is not reaching the fault schedule")
	}
}

package experiments

import (
	"math"
	"time"

	"repro/internal/fluid"
	"repro/internal/rng"
)

// FluidErrorOptions parameterizes the quantification of §IV's claim that
// the approximate model (Eq. 11) "proved to be very close" to the exact one
// (Eq. 6–9). Two measurements: (a) the pointwise relative error of the
// per-server arrival terms over random utilization states, and (b) the
// divergence of full trajectories integrated from the same initial
// conditions.
// NumVMs is unused here — the fluid model works on rates, not on a discrete
// VM population.
type FluidErrorOptions struct {
	RunConfig
	States int // random states for the pointwise comparison
}

// DefaultFluidErrorOptions matches the paper's 100-server analysis scale.
func DefaultFluidErrorOptions() FluidErrorOptions {
	return FluidErrorOptions{
		RunConfig: RunConfig{Servers: 100, Horizon: 12 * time.Hour, Seed: 1},
		States:    200,
	}
}

// FluidError runs both measurements and reports them as a figure.
func FluidError(opts FluidErrorOptions) (*Figure, error) {
	f := &Figure{
		ID:    "fluiderror",
		Title: "Approximate (Eq. 11) vs exact (Eq. 6-9) assignment model",
		Columns: []string{
			"state_idx", "mean_abs_rel_err", "max_abs_rel_err",
		},
	}
	mkCfg := func(exact bool) fluid.Config {
		cfg := fluid.DefaultConfig()
		cfg.Ns = opts.Servers
		cfg.Lambda = fluid.ConstRate(600)
		cfg.Mu = fluid.ConstRate(fluid.PerVMRate(0.667, cfg.Nc))
		cfg.Exact = exact
		return cfg
	}

	// (a) pointwise: compare the per-server derivative vectors.
	src := rng.New(opts.Seed)
	exactCfg, approxCfg := mkCfg(true), mkCfg(false)
	var worstMean, worstMax float64
	for s := 0; s < opts.States; s++ {
		u := make([]float64, opts.Servers)
		for i := range u {
			u[i] = src.Float64() * 0.88
		}
		de, err := fluid.Derivative(exactCfg, u, 0)
		if err != nil {
			return nil, err
		}
		da, err := fluid.Derivative(approxCfg, u, 0)
		if err != nil {
			return nil, err
		}
		// The decay terms are identical in both models, so de-da isolates
		// the arrival-term difference. Normalize by the average per-server
		// arrival share lambda*VMLoad/Ns: 1.0 means one server's entire
		// average share of the incoming work is attributed differently.
		share := exactCfg.Lambda(0) * exactCfg.VMLoad / float64(opts.Servers)
		var sum, max float64
		for i := range de {
			rel := math.Abs(de[i]-da[i]) / share
			sum += rel
			if rel > max {
				max = rel
			}
		}
		mean := sum / float64(len(de))
		f.Add(float64(s), mean, max)
		if mean > worstMean {
			worstMean = mean
		}
		if max > worstMax {
			worstMax = max
		}
	}
	f.Notef("pointwise arrival-term error over %d random states: worst mean %.4f, worst max %.4f",
		opts.States, worstMean, worstMax)

	// (b) trajectories: same initial conditions, same rates.
	init := make([]float64, opts.Servers)
	for i := range init {
		init[i] = 0.10 + 0.20*float64(i)/float64(opts.Servers-1)
	}
	re, err := fluid.Run(exactCfg, init, opts.Horizon, 30*time.Minute)
	if err != nil {
		return nil, err
	}
	ra, err := fluid.Run(approxCfg, init, opts.Horizon, 30*time.Minute)
	if err != nil {
		return nil, err
	}
	fe, fa := re.FinalActive(0.01), ra.FinalActive(0.01)
	f.Notef("trajectory: exact consolidates to %d servers, approximate to %d (paper: 'very close')", fe, fa)
	return f, nil
}

package dc

import (
	"math"
	"time"

	"repro/internal/trace"
)

// The demand kernel caches each server's aggregate CPU demand so the policy
// scans that dominate a run — assignment invitations and migration rounds
// evaluating UtilizationAt across the whole fleet — cost one float read per
// server instead of one trace lookup per hosted VM.
//
// Correctness contract: the cached value is BIT-IDENTICAL to the naive
// recomputation (a fresh sum of vm.DemandAt(t) in VM-ID order). That is what
// lets every caller — ecocloud, baseline, cluster, experiments — take the
// fast path with zero behavioural drift, and it dictates the design:
//
//   - The cache is filled lazily by the exact summation the naive path runs,
//     in the same (ID-sorted) order. Mutations do NOT fold a VM's demand in
//     or out of the cached sum incrementally — floating-point addition is not
//     associative, so that would change the bits. Place/Remove/Migrate just
//     invalidate (O(1)) and the next DemandAt refills.
//   - The filled value is keyed by a validity window [from, until): the
//     intersection of the hosted VMs' constant-demand windows (their current
//     trace epochs, clamped by lifetime). Any lookup inside the window is a
//     hit; the first lookup past an epoch boundary misses and refills.
//   - Per-VM step-function positions are memoized by trace.DemandCursor
//     (owned by the server, one per hosted VM), so refills are an array read
//     per VM rather than a division per VM.
//
// Layout: the aggregate (sum + validity window) and the counters live in the
// DataCenter's flat hot-state arrays (hot.go), indexed by server ID; only
// the per-VM cursors stay on the Server view. Both the hit path and the
// refill are zero-alloc — the parscale differential tests pin that with
// testing.AllocsPerRun.
//
// Concurrency: a server's cache is mutated on reads. That is safe under the
// project's execution model — the engine is single-threaded, and the only
// parallel fan-outs (ecocloud's invitation round, the experiment registry,
// the control round's span dispatch) partition servers, or whole data
// centers, across workers, and every cached word is indexed by server ID.
// Workloads shared between concurrent runs stay read-only: the cursors live
// here, not in trace.VM.

// invalidate drops the cached aggregate (the cursors stay; their memos are
// keyed by time, not by placement).
func (s *Server) invalidate() {
	h := &s.d.hot
	if h.kValid[s.ID] {
		h.kValid[s.ID] = false
		h.kInval[s.ID]++
	}
}

// insertCursor mirrors Server.insert at index i.
func (s *Server) insertCursor(i int, vm *trace.VM) {
	s.cursors = append(s.cursors, trace.DemandCursor{})
	copy(s.cursors[i+1:], s.cursors[i:])
	s.cursors[i] = trace.DemandCursor{VM: vm}
	s.invalidate()
}

// removeCursor mirrors Server.removeAt at index i.
func (s *Server) removeCursor(i int) {
	copy(s.cursors[i:], s.cursors[i+1:])
	s.cursors[len(s.cursors)-1] = trace.DemandCursor{}
	s.cursors = s.cursors[:len(s.cursors)-1]
	s.invalidate()
}

// recomputeDemandAt is the naive path: a fresh sum of per-VM trace lookups
// in VM-ID order. It is the reference the cache must reproduce bit for bit.
func (s *Server) recomputeDemandAt(t time.Duration) float64 {
	sum := 0.0
	for _, vm := range s.vms {
		sum += vm.DemandAt(t)
	}
	return sum
}

// demandAt serves a lookup through the kernel: hit on the cached window,
// refill through the cursors otherwise.
func (s *Server) demandAt(t time.Duration) float64 {
	if s.d.kernelDisabled {
		return s.recomputeDemandAt(t)
	}
	h := &s.d.hot
	if h.kValid[s.ID] && t >= h.kFrom[s.ID] && t < h.kUntil[s.ID] {
		h.kHits[s.ID]++
		return h.kSum[s.ID]
	}
	h.kMisses[s.ID]++
	return s.refill(t)
}

// refill recomputes the aggregate through the cursors — the exact summation
// (VM-ID order) the naive path runs — and installs the validity window. It
// does not touch the hit/miss counters; demandAt and WarmDemandCache account
// for their own accesses.
//
//ecolint:hotpath
func (s *Server) refill(t time.Duration) float64 {
	sum := 0.0
	from := time.Duration(math.MinInt64)
	until := time.Duration(math.MaxInt64)
	for i := range s.cursors {
		d, f, u := s.cursors[i].Lookup(t)
		sum += d
		if f > from {
			from = f
		}
		if u < until {
			until = u
		}
	}
	h := &s.d.hot
	h.kValid[s.ID], h.kFrom[s.ID], h.kUntil[s.ID], h.kSum[s.ID] = true, from, until, sum
	return sum
}

// WarmDemandCache refills the server's demand aggregate for time t without
// counting the access, so a prewarmed run reports the same total number of
// demand lookups as a sequential one (the hit/miss split shifts toward hits;
// the sum of the two is what the accounting tests pin down). It exists for
// the parallel control round: workers warm every server's cache up front —
// a per-server mutation, safe to shard — and the sequential policy scan that
// follows then takes the hit path for every server. The installed value is
// bit-identical to what a miss at t would have installed, so warming never
// changes any demand a later read returns. No-op when the kernel is disabled
// or the cached window already covers t.
func (s *Server) WarmDemandCache(t time.Duration) {
	if s.d.kernelDisabled {
		return
	}
	h := &s.d.hot
	if h.kValid[s.ID] && t >= h.kFrom[s.ID] && t < h.kUntil[s.ID] {
		return
	}
	s.refill(t)
}

// DemandCacheStats aggregates the demand kernel's counters across a fleet.
// Hits and misses count DemandAt lookups (and the UtilizationAt /
// OverDemandAt wrappers); invalidations count cache drops forced by
// Place/Remove/Migrate.
type DemandCacheStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
}

// DemandCacheStats sums the per-server kernel counters.
func (d *DataCenter) DemandCacheStats() DemandCacheStats {
	var st DemandCacheStats
	for i := range d.hot.kHits {
		st.Hits += d.hot.kHits[i]
		st.Misses += d.hot.kMisses[i]
		st.Invalidations += d.hot.kInval[i]
	}
	return st
}

// SetDemandCache enables or disables the demand kernel on every server.
// Disabling also drops any cached aggregates, so a subsequent re-enable
// starts cold. Enabling is a pure switch flip — it must not touch the
// aggregates, because a checkpoint restore reinstates them before the run
// re-arms the cache. The cache is on by default; the off position exists for
// the differential tests and the naive-vs-cached scalability benchmarks.
func (d *DataCenter) SetDemandCache(on bool) {
	d.kernelDisabled = !on
	if on {
		return
	}
	for i := range d.hot.kValid {
		d.hot.kValid[i] = false
	}
}

package dc

import (
	"math"
	"time"

	"repro/internal/trace"
)

// The demand kernel caches each server's aggregate CPU demand so the policy
// scans that dominate a run — assignment invitations and migration rounds
// evaluating UtilizationAt across the whole fleet — cost one float read per
// server instead of one trace lookup per hosted VM.
//
// Correctness contract: the cached value is BIT-IDENTICAL to the naive
// recomputation (a fresh sum of vm.DemandAt(t) in VM-ID order). That is what
// lets every caller — ecocloud, baseline, cluster, experiments — take the
// fast path with zero behavioural drift, and it dictates the design:
//
//   - The cache is filled lazily by the exact summation the naive path runs,
//     in the same (ID-sorted) order. Mutations do NOT fold a VM's demand in
//     or out of the cached sum incrementally — floating-point addition is not
//     associative, so that would change the bits. Place/Remove/Migrate just
//     invalidate (O(1)) and the next DemandAt refills.
//   - The filled value is keyed by a validity window [from, until): the
//     intersection of the hosted VMs' constant-demand windows (their current
//     trace epochs, clamped by lifetime). Any lookup inside the window is a
//     hit; the first lookup past an epoch boundary misses and refills.
//   - Per-VM step-function positions are memoized by trace.DemandCursor
//     (owned by the server, one per hosted VM), so refills are an array read
//     per VM rather than a division per VM.
//
// Concurrency: a server's cache is mutated on reads. That is safe under the
// project's execution model — the engine is single-threaded, and the only
// parallel fan-outs (ecocloud's invitation round, the experiment registry)
// partition servers, or whole data centers, across workers. Workloads shared
// between concurrent runs stay read-only: the cursors live here, not in
// trace.VM.
type demandKernel struct {
	// disabled switches DemandAt back to naive recomputation; the
	// differential tests and scalability benchmarks measure against it.
	disabled bool

	valid       bool
	from, until time.Duration
	sum         float64

	// cursors is index-parallel to Server.vms.
	cursors []trace.DemandCursor

	hits, misses, invalidations uint64
}

// invalidate drops the cached aggregate (the cursors stay; their memos are
// keyed by time, not by placement).
func (k *demandKernel) invalidate() {
	if k.valid {
		k.valid = false
		k.invalidations++
	}
}

// insertCursor mirrors Server.insert at index i.
func (k *demandKernel) insertCursor(i int, vm *trace.VM) {
	k.cursors = append(k.cursors, trace.DemandCursor{})
	copy(k.cursors[i+1:], k.cursors[i:])
	k.cursors[i] = trace.DemandCursor{VM: vm}
	k.invalidate()
}

// removeCursor mirrors Server.removeAt at index i.
func (k *demandKernel) removeCursor(i int) {
	copy(k.cursors[i:], k.cursors[i+1:])
	k.cursors[len(k.cursors)-1] = trace.DemandCursor{}
	k.cursors = k.cursors[:len(k.cursors)-1]
	k.invalidate()
}

// recomputeDemandAt is the naive path: a fresh sum of per-VM trace lookups
// in VM-ID order. It is the reference the cache must reproduce bit for bit.
func (s *Server) recomputeDemandAt(t time.Duration) float64 {
	sum := 0.0
	for _, vm := range s.vms {
		sum += vm.DemandAt(t)
	}
	return sum
}

// demandAt serves a lookup through the kernel: hit on the cached window,
// refill through the cursors otherwise.
func (s *Server) demandAt(t time.Duration) float64 {
	k := &s.kernel
	if k.disabled {
		return s.recomputeDemandAt(t)
	}
	if k.valid && t >= k.from && t < k.until {
		k.hits++
		return k.sum
	}
	k.misses++
	return k.refill(t)
}

// refill recomputes the aggregate through the cursors — the exact summation
// (VM-ID order) the naive path runs — and installs the validity window. It
// does not touch the hit/miss counters; demandAt and WarmDemandCache account
// for their own accesses.
func (k *demandKernel) refill(t time.Duration) float64 {
	sum := 0.0
	from := time.Duration(math.MinInt64)
	until := time.Duration(math.MaxInt64)
	for i := range k.cursors {
		d, f, u := k.cursors[i].Lookup(t)
		sum += d
		if f > from {
			from = f
		}
		if u < until {
			until = u
		}
	}
	k.valid, k.from, k.until, k.sum = true, from, until, sum
	return sum
}

// WarmDemandCache refills the server's demand aggregate for time t without
// counting the access, so a prewarmed run reports the same total number of
// demand lookups as a sequential one (the hit/miss split shifts toward hits;
// the sum of the two is what the accounting tests pin down). It exists for
// the parallel control round: workers warm every server's cache up front —
// a per-server mutation, safe to shard — and the sequential policy scan that
// follows then takes the hit path for every server. The installed value is
// bit-identical to what a miss at t would have installed, so warming never
// changes any demand a later read returns. No-op when the kernel is disabled
// or the cached window already covers t.
func (s *Server) WarmDemandCache(t time.Duration) {
	k := &s.kernel
	if k.disabled || (k.valid && t >= k.from && t < k.until) {
		return
	}
	k.refill(t)
}

// DemandCacheStats aggregates the demand kernel's counters across a fleet.
// Hits and misses count DemandAt lookups (and the UtilizationAt /
// OverDemandAt wrappers); invalidations count cache drops forced by
// Place/Remove/Migrate.
type DemandCacheStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
}

// DemandCacheStats sums the per-server kernel counters.
func (d *DataCenter) DemandCacheStats() DemandCacheStats {
	var st DemandCacheStats
	for _, s := range d.Servers {
		st.Hits += s.kernel.hits
		st.Misses += s.kernel.misses
		st.Invalidations += s.kernel.invalidations
	}
	return st
}

// SetDemandCache enables or disables the demand kernel on every server.
// Disabling also drops any cached aggregates, so a subsequent re-enable
// starts cold. The cache is on by default; the off position exists for the
// differential tests and the naive-vs-cached scalability benchmarks.
func (d *DataCenter) SetDemandCache(on bool) {
	for _, s := range d.Servers {
		s.kernel.disabled = !on
		s.kernel.valid = false
	}
}

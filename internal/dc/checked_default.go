//go:build !ecodebug

package dc

// defaultChecked is the initial Checked state of every DataCenter built by
// New. The ordinary build leaves checking off: CheckInvariants walks every
// server per mutation, which would dominate large-fleet runs.
const defaultChecked = false

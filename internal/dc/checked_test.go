package dc

import (
	"math"
	"strings"
	"testing"
	"time"
)

// mustPanic runs fn and returns the panic message, failing if fn returns.
func mustPanic(t *testing.T, fn func()) (msg string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a panic, got none")
		}
		msg = r.(string)
	}()
	fn()
	return ""
}

func TestCheckedModeDefaultsAndToggle(t *testing.T) {
	d := twoServerDC()
	if d.Checked() != defaultChecked {
		t.Fatalf("Checked() = %v after New, want defaultChecked (%v)", d.Checked(), defaultChecked)
	}
	d.SetChecked(true)
	if !d.Checked() {
		t.Fatal("Checked() = false after SetChecked(true)")
	}
	d.SetChecked(false)
	if d.Checked() {
		t.Fatal("Checked() = true after SetChecked(false)")
	}
}

// TestCheckedModePassesCleanRun drives a normal mutation sequence with
// checking on: no false positives.
func TestCheckedModePassesCleanRun(t *testing.T) {
	d := twoServerDC()
	d.SetChecked(true)
	s0, s1 := d.Servers[0], d.Servers[1]
	if err := d.Activate(s0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(s1, 0); err != nil {
		t.Fatal(err)
	}
	vm := constVM(7, 1000)
	if err := d.Place(vm, s0); err != nil {
		t.Fatal(err)
	}
	if err := d.Migrate(vm.ID, s1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Remove(vm.ID); err != nil {
		t.Fatal(err)
	}
	if err := d.Hibernate(s0); err != nil {
		t.Fatal(err)
	}
}

// TestCheckedModePanicsOnCorruption corrupts the unexported index between
// mutations and asserts the next mutation's verification panics with the
// mutation named in the message.
func TestCheckedModePanicsOnCorruption(t *testing.T) {
	d := twoServerDC()
	d.SetChecked(true)
	s0 := d.Servers[0]
	if err := d.Activate(s0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(1, 500), s0); err != nil {
		t.Fatal(err)
	}

	// Corrupt: drop the index entry while the server still hosts the VM.
	delete(d.byVM, 1)

	msg := mustPanic(t, func() {
		_ = d.Place(constVM(2, 500), s0)
	})
	if !strings.Contains(msg, "invariant violated after place") {
		t.Errorf("panic message %q does not name the mutation", msg)
	}
}

// TestCheckedModeOffToleratesCorruption pins the contract that the unchecked
// path never pays for verification: the same corruption goes unnoticed.
func TestCheckedModeOffToleratesCorruption(t *testing.T) {
	d := twoServerDC()
	d.SetChecked(false)
	s0 := d.Servers[0]
	if err := d.Activate(s0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(1, 500), s0); err != nil {
		t.Fatal(err)
	}
	delete(d.byVM, 1)
	if err := d.Place(constVM(2, 500), s0); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRuntimeCleanFleet(t *testing.T) {
	d := twoServerDC()
	s0 := d.Servers[0]
	if err := d.Activate(s0, 0); err != nil {
		t.Fatal(err)
	}
	// Over-demand is legal (it is the paper's overload condition), just
	// accounted: 9000 MHz on an 8000 MHz server must still pass.
	if err := d.Place(constVM(1, 9000), s0); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckRuntime(30 * time.Minute); err != nil {
		t.Fatalf("CheckRuntime on a clean fleet: %v", err)
	}
}

func TestCheckRuntimeRejectsBadDemand(t *testing.T) {
	cases := []struct {
		name string
		mhz  float64
		want string
	}{
		{"negative", -5, "negative demand"},
		{"nan", math.NaN(), "non-finite demand"},
		{"inf", math.Inf(1), "non-finite demand"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := twoServerDC()
			s0 := d.Servers[0]
			if err := d.Activate(s0, 0); err != nil {
				t.Fatal(err)
			}
			if err := d.Place(constVM(1, tc.mhz), s0); err != nil {
				t.Fatal(err)
			}
			err := d.CheckRuntime(0)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("CheckRuntime = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestCheckRuntimeRejectsDemandOnHibernated(t *testing.T) {
	d := twoServerDC()
	s0 := d.Servers[0]
	// Bypass the API to force the impossible state: a hibernated server
	// carrying a demanding VM.
	s0.insert(constVM(1, 500))
	err := d.CheckRuntime(0)
	if err == nil || !strings.Contains(err.Error(), "hibernated server") {
		t.Fatalf("CheckRuntime = %v, want hibernated-server error", err)
	}
}

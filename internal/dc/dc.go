// Package dc models the physical data center: heterogeneous servers, VM
// placement, power, and hibernation. It is policy-free — the consolidation
// algorithms (ecocloud, baseline) observe and mutate it through the
// placement/state API, so the same model backs every algorithm and the
// baseline comparison is apples-to-apples.
//
// The paper's testbed (§III): 400 servers, all with 2 GHz cores, one third
// with 4 cores, one third with 6, one third with 8.
package dc

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/trace"
)

// State is a server's power state.
type State int

const (
	// Hibernated servers consume (near) zero power and host no VMs.
	Hibernated State = iota
	// Active servers host VMs and consume idle+proportional power.
	Active
	// Failed servers have crashed: they host no VMs, draw no power, and
	// cannot be activated until they Recover (to Hibernated).
	Failed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Hibernated:
		return "hibernated"
	case Active:
		return "active"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Spec describes a server model.
type Spec struct {
	Cores   int
	CoreMHz float64
	// RAMMB is the server's memory in MiB. Zero means the memory dimension
	// is not modeled (the paper's CPU-only experiments); the §V
	// multi-resource extension sets it.
	RAMMB float64
}

// CapacityMHz returns the total CPU capacity of the spec.
func (s Spec) CapacityMHz() float64 { return float64(s.Cores) * s.CoreMHz }

// WithRAM returns a copy of specs with RAMMB set to mbPerCore * Cores on
// every server — the standard way to equip a fleet for the multi-resource
// experiments.
func WithRAM(specs []Spec, mbPerCore float64) []Spec {
	out := make([]Spec, len(specs))
	for i, sp := range specs {
		sp.RAMMB = mbPerCore * float64(sp.Cores)
		out[i] = sp
	}
	return out
}

// PowerModel maps utilization to electrical power. The paper cites that an
// active-but-idle server draws 65–70% of its fully-utilized power; power is
// linear in utilization between those endpoints, the standard model in the
// consolidation literature (Beloglazov & Buyya 2010).
type PowerModel struct {
	PeakW        float64 // draw at 100% utilization
	IdleFraction float64 // idle draw as a fraction of peak (paper: 0.65–0.70)
	HibernateW   float64 // draw while hibernated (sleep-mode residual)

	// SwitchKJ is the energy cost of one power-state transition
	// (activation or hibernation) in kilojoules — e.g. a 2-minute boot at
	// peak draw is 250 W * 120 s = 30 kJ. The paper treats switches as
	// instantaneous; a nonzero value quantifies why Fig. 10's low switch
	// frequency matters. Default 0 preserves the paper's semantics.
	SwitchKJ float64
}

// DefaultPowerModel returns the calibration used in the experiments:
// 250 W peak, 65% idle fraction, 5 W hibernated.
func DefaultPowerModel() PowerModel {
	return PowerModel{PeakW: 250, IdleFraction: 0.65, HibernateW: 5, SwitchKJ: 0}
}

// SwitchEnergyKWh converts a number of power-state transitions into the
// energy they cost under this model, in kWh.
func (p PowerModel) SwitchEnergyKWh(switches int) float64 {
	return p.SwitchKJ * float64(switches) / 3600
}

// Power returns the draw of a server in the given state at utilization u
// (clamped to [0,1]; over-demand cannot push the CPU past full speed).
// Failed servers draw nothing: a crashed machine is off the PDU.
func (p PowerModel) Power(state State, u float64) float64 {
	if state == Failed {
		return 0
	}
	if state == Hibernated {
		return p.HibernateW
	}
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return p.PeakW * (p.IdleFraction + (1-p.IdleFraction)*u)
}

// Server is one physical machine. All mutation goes through DataCenter so
// the vm→server index stays consistent. Hosted VMs are kept in an ID-sorted
// slice: iteration order (and therefore floating-point summation order) is
// deterministic, which keeps whole runs bit-reproducible.
//
// Server is a thin accessor view: the per-tick hot fields (power state, used
// RAM, activation time, the demand-kernel aggregate) live in the owning
// DataCenter's flat arrays (see hot.go), indexed by ID. Only the jagged
// per-server state — the VM slice and its demand cursors — lives here.
type Server struct {
	ID   int
	Spec Spec

	d   *DataCenter
	vms []*trace.VM // sorted by VM ID
	// cursors memoizes each hosted VM's step-function position
	// (index-parallel to vms; see demandkernel.go).
	cursors []trace.DemandCursor
}

// State returns the server's power state.
func (s *Server) State() State { return s.d.hot.state[s.ID] }

// ActivatedAt returns the virtual time of the most recent transition to
// Active; the assignment procedure's 30-minute grace period (§IV) keys
// off it.
func (s *Server) ActivatedAt() time.Duration { return s.d.hot.activatedAt[s.ID] }

// SetActivatedAt overrides the activation timestamp — scenario setup uses it
// to pre-activate servers with no grace period.
func (s *Server) SetActivatedAt(t time.Duration) { s.d.hot.activatedAt[s.ID] = t }

// NumVMs returns how many VMs the server currently hosts.
func (s *Server) NumVMs() int { return len(s.vms) }

// VMs returns the hosted VMs in ascending ID order. The returned slice is a
// copy; mutating it does not affect placement.
func (s *Server) VMs() []*trace.VM {
	out := make([]*trace.VM, len(s.vms))
	copy(out, s.vms)
	return out
}

// indexOf returns the position of vmID in the sorted slice, or -1.
func (s *Server) indexOf(vmID int) int {
	i := sort.Search(len(s.vms), func(i int) bool { return s.vms[i].ID >= vmID })
	if i < len(s.vms) && s.vms[i].ID == vmID {
		return i
	}
	return -1
}

// insert places vm into the sorted slice.
func (s *Server) insert(vm *trace.VM) {
	i := sort.Search(len(s.vms), func(i int) bool { return s.vms[i].ID >= vm.ID })
	s.vms = append(s.vms, nil)
	copy(s.vms[i+1:], s.vms[i:])
	s.vms[i] = vm
	s.d.hot.usedRAMMB[s.ID] += vm.RAMMB
	s.insertCursor(i, vm)
}

// removeAt deletes the VM at index i.
func (s *Server) removeAt(i int) {
	s.d.hot.usedRAMMB[s.ID] -= s.vms[i].RAMMB
	copy(s.vms[i:], s.vms[i+1:])
	s.vms[len(s.vms)-1] = nil
	s.vms = s.vms[:len(s.vms)-1]
	s.removeCursor(i)
}

// UsedRAMMB returns the summed memory footprint of hosted VMs.
func (s *Server) UsedRAMMB() float64 { return s.d.hot.usedRAMMB[s.ID] }

// RAMUtilization returns used/capacity memory, or 0 when the server does
// not model memory. Values above 1 mean overcommit (swapping).
func (s *Server) RAMUtilization() float64 {
	if s.Spec.RAMMB <= 0 {
		return 0
	}
	return s.d.hot.usedRAMMB[s.ID] / s.Spec.RAMMB
}

// CapacityMHz returns the server's total CPU capacity.
func (s *Server) CapacityMHz() float64 { return s.d.hot.capMHz[s.ID] }

// DemandAt returns the total CPU demand (MHz) of hosted VMs at time t. It
// can exceed capacity: that is an over-demand (overload) condition. Lookups
// are served by the demand kernel (see demandkernel.go): cached for the
// current trace epoch, bit-identical to a fresh per-VM summation.
//
//ecolint:hotpath
func (s *Server) DemandAt(t time.Duration) float64 {
	return s.demandAt(t)
}

// UtilizationAt returns demand/capacity at time t, uncapped, so values above
// 1 signal overload. Policies clamp as needed.
func (s *Server) UtilizationAt(t time.Duration) float64 {
	return s.DemandAt(t) / s.CapacityMHz()
}

// OverDemandAt returns the CPU demand (MHz) that cannot be granted at time t
// (0 when the server is not overloaded).
func (s *Server) OverDemandAt(t time.Duration) float64 {
	over := s.DemandAt(t) - s.CapacityMHz()
	if over < 0 {
		return 0
	}
	return over
}

// DataCenter is a fleet of servers plus the vm→server index.
type DataCenter struct {
	Servers []*Server
	byVM    map[int]*Server

	// hot holds the per-server fields every control tick touches, as flat
	// structure-of-arrays state indexed by server ID (see hot.go).
	hot hotState
	// kernelDisabled switches every DemandAt back to naive recomputation
	// (see SetDemandCache).
	kernelDisabled bool

	// Switch counters, incremented by Activate/Hibernate; experiment drivers
	// snapshot them into rate series (Fig. 10).
	Activations  int
	Hibernations int

	// Fault counters, incremented by Fail/Recover.
	Failures   int
	Recoveries int

	// journal, when set, receives every state mutation (see journal.go).
	journal func(Event)

	// checked enables per-mutation invariant verification (see checked.go).
	checked bool
}

// New builds a data center with one server per spec. Servers start
// hibernated; policies wake what they need.
func New(specs []Spec) *DataCenter {
	d := &DataCenter{
		byVM:    make(map[int]*Server),
		checked: defaultChecked,
		hot:     newHotState(len(specs)),
	}
	// One contiguous backing array: the views themselves are iterated in ID
	// order all over the codebase, so keep them dense too.
	backing := make([]Server, len(specs))
	d.Servers = make([]*Server, len(specs))
	for i, sp := range specs {
		if sp.Cores <= 0 || sp.CoreMHz <= 0 {
			panic(fmt.Sprintf("dc: invalid spec %d: %+v", i, sp))
		}
		backing[i] = Server{ID: i, Spec: sp, d: d}
		d.Servers[i] = &backing[i]
		d.hot.capMHz[i] = sp.CapacityMHz()
	}
	return d
}

// StandardFleet returns n servers in the paper's mix: thirds of 4-, 6- and
// 8-core machines, all with 2 GHz cores. When n is not divisible by 3 the
// remainder goes to the 8-core class.
func StandardFleet(n int) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		cores := 4
		switch {
		case i >= 2*n/3:
			cores = 8
		case i >= n/3:
			cores = 6
		}
		specs[i] = Spec{Cores: cores, CoreMHz: 2000}
	}
	return specs
}

// UniformFleet returns n identical servers, used by the Fig. 12/13
// experiments (100 servers with 6 cores at 2 GHz).
func UniformFleet(n, cores int, coreMHz float64) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Spec{Cores: cores, CoreMHz: coreMHz}
	}
	return specs
}

// TotalCapacityMHz sums the capacity of all servers, active or not.
func (d *DataCenter) TotalCapacityMHz() float64 {
	sum := 0.0
	for _, s := range d.Servers {
		sum += s.CapacityMHz()
	}
	return sum
}

// ActiveCount returns how many servers are currently active.
func (d *DataCenter) ActiveCount() int {
	n := 0
	for _, st := range d.hot.state {
		if st == Active {
			n++
		}
	}
	return n
}

// HostOf returns the server hosting vmID, if any.
func (d *DataCenter) HostOf(vmID int) (*Server, bool) {
	s, ok := d.byVM[vmID]
	return s, ok
}

// NumPlaced returns how many VMs are currently placed.
func (d *DataCenter) NumPlaced() int { return len(d.byVM) }

// Activate wakes a hibernated server at virtual time t. Failed servers
// cannot be woken: the wake command is lost on dead hardware.
func (d *DataCenter) Activate(s *Server, t time.Duration) error {
	if d.hot.state[s.ID] == Active {
		return fmt.Errorf("dc: server %d already active", s.ID)
	}
	if d.hot.state[s.ID] == Failed {
		return fmt.Errorf("dc: activating failed server %d", s.ID)
	}
	d.hot.state[s.ID] = Active
	d.hot.activatedAt[s.ID] = t
	d.Activations++
	d.emit(Event{Kind: EventActivate, VM: -1, Server: s.ID, Dest: -1})
	return nil
}

// Hibernate puts an active, empty server to sleep.
func (d *DataCenter) Hibernate(s *Server) error {
	if d.hot.state[s.ID] != Active {
		return fmt.Errorf("dc: server %d not active", s.ID)
	}
	if len(s.vms) > 0 {
		return fmt.Errorf("dc: server %d still hosts %d VMs", s.ID, len(s.vms))
	}
	d.hot.state[s.ID] = Hibernated
	d.Hibernations++
	d.emit(Event{Kind: EventHibernate, VM: -1, Server: s.ID, Dest: -1})
	return nil
}

// Place assigns an unplaced VM to an active server. Placing on a hibernated
// or failed server is a hard error in every build (not just checked mode):
// the fault path must never silently park a VM on a sleeping or dead machine.
func (d *DataCenter) Place(vm *trace.VM, s *Server) error {
	if st := d.hot.state[s.ID]; st != Active {
		return fmt.Errorf("dc: placing VM %d on %s server %d", vm.ID, st, s.ID)
	}
	if host, ok := d.byVM[vm.ID]; ok {
		return fmt.Errorf("dc: VM %d already placed on server %d", vm.ID, host.ID)
	}
	s.insert(vm)
	d.byVM[vm.ID] = s
	d.emit(Event{Kind: EventPlace, VM: vm.ID, Server: s.ID, Dest: -1})
	return nil
}

// Remove takes a VM off its host (departure) and returns the host.
func (d *DataCenter) Remove(vmID int) (*Server, error) {
	host, ok := d.byVM[vmID]
	if !ok {
		return nil, fmt.Errorf("dc: VM %d not placed", vmID)
	}
	host.removeAt(host.indexOf(vmID))
	delete(d.byVM, vmID)
	d.emit(Event{Kind: EventRemove, VM: vmID, Server: host.ID, Dest: -1})
	return host, nil
}

// Migrate moves a placed VM to another active server.
func (d *DataCenter) Migrate(vmID int, to *Server) error {
	from, ok := d.byVM[vmID]
	if !ok {
		return fmt.Errorf("dc: migrating unplaced VM %d", vmID)
	}
	if to == from {
		return fmt.Errorf("dc: migrating VM %d onto its own host %d", vmID, to.ID)
	}
	if st := d.hot.state[to.ID]; st != Active {
		return fmt.Errorf("dc: migrating VM %d to %s server %d", vmID, st, to.ID)
	}
	i := from.indexOf(vmID)
	vm := from.vms[i]
	from.removeAt(i)
	to.insert(vm)
	d.byVM[vmID] = to
	d.emit(Event{Kind: EventMigrate, VM: vmID, Server: from.ID, Dest: to.ID})
	return nil
}

// Fail crashes a server at virtual time t, from any live state. Hosted VMs
// are evicted (removed from the server and the index) and returned in
// ascending ID order so the caller can decide their fate — re-enter them
// through the assignment procedure, or count them as lost. The server ends
// in Failed and stays unusable until Recover.
func (d *DataCenter) Fail(s *Server, t time.Duration) ([]*trace.VM, error) {
	if d.hot.state[s.ID] == Failed {
		return nil, fmt.Errorf("dc: server %d already failed", s.ID)
	}
	evicted := s.VMs()
	for _, vm := range evicted {
		s.removeAt(s.indexOf(vm.ID))
		delete(d.byVM, vm.ID)
		d.emit(Event{Kind: EventCrashEvict, VM: vm.ID, Server: s.ID, Dest: -1})
	}
	d.hot.state[s.ID] = Failed
	d.Failures++
	d.emit(Event{Kind: EventFail, VM: -1, Server: s.ID, Dest: -1})
	return evicted, nil
}

// Recover returns a failed server to the wakeable pool at virtual time t. A
// repaired machine boots into Hibernated — policies wake it when they need
// it, exactly like a fresh server.
func (d *DataCenter) Recover(s *Server, t time.Duration) error {
	if st := d.hot.state[s.ID]; st != Failed {
		return fmt.Errorf("dc: recovering %s server %d", st, s.ID)
	}
	d.hot.state[s.ID] = Hibernated
	d.Recoveries++
	d.emit(Event{Kind: EventRecover, VM: -1, Server: s.ID, Dest: -1})
	return nil
}

// FailedCount returns how many servers are currently failed.
func (d *DataCenter) FailedCount() int {
	n := 0
	for _, st := range d.hot.state {
		if st == Failed {
			n++
		}
	}
	return n
}

// PowerAt returns the total electrical draw (W) of the fleet at time t under
// the given power model.
func (d *DataCenter) PowerAt(t time.Duration, pm PowerModel) float64 {
	sum := 0.0
	for i, st := range d.hot.state {
		sum += pm.Power(st, d.Servers[i].demandAt(t)/d.hot.capMHz[i])
	}
	return sum
}

// PlacedDemandAt returns the total demand (MHz) of all placed VMs at t.
func (d *DataCenter) PlacedDemandAt(t time.Duration) float64 {
	sum := 0.0
	for i, st := range d.hot.state {
		if st == Active {
			sum += d.Servers[i].demandAt(t)
		}
	}
	return sum
}

// OverDemandAt returns the total demand (MHz) that cannot be granted at t
// across all servers.
func (d *DataCenter) OverDemandAt(t time.Duration) float64 {
	sum := 0.0
	for _, s := range d.Servers {
		sum += s.OverDemandAt(t)
	}
	return sum
}

// MinServersFor returns the smallest number of servers from specs whose
// combined capacity, packed up to utilization ta, covers demandMHz —
// choosing the largest machines first, which is optimal for pure capacity
// covering. This is the "theoretical minimum" the paper's abstract compares
// ecoCloud's efficiency against (it ignores bin-packing granularity, so it
// is a true lower bound).
func MinServersFor(specs []Spec, demandMHz, ta float64) int {
	if demandMHz <= 0 {
		return 0
	}
	if ta <= 0 {
		panic(fmt.Sprintf("dc: MinServersFor with ta = %v", ta))
	}
	caps := make([]float64, len(specs))
	for i, sp := range specs {
		caps[i] = sp.CapacityMHz()
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(caps)))
	n := 0
	remaining := demandMHz
	for _, c := range caps {
		if remaining <= 0 {
			break
		}
		remaining -= ta * c
		n++
	}
	if remaining > 0 {
		// Demand exceeds the whole fleet's packed capacity; every server
		// plus notional extras would be needed. Report the fleet size: the
		// bound saturates.
		return len(specs)
	}
	return n
}

// CheckInvariants verifies internal consistency: every indexed VM is on the
// server the index claims, hosted VM sets match the index exactly, and only
// active servers host VMs (hibernated and failed servers must be empty).
// Tests and the driver's paranoid mode call it.
func (d *DataCenter) CheckInvariants() error {
	seen := 0
	for _, s := range d.Servers {
		if st := d.hot.state[s.ID]; st != Active && len(s.vms) > 0 {
			return fmt.Errorf("dc: %s server %d hosts %d VMs", st, s.ID, len(s.vms))
		}
		ram := 0.0
		for _, vm := range s.vms {
			ram += vm.RAMMB
		}
		if diff := ram - d.hot.usedRAMMB[s.ID]; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("dc: server %d RAM accounting drift: %v vs %v", s.ID, d.hot.usedRAMMB[s.ID], ram)
		}
		if len(s.cursors) != len(s.vms) {
			return fmt.Errorf("dc: server %d has %d demand cursors for %d VMs", s.ID, len(s.cursors), len(s.vms))
		}
		for i, vm := range s.vms {
			if i > 0 && s.vms[i-1].ID >= vm.ID {
				return fmt.Errorf("dc: server %d VM slice not strictly sorted at %d", s.ID, i)
			}
			if s.cursors[i].VM != vm {
				return fmt.Errorf("dc: server %d demand cursor %d tracks the wrong VM", s.ID, i)
			}
			host, ok := d.byVM[vm.ID]
			if !ok || host != s {
				return fmt.Errorf("dc: VM %d on server %d but index disagrees", vm.ID, s.ID)
			}
			seen++
		}
	}
	if seen != len(d.byVM) {
		return fmt.Errorf("dc: index has %d VMs, servers hold %d", len(d.byVM), seen)
	}
	return nil
}

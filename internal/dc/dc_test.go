package dc

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
	"repro/internal/trace"
)

func constVM(id int, mhz float64) *trace.VM {
	return &trace.VM{ID: id, Start: 0, End: time.Hour, Epoch: time.Hour, Demand: []float64{mhz}}
}

func twoServerDC() *DataCenter {
	return New([]Spec{{Cores: 4, CoreMHz: 2000}, {Cores: 8, CoreMHz: 2000}})
}

func TestSpecCapacity(t *testing.T) {
	if got := (Spec{Cores: 6, CoreMHz: 2000}).CapacityMHz(); got != 12000 {
		t.Fatalf("capacity = %v, want 12000", got)
	}
}

func TestStandardFleetMix(t *testing.T) {
	specs := StandardFleet(400)
	counts := map[int]int{}
	for _, sp := range specs {
		if sp.CoreMHz != 2000 {
			t.Fatalf("core MHz = %v, want 2000", sp.CoreMHz)
		}
		counts[sp.Cores]++
	}
	if counts[4] != 133 || counts[6] != 133 || counts[8] != 134 {
		t.Fatalf("core mix = %v, want thirds of 4/6/8", counts)
	}
	// Total capacity: the paper's 400-server DC.
	total := 0.0
	for _, sp := range specs {
		total += sp.CapacityMHz()
	}
	if math.Abs(total-4_804_000) > 1 { // 133*8000+133*12000+134*16000
		t.Fatalf("total capacity = %v", total)
	}
}

func TestUniformFleet(t *testing.T) {
	specs := UniformFleet(100, 6, 2000)
	if len(specs) != 100 {
		t.Fatalf("fleet size = %d", len(specs))
	}
	for _, sp := range specs {
		if sp.Cores != 6 || sp.CoreMHz != 2000 {
			t.Fatalf("spec = %+v", sp)
		}
	}
}

func TestPowerModel(t *testing.T) {
	pm := DefaultPowerModel()
	if got := pm.Power(Hibernated, 0.5); got != pm.HibernateW {
		t.Fatalf("hibernated power = %v", got)
	}
	if got := pm.Power(Active, 0); got != pm.PeakW*pm.IdleFraction {
		t.Fatalf("idle power = %v, want %v", got, pm.PeakW*pm.IdleFraction)
	}
	if got := pm.Power(Active, 1); got != pm.PeakW {
		t.Fatalf("full power = %v, want %v", got, pm.PeakW)
	}
	// Clamping: overload does not draw more than peak.
	if got := pm.Power(Active, 1.4); got != pm.PeakW {
		t.Fatalf("overload power = %v, want peak", got)
	}
	if got := pm.Power(Active, -0.1); got != pm.PeakW*pm.IdleFraction {
		t.Fatalf("negative-u power = %v, want idle", got)
	}
}

func TestPowerMonotoneInUtilization(t *testing.T) {
	pm := DefaultPowerModel()
	prev := -1.0
	for u := 0.0; u <= 1.0; u += 0.05 {
		p := pm.Power(Active, u)
		if p < prev {
			t.Fatalf("power not monotone at u=%v", u)
		}
		prev = p
	}
}

func TestActivateHibernateLifecycle(t *testing.T) {
	d := twoServerDC()
	s := d.Servers[0]
	if s.State() != Hibernated {
		t.Fatal("servers should start hibernated")
	}
	if err := d.Activate(s, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if s.State() != Active || s.ActivatedAt() != 5*time.Minute {
		t.Fatalf("state=%v activatedAt=%v", s.State(), s.ActivatedAt())
	}
	if err := d.Activate(s, time.Hour); err == nil {
		t.Fatal("double activation accepted")
	}
	if err := d.Hibernate(s); err != nil {
		t.Fatal(err)
	}
	if s.State() != Hibernated {
		t.Fatal("hibernate did not change state")
	}
	if err := d.Hibernate(s); err == nil {
		t.Fatal("double hibernation accepted")
	}
	if d.Activations != 1 || d.Hibernations != 1 {
		t.Fatalf("switch counters = %d/%d", d.Activations, d.Hibernations)
	}
}

func TestHibernateRefusesNonEmpty(t *testing.T) {
	d := twoServerDC()
	s := d.Servers[0]
	if err := d.Activate(s, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(1, 500), s); err != nil {
		t.Fatal(err)
	}
	if err := d.Hibernate(s); err == nil {
		t.Fatal("hibernated a server with VMs on board")
	}
}

func TestPlaceRemove(t *testing.T) {
	d := twoServerDC()
	s := d.Servers[0]
	vm := constVM(7, 1000)
	if err := d.Place(vm, s); err == nil {
		t.Fatal("placed on hibernated server")
	}
	if err := d.Activate(s, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(vm, s); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(vm, d.Servers[1]); err == nil {
		t.Fatal("double placement accepted")
	}
	host, ok := d.HostOf(7)
	if !ok || host != s {
		t.Fatal("HostOf wrong after placement")
	}
	if d.NumPlaced() != 1 || s.NumVMs() != 1 {
		t.Fatalf("counts = %d/%d", d.NumPlaced(), s.NumVMs())
	}
	back, err := d.Remove(7)
	if err != nil || back != s {
		t.Fatalf("Remove = %v, %v", back, err)
	}
	if _, err := d.Remove(7); err == nil {
		t.Fatal("double removal accepted")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrate(t *testing.T) {
	d := twoServerDC()
	a, b := d.Servers[0], d.Servers[1]
	if err := d.Activate(a, 0); err != nil {
		t.Fatal(err)
	}
	vm := constVM(3, 800)
	if err := d.Place(vm, a); err != nil {
		t.Fatal(err)
	}
	if err := d.Migrate(3, b); err == nil {
		t.Fatal("migrated to hibernated server")
	}
	if err := d.Activate(b, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Migrate(3, a); err == nil {
		t.Fatal("migrated onto own host")
	}
	if err := d.Migrate(3, b); err != nil {
		t.Fatal(err)
	}
	if host, _ := d.HostOf(3); host != b {
		t.Fatal("index not updated after migration")
	}
	if a.NumVMs() != 0 || b.NumVMs() != 1 {
		t.Fatalf("VM counts after migration: %d/%d", a.NumVMs(), b.NumVMs())
	}
	if err := d.Migrate(99, a); err == nil {
		t.Fatal("migrated unplaced VM")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationAndOverDemand(t *testing.T) {
	d := twoServerDC()
	s := d.Servers[0] // 8000 MHz
	if err := d.Activate(s, 0); err != nil {
		t.Fatal(err)
	}
	for i, mhz := range []float64{3000, 4000, 3000} {
		if err := d.Place(constVM(i, mhz), s); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.DemandAt(0); got != 10000 {
		t.Fatalf("demand = %v", got)
	}
	if got := s.UtilizationAt(0); got != 1.25 {
		t.Fatalf("utilization = %v, want 1.25 (uncapped)", got)
	}
	if got := s.OverDemandAt(0); got != 2000 {
		t.Fatalf("over-demand = %v, want 2000", got)
	}
	if got := d.OverDemandAt(0); got != 2000 {
		t.Fatalf("dc over-demand = %v", got)
	}
	// After the VMs' lifetime ends, demand drops to zero.
	if got := s.DemandAt(2 * time.Hour); got != 0 {
		t.Fatalf("demand after departure = %v", got)
	}
}

func TestPowerAt(t *testing.T) {
	d := twoServerDC()
	pm := DefaultPowerModel()
	// All hibernated.
	if got := d.PowerAt(0, pm); got != 2*pm.HibernateW {
		t.Fatalf("hibernated fleet power = %v", got)
	}
	if err := d.Activate(d.Servers[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(1, 4000), d.Servers[0]); err != nil { // u = 0.5
		t.Fatal(err)
	}
	want := pm.Power(Active, 0.5) + pm.HibernateW
	if got := d.PowerAt(0, pm); math.Abs(got-want) > 1e-9 {
		t.Fatalf("fleet power = %v, want %v", got, want)
	}
}

func TestActiveCountAndPlacedDemand(t *testing.T) {
	d := New(StandardFleet(6))
	if d.ActiveCount() != 0 {
		t.Fatal("fresh DC has active servers")
	}
	if err := d.Activate(d.Servers[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(d.Servers[3], 0); err != nil {
		t.Fatal(err)
	}
	if d.ActiveCount() != 2 {
		t.Fatalf("active = %d", d.ActiveCount())
	}
	if err := d.Place(constVM(1, 1000), d.Servers[0]); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(2, 2000), d.Servers[3]); err != nil {
		t.Fatal(err)
	}
	if got := d.PlacedDemandAt(0); got != 3000 {
		t.Fatalf("placed demand = %v", got)
	}
}

func TestNewPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad spec did not panic")
		}
	}()
	New([]Spec{{Cores: 0, CoreMHz: 2000}})
}

// Property: any random sequence of valid operations preserves invariants.
func TestQuickOperationsPreserveInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		d := New(StandardFleet(9))
		vms := make([]*trace.VM, 30)
		for i := range vms {
			vms[i] = constVM(i, 200+src.Float64()*1500)
		}
		for step := 0; step < 300; step++ {
			s := d.Servers[src.Intn(len(d.Servers))]
			v := vms[src.Intn(len(vms))]
			switch src.Intn(5) {
			case 0:
				_ = d.Activate(s, time.Duration(step)*time.Second)
			case 1:
				_ = d.Hibernate(s)
			case 2:
				_ = d.Place(v, s)
			case 3:
				_, _ = d.Remove(v.ID)
			case 4:
				_ = d.Migrate(v.ID, s)
			}
			if err := d.CheckInvariants(); err != nil {
				t.Logf("step %d: %v", step, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUtilizationAt400Servers(b *testing.B) {
	d := New(StandardFleet(400))
	src := rng.New(1)
	id := 0
	for _, s := range d.Servers {
		if err := d.Activate(s, 0); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 15; k++ {
			if err := d.Place(constVM(id, 100+src.Float64()*400), s); err != nil {
				b.Fatal(err)
			}
			id++
		}
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, s := range d.Servers {
			sink += s.UtilizationAt(0)
		}
	}
	_ = sink
}

func TestSwitchEnergy(t *testing.T) {
	pm := DefaultPowerModel()
	if pm.SwitchEnergyKWh(10) != 0 {
		t.Fatal("default model should not price switches")
	}
	pm.SwitchKJ = 36 // 36 kJ per switch = 0.01 kWh
	if got := pm.SwitchEnergyKWh(100); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("switch energy = %v kWh, want 1.0", got)
	}
}

func TestMinServersFor(t *testing.T) {
	specs := StandardFleet(6) // 2x8000, 2x12000, 2x16000 MHz
	cases := []struct {
		demand float64
		ta     float64
		want   int
	}{
		{0, 0.9, 0},
		{-5, 0.9, 0},
		{1000, 0.9, 1},                       // one 16000 at 0.9 covers 14400
		{14400, 0.9, 1},                      // exactly one big server
		{14401, 0.9, 2},                      // spills into the second
		{2 * 14400, 0.9, 2},                  // two big servers
		{2*14400 + 2*10800 + 2*7200, 0.9, 6}, // whole fleet packed
		{1e9, 0.9, 6},                        // saturated bound
	}
	for _, c := range cases {
		if got := MinServersFor(specs, c.demand, c.ta); got != c.want {
			t.Errorf("MinServersFor(%v, %v) = %d, want %d", c.demand, c.ta, got, c.want)
		}
	}
}

func TestMinServersForPanicsOnBadTa(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ta=0 did not panic")
		}
	}()
	MinServersFor(StandardFleet(3), 100, 0)
}

// Property: the bound is monotone in demand and never exceeds the fleet.
func TestQuickMinServersMonotone(t *testing.T) {
	specs := StandardFleet(30)
	f := func(a, b uint32) bool {
		da, db := float64(a%5_000_000), float64(b%5_000_000)
		if da > db {
			da, db = db, da
		}
		na := MinServersFor(specs, da, 0.9)
		nb := MinServersFor(specs, db, 0.9)
		return na <= nb && nb <= len(specs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRAMAccounting(t *testing.T) {
	d := New(WithRAM(UniformFleet(2, 6, 2000), 4096)) // 24 GiB each
	s := d.Servers[0]
	if s.Spec.RAMMB != 24576 {
		t.Fatalf("spec RAM = %v", s.Spec.RAMMB)
	}
	if err := d.Activate(s, 0); err != nil {
		t.Fatal(err)
	}
	vm1 := constVM(1, 1000)
	vm1.RAMMB = 8192
	vm2 := constVM(2, 1000)
	vm2.RAMMB = 4096
	if err := d.Place(vm1, s); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(vm2, s); err != nil {
		t.Fatal(err)
	}
	if got := s.UsedRAMMB(); got != 12288 {
		t.Fatalf("used RAM = %v", got)
	}
	if got := s.RAMUtilization(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("RAM utilization = %v, want 0.5", got)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Migration carries the footprint along.
	b := d.Servers[1]
	if err := d.Activate(b, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Migrate(1, b); err != nil {
		t.Fatal(err)
	}
	if s.UsedRAMMB() != 4096 || b.UsedRAMMB() != 8192 {
		t.Fatalf("RAM after migration: %v / %v", s.UsedRAMMB(), b.UsedRAMMB())
	}
	if _, err := d.Remove(2); err != nil {
		t.Fatal(err)
	}
	if s.UsedRAMMB() != 0 {
		t.Fatalf("RAM after removal = %v", s.UsedRAMMB())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRAMUnmodeled(t *testing.T) {
	d := New(UniformFleet(1, 6, 2000)) // no RAM spec
	s := d.Servers[0]
	if err := d.Activate(s, 0); err != nil {
		t.Fatal(err)
	}
	vm := constVM(1, 1000)
	vm.RAMMB = 9999
	if err := d.Place(vm, s); err != nil {
		t.Fatal(err)
	}
	if s.RAMUtilization() != 0 {
		t.Fatal("unmodeled RAM should report zero utilization")
	}
}

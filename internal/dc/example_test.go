package dc_test

import (
	"fmt"

	"repro/internal/dc"
)

// The theoretical minimum number of servers for a given demand: the bound
// the paper's abstract compares consolidation efficiency against.
func ExampleMinServersFor() {
	fleet := dc.StandardFleet(400) // thirds of 4/6/8-core 2 GHz machines
	for _, loadFrac := range []float64{0.25, 0.50} {
		demand := loadFrac * 4_804_000 // total fleet capacity in MHz
		fmt.Printf("load %.0f%%: >= %d servers\n", 100*loadFrac, dc.MinServersFor(fleet, demand, 0.9))
	}
	// Output:
	// load 25%: >= 84 servers
	// load 50%: >= 178 servers
}

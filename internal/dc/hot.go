package dc

import "time"

// Hot-state layout
//
// The fields the control round touches for EVERY server on EVERY tick —
// power state, used RAM, activation time, CPU capacity, and the demand
// kernel's cached aggregate with its validity window and counters — live in
// flat, contiguous per-datacenter arrays indexed by server ID, not in the
// Server structs. A 100k-server observation pass walks a handful of dense
// float64/State arrays instead of chasing 100k pointers into scattered
// structs, which is what lets the sharded control round scale with cores
// instead of with cache misses.
//
// Server remains the API: it is a thin accessor view (ID + Spec + the jagged
// per-server VM slice and demand cursors) whose methods read and write the
// hot arrays through the back-pointer to its DataCenter. Nothing outside the
// package sees the layout, so snapshots, checked-mode invariants and every
// policy keep working unchanged — they always went through methods.
type hotState struct {
	state       []State
	usedRAMMB   []float64
	activatedAt []time.Duration
	capMHz      []float64 // == Spec.CapacityMHz(), precomputed once

	// Demand-kernel aggregate per server (see demandkernel.go): the cached
	// sum, its validity window [kFrom, kUntil), and the access counters.
	// Counters are per-server — not one shared word — so a sharded warm
	// phase can increment them without a data race.
	kValid  []bool
	kFrom   []time.Duration
	kUntil  []time.Duration
	kSum    []float64
	kHits   []uint64
	kMisses []uint64
	kInval  []uint64
}

// newHotState allocates the arrays for n servers (all hibernated, all cold).
func newHotState(n int) hotState {
	return hotState{
		state:       make([]State, n),
		usedRAMMB:   make([]float64, n),
		activatedAt: make([]time.Duration, n),
		capMHz:      make([]float64, n),
		kValid:      make([]bool, n),
		kFrom:       make([]time.Duration, n),
		kUntil:      make([]time.Duration, n),
		kSum:        make([]float64, n),
		kHits:       make([]uint64, n),
		kMisses:     make([]uint64, n),
		kInval:      make([]uint64, n),
	}
}

// TickSample is one server's share of the control round's overload
// observation: everything the runner folds into its accounting, computed in
// one pass over the hot arrays. Inactive servers report the zero value.
type TickSample struct {
	Active  bool
	Over    bool    // CPU demand exceeds capacity
	RAMOver bool    // memory overcommitted (only when the fleet models RAM)
	Demand  float64 // DemandAt(now), MHz
	Cap     float64 // CapacityMHz
	NVMs    float64 // hosted VM count, as the float the accounting sums
}

// ObserveSpan fills out[i-lo] with server i's TickSample for each i in
// [lo, hi). It performs exactly the reads the sequential observation loop
// performs — one counted DemandAt per active server — so accounting and
// demand-cache traffic match the pre-span runner bit for bit. Workers may
// call it on disjoint spans concurrently: every touched word (including the
// kernel aggregate and its counters) is indexed by server ID.
//
//ecolint:hotpath
func (d *DataCenter) ObserveSpan(lo, hi int, now time.Duration, out []TickSample) {
	h := &d.hot
	for i := lo; i < hi; i++ {
		if h.state[i] != Active {
			out[i-lo] = TickSample{}
			continue
		}
		s := d.Servers[i]
		demand := s.demandAt(now)
		capa := h.capMHz[i]
		out[i-lo] = TickSample{
			Active:  true,
			Over:    demand > capa,
			RAMOver: s.Spec.RAMMB > 0 && h.usedRAMMB[i] > s.Spec.RAMMB,
			Demand:  demand,
			Cap:     capa,
			NVMs:    float64(len(s.vms)),
		}
	}
}

// WarmSpan refills the demand aggregate of every active server in [lo, hi)
// without counting the access (see Server.WarmDemandCache). Safe to shard:
// it mutates only words indexed by server ID.
//
//ecolint:hotpath
func (d *DataCenter) WarmSpan(lo, hi int, now time.Duration) {
	if d.kernelDisabled {
		return
	}
	h := &d.hot
	for i := lo; i < hi; i++ {
		if h.state[i] != Active {
			continue
		}
		if h.kValid[i] && now >= h.kFrom[i] && now < h.kUntil[i] {
			continue
		}
		d.Servers[i].refill(now)
	}
}

// UtilSpan fills out[i-lo] with server i's utilization at now for active
// servers and 0 otherwise — the per-server sample row of Figs. 6/12. Safe to
// shard on disjoint spans, like ObserveSpan.
//
//ecolint:hotpath
func (d *DataCenter) UtilSpan(lo, hi int, now time.Duration, out []float64) {
	h := &d.hot
	for i := lo; i < hi; i++ {
		if h.state[i] != Active {
			out[i-lo] = 0
			continue
		}
		out[i-lo] = d.Servers[i].demandAt(now) / h.capMHz[i]
	}
}

// AuditSpan runs the checked-mode numeric audit over [lo, hi) and returns
// the first error in server-index order, or nil — the span unit the parallel
// control round shards (see CheckServerRuntime).
func (d *DataCenter) AuditSpan(lo, hi int, now time.Duration) error {
	for i := lo; i < hi; i++ {
		if err := d.CheckServerRuntime(i, now); err != nil {
			return err
		}
	}
	return nil
}

package dc

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// soaFixture builds a small RAM-modeled fleet and a multi-epoch workload,
// runs a mutation+lookup history against it, and returns the data center
// plus the workload. The history mixes placements, migrations, removals and
// demand reads so the hot state is mid-flight: warm kernel windows on some
// servers, nonzero hit/miss/invalidation counters, and a RAM accumulator
// with a floating-point history replay alone cannot reproduce.
func soaFixture(t *testing.T) (*DataCenter, *trace.Set) {
	t.Helper()
	specs := WithRAM(UniformFleet(4, 4, 2000), 512)
	ws := &trace.Set{RefCapacityMHz: 8000}
	for i := 0; i < 8; i++ {
		ws.VMs = append(ws.VMs, &trace.VM{
			ID:     i,
			Start:  0,
			End:    12 * time.Hour,
			Epoch:  30 * time.Minute,
			Demand: []float64{100 + 7.3*float64(i), 260.5, 80.25, 310 + float64(i)},
			RAMMB:  128.5 + 17.75*float64(i),
		})
	}
	d := New(specs)
	for i := 0; i < 3; i++ {
		if err := d.Activate(d.Servers[i], time.Duration(i)*time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	for i, vm := range ws.VMs {
		if err := d.Place(vm, d.Servers[i%3]); err != nil {
			t.Fatal(err)
		}
	}
	// Demand reads at several epochs: misses, hits, and epoch-boundary
	// re-misses.
	for _, at := range []time.Duration{5 * time.Minute, 10 * time.Minute, 35 * time.Minute, 40 * time.Minute} {
		for _, s := range d.Servers {
			if s.State() == Active {
				s.DemandAt(at)
			}
		}
	}
	// Mutations: invalidations plus a RAM history (place+remove) whose
	// accumulator differs bit-wise from a fresh sum.
	if err := d.Migrate(3, d.Servers[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Remove(6); err != nil {
		t.Fatal(err)
	}
	for _, s := range d.Servers {
		if s.State() == Active {
			s.DemandAt(50 * time.Minute)
		}
	}
	return d, ws
}

// continueScript runs the identical post-restore workload against a data
// center and returns every demand it observed. Comparing the outputs of the
// original and the restored DC bit for bit — plus the final cache stats —
// is the differential contract.
func continueScript(t *testing.T, d *DataCenter) []float64 {
	t.Helper()
	var out []float64
	for _, at := range []time.Duration{55 * time.Minute, 65 * time.Minute, 95 * time.Minute} {
		for _, s := range d.Servers {
			if s.State() == Active {
				out = append(out, s.DemandAt(at))
			}
		}
	}
	if err := d.Migrate(1, d.Servers[2]); err != nil {
		t.Fatal(err)
	}
	for _, s := range d.Servers {
		if s.State() == Active {
			out = append(out, s.DemandAt(100*time.Minute))
		}
	}
	return out
}

func TestRestoreRepopulatesHotState(t *testing.T) {
	orig, ws := soaFixture(t)
	snap := orig.Snapshot()

	restored, err := Restore(WithRAM(UniformFleet(4, 4, 2000), 512), ws, snap)
	if err != nil {
		t.Fatal(err)
	}

	// The restored hot arrays must match the original's bit for bit.
	for i := range orig.Servers {
		oh, rh := &orig.hot, &restored.hot
		if oh.state[i] != rh.state[i] || oh.activatedAt[i] != rh.activatedAt[i] {
			t.Fatalf("server %d power state not restored", i)
		}
		if oh.usedRAMMB[i] != rh.usedRAMMB[i] {
			t.Fatalf("server %d RAM accumulator: restored %x, want %x", i, rh.usedRAMMB[i], oh.usedRAMMB[i])
		}
		if oh.kValid[i] != rh.kValid[i] || oh.kFrom[i] != rh.kFrom[i] || oh.kUntil[i] != rh.kUntil[i] || oh.kSum[i] != rh.kSum[i] {
			t.Fatalf("server %d kernel aggregate not restored", i)
		}
		if oh.kHits[i] != rh.kHits[i] || oh.kMisses[i] != rh.kMisses[i] || oh.kInval[i] != rh.kInval[i] {
			t.Fatalf("server %d kernel counters not restored", i)
		}
		if len(orig.Servers[i].cursors) != len(restored.Servers[i].cursors) {
			t.Fatalf("server %d cursor count not restored", i)
		}
		for j := range orig.Servers[i].cursors {
			if orig.Servers[i].cursors[j].State() != restored.Servers[i].cursors[j].State() {
				t.Fatalf("server %d cursor %d memo not restored", i, j)
			}
		}
	}
	if got, want := restored.DemandCacheStats(), orig.DemandCacheStats(); got != want {
		t.Fatalf("cache stats not restored: %+v, want %+v", got, want)
	}

	// Continuing both with the identical script must stay bit-identical,
	// including the hit/miss accounting.
	wantDemand := continueScript(t, orig)
	gotDemand := continueScript(t, restored)
	for i := range wantDemand {
		if gotDemand[i] != wantDemand[i] {
			t.Fatalf("demand %d diverged after restore: %x, want %x", i, gotDemand[i], wantDemand[i])
		}
	}
	if got, want := restored.DemandCacheStats(), orig.DemandCacheStats(); got != want {
		t.Fatalf("cache stats diverged after continue: %+v, want %+v", got, want)
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Pre-extension snapshots (no kernel, cursor, or RAM fields) must still
// restore: placements exact, cache cold, counters zero.
func TestRestoreLegacySnapshotColdCache(t *testing.T) {
	orig, ws := soaFixture(t)
	snap := orig.Snapshot()
	for i := range snap.Servers {
		snap.Servers[i].Kernel = nil
		snap.Servers[i].Cursors = nil
		snap.Servers[i].UsedRAMMB = 0
	}

	restored, err := Restore(WithRAM(UniformFleet(4, 4, 2000), 512), ws, snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.DemandCacheStats(); got != (DemandCacheStats{}) {
		t.Fatalf("legacy restore has nonzero cache stats: %+v", got)
	}
	for i := range restored.hot.kValid {
		if restored.hot.kValid[i] {
			t.Fatalf("legacy restore left server %d kernel warm", i)
		}
	}
	// Values (not counters) still match the original exactly: cold cache is
	// bit-identical to naive recomputation.
	for _, at := range []time.Duration{55 * time.Minute, 95 * time.Minute} {
		for i, s := range restored.Servers {
			if s.State() != Active {
				continue
			}
			if got, want := s.DemandAt(at), orig.Servers[i].recomputeDemandAt(at); got != want {
				t.Fatalf("server %d demand at %v: %x, want %x", i, at, got, want)
			}
		}
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsCursorMismatch(t *testing.T) {
	orig, ws := soaFixture(t)
	snap := orig.Snapshot()
	for i := range snap.Servers {
		if len(snap.Servers[i].Cursors) > 1 {
			snap.Servers[i].Cursors = snap.Servers[i].Cursors[:1]
			break
		}
	}
	if _, err := Restore(WithRAM(UniformFleet(4, 4, 2000), 512), ws, snap); err == nil {
		t.Fatal("restore accepted a cursor/VM length mismatch")
	}
}

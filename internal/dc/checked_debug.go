//go:build ecodebug

package dc

// defaultChecked under the ecodebug tag: every DataCenter verifies its
// invariants after every mutation. Build or test with
//
//	go test -tags ecodebug ./...
//
// to run the whole experiment suite in paranoid mode.
const defaultChecked = true

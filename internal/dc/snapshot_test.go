package dc

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/trace"
)

func buildLoadedDC(t *testing.T) (*DataCenter, []Spec, *trace.Set) {
	t.Helper()
	specs := StandardFleet(6)
	d := New(specs)
	ws := &trace.Set{RefCapacityMHz: 2400}
	id := 0
	for i := 0; i < 4; i++ {
		s := d.Servers[i]
		if err := d.Activate(s, time.Duration(i)*time.Minute); err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= i; k++ {
			vm := constVM(id, 500+float64(100*k))
			vm.RAMMB = float64(256 * (k + 1))
			ws.VMs = append(ws.VMs, vm)
			if err := d.Place(vm, s); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	// A drained-and-hibernated server leaves nonzero counters behind.
	if err := d.Hibernate(mustDrain(t, d, d.Servers[0])); err != nil {
		t.Fatal(err)
	}
	return d, specs, ws
}

func mustDrain(t *testing.T, d *DataCenter, s *Server) *Server {
	t.Helper()
	for _, vm := range s.VMs() {
		if err := d.Migrate(vm.ID, d.Servers[1]); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	d, specs, ws := buildLoadedDC(t)
	snap := d.Snapshot()

	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(specs, ws, parsed)
	if err != nil {
		t.Fatal(err)
	}
	if restored.ActiveCount() != d.ActiveCount() {
		t.Fatalf("active %d != %d", restored.ActiveCount(), d.ActiveCount())
	}
	if restored.NumPlaced() != d.NumPlaced() {
		t.Fatalf("placed %d != %d", restored.NumPlaced(), d.NumPlaced())
	}
	if restored.Activations != d.Activations || restored.Hibernations != d.Hibernations {
		t.Fatalf("counters %d/%d != %d/%d",
			restored.Activations, restored.Hibernations, d.Activations, d.Hibernations)
	}
	for _, vm := range ws.VMs {
		orig, okO := d.HostOf(vm.ID)
		rest, okR := restored.HostOf(vm.ID)
		if okO != okR || (okO && orig.ID != rest.ID) {
			t.Fatalf("VM %d placement differs after restore", vm.ID)
		}
	}
	// State-derived quantities must match too (RAM accounting, timings).
	for i, s := range d.Servers {
		r := restored.Servers[i]
		if s.State() != r.State() || s.UsedRAMMB() != r.UsedRAMMB() {
			t.Fatalf("server %d state/RAM differs", i)
		}
		if s.State() == Active && s.ActivatedAt() != r.ActivatedAt() {
			t.Fatalf("server %d ActivatedAt differs: %v vs %v", i, s.ActivatedAt(), r.ActivatedAt())
		}
	}
}

func TestRestoreRejectsCorruption(t *testing.T) {
	d, specs, ws := buildLoadedDC(t)
	base := d.Snapshot()

	short := base
	short.Servers = short.Servers[:len(short.Servers)-1]
	if _, err := Restore(specs, ws, short); err == nil {
		t.Error("server-count mismatch accepted")
	}

	unknown := d.Snapshot()
	unknown.Servers[1].VMs = append(unknown.Servers[1].VMs, 9999)
	if _, err := Restore(specs, ws, unknown); err == nil {
		t.Error("unknown VM accepted")
	}

	sleeping := d.Snapshot()
	for i := range sleeping.Servers {
		if len(sleeping.Servers[i].VMs) > 0 {
			sleeping.Servers[i].Active = false
			break
		}
	}
	if _, err := Restore(specs, ws, sleeping); err == nil {
		t.Error("VMs on hibernated server accepted")
	}

	double := d.Snapshot()
	var donor int
	for i := range double.Servers {
		if len(double.Servers[i].VMs) > 0 {
			donor = i
			break
		}
	}
	vm := double.Servers[donor].VMs[0]
	for i := range double.Servers {
		if i != donor && double.Servers[i].Active {
			double.Servers[i].VMs = append(double.Servers[i].VMs, vm)
			break
		}
	}
	if _, err := Restore(specs, ws, double); err == nil {
		t.Error("double placement accepted")
	}
}

func TestReadSnapshotGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// FuzzReadSnapshot: arbitrary input never panics, and any accepted snapshot
// re-serializes and parses to the same shape.
func FuzzReadSnapshot(f *testing.F) {
	f.Add(`{"servers":[{"id":0,"active":true,"activated_ns":5,"vms":[1,2]}],"activations":1}`)
	f.Add(`{}`)
	f.Add(`[`)
	f.Fuzz(func(t *testing.T, input string) {
		snap, err := ReadSnapshot(bytes.NewBufferString(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, snap); err != nil {
			t.Fatalf("accepted snapshot failed to serialize: %v", err)
		}
		again, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(again.Servers) != len(snap.Servers) {
			t.Fatal("round trip changed server count")
		}
	})
}

package dc

// Event is one state mutation of the data center, emitted to the journal
// callback when one is installed. Fields not applicable to a kind are -1.
type Event struct {
	Kind   EventKind
	VM     int // VM involved, or -1
	Server int // primary server (placement target, migration source, switch subject)
	Dest   int // migration destination, or -1
}

// EventKind enumerates the journal events.
type EventKind string

// Journal event kinds.
const (
	EventPlace     EventKind = "place"
	EventRemove    EventKind = "remove"
	EventMigrate   EventKind = "migrate"
	EventActivate  EventKind = "activate"
	EventHibernate EventKind = "hibernate"
	// EventFail marks a server crash; every VM it hosted is journaled first
	// as its own EventCrashEvict (distinct from EventRemove so crash losses
	// never pollute the departure counters). EventRecover marks the repaired
	// server rejoining the wakeable pool.
	EventFail       EventKind = "fail"
	EventRecover    EventKind = "recover"
	EventCrashEvict EventKind = "crash-evict"
)

// SetJournal installs (or clears, with nil) the journal callback. The
// callback runs synchronously inside each mutation, after the state change
// has been applied; it must not mutate the data center.
func (d *DataCenter) SetJournal(fn func(Event)) { d.journal = fn }

// emit reports an event to the journal if one is installed, then re-verifies
// the invariants when checked mode is on (the event names the culprit in the
// panic message).
func (d *DataCenter) emit(e Event) {
	if d.journal != nil {
		d.journal(e)
	}
	if d.checked {
		d.verify(e)
	}
}

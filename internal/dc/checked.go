package dc

import (
	"fmt"
	"math"
	"time"
)

// Checked mode is the runtime half of the determinism/correctness tooling
// (the static half is cmd/ecolint): when enabled, the data center re-verifies
// its structural invariants after every mutation and the cluster runner
// additionally audits the numeric state at each control tick. A violation is
// a bug in the model or a policy, never an expected condition, so checked
// mode fails hard with a panic that names the mutation that broke the state.
//
// Enable it per data center with SetChecked, or for every data center in the
// process by building with the ecodebug tag:
//
//	go test -tags ecodebug ./...

// SetChecked turns per-mutation invariant checking on or off. The zero-value
// default follows the ecodebug build tag (see defaultChecked).
func (d *DataCenter) SetChecked(on bool) { d.checked = on }

// Checked reports whether per-mutation invariant checking is enabled.
func (d *DataCenter) Checked() bool { return d.checked }

// verify is called by emit after every mutation when checked mode is on.
func (d *DataCenter) verify(e Event) {
	if err := d.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("dc: invariant violated after %s (vm=%d server=%d dest=%d): %v",
			e.Kind, e.VM, e.Server, e.Dest, err))
	}
}

// CheckRuntime audits the numeric state of the fleet at virtual time now:
// demands must be finite and non-negative, per-server over-demand must agree
// with demand minus capacity, and hibernated servers must be empty and
// demand-free. It complements CheckInvariants, which audits the structural
// state (indexes, sortedness, RAM accounting) independent of time.
func (d *DataCenter) CheckRuntime(now time.Duration) error {
	for i := range d.Servers {
		if err := d.CheckServerRuntime(i, now); err != nil {
			return err
		}
	}
	return nil
}

// CheckServerRuntime audits one server (by index into Servers) at virtual
// time now — the per-server unit CheckRuntime loops over. It only touches
// that server's state, so a parallel control round can shard the audit
// across workers and merge the first error in index order, matching what
// the sequential loop reports.
func (d *DataCenter) CheckServerRuntime(i int, now time.Duration) error {
	s := d.Servers[i]
	demand := 0.0
	for _, vm := range s.vms {
		v := vm.DemandAt(now)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("dc: VM %d on server %d has non-finite demand %v at %v", vm.ID, s.ID, v, now)
		}
		if v < 0 {
			return fmt.Errorf("dc: VM %d on server %d has negative demand %v at %v", vm.ID, s.ID, v, now)
		}
		demand += v
	}
	if st := s.State(); st != Active && demand > 0 {
		return fmt.Errorf("dc: %s server %d carries demand %v at %v", st, s.ID, demand, now)
	}
	// The demand kernel promises bit-identity with the naive summation
	// just performed, so this comparison is exact, not tolerance-based.
	//ecolint:allow float-eq — the kernel's contract IS bit-identity; any tolerance would mask the bug this check exists to catch
	if got := s.DemandAt(now); got != demand {
		return fmt.Errorf("dc: server %d cached demand %v disagrees with recomputation %v at %v", s.ID, got, demand, now)
	}
	want := demand - s.CapacityMHz()
	if want < 0 {
		want = 0
	}
	if got := s.OverDemandAt(now); math.Abs(got-want) > 1e-6 {
		return fmt.Errorf("dc: server %d over-demand %v disagrees with demand-capacity %v at %v", s.ID, got, want, now)
	}
	return nil
}

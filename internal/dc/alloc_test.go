package dc

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// The SoA hot-state layout exists so the control round's per-server reads
// never touch the allocator: a 100k-server tick that allocated per lookup
// would spend its time in GC, not in the policy. These tests pin the
// zero-alloc property of both demand-kernel paths — the windowed hit and the
// cursor-driven refill — with testing.AllocsPerRun, so a regression shows up
// as a test failure rather than as a flat speedup curve in the parscale
// bench.

// allocTestServer builds a one-server fleet hosting nVMs epoch-stepped VMs,
// active and out of grace.
func allocTestServer(t *testing.T, nVMs int) (*DataCenter, *Server) {
	t.Helper()
	d := New([]Spec{{Cores: 8, CoreMHz: 2000}})
	s := d.Servers[0]
	if err := d.Activate(s, 0); err != nil {
		t.Fatal(err)
	}
	const epochs = 13
	for id := 0; id < nVMs; id++ {
		demand := make([]float64, epochs)
		for e := range demand {
			demand[e] = 100 + float64(id*epochs+e)
		}
		vm := &trace.VM{ID: id, Start: 0, End: time.Hour, Epoch: 5 * time.Minute, Demand: demand}
		if err := d.Place(vm, s); err != nil {
			t.Fatal(err)
		}
	}
	return d, s
}

func TestDemandAtHitPathZeroAlloc(t *testing.T) {
	_, s := allocTestServer(t, 10)
	now := 10 * time.Second
	s.WarmDemandCache(now)
	if allocs := testing.AllocsPerRun(100, func() {
		_ = s.DemandAt(now)
	}); allocs != 0 {
		t.Fatalf("DemandAt hit path allocates %v per run, want 0", allocs)
	}
}

func TestDemandKernelRefillZeroAlloc(t *testing.T) {
	_, s := allocTestServer(t, 10)
	// Alternate between two epochs so every lookup lands outside the cached
	// window and runs the full cursor refill.
	times := [2]time.Duration{10 * time.Minute, 15 * time.Minute}
	k := 0
	if allocs := testing.AllocsPerRun(100, func() {
		_ = s.DemandAt(times[k&1])
		k++
	}); allocs != 0 {
		t.Fatalf("demand-kernel refill allocates %v per run, want 0", allocs)
	}
}

func TestObserveSpanZeroAlloc(t *testing.T) {
	d, _ := allocTestServer(t, 10)
	out := make([]TickSample, len(d.Servers))
	times := [2]time.Duration{10 * time.Minute, 15 * time.Minute}
	k := 0
	if allocs := testing.AllocsPerRun(100, func() {
		d.ObserveSpan(0, len(d.Servers), times[k&1], out)
		k++
	}); allocs != 0 {
		t.Fatalf("ObserveSpan allocates %v per run, want 0", allocs)
	}
}

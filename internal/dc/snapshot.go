package dc

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/trace"
)

// Snapshot is a serializable image of the data center's mutable state:
// power states, activation times, placements (by VM ID), switch counters,
// and the SoA hot state the PR 6 refactor moved into flat arrays — the
// demand-kernel aggregates with their counters, the per-VM demand cursors,
// and the historical RAM accounting. Together with the (immutable) specs and
// workload it restores a run bit for bit — the building block for
// checkpointing long simulations.
type Snapshot struct {
	Servers      []ServerSnapshot `json:"servers"`
	Activations  int              `json:"activations"`
	Hibernations int              `json:"hibernations"`
	Failures     int              `json:"failures,omitempty"`
	Recoveries   int              `json:"recoveries,omitempty"`
}

// ServerSnapshot is one server's mutable state. Active and Failed are
// mutually exclusive; both false means Hibernated (the pre-fault wire format
// stays readable: old snapshots simply never set Failed, and snapshots
// written before the hot-state extension leave Kernel/Cursors/UsedRAMMB
// empty, which restores a cold cache — correct values, shifted hit/miss
// split).
type ServerSnapshot struct {
	ID          int   `json:"id"`
	Active      bool  `json:"active"`
	Failed      bool  `json:"failed,omitempty"`
	ActivatedNS int64 `json:"activated_ns"`
	VMs         []int `json:"vms"`

	// UsedRAMMB is the server's historical RAM accumulator. It is captured —
	// not recomputed from the placed VMs — because the accumulator is the
	// running sum over the server's whole placement history and
	// floating-point addition does not commute with replay order. Zero (or
	// absent) means "trust the replayed sum" for pre-extension snapshots and
	// CPU-only fleets.
	UsedRAMMB float64 `json:"used_ram_mb,omitempty"`

	// Kernel is the demand-kernel aggregate and its access counters.
	Kernel *KernelSnapshot `json:"kernel,omitempty"`

	// Cursors holds each hosted VM's step-function memo, index-parallel
	// to VMs.
	Cursors []trace.CursorState `json:"cursors,omitempty"`
}

// KernelSnapshot is one server's demand-kernel state (see demandkernel.go):
// the cached aggregate with its validity window, plus the hit/miss/
// invalidation counters, which are observable through DemandCacheStats and
// therefore part of the bit-identity contract.
type KernelSnapshot struct {
	Valid   bool    `json:"valid,omitempty"`
	FromNS  int64   `json:"from_ns,omitempty"`
	UntilNS int64   `json:"until_ns,omitempty"`
	Sum     float64 `json:"sum,omitempty"`
	Hits    uint64  `json:"hits,omitempty"`
	Misses  uint64  `json:"misses,omitempty"`
	Inval   uint64  `json:"inval,omitempty"`
}

// Snapshot captures the current state.
func (d *DataCenter) Snapshot() Snapshot {
	snap := Snapshot{
		Activations:  d.Activations,
		Hibernations: d.Hibernations,
		Failures:     d.Failures,
		Recoveries:   d.Recoveries,
	}
	for _, s := range d.Servers {
		h := &d.hot
		ss := ServerSnapshot{
			ID:          s.ID,
			Active:      s.State() == Active,
			Failed:      s.State() == Failed,
			ActivatedNS: int64(s.ActivatedAt()),
			UsedRAMMB:   h.usedRAMMB[s.ID],
			Kernel: &KernelSnapshot{
				Valid:   h.kValid[s.ID],
				FromNS:  int64(h.kFrom[s.ID]),
				UntilNS: int64(h.kUntil[s.ID]),
				Sum:     h.kSum[s.ID],
				Hits:    h.kHits[s.ID],
				Misses:  h.kMisses[s.ID],
				Inval:   h.kInval[s.ID],
			},
		}
		for i, vm := range s.vms {
			ss.VMs = append(ss.VMs, vm.ID)
			ss.Cursors = append(ss.Cursors, s.cursors[i].State())
		}
		snap.Servers = append(snap.Servers, ss)
	}
	return snap
}

// Restore builds a data center from specs and applies the snapshot,
// resolving VM IDs against the workload. It fails loudly on any mismatch
// (unknown VM, server count drift, VM on a hibernated server) rather than
// restoring a half-consistent state.
func Restore(specs []Spec, ws *trace.Set, snap Snapshot) (*DataCenter, error) {
	if len(specs) != len(snap.Servers) {
		return nil, fmt.Errorf("dc: snapshot has %d servers, specs %d", len(snap.Servers), len(specs))
	}
	byID := make(map[int]*trace.VM, len(ws.VMs))
	for _, vm := range ws.VMs {
		byID[vm.ID] = vm
	}
	d := New(specs)
	for _, ss := range snap.Servers {
		if ss.ID < 0 || ss.ID >= len(d.Servers) {
			return nil, fmt.Errorf("dc: snapshot server id %d out of range", ss.ID)
		}
		s := d.Servers[ss.ID]
		switch {
		case ss.Active && ss.Failed:
			return nil, fmt.Errorf("dc: snapshot server %d both active and failed", ss.ID)
		case ss.Active:
			if err := d.Activate(s, time.Duration(ss.ActivatedNS)); err != nil {
				return nil, err
			}
		case ss.Failed:
			if len(ss.VMs) > 0 {
				return nil, fmt.Errorf("dc: snapshot has %d VMs on failed server %d", len(ss.VMs), ss.ID)
			}
			d.hot.state[s.ID] = Failed
		case len(ss.VMs) > 0:
			return nil, fmt.Errorf("dc: snapshot has %d VMs on hibernated server %d", len(ss.VMs), ss.ID)
		}
		for _, id := range ss.VMs {
			vm, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("dc: snapshot VM %d not in the workload", id)
			}
			if err := d.Place(vm, s); err != nil {
				return nil, err
			}
		}
		// Reinstate the hot state the replay above cannot reproduce: cursor
		// memos, the historical RAM accumulator, the activation timestamp of
		// non-active servers, and the kernel aggregate the placements just
		// invalidated. Pre-extension snapshots carry none of these and
		// restore a cold (but correct) cache.
		if len(ss.Cursors) > 0 {
			if len(ss.Cursors) != len(s.vms) {
				return nil, fmt.Errorf("dc: snapshot server %d has %d cursors for %d VMs", ss.ID, len(ss.Cursors), len(s.vms))
			}
			for i := range s.cursors {
				s.cursors[i].SetState(ss.Cursors[i])
			}
		}
		if ss.UsedRAMMB != 0 {
			d.hot.usedRAMMB[s.ID] = ss.UsedRAMMB
		}
		d.hot.activatedAt[s.ID] = time.Duration(ss.ActivatedNS)
		if k := ss.Kernel; k != nil {
			d.hot.kValid[s.ID] = k.Valid
			d.hot.kFrom[s.ID] = time.Duration(k.FromNS)
			d.hot.kUntil[s.ID] = time.Duration(k.UntilNS)
			d.hot.kSum[s.ID] = k.Sum
			d.hot.kHits[s.ID] = k.Hits
			d.hot.kMisses[s.ID] = k.Misses
			d.hot.kInval[s.ID] = k.Inval
		}
	}
	// The snapshot's counters override the ones the replay just produced.
	d.Activations = snap.Activations
	d.Hibernations = snap.Hibernations
	d.Failures = snap.Failures
	d.Recoveries = snap.Recoveries
	if err := d.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("dc: restored state inconsistent: %v", err)
	}
	return d, nil
}

// WriteSnapshot serializes the snapshot as JSON.
func WriteSnapshot(w io.Writer, snap Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// ReadSnapshot parses a snapshot written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return Snapshot{}, fmt.Errorf("dc: reading snapshot: %v", err)
	}
	return snap, nil
}

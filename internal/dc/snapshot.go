package dc

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/trace"
)

// Snapshot is a serializable image of the data center's mutable state:
// power states, activation times, placements (by VM ID) and switch
// counters. Together with the (immutable) specs and workload it restores a
// run's placement state exactly — the building block for checkpointing
// long simulations.
type Snapshot struct {
	Servers      []ServerSnapshot `json:"servers"`
	Activations  int              `json:"activations"`
	Hibernations int              `json:"hibernations"`
	Failures     int              `json:"failures,omitempty"`
	Recoveries   int              `json:"recoveries,omitempty"`
}

// ServerSnapshot is one server's mutable state. Active and Failed are
// mutually exclusive; both false means Hibernated (the pre-fault wire format
// stays readable: old snapshots simply never set Failed).
type ServerSnapshot struct {
	ID          int   `json:"id"`
	Active      bool  `json:"active"`
	Failed      bool  `json:"failed,omitempty"`
	ActivatedNS int64 `json:"activated_ns"`
	VMs         []int `json:"vms"`
}

// Snapshot captures the current state.
func (d *DataCenter) Snapshot() Snapshot {
	snap := Snapshot{
		Activations:  d.Activations,
		Hibernations: d.Hibernations,
		Failures:     d.Failures,
		Recoveries:   d.Recoveries,
	}
	for _, s := range d.Servers {
		ss := ServerSnapshot{
			ID:          s.ID,
			Active:      s.State() == Active,
			Failed:      s.State() == Failed,
			ActivatedNS: int64(s.ActivatedAt()),
		}
		for _, vm := range s.vms {
			ss.VMs = append(ss.VMs, vm.ID)
		}
		snap.Servers = append(snap.Servers, ss)
	}
	return snap
}

// Restore builds a data center from specs and applies the snapshot,
// resolving VM IDs against the workload. It fails loudly on any mismatch
// (unknown VM, server count drift, VM on a hibernated server) rather than
// restoring a half-consistent state.
func Restore(specs []Spec, ws *trace.Set, snap Snapshot) (*DataCenter, error) {
	if len(specs) != len(snap.Servers) {
		return nil, fmt.Errorf("dc: snapshot has %d servers, specs %d", len(snap.Servers), len(specs))
	}
	byID := make(map[int]*trace.VM, len(ws.VMs))
	for _, vm := range ws.VMs {
		byID[vm.ID] = vm
	}
	d := New(specs)
	for _, ss := range snap.Servers {
		if ss.ID < 0 || ss.ID >= len(d.Servers) {
			return nil, fmt.Errorf("dc: snapshot server id %d out of range", ss.ID)
		}
		s := d.Servers[ss.ID]
		switch {
		case ss.Active && ss.Failed:
			return nil, fmt.Errorf("dc: snapshot server %d both active and failed", ss.ID)
		case ss.Active:
			if err := d.Activate(s, time.Duration(ss.ActivatedNS)); err != nil {
				return nil, err
			}
		case ss.Failed:
			if len(ss.VMs) > 0 {
				return nil, fmt.Errorf("dc: snapshot has %d VMs on failed server %d", len(ss.VMs), ss.ID)
			}
			d.hot.state[s.ID] = Failed
		case len(ss.VMs) > 0:
			return nil, fmt.Errorf("dc: snapshot has %d VMs on hibernated server %d", len(ss.VMs), ss.ID)
		}
		for _, id := range ss.VMs {
			vm, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("dc: snapshot VM %d not in the workload", id)
			}
			if err := d.Place(vm, s); err != nil {
				return nil, err
			}
		}
	}
	// The snapshot's counters override the ones the replay just produced.
	d.Activations = snap.Activations
	d.Hibernations = snap.Hibernations
	d.Failures = snap.Failures
	d.Recoveries = snap.Recoveries
	if err := d.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("dc: restored state inconsistent: %v", err)
	}
	return d, nil
}

// WriteSnapshot serializes the snapshot as JSON.
func WriteSnapshot(w io.Writer, snap Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// ReadSnapshot parses a snapshot written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return Snapshot{}, fmt.Errorf("dc: reading snapshot: %v", err)
	}
	return snap, nil
}

package dc

import (
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/trace"
)

// fuzzVM synthesizes a VM with a random lifetime and step function: mostly
// epoch-sampled traces, some constant-demand VMs (including the Epoch == 0
// form the churn workloads use).
func fuzzVM(src *rng.Source, id int, horizon time.Duration) *trace.VM {
	start := time.Duration(src.Intn(int(horizon / 2)))
	end := start + time.Duration(1+src.Intn(int(horizon-start)))
	vm := &trace.VM{ID: id, Start: start, End: end}
	if src.Bernoulli(0.3) {
		// Constant demand; half with the degenerate zero epoch.
		if src.Bernoulli(0.5) {
			vm.Epoch = end - start
		}
		vm.Demand = []float64{src.Float64() * 2400}
		return vm
	}
	vm.Epoch = time.Duration(1 + src.Intn(int(30*time.Minute)))
	n := 1 + src.Intn(20)
	vm.Demand = make([]float64, n)
	for i := range vm.Demand {
		vm.Demand[i] = src.Float64() * 2400
	}
	return vm
}

// TestDemandKernelDifferentialFuzz drives random place/remove/migrate/
// activate/hibernate sequences over a small fleet and asserts, at every
// step and at adversarial probe times (epoch boundaries, revisits, jumps
// backwards), that the cached DemandAt is bit-identical to the naive
// recomputation — the kernel's core contract.
func TestDemandKernelDifferentialFuzz(t *testing.T) {
	const horizon = 8 * time.Hour
	for seed := uint64(1); seed <= 8; seed++ {
		src := rng.New(seed)
		d := New(UniformFleet(6, 4, 2000))
		vms := make([]*trace.VM, 40)
		for i := range vms {
			vms[i] = fuzzVM(src.SplitIndex("vm", i), i, horizon)
		}
		placed := map[int]*Server{}

		probe := func(now time.Duration) {
			times := []time.Duration{
				now,
				time.Duration(src.Intn(int(horizon))),
				now + time.Duration(src.Intn(int(time.Hour))),
			}
			// Hammer one VM's exact epoch boundaries too.
			vm := vms[src.Intn(len(vms))]
			if vm.Epoch > 0 {
				k := src.Intn(len(vm.Demand) + 1)
				times = append(times, vm.Start+time.Duration(k)*vm.Epoch, vm.End)
			}
			for _, s := range d.Servers {
				for _, at := range times {
					want := s.recomputeDemandAt(at)
					if got := s.DemandAt(at); got != want {
						t.Fatalf("seed %d: server %d at %v: cached %v != naive %v", seed, s.ID, at, got, want)
					}
					// Second lookup must be a pure cache hit with the same bits.
					if got := s.DemandAt(at); got != want {
						t.Fatalf("seed %d: server %d at %v: cache hit drifted", seed, s.ID, at)
					}
				}
			}
		}

		now := time.Duration(0)
		for step := 0; step < 400; step++ {
			if src.Bernoulli(0.3) {
				now += time.Duration(src.Intn(int(10 * time.Minute)))
			}
			switch src.Intn(5) {
			case 0: // place a random unplaced VM on a random active server
				vm := vms[src.Intn(len(vms))]
				s := d.Servers[src.Intn(len(d.Servers))]
				if placed[vm.ID] != nil || s.State() != Active {
					continue
				}
				if err := d.Place(vm, s); err != nil {
					t.Fatal(err)
				}
				placed[vm.ID] = s
			case 1: // remove a random placed VM
				vm := vms[src.Intn(len(vms))]
				if placed[vm.ID] == nil {
					continue
				}
				if _, err := d.Remove(vm.ID); err != nil {
					t.Fatal(err)
				}
				delete(placed, vm.ID)
			case 2: // migrate
				vm := vms[src.Intn(len(vms))]
				to := d.Servers[src.Intn(len(d.Servers))]
				if placed[vm.ID] == nil || placed[vm.ID] == to || to.State() != Active {
					continue
				}
				if err := d.Migrate(vm.ID, to); err != nil {
					t.Fatal(err)
				}
				placed[vm.ID] = to
			case 3: // activate
				s := d.Servers[src.Intn(len(d.Servers))]
				if s.State() == Active {
					continue
				}
				if err := d.Activate(s, now); err != nil {
					t.Fatal(err)
				}
			case 4: // hibernate an empty active server
				s := d.Servers[src.Intn(len(d.Servers))]
				if s.State() != Active || s.NumVMs() > 0 {
					continue
				}
				if err := d.Hibernate(s); err != nil {
					t.Fatal(err)
				}
			}
			probe(now)
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st := d.DemandCacheStats()
		if st.Hits == 0 || st.Misses == 0 || st.Invalidations == 0 {
			t.Fatalf("seed %d: degenerate cache traffic %+v", seed, st)
		}
	}
}

// TestDemandKernelDisabled pins the toggle: with the cache off, lookups are
// naive recomputations and the hit/miss counters stay frozen.
func TestDemandKernelDisabled(t *testing.T) {
	d := New(UniformFleet(2, 4, 2000))
	s := d.Servers[0]
	if err := d.Activate(s, 0); err != nil {
		t.Fatal(err)
	}
	vm := &trace.VM{ID: 0, End: time.Hour, Epoch: 5 * time.Minute, Demand: []float64{100, 200}}
	if err := d.Place(vm, s); err != nil {
		t.Fatal(err)
	}
	d.SetDemandCache(false)
	before := d.DemandCacheStats()
	for i := 0; i < 5; i++ {
		if got := s.DemandAt(time.Minute); got != 100 {
			t.Fatalf("DemandAt = %v, want 100", got)
		}
	}
	if after := d.DemandCacheStats(); after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("disabled cache still counting: %+v -> %+v", before, after)
	}
	d.SetDemandCache(true)
	if got := s.DemandAt(6 * time.Minute); got != 200 {
		t.Fatalf("re-enabled DemandAt = %v, want 200", got)
	}
	if st := d.DemandCacheStats(); st.Misses == 0 {
		t.Fatal("re-enabled cache never refilled")
	}
}

// TestDemandKernelStatsAndWindows checks hit/miss/invalidation accounting on
// a deterministic scenario: repeated same-epoch lookups hit, an epoch
// boundary misses, and a placement invalidates.
func TestDemandKernelStatsAndWindows(t *testing.T) {
	d := New(UniformFleet(1, 4, 2000))
	s := d.Servers[0]
	if err := d.Activate(s, 0); err != nil {
		t.Fatal(err)
	}
	epoch := 5 * time.Minute
	vmA := &trace.VM{ID: 0, End: time.Hour, Epoch: epoch, Demand: []float64{100, 150, 175}}
	if err := d.Place(vmA, s); err != nil {
		t.Fatal(err)
	}

	s.DemandAt(0) // cold: miss
	s.DemandAt(time.Minute)
	s.DemandAt(4 * time.Minute)
	st := d.DemandCacheStats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("same-epoch stats = %+v, want 1 miss / 2 hits", st)
	}

	s.DemandAt(epoch) // next epoch: miss
	st = d.DemandCacheStats()
	if st.Misses != 2 {
		t.Fatalf("epoch boundary did not miss: %+v", st)
	}

	vmB := &trace.VM{ID: 1, End: time.Hour, Epoch: epoch, Demand: []float64{50}}
	if err := d.Place(vmB, s); err != nil {
		t.Fatal(err)
	}
	st = d.DemandCacheStats()
	if st.Invalidations == 0 {
		t.Fatalf("placement did not invalidate: %+v", st)
	}
	if got := s.DemandAt(epoch); got != 200 {
		t.Fatalf("post-placement demand = %v, want 200", got)
	}
}

package dc

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/trace"
)

// testWorkload builds n long-lived constant-demand VMs.
func testWorkload(n int) *trace.Set {
	ws := &trace.Set{RefCapacityMHz: 2400}
	for i := 0; i < n; i++ {
		ws.VMs = append(ws.VMs, constVM(i, 500+float64(100*i)))
	}
	return ws
}

func TestFailEvictsAndRecoverRejoins(t *testing.T) {
	d := twoServerDC()
	s := d.Servers[1]
	if err := d.Activate(s, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(1, 1000), s); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(2, 2000), s); err != nil {
		t.Fatal(err)
	}
	evicted, err := d.Fail(s, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 2 || evicted[0].ID != 1 || evicted[1].ID != 2 {
		t.Fatalf("evicted = %v", evicted)
	}
	if s.State() != Failed || s.NumVMs() != 0 || d.NumPlaced() != 0 {
		t.Fatalf("post-crash state=%v vms=%d placed=%d", s.State(), s.NumVMs(), d.NumPlaced())
	}
	if _, ok := d.HostOf(1); ok {
		t.Fatal("evicted VM still indexed")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckRuntime(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// A dead machine is unusable until repaired.
	if err := d.Activate(s, time.Hour); err == nil {
		t.Fatal("activated a failed server")
	}
	if err := d.Place(constVM(3, 100), s); err == nil {
		t.Fatal("placed a VM on a failed server")
	}
	if err := d.Hibernate(s); err == nil {
		t.Fatal("hibernated a failed server")
	}
	if _, err := d.Fail(s, time.Hour); err == nil {
		t.Fatal("double crash accepted")
	}
	if err := d.Recover(s, 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	if s.State() != Hibernated {
		t.Fatalf("recovered state = %v, want hibernated", s.State())
	}
	if err := d.Recover(s, 2*time.Hour); err == nil {
		t.Fatal("recovered a non-failed server")
	}
	if d.Failures != 1 || d.Recoveries != 1 {
		t.Fatalf("counters = %d/%d", d.Failures, d.Recoveries)
	}
}

func TestFailedServerDrawsNoPower(t *testing.T) {
	pm := DefaultPowerModel()
	if got := pm.Power(Failed, 0.5); got != 0 {
		t.Fatalf("failed power = %v, want 0", got)
	}
	d := twoServerDC()
	if _, err := d.Fail(d.Servers[0], 0); err != nil {
		t.Fatal(err)
	}
	want := pm.HibernateW // only the surviving hibernated server draws
	if got := d.PowerAt(0, pm); got != want {
		t.Fatalf("fleet power = %v, want %v", got, want)
	}
}

func TestMigrateToNonActiveIsHardError(t *testing.T) {
	d := New(UniformFleet(3, 6, 2000))
	d.SetChecked(false) // the release-build path must reject this on its own
	src := d.Servers[0]
	if err := d.Activate(src, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(1, 1000), src); err != nil {
		t.Fatal(err)
	}
	if err := d.Migrate(1, d.Servers[1]); err == nil {
		t.Fatal("migrated to a hibernated server")
	}
	if _, err := d.Fail(d.Servers[2], 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Migrate(1, d.Servers[2]); err == nil {
		t.Fatal("migrated to a failed server")
	}
	if host, _ := d.HostOf(1); host != src {
		t.Fatal("failed migration moved the VM")
	}
}

func TestPlaceOnHibernatedIsHardError(t *testing.T) {
	d := twoServerDC()
	d.SetChecked(false)
	if err := d.Place(constVM(1, 100), d.Servers[0]); err == nil {
		t.Fatal("placed a VM on a hibernated server without error")
	}
}

func TestFailJournalEvents(t *testing.T) {
	d := twoServerDC()
	s := d.Servers[0]
	if err := d.Activate(s, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(7, 500), s); err != nil {
		t.Fatal(err)
	}
	var got []Event
	d.SetJournal(func(e Event) { got = append(got, e) })
	if _, err := d.Fail(s, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Recover(s, time.Minute); err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: EventCrashEvict, VM: 7, Server: 0, Dest: -1},
		{Kind: EventFail, VM: -1, Server: 0, Dest: -1},
		{Kind: EventRecover, VM: -1, Server: 0, Dest: -1},
	}
	if len(got) != len(want) {
		t.Fatalf("events = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSnapshotRoundTripsFailedState(t *testing.T) {
	specs := UniformFleet(3, 6, 2000)
	d := New(specs)
	ws := testWorkload(5)
	if err := d.Activate(d.Servers[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(ws.VMs[0], d.Servers[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Fail(d.Servers[2], time.Minute); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, d.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Restore(specs, ws, snap)
	if err != nil {
		t.Fatal(err)
	}
	if got.Servers[2].State() != Failed {
		t.Fatalf("restored state = %v, want failed", got.Servers[2].State())
	}
	if got.Failures != 1 {
		t.Fatalf("restored failures = %d", got.Failures)
	}
	if got.ActiveCount() != 1 || got.NumPlaced() != 1 {
		t.Fatal("restored placement drifted")
	}
}

// FuzzCrashRecoverSequence drives an arbitrary operation sequence —
// place/remove/migrate/activate/hibernate/fail/recover — against a small
// fleet and asserts that no sequence, however hostile, can corrupt the
// structural or runtime invariants: invalid transitions must come back as
// errors, never as panics or silently inconsistent state.
func FuzzCrashRecoverSequence(f *testing.F) {
	f.Add([]byte{5, 0, 6, 0, 5, 0})          // crash-recover-crash, the ISSUE sequence
	f.Add([]byte{3, 0, 0, 1, 5, 0, 6, 0})    // activate, place, crash with VM, recover
	f.Add([]byte{3, 0, 3, 1, 0, 2, 2, 3, 5}) // migrate then crash the destination
	f.Fuzz(func(t *testing.T, ops []byte) {
		d := New(UniformFleet(4, 6, 2000))
		d.SetChecked(false) // violations must surface here as test failures, not panics
		vms := testWorkload(8)
		now := time.Duration(0)
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i]%7, int(ops[i+1])
			s := d.Servers[arg%len(d.Servers)]
			vm := vms.VMs[arg%len(vms.VMs)]
			switch op {
			case 0:
				_ = d.Place(vm, s)
			case 1:
				_, _ = d.Remove(vm.ID)
			case 2:
				_ = d.Migrate(vm.ID, s)
			case 3:
				_ = d.Activate(s, now)
			case 4:
				_ = d.Hibernate(s)
			case 5:
				_, _ = d.Fail(s, now)
			case 6:
				_ = d.Recover(s, now)
			}
			now += time.Minute
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("op %d (%d on server %d): %v", i/2, op, s.ID, err)
			}
			if err := d.CheckRuntime(now); err != nil {
				t.Fatalf("op %d (%d on server %d): %v", i/2, op, s.ID, err)
			}
		}
	})
}

package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// WriteCSV serializes the set in a simple line format (version 2):
//
//	# format,2
//	# ref_capacity_mhz,<cap>
//	<id>,<start_ns>,<end_ns>,<epoch_ns>,<ram_mb>,<d0>,<d1>,...
//
// ReadCSV also accepts the original version-1 lines without the ram_mb
// field. Demands are written with enough precision to round-trip.
func (s *Set) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# format,2\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "# ref_capacity_mhz,%g\n", s.RefCapacityMHz); err != nil {
		return err
	}
	for _, vm := range s.VMs {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d,%g", vm.ID, int64(vm.Start), int64(vm.End), int64(vm.Epoch), vm.RAMMB); err != nil {
			return err
		}
		for _, d := range vm.Demand {
			if _, err := fmt.Fprintf(bw, ",%g", d); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the format written by WriteCSV.
func ReadCSV(r io.Reader) (*Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	set := &Set{}
	line := 0
	version := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			body := strings.TrimSpace(strings.TrimPrefix(text, "#"))
			parts := strings.SplitN(body, ",", 2)
			if len(parts) == 2 && parts[0] == "ref_capacity_mhz" {
				v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: bad ref capacity: %v", line, err)
				}
				set.RefCapacityMHz = v
			}
			if len(parts) == 2 && parts[0] == "format" {
				v, err := strconv.Atoi(strings.TrimSpace(parts[1]))
				if err != nil || (v != 1 && v != 2) {
					return nil, fmt.Errorf("trace: line %d: unsupported format %q", line, parts[1])
				}
				version = v
			}
			continue
		}
		fields := strings.Split(text, ",")
		minFields := 5
		if version == 2 {
			minFields = 6
		}
		if len(fields) < minFields {
			return nil, fmt.Errorf("trace: line %d: want >=%d fields, got %d", line, minFields, len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad id: %v", line, err)
		}
		ints := make([]int64, 3)
		for i := 0; i < 3; i++ {
			v, err := strconv.ParseInt(fields[1+i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad time field %d: %v", line, i, err)
			}
			ints[i] = v
		}
		vm := &VM{
			ID:     id,
			Start:  time.Duration(ints[0]),
			End:    time.Duration(ints[1]),
			Epoch:  time.Duration(ints[2]),
			Demand: make([]float64, 0, len(fields)-4),
		}
		demandFields := fields[4:]
		if version == 2 {
			ram, err := strconv.ParseFloat(fields[4], 64)
			if err != nil || ram < 0 {
				return nil, fmt.Errorf("trace: line %d: bad ram_mb %q", line, fields[4])
			}
			vm.RAMMB = ram
			demandFields = fields[5:]
		}
		for _, f := range demandFields {
			d, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad demand: %v", line, err)
			}
			vm.Demand = append(vm.Demand, d)
		}
		// Validate permits a non-positive epoch only on constant-demand
		// (single-sample) VMs; everything else is rejected here.
		if err := vm.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		set.VMs = append(set.VMs, vm)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %v", err)
	}
	if set.RefCapacityMHz == 0 {
		return nil, fmt.Errorf("trace: missing ref_capacity_mhz header")
	}
	return set, nil
}

package trace

import (
	"bufio"
	"fmt"
	"io"
	"io/fs"
	"path"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file reads the de-facto standard distribution format of the
// CoMon/PlanetLab workload the paper uses (the same format popularized by
// the CloudSim project's planetlab data): one file per VM, one integer CPU
// utilization percentage (0–100) per line, sampled every 5 minutes. With
// the real archive on disk, the paper's experiments run on the paper's
// actual workload instead of the synthetic substitute.

// PlanetLabEpoch is the archive's sampling period.
const PlanetLabEpoch = 5 * time.Minute

// ReadPlanetLabFile parses one VM's utilization file: one integer percent
// per line (blank lines ignored). Values are converted to MHz against
// refCapacityMHz. The VM runs from t=0 for len(samples) epochs.
func ReadPlanetLabFile(r io.Reader, id int, refCapacityMHz float64) (*VM, error) {
	if refCapacityMHz <= 0 {
		return nil, fmt.Errorf("trace: planetlab reference capacity %v", refCapacityMHz)
	}
	sc := bufio.NewScanner(r)
	var demand []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		v, err := strconv.Atoi(text)
		if err != nil {
			return nil, fmt.Errorf("trace: planetlab line %d: %v", line, err)
		}
		if v < 0 || v > 100 {
			return nil, fmt.Errorf("trace: planetlab line %d: utilization %d outside [0,100]", line, v)
		}
		demand = append(demand, float64(v)/100*refCapacityMHz)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: planetlab read: %v", err)
	}
	if len(demand) == 0 {
		return nil, fmt.Errorf("trace: planetlab file has no samples")
	}
	return &VM{
		ID:     id,
		Start:  0,
		End:    time.Duration(len(demand)) * PlanetLabEpoch,
		Epoch:  PlanetLabEpoch,
		Demand: demand,
	}, nil
}

// ReadPlanetLabDir loads every regular file of dir (sorted by name, so VM
// IDs are stable) as one VM each. Hidden files are skipped. The paper's
// archive is one directory per day with thousands of VM files.
func ReadPlanetLabDir(fsys fs.FS, dir string, refCapacityMHz float64) (*Set, error) {
	entries, err := fs.ReadDir(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("trace: planetlab dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("trace: planetlab dir %q has no trace files", dir)
	}
	set := &Set{RefCapacityMHz: refCapacityMHz}
	for i, name := range names {
		f, err := fsys.Open(path.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("trace: planetlab %s: %v", name, err)
		}
		vm, err := ReadPlanetLabFile(f, i, refCapacityMHz)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("trace: planetlab %s: %v", name, err)
		}
		set.VMs = append(set.VMs, vm)
	}
	return set, nil
}

// ConcatDays chains per-day trace sets into one multi-day workload, the way
// the CoMon archive is distributed (one directory per day) and the way the
// paper uses it (two consecutive days). Each VM keeps one identity across
// days, matched by position after name-sorted loading: day k's VM i
// continues day k-1's VM i. Days may have different VM counts (nodes come
// and go); VMs missing from a day simply pause (zero demand) for that day.
// All sets must share the reference capacity.
func ConcatDays(days ...*Set) (*Set, error) {
	if len(days) == 0 {
		return nil, fmt.Errorf("trace: ConcatDays with no days")
	}
	ref := days[0].RefCapacityMHz
	maxVMs := 0
	for i, d := range days {
		//ecolint:allow float-eq — days must share a bit-identical reference capacity to be concatenated
		if d.RefCapacityMHz != ref {
			return nil, fmt.Errorf("trace: day %d reference capacity %v != %v", i, d.RefCapacityMHz, ref)
		}
		if len(d.VMs) > maxVMs {
			maxVMs = len(d.VMs)
		}
	}
	out := &Set{RefCapacityMHz: ref, VMs: make([]*VM, maxVMs)}
	dayLens := make([]time.Duration, len(days))
	for k, d := range days {
		for _, vm := range d.VMs {
			if vm.End > dayLens[k] {
				dayLens[k] = vm.End
			}
		}
	}
	// Build each VM's concatenated samples, padding absent days with zeros.
	for i := 0; i < maxVMs; i++ {
		var demand []float64
		epoch := PlanetLabEpoch
		for k, d := range days {
			samplesThisDay := int(dayLens[k] / epoch)
			if i < len(d.VMs) {
				vm := d.VMs[i]
				if vm.Epoch != epoch {
					return nil, fmt.Errorf("trace: day %d VM %d epoch %v != %v", k, i, vm.Epoch, epoch)
				}
				demand = append(demand, vm.Demand...)
				for pad := len(vm.Demand); pad < samplesThisDay; pad++ {
					demand = append(demand, 0)
				}
			} else {
				for pad := 0; pad < samplesThisDay; pad++ {
					demand = append(demand, 0)
				}
			}
		}
		out.VMs[i] = &VM{
			ID:     i,
			Start:  0,
			End:    time.Duration(len(demand)) * epoch,
			Epoch:  epoch,
			Demand: demand,
		}
	}
	return out, nil
}

package trace

import (
	"time"

	"repro/internal/metrics"
)

// AvgUtilHistogram builds the Fig. 4 histogram: the distribution over VMs of
// the average CPU utilization, in percent of the reference capacity, binned
// 0–100% in the given number of bins.
func (s *Set) AvgUtilHistogram(bins int) *metrics.Histogram {
	h := metrics.NewHistogram(0, 100, bins)
	for _, vm := range s.VMs {
		h.Add(100 * vm.Avg() / s.RefCapacityMHz)
	}
	return h
}

// DeviationHistogram builds the Fig. 5 histogram: the distribution over all
// (VM, epoch) samples of the deviation between the punctual utilization and
// the VM's own average, in percentage points of the reference capacity,
// binned over [-40, 40).
func (s *Set) DeviationHistogram(bins int) *metrics.Histogram {
	h := metrics.NewHistogram(-40, 40, bins)
	for _, vm := range s.VMs {
		avg := vm.Avg()
		for _, d := range vm.Demand {
			h.Add(100 * (d - avg) / s.RefCapacityMHz)
		}
	}
	return h
}

// Rates estimates the aggregate arrival rate lambda(t) (VMs/hour) and the
// per-VM departure rate mu(t) (1/hour) on a fixed-width grid over [0,
// horizon], by counting VM starts and ends per bucket. This is how the paper
// extracts "the values of lambda(t) and mu(t) from the traces" to feed the
// fluid model (§IV). The returned slices have one entry per bucket; when the
// horizon is not a multiple of the bucket the final bucket is partial and its
// counts are scaled by its true width (folding it into a full-width bucket
// used to overstate the trailing lambda and mu). mu is the departure count
// divided by the alive population at the bucket start.
func (s *Set) Rates(horizon, bucket time.Duration) (lambda, mu []float64) {
	if bucket <= 0 || horizon <= 0 {
		panic("trace: Rates needs positive horizon and bucket")
	}
	n := int((horizon + bucket - 1) / bucket)
	starts := make([]float64, n)
	ends := make([]float64, n)
	for _, vm := range s.VMs {
		// Start == 0 VMs are the pre-loaded initial population, deliberately
		// not counted as arrivals (they are the initial condition the fluid
		// model starts from, not part of lambda).
		if vm.Start > 0 && vm.Start < horizon {
			starts[bucketIndex(vm.Start, bucket, n)]++
		}
		if vm.End < horizon {
			ends[bucketIndex(vm.End, bucket, n)]++
		}
	}
	lambda = make([]float64, n)
	mu = make([]float64, n)
	for b := 0; b < n; b++ {
		width := bucket
		if rem := horizon - time.Duration(b)*bucket; rem < width {
			width = rem
		}
		perHour := float64(time.Hour) / float64(width)
		// Population measured at the bucket start: departures within the
		// bucket are still alive there, so mu stays finite and unbiased.
		alive := float64(s.AliveAt(time.Duration(b) * bucket))
		lambda[b] = starts[b] * perHour
		if alive > 0 {
			mu[b] = ends[b] * perHour / alive
		}
	}
	return lambda, mu
}

func bucketIndex(t, bucket time.Duration, n int) int {
	i := int(t / bucket)
	if i >= n {
		i = n - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// MeanDemandMHz returns the mean constant demand of VMs alive at t, or the
// mean of DemandAt(t) over alive VMs.
func (s *Set) MeanDemandMHz(t time.Duration) float64 {
	sum, n := 0.0, 0
	for _, vm := range s.VMs {
		if vm.Alive(t) {
			sum += vm.DemandAt(t)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Package trace models virtual-machine CPU-demand workloads.
//
// The paper drives its simulator with CoMon logs of 6,000 PlanetLab VMs
// (March–April 2012, 5-minute samples). Those logs are not available, so this
// package substitutes a synthetic generator calibrated to the paper's own
// characterization of the data:
//
//   - Fig. 4: the distribution of per-VM *average* CPU utilization has its
//     mode well below 20% of host capacity, with a small heavy tail of
//     CPU-hungry VMs;
//   - Fig. 5: the distribution of *deviations* from the per-VM average is
//     concentrated near zero, with ~94% of samples within ±10 percentage
//     points of capacity;
//   - §III: the aggregate load follows a daily pattern, rising in the morning
//     and falling in the evening.
//
// Demands are carried in MHz; the "utilization" percentages of Figs. 4-5 are
// relative to a reference host capacity of 2,400 MHz — a typical PlanetLab
// node of the era. The paper measures VM utilization against the *PlanetLab*
// hosting machine, which is far smaller than the simulated 8-16 GHz servers;
// keeping the two capacities distinct is what lets ~40 such VMs share one
// simulated server (§III) while Fig. 4 still shows VMs averaging 5-20%% of
// their (PlanetLab) host.
package trace

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
)

// VM is one virtual machine's demand trace. Demand[i] is the CPU demand in
// MHz during epoch i, where epoch i spans [Start+i*Epoch, Start+(i+1)*Epoch).
// The VM exists on [Start, End); DemandAt returns 0 outside that interval.
type VM struct {
	ID    int
	Start time.Duration
	End   time.Duration
	Epoch time.Duration
	// Demand holds per-epoch CPU demand in MHz. A single-element slice is a
	// constant-demand VM (used by the churn workloads of the fluid-model
	// experiments, which assume constant per-VM load).
	Demand []float64

	// RAMMB is the VM's (constant) memory footprint in MiB. Zero means
	// "not modeled": the CPU-only experiments of the paper's §III/§IV leave
	// it unset, the §V multi-resource extension populates it.
	RAMMB float64
}

// Alive reports whether the VM exists at virtual time t.
func (v *VM) Alive(t time.Duration) bool { return t >= v.Start && t < v.End }

// DemandAt returns the VM's CPU demand in MHz at virtual time t (a step
// function over epochs, clamped to the last sample) or 0 if the VM is not
// alive at t. A VM with a single sample — or a non-positive Epoch, which
// Validate only permits alongside a single sample — is constant-demand for
// its whole life.
func (v *VM) DemandAt(t time.Duration) float64 {
	if !v.Alive(t) || len(v.Demand) == 0 {
		return 0
	}
	if v.Epoch <= 0 || len(v.Demand) == 1 {
		return v.Demand[0]
	}
	i := int((t - v.Start) / v.Epoch)
	if i >= len(v.Demand) {
		i = len(v.Demand) - 1
	}
	return v.Demand[i]
}

// Validate reports whether the VM's fields are internally consistent. A
// non-positive Epoch is legal only for constant-demand VMs (at most one
// sample); a multi-sample trace needs a positive epoch to index into.
func (v *VM) Validate() error {
	switch {
	case v.End < v.Start:
		return fmt.Errorf("trace: VM %d: end %v before start %v", v.ID, v.End, v.Start)
	case len(v.Demand) > 1 && v.Epoch <= 0:
		return fmt.Errorf("trace: VM %d: %d samples with non-positive epoch %v", v.ID, len(v.Demand), v.Epoch)
	case v.RAMMB < 0:
		return fmt.Errorf("trace: VM %d: negative RAM %v", v.ID, v.RAMMB)
	}
	for i, d := range v.Demand {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("trace: VM %d: bad demand sample %d: %v", v.ID, i, d)
		}
	}
	return nil
}

// Sentinel window bounds returned by demandIndexAt for intervals that are
// unbounded on one side. They are extreme enough that no simulation clock
// reaches them, so callers can intersect windows without special cases.
const (
	minTime = time.Duration(math.MinInt64)
	maxTime = time.Duration(math.MaxInt64)
)

// demandIndexAt locates t in the VM's step function: it returns the index of
// the demand sample governing t (or -1 when the VM contributes 0, i.e. it is
// outside its lifetime or has no samples) and the maximal half-open window
// [from, until) containing t over which DemandAt is constant.
func (v *VM) demandIndexAt(t time.Duration) (idx int, from, until time.Duration) {
	if len(v.Demand) == 0 {
		return -1, minTime, maxTime
	}
	if t < v.Start {
		return -1, minTime, v.Start
	}
	if t >= v.End {
		return -1, v.End, maxTime
	}
	if v.Epoch <= 0 || len(v.Demand) == 1 {
		return 0, v.Start, v.End
	}
	i := int((t - v.Start) / v.Epoch)
	last := len(v.Demand) - 1
	if i >= last {
		// Clamped to the final sample, which rules until the VM departs.
		return last, v.Start + time.Duration(last)*v.Epoch, v.End
	}
	from = v.Start + time.Duration(i)*v.Epoch
	until = from + v.Epoch
	if until > v.End {
		until = v.End
	}
	return i, from, until
}

// DemandCursor memoizes one VM's step-function position so repeated lookups
// within the same epoch are a single bounds test plus an array read — no
// division. The returned demand is bit-identical to VM.DemandAt.
//
// A cursor is mutable state and is NOT safe for concurrent use; workloads
// are shared across concurrently running simulations (the comparison
// experiment), so the memo lives here rather than in the shared VM. Each
// owner (e.g. the hosting dc.Server) keeps its own cursor per VM.
type DemandCursor struct {
	VM *VM

	valid       bool
	idx         int // sample index, or -1 when the VM contributes 0
	from, until time.Duration
}

// Lookup returns the VM's demand at t plus the half-open window [from,
// until) over which that demand stays constant, refreshing the memo only
// when t leaves the cached window.
func (c *DemandCursor) Lookup(t time.Duration) (mhz float64, from, until time.Duration) {
	if !c.valid || t < c.from || t >= c.until {
		c.idx, c.from, c.until = c.VM.demandIndexAt(t)
		c.valid = true
	}
	if c.idx < 0 {
		return 0, c.from, c.until
	}
	return c.VM.Demand[c.idx], c.from, c.until
}

// CursorState is the serializable memo of a DemandCursor: the cached sample
// index and its validity window, without the VM pointer (the owner re-binds
// the cursor to its VM on restore).
type CursorState struct {
	Valid   bool  `json:"valid,omitempty"`
	Idx     int   `json:"idx,omitempty"`
	FromNS  int64 `json:"from_ns,omitempty"`
	UntilNS int64 `json:"until_ns,omitempty"`
}

// State captures the cursor's memo.
func (c *DemandCursor) State() CursorState {
	return CursorState{Valid: c.valid, Idx: c.idx, FromNS: int64(c.from), UntilNS: int64(c.until)}
}

// SetState installs a previously captured memo. The cursor must already be
// bound to the same VM the state was captured against; a restored cursor then
// answers every Lookup exactly as the captured one would have.
func (c *DemandCursor) SetState(st CursorState) {
	c.valid, c.idx, c.from, c.until = st.Valid, st.Idx, time.Duration(st.FromNS), time.Duration(st.UntilNS)
}

// Avg returns the mean demand over the VM's samples (MHz).
func (v *VM) Avg() float64 {
	if len(v.Demand) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range v.Demand {
		sum += d
	}
	return sum / float64(len(v.Demand))
}

// Peak returns the maximum demand over the VM's samples (MHz).
func (v *VM) Peak() float64 {
	m := 0.0
	for _, d := range v.Demand {
		if d > m {
			m = d
		}
	}
	return m
}

// Set is a collection of VM traces plus the reference capacity that
// utilization percentages are measured against.
type Set struct {
	VMs []*VM
	// RefCapacityMHz is the host capacity that per-VM utilization
	// percentages (Figs. 4–5) are relative to.
	RefCapacityMHz float64
}

// Validate reports the first invalid VM in the set, if any. Simulation
// drivers call it up front so a malformed trace (e.g. a multi-sample VM with
// a non-positive epoch) fails loudly instead of mid-run.
func (s *Set) Validate() error {
	for _, vm := range s.VMs {
		if err := vm.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalDemandAt returns the summed demand (MHz) of all VMs alive at t.
func (s *Set) TotalDemandAt(t time.Duration) float64 {
	sum := 0.0
	for _, v := range s.VMs {
		sum += v.DemandAt(t)
	}
	return sum
}

// AliveAt returns how many VMs exist at time t.
func (s *Set) AliveAt(t time.Duration) int {
	n := 0
	for _, v := range s.VMs {
		if v.Alive(t) {
			n++
		}
	}
	return n
}

// Subset returns a new Set containing n VMs chosen uniformly at random
// (without replacement) from s, mirroring the paper's "1,500 VMs randomly
// chosen among the 6,000". It panics if n exceeds the set size.
func (s *Set) Subset(n int, src *rng.Source) *Set {
	if n > len(s.VMs) {
		panic(fmt.Sprintf("trace: subset of %d from %d VMs", n, len(s.VMs)))
	}
	perm := src.Perm(len(s.VMs))
	out := &Set{RefCapacityMHz: s.RefCapacityMHz, VMs: make([]*VM, n)}
	for i := 0; i < n; i++ {
		out.VMs[i] = s.VMs[perm[i]]
	}
	return out
}

// GenConfig parameterizes the synthetic PlanetLab-like generator. The zero
// value is not usable; start from DefaultGenConfig.
type GenConfig struct {
	NumVMs  int
	Horizon time.Duration // trace length; all VMs run for the whole horizon
	Epoch   time.Duration // sampling period (paper: 5 minutes)

	RefCapacityMHz float64 // capacity utilization is measured against

	// Per-VM average demand: a lognormal body (most VMs small) with a
	// bounded-Pareto heavy tail (a few CPU-hungry VMs), per Fig. 4.
	AvgMedianMHz  float64 // median of the lognormal body
	AvgSigma      float64 // sigma of the underlying normal
	HeavyFraction float64 // fraction of VMs drawn from the heavy tail
	HeavyAlpha    float64 // bounded-Pareto shape
	HeavyLoMHz    float64 // heavy-tail support
	HeavyHiMHz    float64

	// Daily pattern: demand is modulated by 1 + DailyAmplitude*sin(...),
	// peaking at PeakHour (fractional hours, local to the trace).
	DailyAmplitude float64
	PeakHour       float64

	// Short-term noise: per-VM AR(1) deviations. Sigma is expressed as a
	// fraction of the VM's average demand; Rho is the one-epoch
	// autocorrelation. Deviations are what Fig. 5 histograms.
	NoiseRho       float64
	NoiseSigmaFrac float64

	// Demand spikes: with probability SpikeProb per epoch a VM demands
	// SpikeFactor times its base level for that epoch. Spikes model the
	// sudden surges in the PlanetLab logs that produce the rare overload
	// events of Fig. 11 and the tails of Fig. 5.
	SpikeProb   float64
	SpikeFactor float64

	// Memory model for the §V multi-resource extension. When RAMMedianMB is
	// positive every VM gets a constant footprint: lognormal(RAMMedianMB,
	// RAMSigma), anti-correlated with CPU when RAMAntiCorr is set (CPU-bound
	// VMs tend to be memory-light and vice versa — the complementary mixes
	// §V argues multi-resource placement exploits). Zero disables the
	// dimension entirely.
	RAMMedianMB float64
	RAMSigma    float64
	RAMAntiCorr bool

	// MaxDemandMHz caps instantaneous demand (a VM cannot exceed the
	// reference host capacity).
	MaxDemandMHz float64
}

// DefaultGenConfig returns the calibration used for the paper-scale
// experiments: 6,000 VMs over 48 hours yielding an overall 400-server load
// that swings between roughly 0.25 and 0.50 through the day, with the Fig. 4
// and Fig. 5 distribution shapes.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		NumVMs:         6000,
		Horizon:        48 * time.Hour,
		Epoch:          5 * time.Minute,
		RefCapacityMHz: 2400,
		AvgMedianMHz:   150,
		AvgSigma:       0.80,
		HeavyFraction:  0.03,
		HeavyAlpha:     1.1,
		HeavyLoMHz:     480,
		HeavyHiMHz:     2400,
		DailyAmplitude: 0.25,
		PeakHour:       14.0,
		NoiseRho:       0.7,
		NoiseSigmaFrac: 0.15,
		SpikeProb:      0.002,
		SpikeFactor:    3.5,
		MaxDemandMHz:   2400,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c GenConfig) Validate() error {
	switch {
	case c.NumVMs <= 0:
		return fmt.Errorf("trace: NumVMs = %d", c.NumVMs)
	case c.Horizon <= 0:
		return fmt.Errorf("trace: Horizon = %v", c.Horizon)
	case c.Epoch <= 0 || c.Epoch > c.Horizon:
		return fmt.Errorf("trace: Epoch = %v with Horizon %v", c.Epoch, c.Horizon)
	case c.RefCapacityMHz <= 0:
		return fmt.Errorf("trace: RefCapacityMHz = %v", c.RefCapacityMHz)
	case c.AvgMedianMHz <= 0 || c.AvgSigma < 0:
		return fmt.Errorf("trace: average-demand params %v/%v", c.AvgMedianMHz, c.AvgSigma)
	case c.HeavyFraction < 0 || c.HeavyFraction > 1:
		return fmt.Errorf("trace: HeavyFraction = %v", c.HeavyFraction)
	case c.HeavyFraction > 0 && (c.HeavyLoMHz <= 0 || c.HeavyHiMHz <= c.HeavyLoMHz || c.HeavyAlpha <= 0):
		return fmt.Errorf("trace: heavy-tail params lo=%v hi=%v alpha=%v", c.HeavyLoMHz, c.HeavyHiMHz, c.HeavyAlpha)
	case c.DailyAmplitude < 0 || c.DailyAmplitude >= 1:
		return fmt.Errorf("trace: DailyAmplitude = %v", c.DailyAmplitude)
	case c.NoiseRho < 0 || c.NoiseRho >= 1:
		return fmt.Errorf("trace: NoiseRho = %v", c.NoiseRho)
	case c.NoiseSigmaFrac < 0:
		return fmt.Errorf("trace: NoiseSigmaFrac = %v", c.NoiseSigmaFrac)
	case c.SpikeProb < 0 || c.SpikeProb > 1:
		return fmt.Errorf("trace: SpikeProb = %v", c.SpikeProb)
	case c.SpikeProb > 0 && c.SpikeFactor <= 1:
		return fmt.Errorf("trace: SpikeFactor = %v must exceed 1", c.SpikeFactor)
	case c.MaxDemandMHz <= 0:
		return fmt.Errorf("trace: MaxDemandMHz = %v", c.MaxDemandMHz)
	case c.RAMMedianMB < 0 || (c.RAMMedianMB > 0 && c.RAMSigma < 0):
		return fmt.Errorf("trace: RAM params %v/%v", c.RAMMedianMB, c.RAMSigma)
	}
	return nil
}

// dailyFactor returns the multiplicative daily modulation at time t.
func dailyFactor(t time.Duration, amplitude, peakHour float64) float64 {
	hours := t.Hours()
	phase := 2 * math.Pi * (hours - peakHour) / 24
	return 1 + amplitude*math.Cos(phase)
}

// DailyFactor exposes the daily modulation shape (1 + A·cos(2π(h-peak)/24))
// shared by the trace generators and the load harness, so "daily-modulated"
// means the same curve everywhere a rate or demand is modulated.
func DailyFactor(t time.Duration, amplitude, peakHour float64) float64 {
	return dailyFactor(t, amplitude, peakHour)
}

// Generate synthesizes a trace set. Each VM's samples depend only on (seed,
// VM index), so the set is reproducible and VM synthesis parallelizes
// trivially — but NumVMs*samples is cheap enough to stay sequential here.
func Generate(cfg GenConfig, seed uint64) (*Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	master := rng.New(seed)
	n := int(cfg.Horizon / cfg.Epoch)
	if n == 0 {
		n = 1
	}
	set := &Set{RefCapacityMHz: cfg.RefCapacityMHz, VMs: make([]*VM, cfg.NumVMs)}
	mu := math.Log(cfg.AvgMedianMHz)
	for i := 0; i < cfg.NumVMs; i++ {
		src := master.SplitIndex("vm", i)
		avg := src.LogNormal(mu, cfg.AvgSigma)
		if cfg.HeavyFraction > 0 && src.Bernoulli(cfg.HeavyFraction) {
			avg = src.Pareto(cfg.HeavyAlpha, cfg.HeavyLoMHz, cfg.HeavyHiMHz)
		}
		if avg > cfg.MaxDemandMHz {
			avg = cfg.MaxDemandMHz
		}
		vm := &VM{
			ID:     i,
			Start:  0,
			End:    cfg.Horizon,
			Epoch:  cfg.Epoch,
			Demand: make([]float64, n),
		}
		if cfg.RAMMedianMB > 0 {
			vm.RAMMB = src.LogNormal(math.Log(cfg.RAMMedianMB), cfg.RAMSigma)
			if cfg.RAMAntiCorr {
				// Scale memory inversely with the VM's CPU appetite around
				// the median: a CPU-heavy VM gets proportionally less RAM.
				ratio := cfg.AvgMedianMHz / avg
				if ratio > 4 {
					ratio = 4
				}
				if ratio < 0.25 {
					ratio = 0.25
				}
				vm.RAMMB *= ratio
			}
		}
		// AR(1) deviation state, stationary start.
		sigma := cfg.NoiseSigmaFrac * avg
		dev := 0.0
		if sigma > 0 && cfg.NoiseRho < 1 {
			dev = src.NormFloat64() * sigma / math.Sqrt(1-cfg.NoiseRho*cfg.NoiseRho)
		}
		for k := 0; k < n; k++ {
			t := time.Duration(k) * cfg.Epoch
			base := avg * dailyFactor(t, cfg.DailyAmplitude, cfg.PeakHour)
			d := base + dev
			if cfg.SpikeProb > 0 && src.Bernoulli(cfg.SpikeProb) {
				d *= cfg.SpikeFactor
			}
			if d < 0 {
				d = 0
			}
			if d > cfg.MaxDemandMHz {
				d = cfg.MaxDemandMHz
			}
			vm.Demand[k] = d
			dev = cfg.NoiseRho*dev + sigma*src.NormFloat64()
		}
		set.VMs[i] = vm
	}
	return set, nil
}

// ChurnConfig parameterizes an arrival/departure workload for the
// assignment-only experiments (Figs. 12–13): VMs arrive in a Poisson process
// whose rate follows the daily pattern, live exponentially long, and carry a
// constant demand — matching the fluid model's assumptions.
type ChurnConfig struct {
	Horizon time.Duration

	// InitialVMs are present at t=0 (the paper pre-loads 1,500).
	InitialVMs int

	// ArrivalPerHour is the baseline VM arrival rate; it is modulated by the
	// daily pattern below. MeanLifetime sets the exponential departure rate.
	ArrivalPerHour float64
	MeanLifetime   time.Duration

	// Demand distribution for every VM (constant over its life).
	DemandMedianMHz float64
	DemandSigma     float64
	MaxDemandMHz    float64

	// Daily modulation of the arrival rate (same convention as GenConfig).
	DailyAmplitude float64
	PeakHour       float64

	RefCapacityMHz float64
}

// DefaultChurnConfig returns the Fig. 12 scenario: 100 six-core servers
// preloaded with 1,500 VMs at low per-server load; churn holds the population
// roughly stationary overnight (lambda/mu = 1000/h * 1.5h = 1500 VMs) and
// grows it through the morning. The 90-minute mean lifetime is calibrated to
// the paper's observation that the system reaches its consolidated steady
// state after about 6 hours: servers drained by the assignment procedure
// empty out only as their last VMs depart, so consolidation cannot be faster
// than a few VM lifetimes.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		Horizon:         18 * time.Hour,
		InitialVMs:      1500,
		ArrivalPerHour:  1000,
		MeanLifetime:    90 * time.Minute,
		DemandMedianMHz: 200,
		DemandSigma:     0.6,
		MaxDemandMHz:    2400,
		DailyAmplitude:  0.45,
		PeakHour:        14.0,
		RefCapacityMHz:  2400,
	}
}

// Validate reports whether the churn configuration is usable.
func (c ChurnConfig) Validate() error {
	switch {
	case c.Horizon <= 0:
		return fmt.Errorf("trace: churn Horizon = %v", c.Horizon)
	case c.InitialVMs < 0:
		return fmt.Errorf("trace: InitialVMs = %d", c.InitialVMs)
	case c.ArrivalPerHour < 0:
		return fmt.Errorf("trace: ArrivalPerHour = %v", c.ArrivalPerHour)
	case c.MeanLifetime <= 0:
		return fmt.Errorf("trace: MeanLifetime = %v", c.MeanLifetime)
	case c.DemandMedianMHz <= 0 || c.DemandSigma < 0:
		return fmt.Errorf("trace: demand params %v/%v", c.DemandMedianMHz, c.DemandSigma)
	case c.MaxDemandMHz <= 0:
		return fmt.Errorf("trace: MaxDemandMHz = %v", c.MaxDemandMHz)
	case c.DailyAmplitude < 0 || c.DailyAmplitude >= 1:
		return fmt.Errorf("trace: DailyAmplitude = %v", c.DailyAmplitude)
	case c.RefCapacityMHz <= 0:
		return fmt.Errorf("trace: RefCapacityMHz = %v", c.RefCapacityMHz)
	}
	return nil
}

// GenerateChurn synthesizes an arrival/departure workload. Initial VMs start
// at t=0; arrivals follow a non-homogeneous Poisson process (thinning against
// the daily-modulated rate); lifetimes are exponential. Every VM has a single
// constant demand sample.
func GenerateChurn(cfg ChurnConfig, seed uint64) (*Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	master := rng.New(seed)
	demandSrc := master.Split("demand")
	lifeSrc := master.Split("lifetime")
	arrSrc := master.Split("arrivals")
	mu := math.Log(cfg.DemandMedianMHz)

	set := &Set{RefCapacityMHz: cfg.RefCapacityMHz}
	id := 0
	newVM := func(start time.Duration) *VM {
		d := demandSrc.LogNormal(mu, cfg.DemandSigma)
		if d > cfg.MaxDemandMHz {
			d = cfg.MaxDemandMHz
		}
		life := time.Duration(lifeSrc.ExpFloat64() * float64(cfg.MeanLifetime))
		if life <= 0 {
			// An exponential draw small enough to truncate to zero duration
			// would produce a Start == End VM that is never alive (lifetimes
			// are half-open). Floor to the smallest representable lifetime so
			// every generated VM exists for at least one instant.
			life = 1
		}
		// VMs whose life extends past the horizon keep their natural End and
		// simply outlive the run: the cluster driver never schedules
		// departures at or after the horizon. Clamping End to exactly Horizon
		// zeroed every such VM's demand at the final control tick (Alive is
		// half-open), which made all servers dip under Tl at t == Horizon at
		// once and run doomed all-pairs invitation rounds — the same
		// pathology parScaleWorkload had to fix by outliving the horizon.
		vm := &VM{ID: id, Start: start, End: start + life, Epoch: cfg.Horizon, Demand: []float64{d}}
		id++
		return vm
	}

	for i := 0; i < cfg.InitialVMs; i++ {
		set.VMs = append(set.VMs, newVM(0))
	}

	if cfg.ArrivalPerHour > 0 {
		// Thinning: the modulated rate never exceeds base*(1+amplitude).
		maxRate := cfg.ArrivalPerHour * (1 + cfg.DailyAmplitude)
		t := time.Duration(0)
		for {
			gap := arrSrc.ExpFloat64() / maxRate // hours
			t += time.Duration(gap * float64(time.Hour))
			if t >= cfg.Horizon {
				break
			}
			rate := cfg.ArrivalPerHour * dailyFactor(t, cfg.DailyAmplitude, cfg.PeakHour)
			if arrSrc.Float64() < rate/maxRate {
				set.VMs = append(set.VMs, newVM(t))
			}
		}
	}
	return set, nil
}

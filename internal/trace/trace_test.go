package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

func smallGenConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.NumVMs = 300
	cfg.Horizon = 12 * time.Hour
	return cfg
}

func TestVMDemandAt(t *testing.T) {
	vm := &VM{
		ID: 1, Start: time.Hour, End: 3 * time.Hour,
		Epoch: 30 * time.Minute, Demand: []float64{100, 200, 300, 400},
	}
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 0},           // before start
		{time.Hour, 100}, // first epoch
		{time.Hour + 29*time.Minute, 100},
		{time.Hour + 30*time.Minute, 200},
		{2*time.Hour + 59*time.Minute, 400}, // clamped to last sample
		{3 * time.Hour, 0},                  // departed
	}
	for _, c := range cases {
		if got := vm.DemandAt(c.t); got != c.want {
			t.Errorf("DemandAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

// A constant-demand VM with Epoch == 0 used to divide by zero; it must act
// as a constant step over its whole lifetime instead.
func TestVMDemandAtZeroEpochConstant(t *testing.T) {
	vm := &VM{ID: 1, Start: time.Hour, End: 3 * time.Hour, Epoch: 0, Demand: []float64{150}}
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 0},
		{time.Hour, 150},
		{2 * time.Hour, 150},
		{3*time.Hour - time.Nanosecond, 150},
		{3 * time.Hour, 0},
	}
	for _, c := range cases {
		if got := vm.DemandAt(c.t); got != c.want {
			t.Errorf("DemandAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestVMValidate(t *testing.T) {
	ok := []*VM{
		{ID: 0, End: time.Hour, Epoch: time.Minute, Demand: []float64{1, 2}},
		{ID: 1, End: time.Hour, Epoch: 0, Demand: []float64{5}}, // constant, zero epoch
		{ID: 2, End: time.Hour, Epoch: -time.Minute, Demand: nil},
	}
	for _, vm := range ok {
		if err := vm.Validate(); err != nil {
			t.Errorf("VM %d rejected: %v", vm.ID, err)
		}
	}
	bad := []*VM{
		{ID: 3, End: time.Hour, Epoch: 0, Demand: []float64{1, 2}}, // multi-sample, zero epoch
		{ID: 4, End: time.Hour, Epoch: -time.Minute, Demand: []float64{1, 2}},
		{ID: 5, Start: time.Hour, End: 0, Epoch: time.Minute, Demand: []float64{1}},
		{ID: 6, End: time.Hour, Epoch: time.Minute, Demand: []float64{-1}},
		{ID: 7, End: time.Hour, Epoch: time.Minute, Demand: []float64{math.NaN()}},
		{ID: 8, End: time.Hour, Epoch: time.Minute, Demand: []float64{1}, RAMMB: -4},
	}
	for _, vm := range bad {
		if err := vm.Validate(); err == nil {
			t.Errorf("VM %d accepted", vm.ID)
		}
	}
	set := &Set{VMs: []*VM{ok[0], bad[0]}}
	if err := set.Validate(); err == nil {
		t.Error("set with an invalid VM accepted")
	}
}

// The cursor must agree with DemandAt bit for bit at every probe, hot or
// cold, and its windows must actually bound the constant stretches.
func TestDemandCursorMatchesDemandAt(t *testing.T) {
	vms := []*VM{
		{ID: 0, Start: time.Hour, End: 3 * time.Hour, Epoch: 30 * time.Minute, Demand: []float64{100, 200, 300, 400}},
		{ID: 1, Start: 0, End: 2 * time.Hour, Epoch: 0, Demand: []float64{150}},
		{ID: 2, Start: 30 * time.Minute, End: 90 * time.Minute, Epoch: time.Hour, Demand: []float64{50, 60, 70}},
		{ID: 3, Start: 0, End: time.Hour, Epoch: time.Minute, Demand: nil},
	}
	// Probes deliberately revisit times and jump backwards: the memo must
	// survive non-monotone access.
	probes := []time.Duration{
		0, time.Hour, time.Hour + time.Minute, 2 * time.Hour, 30 * time.Minute,
		89 * time.Minute, 90 * time.Minute, 4 * time.Hour, time.Hour, 0,
		3*time.Hour - time.Nanosecond, 179 * time.Minute,
	}
	for _, vm := range vms {
		c := DemandCursor{VM: vm}
		for _, p := range probes {
			got, from, until := c.Lookup(p)
			if want := vm.DemandAt(p); got != want {
				t.Fatalf("VM %d: Lookup(%v) = %v, want %v", vm.ID, p, got, want)
			}
			if p < from || p >= until {
				t.Fatalf("VM %d: window [%v, %v) does not contain %v", vm.ID, from, until, p)
			}
			// Every instant inside the window must carry the same demand.
			for _, q := range []time.Duration{from, until - 1} {
				if vm.DemandAt(q) != got {
					t.Fatalf("VM %d: demand changes within window [%v, %v)", vm.ID, from, until)
				}
			}
		}
	}
}

func TestVMAvgPeak(t *testing.T) {
	vm := &VM{Epoch: time.Minute, End: time.Hour, Demand: []float64{1, 2, 3}}
	if vm.Avg() != 2 {
		t.Fatalf("Avg = %v", vm.Avg())
	}
	if vm.Peak() != 3 {
		t.Fatalf("Peak = %v", vm.Peak())
	}
	empty := &VM{}
	if empty.Avg() != 0 || empty.Peak() != 0 {
		t.Fatal("empty VM should have zero avg/peak")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallGenConfig()
	a, err := Generate(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.VMs {
		for k := range a.VMs[i].Demand {
			if a.VMs[i].Demand[k] != b.VMs[i].Demand[k] {
				t.Fatalf("VM %d sample %d differs across identical seeds", i, k)
			}
		}
	}
	c, err := Generate(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.VMs[0].Demand[0] == a.VMs[0].Demand[0] && c.VMs[1].Demand[0] == a.VMs[1].Demand[0] {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateSampleCountAndBounds(t *testing.T) {
	cfg := smallGenConfig()
	set, err := Generate(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantSamples := int(cfg.Horizon / cfg.Epoch)
	for _, vm := range set.VMs {
		if len(vm.Demand) != wantSamples {
			t.Fatalf("VM %d has %d samples, want %d", vm.ID, len(vm.Demand), wantSamples)
		}
		for k, d := range vm.Demand {
			if d < 0 || d > cfg.MaxDemandMHz {
				t.Fatalf("VM %d sample %d = %v out of [0,%v]", vm.ID, k, d, cfg.MaxDemandMHz)
			}
		}
	}
}

// Fig. 4 shape: the bulk of VMs average well under 20% of capacity, with a
// nonzero heavy tail.
func TestGenerateFig4Shape(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumVMs = 3000
	cfg.Horizon = 6 * time.Hour
	set, err := Generate(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	h := set.AvgUtilHistogram(20) // 5%-wide bins
	under20 := h.FractionWithin(0, 20)
	if under20 < 0.85 {
		t.Fatalf("fraction of VMs averaging <20%% = %v, want >0.85 (Fig. 4)", under20)
	}
	over50 := h.FractionWithin(50, 100)
	if over50 == 0 {
		t.Fatal("no heavy-tail VMs above 50% (Fig. 4 shows a tail)")
	}
	if over50 > 0.10 {
		t.Fatalf("heavy tail too fat: %v above 50%%", over50)
	}
	// The mode should be the lowest bin, as in Fig. 4.
	mode := 0
	for i := 1; i < h.Bins(); i++ {
		if h.Count(i) > h.Count(mode) {
			mode = i
		}
	}
	if mode != 0 {
		t.Fatalf("mode bin = %d, want 0 (utilization mode near zero)", mode)
	}
}

// Fig. 5 shape: ~94% of deviations within ±10 points of capacity. Our
// synthetic workload is gentler than PlanetLab, so assert >=0.90.
func TestGenerateFig5Shape(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumVMs = 1000
	cfg.Horizon = 12 * time.Hour
	set, err := Generate(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	h := set.DeviationHistogram(80)
	within10 := h.FractionWithin(-10, 10)
	if within10 < 0.90 {
		t.Fatalf("deviations within ±10%% = %v, want >=0.90 (paper: ~94%%)", within10)
	}
}

// The daily pattern must swing the overall load with a peak near PeakHour.
func TestGenerateDailyPattern(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumVMs = 2000
	cfg.Horizon = 24 * time.Hour
	set, err := Generate(cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	night := set.TotalDemandAt(2 * time.Hour)
	peak := set.TotalDemandAt(14 * time.Hour)
	if peak <= night*1.3 {
		t.Fatalf("peak/night demand ratio = %v, want >1.3", peak/night)
	}
}

// Overall-load calibration: with the paper's 400-server mix (one third each
// of 4/6/8 cores at 2 GHz => 4.8M MHz total) the default 6,000-VM set should
// load the DC between ~20% and ~55% through the day, as Fig. 6 shows.
func TestGenerateOverallLoadCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full 6000-VM set")
	}
	cfg := DefaultGenConfig()
	set, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	const totalCapacity = 400.0 / 3 * (4 + 6 + 8) * 2000 // MHz
	lo, hi := 1.0, 0.0
	for h := 0; h < 48; h++ {
		load := set.TotalDemandAt(time.Duration(h)*time.Hour) / totalCapacity
		if load < lo {
			lo = load
		}
		if load > hi {
			hi = load
		}
	}
	if lo < 0.15 || hi > 0.65 {
		t.Fatalf("overall load range [%v, %v], want within [0.15, 0.65]", lo, hi)
	}
	if hi-lo < 0.08 {
		t.Fatalf("daily swing too flat: [%v, %v]", lo, hi)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []func(*GenConfig){
		func(c *GenConfig) { c.NumVMs = 0 },
		func(c *GenConfig) { c.Horizon = 0 },
		func(c *GenConfig) { c.Epoch = 0 },
		func(c *GenConfig) { c.Epoch = c.Horizon * 2 },
		func(c *GenConfig) { c.RefCapacityMHz = 0 },
		func(c *GenConfig) { c.AvgMedianMHz = -1 },
		func(c *GenConfig) { c.HeavyFraction = 1.5 },
		func(c *GenConfig) { c.HeavyHiMHz = c.HeavyLoMHz / 2 },
		func(c *GenConfig) { c.DailyAmplitude = 1.0 },
		func(c *GenConfig) { c.NoiseRho = 1.0 },
		func(c *GenConfig) { c.MaxDemandMHz = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultGenConfig()
		mutate(&cfg)
		if _, err := Generate(cfg, 1); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSubset(t *testing.T) {
	cfg := smallGenConfig()
	set, err := Generate(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	sub := set.Subset(50, rng.New(5))
	if len(sub.VMs) != 50 {
		t.Fatalf("subset size = %d", len(sub.VMs))
	}
	if sub.RefCapacityMHz != set.RefCapacityMHz {
		t.Fatal("subset lost reference capacity")
	}
	seen := map[int]bool{}
	for _, vm := range sub.VMs {
		if seen[vm.ID] {
			t.Fatalf("VM %d sampled twice", vm.ID)
		}
		seen[vm.ID] = true
	}
}

func TestSubsetPanicsWhenTooLarge(t *testing.T) {
	set := &Set{VMs: []*VM{{}}, RefCapacityMHz: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized subset did not panic")
		}
	}()
	set.Subset(2, rng.New(1))
}

func TestGenerateChurnBasics(t *testing.T) {
	cfg := DefaultChurnConfig()
	cfg.Horizon = 6 * time.Hour
	cfg.InitialVMs = 200
	cfg.ArrivalPerHour = 50
	set, err := GenerateChurn(cfg, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.VMs) < cfg.InitialVMs {
		t.Fatalf("only %d VMs generated", len(set.VMs))
	}
	initial := 0
	for _, vm := range set.VMs {
		if vm.Start == 0 {
			initial++
		}
		if vm.End <= vm.Start {
			t.Fatalf("VM %d (start %v, end %v) is never alive", vm.ID, vm.Start, vm.End)
		}
		if len(vm.Demand) != 1 {
			t.Fatalf("churn VM %d has %d samples, want 1 (constant demand)", vm.ID, len(vm.Demand))
		}
		if vm.Demand[0] <= 0 || vm.Demand[0] > cfg.MaxDemandMHz {
			t.Fatalf("churn VM %d demand %v out of range", vm.ID, vm.Demand[0])
		}
	}
	if initial != cfg.InitialVMs {
		t.Fatalf("initial VMs = %d, want %d", initial, cfg.InitialVMs)
	}
}

// TestGenerateChurnFinalTickDemand is the horizon-clamp regression test:
// clamping VM.End to exactly cfg.Horizon made every long-lived VM dead at the
// t == Horizon control tick (lifetimes are half-open), so the final tick saw
// zero demand and every server ran a doomed migrateLow invitation round. VMs
// must outlive the horizon instead, keeping demand nonzero at the last tick.
func TestGenerateChurnFinalTickDemand(t *testing.T) {
	cfg := DefaultChurnConfig()
	cfg.Horizon = 6 * time.Hour
	cfg.InitialVMs = 300
	cfg.ArrivalPerHour = 100
	set, err := GenerateChurn(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if alive := set.AliveAt(cfg.Horizon); alive == 0 {
		t.Fatalf("no VM is alive at the horizon: every End was clamped to %v", cfg.Horizon)
	}
	if d := set.TotalDemandAt(cfg.Horizon); d <= 0 {
		t.Fatalf("total demand at the final tick = %v, want > 0", d)
	}
	outliving := 0
	for _, vm := range set.VMs {
		if vm.End > cfg.Horizon {
			outliving++
		}
	}
	// With a 90-minute mean lifetime and continuous arrivals, a large share
	// of the population is mid-life at the horizon.
	if outliving < len(set.VMs)/20 {
		t.Fatalf("only %d of %d VMs outlive the horizon", outliving, len(set.VMs))
	}
}

// TestGenerateChurnZeroLifetime pins the zero-lifetime choice: an exponential
// draw that truncates to zero duration is floored to the smallest
// representable lifetime, so no generated VM has Start == End (a VM that
// would never be alive and whose departure would fire at its arrival time).
func TestGenerateChurnZeroLifetime(t *testing.T) {
	cfg := DefaultChurnConfig()
	cfg.Horizon = time.Hour
	cfg.InitialVMs = 500
	cfg.ArrivalPerHour = 1000
	// A 1ns mean lifetime truncates ~63% of draws to zero without the floor.
	cfg.MeanLifetime = time.Nanosecond
	set, err := GenerateChurn(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range set.VMs {
		if vm.End <= vm.Start {
			t.Fatalf("VM %d has start %v, end %v: never alive", vm.ID, vm.Start, vm.End)
		}
		if !vm.Alive(vm.Start) {
			t.Fatalf("VM %d is not alive at its own start", vm.ID)
		}
	}
}

func TestGenerateChurnDeterministic(t *testing.T) {
	cfg := DefaultChurnConfig()
	cfg.Horizon = 4 * time.Hour
	cfg.InitialVMs = 100
	a, _ := GenerateChurn(cfg, 5)
	b, _ := GenerateChurn(cfg, 5)
	if len(a.VMs) != len(b.VMs) {
		t.Fatalf("population %d vs %d across identical seeds", len(a.VMs), len(b.VMs))
	}
	for i := range a.VMs {
		if a.VMs[i].Start != b.VMs[i].Start || a.VMs[i].Demand[0] != b.VMs[i].Demand[0] {
			t.Fatalf("VM %d differs across identical seeds", i)
		}
	}
}

func TestGenerateChurnArrivalRate(t *testing.T) {
	cfg := DefaultChurnConfig()
	cfg.Horizon = 24 * time.Hour
	cfg.InitialVMs = 0
	cfg.ArrivalPerHour = 200
	cfg.DailyAmplitude = 0 // homogeneous: empirical rate should match base
	set, err := GenerateChurn(cfg, 31)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(set.VMs)) / 24
	if math.Abs(got-200) > 20 {
		t.Fatalf("empirical arrival rate %v/h, want ~200/h", got)
	}
}

func TestRates(t *testing.T) {
	// Hand-built set: 2 VMs at t=0 living 30m; 1 arrival at t=90m living to end.
	set := &Set{
		RefCapacityMHz: 8000,
		VMs: []*VM{
			{ID: 0, Start: 0, End: 30 * time.Minute, Epoch: time.Hour, Demand: []float64{100}},
			{ID: 1, Start: 0, End: 30 * time.Minute, Epoch: time.Hour, Demand: []float64{100}},
			{ID: 2, Start: 90 * time.Minute, End: 2 * time.Hour, Epoch: time.Hour, Demand: []float64{100}},
		},
	}
	lambda, mu := set.Rates(2*time.Hour, time.Hour)
	if len(lambda) != 2 || len(mu) != 2 {
		t.Fatalf("rate buckets = %d/%d, want 2/2", len(lambda), len(mu))
	}
	if lambda[0] != 0 || lambda[1] != 1 {
		t.Fatalf("lambda = %v, want [0 1]", lambda)
	}
	// Bucket 0: 2 departures, 2 alive at midpoint -> mu = 1/h.
	if mu[0] != 1 {
		t.Fatalf("mu[0] = %v, want 1", mu[0])
	}
}

func TestRatesPartialTrailingBucket(t *testing.T) {
	// Horizon 90m with 1h buckets: the final bucket covers only [60m, 90m).
	// One arrival and one departure land there; both must be scaled by the
	// true 30m width (2/h per event), not the full-bucket 1/h that the old
	// int(horizon/bucket) fold produced.
	set := &Set{
		RefCapacityMHz: 8000,
		VMs: []*VM{
			{ID: 0, Start: 0, End: 75 * time.Minute, Epoch: time.Hour, Demand: []float64{100}},
			{ID: 1, Start: 0, End: 3 * time.Hour, Epoch: time.Hour, Demand: []float64{100}},
			{ID: 2, Start: 70 * time.Minute, End: 3 * time.Hour, Epoch: time.Hour, Demand: []float64{100}},
		},
	}
	lambda, mu := set.Rates(90*time.Minute, time.Hour)
	if len(lambda) != 2 || len(mu) != 2 {
		t.Fatalf("rate buckets = %d/%d, want 2/2 (partial trailing bucket dropped?)", len(lambda), len(mu))
	}
	if lambda[0] != 0 || lambda[1] != 2 {
		t.Fatalf("lambda = %v, want [0 2] (1 arrival over a 30m bucket)", lambda)
	}
	// Final bucket: 1 departure over 30m with 2 VMs alive at its start (VM 0
	// and VM 1; VM 2 arrives mid-bucket) -> mu = 2/h / 2 = 1/h.
	if mu[0] != 0 || mu[1] != 1 {
		t.Fatalf("mu = %v, want [0 1]", mu)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg := smallGenConfig()
	cfg.NumVMs = 20
	set, err := Generate(cfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.RefCapacityMHz != set.RefCapacityMHz {
		t.Fatalf("ref capacity %v != %v", got.RefCapacityMHz, set.RefCapacityMHz)
	}
	if len(got.VMs) != len(set.VMs) {
		t.Fatalf("VM count %d != %d", len(got.VMs), len(set.VMs))
	}
	for i := range set.VMs {
		a, b := set.VMs[i], got.VMs[i]
		if a.ID != b.ID || a.Start != b.Start || a.End != b.End || a.Epoch != b.Epoch {
			t.Fatalf("VM %d metadata differs after round trip", i)
		}
		for k := range a.Demand {
			if a.Demand[k] != b.Demand[k] {
				t.Fatalf("VM %d sample %d: %v != %v", i, k, b.Demand[k], a.Demand[k])
			}
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                                       // no header
		"# ref_capacity_mhz,8000\n1,2,3\n",       // too few fields
		"# ref_capacity_mhz,8000\nx,0,1,1,5\n",   // bad id
		"# ref_capacity_mhz,8000\n1,0,1,0,5,6\n", // zero epoch with multiple samples
		"# ref_capacity_mhz,8000\n1,5,1,1,5\n",   // end before start
		"# ref_capacity_mhz,8000\n1,0,9,1,-5\n",  // negative demand
		"# ref_capacity_mhz,8000\n1,0,9,1,abc\n", // bad demand
		"# ref_capacity_mhz,nope\n",              // bad header value
	}
	for i, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	in := "# ref_capacity_mhz,8000\n\n1,0,3600000000000,60000000000,5,6\n\n"
	set, err := ReadCSV(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(set.VMs) != 1 || len(set.VMs[0].Demand) != 2 {
		t.Fatalf("parsed %d VMs", len(set.VMs))
	}
}

// Property: DemandAt is always non-negative and zero outside the lifetime.
func TestQuickDemandAtInvariants(t *testing.T) {
	f := func(seed uint64, probe uint32) bool {
		cfg := DefaultChurnConfig()
		cfg.Horizon = 2 * time.Hour
		cfg.InitialVMs = 5
		cfg.ArrivalPerHour = 20
		set, err := GenerateChurn(cfg, seed)
		if err != nil {
			return false
		}
		t0 := time.Duration(probe) % (3 * time.Hour)
		for _, vm := range set.VMs {
			d := vm.DemandAt(t0)
			if d < 0 {
				return false
			}
			if !vm.Alive(t0) && d != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerate1000VMs24h(b *testing.B) {
	cfg := DefaultGenConfig()
	cfg.NumVMs = 1000
	cfg.Horizon = 24 * time.Hour
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTotalDemandAt(b *testing.B) {
	cfg := smallGenConfig()
	set, err := Generate(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += set.TotalDemandAt(time.Duration(i%12) * time.Hour)
	}
	_ = sink
}

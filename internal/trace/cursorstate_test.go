package trace

import (
	"testing"
	"time"
)

func TestCursorStateRoundTrip(t *testing.T) {
	vm := &VM{
		ID:     1,
		Start:  0,
		End:    10 * time.Hour,
		Epoch:  30 * time.Minute,
		Demand: []float64{100, 250, 75, 300},
	}
	orig := DemandCursor{VM: vm}
	orig.Lookup(75 * time.Minute) // park the memo mid-trace

	restored := DemandCursor{VM: vm}
	restored.SetState(orig.State())
	if restored != orig {
		t.Fatalf("cursor state round-trip changed the memo: %+v != %+v", restored, orig)
	}

	for _, at := range []time.Duration{80 * time.Minute, 89 * time.Minute, 90 * time.Minute, 9 * time.Hour, 11 * time.Hour} {
		gd, gf, gu := restored.Lookup(at)
		wd, wf, wu := orig.Lookup(at)
		if gd != wd || gf != wf || gu != wu {
			t.Fatalf("restored cursor diverged at %v: got (%v,%v,%v) want (%v,%v,%v)", at, gd, gf, gu, wd, wf, wu)
		}
	}

	// The zero CursorState restores an invalid (cold) memo.
	var cold DemandCursor
	cold.VM = vm
	cold.SetState(CursorState{})
	if cold.valid {
		t.Fatal("zero CursorState restored a valid memo")
	}
}

package trace

import (
	"strings"
	"testing"
	"testing/fstest"
	"time"
)

func TestReadPlanetLabFile(t *testing.T) {
	in := "10\n25\n\n0\n100\n"
	vm, err := ReadPlanetLabFile(strings.NewReader(in), 7, 2400)
	if err != nil {
		t.Fatal(err)
	}
	if vm.ID != 7 {
		t.Fatalf("id = %d", vm.ID)
	}
	if len(vm.Demand) != 4 {
		t.Fatalf("samples = %d, want 4 (blank line skipped)", len(vm.Demand))
	}
	want := []float64{240, 600, 0, 2400}
	for i, w := range want {
		if vm.Demand[i] != w {
			t.Fatalf("sample %d = %v, want %v", i, vm.Demand[i], w)
		}
	}
	if vm.Epoch != PlanetLabEpoch {
		t.Fatalf("epoch = %v", vm.Epoch)
	}
	if vm.End != 4*PlanetLabEpoch {
		t.Fatalf("end = %v", vm.End)
	}
	// The step function maps correctly onto the timeline.
	if got := vm.DemandAt(6 * time.Minute); got != 600 {
		t.Fatalf("DemandAt(6m) = %v, want 600", got)
	}
}

func TestReadPlanetLabFileRejectsGarbage(t *testing.T) {
	cases := []string{
		"",        // no samples
		"abc\n",   // not an integer
		"-5\n",    // negative
		"101\n",   // above 100
		"10.5\n",  // float
		"10 20\n", // two values per line
	}
	for i, c := range cases {
		if _, err := ReadPlanetLabFile(strings.NewReader(c), 0, 2400); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := ReadPlanetLabFile(strings.NewReader("5\n"), 0, 0); err == nil {
		t.Error("zero reference capacity accepted")
	}
}

func TestReadPlanetLabDir(t *testing.T) {
	fsys := fstest.MapFS{
		"day1/vm_b":    {Data: []byte("10\n20\n")},
		"day1/vm_a":    {Data: []byte("30\n40\n")},
		"day1/.hidden": {Data: []byte("99\n")},
		"day1/sub/x":   {Data: []byte("1\n")}, // nested: the subdir itself is skipped
	}
	set, err := ReadPlanetLabDir(fsys, "day1", 2400)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.VMs) != 2 {
		t.Fatalf("VMs = %d, want 2 (hidden and dirs skipped)", len(set.VMs))
	}
	// Sorted by name: vm_a first gets ID 0.
	if set.VMs[0].Demand[0] != 720 { // 30% of 2400
		t.Fatalf("vm_a sample = %v, want 720", set.VMs[0].Demand[0])
	}
	if set.VMs[1].Demand[0] != 240 {
		t.Fatalf("vm_b sample = %v, want 240", set.VMs[1].Demand[0])
	}
	if set.RefCapacityMHz != 2400 {
		t.Fatalf("ref capacity = %v", set.RefCapacityMHz)
	}
}

func TestReadPlanetLabDirErrors(t *testing.T) {
	fsys := fstest.MapFS{
		"empty/.keep": {Data: []byte("")},
		"bad/vm":      {Data: []byte("oops\n")},
	}
	if _, err := ReadPlanetLabDir(fsys, "missing", 2400); err == nil {
		t.Error("missing dir accepted")
	}
	if _, err := ReadPlanetLabDir(fsys, "empty", 2400); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := ReadPlanetLabDir(fsys, "bad", 2400); err == nil {
		t.Error("corrupt file accepted")
	}
}

// A loaded PlanetLab-format set must feed the standard figure pipelines.
func TestPlanetLabSetDrivesHistograms(t *testing.T) {
	fsys := fstest.MapFS{}
	for i := 0; i < 20; i++ {
		name := "d/vm" + string(rune('a'+i))
		body := strings.Repeat("5\n", 50) + strings.Repeat("15\n", 10)
		fsys[name] = &fstest.MapFile{Data: []byte(body)}
	}
	set, err := ReadPlanetLabDir(fsys, "d", 2400)
	if err != nil {
		t.Fatal(err)
	}
	h := set.AvgUtilHistogram(20)
	if h.Total() != 20 {
		t.Fatalf("histogram total = %d", h.Total())
	}
	if got := set.AliveAt(0); got != 20 {
		t.Fatalf("alive = %d", got)
	}
	if set.TotalDemandAt(0) != 20*0.05*2400 {
		t.Fatalf("total demand = %v", set.TotalDemandAt(0))
	}
}

// FuzzReadPlanetLabFile: arbitrary input never panics; accepted files yield
// well-formed VMs.
func FuzzReadPlanetLabFile(f *testing.F) {
	f.Add("10\n20\n30\n")
	f.Add("")
	f.Add("101\n")
	f.Add("0\n\n\n100\n")
	f.Fuzz(func(t *testing.T, input string) {
		vm, err := ReadPlanetLabFile(strings.NewReader(input), 1, 2400)
		if err != nil {
			return
		}
		if len(vm.Demand) == 0 {
			t.Fatal("accepted VM with no samples")
		}
		for _, d := range vm.Demand {
			if d < 0 || d > 2400 {
				t.Fatalf("demand %v out of range", d)
			}
		}
		if vm.End != time.Duration(len(vm.Demand))*PlanetLabEpoch {
			t.Fatal("End inconsistent with sample count")
		}
	})
}

func TestConcatDays(t *testing.T) {
	day1 := &Set{RefCapacityMHz: 2400, VMs: []*VM{
		{ID: 0, Start: 0, End: 2 * PlanetLabEpoch, Epoch: PlanetLabEpoch, Demand: []float64{100, 200}},
		{ID: 1, Start: 0, End: 2 * PlanetLabEpoch, Epoch: PlanetLabEpoch, Demand: []float64{10, 20}},
	}}
	day2 := &Set{RefCapacityMHz: 2400, VMs: []*VM{
		{ID: 0, Start: 0, End: 3 * PlanetLabEpoch, Epoch: PlanetLabEpoch, Demand: []float64{300, 400, 500}},
	}}
	got, err := ConcatDays(day1, day2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VMs) != 2 {
		t.Fatalf("VMs = %d", len(got.VMs))
	}
	// VM 0: day1 samples then day2 samples.
	want0 := []float64{100, 200, 300, 400, 500}
	if len(got.VMs[0].Demand) != len(want0) {
		t.Fatalf("VM0 samples = %v", got.VMs[0].Demand)
	}
	for i, w := range want0 {
		if got.VMs[0].Demand[i] != w {
			t.Fatalf("VM0[%d] = %v, want %v", i, got.VMs[0].Demand[i], w)
		}
	}
	// VM 1 pauses during day 2 (zero demand).
	want1 := []float64{10, 20, 0, 0, 0}
	for i, w := range want1 {
		if got.VMs[1].Demand[i] != w {
			t.Fatalf("VM1[%d] = %v, want %v", i, got.VMs[1].Demand[i], w)
		}
	}
	// The timeline spans both days.
	if got.VMs[0].End != 5*PlanetLabEpoch {
		t.Fatalf("end = %v", got.VMs[0].End)
	}
	// Demand lookups hit the right day.
	if got.VMs[0].DemandAt(2*PlanetLabEpoch) != 300 {
		t.Fatalf("day-2 lookup = %v", got.VMs[0].DemandAt(2*PlanetLabEpoch))
	}
}

func TestConcatDaysErrors(t *testing.T) {
	if _, err := ConcatDays(); err == nil {
		t.Error("no days accepted")
	}
	a := &Set{RefCapacityMHz: 2400, VMs: []*VM{{Epoch: PlanetLabEpoch, End: PlanetLabEpoch, Demand: []float64{1}}}}
	b := &Set{RefCapacityMHz: 8000, VMs: []*VM{{Epoch: PlanetLabEpoch, End: PlanetLabEpoch, Demand: []float64{1}}}}
	if _, err := ConcatDays(a, b); err == nil {
		t.Error("mismatched reference capacity accepted")
	}
	c := &Set{RefCapacityMHz: 2400, VMs: []*VM{{Epoch: time.Minute, End: time.Minute, Demand: []float64{1}}}}
	if _, err := ConcatDays(a, c); err == nil {
		t.Error("mismatched epoch accepted")
	}
}

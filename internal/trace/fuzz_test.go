package trace

import (
	"bytes"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the parser and that
// anything it accepts round-trips through WriteCSV and parses again to the
// same shape.
func FuzzReadCSV(f *testing.F) {
	f.Add("# ref_capacity_mhz,8000\n1,0,3600000000000,60000000000,5,6\n")
	f.Add("# ref_capacity_mhz,2400\n")
	f.Add("")
	f.Add("# ref_capacity_mhz,8000\n1,0,1,1,0\n2,0,2,1,3.5,4.5\n")
	f.Add("garbage\n# ref_capacity_mhz,1\n9,5,5,5,0.1\n")
	f.Fuzz(func(t *testing.T, input string) {
		set, err := ReadCSV(bytes.NewBufferString(input))
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		var buf bytes.Buffer
		if err := set.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted set failed to serialize: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(again.VMs) != len(set.VMs) {
			t.Fatalf("round trip changed VM count: %d -> %d", len(set.VMs), len(again.VMs))
		}
		for i := range set.VMs {
			if len(again.VMs[i].Demand) != len(set.VMs[i].Demand) {
				t.Fatalf("VM %d sample count changed", i)
			}
		}
	})
}

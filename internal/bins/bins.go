// Package bins provides offline bin-packing bounds for the consolidation
// problem the paper reduces to ("the problem of optimally mapping VMs to
// servers can be reduced to the bin packing problem ... known to be
// NP-hard", §V). The cluster experiments use these to calibrate what
// "theoretical minimum" means beyond the naive capacity bound:
//
//   - LowerBound: the classic L2 (Martello–Toth) bound specialized to
//     uniform bins — never above the optimum;
//   - FFD: First Fit Decreasing — never below the optimum, and within
//     11/9·OPT + 6/9 of it;
//   - Exact: branch and bound for small instances — the optimum itself.
//
// Items are VM demands, bins are server capacity × Ta (the packing target
// utilization). Heterogeneous fleets are handled by FFD and Exact directly;
// the L2 bound uses the largest capacity (staying a valid lower bound).
package bins

import (
	"fmt"
	"sort"
)

// Problem is one packing instance: item sizes and bin capacities. All
// values must be positive; items larger than every bin make the instance
// infeasible.
type Problem struct {
	Items []float64 // e.g. VM CPU demands in MHz
	Bins  []float64 // usable capacity per server (capacity × Ta), sorted or not
}

// Validate reports whether the instance is well-formed and feasible.
func (p Problem) Validate() error {
	if len(p.Bins) == 0 {
		return fmt.Errorf("bins: no bins")
	}
	maxBin := 0.0
	for _, b := range p.Bins {
		if b <= 0 {
			return fmt.Errorf("bins: non-positive bin %v", b)
		}
		if b > maxBin {
			maxBin = b
		}
	}
	for _, it := range p.Items {
		if it <= 0 {
			return fmt.Errorf("bins: non-positive item %v", it)
		}
		if it > maxBin {
			return fmt.Errorf("bins: item %v exceeds every bin (max %v)", it, maxBin)
		}
	}
	return nil
}

// LowerBound returns a valid lower bound on the number of bins needed:
// max of the capacity bound ceil(sum/maxBin) and the L2 counting bound with
// the largest bin size. It never exceeds the optimum.
func LowerBound(p Problem) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if len(p.Items) == 0 {
		return 0, nil
	}
	c := 0.0
	for _, b := range p.Bins {
		if b > c {
			c = b
		}
	}
	sum := 0.0
	for _, it := range p.Items {
		sum += it
	}
	capacityBound := int((sum + c - 1e-9) / c) // ceil with tolerance
	if float64(capacityBound)*c < sum-1e-9 {
		capacityBound++
	}

	// L2: for a threshold t in (0, c/2], items > c-t each need their own
	// bin; items in [t, c-t] can pair at most with the large ones. Candidate
	// thresholds: min(it, c-it) for every item, plus c/2 itself (the value
	// that classifies every item above half capacity as "large").
	items := append([]float64(nil), p.Items...)
	sort.Float64s(items)
	candidates := make([]float64, 0, len(items)+1)
	for _, it := range items {
		t := it
		if c-it < t {
			t = c - it
		}
		if t > 0 && t <= c/2 {
			candidates = append(candidates, t)
		}
	}
	candidates = append(candidates, c/2)
	best := capacityBound
	for _, t := range candidates {
		large := 0    // > c - t: cannot share with anything >= t
		medium := 0.0 // in [t, c-t]: total size
		spare := 0.0  // leftover room in the large bins for medium items
		for _, it := range items {
			switch {
			case it > c-t:
				large++
				spare += c - it
			case it >= t:
				medium += it
			}
		}
		need := large
		if medium > spare {
			extra := int((medium - spare + c - 1e-9) / c)
			if float64(extra)*c < medium-spare-1e-9 {
				extra++
			}
			need += extra
		}
		if need > best {
			best = need
		}
	}
	if best > len(p.Items) {
		best = len(p.Items)
	}
	return best, nil
}

// FFD packs with First Fit Decreasing over the given bins (largest bins
// first) and returns the number of bins used and the assignment
// (item index -> bin index). It is an upper bound on the optimum.
func FFD(p Problem) (used int, assignment []int, err error) {
	if err := p.Validate(); err != nil {
		return 0, nil, err
	}
	type bin struct {
		idx  int
		cap  float64
		free float64
	}
	bs := make([]bin, len(p.Bins))
	for i, c := range p.Bins {
		bs[i] = bin{idx: i, cap: c, free: c}
	}
	sort.SliceStable(bs, func(i, j int) bool { return bs[i].cap > bs[j].cap })

	order := make([]int, len(p.Items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return p.Items[order[a]] > p.Items[order[b]] })

	assignment = make([]int, len(p.Items))
	for i := range assignment {
		assignment[i] = -1
	}
	usedSet := map[int]bool{}
	for _, it := range order {
		size := p.Items[it]
		placed := false
		for b := range bs {
			if bs[b].free >= size-1e-12 {
				bs[b].free -= size
				assignment[it] = bs[b].idx
				usedSet[bs[b].idx] = true
				placed = true
				break
			}
		}
		if !placed {
			return 0, nil, fmt.Errorf("bins: FFD cannot place item %v (fleet too small)", size)
		}
	}
	return len(usedSet), assignment, nil
}

// Exact returns the optimal number of bins by branch and bound. It is
// intended for small instances (≤ ~20 items); larger inputs return an
// error rather than running for hours.
func Exact(p Problem) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if len(p.Items) == 0 {
		return 0, nil
	}
	if len(p.Items) > 20 {
		return 0, fmt.Errorf("bins: Exact limited to 20 items, got %d", len(p.Items))
	}
	items := append([]float64(nil), p.Items...)
	sort.Sort(sort.Reverse(sort.Float64Slice(items)))
	caps := append([]float64(nil), p.Bins...)
	sort.Sort(sort.Reverse(sort.Float64Slice(caps)))

	lb, err := LowerBound(p)
	if err != nil {
		return 0, err
	}
	ubUsed, _, err := FFD(p)
	if err != nil {
		return 0, err
	}
	if lb == ubUsed {
		return lb, nil
	}

	best := ubUsed
	free := make([]float64, len(caps))
	var rec func(i, used int)
	rec = func(i, used int) {
		if used >= best {
			return
		}
		if i == len(items) {
			best = used
			return
		}
		size := items[i]
		// Try existing (opened) bins; skip symmetric equal-free bins.
		seen := map[float64]bool{}
		for b := 0; b < used; b++ {
			if free[b] >= size-1e-12 && !seen[free[b]] {
				seen[free[b]] = true
				free[b] -= size
				rec(i+1, used)
				free[b] += size
			}
		}
		// Open the next bin (bins sorted descending: deterministic order).
		if used < len(caps) && caps[used] >= size-1e-12 {
			free[used] = caps[used] - size
			rec(i+1, used+1)
			free[used] = 0
		}
	}
	rec(0, 0)
	return best, nil
}

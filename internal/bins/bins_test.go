package bins

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func uniform(n int, c float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = c
	}
	return out
}

func TestValidate(t *testing.T) {
	cases := []Problem{
		{Items: []float64{1}, Bins: nil},
		{Items: []float64{1}, Bins: []float64{0}},
		{Items: []float64{0}, Bins: []float64{1}},
		{Items: []float64{-1}, Bins: []float64{1}},
		{Items: []float64{2}, Bins: []float64{1}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	ok := Problem{Items: []float64{1, 0.5}, Bins: uniform(3, 1)}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundCapacity(t *testing.T) {
	// 10 items of 0.4 into bins of 1.0: sum = 4 => at least 4 bins.
	p := Problem{Items: uniform(10, 0.4), Bins: uniform(10, 1)}
	lb, err := LowerBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 4 {
		t.Fatalf("lower bound = %d, want 4", lb)
	}
}

func TestLowerBoundL2BeatsCapacity(t *testing.T) {
	// 6 items of 0.6: capacity bound = ceil(3.6) = 4, but no two items
	// share a bin, so the true bound is 6. L2 must find it.
	p := Problem{Items: uniform(6, 0.6), Bins: uniform(10, 1)}
	lb, err := LowerBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 6 {
		t.Fatalf("lower bound = %d, want 6 (L2)", lb)
	}
}

func TestLowerBoundEmpty(t *testing.T) {
	lb, err := LowerBound(Problem{Bins: uniform(3, 1)})
	if err != nil || lb != 0 {
		t.Fatalf("empty instance: %d, %v", lb, err)
	}
}

func TestFFDSimple(t *testing.T) {
	// Items 0.6,0.6,0.4,0.4 into unit bins: FFD gives 2 bins (0.6+0.4 twice).
	p := Problem{Items: []float64{0.6, 0.4, 0.6, 0.4}, Bins: uniform(4, 1)}
	used, assign, err := FFD(p)
	if err != nil {
		t.Fatal(err)
	}
	if used != 2 {
		t.Fatalf("FFD used %d bins, want 2", used)
	}
	// Assignment must respect capacities.
	load := map[int]float64{}
	for i, b := range assign {
		if b < 0 {
			t.Fatalf("item %d unassigned", i)
		}
		load[b] += p.Items[i]
	}
	for b, l := range load {
		if l > p.Bins[b]+1e-9 {
			t.Fatalf("bin %d overfull: %v", b, l)
		}
	}
}

func TestFFDHeterogeneousBins(t *testing.T) {
	// One big item only fits the big bin; the small ones slot in after it.
	p := Problem{Items: []float64{8, 2, 2}, Bins: []float64{4, 10, 4}}
	used, assign, err := FFD(p)
	if err != nil {
		t.Fatal(err)
	}
	if used != 2 { // 10-bin holds 8+2, one 4-bin holds the last 2
		t.Fatalf("used = %d, want 2", used)
	}
	if assign[0] != 1 {
		t.Fatalf("big item in bin %d, want 1 (the 10-capacity bin)", assign[0])
	}
}

func TestFFDInfeasible(t *testing.T) {
	// Items fit individually but not collectively.
	p := Problem{Items: uniform(5, 0.9), Bins: uniform(2, 1)}
	if _, _, err := FFD(p); err == nil {
		t.Fatal("infeasible instance accepted")
	}
}

func TestExactMatchesKnownOptimal(t *testing.T) {
	cases := []struct {
		items []float64
		want  int
	}{
		{[]float64{0.6, 0.6, 0.6}, 3},
		{[]float64{0.5, 0.5, 0.5, 0.5}, 2},
		{[]float64{0.7, 0.3, 0.6, 0.4, 0.5, 0.5}, 3},
		{[]float64{0.9, 0.1, 0.8, 0.2}, 2},
		// FFD is suboptimal here: FFD opens 3 bins, OPT = 2.
		// items: 0.4,0.4,0.4,0.3,0.3,0.2 -> OPT: (0.4+0.4+0.2),(0.4+0.3+0.3).
		{[]float64{0.4, 0.4, 0.4, 0.3, 0.3, 0.2}, 2},
	}
	for i, c := range cases {
		p := Problem{Items: c.items, Bins: uniform(len(c.items), 1)}
		got, err := Exact(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("case %d: Exact = %d, want %d", i, got, c.want)
		}
	}
}

func TestExactRefusesLargeInstances(t *testing.T) {
	p := Problem{Items: uniform(21, 0.1), Bins: uniform(30, 1)}
	if _, err := Exact(p); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

// Property: LowerBound <= Exact <= FFD on random small instances.
func TestQuickBoundsSandwichOptimum(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 4 + src.Intn(9) // 4..12 items
		items := make([]float64, n)
		for i := range items {
			items[i] = 0.05 + src.Float64()*0.9
		}
		p := Problem{Items: items, Bins: uniform(n, 1)}
		lb, err := LowerBound(p)
		if err != nil {
			return false
		}
		opt, err := Exact(p)
		if err != nil {
			return false
		}
		ffd, _, err := FFD(p)
		if err != nil {
			return false
		}
		return lb <= opt && opt <= ffd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: FFD respects the 11/9 OPT + 1 guarantee on random instances.
func TestQuickFFDApproximationRatio(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 4 + src.Intn(8)
		items := make([]float64, n)
		for i := range items {
			items[i] = 0.05 + src.Float64()*0.9
		}
		p := Problem{Items: items, Bins: uniform(n, 1)}
		opt, err := Exact(p)
		if err != nil {
			return false
		}
		ffd, _, err := FFD(p)
		if err != nil {
			return false
		}
		return float64(ffd) <= 11.0/9.0*float64(opt)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFFD1000Items(b *testing.B) {
	src := rng.New(1)
	items := make([]float64, 1000)
	for i := range items {
		items[i] = 0.02 + src.Float64()*0.5
	}
	p := Problem{Items: items, Bins: uniform(700, 1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := FFD(p); err != nil {
			b.Fatal(err)
		}
	}
}

package web

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testHandler() *Handler {
	return New(Limits{MaxServers: 30, MaxVMs: 300, MaxHorizon: 12 * time.Hour})
}

func TestFormPage(t *testing.T) {
	rr := httptest.NewRecorder()
	testHandler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{"<form", "servers", "seed", `max="30"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("form missing %q", want)
		}
	}
}

func TestRunProducesReport(t *testing.T) {
	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/run?servers=10&vms=120&hours=4&seed=2", nil)
	testHandler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, rr.Body.String())
	}
	body := rr.Body.String()
	if !strings.Contains(body, "<svg") {
		t.Fatal("report has no charts")
	}
	if !strings.Contains(body, "fig7") {
		t.Fatal("report missing figures")
	}
}

func TestRunValidation(t *testing.T) {
	cases := []string{
		"/run?servers=99999", // above limit
		"/run?servers=abc",   // not a number
		"/run?hours=0",       // below limit
		"/run?ta=2.0",        // invalid ecoCloud config
		"/run?tl=0.99",       // Tl above Th
		"/run?seed=-1",       // negative
	}
	for _, url := range cases {
		rr := httptest.NewRecorder()
		testHandler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, url, nil))
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", url, rr.Code)
		}
	}
}

func TestNotFound(t *testing.T) {
	rr := httptest.NewRecorder()
	testHandler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rr.Code)
	}
}

func TestRunDefaultsClampedToLimits(t *testing.T) {
	// The built-in defaults (100 servers) exceed this handler's limit; an
	// explicit in-range request must still work.
	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/run?servers=30&vms=300&hours=2", nil)
	testHandler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, rr.Body.String())
	}
}

// Package web is the interactive dashboard behind cmd/ecoweb: a plain
// net/http server that runs the two-day experiment on demand with
// user-supplied parameters and renders the result as the same inline-SVG
// report the CLI produces. Every run is bounded (fleet, VMs, horizon) so a
// stray form value cannot pin the host.
package web

import (
	"fmt"
	"html"
	"net/http"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
)

// Limits bound what a request may ask for.
type Limits struct {
	MaxServers int
	MaxVMs     int
	MaxHorizon time.Duration
}

// DefaultLimits allows up to the paper's full scale.
func DefaultLimits() Limits {
	return Limits{MaxServers: 400, MaxVMs: 6000, MaxHorizon: 48 * time.Hour}
}

// Handler serves the dashboard. All runs share one telemetry registry so a
// /debug/vars export (see cmd/ecoweb) shows live, cumulative sim counters.
type Handler struct {
	limits Limits
	reg    *obs.Registry
}

// New returns the dashboard handler.
func New(limits Limits) *Handler {
	return &Handler{limits: limits, reg: obs.NewRegistry()}
}

// Registry exposes the shared telemetry registry the handler's runs feed.
func (h *Handler) Registry() *obs.Registry {
	return h.reg
}

// ServeHTTP implements http.Handler: GET / renders the form, GET /run
// executes a simulation and streams the report.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/":
		h.form(w, r)
	case "/run":
		h.run(w, r)
	default:
		http.NotFound(w, r)
	}
}

// form renders the parameter form.
func (h *Handler) form(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<!DOCTYPE html><html><head><meta charset="utf-8"><title>ecoCloud</title>
<style>body{font-family:sans-serif;max-width:640px;margin:2em auto}label{display:block;margin:0.6em 0}</style>
</head><body>
<h1>ecoCloud — run the two-day experiment</h1>
<form action="/run" method="get">
<label>servers <input name="servers" type="number" value="100" min="3" max="%d"></label>
<label>VMs <input name="vms" type="number" value="1500" min="10" max="%d"></label>
<label>horizon (hours) <input name="hours" type="number" value="24" min="1" max="%d"></label>
<label>seed <input name="seed" type="number" value="1" min="0"></label>
<label>Ta <input name="ta" value="0.90"></label>
<label>p <input name="p" value="3"></label>
<label>Tl <input name="tl" value="0.50"></label>
<label>Th <input name="th" value="0.95"></label>
<button type="submit">run</button>
</form></body></html>`,
		h.limits.MaxServers, h.limits.MaxVMs, int(h.limits.MaxHorizon.Hours()))
}

// run executes one experiment per the query parameters.
func (h *Handler) run(w http.ResponseWriter, r *http.Request) {
	opts := experiments.DefaultDailyOptions()
	var err error
	if opts.Servers, err = h.intParam(r, "servers", 100, 3, h.limits.MaxServers); err != nil {
		badRequest(w, err)
		return
	}
	if opts.NumVMs, err = h.intParam(r, "vms", 1500, 10, h.limits.MaxVMs); err != nil {
		badRequest(w, err)
		return
	}
	hours, err := h.intParam(r, "hours", 24, 1, int(h.limits.MaxHorizon.Hours()))
	if err != nil {
		badRequest(w, err)
		return
	}
	opts.Horizon = time.Duration(hours) * time.Hour
	seed, err := h.intParam(r, "seed", 1, 0, 1<<31)
	if err != nil {
		badRequest(w, err)
		return
	}
	opts.Seed = uint64(seed)
	for _, p := range []struct {
		name string
		dst  *float64
	}{
		{"ta", &opts.Eco.Ta}, {"p", &opts.Eco.P}, {"tl", &opts.Eco.Tl}, {"th", &opts.Eco.Th},
	} {
		if v := r.URL.Query().Get(p.name); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				badRequest(w, fmt.Errorf("bad %s: %v", p.name, err))
				return
			}
			*p.dst = f
		}
	}
	if err := opts.Eco.Validate(); err != nil {
		badRequest(w, err)
		return
	}
	opts.Obs = obs.NewRecorder(h.reg, nil)

	res, err := experiments.Daily(opts)
	if err != nil {
		http.Error(w, html.EscapeString(err.Error()), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	title := fmt.Sprintf("ecoCloud: %d servers, %d VMs, %dh, seed %d",
		opts.Servers, opts.NumVMs, hours, seed)
	if err := report.HTML(w, title, res.Figures()); err != nil {
		// Headers are gone; nothing more to do than log-by-status.
		return
	}
}

// intParam parses a bounded integer query parameter with a default.
func (h *Handler) intParam(r *http.Request, name string, def, lo, hi int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	if n < lo || n > hi {
		return 0, fmt.Errorf("%s = %d outside [%d, %d]", name, n, lo, hi)
	}
	return n, nil
}

func badRequest(w http.ResponseWriter, err error) {
	http.Error(w, html.EscapeString(err.Error()), http.StatusBadRequest)
}

package load

import (
	"math"
	"testing"
	"time"

	"repro/internal/trace"
)

func stressConfig() Config {
	return Config{
		Mode:           ModeStress,
		IAT:            IATExponential,
		Horizon:        10 * time.Hour,
		RatePerHour:    1000,
		Shape:          DefaultVMShape(),
		RefCapacityMHz: 2400,
		Seed:           7,
	}
}

// gaps extracts the inter-arrival gaps (in hours) from a built workload's
// arrival stream (Start > 0 VMs, which Build appends in time order).
func gaps(t *testing.T, set *trace.Set) []float64 {
	t.Helper()
	var starts []time.Duration
	for _, vm := range set.VMs {
		if vm.Start > 0 {
			starts = append(starts, vm.Start)
		}
	}
	if len(starts) < 2 {
		t.Fatalf("only %d arrivals", len(starts))
	}
	out := make([]float64, 0, len(starts))
	prev := time.Duration(0)
	for _, s := range starts {
		if s < prev {
			t.Fatalf("arrival at %v after %v: stream out of order", s, prev)
		}
		out = append(out, (s - prev).Hours())
		prev = s
	}
	return out
}

func meanCV(xs []float64) (mean, cv float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varsum := 0.0
	for _, x := range xs {
		varsum += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(varsum / float64(len(xs)))
	return mean, sd / mean
}

// TestIATMeanCV is the per-distribution property test: all three IAT
// distributions share the mean gap 1/rate, and their coefficients of
// variation are 1 (exponential), 1/sqrt(3) (uniform) and 0 (equidistant).
func TestIATMeanCV(t *testing.T) {
	cases := []struct {
		iat    IAT
		wantCV float64
	}{
		{IATExponential, 1},
		{IATUniform, 1 / math.Sqrt(3)},
		{IATEquidistant, 0},
	}
	for _, tc := range cases {
		cfg := stressConfig()
		cfg.IAT = tc.iat
		set, err := Build(cfg)
		if err != nil {
			t.Fatalf("%v: %v", tc.iat, err)
		}
		g := gaps(t, set)
		mean, cv := meanCV(g)
		wantMean := 1 / cfg.RatePerHour
		if math.Abs(mean-wantMean)/wantMean > 0.05 {
			t.Errorf("%v: mean gap %.6f h, want %.6f h", tc.iat, mean, wantMean)
		}
		if math.Abs(cv-tc.wantCV) > 0.05 {
			t.Errorf("%v: CV %.4f, want %.4f", tc.iat, cv, tc.wantCV)
		}
	}
}

// analyticArrivals integrates base*(1 + A*cos(2*pi*(h-peak)/24)) over
// [a, b] hours: the expected arrival count of the modulated process.
func analyticArrivals(base, amp, peak, a, b float64) float64 {
	primitive := func(h float64) float64 {
		return h + amp*(24/(2*math.Pi))*math.Sin(2*math.Pi*(h-peak)/24)
	}
	return base * (primitive(b) - primitive(a))
}

// TestThinningMatchesRateIntegral checks the non-homogeneous Poisson
// thinning against the analytic rate integral, both over the full day
// (where the cosine integrates away) and over the peak quarter (where it
// does not): the empirical counts must sit within a few sigma of the
// integrals.
func TestThinningMatchesRateIntegral(t *testing.T) {
	cfg := stressConfig()
	cfg.Mode = ModeTrace
	cfg.IAT = IATExponential
	cfg.Horizon = 24 * time.Hour
	cfg.RatePerHour = 2000
	cfg.DailyAmplitude = 0.45
	cfg.PeakHour = 14
	set, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	count := func(a, b float64) float64 {
		n := 0
		for _, vm := range set.VMs {
			if h := vm.Start.Hours(); vm.Start > 0 && h >= a && h < b {
				n++
			}
		}
		return float64(n)
	}
	check := func(name string, a, b float64) {
		want := analyticArrivals(cfg.RatePerHour, cfg.DailyAmplitude, cfg.PeakHour, a, b)
		got := count(a, b)
		// Poisson sd = sqrt(want); allow 4 sigma.
		if tol := 4 * math.Sqrt(want); math.Abs(got-want) > tol {
			t.Errorf("%s [%gh,%gh): %0.f arrivals, want %.0f +/- %.0f", name, a, b, got, want, tol)
		}
	}
	check("full day", 0, 24)
	check("peak quarter", 11, 17)
	check("trough quarter", 23, 24)
	check("morning ramp", 5, 11)
}

// TestBuildMatchesGenerateChurn pins the compatibility anchor: ModeTrace
// with IATExponential consumes the exact same labeled streams in the exact
// same order as trace.GenerateChurn, so the built workload is identical
// VM for VM. The load harness is a superset of the churn generator, not a
// divergent reimplementation.
func TestBuildMatchesGenerateChurn(t *testing.T) {
	ccfg := trace.DefaultChurnConfig()
	ccfg.Horizon = 6 * time.Hour
	ccfg.InitialVMs = 200
	ccfg.ArrivalPerHour = 500
	want, err := trace.GenerateChurn(ccfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Build(Config{
		Mode:           ModeTrace,
		IAT:            IATExponential,
		Horizon:        ccfg.Horizon,
		RatePerHour:    ccfg.ArrivalPerHour,
		InitialVMs:     ccfg.InitialVMs,
		DailyAmplitude: ccfg.DailyAmplitude,
		PeakHour:       ccfg.PeakHour,
		Shape: VMShape{
			MeanLifetime:    ccfg.MeanLifetime,
			DemandMedianMHz: ccfg.DemandMedianMHz,
			DemandSigma:     ccfg.DemandSigma,
			MaxDemandMHz:    ccfg.MaxDemandMHz,
		},
		RefCapacityMHz: ccfg.RefCapacityMHz,
		Seed:           99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VMs) != len(want.VMs) {
		t.Fatalf("built %d VMs, GenerateChurn built %d", len(got.VMs), len(want.VMs))
	}
	for i := range want.VMs {
		a, b := want.VMs[i], got.VMs[i]
		if a.ID != b.ID || a.Start != b.Start || a.End != b.End || a.Demand[0] != b.Demand[0] {
			t.Fatalf("VM %d differs: churn {%v %v %v} vs load {%v %v %v}",
				i, a.Start, a.End, a.Demand[0], b.Start, b.End, b.Demand[0])
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	for _, iat := range []IAT{IATExponential, IATUniform, IATEquidistant} {
		cfg := stressConfig()
		cfg.IAT = iat
		a, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.VMs) != len(b.VMs) {
			t.Fatalf("%v: %d vs %d VMs across identical configs", iat, len(a.VMs), len(b.VMs))
		}
		for i := range a.VMs {
			if a.VMs[i].Start != b.VMs[i].Start || a.VMs[i].End != b.VMs[i].End || a.VMs[i].Demand[0] != b.VMs[i].Demand[0] {
				t.Fatalf("%v: VM %d differs across identical configs", iat, i)
			}
		}
	}
}

// TestBurstShape checks the burst mode's rate geometry with the
// deterministic stream: during a burst window the equidistant gaps shrink
// by exactly BurstFactor, so the in-burst arrival count is BurstFactor
// times the off-burst count.
func TestBurstShape(t *testing.T) {
	cfg := stressConfig()
	cfg.Mode = ModeBurst
	cfg.IAT = IATEquidistant
	cfg.RatePerHour = 600
	cfg.Horizon = 8 * time.Hour
	cfg.BurstFactor = 3
	cfg.BurstEvery = 2 * time.Hour
	cfg.BurstLen = time.Hour
	set, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in, out := 0, 0
	for _, vm := range set.VMs {
		if vm.Start <= 0 {
			continue
		}
		if vm.Start%cfg.BurstEvery < cfg.BurstLen {
			in++
		} else {
			out++
		}
	}
	ratio := float64(in) / float64(out)
	if math.Abs(ratio-cfg.BurstFactor) > 0.1 {
		t.Fatalf("in-burst/off-burst arrivals = %d/%d = %.2f, want ~%.0f", in, out, ratio, cfg.BurstFactor)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.RatePerHour = 0 },
		func(c *Config) { c.InitialVMs = -1 },
		func(c *Config) { c.Shape.MeanLifetime = 0 },
		func(c *Config) { c.Mode = ModeColdstart; c.InitialVMs = 10 },
		func(c *Config) { c.Mode = ModeBurst; c.BurstFactor = 0.5 },
		func(c *Config) { c.Mode = ModeBurst; c.BurstFactor = 2; c.BurstEvery = 0 },
		func(c *Config) { c.Mode = ModeTrace; c.DailyAmplitude = 1.5 },
		func(c *Config) { c.Mode = Mode(42) },
	}
	for i, mutate := range bad {
		cfg := stressConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted an invalid config", i)
		}
	}
	good := stressConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeTrace, ModeStress, ModeBurst, ModeColdstart} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	for _, d := range []IAT{IATExponential, IATUniform, IATEquidistant} {
		got, err := ParseIAT(d.String())
		if err != nil || got != d {
			t.Fatalf("ParseIAT(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode accepted bogus")
	}
	if _, err := ParseIAT("bogus"); err == nil {
		t.Fatal("ParseIAT accepted bogus")
	}
}

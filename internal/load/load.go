// Package load is the deterministic arrival-process driver: it synthesizes
// churn workloads (trace.Set values) from a small set of load shapes — the
// modes and inter-arrival-time distributions of an invitro-style loader —
// and ramps them against a cluster policy to find the knee, the highest
// sustainable churn rate before the violation stop-rule fires.
//
// Everything is a pure function of the configuration and a uint64 seed:
// arrival times, demands and lifetimes come from labeled rng splits, so the
// same (Config, seed) pair produces a byte-identical workload on any machine
// and at any cluster worker count. That is the same determinism contract the
// rest of the repository runs under (see DESIGN.md), and it is what makes a
// ramp's knee a reproducible measurement instead of an anecdote.
package load

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
	"repro/internal/trace"
)

// Mode selects the arrival-process shape, mirroring the mode vocabulary of
// serverless load generators (trace replay, sustained stress, periodic
// bursts, cold start).
type Mode int

const (
	// ModeTrace replays the paper's daily-modulated arrival pattern: a base
	// rate modulated by 1 + A·cos(2π(h-peak)/24), with an initial population
	// preloaded at t=0. With IATExponential this is exactly the
	// trace.GenerateChurn process.
	ModeTrace Mode = iota
	// ModeStress drives a constant arrival rate with a preloaded
	// steady-state population — the shape the ramp steps through.
	ModeStress
	// ModeBurst alternates a constant base rate with periodic bursts: every
	// BurstEvery the rate multiplies by BurstFactor for BurstLen.
	ModeBurst
	// ModeColdstart is ModeStress from an empty data center: no initial
	// population, so the run measures the fill-up transient itself.
	ModeColdstart
)

var modeNames = map[Mode]string{
	ModeTrace:     "trace",
	ModeStress:    "stress",
	ModeBurst:     "burst",
	ModeColdstart: "coldstart",
}

func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode maps a flag string to its Mode.
func ParseMode(s string) (Mode, error) {
	for m, name := range modeNames {
		if name == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("load: unknown mode %q (have trace, stress, burst, coldstart)", s)
}

// IAT selects the inter-arrival-time distribution. All three share the mean
// gap 1/rate(t); they differ in variability (CV 1, 1/√3, 0).
type IAT int

const (
	// IATExponential is a Poisson process — for time-varying rates a
	// non-homogeneous one, realized by thinning against the peak rate.
	IATExponential IAT = iota
	// IATUniform draws each gap uniformly from (0, 2/rate(t)]: same mean as
	// exponential, CV 1/√3 — a "smoothed Poisson" stream.
	IATUniform
	// IATEquidistant spaces arrivals exactly 1/rate(t) apart: a deterministic
	// metronome, CV 0, the lowest-variance stream a rate admits.
	IATEquidistant
)

var iatNames = map[IAT]string{
	IATExponential: "exponential",
	IATUniform:     "uniform",
	IATEquidistant: "equidistant",
}

func (d IAT) String() string {
	if s, ok := iatNames[d]; ok {
		return s
	}
	return fmt.Sprintf("IAT(%d)", int(d))
}

// ParseIAT maps a flag string to its IAT.
func ParseIAT(s string) (IAT, error) {
	for d, name := range iatNames {
		if name == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("load: unknown IAT distribution %q (have exponential, uniform, equidistant)", s)
}

// VMShape describes the per-VM marginals: how long an arrival lives and how
// much CPU it wants (constant over its life, like the churn generator).
type VMShape struct {
	MeanLifetime    time.Duration
	DemandMedianMHz float64
	DemandSigma     float64
	MaxDemandMHz    float64
}

// DefaultVMShape matches trace.DefaultChurnConfig: 90-minute exponential
// lifetimes, log-normal demand with median 200 MHz and σ=0.6, capped at one
// reference core.
func DefaultVMShape() VMShape {
	return VMShape{
		MeanLifetime:    90 * time.Minute,
		DemandMedianMHz: 200,
		DemandSigma:     0.6,
		MaxDemandMHz:    2400,
	}
}

// MeanDemandMHz returns the analytic mean of the (uncapped) log-normal
// demand draw — what capacity planning against this shape should budget per
// VM.
func (s VMShape) MeanDemandMHz() float64 {
	return s.DemandMedianMHz * math.Exp(s.DemandSigma*s.DemandSigma/2)
}

// Config fully describes one workload build.
type Config struct {
	Mode Mode
	IAT  IAT

	Horizon time.Duration
	// RatePerHour is the base arrival rate (absolute, per hour).
	RatePerHour float64
	// InitialVMs are preloaded at t=0. ModeColdstart requires 0.
	InitialVMs int

	// Daily modulation, ModeTrace only (same convention as trace.GenConfig).
	DailyAmplitude float64
	PeakHour       float64

	// Burst geometry, ModeBurst only: every BurstEvery the rate multiplies
	// by BurstFactor for BurstLen.
	BurstFactor float64
	BurstEvery  time.Duration
	BurstLen    time.Duration

	Shape          VMShape
	RefCapacityMHz float64

	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Horizon <= 0:
		return fmt.Errorf("load: Horizon = %v", c.Horizon)
	case c.RatePerHour <= 0:
		return fmt.Errorf("load: RatePerHour = %v", c.RatePerHour)
	case c.InitialVMs < 0:
		return fmt.Errorf("load: InitialVMs = %d", c.InitialVMs)
	case c.Shape.MeanLifetime <= 0:
		return fmt.Errorf("load: MeanLifetime = %v", c.Shape.MeanLifetime)
	case c.Shape.DemandMedianMHz <= 0 || c.Shape.DemandSigma < 0:
		return fmt.Errorf("load: demand params %v/%v", c.Shape.DemandMedianMHz, c.Shape.DemandSigma)
	case c.Shape.MaxDemandMHz <= 0:
		return fmt.Errorf("load: MaxDemandMHz = %v", c.Shape.MaxDemandMHz)
	case c.RefCapacityMHz <= 0:
		return fmt.Errorf("load: RefCapacityMHz = %v", c.RefCapacityMHz)
	}
	switch c.Mode {
	case ModeTrace:
		if c.DailyAmplitude < 0 || c.DailyAmplitude >= 1 {
			return fmt.Errorf("load: DailyAmplitude = %v", c.DailyAmplitude)
		}
	case ModeStress:
		// No extra knobs.
	case ModeBurst:
		switch {
		case c.BurstFactor < 1:
			return fmt.Errorf("load: BurstFactor = %v (want >= 1)", c.BurstFactor)
		case c.BurstEvery <= 0:
			return fmt.Errorf("load: BurstEvery = %v", c.BurstEvery)
		case c.BurstLen <= 0 || c.BurstLen > c.BurstEvery:
			return fmt.Errorf("load: BurstLen = %v (want in (0, BurstEvery])", c.BurstLen)
		}
	case ModeColdstart:
		if c.InitialVMs != 0 {
			return fmt.Errorf("load: coldstart with %d initial VMs (the mode measures the empty-fleet fill-up)", c.InitialVMs)
		}
	default:
		return fmt.Errorf("load: unknown mode %d", int(c.Mode))
	}
	return nil
}

// rateAt returns the instantaneous arrival rate (per hour) at time t.
func (c Config) rateAt(t time.Duration) float64 {
	switch c.Mode {
	case ModeTrace:
		return c.RatePerHour * trace.DailyFactor(t, c.DailyAmplitude, c.PeakHour)
	case ModeBurst:
		if t%c.BurstEvery < c.BurstLen {
			return c.RatePerHour * c.BurstFactor
		}
		return c.RatePerHour
	default: // stress, coldstart
		return c.RatePerHour
	}
}

// peakRate returns the supremum of rateAt over the horizon — the thinning
// envelope for the exponential stream.
func (c Config) peakRate() float64 {
	switch c.Mode {
	case ModeTrace:
		return c.RatePerHour * (1 + c.DailyAmplitude)
	case ModeBurst:
		return c.RatePerHour * c.BurstFactor
	default:
		return c.RatePerHour
	}
}

// Build synthesizes the workload: InitialVMs at t=0, then arrivals over
// (0, Horizon) following the mode's rate curve under the chosen IAT
// distribution. Demands are log-normal (capped), lifetimes exponential
// (floored to one instant), and — like trace.GenerateChurn after the
// horizon-clamp fix — a VM whose life crosses the horizon keeps its natural
// End and simply outlives the run, so the final control tick still sees its
// demand. With ModeTrace and IATExponential the draw sequence is identical
// to trace.GenerateChurn's, which the tests pin.
func Build(cfg Config) (*trace.Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	master := rng.New(cfg.Seed)
	demandSrc := master.Split("demand")
	lifeSrc := master.Split("lifetime")
	arrSrc := master.Split("arrivals")
	mu := math.Log(cfg.Shape.DemandMedianMHz)

	set := &trace.Set{RefCapacityMHz: cfg.RefCapacityMHz}
	id := 0
	newVM := func(start time.Duration) *trace.VM {
		d := demandSrc.LogNormal(mu, cfg.Shape.DemandSigma)
		if d > cfg.Shape.MaxDemandMHz {
			d = cfg.Shape.MaxDemandMHz
		}
		life := time.Duration(lifeSrc.ExpFloat64() * float64(cfg.Shape.MeanLifetime))
		if life <= 0 {
			life = 1 // zero-lifetime floor, same semantics as GenerateChurn
		}
		vm := &trace.VM{ID: id, Start: start, End: start + life, Epoch: cfg.Horizon, Demand: []float64{d}}
		id++
		return vm
	}

	for i := 0; i < cfg.InitialVMs; i++ {
		set.VMs = append(set.VMs, newVM(0))
	}

	switch cfg.IAT {
	case IATExponential:
		// Thinning: candidate gaps from the peak-rate Poisson process, each
		// candidate accepted with probability rate(t)/peak. The accepted
		// stream is a non-homogeneous Poisson process with intensity
		// rate(t); for constant-rate modes every candidate is accepted.
		peak := cfg.peakRate()
		t := time.Duration(0)
		for {
			gap := arrSrc.ExpFloat64() / peak // hours
			t += time.Duration(gap * float64(time.Hour))
			if t >= cfg.Horizon {
				break
			}
			if arrSrc.Float64() < cfg.rateAt(t)/peak {
				set.VMs = append(set.VMs, newVM(t))
			}
		}
	case IATUniform:
		// Gap ~ U(0, 2/rate] at the rate in force when the gap starts:
		// mean 1/rate, CV 1/√3.
		t := time.Duration(0)
		for {
			gap := 2 * arrSrc.Float64() / cfg.rateAt(t) // hours
			t += time.Duration(gap * float64(time.Hour))
			if t >= cfg.Horizon {
				break
			}
			set.VMs = append(set.VMs, newVM(t))
		}
	case IATEquidistant:
		// Gap = exactly 1/rate at the gap start: CV 0.
		t := time.Duration(0)
		for {
			gap := 1 / cfg.rateAt(t) // hours
			t += time.Duration(gap * float64(time.Hour))
			if t >= cfg.Horizon {
				break
			}
			set.VMs = append(set.VMs, newVM(t))
		}
	default:
		return nil, fmt.Errorf("load: unknown IAT distribution %d", int(cfg.IAT))
	}
	return set, nil
}

package load

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/ecocloud"
)

func rampConfig() RampConfig {
	return RampConfig{
		StartPerHour: 100,
		StepPerHour:  50,
		Slot:         2 * time.Hour,
		MaxSlots:     20,
		WarmupFrac:   0.5,
		Threshold:    0.05,
		Tolerance:    2,
		Seed:         5,
	}
}

// scriptedRunner breaches every slot whose rate reaches breakAt.
func scriptedRunner(breakAt float64, threshold float64) SlotRunner {
	return func(spec SlotSpec) (SlotMetrics, error) {
		m := SlotMetrics{ViolationFrac: threshold / 10}
		if spec.RatePerHour >= breakAt {
			m.ViolationFrac = 2 * threshold
		}
		return m, nil
	}
}

// TestRampStopRuleWithinTolerance pins the acceptance criterion: with
// persistent overload the ramp halts exactly Tolerance slots after the
// first threshold crossing — the stop-rule fires within one tolerance
// window, never later.
func TestRampStopRuleWithinTolerance(t *testing.T) {
	cfg := rampConfig()
	// Rates: 100, 150, ..., first breach at 300 (slot index 4).
	res, err := Ramp(cfg, scriptedRunner(300, cfg.Threshold))
	if err != nil {
		t.Fatal(err)
	}
	firstBreach := 4
	wantSlots := firstBreach + cfg.Tolerance + 1
	if len(res.Slots) != wantSlots {
		t.Fatalf("ramp ran %d slots, want halt at slot %d (first breach %d + tolerance %d)",
			len(res.Slots), wantSlots, firstBreach, cfg.Tolerance)
	}
	if !res.Halted {
		t.Fatal("stop-rule did not report a halt")
	}
	if res.KneePerHour != 250 {
		t.Fatalf("knee = %v/h, want 250/h (the last clean rung)", res.KneePerHour)
	}
	for _, s := range res.Slots {
		if want := s.RatePerHour >= 300; s.Breach != want {
			t.Fatalf("slot %d (rate %v) breach = %v, want %v", s.Index, s.RatePerHour, s.Breach, want)
		}
	}
}

// TestRampToleranceAbsorbsFluke: an isolated breach below the tolerance
// budget must not halt the ramp or poison the knee.
func TestRampToleranceAbsorbsFluke(t *testing.T) {
	cfg := rampConfig()
	cfg.MaxSlots = 6
	fluke := func(spec SlotSpec) (SlotMetrics, error) {
		m := SlotMetrics{}
		if spec.Index == 1 {
			m.ViolationFrac = 1 // isolated fluke
		}
		return m, nil
	}
	res, err := Ramp(cfg, fluke)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Fatal("a single fluke inside the tolerance budget halted the ramp")
	}
	if len(res.Slots) != cfg.MaxSlots {
		t.Fatalf("ramp ran %d slots, want all %d", len(res.Slots), cfg.MaxSlots)
	}
	// Knee is the highest clean rung: slot 5 at 100 + 5*50.
	if res.KneePerHour != 350 {
		t.Fatalf("knee = %v/h, want 350/h", res.KneePerHour)
	}
}

// TestRampFirstSlotBreach: when even the lowest rung breaches, the knee is
// zero (nothing sustainable was demonstrated) and the halt is immediate
// once the tolerance budget is spent.
func TestRampFirstSlotBreach(t *testing.T) {
	cfg := rampConfig()
	cfg.Tolerance = 0
	res, err := Ramp(cfg, scriptedRunner(0, cfg.Threshold))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slots) != 1 || !res.Halted {
		t.Fatalf("ran %d slots (halted %v), want an immediate halt", len(res.Slots), res.Halted)
	}
	if res.KneePerHour != 0 {
		t.Fatalf("knee = %v/h, want 0 (no sustainable rate found)", res.KneePerHour)
	}
}

// TestRampSlotSeeds: slot seeds are deterministic across runs and distinct
// across slots (each rung is an independent replication).
func TestRampSlotSeeds(t *testing.T) {
	collect := func() []uint64 {
		var seeds []uint64
		runner := func(spec SlotSpec) (SlotMetrics, error) {
			seeds = append(seeds, spec.Seed)
			return SlotMetrics{}, nil
		}
		cfg := rampConfig()
		cfg.MaxSlots = 5
		if _, err := Ramp(cfg, runner); err != nil {
			t.Fatal(err)
		}
		return seeds
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d seed differs across identical ramps: %d vs %d", i, a[i], b[i])
		}
		for j := 0; j < i; j++ {
			if a[i] == a[j] {
				t.Fatalf("slots %d and %d share seed %d", i, j, a[i])
			}
		}
	}
}

// TestRampSpecGeometry: the runner sees the configured slot horizon and the
// warm-up boundary at WarmupFrac of it.
func TestRampSpecGeometry(t *testing.T) {
	cfg := rampConfig()
	cfg.MaxSlots = 1
	var got SlotSpec
	runner := func(spec SlotSpec) (SlotMetrics, error) {
		got = spec
		return SlotMetrics{}, nil
	}
	if _, err := Ramp(cfg, runner); err != nil {
		t.Fatal(err)
	}
	if got.Horizon != cfg.Slot {
		t.Fatalf("slot horizon %v, want %v", got.Horizon, cfg.Slot)
	}
	if want := time.Duration(cfg.WarmupFrac * float64(cfg.Slot)); got.MeasureFrom != want {
		t.Fatalf("measure-from %v, want %v", got.MeasureFrom, want)
	}
	if got.RatePerHour != cfg.StartPerHour {
		t.Fatalf("first slot rate %v, want %v", got.RatePerHour, cfg.StartPerHour)
	}
}

// clusterRunnerConfig is a small real-simulator setup shared by the
// integration tests below.
func clusterRunnerConfig(workers int) ClusterRunnerConfig {
	return ClusterRunnerConfig{
		Specs: dc.UniformFleet(12, 6, 2000),
		NewPolicy: func(seed uint64) (cluster.Policy, error) {
			return ecocloud.New(ecocloud.DefaultConfig(), seed)
		},
		Load: Config{
			Mode:           ModeStress,
			IAT:            IATExponential,
			Shape:          DefaultVMShape(),
			RefCapacityMHz: 2400,
		},
		AutoPopulate:    true,
		ControlInterval: 5 * time.Minute,
		SampleInterval:  30 * time.Minute,
		PowerModel:      dc.DefaultPowerModel(),
		Workers:         workers,
	}
}

// TestClusterRunnerDeterministic: the real slot runner is a pure function
// of the spec — same spec, same metrics — and worker counts never change
// its numbers (the cluster engine's bit-identity contract surfaces here as
// an identical knee).
func TestClusterRunnerDeterministic(t *testing.T) {
	spec := SlotSpec{
		Index:       0,
		RatePerHour: 120,
		Seed:        777,
		Horizon:     2 * time.Hour,
		MeasureFrom: time.Hour,
	}
	base, err := NewClusterRunner(clusterRunnerConfig(0))(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 8} {
		m, err := NewClusterRunner(clusterRunnerConfig(workers))(spec)
		if err != nil {
			t.Fatal(err)
		}
		if m != base {
			t.Fatalf("workers=%d metrics %+v differ from sequential %+v", workers, m, base)
		}
	}
}

// TestClusterRunnerWarmupGate: shrinking the measured window must not
// change the simulation itself, only the accounting — energy (whole-run)
// stays identical while the aggregates cover different windows.
func TestClusterRunnerWarmupGate(t *testing.T) {
	run := NewClusterRunner(clusterRunnerConfig(0))
	spec := SlotSpec{RatePerHour: 120, Seed: 777, Horizon: 2 * time.Hour}
	whole, err := run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.MeasureFrom = time.Hour
	gated, err := run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if whole.EnergyKWh != gated.EnergyKWh {
		t.Fatalf("warm-up gate changed the energy integral: %v vs %v", whole.EnergyKWh, gated.EnergyKWh)
	}
	if whole.Arrivals != gated.Arrivals {
		t.Fatalf("warm-up gate changed the workload: %d vs %d arrivals", whole.Arrivals, gated.Arrivals)
	}
}

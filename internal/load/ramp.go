package load

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/rng"
)

// SlotMetrics is what one ramp slot measures, after its warm-up window.
type SlotMetrics struct {
	// ViolationFrac is the fraction of VM-time spent on overloaded servers
	// (cluster.Result.VMOverloadTimeFrac over the measured window).
	ViolationFrac float64
	// RejectFrac is the fraction of placement requests the policy could only
	// satisfy by overcommitting (saturations / placements): the policy still
	// places every VM, so this is degraded service, not lost arrivals.
	RejectFrac float64

	MeanActiveServers float64
	EnergyKWh         float64
	// Arrivals counts the VMs that arrived during the slot (the preloaded
	// initial population excluded).
	Arrivals int
}

// SlotSpec is the work order Ramp hands the runner for one slot: an
// independent simulation at one rung of the rate ladder.
type SlotSpec struct {
	Index       int
	RatePerHour float64
	// Seed is the slot's private seed, split deterministically from the
	// ramp seed, so slots are independent but the whole ramp is a pure
	// function of RampConfig.
	Seed    uint64
	Horizon time.Duration
	// MeasureFrom is the warm-up boundary: metrics aggregate over
	// [MeasureFrom, Horizon) only.
	MeasureFrom time.Duration
}

// SlotRunner executes one slot and reports its metrics. The ramp engine is
// agnostic to what "running" means — the cluster-backed runner from
// NewClusterRunner is the production one; tests script their own.
type SlotRunner func(SlotSpec) (SlotMetrics, error)

// RampConfig describes a stepped rate ramp with an overload stop-rule.
type RampConfig struct {
	// StartPerHour is the first slot's arrival rate; each subsequent slot
	// adds StepPerHour. MaxSlots bounds the ladder.
	StartPerHour float64
	StepPerHour  float64
	Slot         time.Duration
	MaxSlots     int

	// WarmupFrac is the fraction of each slot excluded from measurement, so
	// a slot's verdict reflects its steady state, not the fill-up transient.
	WarmupFrac float64

	// Threshold and Tolerance form the stop-rule: a slot breaches when its
	// ViolationFrac or RejectFrac exceeds Threshold; the ramp halts once
	// more than Tolerance slots have breached. Tolerance absorbs isolated
	// flukes — with persistent overload the ramp halts exactly Tolerance
	// slots after the first breach.
	Threshold float64
	Tolerance int

	Seed uint64
}

// Validate reports whether the ramp configuration is usable.
func (c RampConfig) Validate() error {
	switch {
	case c.StartPerHour <= 0:
		return fmt.Errorf("load: ramp StartPerHour = %v", c.StartPerHour)
	case c.StepPerHour < 0:
		return fmt.Errorf("load: ramp StepPerHour = %v", c.StepPerHour)
	case c.Slot <= 0:
		return fmt.Errorf("load: ramp Slot = %v", c.Slot)
	case c.MaxSlots <= 0:
		return fmt.Errorf("load: ramp MaxSlots = %d", c.MaxSlots)
	case c.WarmupFrac < 0 || c.WarmupFrac >= 1:
		return fmt.Errorf("load: ramp WarmupFrac = %v (want [0,1))", c.WarmupFrac)
	case c.Threshold <= 0 || c.Threshold >= 1:
		return fmt.Errorf("load: ramp Threshold = %v (want (0,1))", c.Threshold)
	case c.Tolerance < 0:
		return fmt.Errorf("load: ramp Tolerance = %d", c.Tolerance)
	}
	return nil
}

// Slot is one executed rung of the ladder.
type Slot struct {
	Index       int
	RatePerHour float64
	Metrics     SlotMetrics
	Breach      bool
}

// RampResult is the ramp's verdict.
type RampResult struct {
	Slots []Slot
	// KneePerHour is the highest rate that ran without breaching — the
	// maximum sustainable churn rate the ramp found. Zero when even the
	// first slot breached.
	KneePerHour float64
	// Halted reports that the stop-rule fired (false: MaxSlots exhausted
	// without accumulating enough breaches, so the knee is a lower bound).
	Halted bool
}

// Ramp steps the rate ladder through the runner slot by slot, applying the
// stop-rule after each. Slots run sequentially — each verdict decides
// whether the next slot runs at all, which is the point of a stop-rule.
func Ramp(cfg RampConfig, run SlotRunner) (*RampResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if run == nil {
		return nil, fmt.Errorf("load: Ramp needs a SlotRunner")
	}
	// Slot seeds come from an indexed split so inserting or removing rungs
	// never shifts another slot's stream.
	seeds := rng.New(cfg.Seed)
	res := &RampResult{}
	breaches := 0
	for k := 0; k < cfg.MaxSlots; k++ {
		rate := cfg.StartPerHour + float64(k)*cfg.StepPerHour
		spec := SlotSpec{
			Index:       k,
			RatePerHour: rate,
			Seed:        seeds.SplitIndex("slot", k).Uint64(),
			Horizon:     cfg.Slot,
			MeasureFrom: time.Duration(cfg.WarmupFrac * float64(cfg.Slot)),
		}
		m, err := run(spec)
		if err != nil {
			return nil, fmt.Errorf("load: ramp slot %d (rate %.1f/h): %w", k, rate, err)
		}
		breach := m.ViolationFrac > cfg.Threshold || m.RejectFrac > cfg.Threshold
		res.Slots = append(res.Slots, Slot{Index: k, RatePerHour: rate, Metrics: m, Breach: breach})
		if breach {
			breaches++
			if breaches > cfg.Tolerance {
				res.Halted = true
				break
			}
		} else {
			res.KneePerHour = rate
		}
	}
	return res, nil
}

// ClusterRunnerConfig wires a SlotRunner to the real simulator: each slot
// builds a fresh workload at its rate, a fresh policy, a fresh fleet, and
// runs them through cluster.Run with the slot's warm-up excluded from the
// aggregates.
type ClusterRunnerConfig struct {
	Specs []dc.Spec
	// NewPolicy builds the slot's policy from the slot seed — a fresh one
	// per slot, so no state leaks across rungs.
	NewPolicy func(seed uint64) (cluster.Policy, error)

	// Load is the workload template; Horizon, RatePerHour, Seed and (with
	// AutoPopulate) InitialVMs are overridden per slot.
	Load Config
	// AutoPopulate preloads each slot with its own steady-state population,
	// rate·E[lifetime] VMs, so the warm-up only has to absorb the residual
	// transient rather than a full fleet fill-up. Ignored for coldstart.
	AutoPopulate bool

	ControlInterval time.Duration
	SampleInterval  time.Duration
	PowerModel      dc.PowerModel
	// Workers is the cluster control-round worker count; like everywhere
	// else it is bit-identity-neutral, so slot metrics (and the knee) are
	// identical at any value.
	Workers int
}

// NewClusterRunner returns the cluster.Run-backed SlotRunner.
func NewClusterRunner(cfg ClusterRunnerConfig) SlotRunner {
	return func(spec SlotSpec) (SlotMetrics, error) {
		lc := cfg.Load
		lc.Horizon = spec.Horizon
		lc.RatePerHour = spec.RatePerHour
		lc.Seed = spec.Seed
		if cfg.AutoPopulate && lc.Mode != ModeColdstart {
			lc.InitialVMs = int(spec.RatePerHour * lc.Shape.MeanLifetime.Hours())
		}
		ws, err := Build(lc)
		if err != nil {
			return SlotMetrics{}, err
		}
		pol, err := cfg.NewPolicy(spec.Seed)
		if err != nil {
			return SlotMetrics{}, err
		}
		res, err := cluster.Run(cluster.RunConfig{
			Specs:           cfg.Specs,
			Workload:        ws,
			Horizon:         spec.Horizon,
			ControlInterval: cfg.ControlInterval,
			SampleInterval:  cfg.SampleInterval,
			MeasureFrom:     spec.MeasureFrom,
			PowerModel:      cfg.PowerModel,
			Workers:         cfg.Workers,
		}, pol)
		if err != nil {
			return SlotMetrics{}, err
		}
		arrivals := 0
		for _, vm := range ws.VMs {
			if vm.Start > 0 {
				arrivals++
			}
		}
		// Every VM — preloaded or arriving — passes through the policy's
		// assignment procedure, so saturations are normalized by all of them.
		reject := 0.0
		if len(ws.VMs) > 0 {
			reject = float64(res.Saturations) / float64(len(ws.VMs))
		}
		return SlotMetrics{
			ViolationFrac:     res.VMOverloadTimeFrac,
			RejectFrac:        reject,
			MeanActiveServers: res.MeanActiveServers,
			EnergyKWh:         res.EnergyKWh,
			Arrivals:          arrivals,
		}, nil
	}
}

// Package par is the deterministic fork-join execution subsystem: the one
// place in the repository where goroutines are allowed (enforced by the
// ecolint "goroutine" rule). It shards per-server control-round work across
// a fixed worker pool and merges results in shard-index order, so any code
// built on it produces bit-identical output at every worker count.
//
// The determinism contract rests on three rules:
//
//  1. Static sharding. Shards(n) depends only on n — never on the worker
//     count, GOMAXPROCS, or load — so the same item always lands in the
//     same shard and shard-local state (scratch buffers, rng streams) is
//     schedule-independent.
//
//  2. No shared mutable state inside a shard callback. Workers write results
//     into index-addressed slots (slot[i], one per item); they never fold
//     into a shared accumulator. Float addition is not associative, so any
//     cross-shard reduction order other than the sequential one would move
//     goldens.
//
//  3. Ordered reduction. The caller merges slots sequentially in item-index
//     order after Range returns, reproducing the exact float-operation order
//     of the sequential loop. Panics are replayed the same way: if several
//     shards panic, Range re-panics the one from the lowest shard index,
//     which is the one the sequential loop would have hit first.
//
// Randomness: callbacks must draw only from per-item rng streams derived by
// label (rng.Source.SplitIndex), never from a stream shared across items.
// Per-item streams make the draw sequence independent of both the worker
// count and the shard layout.
//
// A nil *Pool is valid and means "sequential": Range and For run inline on
// the calling goroutine. New(0) and New(1) also run inline, so Workers=1
// exercises the same code path as Workers=8 without any goroutines.
package par

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// maxShards caps the number of shards per Range call: 256 is large enough
// to load-balance any realistic worker count while keeping per-call task
// overhead negligible for the 100k-server sweeps. minShardItems floors the
// shard size so tiny inputs do not dissolve into per-item channel traffic.
// Both are constants — never derived from the worker count — so the shard
// layout stays a pure function of n.
const (
	maxShards     = 256
	minShardItems = 16
)

// Span is a half-open range of item indices [Lo, Hi) owned by one shard.
type Span struct {
	Index int // shard index, 0-based; reduction and panic order follow it
	Lo    int // first item index in the shard
	Hi    int // one past the last item index
}

// Shards returns the static shard layout for n items: clamp(ceil(n/16),
// 1, 256) spans of near-equal size (the first n%shards spans get one extra
// item). The layout is a pure function of n so it is identical at every
// worker count.
func Shards(n int) []Span {
	if n <= 0 {
		return nil
	}
	count := (n + minShardItems - 1) / minShardItems
	if count > maxShards {
		count = maxShards
	}
	spans := make([]Span, count) //ecolint:allow hotpath — layout computed once per distinct n; Pool.Range serves repeats from lastSpans
	size, rem := n/count, n%count
	lo := 0
	for i := range spans {
		hi := lo + size
		if i < rem {
			hi++
		}
		spans[i] = Span{Index: i, Lo: lo, Hi: hi}
		lo = hi
	}
	return spans
}

// Pool is a fixed set of worker goroutines executing shard callbacks.
// A Pool must be Closed when no longer needed; Close is idempotent.
//
// Range must not be called concurrently from multiple goroutines, and a
// shard callback must not call back into the same Pool (the workers it
// would wait on are occupied running it).
type Pool struct {
	workers int
	tasks   chan task
	wg      sync.WaitGroup
	close   sync.Once

	// Per-call scratch, reused across Range/Items invocations (legal because
	// Range must not be called concurrently): the panic slots and the join
	// WaitGroup. Reuse keeps a control round's fan-out at zero steady-state
	// allocations — at one fan-out per phase per tick, per-call buffers were
	// measurable garbage at 100k servers.
	panicBuf []*shardPanic
	done     sync.WaitGroup

	// Cached shard layout: the control round calls Range with the same n
	// every tick, and Shards is a pure function of n.
	lastN     int
	lastSpans []Span
}

// shards returns the static layout for n, cached across calls.
func (p *Pool) shards(n int) []Span {
	if p == nil {
		return Shards(n)
	}
	if n != p.lastN || p.lastSpans == nil {
		p.lastN, p.lastSpans = n, Shards(n)
	}
	return p.lastSpans
}

// scratch returns n cleared panic slots and the reusable WaitGroup primed
// to n.
func (p *Pool) scratch(n int) []*shardPanic {
	if cap(p.panicBuf) < n {
		p.panicBuf = make([]*shardPanic, n) //ecolint:allow hotpath — grow-once scratch, amortized to zero in steady state
	}
	p.panicBuf = p.panicBuf[:n]
	for i := range p.panicBuf {
		p.panicBuf[i] = nil
	}
	p.done.Add(n)
	return p.panicBuf
}

type task struct {
	span   Span
	fn     func(Span)
	done   *sync.WaitGroup
	panics []*shardPanic // one slot per shard, written at span.Index only
}

type shardPanic struct {
	val   any
	stack []byte
}

// New returns a Pool with the given worker count. workers <= 1 yields an
// inline pool: no goroutines are started and Range runs shards sequentially
// on the caller, in shard-index order — the same schedule a parallel pool's
// reduction reproduces.
func New(workers int) *Pool {
	p := &Pool{workers: workers}
	if workers >= 2 {
		p.tasks = make(chan task)
		p.wg.Add(workers)
		for range workers {
			go p.work() //ecolint:allow goroutine — par is the audited concurrency subsystem
		}
	}
	return p
}

// Workers reports the configured worker count; 0 for a nil pool.
func (p *Pool) Workers() int {
	if p == nil {
		return 0
	}
	return p.workers
}

// Parallel reports whether Range actually fans out to worker goroutines.
func (p *Pool) Parallel() bool {
	return p != nil && p.workers >= 2
}

// Close shuts the workers down and waits for them to exit. Safe on a nil
// or inline pool, and safe to call more than once.
func (p *Pool) Close() {
	if p == nil || p.tasks == nil {
		return
	}
	p.close.Do(func() {
		close(p.tasks)
		p.wg.Wait()
	})
}

func (p *Pool) work() {
	defer p.wg.Done()
	for t := range p.tasks {
		t.run()
	}
}

func (t task) run() {
	defer func() {
		if r := recover(); r != nil {
			t.panics[t.span.Index] = &shardPanic{val: r, stack: debug.Stack()}
		}
		t.done.Done()
	}()
	t.fn(t.span)
}

// Range executes fn over the static shards of n items and returns once every
// shard has finished. On an inline pool the shards run on the caller in
// index order; on a parallel pool they are distributed across the workers.
// If any shard panics, Range re-panics the panic from the lowest shard index
// after all shards have completed.
//
//ecolint:hotpath
func (p *Pool) Range(n int, fn func(Span)) {
	spans := p.shards(n)
	if !p.Parallel() {
		for _, s := range spans {
			fn(s)
		}
		return
	}
	panics := p.scratch(len(spans))
	for _, s := range spans {
		p.tasks <- task{span: s, fn: fn, done: &p.done, panics: panics}
	}
	p.done.Wait()
	for _, sp := range panics {
		if sp != nil {
			panic(fmt.Sprintf("par: shard panicked: %v\n%s", sp.val, sp.stack)) //ecolint:allow hotpath — cold panic-replay path, never taken in a healthy run
		}
	}
}

// For runs fn for every item index in [0, n), sharded across the pool.
// fn must only touch per-item state (slot i), per the package contract.
func For(p *Pool, n int, fn func(i int)) {
	p.Range(n, func(s Span) {
		for i := s.Lo; i < s.Hi; i++ {
			fn(i)
		}
	})
}

// Map fills and returns a length-n slice with out[i] = fn(i), computed in
// parallel across the pool. The slice order is item order, so a sequential
// fold over the result reproduces the sequential loop bit-for-bit.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(p, n, func(i int) { out[i] = fn(i) })
	return out
}

// Items runs fn for each i in [0, n) as one task per item, bypassing the
// static shard rule. It is for coarse-grained work — whole simulations,
// sweep cells — where items dwarf scheduling cost and a 16-item shard floor
// would serialize a 5-item sweep. The per-item contract is the same as
// For's: fn(i) writes only to slot i. Inline pools run in index order; the
// first panic by item index is re-panicked, like Range.
func Items(p *Pool, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	wrap := func(s Span) {
		for i := s.Lo; i < s.Hi; i++ {
			fn(i)
		}
	}
	if !p.Parallel() {
		wrap(Span{Index: 0, Lo: 0, Hi: n})
		return
	}
	panics := p.scratch(n)
	for i := 0; i < n; i++ {
		p.tasks <- task{span: Span{Index: i, Lo: i, Hi: i + 1}, fn: wrap, done: &p.done, panics: panics}
	}
	p.done.Wait()
	for _, sp := range panics {
		if sp != nil {
			panic(fmt.Sprintf("par: item panicked: %v\n%s", sp.val, sp.stack))
		}
	}
}

package par

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
)

func TestShardsStatic(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 255, 256, 257, 1000, 100_000} {
		spans := Shards(n)
		if n == 0 {
			if spans != nil {
				t.Fatalf("Shards(0) = %v, want nil", spans)
			}
			continue
		}
		want := (n + minShardItems - 1) / minShardItems
		if want > maxShards {
			want = maxShards
		}
		if len(spans) != want {
			t.Fatalf("Shards(%d): %d spans, want %d", n, len(spans), want)
		}
		// Spans must tile [0, n) exactly, in order, with sizes differing by
		// at most one (static even split).
		lo, minSz, maxSz := 0, n, 0
		for i, s := range spans {
			if s.Index != i || s.Lo != lo || s.Hi <= s.Lo {
				t.Fatalf("Shards(%d)[%d] = %+v (cursor %d)", n, i, s, lo)
			}
			if sz := s.Hi - s.Lo; sz < minSz {
				minSz = sz
			} else if sz > maxSz {
				maxSz = sz
			}
			lo = s.Hi
		}
		if lo != n {
			t.Fatalf("Shards(%d) covers [0,%d)", n, lo)
		}
		if maxSz > minSz+1 {
			t.Fatalf("Shards(%d): uneven split min=%d max=%d", n, minSz, maxSz)
		}
	}
}

// TestRangeCoversEveryIndex checks that every item is visited exactly once
// at several worker counts, including the nil pool.
func TestRangeCoversEveryIndex(t *testing.T) {
	const n = 10_000
	for _, workers := range []int{0, 1, 2, 3, 8} {
		var p *Pool
		if workers > 0 {
			p = New(workers)
		}
		visits := make([]int32, n)
		For(p, n, func(i int) { atomic.AddInt32(&visits[i], 1) })
		p.Close()
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

// TestMapBitIdentical is the core contract: Map over per-item rng streams
// plus a sequential fold gives bit-identical floats at every worker count.
func TestMapBitIdentical(t *testing.T) {
	const n = 5000
	compute := func(workers int) (float64, []float64) {
		var p *Pool
		if workers > 0 {
			p = New(workers)
			defer p.Close()
		}
		master := rng.New(42)
		out := Map(p, n, func(i int) float64 {
			src := master.SplitIndex("item", i)
			return src.Float64()*1e-9 + src.NormFloat64()
		})
		sum := 0.0
		for _, v := range out {
			sum += v // ordered reduction: index order, like the sequential loop
		}
		return sum, out
	}
	refSum, refOut := compute(0)
	for _, workers := range []int{1, 2, 3, 8} {
		sum, out := compute(workers)
		if sum != refSum { //ecolint:allow float-eq — bit-identity is the property under test
			t.Fatalf("workers=%d: sum %x != sequential %x", workers, sum, refSum)
		}
		for i := range out {
			if out[i] != refOut[i] { //ecolint:allow float-eq — bit-identity is the property under test
				t.Fatalf("workers=%d: out[%d] = %x != %x", workers, i, out[i], refOut[i])
			}
		}
	}
}

func TestRangePanicPropagatesLowestShard(t *testing.T) {
	p := New(4)
	defer p.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "boom shard") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
		// Every panicking shard finished before Range re-panicked; the one
		// reported must be the lowest shard index (what sequential hits first).
		if !strings.Contains(msg, "boom shard 3") {
			t.Fatalf("want lowest panicking shard 3, got: %.120s", msg)
		}
	}()
	p.Range(64, func(s Span) {
		if s.Index >= 3 {
			panic("boom shard " + string(rune('0'+s.Index%10)))
		}
	})
}

func TestInlinePoolRunsInOrder(t *testing.T) {
	for _, workers := range []int{0, 1} {
		p := New(workers)
		if p.Parallel() {
			t.Fatalf("New(%d).Parallel() = true", workers)
		}
		var order []int
		p.Range(300, func(s Span) { order = append(order, s.Index) })
		for i, got := range order {
			if got != i {
				t.Fatalf("workers=%d: shard %d ran at position %d", workers, got, i)
			}
		}
		p.Close() // must be a no-op
	}
	var nilPool *Pool
	if nilPool.Workers() != 0 || nilPool.Parallel() {
		t.Fatal("nil pool must report 0 sequential workers")
	}
	nilPool.Close()
}

func TestCloseIdempotent(t *testing.T) {
	p := New(3)
	For(p, 100, func(int) {})
	p.Close()
	p.Close()
}

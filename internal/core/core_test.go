package core

import "testing"

// The alias package must expose a working ecoCloud surface.
func TestAliasesWork(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Ta != 0.90 || cfg.P != 3 || cfg.Tl != 0.50 || cfg.Th != 0.95 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	p, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "ecocloud" {
		t.Fatalf("policy name = %q", p.Name())
	}
	fa, err := NewAssignProb(cfg.Ta, cfg.P)
	if err != nil {
		t.Fatal(err)
	}
	if fa.Eval(fa.ArgMax()) < 0.999 {
		t.Fatal("fa not normalized")
	}
	if MigrateLowProb(0, 0.5, 0.25) != 1 || MigrateHighProb(1, 0.95, 0.25) != 1 {
		t.Fatal("migration functions broken through aliases")
	}
}

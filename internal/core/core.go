// Package core is the canonical entry point to the paper's primary
// contribution. The implementation lives in repro/internal/ecocloud under
// its proper name; this package re-exports the public API so the repository
// layout (internal/core = the contribution, internal/<substrate> = the
// subsystems it runs on) reads uniformly.
package core

import "repro/internal/ecocloud"

// Config is the full ecoCloud parameter set (Ta, p, Tl, Th, alpha, beta,
// grace period, cooldown, invitation subset).
type Config = ecocloud.Config

// Policy is the ecoCloud assignment+migration algorithm in the shape the
// cluster driver runs.
type Policy = ecocloud.Policy

// AssignProbFunc is the assignment probability function fa (Eq. 1–2).
type AssignProbFunc = ecocloud.AssignProbFunc

// DefaultConfig returns the paper's §III parameter set.
func DefaultConfig() Config { return ecocloud.DefaultConfig() }

// New builds an ecoCloud policy from a validated configuration and a seed.
func New(cfg Config, seed uint64) (*Policy, error) { return ecocloud.New(cfg, seed) }

// NewAssignProb builds fa with threshold ta and shape p.
func NewAssignProb(ta, p float64) (AssignProbFunc, error) { return ecocloud.NewAssignProb(ta, p) }

// MigrateLowProb is f_l of Eq. (3).
func MigrateLowProb(u, tl, alpha float64) float64 { return ecocloud.MigrateLowProb(u, tl, alpha) }

// MigrateHighProb is f_h of Eq. (4).
func MigrateHighProb(u, th, beta float64) float64 { return ecocloud.MigrateHighProb(u, th, beta) }

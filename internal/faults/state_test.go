package faults

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// logTarget records every crash/recover with its virtual time, so two
// injectors' event sequences can be compared literally.
type logTarget struct {
	eng *sim.Engine
	log []string
}

func (t *logTarget) CrashServer(id int) []*trace.VM {
	t.log = append(t.log, fmt.Sprintf("crash %d @%d", id, int64(t.eng.Now())))
	return nil
}
func (t *logTarget) RecoverServer(id int) {
	t.log = append(t.log, fmt.Sprintf("recover %d @%d", id, int64(t.eng.Now())))
}
func (t *logTarget) ReplaceVM(vm *trace.VM) {}

// TestInjectorStateRoundTrip is the injector's stop/resume differential: an
// uninterrupted run's post-cut event sequence and final statistics must be
// reproduced exactly by a fresh injector restored from the cut state.
func TestInjectorStateRoundTrip(t *testing.T) {
	const (
		servers = 8
		cut     = 4 * time.Hour
		horizon = 16 * time.Hour
	)
	cfg := Config{MTBF: 2 * time.Hour, MTTR: 20 * time.Minute}
	build := func() (*Injector, *sim.Engine, *logTarget) {
		in, err := New(cfg, servers, horizon, 42)
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		eng := sim.New()
		return in, eng, &logTarget{eng: eng}
	}

	// Uninterrupted run, paused (not stopped) at the cut to take the state.
	in1, eng1, tgt1 := build()
	in1.Start(eng1, tgt1)
	eng1.Run(cut)
	st := in1.State()
	mark := len(tgt1.log)
	eng1.Run(horizon)
	in1.Finish()

	// Fresh injector, restored from the cut, run over the same suffix.
	in2, eng2, tgt2 := build()
	if err := in2.Restore(eng2, tgt2, st); err != nil {
		t.Fatalf("restore: %v", err)
	}
	eng2.Run(horizon)
	in2.Finish()

	suffix1 := tgt1.log[mark:]
	if len(suffix1) == 0 {
		t.Fatal("fixture produced no post-cut events; enlarge the horizon")
	}
	if len(tgt2.log) != len(suffix1) {
		t.Fatalf("restored run fired %d events, uninterrupted suffix has %d", len(tgt2.log), len(suffix1))
	}
	for i := range suffix1 {
		if tgt2.log[i] != suffix1[i] {
			t.Fatalf("event %d diverged: %q vs %q", i, tgt2.log[i], suffix1[i])
		}
	}
	if in1.Stats != in2.Stats {
		t.Fatalf("stats diverged:\n%+v\n%+v", in1.Stats, in2.Stats)
	}
}

// TestInjectorStateCapturesDownServers: a server down at the cut must resume
// down, with its repair (not a crash) as the pending clock.
func TestInjectorStateCapturesDownServers(t *testing.T) {
	cfg := Config{MTBF: time.Hour, MTTR: 5 * time.Hour}
	in, err := New(cfg, 4, 48*time.Hour, 7)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	eng := sim.New()
	tgt := &logTarget{eng: eng}
	in.Start(eng, tgt)
	eng.Run(4 * time.Hour) // long repairs: someone is down by now
	st := in.State()
	if len(st.DownAt) == 0 {
		t.Fatal("fixture has no down server at the cut; adjust parameters")
	}
	if len(st.NextEvent) != 4 {
		t.Fatalf("pending clocks for %d servers, want 4", len(st.NextEvent))
	}

	in2, err := New(cfg, 4, 48*time.Hour, 7)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	eng2 := sim.New()
	tgt2 := &logTarget{eng: eng2}
	if err := in2.Restore(eng2, tgt2, st); err != nil {
		t.Fatalf("restore: %v", err)
	}
	for _, c := range st.DownAt {
		if _, down := in2.downAt[c.ID]; !down {
			t.Fatalf("server %d lost its down state", c.ID)
		}
	}
	// The restored run must not re-crash a down server: its first event for
	// that server is the recover.
	eng2.Run(48 * time.Hour)
	seen := map[string]bool{}
	for _, line := range tgt2.log {
		var kind string
		var id int
		var at int64
		if _, err := fmt.Sscanf(line, "%s %d @%d", &kind, &id, &at); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		key := fmt.Sprintf("%d", id)
		if !seen[key] {
			seen[key] = true
			_, wasDown := in.downAt[id]
			if wasDown && kind != "recover" {
				t.Fatalf("server %d was down at the cut but first event is %q", id, kind)
			}
			if !wasDown && kind != "crash" {
				t.Fatalf("server %d was up at the cut but first event is %q", id, kind)
			}
		}
	}
}

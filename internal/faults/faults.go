// Package faults injects deterministic hardware failures into a running
// simulation: server crashes and repairs on per-server exponential clocks,
// wake-up commands that fail or stall, and (through netsim.Impairments,
// configured alongside) message loss. The paper evaluates ecoCloud on
// perfect hardware; this package measures how the self-organizing algorithm
// degrades when the data center misbehaves — the re-placement storm after a
// crash is ordinary ecoCloud assignment, just bursty, so availability and
// recovery latency are emergent properties of the same Bernoulli trials.
//
// Determinism: every draw comes from streams split off one seed by label
// (SplitIndex("crash", id), SplitIndex("wake", id)), never from creation or
// delivery order, so a fault schedule is a pure function of (seed, config)
// and reruns are bit-identical.
package faults

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Target is the machinery the injector breaks. internal/protocol.Cluster
// implements it; the interface keeps this package free of protocol imports.
type Target interface {
	// CrashServer fails the server and returns the VMs it was hosting
	// (nil when it was already failed).
	CrashServer(id int) []*trace.VM
	// RecoverServer repairs a failed server back to the hibernated pool.
	RecoverServer(id int)
	// ReplaceVM re-enters an evacuated VM into normal placement.
	ReplaceVM(vm *trace.VM)
}

// Config parameterizes the fault schedule. The zero value injects nothing.
type Config struct {
	// MTBF is each server's mean time between failures (exponential,
	// independent per server). Zero disables crash injection.
	MTBF time.Duration
	// MTTR is the mean time to repair a crashed server (exponential).
	// Required positive when MTBF is set.
	MTTR time.Duration
	// KillVMs makes a crash destroy its hosted VMs (their remaining demand
	// is lost) instead of evacuating them into a re-placement storm.
	KillVMs bool

	// WakeFailProb is the probability a wake command is silently ignored by
	// the hardware. WakeDelayProb is the probability a successful wake
	// stalls; the stall is exponential with mean WakeDelay.
	WakeFailProb  float64
	WakeDelayProb float64
	WakeDelay     time.Duration

	// Obs, when set, receives faults.* telemetry. Nil costs nothing.
	Obs *obs.Recorder `json:"-"`
}

// DefaultConfig is an unreliable-but-survivable data center: a crash every
// 6 h per server on average, half-hour repairs, and flaky wake-ups.
func DefaultConfig() Config {
	return Config{
		MTBF:          6 * time.Hour,
		MTTR:          30 * time.Minute,
		WakeFailProb:  0.05,
		WakeDelayProb: 0.10,
		WakeDelay:     2 * time.Minute,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.MTBF < 0 || c.MTTR < 0 || c.WakeDelay < 0:
		return fmt.Errorf("faults: negative duration in config")
	case c.MTBF > 0 && c.MTTR <= 0:
		return fmt.Errorf("faults: MTBF %v needs a positive MTTR", c.MTBF)
	case c.WakeFailProb < 0 || c.WakeFailProb >= 1:
		return fmt.Errorf("faults: WakeFailProb = %v", c.WakeFailProb)
	case c.WakeDelayProb < 0 || c.WakeDelayProb >= 1:
		return fmt.Errorf("faults: WakeDelayProb = %v", c.WakeDelayProb)
	case c.WakeDelayProb > 0 && c.WakeDelay <= 0:
		return fmt.Errorf("faults: WakeDelayProb %v needs a positive WakeDelay", c.WakeDelayProb)
	}
	return nil
}

// Enabled reports whether the configuration injects anything at all.
func (c Config) Enabled() bool {
	return c.MTBF > 0 || c.WakeFailProb > 0 || c.WakeDelayProb > 0
}

// Stats aggregates what the faults experiment reports.
type Stats struct {
	Crashes    int
	Recoveries int

	VMsEvacuated int // crash survivors sent back into placement
	VMsKilled    int // crash casualties (KillVMs)
	Replaced     int // evacuated VMs that landed again

	// LostVMSeconds is remaining-runtime destroyed by kills; DowntimeSeconds
	// is eviction-to-re-placement time accumulated by evacuated VMs
	// (including windows still open at the horizon).
	LostVMSeconds   float64
	DowntimeSeconds float64

	// MaxStorm is the largest single-crash evacuation burst.
	MaxStorm int

	// RepairSeconds sums crash-to-recovery time over completed repairs.
	RepairSeconds float64

	WakeFails  int
	WakeStalls int
}

// Availability is the fraction of demanded VM-seconds actually served,
// given the workload's total VM-seconds over the horizon.
func (s Stats) Availability(totalVMSeconds float64) float64 {
	if totalVMSeconds <= 0 {
		return 1
	}
	lost := s.LostVMSeconds + s.DowntimeSeconds
	if lost >= totalVMSeconds {
		return 0
	}
	return 1 - lost/totalVMSeconds
}

// MeanRepair is the mean crash-to-recovery latency over completed repairs.
func (s Stats) MeanRepair() time.Duration {
	if s.Recoveries == 0 {
		return 0
	}
	return time.Duration(s.RepairSeconds / float64(s.Recoveries) * float64(time.Second))
}

// Injector drives the fault schedule on a simulation engine. It implements
// protocol.WakeGate via WakeOutcome.
type Injector struct {
	cfg     Config
	eng     *sim.Engine
	tgt     Target
	servers int
	horizon time.Duration

	master *rng.Source
	crash  map[int]*rng.Source
	wake   map[int]*rng.Source

	downAt      map[int]time.Duration // failed server -> crash time
	outstanding map[int]evacWindow    // evacuated VM -> open downtime window

	// nextEvent tracks each server's pending crash-or-repair clock as an
	// absolute virtual time. Crash and repair alternate strictly per server,
	// so one slot suffices; the pending kind is derivable (a down server's
	// next event is its repair). Checkpointing needs this because the clocks
	// themselves live in the engine's queue, which is not serializable.
	nextEvent map[int]time.Duration

	Stats Stats
}

// evacWindow is one evacuated VM's open downtime window: evicted at since,
// chargeable until it would have departed anyway.
type evacWindow struct {
	since time.Duration
	end   time.Duration
}

// New builds an injector over servers numbered [0, servers). The horizon
// bounds loss accounting (a killed VM only loses runtime it still had
// inside the horizon). Streams split off seed, independent of any other
// consumer of the same seed.
func New(cfg Config, servers int, horizon time.Duration, seed uint64) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if servers <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("faults: %d servers over %v", servers, horizon)
	}
	return &Injector{
		cfg:         cfg,
		servers:     servers,
		horizon:     horizon,
		master:      rng.New(seed).Split("faults"),
		crash:       make(map[int]*rng.Source),
		wake:        make(map[int]*rng.Source),
		downAt:      make(map[int]time.Duration),
		outstanding: make(map[int]evacWindow),
		nextEvent:   make(map[int]time.Duration),
	}, nil
}

// Start arms the per-server crash clocks on the engine against the target.
// Call once, before the engine runs.
func (in *Injector) Start(eng *sim.Engine, tgt Target) {
	if eng == nil || tgt == nil {
		panic("faults: nil engine or target")
	}
	if in.eng != nil {
		panic("faults: Start called twice")
	}
	in.eng, in.tgt = eng, tgt
	if in.cfg.MTBF <= 0 {
		return
	}
	for id := 0; id < in.servers; id++ {
		in.scheduleCrash(id, in.drawExp(in.crashSrc(id), in.cfg.MTBF))
	}
}

func (in *Injector) crashSrc(id int) *rng.Source {
	s, ok := in.crash[id]
	if !ok {
		s = in.master.SplitIndex("crash", id)
		in.crash[id] = s
	}
	return s
}

func (in *Injector) wakeSrc(id int) *rng.Source {
	s, ok := in.wake[id]
	if !ok {
		s = in.master.SplitIndex("wake", id)
		in.wake[id] = s
	}
	return s
}

// drawExp draws an exponential duration with the given mean.
func (in *Injector) drawExp(src *rng.Source, mean time.Duration) time.Duration {
	return time.Duration(src.ExpFloat64() * float64(mean))
}

func (in *Injector) scheduleCrash(id int, after time.Duration) {
	in.nextEvent[id] = in.eng.Now() + after
	in.eng.After(after, "fault:crash", func(*sim.Engine) { in.crashNow(id) })
}

// crashNow fails server id, disposes of its VMs per config, and schedules
// the repair. Crash and repair alternate strictly per server, so the target
// is never asked to crash an already-failed machine.
func (in *Injector) crashNow(id int) {
	now := in.eng.Now()
	evicted := in.tgt.CrashServer(id)
	in.Stats.Crashes++
	in.downAt[id] = now
	in.cfg.Obs.Count("faults.crashes", 1)
	if len(evicted) > in.Stats.MaxStorm {
		in.Stats.MaxStorm = len(evicted)
	}
	for _, vm := range evicted {
		if in.cfg.KillVMs {
			in.Stats.VMsKilled++
			in.cfg.Obs.Count("faults.vms_killed", 1)
			if end := min(vm.End, in.horizon); end > now {
				in.Stats.LostVMSeconds += (end - now).Seconds()
			}
			continue
		}
		in.Stats.VMsEvacuated++
		in.cfg.Obs.Count("faults.vms_evacuated", 1)
		if _, open := in.outstanding[vm.ID]; !open {
			in.outstanding[vm.ID] = evacWindow{since: now, end: vm.End}
		}
		in.tgt.ReplaceVM(vm)
	}
	repair := in.drawExp(in.crashSrc(id), in.cfg.MTTR)
	in.nextEvent[id] = now + repair
	in.eng.After(repair, "fault:recover", func(*sim.Engine) {
		in.recoverNow(id)
	})
}

func (in *Injector) recoverNow(id int) {
	now := in.eng.Now()
	in.tgt.RecoverServer(id)
	in.Stats.Recoveries++
	in.Stats.RepairSeconds += (now - in.downAt[id]).Seconds()
	delete(in.downAt, id)
	in.cfg.Obs.Count("faults.recoveries", 1)
	in.scheduleCrash(id, in.drawExp(in.crashSrc(id), in.cfg.MTBF))
}

// OnPlaced closes an evacuated VM's downtime window. Wire it to the
// target's placement hook (protocol.Cluster.SetOnPlaced).
func (in *Injector) OnPlaced(vmID int, now time.Duration) {
	w, open := in.outstanding[vmID]
	if !open {
		return
	}
	delete(in.outstanding, vmID)
	in.Stats.Replaced++
	in.Stats.DowntimeSeconds += (now - w.since).Seconds()
	in.cfg.Obs.Observe("faults.replacement_downtime", now-w.since)
}

// WakeOutcome implements protocol.WakeGate: per-server streams decide
// whether a wake command is honored and how long the power-on stalls. The
// zero-probability guards keep the streams untouched when the feature is
// off, preserving draw sequences.
func (in *Injector) WakeOutcome(serverID int) (bool, time.Duration) {
	if in.cfg.WakeFailProb > 0 && in.wakeSrc(serverID).Bernoulli(in.cfg.WakeFailProb) {
		in.Stats.WakeFails++
		in.cfg.Obs.Count("faults.wake_failures", 1)
		return false, 0
	}
	if in.cfg.WakeDelayProb > 0 && in.wakeSrc(serverID).Bernoulli(in.cfg.WakeDelayProb) {
		in.Stats.WakeStalls++
		in.cfg.Obs.Count("faults.wake_stalls", 1)
		return true, in.drawExp(in.wakeSrc(serverID), in.cfg.WakeDelay)
	}
	return true, 0
}

// Finish closes the books at the horizon: evacuated VMs still waiting for a
// home accrue downtime up to their end-of-life or the horizon, whichever is
// earlier. Keys are sorted so the float accumulation order — and thus the
// reported total — is identical on every run.
func (in *Injector) Finish() {
	ids := make([]int, 0, len(in.outstanding))
	for id := range in.outstanding {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w := in.outstanding[id]
		if until := min(w.end, in.horizon); until > w.since {
			in.Stats.DowntimeSeconds += (until - w.since).Seconds()
		}
	}
	in.outstanding = make(map[int]evacWindow)
}

package faults

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Serializable injector state, so a checkpointed run can carry its fault
// clocks across a stop/resume boundary. The crash/repair timers live in the
// engine's event queue, which cannot be serialized; the injector therefore
// tracks each server's pending clock as an absolute time (nextEvent) and
// Restore re-arms the queue from that record. Map-backed internals are
// captured as ID-sorted slices so the wire bytes are deterministic.

// StreamState pairs a per-server rng stream with its server ID.
type StreamState struct {
	ID    int       `json:"id"`
	State rng.State `json:"state"`
}

// ServerClock is one (server ID, absolute virtual time) pair.
type ServerClock struct {
	ID   int   `json:"id"`
	AtNS int64 `json:"at_ns"`
}

// EvacState is one evacuated VM's open downtime window.
type EvacState struct {
	VM      int   `json:"vm"`
	SinceNS int64 `json:"since_ns"`
	EndNS   int64 `json:"end_ns"`
}

// State is the injector's serializable checkpoint section.
type State struct {
	Master      rng.State     `json:"master"`
	Crash       []StreamState `json:"crash,omitempty"`
	Wake        []StreamState `json:"wake,omitempty"`
	DownAt      []ServerClock `json:"down_at,omitempty"`
	NextEvent   []ServerClock `json:"next_event,omitempty"`
	Outstanding []EvacState   `json:"outstanding,omitempty"`
	Stats       Stats         `json:"stats"`
}

func sortedStreams(m map[int]*rng.Source) []StreamState {
	out := make([]StreamState, 0, len(m))
	for id, src := range m {
		out = append(out, StreamState{ID: id, State: src.State()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func sortedClocks(m map[int]time.Duration) []ServerClock {
	out := make([]ServerClock, 0, len(m))
	for id, at := range m {
		out = append(out, ServerClock{ID: id, AtNS: int64(at)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// State captures the injector: every rng stream derived so far, the down
// and pending-clock books, the open evacuation windows and the statistics.
// Capture is pure reads.
func (in *Injector) State() State {
	st := State{
		Master:    in.master.State(),
		Crash:     sortedStreams(in.crash),
		Wake:      sortedStreams(in.wake),
		DownAt:    sortedClocks(in.downAt),
		NextEvent: sortedClocks(in.nextEvent),
		Stats:     in.Stats,
	}
	vms := make([]int, 0, len(in.outstanding))
	for vm := range in.outstanding {
		vms = append(vms, vm)
	}
	sort.Ints(vms)
	for _, vm := range vms {
		w := in.outstanding[vm]
		st.Outstanding = append(st.Outstanding, EvacState{VM: vm, SinceNS: int64(w.since), EndNS: int64(w.end)})
	}
	return st
}

// Restore installs a captured state on a freshly constructed injector (same
// config, servers and horizon) and re-arms the crash/repair clocks on eng at
// their captured absolute times. It replaces Start for resumed runs; call it
// once, before the engine runs, with eng.Now() at or before every pending
// clock. In-flight VM evacuations are part of the data-center state, not the
// injector's, so the caller restores those separately.
func (in *Injector) Restore(eng *sim.Engine, tgt Target, st State) error {
	if eng == nil || tgt == nil {
		panic("faults: nil engine or target")
	}
	if in.eng != nil {
		panic("faults: Restore after Start")
	}
	in.eng, in.tgt = eng, tgt
	in.master.Restore(st.Master)
	for _, s := range st.Crash {
		src, ok := in.crash[s.ID]
		if !ok {
			src = &rng.Source{}
			in.crash[s.ID] = src
		}
		src.Restore(s.State)
	}
	for _, s := range st.Wake {
		src, ok := in.wake[s.ID]
		if !ok {
			src = &rng.Source{}
			in.wake[s.ID] = src
		}
		src.Restore(s.State)
	}
	in.downAt = make(map[int]time.Duration, len(st.DownAt))
	for _, c := range st.DownAt {
		in.downAt[c.ID] = time.Duration(c.AtNS)
	}
	in.outstanding = make(map[int]evacWindow, len(st.Outstanding))
	for _, e := range st.Outstanding {
		in.outstanding[e.VM] = evacWindow{since: time.Duration(e.SinceNS), end: time.Duration(e.EndNS)}
	}
	in.Stats = st.Stats
	in.nextEvent = make(map[int]time.Duration, len(st.NextEvent))
	for _, c := range st.NextEvent {
		id, at := c.ID, time.Duration(c.AtNS)
		if at < eng.Now() {
			return fmt.Errorf("faults: pending clock for server %d at %v is before the engine's %v", id, at, eng.Now())
		}
		in.nextEvent[id] = at
		if _, down := in.downAt[id]; down {
			eng.After(at-eng.Now(), "fault:recover", func(*sim.Engine) { in.recoverNow(id) })
		} else {
			eng.After(at-eng.Now(), "fault:crash", func(*sim.Engine) { in.crashNow(id) })
		}
	}
	return nil
}

package faults

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// fakeTarget records the injector's calls and hands back scripted VMs.
type fakeTarget struct {
	log     []string
	evicted map[int][]*trace.VM // per-server VMs returned on first crash
	crashed map[int]bool
}

func newFakeTarget() *fakeTarget {
	return &fakeTarget{evicted: make(map[int][]*trace.VM), crashed: make(map[int]bool)}
}

func (f *fakeTarget) CrashServer(id int) []*trace.VM {
	f.log = append(f.log, fmt.Sprintf("crash %d", id))
	if f.crashed[id] {
		panic(fmt.Sprintf("crash of already-failed server %d", id))
	}
	f.crashed[id] = true
	out := f.evicted[id]
	f.evicted[id] = nil
	return out
}

func (f *fakeTarget) RecoverServer(id int) {
	f.log = append(f.log, fmt.Sprintf("recover %d", id))
	if !f.crashed[id] {
		panic(fmt.Sprintf("recovery of healthy server %d", id))
	}
	f.crashed[id] = false
}

func (f *fakeTarget) ReplaceVM(vm *trace.VM) {
	f.log = append(f.log, fmt.Sprintf("replace %d", vm.ID))
}

func vmUntil(id int, end time.Duration) *trace.VM {
	return &trace.VM{ID: id, Start: 0, End: end, Epoch: end, Demand: []float64{500}}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MTBF: -time.Hour},
		{MTBF: time.Hour}, // no MTTR
		{WakeFailProb: 1},
		{WakeFailProb: -0.1},
		{WakeDelayProb: 0.5}, // no WakeDelay
		{WakeDelayProb: 1.5, WakeDelay: time.Minute},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config claims to inject")
	}
	if !DefaultConfig().Enabled() {
		t.Fatal("default config claims to inject nothing")
	}
}

func TestCrashRecoverAlternates(t *testing.T) {
	cfg := Config{MTBF: time.Hour, MTTR: 10 * time.Minute}
	in, err := New(cfg, 4, 48*time.Hour, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	tgt := newFakeTarget()
	in.Start(eng, tgt) // fakeTarget panics on crash-while-crashed or spurious recovery
	eng.Run(48 * time.Hour)
	if in.Stats.Crashes == 0 {
		t.Fatal("no crashes over 48 h at a 1 h MTBF")
	}
	if got, want := in.Stats.Crashes, in.Stats.Recoveries; got-want > 4 || got < want {
		t.Fatalf("crashes = %d recoveries = %d", got, want)
	}
	if in.Stats.MeanRepair() <= 0 {
		t.Fatal("no repair latency recorded")
	}
}

func TestScheduleIsDeterministic(t *testing.T) {
	run := func() []string {
		in, err := New(Config{MTBF: 2 * time.Hour, MTTR: 15 * time.Minute}, 8, 24*time.Hour, 42)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.New()
		tgt := newFakeTarget()
		in.Start(eng, tgt)
		eng.Run(24 * time.Hour)
		return tgt.log
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("schedules sized %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestEvacuationAccounting(t *testing.T) {
	horizon := 10 * time.Hour
	in, err := New(Config{MTBF: time.Hour, MTTR: 10 * time.Minute}, 1, horizon, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	tgt := newFakeTarget()
	tgt.evicted[0] = []*trace.VM{vmUntil(1, horizon), vmUntil(2, horizon), vmUntil(3, horizon)}
	in.Start(eng, tgt)
	eng.Run(horizon)
	if in.Stats.VMsEvacuated != 3 || in.Stats.MaxStorm != 3 {
		t.Fatalf("evacuated = %d storm = %d", in.Stats.VMsEvacuated, in.Stats.MaxStorm)
	}
	// Replacement lands VM 1 a minute after its eviction; the others never land.
	in.OnPlaced(1, in.outstanding[1].since+time.Minute)
	if in.Stats.Replaced != 1 {
		t.Fatalf("replaced = %d", in.Stats.Replaced)
	}
	if got := in.Stats.DowntimeSeconds; got != 60 {
		t.Fatalf("downtime = %v s, want 60", got)
	}
	in.Finish()
	if len(in.outstanding) != 0 {
		t.Fatal("Finish left windows open")
	}
	if in.Stats.DowntimeSeconds <= 60 {
		t.Fatalf("unplaced VMs accrued no downtime: %v", in.Stats.DowntimeSeconds)
	}
	// Finishing twice adds nothing.
	before := in.Stats.DowntimeSeconds
	in.Finish()
	//ecolint:allow float-eq — no arithmetic happened in between; any change is a real double-count
	if in.Stats.DowntimeSeconds != before {
		t.Fatal("Finish double-counted")
	}
}

func TestKillVMsLosesRemainingRuntime(t *testing.T) {
	horizon := 4 * time.Hour
	in, err := New(Config{MTBF: time.Hour, MTTR: 10 * time.Minute, KillVMs: true}, 1, horizon, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	tgt := newFakeTarget()
	tgt.evicted[0] = []*trace.VM{vmUntil(1, horizon), vmUntil(2, 30*time.Hour)}
	in.Start(eng, tgt)
	eng.Run(horizon)
	if in.Stats.VMsKilled != 2 || in.Stats.VMsEvacuated != 0 {
		t.Fatalf("killed = %d evacuated = %d", in.Stats.VMsKilled, in.Stats.VMsEvacuated)
	}
	for _, entry := range tgt.log {
		if entry == "replace 1" || entry == "replace 2" {
			t.Fatal("killed VM re-entered placement")
		}
	}
	if in.Stats.LostVMSeconds <= 0 {
		t.Fatalf("lost = %v", in.Stats.LostVMSeconds)
	}
	// VM 2's loss is capped at the horizon, so the total can never exceed
	// two full-horizon lifetimes.
	if max := 2 * horizon.Seconds(); in.Stats.LostVMSeconds > max {
		t.Fatalf("lost %v s > cap %v", in.Stats.LostVMSeconds, max)
	}
}

func TestWakeOutcomeStats(t *testing.T) {
	in, err := New(Config{WakeFailProb: 0.5, WakeDelayProb: 0.5, WakeDelay: time.Minute}, 4, time.Hour, 9)
	if err != nil {
		t.Fatal(err)
	}
	fails, stalls, clean := 0, 0, 0
	for i := 0; i < 1000; i++ {
		ok, delay := in.WakeOutcome(i % 4)
		switch {
		case !ok:
			fails++
		case delay > 0:
			stalls++
		default:
			clean++
		}
	}
	if fails != in.Stats.WakeFails || stalls != in.Stats.WakeStalls {
		t.Fatalf("counter drift: %d/%d vs %+v", fails, stalls, in.Stats)
	}
	if fails < 400 || fails > 600 {
		t.Fatalf("fails = %d of 1000 at p=0.5", fails)
	}
	if clean == 0 || stalls == 0 {
		t.Fatalf("outcomes never varied: fails=%d stalls=%d clean=%d", fails, stalls, clean)
	}
}

func TestAvailabilityGuards(t *testing.T) {
	if got := (Stats{}).Availability(0); got != 1 {
		t.Fatalf("availability over empty workload = %v", got)
	}
	s := Stats{LostVMSeconds: 25, DowntimeSeconds: 25}
	//ecolint:allow float-eq — exact decimal arithmetic
	if got := s.Availability(100); got != 0.5 {
		t.Fatalf("availability = %v, want 0.5", got)
	}
	if got := s.Availability(10); got != 0 {
		t.Fatalf("availability clamps at 0, got %v", got)
	}
	if (Stats{}).MeanRepair() != 0 {
		t.Fatal("mean repair over zero recoveries")
	}
}

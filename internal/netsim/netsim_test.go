package netsim

import (
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

func fixedLatency(d time.Duration) LatencyModel {
	return LatencyModel{Base: d}
}

func TestSendDelivers(t *testing.T) {
	eng := sim.New()
	net := New(eng, fixedLatency(time.Millisecond), rng.New(1))
	var got []string
	net.Register(2, func(m Message) {
		got = append(got, m.Kind)
		if m.From != 1 || m.Payload.(int) != 42 {
			t.Errorf("message mangled: %+v", m)
		}
	})
	net.Send(Message{From: 1, To: 2, Kind: "ping", Payload: 42, Size: 100})
	eng.Run(0)
	if len(got) != 1 || got[0] != "ping" {
		t.Fatalf("delivered = %v", got)
	}
	if eng.Now() != time.Millisecond {
		t.Fatalf("delivery at %v, want 1ms", eng.Now())
	}
	if net.Sent != 1 || net.Bytes != 100 {
		t.Fatalf("counters = %d msgs / %d bytes", net.Sent, net.Bytes)
	}
}

func TestSizeProportionalLatency(t *testing.T) {
	eng := sim.New()
	lat := LatencyModel{Base: time.Millisecond, PerKB: time.Millisecond}
	net := New(eng, lat, rng.New(1))
	var at time.Duration
	net.Register(1, func(Message) { at = eng.Now() })
	net.Send(Message{To: 1, Kind: "big", Size: 2048}) // base + 2 KB = 3 ms
	eng.Run(0)
	if at != 3*time.Millisecond {
		t.Fatalf("delivery at %v, want 3ms", at)
	}
}

func TestJitterBounded(t *testing.T) {
	eng := sim.New()
	lat := LatencyModel{Base: time.Millisecond, Jitter: time.Millisecond}
	net := New(eng, lat, rng.New(7))
	var times []time.Duration
	net.Register(1, func(Message) { times = append(times, eng.Now()) })
	sent := make([]time.Duration, 0)
	for i := 0; i < 100; i++ {
		d := lat.delay(0, rng.New(uint64(i)))
		sent = append(sent, d)
	}
	for _, d := range sent {
		if d < time.Millisecond || d >= 2*time.Millisecond {
			t.Fatalf("delay %v outside [1ms, 2ms)", d)
		}
	}
	_ = net
}

func TestBroadcastCountsOneSend(t *testing.T) {
	eng := sim.New()
	net := New(eng, fixedLatency(time.Millisecond), rng.New(3))
	delivered := 0
	for id := NodeID(1); id <= 5; id++ {
		net.Register(id, func(Message) { delivered++ })
	}
	net.Broadcast(0, []NodeID{1, 2, 3, 4, 5}, "invite", nil, 64)
	eng.Run(0)
	if delivered != 5 {
		t.Fatalf("delivered = %d, want 5", delivered)
	}
	if net.Sent != 1 {
		t.Fatalf("sent = %d, want 1 (hardware broadcast)", net.Sent)
	}
	if net.Bytes != 5*64 {
		t.Fatalf("bytes = %d, want 320", net.Bytes)
	}
}

func TestBroadcastEmptyIsNoop(t *testing.T) {
	eng := sim.New()
	net := New(eng, fixedLatency(time.Millisecond), rng.New(3))
	net.Broadcast(0, nil, "invite", nil, 64)
	if net.Sent != 0 {
		t.Fatal("empty broadcast counted a send")
	}
}

func TestUnregisteredDeliveryPanics(t *testing.T) {
	eng := sim.New()
	net := New(eng, fixedLatency(time.Millisecond), rng.New(1))
	net.Send(Message{To: 99, Kind: "void"})
	defer func() {
		if recover() == nil {
			t.Fatal("delivery to unregistered node did not panic")
		}
	}()
	eng.Run(0)
}

func TestNilHandlerPanics(t *testing.T) {
	eng := sim.New()
	net := New(eng, fixedLatency(time.Millisecond), rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler accepted")
		}
	}()
	net.Register(1, nil)
}

func TestRequestReplyRoundTrip(t *testing.T) {
	eng := sim.New()
	net := New(eng, fixedLatency(time.Millisecond), rng.New(1))
	var replyAt time.Duration
	net.Register(1, func(m Message) { // server: echo
		net.Send(Message{From: 1, To: m.From, Kind: "reply", Size: 32})
	})
	net.Register(0, func(m Message) { replyAt = eng.Now() })
	net.Send(Message{From: 0, To: 1, Kind: "request", Size: 32})
	eng.Run(0)
	if replyAt != 2*time.Millisecond {
		t.Fatalf("round trip = %v, want 2ms", replyAt)
	}
	if net.Sent != 2 {
		t.Fatalf("sent = %d, want 2", net.Sent)
	}
}

func TestImpairmentsValidate(t *testing.T) {
	bad := []Impairments{{DropProb: -0.1}, {DropProb: 1}, {DupProb: -1}, {DupProb: 1.5}}
	for i, imp := range bad {
		if err := imp.Validate(); err == nil {
			t.Errorf("bad impairments %d accepted: %+v", i, imp)
		}
	}
	if err := (Impairments{DropProb: 0.5, DupProb: 0.5}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestDropLosesDeliveries(t *testing.T) {
	eng := sim.New()
	net := New(eng, fixedLatency(time.Millisecond), rng.New(5))
	net.SetImpairments(Impairments{DropProb: 0.5})
	delivered := 0
	net.Register(1, func(Message) { delivered++ })
	const sent = 1000
	for i := 0; i < sent; i++ {
		net.Send(Message{To: 1, Kind: "ping", Size: 8})
	}
	eng.Run(0)
	if delivered+net.Dropped != sent {
		t.Fatalf("delivered %d + dropped %d != sent %d", delivered, net.Dropped, sent)
	}
	if net.Dropped < 400 || net.Dropped > 600 {
		t.Fatalf("dropped = %d of %d at p=0.5", net.Dropped, sent)
	}
	// The wire transmission still happened and still counts.
	if net.Sent != sent || net.Bytes != 8*sent {
		t.Fatalf("counters = %d msgs / %d bytes", net.Sent, net.Bytes)
	}
}

func TestDupDoublesDeliveries(t *testing.T) {
	eng := sim.New()
	net := New(eng, fixedLatency(time.Millisecond), rng.New(6))
	net.SetImpairments(Impairments{DupProb: 0.5})
	delivered := 0
	net.Register(1, func(Message) { delivered++ })
	const sent = 1000
	for i := 0; i < sent; i++ {
		net.Send(Message{To: 1, Kind: "ping", Size: 8})
	}
	eng.Run(0)
	if delivered != sent+net.Duplicated {
		t.Fatalf("delivered %d != sent %d + duplicated %d", delivered, sent, net.Duplicated)
	}
	if net.Duplicated < 400 || net.Duplicated > 600 {
		t.Fatalf("duplicated = %d of %d at p=0.5", net.Duplicated, sent)
	}
}

func TestBroadcastImpairsPerDelivery(t *testing.T) {
	eng := sim.New()
	net := New(eng, fixedLatency(time.Millisecond), rng.New(7))
	net.SetImpairments(Impairments{DropProb: 0.5})
	delivered := 0
	tos := make([]NodeID, 100)
	for i := range tos {
		tos[i] = NodeID(i + 1)
		net.Register(tos[i], func(Message) { delivered++ })
	}
	net.Broadcast(0, tos, "invite", nil, 64)
	eng.Run(0)
	if net.Sent != 1 {
		t.Fatalf("sent = %d, want 1", net.Sent)
	}
	if delivered+net.Dropped != 100 {
		t.Fatalf("delivered %d + dropped %d != 100", delivered, net.Dropped)
	}
	if net.Dropped == 0 || net.Dropped == 100 {
		t.Fatalf("dropped = %d, want a strict subset lost", net.Dropped)
	}
}

// TestZeroImpairmentsPreserveDrawSequence pins the compatibility contract:
// a network with the zero Impairments must schedule byte-identical
// deliveries to one that never heard of the feature, because the drop/dup
// guards may not touch the jitter rng stream.
func TestZeroImpairmentsPreserveDrawSequence(t *testing.T) {
	run := func(set bool) []time.Duration {
		eng := sim.New()
		lat := LatencyModel{Base: time.Millisecond, Jitter: time.Millisecond}
		net := New(eng, lat, rng.New(9))
		if set {
			net.SetImpairments(Impairments{})
		}
		var times []time.Duration
		net.Register(1, func(Message) { times = append(times, eng.Now()) })
		for i := 0; i < 50; i++ {
			net.Send(Message{To: 1, Kind: "ping", Size: 64})
		}
		eng.Run(0)
		return times
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSetImpairmentsRejectsInvalid(t *testing.T) {
	eng := sim.New()
	net := New(eng, fixedLatency(time.Millisecond), rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("invalid impairments accepted")
		}
	}()
	net.SetImpairments(Impairments{DropProb: 2})
}

func TestImpairmentMethodsPreserveDrawSequence(t *testing.T) {
	// The guard contract Drop/Dup promise to every reusing layer: a zero
	// probability consumes no draw, so the deciding stream's sequence is
	// untouched by a disabled impairment.
	a, b := rng.New(7), rng.New(7)
	imp := Impairments{}
	for i := 0; i < 16; i++ {
		if imp.Drop(a) || imp.Dup(a) {
			t.Fatal("zero-probability impairment fired")
		}
	}
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("draw %d diverged: the zero-rate guard consumed a draw", i)
		}
	}
	// Positive probabilities do draw, exactly once per decision.
	c, d := rng.New(7), rng.New(7)
	lossy := Impairments{DropProb: 0.5, DupProb: 0.5}
	lossy.Drop(c)
	d.Float64()
	if c.Uint64() != d.Uint64() {
		t.Fatal("Drop with positive probability must consume exactly one draw")
	}
}

func TestImpairmentsValidateRejectsNegative(t *testing.T) {
	// One shared Validate rejects negative rates for every layer that embeds
	// Impairments (netsim delivery, protocol config, the TCP codec boundary).
	for _, imp := range []Impairments{{DropProb: -0.1}, {DupProb: -0.1}} {
		if imp.Validate() == nil {
			t.Fatalf("negative rates accepted: %+v", imp)
		}
	}
	if (Impairments{}).Enabled() {
		t.Fatal("zero impairments report enabled")
	}
	if !(Impairments{DupProb: 0.1}).Enabled() {
		t.Fatal("positive DupProb reports disabled")
	}
}

// Package netsim is a message-passing layer over the discrete-event engine:
// named nodes exchange messages that are delivered after a configurable
// latency (base + size-proportional + jitter). It exists to run the
// ecoCloud invitation protocol (paper Fig. 1) as actual message exchanges,
// so the scalability claims — "data centers are equipped with
// high-bandwidth networks that naturally support broadcast messaging"
// (footnote 1) and "particularly efficient in large data centers" — can be
// quantified in messages and wall-clock per placement.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// NodeID identifies a protocol participant.
type NodeID int

// Message is one network message. Payload stays opaque to the network.
type Message struct {
	From, To NodeID
	Kind     string
	Payload  any
	Size     int // bytes, for the size-proportional latency share
}

// Handler consumes a delivered message. Handlers run inside the simulation
// loop (single-threaded) and may send further messages.
type Handler func(msg Message)

// LatencyModel maps a message to its delivery delay.
type LatencyModel struct {
	Base   time.Duration // propagation + switching floor
	PerKB  time.Duration // serialization per kilobyte
	Jitter time.Duration // uniform extra in [0, Jitter)
}

// DefaultLatency is a 10 GbE top-of-rack fabric: 50 us base, ~1 us/KB,
// 20 us jitter.
func DefaultLatency() LatencyModel {
	return LatencyModel{Base: 50 * time.Microsecond, PerKB: time.Microsecond, Jitter: 20 * time.Microsecond}
}

// Impairments is the lossy-delivery companion of LatencyModel: each delivery
// is independently dropped with probability DropProb, and each surviving
// delivery is duplicated with probability DupProb (the copy draws its own
// latency, so it can overtake the original). The zero value is a perfect
// fabric and draws nothing from the jitter stream, so fault-free runs are
// bit-identical with or without the feature compiled in.
type Impairments struct {
	DropProb float64
	DupProb  float64
}

// Validate reports whether the impairment probabilities are usable.
func (i Impairments) Validate() error {
	switch {
	case i.DropProb < 0 || i.DropProb >= 1:
		return fmt.Errorf("netsim: DropProb = %v", i.DropProb)
	case i.DupProb < 0 || i.DupProb >= 1:
		return fmt.Errorf("netsim: DupProb = %v", i.DupProb)
	}
	return nil
}

// delay computes one message's delivery latency.
func (l LatencyModel) delay(size int, src *rng.Source) time.Duration {
	d := l.Base + time.Duration(float64(l.PerKB)*float64(size)/1024)
	if l.Jitter > 0 {
		d += time.Duration(src.Float64() * float64(l.Jitter))
	}
	return d
}

// Network connects registered nodes through the simulation engine.
type Network struct {
	eng      *sim.Engine
	lat      LatencyModel
	imp      Impairments
	src      *rng.Source
	handlers map[NodeID]Handler

	// Counters for the scalability experiments.
	Sent  int
	Bytes int64
	// Impairment counters: deliveries lost, extra deliveries injected.
	Dropped    int
	Duplicated int
}

// SetImpairments installs (or clears, with the zero value) lossy delivery.
// It panics on invalid probabilities: impairments come from validated
// experiment configuration, not user input.
func (n *Network) SetImpairments(imp Impairments) {
	if err := imp.Validate(); err != nil {
		panic(err.Error())
	}
	n.imp = imp
}

// New builds a network on the engine with the given latency model; jitter
// draws come from src.
func New(eng *sim.Engine, lat LatencyModel, src *rng.Source) *Network {
	if eng == nil || src == nil {
		panic("netsim: nil engine or rng source")
	}
	return &Network{eng: eng, lat: lat, src: src, handlers: make(map[NodeID]Handler)}
}

// RNG exposes the network's jitter stream so checkpointing layers can
// capture and restore its position alongside the other simulation streams.
func (n *Network) RNG() *rng.Source { return n.src }

// Register installs the handler for a node. Re-registering replaces it.
func (n *Network) Register(id NodeID, h Handler) {
	if h == nil {
		panic(fmt.Sprintf("netsim: nil handler for node %d", id))
	}
	n.handlers[id] = h
}

// Send queues one message for delivery. Sending to an unregistered node is
// a programming error and panics at delivery time, when the bug manifests.
func (n *Network) Send(msg Message) {
	n.Sent++
	n.Bytes += int64(msg.Size)
	n.deliver(msg)
}

// Broadcast sends the same payload to every destination. The data-center
// fabric supports hardware broadcast (footnote 1), so the sender pays one
// message; each delivery still counts its bytes and its own latency draw
// (and, under impairments, its own drop/duplicate decision).
func (n *Network) Broadcast(from NodeID, tos []NodeID, kind string, payload any, size int) {
	if len(tos) == 0 {
		return
	}
	n.Sent++ // one wire transmission
	for _, to := range tos {
		n.Bytes += int64(size)
		n.deliver(Message{From: from, To: to, Kind: kind, Payload: payload, Size: size})
	}
}

// deliver applies the impairments and schedules the surviving copies. The
// guards keep the rng stream untouched when a probability is zero, so the
// perfect-fabric draw sequence is exactly the pre-impairment one.
func (n *Network) deliver(msg Message) {
	if n.imp.DropProb > 0 && n.src.Bernoulli(n.imp.DropProb) {
		n.Dropped++
		return
	}
	n.schedule(msg)
	if n.imp.DupProb > 0 && n.src.Bernoulli(n.imp.DupProb) {
		n.Duplicated++
		n.schedule(msg)
	}
}

// schedule queues one physical delivery after its own latency draw.
func (n *Network) schedule(msg Message) {
	d := n.lat.delay(msg.Size, n.src)
	n.eng.After(d, "netsim:"+msg.Kind, func(*sim.Engine) {
		h, ok := n.handlers[msg.To]
		if !ok {
			panic(fmt.Sprintf("netsim: message %q to unregistered node %d", msg.Kind, msg.To))
		}
		h(msg)
	})
}

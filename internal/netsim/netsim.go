// Package netsim is a message-passing layer over the discrete-event engine:
// named nodes exchange messages that are delivered after a configurable
// latency (base + size-proportional + jitter). It exists to run the
// ecoCloud invitation protocol (paper Fig. 1) as actual message exchanges,
// so the scalability claims — "data centers are equipped with
// high-bandwidth networks that naturally support broadcast messaging"
// (footnote 1) and "particularly efficient in large data centers" — can be
// quantified in messages and wall-clock per placement.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// NodeID identifies a protocol participant.
type NodeID int

// Message is one network message. Payload stays opaque to the network.
type Message struct {
	From, To NodeID
	Kind     string
	Payload  any
	Size     int // bytes, for the size-proportional latency share
}

// Handler consumes a delivered message. Handlers run inside the simulation
// loop (single-threaded) and may send further messages.
type Handler func(msg Message)

// LatencyModel maps a message to its delivery delay.
type LatencyModel struct {
	Base   time.Duration // propagation + switching floor
	PerKB  time.Duration // serialization per kilobyte
	Jitter time.Duration // uniform extra in [0, Jitter)
}

// DefaultLatency is a 10 GbE top-of-rack fabric: 50 us base, ~1 us/KB,
// 20 us jitter.
func DefaultLatency() LatencyModel {
	return LatencyModel{Base: 50 * time.Microsecond, PerKB: time.Microsecond, Jitter: 20 * time.Microsecond}
}

// Impairments is the lossy-delivery companion of LatencyModel: each delivery
// is independently dropped with probability DropProb, and each surviving
// delivery is duplicated with probability DupProb (the copy draws its own
// latency, so it can overtake the original). The zero value is a perfect
// fabric and draws nothing from the jitter stream, so fault-free runs are
// bit-identical with or without the feature compiled in.
//
// Draw-sequence-preserving guard contract: a probability of zero must not
// consume a draw from the deciding rng stream. Drop and Dup are the only
// sanctioned way to apply these probabilities — they test p > 0 before
// drawing, so enabling the struct with zero rates leaves every stream's draw
// sequence exactly as it was without impairments. Both netsim delivery
// (deliver below) and the real-socket impairment layer
// (internal/node/tcptransport) go through these two methods, so the two
// fabrics share one definition of "lossy" and one validation path.
type Impairments struct {
	DropProb float64
	DupProb  float64
}

// Validate reports whether the impairment probabilities are usable. It is
// the single validation point for every layer that reuses Impairments
// (protocol configuration, the TCP codec boundary): negative rates and
// rates >= 1 are rejected here and nowhere else.
func (i Impairments) Validate() error {
	switch {
	case i.DropProb < 0 || i.DropProb >= 1:
		return fmt.Errorf("netsim: DropProb = %v", i.DropProb)
	case i.DupProb < 0 || i.DupProb >= 1:
		return fmt.Errorf("netsim: DupProb = %v", i.DupProb)
	}
	return nil
}

// Enabled reports whether any impairment can ever fire.
func (i Impairments) Enabled() bool { return i.DropProb > 0 || i.DupProb > 0 }

// Drop decides one delivery's drop, drawing from src only when DropProb is
// positive (the guard contract above).
func (i Impairments) Drop(src *rng.Source) bool {
	return i.DropProb > 0 && src.Bernoulli(i.DropProb)
}

// Dup decides whether one surviving delivery is duplicated, drawing from src
// only when DupProb is positive (the guard contract above).
func (i Impairments) Dup(src *rng.Source) bool {
	return i.DupProb > 0 && src.Bernoulli(i.DupProb)
}

// delay computes one message's delivery latency.
func (l LatencyModel) delay(size int, src *rng.Source) time.Duration {
	d := l.Base + time.Duration(float64(l.PerKB)*float64(size)/1024)
	if l.Jitter > 0 {
		d += time.Duration(src.Float64() * float64(l.Jitter))
	}
	return d
}

// Network connects registered nodes through the simulation engine.
type Network struct {
	eng      *sim.Engine
	lat      LatencyModel
	imp      Impairments
	src      *rng.Source
	handlers map[NodeID]Handler

	// Counters for the scalability experiments.
	Sent  int
	Bytes int64
	// Impairment counters: deliveries lost, extra deliveries injected.
	Dropped    int
	Duplicated int
}

// SetImpairments installs (or clears, with the zero value) lossy delivery.
// It panics on invalid probabilities: impairments come from validated
// experiment configuration, not user input.
func (n *Network) SetImpairments(imp Impairments) {
	if err := imp.Validate(); err != nil {
		panic(err.Error())
	}
	n.imp = imp
}

// New builds a network on the engine with the given latency model; jitter
// draws come from src.
func New(eng *sim.Engine, lat LatencyModel, src *rng.Source) *Network {
	if eng == nil || src == nil {
		panic("netsim: nil engine or rng source")
	}
	return &Network{eng: eng, lat: lat, src: src, handlers: make(map[NodeID]Handler)}
}

// RNG exposes the network's jitter stream so checkpointing layers can
// capture and restore its position alongside the other simulation streams.
func (n *Network) RNG() *rng.Source { return n.src }

// Stats returns the wire transmissions and bytes delivered so far. It is the
// method form of the Sent/Bytes counters, making Network satisfy
// protocol.Transport so the invitation protocol can run unchanged over this
// simulated fabric or over real sockets (internal/node/tcptransport).
func (n *Network) Stats() (sent int, bytes int64) { return n.Sent, n.Bytes }

// Register installs the handler for a node. Re-registering replaces it.
func (n *Network) Register(id NodeID, h Handler) {
	if h == nil {
		panic(fmt.Sprintf("netsim: nil handler for node %d", id))
	}
	n.handlers[id] = h
}

// Send queues one message for delivery. Sending to an unregistered node is
// a programming error and panics at delivery time, when the bug manifests.
func (n *Network) Send(msg Message) {
	n.Sent++
	n.Bytes += int64(msg.Size)
	n.deliver(msg)
}

// Broadcast sends the same payload to every destination. The data-center
// fabric supports hardware broadcast (footnote 1), so the sender pays one
// message; each delivery still counts its bytes and its own latency draw
// (and, under impairments, its own drop/duplicate decision).
func (n *Network) Broadcast(from NodeID, tos []NodeID, kind string, payload any, size int) {
	if len(tos) == 0 {
		return
	}
	n.Sent++ // one wire transmission
	for _, to := range tos {
		n.Bytes += int64(size)
		n.deliver(Message{From: from, To: to, Kind: kind, Payload: payload, Size: size})
	}
}

// deliver applies the impairments and schedules the surviving copies.
// Impairments.Drop/Dup keep the rng stream untouched when a probability is
// zero, so the perfect-fabric draw sequence is exactly the pre-impairment
// one.
func (n *Network) deliver(msg Message) {
	if n.imp.Drop(n.src) {
		n.Dropped++
		return
	}
	n.schedule(msg)
	if n.imp.Dup(n.src) {
		n.Duplicated++
		n.schedule(msg)
	}
}

// schedule queues one physical delivery after its own latency draw.
func (n *Network) schedule(msg Message) {
	d := n.lat.delay(msg.Size, n.src)
	n.eng.After(d, "netsim:"+msg.Kind, func(*sim.Engine) {
		h, ok := n.handlers[msg.To]
		if !ok {
			panic(fmt.Sprintf("netsim: message %q to unregistered node %d", msg.Kind, msg.To))
		}
		h(msg)
	})
}

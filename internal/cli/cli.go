// Package cli holds the flag plumbing the cmd/ binaries share, so ecosim and
// ecobench (and the rest) bind the same names to the same config fields and
// cannot drift: the RunConfig quartet (-servers, -vms, -horizon, -seed), the
// ecoCloud policy parameters, and the telemetry flags (-progress, -profile)
// together with the run scope that turns them into a recorder, a JSONL
// journal, pprof profiles and a run manifest.
package cli

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/ecocloud"
	"repro/internal/experiments"
	"repro/internal/load"
)

// BindRunConfig registers the four cross-experiment flags against rc. The
// defaults shown in -help are whatever rc holds when Bind is called, so pass
// the experiment's Default*Options().RunConfig.
func BindRunConfig(fs *flag.FlagSet, rc *experiments.RunConfig) {
	fs.IntVar(&rc.Servers, "servers", rc.Servers, "number of servers")
	fs.IntVar(&rc.NumVMs, "vms", rc.NumVMs, "number of VMs in the workload")
	fs.DurationVar(&rc.Horizon, "horizon", rc.Horizon, "simulated time")
	fs.Uint64Var(&rc.Seed, "seed", rc.Seed, "master seed")
	fs.IntVar(&rc.Workers, "workers", rc.Workers, "control-round worker count (0 = sequential; any value is bit-identical)")
}

// BindEco registers the ecoCloud policy parameters against cfg, defaulting
// to the values cfg holds (normally ecocloud.DefaultConfig(), the paper's
// §III set).
func BindEco(fs *flag.FlagSet, cfg *ecocloud.Config) {
	fs.Float64Var(&cfg.Ta, "ta", cfg.Ta, "acceptance utilization threshold Ta")
	fs.Float64Var(&cfg.P, "p", cfg.P, "assignment shape parameter p")
	fs.Float64Var(&cfg.Tl, "tl", cfg.Tl, "low-migration threshold Tl")
	fs.Float64Var(&cfg.Th, "th", cfg.Th, "high-migration threshold Th")
	fs.Float64Var(&cfg.Alpha, "alpha", cfg.Alpha, "low-migration shape alpha")
	fs.Float64Var(&cfg.Beta, "beta", cfg.Beta, "high-migration shape beta")
	fs.DurationVar(&cfg.Grace, "grace", cfg.Grace, "post-activation always-accept window")
	fs.DurationVar(&cfg.Cooldown, "cooldown", cfg.Cooldown, "minimum gap between low migrations per server")
	fs.IntVar(&cfg.InviteSubset, "invite-subset", cfg.InviteSubset, "invite a random subset of this many servers (0 = broadcast)")
	fs.IntVar(&cfg.InviteGroups, "invite-groups", cfg.InviteGroups, "partition the fleet into this many invitation groups (0/1 = off)")
}

// LoadFlags are the arrival-process shape flags a load-driving binary
// exposes: the mode and IAT distribution as strings (resolved by Config),
// the rate curve knobs, and the per-VM marginals. Bind seeds the defaults
// from whatever the struct holds, so populate it with DefaultLoadFlags
// first.
type LoadFlags struct {
	Mode string
	IAT  string

	Rate    float64
	Initial int

	Amp  float64
	Peak float64

	BurstFactor float64
	BurstEvery  time.Duration
	BurstLen    time.Duration

	Life         time.Duration
	DemandMedian float64
	DemandSigma  float64
	MaxDemand    float64
}

// DefaultLoadFlags matches load.DefaultVMShape with a stress-mode Poisson
// stream; Initial -1 asks for the auto steady-state population
// (rate x mean lifetime).
func DefaultLoadFlags() LoadFlags {
	shape := load.DefaultVMShape()
	return LoadFlags{
		Mode:         "stress",
		IAT:          "exponential",
		Rate:         1000,
		Initial:      -1,
		Amp:          0.45,
		Peak:         14,
		BurstFactor:  3,
		BurstEvery:   2 * time.Hour,
		BurstLen:     30 * time.Minute,
		Life:         shape.MeanLifetime,
		DemandMedian: shape.DemandMedianMHz,
		DemandSigma:  shape.DemandSigma,
		MaxDemand:    shape.MaxDemandMHz,
	}
}

// BindLoad registers the load-shape flags against f's current values.
func BindLoad(fs *flag.FlagSet, f *LoadFlags) {
	fs.StringVar(&f.Mode, "mode", f.Mode, "arrival mode: trace, stress, burst, coldstart")
	fs.StringVar(&f.IAT, "iat", f.IAT, "inter-arrival distribution: exponential, uniform, equidistant")
	fs.Float64Var(&f.Rate, "rate", f.Rate, "base VM arrival rate per hour")
	fs.IntVar(&f.Initial, "initial", f.Initial, "VMs preloaded at t=0 (-1: steady-state rate*lifetime; coldstart forces 0)")
	fs.Float64Var(&f.Amp, "amp", f.Amp, "daily rate modulation amplitude (trace mode)")
	fs.Float64Var(&f.Peak, "peak", f.Peak, "daily peak hour (trace mode)")
	fs.Float64Var(&f.BurstFactor, "burst-factor", f.BurstFactor, "rate multiplier during bursts (burst mode)")
	fs.DurationVar(&f.BurstEvery, "burst-every", f.BurstEvery, "burst period (burst mode)")
	fs.DurationVar(&f.BurstLen, "burst-len", f.BurstLen, "burst length (burst mode)")
	fs.DurationVar(&f.Life, "life", f.Life, "mean VM lifetime (exponential)")
	fs.Float64Var(&f.DemandMedian, "demand-median", f.DemandMedian, "median VM demand in MHz (log-normal)")
	fs.Float64Var(&f.DemandSigma, "demand-sigma", f.DemandSigma, "log-normal sigma of VM demand")
	fs.Float64Var(&f.MaxDemand, "demand-max", f.MaxDemand, "VM demand cap in MHz")
}

// Config resolves the flags into a load.Config. Initial -1 becomes the
// steady-state population rate x E[lifetime] (0 for coldstart, which
// rejects any preload).
func (f LoadFlags) Config(horizon time.Duration, refCapacityMHz float64, seed uint64) (load.Config, error) {
	mode, err := load.ParseMode(f.Mode)
	if err != nil {
		return load.Config{}, err
	}
	iat, err := load.ParseIAT(f.IAT)
	if err != nil {
		return load.Config{}, err
	}
	initial := f.Initial
	if initial < 0 {
		if mode == load.ModeColdstart {
			initial = 0
		} else {
			initial = int(f.Rate * f.Life.Hours())
		}
	}
	cfg := load.Config{
		Mode:           mode,
		IAT:            iat,
		Horizon:        horizon,
		RatePerHour:    f.Rate,
		InitialVMs:     initial,
		DailyAmplitude: f.Amp,
		PeakHour:       f.Peak,
		BurstFactor:    f.BurstFactor,
		BurstEvery:     f.BurstEvery,
		BurstLen:       f.BurstLen,
		Shape: load.VMShape{
			MeanLifetime:    f.Life,
			DemandMedianMHz: f.DemandMedian,
			DemandSigma:     f.DemandSigma,
			MaxDemandMHz:    f.MaxDemand,
		},
		RefCapacityMHz: refCapacityMHz,
		Seed:           seed,
	}
	return cfg, cfg.Validate()
}

// Validate is a convenience wrapper so binaries report flag-driven config
// errors uniformly.
func Validate(cfg ecocloud.Config) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("invalid ecoCloud parameters: %w", err)
	}
	return nil
}

// defaultProgressInterval paces -progress output.
const defaultProgressInterval = 2 * time.Second

// Package cli holds the flag plumbing the cmd/ binaries share, so ecosim and
// ecobench (and the rest) bind the same names to the same config fields and
// cannot drift: the RunConfig quartet (-servers, -vms, -horizon, -seed), the
// ecoCloud policy parameters, and the telemetry flags (-progress, -profile)
// together with the run scope that turns them into a recorder, a JSONL
// journal, pprof profiles and a run manifest.
package cli

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/ecocloud"
	"repro/internal/experiments"
)

// BindRunConfig registers the four cross-experiment flags against rc. The
// defaults shown in -help are whatever rc holds when Bind is called, so pass
// the experiment's Default*Options().RunConfig.
func BindRunConfig(fs *flag.FlagSet, rc *experiments.RunConfig) {
	fs.IntVar(&rc.Servers, "servers", rc.Servers, "number of servers")
	fs.IntVar(&rc.NumVMs, "vms", rc.NumVMs, "number of VMs in the workload")
	fs.DurationVar(&rc.Horizon, "horizon", rc.Horizon, "simulated time")
	fs.Uint64Var(&rc.Seed, "seed", rc.Seed, "master seed")
	fs.IntVar(&rc.Workers, "workers", rc.Workers, "control-round worker count (0 = sequential; any value is bit-identical)")
}

// BindEco registers the ecoCloud policy parameters against cfg, defaulting
// to the values cfg holds (normally ecocloud.DefaultConfig(), the paper's
// §III set).
func BindEco(fs *flag.FlagSet, cfg *ecocloud.Config) {
	fs.Float64Var(&cfg.Ta, "ta", cfg.Ta, "acceptance utilization threshold Ta")
	fs.Float64Var(&cfg.P, "p", cfg.P, "assignment shape parameter p")
	fs.Float64Var(&cfg.Tl, "tl", cfg.Tl, "low-migration threshold Tl")
	fs.Float64Var(&cfg.Th, "th", cfg.Th, "high-migration threshold Th")
	fs.Float64Var(&cfg.Alpha, "alpha", cfg.Alpha, "low-migration shape alpha")
	fs.Float64Var(&cfg.Beta, "beta", cfg.Beta, "high-migration shape beta")
	fs.DurationVar(&cfg.Grace, "grace", cfg.Grace, "post-activation always-accept window")
	fs.DurationVar(&cfg.Cooldown, "cooldown", cfg.Cooldown, "minimum gap between low migrations per server")
	fs.IntVar(&cfg.InviteSubset, "invite-subset", cfg.InviteSubset, "invite a random subset of this many servers (0 = broadcast)")
	fs.IntVar(&cfg.InviteGroups, "invite-groups", cfg.InviteGroups, "partition the fleet into this many invitation groups (0/1 = off)")
}

// Validate is a convenience wrapper so binaries report flag-driven config
// errors uniformly.
func Validate(cfg ecocloud.Config) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("invalid ecoCloud parameters: %w", err)
	}
	return nil
}

// defaultProgressInterval paces -progress output.
const defaultProgressInterval = 2 * time.Second

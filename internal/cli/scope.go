package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/obs"
)

// ObsFlags are the telemetry switches every binary exposes the same way.
type ObsFlags struct {
	Progress bool
	Profile  bool
}

// Bind registers -progress and -profile against f.
func (f *ObsFlags) Bind(fs *flag.FlagSet) {
	fs.BoolVar(&f.Progress, "progress", false, "report live progress on stderr while the run executes")
	fs.BoolVar(&f.Profile, "profile", false, "write cpu.pprof and heap.pprof next to the figure CSVs")
}

// Scope is one run's telemetry: the recorder to thread into the experiment,
// plus the journal, manifest, profiles and progress reporter that Close
// finalizes. The zero Scope (all telemetry off) is valid and Close on it is
// a no-op, so callers can unconditionally `defer scope.Close()`.
type Scope struct {
	Rec *obs.Recorder

	outDir       string
	manifest     *obs.Manifest
	journalFile  *os.File
	cpuFile      *os.File
	heapPath     string
	stopProgress func()
	logw         io.Writer
}

// Start assembles the run scope from the flags: a recorder (nil — free — when
// everything is off), a JSONL journal plus run manifest when outDir is set,
// CPU/heap profiles when -profile is set, and a progress goroutine when
// -progress is set. line may be nil for the default events/sim-clock line.
// Close must be called when the run ends.
func (f ObsFlags) Start(experiment string, config any, seed uint64, outDir string, line func(*obs.Recorder) string) (*Scope, error) {
	s := &Scope{outDir: outDir, logw: os.Stderr}
	if outDir == "" && !f.Progress && !f.Profile {
		return s, nil // telemetry fully off: Rec stays nil, hot path pays one nil check
	}

	var journal *obs.Journal
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return nil, err
		}
		jf, err := os.Create(filepath.Join(outDir, "journal.jsonl"))
		if err != nil {
			return nil, err
		}
		s.journalFile = jf
		journal = obs.NewJournal(jf)
		s.manifest = obs.NewManifest(experiment, config, seed)
	}
	s.Rec = obs.NewRecorder(nil, journal)

	if f.Profile {
		dir := outDir
		if dir == "" {
			dir = "."
		}
		cf, err := os.Create(filepath.Join(dir, "cpu.pprof"))
		if err != nil {
			s.closeFiles()
			return nil, err
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			s.closeFiles()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		s.cpuFile = cf
		s.heapPath = filepath.Join(dir, "heap.pprof")
	}

	if f.Progress {
		if line == nil {
			line = defaultProgressLine
		}
		rec := s.Rec
		s.stopProgress = obs.StartProgress(s.logw, defaultProgressInterval, func() string {
			return line(rec)
		})
	}
	return s, nil
}

// Close stops the progress reporter, finalizes the profiles, writes the run
// manifest and closes the journal. Safe on a zero or nil Scope.
func (s *Scope) Close() error {
	if s == nil {
		return nil
	}
	if s.stopProgress != nil {
		s.stopProgress()
		s.stopProgress = nil
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		s.cpuFile.Close()
		s.cpuFile = nil
		hf, err := os.Create(s.heapPath)
		if err != nil {
			return err
		}
		runtime.GC() // publish accurate live-heap numbers
		if err := pprof.Lookup("heap").WriteTo(hf, 0); err != nil {
			hf.Close()
			return err
		}
		if err := hf.Close(); err != nil {
			return err
		}
	}
	var firstErr error
	if s.manifest != nil {
		s.manifest.Finish(s.Rec)
		if path, err := s.manifest.WriteFile(s.outDir); err != nil {
			firstErr = err
		} else {
			fmt.Fprintf(s.logw, "wrote %s\n", path)
		}
		s.manifest = nil
	}
	if err := s.closeFiles(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

func (s *Scope) closeFiles() error {
	if s.journalFile == nil {
		return nil
	}
	err := s.journalFile.Close()
	s.journalFile = nil
	return err
}

// defaultProgressLine summarizes the recorder the sim layer feeds: events
// dispatched and how far the virtual clock has advanced.
func defaultProgressLine(rec *obs.Recorder) string {
	if !rec.Enabled() {
		return "running"
	}
	snap := rec.Snapshot()
	events := snap.Counters["sim.events"]
	simH := time.Duration(snap.Gauges["sim.now_ns"]).Hours()
	return fmt.Sprintf("progress: %d events, sim clock %.2f h", events, simH)
}

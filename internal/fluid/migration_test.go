package fluid

import (
	"math"
	"testing"
	"time"
)

// migrationConfig returns a model with churn frozen (lambda=mu=0) so only
// the migration flux acts.
func migrationOnlyConfig() Config {
	cfg := DefaultConfig()
	cfg.Ns = 20
	cfg.Lambda = ConstRate(0)
	cfg.Mu = ConstRate(0)
	cfg.MassEps = 0 // no activation seeding
	cfg.Migration = DefaultMigrationConfig()
	return cfg
}

func TestMigrationFluxConservesMass(t *testing.T) {
	cfg := migrationOnlyConfig()
	m := newModel(cfg)
	u := make([]float64, cfg.Ns)
	for i := range u {
		u[i] = 0.10 + 0.70*float64(i)/float64(cfg.Ns-1)
	}
	out := make([]float64, cfg.Ns)
	m.deriv(out, u, 0)
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("migration flux does not conserve mass: net %v", sum)
	}
}

func TestMigrationFluxDirection(t *testing.T) {
	cfg := migrationOnlyConfig()
	m := newModel(cfg)
	u := make([]float64, cfg.Ns)
	for i := range u {
		u[i] = 0.10 + 0.70*float64(i)/float64(cfg.Ns-1)
	}
	out := make([]float64, cfg.Ns)
	m.deriv(out, u, 0)
	// The most under-utilized server must drain; the highest-fa server must
	// gain.
	if out[0] >= 0 {
		t.Fatalf("under-utilized server gains mass: %v", out[0])
	}
	// Find the server closest to the fa peak (0.675): it should gain.
	best, bestDist := 0, math.Inf(1)
	for i, ui := range u {
		if d := math.Abs(ui - 0.675); d < bestDist {
			best, bestDist = i, d
		}
	}
	if out[best] <= 0 {
		t.Fatalf("peak-fa server does not gain: %v", out[best])
	}
	// Servers inside the dead band (above Tl) with low fa change only by
	// inflow: never negative.
	for i, ui := range u {
		if ui >= cfg.Migration.Tl && out[i] < 0 {
			t.Fatalf("server %d at u=%v (above Tl) lost mass", i, ui)
		}
	}
}

func TestMigrationExtensionConsolidatesWithoutChurn(t *testing.T) {
	// The paper's assignment-only model is inert without churn: with
	// lambda=mu=0 every state is an equilibrium. The migration extension
	// must consolidate anyway (that is its whole point).
	cfg := migrationOnlyConfig()
	init := make([]float64, cfg.Ns)
	total := 0.0
	for i := range init {
		init[i] = 0.15 + 0.20*float64(i)/float64(cfg.Ns-1)
		total += init[i]
	}
	res, err := Run(cfg, init, 24*time.Hour, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	final := res.U[len(res.U)-1]
	finalTotal := 0.0
	for _, v := range final {
		finalTotal += v
	}
	// Mass conservation end to end (hibernation clamp loses at most
	// Ns*OffU).
	if math.Abs(finalTotal-total) > float64(cfg.Ns)*cfg.OffU+1e-6 {
		t.Fatalf("total utilization drifted: %v -> %v", total, finalTotal)
	}
	active := res.FinalActive(0.02)
	if active >= cfg.Ns {
		t.Fatalf("no consolidation: %d/%d active", active, cfg.Ns)
	}
	// ~5 server-equivalents of load: expect it concentrated on few servers,
	// each pulled out of the draining band (>= Tl) or still mid-drain.
	if active > cfg.Ns/2 {
		t.Fatalf("weak consolidation: %d servers still active", active)
	}
}

func TestMigrationDisabledModelIsInertWithoutChurn(t *testing.T) {
	cfg := migrationOnlyConfig()
	cfg.Migration.Enabled = false
	init := make([]float64, cfg.Ns)
	for i := range init {
		init[i] = 0.15 + 0.20*float64(i)/float64(cfg.Ns-1)
	}
	res, err := Run(cfg, init, 6*time.Hour, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	final := res.U[len(res.U)-1]
	for i := range init {
		if math.Abs(final[i]-init[i]) > 1e-9 {
			t.Fatalf("paper model moved without churn: server %d %v -> %v", i, init[i], final[i])
		}
	}
}

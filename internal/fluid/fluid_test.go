package fluid

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ecocloud"
	"repro/internal/rng"
)

func testConfig(exact bool) Config {
	cfg := DefaultConfig()
	cfg.Ns = 20
	cfg.Lambda = ConstRate(100)
	cfg.Mu = ConstRate(PerVMRate(0.2, cfg.Nc))
	cfg.Exact = exact
	return cfg
}

func TestStepRate(t *testing.T) {
	r := StepRate([]float64{1, 2, 3}, time.Hour)
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 1}, {30 * time.Minute, 1}, {time.Hour, 2}, {2*time.Hour + time.Minute, 3},
		{100 * time.Hour, 3}, // clamped to last bucket
	}
	for _, c := range cases {
		if got := r(c.t); got != c.want {
			t.Errorf("rate(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestStepRatePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty StepRate did not panic")
		}
	}()
	StepRate(nil, time.Hour)
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Ns = 0 },
		func(c *Config) { c.Nc = 0 },
		func(c *Config) { c.Lambda = nil },
		func(c *Config) { c.Mu = nil },
		func(c *Config) { c.VMLoad = 0 },
		func(c *Config) { c.VMLoad = 1.5 },
		func(c *Config) { c.Fa = ecocloud.AssignProbFunc{} },
		func(c *Config) { c.Dt = -time.Second },
		func(c *Config) { c.SeedU = -0.1 },
		func(c *Config) { c.OffU = 1.0 },
		func(c *Config) { c.MassEps = -1 },
	}
	for i, mutate := range bad {
		cfg := testConfig(false)
		mutate(&cfg)
		if _, err := Run(cfg, make([]float64, cfg.Ns), time.Hour, time.Hour); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	cfg := testConfig(false)
	if _, err := Run(cfg, make([]float64, 3), time.Hour, time.Hour); err == nil {
		t.Error("mismatched initial-condition length accepted")
	}
	if _, err := Run(cfg, make([]float64, cfg.Ns), 0, time.Hour); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestDeflateRecoversFactor(t *testing.T) {
	// Build prod of 6 random linear factors; deflating factor j must equal
	// the direct product of the other 5.
	src := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		n := 6
		f := make([]float64, n)
		for i := range f {
			f[i] = src.Float64()
		}
		full := buildProduct(f)
		m := newModel(Config{Ns: n})
		for j := 0; j < n; j++ {
			got := m.deflate(full, 1-f[j], f[j], n)
			others := make([]float64, 0, n-1)
			for i, fi := range f {
				if i != j {
					others = append(others, fi)
				}
			}
			want := buildProduct(others)
			for k := 0; k < n; k++ {
				if math.Abs(got[k]-want[k]) > 1e-9 {
					t.Fatalf("trial %d server %d coeff %d: %v vs %v", trial, j, k, got[k], want[k])
				}
			}
		}
	}
}

// buildProduct returns the coefficients of prod_i((1-f_i) + f_i x).
func buildProduct(f []float64) []float64 {
	c := make([]float64, len(f)+1)
	c[0] = 1
	deg := 0
	for _, fi := range f {
		a, b := 1-fi, fi
		deg++
		for k := deg; k >= 1; k-- {
			c[k] = a*c[k] + b*c[k-1]
		}
		c[0] *= a
	}
	return c
}

func TestDeflateExtremeFactors(t *testing.T) {
	// f near 0 and near 1 stress both recurrence directions.
	f := []float64{1e-12, 1 - 1e-12, 0.5, 0.999999, 0.000001}
	full := buildProduct(f)
	m := newModel(Config{Ns: len(f)})
	for j := range f {
		got := m.deflate(full, 1-f[j], f[j], len(f))
		others := make([]float64, 0, len(f)-1)
		for i, fi := range f {
			if i != j {
				others = append(others, fi)
			}
		}
		want := buildProduct(others)
		for k := range want[:len(f)] {
			if math.Abs(got[k]-want[k]) > 1e-6 {
				t.Fatalf("server %d coeff %d: %v vs %v", j, k, got[k], want[k])
			}
		}
	}
}

// The exact model must conserve arrival mass: summed over servers, the
// arrival terms equal lambda*VMLoad whenever someone can accept (the
// normalization in Eq. 6 guarantees it).
func TestExactModelConservesArrivals(t *testing.T) {
	cfg := testConfig(true)
	m := newModel(cfg)
	src := rng.New(9)
	for trial := 0; trial < 20; trial++ {
		u := make([]float64, cfg.Ns)
		for i := range u {
			u[i] = src.Float64() * 0.85 // inside (0, Ta)
		}
		out := make([]float64, cfg.Ns)
		m.deriv(out, u, 0)
		// Recover arrival terms by adding back the decay.
		decay := float64(cfg.Nc) * cfg.Mu(0)
		sum := 0.0
		for s := range out {
			sum += out[s] + decay*u[s]
		}
		want := cfg.Lambda(0) * cfg.VMLoad
		if math.Abs(sum-want) > 1e-6*want {
			t.Fatalf("trial %d: total arrival mass %v, want %v", trial, sum, want)
		}
	}
}

// In a perfectly symmetric state every server receives lambda*VMLoad/Ns.
func TestExactModelSymmetric(t *testing.T) {
	cfg := testConfig(true)
	m := newModel(cfg)
	u := make([]float64, cfg.Ns)
	for i := range u {
		u[i] = 0.5
	}
	out := make([]float64, cfg.Ns)
	m.deriv(out, u, 0)
	decay := float64(cfg.Nc) * cfg.Mu(0)
	want := cfg.Lambda(0) * cfg.VMLoad / float64(cfg.Ns)
	for s := range out {
		arr := out[s] + decay*u[s]
		if math.Abs(arr-want) > 1e-9*want {
			t.Fatalf("server %d arrival %v, want %v", s, arr, want)
		}
	}
}

// The approximate model (Eq. 11) agrees with the exact one in the symmetric
// state and conserves mass too.
func TestApproxMatchesExactSymmetric(t *testing.T) {
	ce, ca := testConfig(true), testConfig(false)
	me, ma := newModel(ce), newModel(ca)
	u := make([]float64, ce.Ns)
	for i := range u {
		u[i] = 0.6
	}
	oute := make([]float64, ce.Ns)
	outa := make([]float64, ce.Ns)
	me.deriv(oute, u, 0)
	ma.deriv(outa, u, 0)
	for s := range u {
		if math.Abs(oute[s]-outa[s]) > 1e-9 {
			t.Fatalf("server %d: exact %v vs approx %v", s, oute[s], outa[s])
		}
	}
}

func TestDecayOnlyMatchesExponential(t *testing.T) {
	cfg := testConfig(false)
	cfg.Lambda = ConstRate(0)
	muVM := 0.5 // per hour
	cfg.Mu = ConstRate(PerVMRate(muVM, cfg.Nc))
	cfg.MassEps = 0 // no reactivation
	cfg.OffU = 0    // no clamping: pure exponential
	init := make([]float64, cfg.Ns)
	for i := range init {
		init[i] = 0.8
	}
	res, err := Run(cfg, init, 4*time.Hour, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range res.Times {
		want := 0.8 * math.Exp(-muVM*tt.Hours())
		for s := range init {
			if math.Abs(res.U[i][s]-want) > 1e-4 {
				t.Fatalf("t=%v server %d: u=%v, want %v", tt, s, res.U[i][s], want)
			}
		}
	}
}

func TestRunSampleCadence(t *testing.T) {
	cfg := testConfig(false)
	res, err := Run(cfg, make([]float64, cfg.Ns), 2*time.Hour, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 5 { // 0, 30, 60, 90, 120
		t.Fatalf("samples = %d, want 5", len(res.Times))
	}
	if res.Times[4] != 2*time.Hour {
		t.Fatalf("last sample at %v", res.Times[4])
	}
}

func TestActivationSeedsWhenMassLow(t *testing.T) {
	cfg := testConfig(false)
	// All servers start hibernated: fa mass is 0, load is arriving.
	res, err := Run(cfg, make([]float64, cfg.Ns), time.Hour, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalActive(0.001) == 0 {
		t.Fatal("no server was ever activated despite arriving load")
	}
}

func TestConsolidationDynamics(t *testing.T) {
	// Start non-consolidated: 20 servers spread over u=0.10..0.30 (the
	// paper's Fig. 12 initial state). The spread matters: a perfectly
	// symmetric state is an equilibrium of the deterministic ODE, and it is
	// the utilization differences that fa amplifies into consolidation.
	cfg := testConfig(true)
	cfg.Lambda = ConstRate(120)
	cfg.Mu = ConstRate(PerVMRate(0.6, cfg.Nc))
	// Equilibrium total utilization = lambda*VMLoad/mu_vm = 120*0.02/0.6 = 4.0
	// servers' worth of load.
	init := make([]float64, cfg.Ns)
	for i := range init {
		init[i] = 0.10 + 0.20*float64(i)/float64(cfg.Ns-1)
	}
	res, err := Run(cfg, init, 12*time.Hour, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	final := res.FinalActive(0.01)
	if final >= cfg.Ns {
		t.Fatalf("no consolidation: %d/%d servers still active", final, cfg.Ns)
	}
	// ~4 servers' worth of load at u~0.9 needs ~5 servers; allow 3..9.
	if final < 3 || final > 9 {
		t.Fatalf("final active = %d, want ~5 (load = 4 server-equivalents at Ta=0.9)", final)
	}
	// Active servers should sit near Ta, hibernated at ~0.
	last := res.U[len(res.U)-1]
	for s, u := range last {
		if u > 0.05 && u < 0.3 {
			t.Fatalf("server %d stuck at intermediate utilization %v", s, u)
		}
		if u > 0.95 {
			t.Fatalf("server %d above Ta: %v", s, u)
		}
	}
}

func TestExactAndApproxConsolidateSimilarly(t *testing.T) {
	// The paper reports 43 (model) vs 45 (sim) servers; here we just require
	// the two model variants to land within a couple of servers of each
	// other on the same scenario.
	mk := func(exact bool) int {
		cfg := testConfig(exact)
		cfg.Lambda = ConstRate(150)
		cfg.Mu = ConstRate(PerVMRate(0.5, cfg.Nc))
		init := make([]float64, cfg.Ns)
		for i := range init {
			init[i] = 0.15 + 0.20*float64(i)/float64(cfg.Ns-1)
		}
		res, err := Run(cfg, init, 10*time.Hour, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalActive(0.01)
	}
	e, a := mk(true), mk(false)
	if d := e - a; d < -2 || d > 2 {
		t.Fatalf("exact=%d approx=%d servers: variants disagree", e, a)
	}
}

// Property: utilizations never go negative or NaN under random rates.
func TestQuickTrajectoriesStayFinite(t *testing.T) {
	f := func(seed uint64, lamRaw, muRaw uint8) bool {
		src := rng.New(seed)
		cfg := testConfig(seed%2 == 0)
		cfg.Ns = 8
		cfg.Lambda = ConstRate(float64(lamRaw))
		cfg.Mu = ConstRate(PerVMRate(0.05+float64(muRaw)/64, cfg.Nc))
		init := make([]float64, cfg.Ns)
		for i := range init {
			init[i] = src.Float64() * 0.9
		}
		res, err := Run(cfg, init, 2*time.Hour, 30*time.Minute)
		if err != nil {
			return false
		}
		for _, row := range res.U {
			for _, u := range row {
				if u < 0 || math.IsNaN(u) || math.IsInf(u, 0) || u > 2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDerivExact100(b *testing.B) {
	cfg := testConfig(true)
	cfg.Ns = 100
	m := newModel(cfg)
	src := rng.New(1)
	u := make([]float64, cfg.Ns)
	for i := range u {
		u[i] = src.Float64() * 0.9
	}
	out := make([]float64, cfg.Ns)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.deriv(out, u, 0)
	}
}

func BenchmarkDerivApprox100(b *testing.B) {
	cfg := testConfig(false)
	cfg.Ns = 100
	m := newModel(cfg)
	u := make([]float64, cfg.Ns)
	for i := range u {
		u[i] = 0.5
	}
	out := make([]float64, cfg.Ns)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.deriv(out, u, 0)
	}
}

func TestDerivativeHelper(t *testing.T) {
	cfg := testConfig(false)
	u := make([]float64, cfg.Ns)
	for i := range u {
		u[i] = 0.5
	}
	out, err := Derivative(cfg, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != cfg.Ns {
		t.Fatalf("derivative length %d", len(out))
	}
	if _, err := Derivative(cfg, u[:3], 0); err == nil {
		t.Fatal("mismatched state length accepted")
	}
}

// Halving the RK4 step must not change trajectories materially: the
// integrator is far inside its stability region at the default step.
func TestRK4StepRobustness(t *testing.T) {
	base := testConfig(false)
	base.Lambda = ConstRate(150)
	base.Mu = ConstRate(PerVMRate(0.5, base.Nc))
	init := make([]float64, base.Ns)
	for i := range init {
		init[i] = 0.15 + 0.20*float64(i)/float64(base.Ns-1)
	}
	run := func(dt time.Duration) [][]float64 {
		cfg := base
		cfg.Dt = dt
		res, err := Run(cfg, init, 6*time.Hour, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return res.U
	}
	coarse := run(2 * time.Minute)
	fine := run(30 * time.Second)
	for i := range coarse {
		for s := range coarse[i] {
			if d := math.Abs(coarse[i][s] - fine[i][s]); d > 5e-3 {
				t.Fatalf("sample %d server %d: step sensitivity %v", i, s, d)
			}
		}
	}
}

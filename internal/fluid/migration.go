package fluid

import (
	"time"

	"repro/internal/ecocloud"
)

// This file extends the fluid model beyond the paper. §IV notes that "the
// equations cannot model migration events" — the comparison with simulation
// therefore inhibits migrations. The extension below adds the low-migration
// procedure as a continuous flux term, which lets the model predict
// consolidation even without VM churn (the regime where the assignment-only
// model is inert because nothing ever leaves a server):
//
//	du_s/dt = -Nc*mu*u_s + lambda*A_s*fa(u_s)
//	          - R*f_l(u_s)*q_s*accept        (outflow of a draining server)
//	          + sum_j R*f_l(u_j)*q_j*accept * w_s   (inflow, fa-weighted)
//
// where R is the per-server migration-attempt rate (1/ScanInterval), q_s is
// the per-event utilization quantum (one VM's worth, VMLoad), accept is the
// probability the invitation round finds a destination
// (1 - prod_i(1-fa(u_i)) over the other servers, approximated fleet-wide),
// and w_s = fa(u_s)/sum fa weights where the migrated mass lands. Mass is
// conserved exactly: what drains from under-utilized servers reappears on
// accepting ones. Low migrations never wake servers (fa(0) = 0 keeps
// hibernated servers out of the inflow weights automatically).
type MigrationConfig struct {
	// Enabled switches the flux terms on.
	Enabled bool
	// Tl and Alpha parameterize f_l (Eq. 3).
	Tl    float64
	Alpha float64
	// Rate is the migration-attempt rate per server (per hour); the
	// discrete system attempts once per scan interval.
	Rate float64
}

// DefaultMigrationConfig mirrors the §III parameters with one attempt per
// 5-minute scan.
func DefaultMigrationConfig() MigrationConfig {
	return MigrationConfig{
		Enabled: true,
		Tl:      0.50,
		Alpha:   0.25,
		Rate:    float64(time.Hour / (5 * time.Minute)),
	}
}

// migrationFlux adds the low-migration drift to out, given the current fa
// values in m.f. It is called from deriv after the assignment terms.
func (m *model) migrationFlux(out, u []float64) {
	mc := m.cfg.Migration
	if !mc.Enabled {
		return
	}
	// Fleet-wide acceptance probability for a migrating VM: at least one
	// other server accepts. Using the full product is a fleet-level
	// approximation (the exact per-source product excludes only the source,
	// a 1/Ns correction).
	prodReject := 1.0
	sumFa := 0.0
	for _, fi := range m.f {
		prodReject *= 1 - fi
		sumFa += fi
	}
	accept := 1 - prodReject
	if accept <= 0 || sumFa <= 0 {
		return
	}
	q := m.cfg.VMLoad
	outflowTotal := 0.0
	for s, us := range u {
		fl := 0.0
		if us > 0 { // hibernated servers have nothing to drain
			fl = ecocloud.MigrateLowProb(us, mc.Tl, mc.Alpha)
		}
		if fl == 0 {
			continue
		}
		flow := mc.Rate * fl * q * accept
		// A server cannot drain more utilization than it has.
		if flow > mc.Rate*us {
			flow = mc.Rate * us
		}
		out[s] -= flow
		outflowTotal += flow
	}
	if outflowTotal == 0 {
		return
	}
	for s := range u {
		out[s] += outflowTotal * m.f[s] / sumFa
	}
}

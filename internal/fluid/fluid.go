// Package fluid implements the paper's mathematical analysis (§IV): a system
// of differential equations, inspired by fluid dynamics, describing how the
// assignment procedure evolves per-server utilization,
//
//	du_s/dt = -Nc*mu(t)*u_s + lambda(t) * A_s(t) * fa(u_s)        (Eq. 5)
//
// where A_s is the probability mass a new VM lands on server s given the
// Bernoulli availability of every server. The package provides both the
// exact A_s (Eq. 6–9, a combinatorial sum over the number of accepting
// servers, evaluated via polynomial products) and the paper's approximate
// model (Eq. 11, A_s*fa proportional to fa(u_s)), plus a fourth-order
// Runge–Kutta integrator and the discrete hibernation/activation rules the
// paper grafts onto the continuous dynamics.
//
// Exact A_s cost: the coefficient vector of prod_{i!=s}((1-f_i) + f_i*x)
// gives P_k^(s) for every k at once. The full product over all servers is
// built in O(Ns^2) and each server's factor is divided back out by stable
// synthetic division (choosing the recurrence direction by which of the
// factor's two coefficients dominates), so one derivative evaluation costs
// O(Ns^2) instead of the naive O(Ns^3).
package fluid

import (
	"fmt"
	"math"
	"time"

	"repro/internal/ecocloud"
)

// Rate is a time-varying rate: callers receive the virtual time and return
// the instantaneous rate per hour.
type Rate func(t time.Duration) float64

// ConstRate returns a constant rate.
func ConstRate(v float64) Rate { return func(time.Duration) float64 { return v } }

// StepRate returns the piecewise-constant rate defined by one value per
// bucket (clamping to the last bucket beyond the end), which is how rates
// extracted from traces (trace.Set.Rates) are fed to the model.
func StepRate(values []float64, bucket time.Duration) Rate {
	if len(values) == 0 || bucket <= 0 {
		panic("fluid: StepRate needs values and a positive bucket")
	}
	return func(t time.Duration) float64 {
		i := int(t / bucket)
		if i < 0 {
			i = 0
		}
		if i >= len(values) {
			i = len(values) - 1
		}
		return values[i]
	}
}

// Config parameterizes the fluid model.
type Config struct {
	Ns int // number of servers
	Nc int // cores per server

	// Lambda is the aggregate VM arrival rate (VMs/hour); Mu is the per-core
	// service rate (1/hour). With a per-VM departure rate mu_vm, the paper's
	// -Nc*mu*u term equals -mu_vm*u when Mu = mu_vm/Nc (see PerVMRate).
	Lambda Rate
	Mu     Rate

	// VMLoad is the utilization one VM contributes to a server (mean VM
	// demand / server capacity); it scales the arrival term.
	VMLoad float64

	// Fa is the assignment probability function under analysis.
	Fa ecocloud.AssignProbFunc

	// Exact selects the combinatorial A_s (Eq. 6–9); false uses Eq. 11.
	Exact bool

	// Dt is the RK4 step (default 1 minute when zero).
	Dt time.Duration

	// SeedU is the utilization a hibernated server is activated with when
	// the fleet's acceptance mass dries up while load is arriving; fa(0)=0,
	// so without this discrete rule no server could ever start filling.
	SeedU float64
	// OffU clamps a server below this utilization to exactly 0 (hibernated).
	OffU float64
	// MassEps triggers activation when sum_i fa(u_i) falls below it.
	MassEps float64

	// Migration enables the beyond-the-paper low-migration flux extension
	// (see migration.go). Zero value = disabled, the paper's model.
	Migration MigrationConfig
}

// DefaultConfig returns the Fig. 13 setup: 100 six-core servers and the
// paper's assignment parameters (Ta=0.9, p=3); rates must be supplied.
func DefaultConfig() Config {
	fa, err := ecocloud.NewAssignProb(0.9, 3)
	if err != nil {
		panic(err) // constants; cannot fail
	}
	return Config{
		Ns:      100,
		Nc:      6,
		VMLoad:  0.02,
		Fa:      fa,
		Dt:      time.Minute,
		SeedU:   0.02,
		OffU:    0.005,
		MassEps: 0.5,
	}
}

// PerVMRate converts a per-VM departure rate (1/hour) into the per-core Mu
// this model expects, so that -Nc*Mu*u matches -mu_vm*u.
func PerVMRate(muVM float64, nc int) float64 { return muVM / float64(nc) }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Ns <= 0:
		return fmt.Errorf("fluid: Ns = %d", c.Ns)
	case c.Nc <= 0:
		return fmt.Errorf("fluid: Nc = %d", c.Nc)
	case c.Lambda == nil || c.Mu == nil:
		return fmt.Errorf("fluid: Lambda and Mu must be set")
	case c.VMLoad <= 0 || c.VMLoad > 1:
		return fmt.Errorf("fluid: VMLoad = %v outside (0,1]", c.VMLoad)
	case c.Fa.Ta <= 0:
		return fmt.Errorf("fluid: assignment function not initialized")
	case c.Dt < 0:
		return fmt.Errorf("fluid: Dt = %v", c.Dt)
	case c.SeedU < 0 || c.SeedU > 1:
		return fmt.Errorf("fluid: SeedU = %v", c.SeedU)
	case c.OffU < 0 || c.OffU >= 1:
		return fmt.Errorf("fluid: OffU = %v", c.OffU)
	case c.MassEps < 0:
		return fmt.Errorf("fluid: MassEps = %v", c.MassEps)
	}
	return nil
}

// Result holds sampled trajectories: U[i][s] is server s's utilization at
// Times[i].
type Result struct {
	Times []time.Duration
	U     [][]float64
}

// ActiveAt counts servers with utilization above threshold at sample i.
func (r *Result) ActiveAt(i int, threshold float64) int {
	n := 0
	for _, u := range r.U[i] {
		if u > threshold {
			n++
		}
	}
	return n
}

// FinalActive counts servers above threshold at the last sample.
func (r *Result) FinalActive(threshold float64) int {
	if len(r.U) == 0 {
		return 0
	}
	return r.ActiveAt(len(r.U)-1, threshold)
}

// Run integrates the model from the initial utilizations over the horizon,
// sampling every sampleEvery. initial must have length Ns.
func Run(cfg Config, initial []float64, horizon, sampleEvery time.Duration) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(initial) != cfg.Ns {
		return nil, fmt.Errorf("fluid: %d initial conditions for %d servers", len(initial), cfg.Ns)
	}
	if horizon <= 0 || sampleEvery <= 0 {
		return nil, fmt.Errorf("fluid: horizon %v / sampleEvery %v", horizon, sampleEvery)
	}
	dt := cfg.Dt
	if dt == 0 {
		dt = time.Minute
	}
	u := make([]float64, cfg.Ns)
	copy(u, initial)

	res := &Result{}
	sample := func(t time.Duration) {
		row := make([]float64, len(u))
		copy(row, u)
		res.Times = append(res.Times, t)
		res.U = append(res.U, row)
	}
	sample(0)

	m := newModel(cfg)
	nextSample := sampleEvery
	for t := time.Duration(0); t < horizon; {
		step := dt
		if t+step > horizon {
			step = horizon - t
		}
		m.rk4(u, t, step)
		t += step
		m.discreteRules(u, t)
		for t >= nextSample && nextSample <= horizon {
			sample(nextSample)
			nextSample += sampleEvery
		}
	}
	return res, nil
}

// model carries scratch buffers so integration does not allocate per step.
type model struct {
	cfg Config
	f   []float64 // fa(u_i)
	k1  []float64
	k2  []float64
	k3  []float64
	k4  []float64
	tmp []float64
	// polynomial scratch for the exact A_s
	prod []float64
	quot []float64
}

func newModel(cfg Config) *model {
	n := cfg.Ns
	return &model{
		cfg:  cfg,
		f:    make([]float64, n),
		k1:   make([]float64, n),
		k2:   make([]float64, n),
		k3:   make([]float64, n),
		k4:   make([]float64, n),
		tmp:  make([]float64, n),
		prod: make([]float64, n+1),
		quot: make([]float64, n),
	}
}

// deriv writes du/dt into out for state u at time t. Time-varying rates are
// evaluated at t (hours).
func (m *model) deriv(out, u []float64, t time.Duration) {
	cfg := m.cfg
	lambda := cfg.Lambda(t)
	mu := cfg.Mu(t)
	for i, ui := range u {
		m.f[i] = cfg.Fa.Eval(ui)
	}
	decay := float64(cfg.Nc) * mu
	if cfg.Exact {
		m.derivExact(out, u, lambda, decay)
		return
	}
	sum := 0.0
	for _, fi := range m.f {
		sum += fi
	}
	for s, us := range u {
		arr := 0.0
		if sum > 0 {
			arr = lambda * cfg.VMLoad * m.f[s] / sum // Eq. (11)
		}
		out[s] = -decay*us + arr
	}
	m.migrationFlux(out, u)
}

// derivExact evaluates Eq. (5)–(9). The full availability polynomial
// prod_i((1-f_i) + f_i x) is built once; each server's own factor is divided
// out to obtain its P_k^(s) coefficients.
func (m *model) derivExact(out, u []float64, lambda, decay float64) {
	n := m.cfg.Ns
	// Build the full product; prod[k] = P(exactly k of all servers accept).
	prod := m.prod[:n+1]
	for i := range prod {
		prod[i] = 0
	}
	prod[0] = 1
	deg := 0
	for _, fi := range m.f {
		a, b := 1-fi, fi
		deg++
		for k := deg; k >= 1; k-- {
			prod[k] = a*prod[k] + b*prod[k-1]
		}
		prod[0] *= a
	}
	// Denominator of Eq. (6): P(at least one accepts) = 1 - prod[0].
	denom := 1 - prod[0]
	for s := 0; s < n; s++ {
		us := u[s]
		fs := m.f[s]
		arr := 0.0
		if fs > 0 && denom > 1e-300 {
			q := m.deflate(prod, 1-fs, fs, n)
			// sum_k P_k^(s) / (k+1) over the other n-1 servers.
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += q[k] / float64(k+1)
			}
			arr = lambda * m.cfg.VMLoad * fs * sum / denom
		}
		out[s] = -decay*us + arr
	}
	m.migrationFlux(out, u)
}

// deflate divides the degree-n polynomial c by the linear factor (a + b*x),
// returning the degree n-1 quotient in a shared buffer. The recurrence runs
// from the constant term when |a| >= |b| and from the leading term
// otherwise, which keeps the division numerically stable for f near 0 or 1.
func (m *model) deflate(c []float64, a, b float64, n int) []float64 {
	q := m.quot[:n]
	if math.Abs(a) >= math.Abs(b) {
		// c_k = a*q_k + b*q_{k-1}  =>  q_k = (c_k - b*q_{k-1}) / a
		prev := 0.0
		for k := 0; k < n; k++ {
			qk := (c[k] - b*prev) / a
			q[k] = qk
			prev = qk
		}
	} else {
		// c_{k+1} = a*q_{k+1} + b*q_k  =>  q_k = (c_{k+1} - a*q_{k+1}) / b
		next := 0.0
		for k := n - 1; k >= 0; k-- {
			qk := (c[k+1] - a*next) / b
			q[k] = qk
			next = qk
		}
	}
	// Clamp tiny negative round-off: these are probabilities.
	for k := range q {
		if q[k] < 0 && q[k] > -1e-9 {
			q[k] = 0
		}
	}
	return q
}

// rk4 advances u in place by dt using classic Runge–Kutta.
func (m *model) rk4(u []float64, t, dt time.Duration) {
	h := dt.Hours()
	n := len(u)
	m.deriv(m.k1, u, t)
	for i := 0; i < n; i++ {
		m.tmp[i] = u[i] + 0.5*h*m.k1[i]
	}
	m.deriv(m.k2, m.tmp, t+dt/2)
	for i := 0; i < n; i++ {
		m.tmp[i] = u[i] + 0.5*h*m.k2[i]
	}
	m.deriv(m.k3, m.tmp, t+dt/2)
	for i := 0; i < n; i++ {
		m.tmp[i] = u[i] + h*m.k3[i]
	}
	m.deriv(m.k4, m.tmp, t+dt)
	for i := 0; i < n; i++ {
		u[i] += h / 6 * (m.k1[i] + 2*m.k2[i] + 2*m.k3[i] + m.k4[i])
		if u[i] < 0 {
			u[i] = 0
		}
	}
}

// discreteRules applies the paper's out-of-band events: servers decaying
// under OffU hibernate (clamp to 0), and when the fleet's acceptance mass is
// too small to absorb incoming load, one hibernated server is activated at
// SeedU (the fluid analogue of the manager's wake-up; the simulator's
// 30-minute grace period plays this role in §IV's comparison).
func (m *model) discreteRules(u []float64, t time.Duration) {
	cfg := m.cfg
	for i := range u {
		if u[i] > 0 && u[i] < cfg.OffU {
			u[i] = 0
		}
	}
	if cfg.Lambda(t) <= 0 {
		return
	}
	mass := 0.0
	for _, ui := range u {
		mass += cfg.Fa.Eval(ui)
	}
	if mass >= cfg.MassEps {
		return
	}
	for i := range u {
		if u[i] == 0 {
			u[i] = cfg.SeedU
			return
		}
	}
}

// Derivative evaluates du/dt once for the given state — the hook the
// approximation-error analysis uses to compare Eq. 11 against Eq. 6-9
// without integrating.
func Derivative(cfg Config, u []float64, t time.Duration) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(u) != cfg.Ns {
		return nil, fmt.Errorf("fluid: state length %d for %d servers", len(u), cfg.Ns)
	}
	m := newModel(cfg)
	out := make([]float64, cfg.Ns)
	m.deriv(out, u, t)
	return out, nil
}

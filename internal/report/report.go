// Package report assembles experiment figures into one self-contained HTML
// page with inline SVG charts (cmd/ecobench -html). Rendering rules follow
// the figure shapes: histograms (figs 4–5) become bar charts, time series
// become line charts, per-server matrices (figs 6/12/13) are summarized as
// utilization percentile bands, and wide tables fall back to their notes.
package report

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/svg"
)

// HTML writes the full report page.
func HTML(w io.Writer, title string, figures []*experiments.Figure) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString(`<style>
body { font-family: sans-serif; max-width: 860px; margin: 2em auto; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
ul.notes { color: #444; font-size: 0.92em; }
figure { margin: 0.5em 0; }
</style></head><body>` + "\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))

	for _, f := range figures {
		fmt.Fprintf(&b, "<h2>%s — %s</h2>\n", html.EscapeString(f.ID), html.EscapeString(f.Title))
		if len(f.Notes) > 0 {
			b.WriteString("<ul class=\"notes\">\n")
			for _, n := range f.Notes {
				fmt.Fprintf(&b, "<li>%s</li>\n", html.EscapeString(n))
			}
			b.WriteString("</ul>\n")
		}
		if chart := render(f); chart != "" {
			b.WriteString("<figure>\n")
			b.WriteString(chart)
			b.WriteString("</figure>\n")
		}
	}
	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// render picks the chart form for a figure, or returns "" when the notes
// alone carry the content.
func render(f *experiments.Figure) string {
	if len(f.Rows) == 0 || len(f.Columns) < 2 {
		return ""
	}
	switch {
	case isHistogram(f):
		return svg.Bars(f.Title, f.Columns[0], f.Column(f.Columns[0]), f.Column(f.Columns[1]))
	case isServerMatrix(f):
		return percentileBand(f)
	case len(f.Columns) <= 9 && f.Columns[0] == "time_h":
		x := f.Column("time_h")
		var series []svg.Series
		for _, c := range f.Columns[1:] {
			series = append(series, svg.Series{Name: c, Y: f.Column(c)})
		}
		return svg.LineChart(f.Title, "time (h)", x, series)
	case len(f.Columns) <= 9 && f.Columns[0] == "u":
		x := f.Column("u")
		var series []svg.Series
		for _, c := range f.Columns[1:] {
			series = append(series, svg.Series{Name: c, Y: f.Column(c)})
		}
		return svg.LineChart(f.Title, "CPU utilization", x, series)
	default:
		return "" // tables (comparison, sensitivity, ...) read better as notes
	}
}

// isHistogram matches the Fig. 4/5 shape: exactly two columns, the second
// named freq.
func isHistogram(f *experiments.Figure) bool {
	return len(f.Columns) == 2 && f.Columns[1] == "freq"
}

// isServerMatrix matches the per-server utilization figures (6, 12, 13):
// time, overall_load, then one column per server.
func isServerMatrix(f *experiments.Figure) bool {
	return len(f.Columns) > 9 && f.Columns[0] == "time_h" && len(f.Columns) > 2 &&
		f.Columns[1] == "overall_load" && strings.HasPrefix(f.Columns[2], "s")
}

// percentileBand summarizes a per-server matrix as the overall load plus
// the p10/p50/p90 utilization of servers that carry load at each sample.
func percentileBand(f *experiments.Figure) string {
	x := f.Column("time_h")
	load := f.Column("overall_load")
	nServers := len(f.Columns) - 2
	p10 := make([]float64, len(f.Rows))
	p50 := make([]float64, len(f.Rows))
	p90 := make([]float64, len(f.Rows))
	for r, row := range f.Rows {
		active := make([]float64, 0, nServers)
		for _, u := range row[2:] {
			if u > 0.001 {
				active = append(active, u)
			}
		}
		if len(active) == 0 {
			continue
		}
		sort.Float64s(active)
		p10[r] = quantile(active, 0.10)
		p50[r] = quantile(active, 0.50)
		p90[r] = quantile(active, 0.90)
	}
	return svg.LineChart(f.Title+" (active-server percentiles)", "time (h)", x, []svg.Series{
		{Name: "overall load", Y: load},
		{Name: "p10 active util", Y: p10},
		{Name: "p50 active util", Y: p50},
		{Name: "p90 active util", Y: p90},
	})
}

// quantile returns the q-quantile of sorted data by nearest rank.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

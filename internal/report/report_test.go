package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func timeSeriesFigure() *experiments.Figure {
	f := &experiments.Figure{ID: "fig7", Title: "active", Columns: []string{"time_h", "active_servers"}}
	f.Add(0, 10)
	f.Add(1, 12)
	f.Notef("a note")
	return f
}

func histogramFigure() *experiments.Figure {
	f := &experiments.Figure{ID: "fig4", Title: "dist", Columns: []string{"avg_util_pct", "freq"}}
	f.Add(2.5, 0.4)
	f.Add(7.5, 0.3)
	return f
}

func matrixFigure() *experiments.Figure {
	cols := []string{"time_h", "overall_load"}
	for i := 0; i < 12; i++ {
		cols = append(cols, "s"+string(rune('0'+i%10)))
	}
	f := &experiments.Figure{ID: "fig6", Title: "matrix", Columns: cols}
	row := make([]float64, len(cols))
	row[0], row[1] = 0, 0.3
	for i := 2; i < len(cols); i++ {
		row[i] = 0.1 * float64(i-1)
	}
	f.Add(row...)
	return f
}

func TestHTMLContainsAllSections(t *testing.T) {
	var buf bytes.Buffer
	err := HTML(&buf, "report", []*experiments.Figure{
		timeSeriesFigure(), histogramFigure(), matrixFigure(),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "<h1>report</h1>",
		"fig7", "fig4", "fig6",
		"a note", "<svg", "percentiles",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Three figures, three charts.
	if got := strings.Count(out, "<svg"); got != 3 {
		t.Fatalf("charts = %d, want 3", got)
	}
}

func TestHTMLEscapes(t *testing.T) {
	f := &experiments.Figure{ID: "x", Title: `<script>alert(1)</script>`, Columns: []string{"a"}}
	var buf bytes.Buffer
	if err := HTML(&buf, `<t>`, []*experiments.Figure{f}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>") {
		t.Fatal("unescaped HTML injection")
	}
}

func TestRenderTableFigureHasNoChart(t *testing.T) {
	f := &experiments.Figure{ID: "comparison", Title: "t",
		Columns: []string{"policy_idx", "energy_kwh"}}
	f.Add(0, 1)
	if render(f) != "" {
		t.Fatal("table figure rendered a chart")
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	if quantile(data, 0) != 1 || quantile(data, 1) != 5 || quantile(data, 0.5) != 3 {
		t.Fatal("quantile wrong")
	}
	if quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

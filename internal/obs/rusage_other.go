//go:build !unix

package obs

// cpuTimes is unavailable off unix; the manifest reports zeros there.
func cpuTimes() (user, sys float64) { return 0, 0 }

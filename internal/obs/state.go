package obs

// RestoreSnapshot installs the counter and gauge values of a previously
// captured Snapshot, creating metrics that do not exist yet. Timers are NOT
// restored: they measure host wall time, which is profiling telemetry, not
// simulation state — a resumed run's timers cover only the resumed leg.
// Metrics present in the registry but absent from the snapshot are left
// untouched (they were zero, or did not exist, at capture time).
func (r *Registry) RestoreSnapshot(s Snapshot) {
	for name, v := range s.Counters {
		c := r.Counter(name)
		c.v.Store(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Set(v)
	}
}

// RestoreMetrics is the Recorder-level wrapper around
// Registry.RestoreSnapshot; it is safe on a nil (disabled) recorder, where
// it is a no-op.
func (r *Recorder) RestoreMetrics(s Snapshot) {
	if r == nil {
		return
	}
	r.reg.RestoreSnapshot(s)
}

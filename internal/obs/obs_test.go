package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeTimer(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if reg.Counter("events") != c {
		t.Error("Counter not idempotent: second lookup returned a new counter")
	}

	g := reg.Gauge("depth")
	g.Set(7)
	g.SetMax(3) // must not lower
	if got := g.Value(); got != 7 {
		t.Errorf("gauge after SetMax(3) = %d, want 7", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Errorf("gauge after SetMax(11) = %d, want 11", got)
	}

	tm := reg.Timer("handler")
	tm.Observe(10 * time.Millisecond)
	tm.Observe(30 * time.Millisecond)
	s := tm.stats()
	if s.Count != 2 || s.TotalNS != int64(40*time.Millisecond) || s.MaxNS != int64(30*time.Millisecond) {
		t.Errorf("timer stats = %+v", s)
	}
	if want := float64(20 * time.Millisecond); s.MeanNS != want {
		t.Errorf("timer mean = %v, want %v", s.MeanNS, want)
	}
}

func TestConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				reg.Counter("c").Inc()
				reg.Gauge("g").SetMax(int64(i*per + j))
				reg.Timer("t").Observe(time.Microsecond)
				if j%100 == 0 {
					_ = reg.Snapshot() // concurrent reads must be safe
				}
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != goroutines*per {
		t.Errorf("counter = %d, want %d", got, goroutines*per)
	}
	if got, want := reg.Gauge("g").Value(), int64(goroutines*per-1); got != want {
		t.Errorf("gauge high-water = %d, want %d", got, want)
	}
	if got := reg.Timer("t").stats().Count; got != goroutines*per {
		t.Errorf("timer count = %d, want %d", got, goroutines*per)
	}
}

func TestSnapshotDeterminism(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		// Insert in different orders; encoding must not care.
		for _, n := range []string{"z", "a", "m"} {
			reg.Counter(n).Add(3)
			reg.Gauge("g." + n).Set(9)
			reg.Timer("t." + n).Observe(time.Millisecond)
		}
		return reg
	}
	a, err := json.Marshal(build().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewRegistry()
	for _, n := range []string{"m", "z", "a"} {
		reg2.Timer("t." + n).Observe(time.Millisecond)
		reg2.Gauge("g." + n).Set(9)
		reg2.Counter(n).Add(3)
	}
	b, err := json.Marshal(reg2.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("snapshots differ:\n%s\n%s", a, b)
	}
	names := build().Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	// None of these may panic.
	r.Count("x", 1)
	r.Gauge("x", 1)
	r.GaugeMax("x", 1)
	r.Observe("x", time.Second)
	r.Emit(0, "x", nil)
	r.SampleMemory()
	if r.Journaling() {
		t.Error("nil recorder reports journaling")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Timers != nil {
		t.Errorf("nil recorder snapshot = %+v, want zero", s)
	}
	if r.Registry() != nil {
		t.Error("nil recorder has a registry")
	}
}

func TestJournalJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	r := NewRecorder(nil, j)
	r.Emit(30*time.Minute, "migrate", map[string]any{"vm": 4, "server": 1, "dest": 2})
	r.Emit(time.Hour, "hibernate", map[string]any{"server": 1})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("journal lines = %d, want 2: %q", len(lines), buf.String())
	}
	var got struct {
		TSimNS int64  `json:"t_sim_ns"`
		Kind   string `json:"kind"`
		VM     int    `json:"vm"`
		Dest   int    `json:"dest"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatal(err)
	}
	if got.TSimNS != int64(30*time.Minute) || got.Kind != "migrate" || got.VM != 4 || got.Dest != 2 {
		t.Errorf("journal line = %+v", got)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	type cfg struct {
		Servers int `json:"servers"`
	}
	r := NewRecorder(nil, nil)
	r.Count("sim.events", 42)
	m := NewManifest("daily", cfg{Servers: 40}, 7)
	m.Finish(r)
	if m.WallSeconds < 0 || m.End.Before(m.Start) {
		t.Errorf("bad wall time: start %v end %v", m.Start, m.End)
	}
	if m.PeakHeapBytes == 0 {
		t.Error("peak heap not recorded")
	}
	dir := t.TempDir()
	path, err := m.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("run.json does not parse: %v", err)
	}
	if back.Experiment != "daily" || back.Seed != 7 {
		t.Errorf("manifest round trip: %+v", back)
	}
	if back.Metrics.Counters["sim.events"] != 42 {
		t.Errorf("metrics snapshot lost: %+v", back.Metrics)
	}
	if back.GoVersion == "" {
		t.Error("go version missing")
	}
}

func TestProgressWritesLines(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := StartProgress(w, 5*time.Millisecond, func() string { return "tick" })
	time.Sleep(30 * time.Millisecond)
	stop()
	stop() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if n := strings.Count(buf.String(), "tick"); n < 2 {
		t.Errorf("progress lines = %d, want >= 2 (one periodic + one final)", n)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

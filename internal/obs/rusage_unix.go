//go:build unix

package obs

import "syscall"

// cpuTimes returns the process's user and system CPU seconds so far.
func cpuTimes() (user, sys float64) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, 0
	}
	toSec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return toSec(ru.Utime), toSec(ru.Stime)
}

package obs

import (
	"runtime"
	"time"
)

// Recorder is the nil-safe facade instrumented code calls. A nil *Recorder
// is the "telemetry off" state: every method returns immediately after one
// pointer test, so hot paths can call unconditionally.
//
// A Recorder couples a metric Registry (always present when the recorder is
// non-nil) with an optional event Journal.
//
// Every method is safe for concurrent use: metric lookups are serialized by
// the registry lock, counters and gauges update atomically, timers and the
// journal lock per operation. Parallel control-round workers (internal/par)
// and concurrent experiment variants may therefore share one recorder —
// though anything ordered (journal lines) must still be emitted from
// sequential code for runs to stay byte-identical.
type Recorder struct {
	reg     *Registry
	journal *Journal
}

// NewRecorder returns a recorder over reg, journaling to j (which may be
// nil for metrics-only recording). A nil reg allocates a fresh registry.
func NewRecorder(reg *Registry, j *Journal) *Recorder {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Recorder{reg: reg, journal: j}
}

// Enabled reports whether telemetry is on (the recorder is non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Registry exposes the underlying registry (nil when disabled).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Count adds d to the named counter.
func (r *Recorder) Count(name string, d int64) {
	if r == nil {
		return
	}
	r.reg.Counter(name).Add(d)
}

// Gauge sets the named gauge to v.
func (r *Recorder) Gauge(name string, v int64) {
	if r == nil {
		return
	}
	r.reg.Gauge(name).Set(v)
}

// GaugeMax raises the named gauge to v if v exceeds it (high-water mark).
func (r *Recorder) GaugeMax(name string, v int64) {
	if r == nil {
		return
	}
	r.reg.Gauge(name).SetMax(v)
}

// Observe records one duration on the named timer.
func (r *Recorder) Observe(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.reg.Timer(name).Observe(d)
}

// noopStop is the shared stop function StartTimer hands out when telemetry
// is off, so disabled hot paths never allocate a closure.
var noopStop = func() {}

// StartTimer starts a host-clock measurement of the named timer and returns
// the function that stops it and records the elapsed duration. It is the one
// sanctioned wall-clock read in instrumented code: callers measure handler
// cost without touching the clock themselves, which keeps simulation
// packages free of time.Now under the determinism contract.
//
//ecolint:allow wallclock — telemetry measures real handler cost; it never feeds back into simulation state
func (r *Recorder) StartTimer(name string) (stop func()) {
	if r == nil {
		return noopStop
	}
	start := time.Now()
	return func() {
		r.reg.Timer(name).Observe(time.Since(start))
	}
}

// Emit writes one event to the journal, if one is attached. simTime is the
// virtual timestamp; fields holds event-specific key/values (may be nil).
func (r *Recorder) Emit(simTime time.Duration, kind string, fields map[string]any) {
	if r == nil || r.journal == nil {
		return
	}
	r.journal.Emit(simTime, kind, fields)
}

// Journaling reports whether Emit would write anywhere; callers building
// non-trivial field maps can skip the work when it would be dropped.
func (r *Recorder) Journaling() bool { return r != nil && r.journal != nil }

// SampleMemory reads the Go heap and updates the mem.heap_alloc_bytes gauge
// and the mem.heap_peak_bytes high-water mark. Call it at a coarse cadence
// (sample ticks, progress ticks); ReadMemStats stops the world briefly.
func (r *Recorder) SampleMemory() {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.reg.Gauge("mem.heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.reg.Gauge("mem.heap_peak_bytes").SetMax(int64(ms.HeapAlloc))
}

// Snapshot returns a snapshot of the registry (zero value when disabled).
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	return r.reg.Snapshot()
}

package obs

import (
	"encoding/json"
	"io"
	"sync" //ecolint:allow goroutine — the journal serializes writers from concurrent experiment variants
	"time"
)

// Journal writes one JSON object per line for every emitted event:
//
//	{"t_sim_ns": 1800000000000, "kind": "migrate", "vm": 12, "server": 3, "dest": 7}
//
// t_sim_ns is virtual simulation time, so journals of the same seeded run are
// byte-identical. Extra fields come flattened from the emitter's map, sorted
// by key (encoding/json sorts map keys). Writes are serialized by a mutex so
// parallel experiment variants can share one journal; encoding errors are
// swallowed — the journal is best-effort observability and must never fail a
// run.
type Journal struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJournal returns a journal writing JSONL to w.
func NewJournal(w io.Writer) *Journal {
	return &Journal{enc: json.NewEncoder(w)}
}

// Emit writes one event line. Safe on a nil journal.
func (j *Journal) Emit(simTime time.Duration, kind string, fields map[string]any) {
	if j == nil {
		return
	}
	line := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		line[k] = v
	}
	line["t_sim_ns"] = int64(simTime)
	line["kind"] = kind
	j.mu.Lock()
	_ = j.enc.Encode(line)
	j.mu.Unlock()
}

package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// Manifest records everything needed to audit or re-run one experiment run:
// the full configuration, the seed, the toolchain, and the run's resource
// footprint. It is written as run.json next to the figure CSVs.
type Manifest struct {
	Experiment string `json:"experiment"`
	// Config is the experiment's full options struct, marshaled verbatim.
	Config any    `json:"config,omitempty"`
	Seed   uint64 `json:"seed"`

	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	Start time.Time `json:"start"`
	End   time.Time `json:"end,omitempty"`

	WallSeconds    float64 `json:"wall_seconds"`
	CPUUserSeconds float64 `json:"cpu_user_seconds"`
	CPUSysSeconds  float64 `json:"cpu_sys_seconds"`
	PeakHeapBytes  uint64  `json:"peak_heap_bytes"`

	// Metrics is the final registry snapshot (counters/gauges/timers).
	Metrics Snapshot `json:"metrics,omitempty"`
}

// NewManifest starts a manifest for one run, stamping the start time and the
// toolchain identity.
func NewManifest(experiment string, config any, seed uint64) *Manifest {
	return &Manifest{
		Experiment: experiment,
		Config:     config,
		Seed:       seed,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Start:      time.Now(), //ecolint:allow wallclock — manifest records real run provenance, not simulation state
	}
}

// Finish stamps the end time, computes wall/CPU time and the peak heap, and
// folds in the recorder's final snapshot (r may be nil).
func (m *Manifest) Finish(r *Recorder) {
	m.End = time.Now() //ecolint:allow wallclock — manifest records real run provenance, not simulation state
	m.WallSeconds = m.End.Sub(m.Start).Seconds()
	m.CPUUserSeconds, m.CPUSysSeconds = cpuTimes()

	r.SampleMemory()
	m.Metrics = r.Snapshot()
	// Peak heap: the sampled high-water mark when telemetry ran, else the
	// current heap (a floor, not a true peak).
	if g, ok := m.Metrics.Gauges["mem.heap_peak_bytes"]; ok && g > 0 {
		m.PeakHeapBytes = uint64(g)
	} else {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		m.PeakHeapBytes = ms.HeapAlloc
	}
}

// WriteFile writes the manifest as indented JSON to dir/run.json, creating
// dir if needed, and returns the path written.
func (m *Manifest) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "run.json")
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

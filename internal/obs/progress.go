package obs

import (
	"fmt"
	"io"
	"sync" //ecolint:allow goroutine — idempotent stop for the heartbeat goroutine
	"time"
)

// StartProgress launches a goroutine that writes one line() per interval to
// w until the returned stop function is called. stop is idempotent, blocks
// until the goroutine exits, and writes one final line so short runs still
// report. line typically reads atomic gauges/counters the run updates.
//
//ecolint:allow wallclock — the progress heartbeat is for the operator's wall clock; runs are identical with it disabled
//ecolint:allow goroutine — the heartbeat is reporting-only and never feeds back into simulation state
func StartProgress(w io.Writer, interval time.Duration, line func() string) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(w, line())
			case <-done:
				fmt.Fprintln(w, line())
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

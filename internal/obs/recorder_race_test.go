package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecorderConcurrentHammer drives every Recorder method from 8
// goroutines sharing one recorder — the shape internal/par's workers and the
// experiment fan-outs produce. Run under -race this is the concurrency-safety
// contract's enforcement; the totals check below catches lost updates even
// without the race detector.
func TestRecorderConcurrentHammer(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(nil, NewJournal(&buf))

	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rec.Count("hammer.count", 1)
				rec.Gauge("hammer.gauge", int64(i))
				rec.GaugeMax("hammer.peak", int64(g*iters+i))
				rec.Observe("hammer.timer", time.Duration(i))
				stop := rec.StartTimer("hammer.walltimer")
				stop()
				if i%100 == 0 {
					rec.Emit(time.Duration(i), "hammer", map[string]any{"g": g})
					rec.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	snap := rec.Snapshot()
	if got, want := snap.Counters["hammer.count"], int64(goroutines*iters); got != want {
		t.Errorf("counter lost updates: got %d, want %d", got, want)
	}
	if got, want := snap.Gauges["hammer.peak"], int64(goroutines*iters-1); got != want {
		t.Errorf("gauge high-water mark: got %d, want %d", got, want)
	}
	timer := snap.Timers["hammer.timer"]
	if got, want := timer.Count, int64(goroutines*iters); got != want {
		t.Errorf("timer lost observations: got %d, want %d", got, want)
	}
	if got, want := strings.Count(buf.String(), "\n"), goroutines*iters/100; got != want {
		t.Errorf("journal lines: got %d, want %d", got, want)
	}
}

// Package obs is the run-telemetry layer: a zero-dependency registry of
// counters, gauges and timers, a nil-safe Recorder facade the hot paths call,
// a per-run JSONL event journal, a run manifest (config, seed, wall/CPU time,
// peak heap) written next to the figure CSVs, and a wall-clock progress
// reporter.
//
// Everything is designed around one constraint: the simulator's hot path must
// pay ~nothing when telemetry is off. All instrumentation goes through a
// *Recorder whose methods are safe on a nil receiver, so the disabled case is
// a single pointer test. Counters and gauges are lock-free atomics so a
// progress goroutine can read them while the (single-threaded) simulation
// mutates them.
package obs

import (
	"encoding/json"
	"sort"
	"sync"        //ecolint:allow goroutine — metric registry is shared infrastructure; readers (progress, par workers) race writers by design
	"sync/atomic" //ecolint:allow goroutine — lock-free counters/gauges are the telemetry-off-costs-nothing contract
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax stores v only if it exceeds the current value (a high-water mark).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates wall-time observations (count, total, max).
type Timer struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	max   time.Duration
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.mu.Lock()
	t.count++
	t.total += d
	if d > t.max {
		t.max = d
	}
	t.mu.Unlock()
}

// TimerStats is the exported view of a Timer.
type TimerStats struct {
	Count   int64   `json:"count"`
	TotalNS int64   `json:"total_ns"`
	MaxNS   int64   `json:"max_ns"`
	MeanNS  float64 `json:"mean_ns"`
}

func (t *Timer) stats() TimerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TimerStats{Count: t.count, TotalNS: int64(t.total), MaxNS: int64(t.max)}
	if t.count > 0 {
		s.MeanNS = float64(t.total) / float64(t.count)
	}
	return s
}

// Registry holds named metrics. Metric lookup takes the registry lock;
// callers on hot paths should capture the returned metric once and update it
// lock-free, or go through Recorder, which does the lookup per call (fine at
// simulation-event granularity).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Snapshot is a point-in-time copy of every metric, with deterministic
// (sorted) JSON encoding so snapshots diff cleanly across runs.
type Snapshot struct {
	Counters map[string]int64      `json:"counters,omitempty"`
	Gauges   map[string]int64      `json:"gauges,omitempty"`
	Timers   map[string]TimerStats `json:"timers,omitempty"`
}

// Snapshot copies every metric out of the registry. Safe to call while the
// run is still mutating metrics (values are read atomically, metric by
// metric; the snapshot is not a cross-metric consistent cut).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.timers) > 0 {
		s.Timers = make(map[string]TimerStats, len(r.timers))
		for n, t := range r.timers {
			s.Timers[n] = t.stats()
		}
	}
	return s
}

// Names returns the sorted names of all metrics (for tests and listings).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.timers))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.timers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MarshalJSON is deterministic: encoding/json sorts map keys, so two
// snapshots of identical state produce identical bytes.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // avoid recursion
	return json.Marshal(alias(s))
}

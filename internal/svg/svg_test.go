package svg

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNiceTicks(t *testing.T) {
	cases := []struct {
		lo, hi float64
		n      int
		step   float64
	}{
		{0, 10, 6, 2},
		{0, 1, 6, 0.2},
		{0, 48, 8, 5},
		{0, 97.3, 6, 20},
		{-5, 5, 6, 2},
	}
	for _, c := range cases {
		ticks := niceTicks(c.lo, c.hi, c.n)
		if len(ticks) < 2 {
			t.Fatalf("[%v,%v]: %d ticks", c.lo, c.hi, len(ticks))
		}
		got := ticks[1] - ticks[0]
		if math.Abs(got-c.step) > 1e-9 {
			t.Errorf("[%v,%v]: step %v, want %v", c.lo, c.hi, got, c.step)
		}
		for _, tk := range ticks {
			if tk < c.lo-1e-9 || tk > c.hi+1e-9 {
				t.Errorf("tick %v outside [%v,%v]", tk, c.lo, c.hi)
			}
		}
	}
}

func TestNiceTicksDegenerate(t *testing.T) {
	if got := niceTicks(5, 5, 6); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate range ticks = %v", got)
	}
	// Reversed bounds normalize.
	if got := niceTicks(10, 0, 6); len(got) < 2 {
		t.Fatalf("reversed range ticks = %v", got)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:         "0",
		2.5:       "2.5",
		48:        "48",
		12000:     "12k",
		2_500_000: "2.5M",
		0.02:      "0.02",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestLineChartStructure(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	out := LineChart("active servers", "time (h)", x, []Series{
		{Name: "active", Y: []float64{10, 20, 15, 12}},
		{Name: "min", Y: []float64{8, 15, 12, 10}},
	})
	for _, want := range []string{"<svg", "</svg>", "polyline", "active servers", "time (h)", "active", "min"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatalf("polylines = %d, want 2", strings.Count(out, "<polyline"))
	}
}

func TestLineChartEscapesText(t *testing.T) {
	out := LineChart(`a<b & "c"`, "x", []float64{0, 1}, []Series{{Name: "<s>", Y: []float64{1, 2}}})
	if strings.Contains(out, "a<b") || strings.Contains(out, "<s>") {
		t.Fatal("unescaped text in SVG")
	}
	if !strings.Contains(out, "a&lt;b &amp;") {
		t.Fatal("escaping did not happen")
	}
}

func TestLineChartEmpty(t *testing.T) {
	out := LineChart("empty", "x", nil, nil)
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("empty chart is not a valid frame")
	}
}

func TestBarsStructure(t *testing.T) {
	out := Bars("hist", "value", []float64{5, 15, 25}, []float64{0.5, 0.3, 0.2})
	if strings.Count(out, "<rect") < 4 { // background + frame + 3 bars
		t.Fatalf("rects = %d", strings.Count(out, "<rect"))
	}
	if !strings.Contains(out, "hist") {
		t.Fatal("missing title")
	}
}

func TestBarsAllZero(t *testing.T) {
	out := Bars("z", "v", []float64{1, 2}, []float64{0, 0})
	if !strings.Contains(out, "</svg>") {
		t.Fatal("all-zero histogram failed to render")
	}
}

// Property: charts never emit NaN coordinates for finite inputs.
func TestQuickNoNaNCoordinates(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		x := make([]float64, len(raw))
		y := make([]float64, len(raw))
		for i, v := range raw {
			x[i] = float64(i)
			y[i] = float64(v)
		}
		out := LineChart("t", "x", x, []Series{{Name: "s", Y: y}})
		return !strings.Contains(out, "NaN") && !strings.Contains(out, "Inf")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

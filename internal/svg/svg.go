// Package svg renders experiment series as standalone SVG charts — line
// charts and histograms with axes, tick labels and legends — so the HTML
// report (cmd/ecobench -html) needs no external plotting dependency.
package svg

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	Y    []float64
}

// palette cycles through colorblind-safe hues.
var palette = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#f0e442", "#000000",
}

const (
	width   = 720
	height  = 360
	marginL = 64
	marginR = 16
	marginT = 36
	marginB = 44
)

// niceTicks returns ~n human-friendly tick positions covering [lo, hi]
// using the 1-2-5 progression.
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	span := hi - lo
	if span <= 0 {
		return []float64{lo}
	}
	rawStep := span / float64(n-1)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	switch {
	case rawStep/mag < 1.5:
		step = 1 * mag
	case rawStep/mag < 3.5:
		step = 2 * mag
	case rawStep/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	first := math.Ceil(lo/step) * step
	var ticks []float64
	for v := first; v <= hi+step/1e6; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// formatTick renders a tick value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	case av >= 1:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// escape makes text safe inside SVG.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// LineChart renders the series over the shared x axis. Empty input yields a
// labeled empty frame rather than an error: report generation never fails
// on a degenerate figure.
func LineChart(title, xLabel string, x []float64, series []Series) string {
	var b strings.Builder
	openSVG(&b, title)
	if len(x) == 0 || len(series) == 0 {
		closeSVG(&b)
		return b.String()
	}
	xmin, xmax := x[0], x[0]
	for _, v := range x {
		xmin = math.Min(xmin, v)
		xmax = math.Max(xmax, v)
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Y {
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
	}
	if ymin > 0 && ymin < 0.3*ymax {
		ymin = 0 // anchor near-zero baselines
	}
	if xmax <= xmin { // degenerate range: every sample equal
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	px := func(v float64) float64 {
		return marginL + (v-xmin)/(xmax-xmin)*(width-marginL-marginR)
	}
	py := func(v float64) float64 {
		return height - marginB - (v-ymin)/(ymax-ymin)*(height-marginT-marginB)
	}

	axes(&b, xLabel, xmin, xmax, ymin, ymax, px, py)

	for si, s := range series {
		color := palette[si%len(palette)]
		var pts []string
		for i, v := range s.Y {
			if i >= len(x) {
				break
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(x[i]), py(v)))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.6" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		// Legend entry.
		lx := float64(marginL + 8 + si*160%560)
		ly := float64(14 + 14*(si*160/560))
		fmt.Fprintf(&b, `<rect x="%.0f" y="%.0f" width="10" height="3" fill="%s"/>`+"\n", lx, ly+14, color)
		fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" font-size="11">%s</text>`+"\n", lx+14, ly+19, escape(s.Name))
	}
	closeSVG(&b)
	return b.String()
}

// Bars renders a histogram (centers on x, freqs as bar heights).
func Bars(title, xLabel string, centers, freqs []float64) string {
	var b strings.Builder
	openSVG(&b, title)
	if len(centers) == 0 || len(freqs) == 0 {
		closeSVG(&b)
		return b.String()
	}
	n := len(centers)
	if len(freqs) < n {
		n = len(freqs)
	}
	xmin, xmax := centers[0], centers[0]
	for _, v := range centers[:n] {
		xmin = math.Min(xmin, v)
		xmax = math.Max(xmax, v)
	}
	ymax := 0.0
	for _, v := range freqs[:n] {
		ymax = math.Max(ymax, v)
	}
	if ymax == 0 {
		ymax = 1
	}
	if xmax <= xmin { // degenerate range: every sample equal
		xmax = xmin + 1
	}
	// widen by half a bin on each side
	bw := (xmax - xmin) / float64(n-1+1)
	xmin -= bw / 2
	xmax += bw / 2
	px := func(v float64) float64 {
		return marginL + (v-xmin)/(xmax-xmin)*(width-marginL-marginR)
	}
	py := func(v float64) float64 {
		return height - marginB - v/ymax*(height-marginT-marginB)
	}
	axes(&b, xLabel, xmin, xmax, 0, ymax, px, py)
	barW := (width - marginL - marginR) / float64(n) * 0.8
	for i := 0; i < n; i++ {
		xc := px(centers[i])
		top := py(freqs[i])
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" opacity="0.85"/>`+"\n",
			xc-barW/2, top, barW, float64(height-marginB)-top, palette[0])
	}
	closeSVG(&b)
	return b.String()
}

func openSVG(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		width, height, width, height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(b, `<text x="%d" y="16" font-size="13" font-weight="bold">%s</text>`+"\n", marginL, escape(title))
}

func closeSVG(b *strings.Builder) { b.WriteString("</svg>\n") }

// axes draws the frame, ticks and labels.
func axes(b *strings.Builder, xLabel string, xmin, xmax, ymin, ymax float64, px, py func(float64) float64) {
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#999"/>`+"\n",
		marginL, marginT, width-marginL-marginR, height-marginT-marginB)
	for _, t := range niceTicks(xmin, xmax, 8) {
		x := px(t)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ccc"/>`+"\n",
			x, marginT, x, height-marginB)
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
			x, height-marginB+14, formatTick(t))
	}
	for _, t := range niceTicks(ymin, ymax, 6) {
		y := py(t)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n",
			marginL, y, width-marginR, y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+3, formatTick(t))
	}
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
		(marginL+width-marginR)/2, height-8, escape(xLabel))
}

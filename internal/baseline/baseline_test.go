package baseline

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/trace"
)

func constVM(id int, mhz float64) *trace.VM {
	return &trace.VM{ID: id, Start: 0, End: 1000 * time.Hour, Epoch: 1000 * time.Hour, Demand: []float64{mhz}}
}

func newEnv(d *dc.DataCenter, now time.Duration) cluster.Env {
	return cluster.Env{Now: now, DC: d, Rec: cluster.NewRecorder(30 * time.Minute)}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Upper = 0 },
		func(c *Config) { c.Upper = 1.5 },
		func(c *Config) { c.Lower = -0.1 },
		func(c *Config) { c.Lower = c.Upper },
		func(c *Config) { c.Power = dc.PowerModel{} },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := NewBFD(cfg); err == nil {
			t.Errorf("bad config %d accepted by BFD", i)
		}
		if _, err := NewFFD(cfg); err == nil {
			t.Errorf("bad config %d accepted by FFD", i)
		}
	}
}

func TestBFDArrivalWakesWhenEmpty(t *testing.T) {
	d := dc.New(dc.UniformFleet(3, 6, 2000))
	p, err := NewBFD(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv(d, 0)
	p.OnArrival(env, constVM(1, 500))
	if d.ActiveCount() != 1 {
		t.Fatalf("active = %d, want 1", d.ActiveCount())
	}
	if d.NumPlaced() != 1 {
		t.Fatal("VM not placed")
	}
}

func TestBFDPacksOntoFewestServers(t *testing.T) {
	d := dc.New(dc.UniformFleet(5, 6, 2000)) // 12000 MHz each
	p, err := NewBFD(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv(d, 0)
	// 10 VMs of 1000 MHz: fits easily on one server (10000/12000 = 0.83 < 0.9).
	for i := 0; i < 10; i++ {
		p.OnArrival(env, constVM(i, 1000))
	}
	if d.ActiveCount() != 1 {
		t.Fatalf("BFD spread over %d servers, want 1", d.ActiveCount())
	}
}

func TestBFDRespectsUpperThreshold(t *testing.T) {
	d := dc.New(dc.UniformFleet(3, 6, 2000))
	p, err := NewBFD(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv(d, 0)
	// 12 x 1000 MHz = 12000: one server would be at 1.0 > 0.9, so two needed.
	for i := 0; i < 12; i++ {
		p.OnArrival(env, constVM(i, 1000))
	}
	if d.ActiveCount() != 2 {
		t.Fatalf("active = %d, want 2", d.ActiveCount())
	}
	for _, s := range d.Servers {
		if s.State() == dc.Active && s.UtilizationAt(0) > 0.9+1e-9 {
			t.Fatalf("server %d above Upper: %v", s.ID, s.UtilizationAt(0))
		}
	}
}

func TestBFDPrefersLargerServerPowerDelta(t *testing.T) {
	// Power delta = Peak*(1-idle)*d/cap: the 8-core box is the best fit.
	d := dc.New([]dc.Spec{{Cores: 4, CoreMHz: 2000}, {Cores: 8, CoreMHz: 2000}})
	p, err := NewBFD(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv(d, 0)
	if err := d.Activate(d.Servers[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(d.Servers[1], 0); err != nil {
		t.Fatal(err)
	}
	p.OnArrival(env, constVM(1, 1000))
	if host, _ := d.HostOf(1); host != d.Servers[1] {
		t.Fatal("BFD did not pick the minimal power-increase server")
	}
}

func TestFFDPicksFirstFit(t *testing.T) {
	d := dc.New(dc.UniformFleet(3, 6, 2000))
	p, err := NewFFD(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv(d, 0)
	if err := d.Activate(d.Servers[1], 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(d.Servers[2], 0); err != nil {
		t.Fatal(err)
	}
	p.OnArrival(env, constVM(1, 1000))
	if host, _ := d.HostOf(1); host != d.Servers[1] {
		t.Fatal("FFD did not pick the first feasible server")
	}
}

func TestControlDrainsUnderloadedServer(t *testing.T) {
	d := dc.New(dc.UniformFleet(3, 6, 2000))
	p, err := NewBFD(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv(d, 0)
	a, b := d.Servers[0], d.Servers[1]
	if err := d.Activate(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(b, 0); err != nil {
		t.Fatal(err)
	}
	// a: u = 0.25 (underloaded); b: u = 0.60.
	if err := d.Place(constVM(1, 1500), a); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(2, 1500), a); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(3, 7200), b); err != nil {
		t.Fatal(err)
	}
	p.OnControl(env)
	if a.State() != dc.Hibernated {
		t.Fatalf("underloaded server not drained and hibernated (u=%v, vms=%d)", a.UtilizationAt(0), a.NumVMs())
	}
	if b.NumVMs() != 3 {
		t.Fatalf("destination has %d VMs, want 3", b.NumVMs())
	}
	if got := env.Rec.MigrationCount(cluster.MigrationLow); got != 2 {
		t.Fatalf("low migrations = %d, want 2", got)
	}
}

func TestControlDrainCancelledWhenNothingFits(t *testing.T) {
	d := dc.New(dc.UniformFleet(2, 6, 2000))
	p, err := NewBFD(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv(d, 0)
	a, b := d.Servers[0], d.Servers[1]
	if err := d.Activate(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(b, 0); err != nil {
		t.Fatal(err)
	}
	// a underloaded with two VMs; b too full to take both (0.8 + 0.25 > 0.9).
	if err := d.Place(constVM(1, 1500), a); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(2, 1500), a); err != nil {
		t.Fatal(err)
	}
	if err := d.Place(constVM(3, 9600), b); err != nil {
		t.Fatal(err)
	}
	p.OnControl(env)
	// One VM fits (0.8+0.125=0.925>0.9 actually doesn't)... verify drain
	// cancelled: both VMs still on a.
	if a.NumVMs() != 2 {
		t.Fatalf("drain not cancelled: %d VMs left on source", a.NumVMs())
	}
	if got := env.Rec.MigrationCount(cluster.MigrationLow); got != 0 {
		t.Fatalf("cancelled drain recorded %d migrations", got)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestControlRelievesOverload(t *testing.T) {
	d := dc.New(dc.UniformFleet(3, 6, 2000))
	p, err := NewBFD(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv(d, 0)
	a := d.Servers[0]
	if err := d.Activate(a, 0); err != nil {
		t.Fatal(err)
	}
	// a: u = 1.05 with mixed VM sizes.
	for i, mhz := range []float64{6000, 4000, 1600, 1000} {
		if err := d.Place(constVM(i, mhz), a); err != nil {
			t.Fatal(err)
		}
	}
	p.OnControl(env)
	if u := a.UtilizationAt(0); u > 0.9+1e-9 {
		t.Fatalf("overload not relieved: u = %v", u)
	}
	if env.Rec.MigrationCount(cluster.MigrationHigh) == 0 {
		t.Fatal("no high migration recorded")
	}
	// Minimization of migrations: the 1600 MHz VM alone covers the 1800 MHz
	// excess? No — smallest sufficient is 4000? excess = (1.05-0.9)*12000 =
	// 1800; smallest VM >= 1800 is 4000. One migration should suffice.
	if got := env.Rec.MigrationCount(cluster.MigrationHigh); got != 1 {
		t.Fatalf("high migrations = %d, want 1 (MM heuristic)", got)
	}
}

func TestOverloadPicksMinimal(t *testing.T) {
	d := dc.New(dc.UniformFleet(1, 6, 2000))
	cfg := DefaultConfig()
	p, err := NewBFD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Servers[0]
	if err := d.Activate(s, 0); err != nil {
		t.Fatal(err)
	}
	// Demand 13200 = u 1.1; excess = 2400. VMs: 3000,3000,2400,2400,2400.
	for i, mhz := range []float64{3000, 3000, 2400, 2400, 2400} {
		if err := d.Place(constVM(i, mhz), s); err != nil {
			t.Fatal(err)
		}
	}
	picks := p.overloadPicks(s, 0)
	if len(picks) != 1 {
		t.Fatalf("picks = %d, want 1", len(picks))
	}
	if picks[0].demand != 2400 {
		t.Fatalf("picked %v MHz, want the smallest sufficient 2400", picks[0].demand)
	}
}

func TestOverloadPicksFallbackToLargest(t *testing.T) {
	d := dc.New(dc.UniformFleet(1, 6, 2000))
	p, err := NewBFD(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := d.Servers[0]
	if err := d.Activate(s, 0); err != nil {
		t.Fatal(err)
	}
	// Excess 3600, all VMs 1500: no single VM suffices; take largest
	// repeatedly (3 x 1500 = 4500 >= 3600).
	for i := 0; i < 10; i++ {
		if err := d.Place(constVM(i, 1500), s); err != nil {
			t.Fatal(err)
		}
	}
	picks := p.overloadPicks(s, 0)
	if len(picks) != 3 {
		t.Fatalf("picks = %d, want 3", len(picks))
	}
}

func TestAllOnNeverHibernates(t *testing.T) {
	d := dc.New(dc.UniformFleet(4, 6, 2000))
	p := &AllOn{}
	env := newEnv(d, 0)
	for i := 0; i < 8; i++ {
		p.OnArrival(env, constVM(i, 500))
	}
	if d.ActiveCount() != 4 {
		t.Fatalf("active = %d, want the whole fleet", d.ActiveCount())
	}
	p.OnControl(env)
	if d.ActiveCount() != 4 {
		t.Fatal("AllOn hibernated servers")
	}
	// Load balancing: each server got 2 VMs.
	for _, s := range d.Servers {
		if s.NumVMs() != 2 {
			t.Fatalf("server %d has %d VMs, want 2", s.ID, s.NumVMs())
		}
	}
}

func TestCentralizedDeterministic(t *testing.T) {
	run := func() []int {
		d := dc.New(dc.StandardFleet(9))
		p, err := NewBFD(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		env := newEnv(d, 0)
		for i := 0; i < 40; i++ {
			env.Now = time.Duration(i) * time.Minute
			p.OnArrival(env, constVM(i, 300+float64(i%5)*700))
			if i%7 == 6 {
				p.OnControl(env)
			}
		}
		sig := make([]int, 40)
		for i := range sig {
			if s, ok := d.HostOf(i); ok {
				sig[i] = s.ID
			} else {
				sig[i] = -1
			}
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return sig
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("BFD placement of VM %d differs across identical runs", i)
		}
	}
}

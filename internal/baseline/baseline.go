// Package baseline implements the centralized consolidation algorithms that
// the paper positions ecoCloud against.
//
// BFD is a power-aware Best Fit Decreasing reallocation in the style of
// Beloglazov & Buyya (CCGrid 2010) — the paper's reference [3] and the "one
// of the best centralized algorithms devised so far" of the abstract. Every
// control interval it detects servers outside a [lower, upper] utilization
// band, picks VMs to migrate (minimization-of-migrations for overload, full
// drain for underload), and re-places them on the servers that minimize the
// data center's power increase. FFD is the First Fit Decreasing variant
// (the paper's reference [16] style). AllOn never consolidates: it is the
// no-energy-management floor the savings are measured against.
//
// All three run under the exact same cluster driver and data-center model as
// ecoCloud, so every figure is directly comparable.
package baseline

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/trace"
)

// Fit selects the destination-choice rule of the centralized reallocator.
type Fit int

const (
	// BestFitPower places each VM on the feasible server with the smallest
	// power increase (ties: higher utilization, then lower ID).
	BestFitPower Fit = iota
	// FirstFit places each VM on the lowest-ID feasible server.
	FirstFit
)

// Config parameterizes the centralized policies.
type Config struct {
	// Upper and Lower bound the target utilization band. Defaults follow the
	// ecoCloud experiment settings (0.90 / 0.50) so comparisons are fair.
	Upper float64
	Lower float64
	// Power drives the best-fit objective.
	Power dc.PowerModel
	// Fit selects BFD vs FFD placement.
	Fit Fit
}

// DefaultConfig returns the band used in the comparison experiments.
func DefaultConfig() Config {
	return Config{Upper: 0.90, Lower: 0.50, Power: dc.DefaultPowerModel(), Fit: BestFitPower}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Upper <= 0 || c.Upper > 1 {
		return fmt.Errorf("baseline: Upper = %v outside (0,1]", c.Upper)
	}
	if c.Lower < 0 || c.Lower >= c.Upper {
		return fmt.Errorf("baseline: Lower = %v outside [0,Upper)", c.Lower)
	}
	if c.Power.PeakW <= 0 {
		return fmt.Errorf("baseline: power model peak = %v", c.Power.PeakW)
	}
	return nil
}

// Centralized is the BFD/FFD reallocation policy.
type Centralized struct {
	cfg  Config
	name string
}

var _ cluster.Policy = (*Centralized)(nil)

// NewBFD returns the power-aware Best Fit Decreasing policy.
func NewBFD(cfg Config) (*Centralized, error) {
	cfg.Fit = BestFitPower
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Centralized{cfg: cfg, name: "bfd"}, nil
}

// NewFFD returns the First Fit Decreasing policy.
func NewFFD(cfg Config) (*Centralized, error) {
	cfg.Fit = FirstFit
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Centralized{cfg: cfg, name: "ffd"}, nil
}

// Name implements cluster.Policy.
func (c *Centralized) Name() string { return c.name }

// fits reports whether adding demand to s keeps it inside the band.
func (c *Centralized) fits(s *dc.Server, now time.Duration, demand float64) bool {
	return s.UtilizationAt(now)+demand/s.CapacityMHz() <= c.cfg.Upper
}

// pick chooses the destination for a VM of the given demand among active
// servers, honoring the fit rule. exclude contains server IDs that may not
// receive (sources being drained). Returns nil if nothing fits.
func (c *Centralized) pick(env cluster.Env, demand float64, exclude map[int]bool) *dc.Server {
	var best *dc.Server
	var bestDelta, bestUtil float64
	for _, s := range env.DC.Servers {
		if s.State() != dc.Active || exclude[s.ID] || !c.fits(s, env.Now, demand) {
			continue
		}
		switch c.cfg.Fit {
		case FirstFit:
			return s // servers iterate in ID order
		case BestFitPower:
			u := s.UtilizationAt(env.Now)
			delta := c.cfg.Power.Power(dc.Active, u+demand/s.CapacityMHz()) - c.cfg.Power.Power(dc.Active, u)
			//ecolint:allow float-eq — exact tie on power delta falls through to the utilization tie-break
			if best == nil || delta < bestDelta || (delta == bestDelta && u > bestUtil) {
				best, bestDelta, bestUtil = s, delta, u
			}
		}
	}
	return best
}

// wake activates the hibernated server that fits the demand with the lowest
// resulting utilization headroom cost: the largest capacity first (smallest
// marginal power for future placements). Returns nil if none fits or none
// exists.
func (c *Centralized) wake(env cluster.Env, demand float64) *dc.Server {
	var best *dc.Server
	for _, s := range env.DC.Servers {
		if s.State() != dc.Hibernated {
			continue
		}
		if demand > c.cfg.Upper*s.CapacityMHz() {
			continue
		}
		if best == nil || s.CapacityMHz() > best.CapacityMHz() {
			best = s
		}
	}
	if best == nil {
		return nil
	}
	if err := env.DC.Activate(best, env.Now); err != nil {
		panic(fmt.Sprintf("baseline: waking server %d: %v", best.ID, err))
	}
	return best
}

// OnArrival places the VM with the configured fit rule, waking a server if
// no active one fits.
func (c *Centralized) OnArrival(env cluster.Env, vm *trace.VM) {
	demand := vm.DemandAt(env.Now)
	dest := c.pick(env, demand, nil)
	if dest == nil {
		dest = c.wake(env, demand)
	}
	if dest == nil {
		env.Rec.Saturations++
		dest = leastUtilized(env, nil)
		if dest == nil {
			panic(fmt.Sprintf("baseline: no server for VM %d in an empty fleet", vm.ID))
		}
	}
	if err := env.DC.Place(vm, dest); err != nil {
		panic(fmt.Sprintf("baseline: placing VM %d: %v", vm.ID, err))
	}
}

// migrant is one VM scheduled for reallocation in a control round.
type migrant struct {
	vm     *trace.VM
	from   *dc.Server
	demand float64
	kind   string
}

// OnControl runs one centralized reallocation round:
//
//  1. overloaded servers shed the minimal set of VMs that restores u <= Upper
//     (largest-first among those that suffice — Beloglazov's MM heuristic);
//  2. underloaded servers are drained completely;
//  3. the migrant list, sorted by decreasing demand (the "Decreasing" in
//     BFD/FFD), is re-placed; overload migrants may wake servers, drain
//     migrants may not (draining must not switch machines on) — a drain
//     whose VMs cannot all be placed is cancelled;
//  4. emptied servers hibernate.
func (c *Centralized) OnControl(env cluster.Env) {
	now := env.Now
	var migrants []migrant
	exclude := map[int]bool{}

	for _, s := range env.DC.Servers {
		if s.State() != dc.Active || s.NumVMs() == 0 {
			continue
		}
		u := s.UtilizationAt(now)
		switch {
		case u > c.cfg.Upper:
			for _, m := range c.overloadPicks(s, now) {
				migrants = append(migrants, m)
			}
			exclude[s.ID] = true
		case u < c.cfg.Lower:
			vms := sortedVMs(s)
			for _, vm := range vms {
				migrants = append(migrants, migrant{vm: vm, from: s, demand: vm.DemandAt(now), kind: cluster.MigrationLow})
			}
			exclude[s.ID] = true
		}
	}

	// Decreasing demand order; ties by VM ID for determinism.
	sort.Slice(migrants, func(i, j int) bool {
		//ecolint:allow float-eq — sort comparator: exact ties fall through to the VM-ID tie-break
		if migrants[i].demand != migrants[j].demand {
			return migrants[i].demand > migrants[j].demand
		}
		return migrants[i].vm.ID < migrants[j].vm.ID
	})

	// Drains are all-or-nothing per server: tentatively assign, commit later.
	type move struct {
		m    migrant
		dest *dc.Server
	}
	var commits []move
	drainMoves := map[int][]move{}
	drainFailed := map[int]bool{}

	for _, m := range migrants {
		if m.kind == cluster.MigrationLow && drainFailed[m.from.ID] {
			continue
		}
		dest := c.pick(env, m.demand, exclude)
		if dest == nil && m.kind == cluster.MigrationHigh {
			dest = c.wake(env, m.demand)
		}
		if dest == nil {
			if m.kind == cluster.MigrationLow {
				// Cancel the whole drain of this server; already-applied
				// moves roll back below.
				drainFailed[m.from.ID] = true
			}
			continue
		}
		// Apply immediately so subsequent picks see updated utilization;
		// drains roll back if a later VM of the same server fails.
		if err := env.DC.Migrate(m.vm.ID, dest); err != nil {
			panic(fmt.Sprintf("baseline: migrating VM %d: %v", m.vm.ID, err))
		}
		if m.kind == cluster.MigrationLow {
			drainMoves[m.from.ID] = append(drainMoves[m.from.ID], move{m, dest})
		} else {
			commits = append(commits, move{m, dest})
		}
	}

	for id, moves := range drainMoves {
		if drainFailed[id] {
			for _, mv := range moves {
				if err := env.DC.Migrate(mv.m.vm.ID, mv.m.from); err != nil {
					panic(fmt.Sprintf("baseline: rollback VM %d: %v", mv.m.vm.ID, err))
				}
			}
			continue
		}
		commits = append(commits, moves...)
	}

	for _, mv := range commits {
		env.Rec.Migration(now, mv.m.kind)
	}

	// Hibernate emptied servers.
	for _, s := range env.DC.Servers {
		if s.State() == dc.Active && s.NumVMs() == 0 {
			if err := env.DC.Hibernate(s); err != nil {
				panic(fmt.Sprintf("baseline: hibernating server %d: %v", s.ID, err))
			}
		}
	}
}

// overloadPicks returns the minimal migrant set that brings s back under
// Upper: repeatedly take the smallest VM whose removal suffices, or the
// largest VM when none alone suffices.
func (c *Centralized) overloadPicks(s *dc.Server, now time.Duration) []migrant {
	vms := sortedVMs(s)
	// Sort ascending by demand for the "smallest sufficient" scan.
	sort.Slice(vms, func(i, j int) bool {
		di, dj := vms[i].DemandAt(now), vms[j].DemandAt(now)
		//ecolint:allow float-eq — sort comparator: exact ties fall through to the VM-ID tie-break
		if di != dj {
			return di < dj
		}
		return vms[i].ID < vms[j].ID
	})
	var out []migrant
	excess := s.DemandAt(now) - c.cfg.Upper*s.CapacityMHz()
	for excess > 0 && len(vms) > 0 {
		idx := -1
		for i, vm := range vms {
			if vm.DemandAt(now) >= excess {
				idx = i
				break
			}
		}
		if idx == -1 {
			idx = len(vms) - 1 // largest
		}
		vm := vms[idx]
		out = append(out, migrant{vm: vm, from: s, demand: vm.DemandAt(now), kind: cluster.MigrationHigh})
		excess -= vm.DemandAt(now)
		vms = append(vms[:idx], vms[idx+1:]...)
	}
	return out
}

// AllOn is the no-consolidation floor: every server stays active for the
// whole run and VMs are spread to balance load (least utilized first). It
// never migrates.
type AllOn struct{}

var _ cluster.Policy = (*AllOn)(nil)

// Name implements cluster.Policy.
func (*AllOn) Name() string { return "allon" }

// OnArrival places the VM on the least-utilized server, activating the
// whole fleet lazily on first use.
func (*AllOn) OnArrival(env cluster.Env, vm *trace.VM) {
	for _, s := range env.DC.Servers {
		if s.State() == dc.Hibernated {
			if err := env.DC.Activate(s, env.Now); err != nil {
				panic(err)
			}
		}
	}
	dest := leastUtilized(env, nil)
	if dest == nil {
		panic("baseline: empty fleet")
	}
	if err := env.DC.Place(vm, dest); err != nil {
		panic(fmt.Sprintf("baseline: allon placing VM %d: %v", vm.ID, err))
	}
}

// OnControl does nothing: AllOn never consolidates or hibernates.
func (*AllOn) OnControl(cluster.Env) {}

// sortedVMs returns s's VMs in ID order (map iteration is randomized).
func sortedVMs(s *dc.Server) []*trace.VM {
	vms := s.VMs()
	sort.Slice(vms, func(i, j int) bool { return vms[i].ID < vms[j].ID })
	return vms
}

// leastUtilized returns the active server with the lowest utilization,
// skipping excluded IDs.
func leastUtilized(env cluster.Env, exclude map[int]bool) *dc.Server {
	var best *dc.Server
	bestU := 0.0
	for _, s := range env.DC.Servers {
		if s.State() != dc.Active || exclude[s.ID] {
			continue
		}
		u := s.UtilizationAt(env.Now)
		if best == nil || u < bestU {
			best, bestU = s, u
		}
	}
	return best
}

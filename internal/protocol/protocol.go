// Package protocol runs ecoCloud's assignment procedure as the distributed
// message exchange the paper's Fig. 1 depicts, on the netsim fabric:
//
//	manager --INVITE(vm demand, Ta)--> servers     (broadcast)
//	servers --ACCEPT/REJECT-->         manager     (Bernoulli trial on local u)
//	manager --ASSIGN(vm)-->            one acceptor
//	manager --WAKE+ASSIGN(vm)-->       a hibernated server (if nobody accepted)
//
// and, when migration scanning is enabled, the migration procedure too:
//
//	server  --MIGREQ(vm, kind, u)-->   manager     (local Bernoulli on f_l/f_h)
//	manager --INVITE(Ta')-->           servers     (tightened round, source excluded)
//	manager --MIGRATE(dest)-->         source
//	source  --TRANSFER(vm)-->          dest        (RAM-sized message: live migration)
//
// The cluster driver (internal/cluster) abstracts this round into a
// function call; this package makes the messages, their latency and their
// count explicit, so the paper's scalability story — broadcast invitations
// are cheap on a data-center fabric (footnote 1), and decisions stay local —
// can be measured: messages and microseconds per placement as the fleet
// grows, under full broadcast, static groups, random subsets, and the
// silent-reject variant where only available servers answer.
package protocol

import (
	"fmt"
	"time"

	"repro/internal/dc"
	"repro/internal/ecocloud"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Mode selects who receives each invitation.
type Mode int

const (
	// Broadcast invites every active server (the default of §II).
	Broadcast Mode = iota
	// Groups partitions the fleet statically and invites one group per
	// round, rotating (footnote 1).
	Groups
	// Subset invites a uniform random subset of active servers.
	Subset
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Broadcast:
		return "broadcast"
	case Groups:
		return "groups"
	case Subset:
		return "subset"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes the protocol cluster.
type Config struct {
	// Ta, P and Grace follow ecocloud.Config semantics.
	Ta    float64
	P     float64
	Grace time.Duration

	Mode   Mode
	Groups int // group count when Mode == Groups
	Subset int // subset size when Mode == Subset

	// SilentReject drops REJECT replies: only available servers answer, and
	// the manager closes the round after DecisionWindow instead of counting
	// replies. Fewer messages, bounded extra latency.
	SilentReject   bool
	DecisionWindow time.Duration

	// Migration procedure (off unless EnableMigration). Tl/Th/Alpha/Beta
	// follow ecocloud.Config; ScanInterval is the local monitoring cadence;
	// TransferBytes sizes the live-migration TRANSFER message (VM RAM), so
	// migration latency reflects moving gigabytes, not a control message.
	EnableMigration bool
	Tl, Th          float64
	Alpha, Beta     float64
	HighMigTaFactor float64
	ScanInterval    time.Duration
	TransferBytes   int

	Latency netsim.LatencyModel

	// Message sizes in bytes (headers + payload), for the bandwidth share.
	InviteSize, ReplySize, AssignSize int

	// Obs, when set, receives protocol telemetry: placements, wake-ups,
	// migrations by kind, saturations, placement latency, plus the engine
	// metrics and — with a journal attached — data-center mutation events.
	// Nil (the default) costs the message handlers nothing.
	Obs *obs.Recorder `json:"-"`
}

// DefaultConfig returns the §II protocol on a 10 GbE fabric.
func DefaultConfig() Config {
	return Config{
		Ta:              0.90,
		P:               3,
		Grace:           30 * time.Minute,
		Mode:            Broadcast,
		DecisionWindow:  500 * time.Microsecond,
		Latency:         netsim.DefaultLatency(),
		InviteSize:      64,
		ReplySize:       48,
		AssignSize:      256,
		Tl:              0.50,
		Th:              0.95,
		Alpha:           0.25,
		Beta:            0.25,
		HighMigTaFactor: 0.9,
		ScanInterval:    5 * time.Minute,
		TransferBytes:   4 << 30, // 4 GiB of VM RAM
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if _, err := ecocloud.NewAssignProb(c.Ta, c.P); err != nil {
		return err
	}
	switch {
	case c.Grace < 0:
		return fmt.Errorf("protocol: Grace = %v", c.Grace)
	case c.Mode == Groups && c.Groups < 2:
		return fmt.Errorf("protocol: Groups mode with %d groups", c.Groups)
	case c.Mode == Subset && c.Subset < 1:
		return fmt.Errorf("protocol: Subset mode with size %d", c.Subset)
	case c.SilentReject && c.DecisionWindow <= 0:
		return fmt.Errorf("protocol: silent reject needs a positive DecisionWindow")
	case c.InviteSize <= 0 || c.ReplySize <= 0 || c.AssignSize <= 0:
		return fmt.Errorf("protocol: non-positive message size")
	}
	if c.EnableMigration {
		switch {
		case c.Tl < 0 || c.Tl >= c.Th || c.Th >= 1:
			return fmt.Errorf("protocol: migration thresholds Tl=%v Th=%v", c.Tl, c.Th)
		case c.Alpha <= 0 || c.Beta <= 0:
			return fmt.Errorf("protocol: migration shapes alpha=%v beta=%v", c.Alpha, c.Beta)
		case c.HighMigTaFactor <= 0 || c.HighMigTaFactor > 1:
			return fmt.Errorf("protocol: HighMigTaFactor = %v", c.HighMigTaFactor)
		case c.ScanInterval <= 0:
			return fmt.Errorf("protocol: ScanInterval = %v", c.ScanInterval)
		case c.TransferBytes <= 0:
			return fmt.Errorf("protocol: TransferBytes = %d", c.TransferBytes)
		}
	}
	return nil
}

// Stats aggregates what the scalability experiment reports.
type Stats struct {
	Placements  int
	Wakes       int
	Saturations int

	TotalLatency time.Duration
	MaxLatency   time.Duration

	// Migration-procedure counters (EnableMigration only).
	MigrationsLow, MigrationsHigh int
	MigrationLatency              time.Duration // summed MIGREQ->placed
	MigrationsAborted             int           // no destination found
}

// MeanLatency returns the mean placement latency (invite to placed).
func (s Stats) MeanLatency() time.Duration {
	if s.Placements == 0 {
		return 0
	}
	return s.TotalLatency / time.Duration(s.Placements)
}

// message payloads
type inviteReq struct {
	roundID int
	demand  float64
	ta      float64 // effective acceptance threshold for this round
}

type reply struct {
	roundID  int
	serverID int
	accept   bool
}

type assignReq struct {
	vm    *trace.VM
	wake  bool
	start time.Duration // when the round began, for latency accounting
}

type migReq struct {
	serverID int
	vmID     int
	kind     string // cluster-style "low"/"high"
	u        float64
}

type migrateOrder struct {
	vmID   int
	destID int
	kind   string
	start  time.Duration
}

type transfer struct {
	vmID  int
	kind  string
	start time.Duration
}

// round is the manager's state for one invitation round. decide runs when
// the round closes (all replies in, or the decision window expires).
type round struct {
	id       int
	start    time.Duration
	expected int
	replies  int
	accepts  []int
	closed   bool
	decide   func(*round)
}

const managerNode netsim.NodeID = 0

func serverNode(id int) netsim.NodeID { return netsim.NodeID(id + 1) }

// Cluster wires the manager, the servers, the network and the data center.
type Cluster struct {
	cfg Config
	fa  ecocloud.AssignProbFunc

	eng *sim.Engine
	net *netsim.Network
	dc  *dc.DataCenter

	mgr     *rng.Source
	master  *rng.Source
	servers map[int]*rng.Source

	rounds    map[int]*round
	nextRound int
	nextGroup int

	// inflight marks VMs with a migration in progress so the periodic scan
	// never double-migrates them.
	inflight map[int]bool

	Stats Stats
}

// New builds a protocol cluster over the given fleet. Servers start
// hibernated, exactly as in the cluster driver.
func New(cfg Config, specs []dc.Spec, seed uint64) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fa, err := ecocloud.NewAssignProb(cfg.Ta, cfg.P)
	if err != nil {
		return nil, err
	}
	master := rng.New(seed)
	eng := sim.New()
	c := &Cluster{
		cfg:      cfg,
		fa:       fa,
		eng:      eng,
		net:      netsim.New(eng, cfg.Latency, master.Split("net")),
		dc:       dc.New(specs),
		mgr:      master.Split("manager"),
		master:   master,
		servers:  make(map[int]*rng.Source),
		rounds:   make(map[int]*round),
		inflight: make(map[int]bool),
	}
	c.net.Register(managerNode, c.onManagerMessage)
	for _, s := range c.dc.Servers {
		s := s
		c.net.Register(serverNode(s.ID), func(m netsim.Message) { c.onServerMessage(s, m) })
	}
	if cfg.Obs.Enabled() {
		eng.SetRecorder(cfg.Obs)
		if cfg.Obs.Journaling() {
			c.dc.SetJournal(func(e dc.Event) {
				fields := map[string]any{"server": e.Server}
				if e.VM >= 0 {
					fields["vm"] = e.VM
				}
				if e.Dest >= 0 {
					fields["dest"] = e.Dest
				}
				cfg.Obs.Emit(eng.Now(), string(e.Kind), fields)
			})
		}
	}
	return c, nil
}

// Engine exposes the simulation engine so callers can schedule arrivals.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// DC exposes the data center for inspection and pre-loading.
func (c *Cluster) DC() *dc.DataCenter { return c.dc }

// MessagesSent returns the number of wire transmissions so far.
func (c *Cluster) MessagesSent() int { return c.net.Sent }

// BytesSent returns the bytes delivered so far.
func (c *Cluster) BytesSent() int64 { return c.net.Bytes }

// serverSrc returns server id's private stream.
func (c *Cluster) serverSrc(id int) *rng.Source {
	s, ok := c.servers[id]
	if !ok {
		s = c.master.SplitIndex("server", id)
		c.servers[id] = s
	}
	return s
}

// PlaceVM starts one invitation round for vm at the current virtual time.
func (c *Cluster) PlaceVM(vm *trace.VM) {
	now := c.eng.Now()
	start := now
	opened := c.openRound(c.fa.Ta, vm.DemandAt(now), -1, func(r *round) {
		if len(r.accepts) > 0 {
			id := r.accepts[c.mgr.Intn(len(r.accepts))]
			c.net.Send(netsim.Message{
				From: managerNode, To: serverNode(id), Kind: "assign",
				Payload: assignReq{vm: vm, start: start}, Size: c.cfg.AssignSize,
			})
			return
		}
		c.wakeAssign(vm, start)
	})
	if !opened {
		// Nobody awake: wake a server directly.
		c.wakeAssign(vm, now)
	}
}

// openRound broadcasts one invitation under the effective threshold ta,
// excluding server excludeID (-1 for none), and arranges for decide to run
// at close. It reports false (and calls nothing) when no server can be
// invited at all.
func (c *Cluster) openRound(ta, demand float64, excludeID int, decide func(*round)) bool {
	now := c.eng.Now()
	targets := c.inviteTargets()
	if excludeID >= 0 {
		kept := targets[:0]
		for _, s := range targets {
			if s.ID != excludeID {
				kept = append(kept, s)
			}
		}
		targets = kept
	}
	if len(targets) == 0 {
		return false
	}
	c.nextRound++
	r := &round{id: c.nextRound, start: now, expected: len(targets), decide: decide}
	c.rounds[r.id] = r
	nodes := make([]netsim.NodeID, len(targets))
	for i, s := range targets {
		nodes[i] = serverNode(s.ID)
	}
	c.net.Broadcast(managerNode, nodes, "invite",
		inviteReq{roundID: r.id, demand: demand, ta: ta}, c.cfg.InviteSize)
	if c.cfg.SilentReject {
		c.eng.After(c.cfg.DecisionWindow, "decision-window", func(*sim.Engine) {
			c.closeRound(r)
		})
	}
	return true
}

// inviteTargets selects the invited active servers per the configured mode.
func (c *Cluster) inviteTargets() []*dc.Server {
	var active []*dc.Server
	for _, s := range c.dc.Servers {
		if s.State() == dc.Active {
			active = append(active, s)
		}
	}
	switch c.cfg.Mode {
	case Groups:
		g := c.nextGroup % c.cfg.Groups
		c.nextGroup++
		var out []*dc.Server
		for _, s := range active {
			if s.ID%c.cfg.Groups == g {
				out = append(out, s)
			}
		}
		return out
	case Subset:
		if len(active) <= c.cfg.Subset {
			return active
		}
		perm := c.mgr.Perm(len(active))
		out := make([]*dc.Server, c.cfg.Subset)
		for i := range out {
			out[i] = active[perm[i]]
		}
		return out
	default:
		return active
	}
}

// onServerMessage handles invite, assign, migrate and transfer messages at
// a server.
func (c *Cluster) onServerMessage(s *dc.Server, m netsim.Message) {
	now := c.eng.Now()
	switch m.Kind {
	case "invite":
		req := m.Payload.(inviteReq)
		accept := c.serverAccepts(s, now, req.demand, req.ta)
		if accept || !c.cfg.SilentReject {
			c.net.Send(netsim.Message{
				From: serverNode(s.ID), To: managerNode, Kind: "reply",
				Payload: reply{roundID: req.roundID, serverID: s.ID, accept: accept},
				Size:    c.cfg.ReplySize,
			})
		}
	case "assign":
		req := m.Payload.(assignReq)
		if req.wake && s.State() == dc.Hibernated {
			// Idempotent: two rounds deciding within the same latency window
			// can both pick this server while it still looks hibernated to
			// the manager; the second wake command is a no-op.
			if err := c.dc.Activate(s, now); err != nil {
				panic(fmt.Sprintf("protocol: wake-assign on server %d: %v", s.ID, err))
			}
		}
		if err := c.dc.Place(req.vm, s); err != nil {
			panic(fmt.Sprintf("protocol: placing VM %d on server %d: %v", req.vm.ID, s.ID, err))
		}
		c.recordPlacement(req.start, now)
	case "migrate":
		// Manager picked a destination for one of this server's VMs: start
		// the live transfer. The VM keeps running here until cutover (the
		// paper: migrations are asynchronous and smooth).
		order := m.Payload.(migrateOrder)
		if _, ok := c.dc.HostOf(order.vmID); !ok {
			delete(c.inflight, order.vmID) // VM departed while the round was in flight
			return
		}
		c.net.Send(netsim.Message{
			From: serverNode(s.ID), To: serverNode(order.destID), Kind: "transfer",
			Payload: transfer{vmID: order.vmID, kind: order.kind, start: order.start},
			Size:    c.cfg.TransferBytes,
		})
	case "transfer":
		tr := m.Payload.(transfer)
		delete(c.inflight, tr.vmID)
		host, ok := c.dc.HostOf(tr.vmID)
		if !ok || host == s {
			return // departed mid-copy, or already here
		}
		if s.State() == dc.Hibernated {
			// Defensive cutover: the wake command races the (much slower)
			// transfer; arriving first is overwhelmingly likely but not
			// guaranteed under jitter.
			if err := c.dc.Activate(s, now); err != nil {
				panic(fmt.Sprintf("protocol: cutover wake of server %d: %v", s.ID, err))
			}
		}
		if err := c.dc.Migrate(tr.vmID, s); err != nil {
			panic(fmt.Sprintf("protocol: migrating VM %d to server %d: %v", tr.vmID, s.ID, err))
		}
		switch tr.kind {
		case "high":
			c.Stats.MigrationsHigh++
			c.cfg.Obs.Count("protocol.migrations_high", 1)
		default:
			c.Stats.MigrationsLow++
			c.cfg.Obs.Count("protocol.migrations_low", 1)
		}
		c.Stats.MigrationLatency += now - tr.start
	case "wake":
		if s.State() == dc.Hibernated {
			if err := c.dc.Activate(s, now); err != nil {
				panic(fmt.Sprintf("protocol: waking server %d: %v", s.ID, err))
			}
		}
	default:
		panic(fmt.Sprintf("protocol: server %d got unexpected %q", s.ID, m.Kind))
	}
}

// serverAccepts runs the local availability decision: feasibility under the
// round's effective threshold, the grace-period rule, then the Bernoulli
// trial on fa(u) with that threshold.
func (c *Cluster) serverAccepts(s *dc.Server, now time.Duration, demand, ta float64) bool {
	u := s.UtilizationAt(now)
	if u+demand/s.CapacityMHz() > ta {
		return false
	}
	if now-s.ActivatedAt < c.cfg.Grace {
		return true
	}
	fa := c.fa
	//ecolint:allow float-eq — Ta is copied verbatim from the config, so exact inequality means a real override
	if ta != c.fa.Ta {
		tightened, err := c.fa.WithThreshold(ta)
		if err != nil {
			return false
		}
		fa = tightened
	}
	return c.serverSrc(s.ID).Bernoulli(fa.Eval(u))
}

// onManagerMessage handles reply and migreq messages at the manager.
func (c *Cluster) onManagerMessage(m netsim.Message) {
	switch m.Kind {
	case "reply":
		rep := m.Payload.(reply)
		r, ok := c.rounds[rep.roundID]
		if !ok || r.closed {
			return // late reply after a silent-reject window closed: ignored
		}
		r.replies++
		if rep.accept {
			r.accepts = append(r.accepts, rep.serverID)
		}
		if !c.cfg.SilentReject && r.replies == r.expected {
			c.closeRound(r)
		}
	case "migreq":
		c.onMigReq(m.Payload.(migReq))
	default:
		panic(fmt.Sprintf("protocol: manager got unexpected %q", m.Kind))
	}
}

// closeRound runs the round's decision exactly once.
func (c *Cluster) closeRound(r *round) {
	if r.closed {
		return
	}
	r.closed = true
	delete(c.rounds, r.id)
	r.decide(r)
}

// wakeAssign picks a hibernated server that fits the VM and sends it a
// combined wake+assign ("the manager wakes up an inactive server and
// requests it to run the new VM", §II). With nothing to wake, the VM lands
// on the least-utilized active server and a saturation event is recorded.
func (c *Cluster) wakeAssign(vm *trace.VM, start time.Duration) {
	now := c.eng.Now()
	demand := vm.DemandAt(now)
	var fitting []*dc.Server
	var largest *dc.Server
	for _, s := range c.dc.Servers {
		if s.State() != dc.Hibernated {
			continue
		}
		if largest == nil || s.CapacityMHz() > largest.CapacityMHz() {
			largest = s
		}
		if demand <= c.fa.Ta*s.CapacityMHz() {
			fitting = append(fitting, s)
		}
	}
	var wake *dc.Server
	switch {
	case len(fitting) > 0:
		wake = fitting[c.mgr.Intn(len(fitting))]
	case largest != nil:
		wake = largest
	}
	if wake != nil {
		c.Stats.Wakes++
		c.cfg.Obs.Count("protocol.wakeups", 1)
		c.net.Send(netsim.Message{
			From: managerNode, To: serverNode(wake.ID), Kind: "assign",
			Payload: assignReq{vm: vm, wake: true, start: start}, Size: c.cfg.AssignSize,
		})
		return
	}
	// Total saturation: degrade onto the least-utilized active server.
	c.Stats.Saturations++
	c.cfg.Obs.Count("protocol.saturations", 1)
	var best *dc.Server
	bestU := 0.0
	for _, s := range c.dc.Servers {
		if s.State() != dc.Active {
			continue
		}
		if u := s.UtilizationAt(now); best == nil || u < bestU {
			best, bestU = s, u
		}
	}
	if best == nil {
		panic(fmt.Sprintf("protocol: no server at all for VM %d", vm.ID))
	}
	c.net.Send(netsim.Message{
		From: managerNode, To: serverNode(best.ID), Kind: "assign",
		Payload: assignReq{vm: vm, start: start}, Size: c.cfg.AssignSize,
	})
}

// recordPlacement updates latency statistics when an assign lands: the
// placement latency spans from the round's first invitation to the VM
// actually running on its server.
func (c *Cluster) recordPlacement(start, now time.Duration) {
	lat := now - start
	c.Stats.Placements++
	c.Stats.TotalLatency += lat
	if lat > c.Stats.MaxLatency {
		c.Stats.MaxLatency = lat
	}
	c.cfg.Obs.Count("protocol.placements", 1)
	c.cfg.Obs.Observe("protocol.placement_latency", lat)
}

// StartMigrationScan arms the periodic local monitoring on every server
// (§II: "each server monitors its CPU utilization ... and checks if it is
// between two specified thresholds"). Each tick, every active server runs
// its Bernoulli trial locally and, on success, sends one MIGREQ to the
// manager. The scan also hibernates servers drained empty, mirroring the
// cluster driver. Requires EnableMigration.
func (c *Cluster) StartMigrationScan() {
	if !c.cfg.EnableMigration {
		panic("protocol: StartMigrationScan without EnableMigration")
	}
	c.eng.Every(c.cfg.ScanInterval, c.cfg.ScanInterval, "migration-scan", func(*sim.Engine) {
		now := c.eng.Now()
		for _, s := range c.dc.Servers {
			if s.State() != dc.Active {
				continue
			}
			if s.NumVMs() == 0 {
				if now-s.ActivatedAt >= c.cfg.Grace {
					if err := c.dc.Hibernate(s); err != nil {
						panic(fmt.Sprintf("protocol: hibernating server %d: %v", s.ID, err))
					}
				}
				continue
			}
			u := s.UtilizationAt(now)
			src := c.serverSrc(s.ID)
			switch {
			case u < c.cfg.Tl && now-s.ActivatedAt >= c.cfg.Grace:
				if src.Bernoulli(ecocloud.MigrateLowProb(u, c.cfg.Tl, c.cfg.Alpha)) {
					c.sendMigReq(s, now, u, "low")
				}
			case u > c.cfg.Th:
				if src.Bernoulli(ecocloud.MigrateHighProb(u, c.cfg.Th, c.cfg.Beta)) {
					c.sendMigReq(s, now, u, "high")
				}
			}
		}
	})
}

// sendMigReq picks the VM to move (the §II selection rules) and asks the
// manager for a destination.
func (c *Cluster) sendMigReq(s *dc.Server, now time.Duration, u float64, kind string) {
	vms := s.VMs() // ID-sorted
	var candidates []*trace.VM
	for _, vm := range vms {
		if c.inflight[vm.ID] {
			continue
		}
		candidates = append(candidates, vm)
	}
	if len(candidates) == 0 {
		return
	}
	var vm *trace.VM
	if kind == "high" {
		need := (u - c.cfg.Th) * s.CapacityMHz()
		var big []*trace.VM
		for _, v := range candidates {
			if v.DemandAt(now) >= need {
				big = append(big, v)
			}
		}
		if len(big) > 0 {
			vm = big[c.serverSrc(s.ID).Intn(len(big))]
		} else {
			vm = candidates[0]
			for _, v := range candidates[1:] {
				if v.DemandAt(now) > vm.DemandAt(now) {
					vm = v
				}
			}
		}
	} else {
		vm = candidates[c.serverSrc(s.ID).Intn(len(candidates))]
	}
	c.inflight[vm.ID] = true
	c.net.Send(netsim.Message{
		From: serverNode(s.ID), To: managerNode, Kind: "migreq",
		Payload: migReq{serverID: s.ID, vmID: vm.ID, kind: kind, u: u},
		Size:    c.cfg.ReplySize,
	})
}

// onMigReq is the manager's side of the migration procedure: a tightened
// invitation round excluding the source; high migrations may wake a server,
// low migrations never do (§II's two differences).
func (c *Cluster) onMigReq(req migReq) {
	host, ok := c.dc.HostOf(req.vmID)
	if !ok || host.ID != req.serverID {
		delete(c.inflight, req.vmID) // VM departed or already moved
		return
	}
	now := c.eng.Now()
	vm := findVM(host, req.vmID)
	if vm == nil {
		delete(c.inflight, req.vmID)
		return
	}
	demand := vm.DemandAt(now)
	ta := c.fa.Ta
	if req.kind == "high" {
		ta = c.cfg.HighMigTaFactor * req.u
		if ta > c.fa.Ta {
			ta = c.fa.Ta
		}
	}
	start := now
	noAcceptor := func() {
		if req.kind == "high" {
			if wake := c.pickWake(demand, ta); wake != nil {
				c.Stats.Wakes++
				c.cfg.Obs.Count("protocol.wakeups", 1)
				c.net.Send(netsim.Message{
					From: managerNode, To: serverNode(wake.ID), Kind: "wake",
					Payload: nil, Size: c.cfg.AssignSize,
				})
				c.net.Send(netsim.Message{
					From: managerNode, To: serverNode(req.serverID), Kind: "migrate",
					Payload: migrateOrder{vmID: req.vmID, destID: wake.ID, kind: req.kind, start: start},
					Size:    c.cfg.AssignSize,
				})
				return
			}
		}
		// Low migration with no destination, or nothing to wake: the VM is
		// not migrated at all (§II).
		c.Stats.MigrationsAborted++
		c.cfg.Obs.Count("protocol.migrations_aborted", 1)
		delete(c.inflight, req.vmID)
	}
	opened := c.openRound(ta, demand, req.serverID, func(r *round) {
		if len(r.accepts) > 0 {
			destID := r.accepts[c.mgr.Intn(len(r.accepts))]
			c.net.Send(netsim.Message{
				From: managerNode, To: serverNode(req.serverID), Kind: "migrate",
				Payload: migrateOrder{vmID: req.vmID, destID: destID, kind: req.kind, start: start},
				Size:    c.cfg.AssignSize,
			})
			return
		}
		noAcceptor()
	})
	if !opened {
		// Nobody to invite at all (e.g. the source is the only active
		// server): same decision as an all-reject round.
		noAcceptor()
	}
}

// pickWake selects a hibernated server that fits the demand under ta
// (uniformly), or nil.
func (c *Cluster) pickWake(demand, ta float64) *dc.Server {
	var fitting []*dc.Server
	for _, s := range c.dc.Servers {
		if s.State() == dc.Hibernated && demand <= ta*s.CapacityMHz() {
			fitting = append(fitting, s)
		}
	}
	if len(fitting) == 0 {
		return nil
	}
	return fitting[c.mgr.Intn(len(fitting))]
}

// findVM returns the hosted VM with the given ID, or nil.
func findVM(s *dc.Server, id int) *trace.VM {
	for _, vm := range s.VMs() {
		if vm.ID == id {
			return vm
		}
	}
	return nil
}
